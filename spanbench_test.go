package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestSpanOverheadBounded is the span-bench smoke (`make span-bench`):
// it times fused-tier kernel invocations with all observability off and
// again with telemetry, spans, and the tracer fully armed, and fails if
// arming costs more than 3% wall time. The kernel hot path only ever
// consults the span gates at transition boundaries — one predictable
// branch per crossing — so the two runs should be indistinguishable up
// to scheduler noise. Wall-clock measurement, so gated behind
// REPRO_SPANBENCH=1 like the fuse-bench.
func TestSpanOverheadBounded(t *testing.T) {
	if os.Getenv("REPRO_SPANBENCH") == "" {
		t.Skip("set REPRO_SPANBENCH=1 to run the span-overhead smoke benchmark")
	}
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	// Best of three timed batches per configuration, to shrug off
	// scheduler noise in CI (same shape as TestFusedTierNotSlower).
	run := func() time.Duration {
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
		if err != nil {
			t.Fatal(err)
		}
		inst.Mach.Tier = cpu.TierFused
		if _, err := inst.Invoke("run", 10000); err != nil { // warmup
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			for i := 0; i < 5; i++ {
				if _, err := inst.Invoke("run", 10000); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	telemetry.SetEnabled(false)
	telemetry.SetSpansEnabled(false)
	disabled := run()

	telemetry.SetEnabled(true)
	telemetry.SetSpansEnabled(true)
	telemetry.Trace.Enable()
	defer func() {
		telemetry.Trace.Disable()
		telemetry.SetSpansEnabled(false)
		telemetry.SetEnabled(false)
	}()
	enabled := run()

	t.Logf("seqhash fused: spans off %v, spans on %v (%.4fx)",
		disabled, enabled, enabled.Seconds()/disabled.Seconds())
	if enabled.Seconds() > disabled.Seconds()*1.03 {
		t.Fatalf("span machinery costs >3%% on the kernel hot path: off %v, on %v",
			disabled, enabled)
	}
}
