GO ?= go

.PHONY: build test race vet ci docscheck bench-smoke bench results benchdiff benchgate benchgate-smoke fuse-bench serve-smoke serve-bench trace-smoke span-bench cluster-smoke cluster-bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and compile cache are the concurrent pieces; -race over
# them doubles as the determinism gate (parallel vs serial tables).
race:
	$(GO) test -race ./internal/exp/... ./internal/rt/...

vet:
	$(GO) vet ./...

# Pre-PR check: formatting, vet, and the full suite under the race
# detector. The multi-minute golden-table comparisons (fig3/fig4/fig5/
# table2) skip themselves under -race; `make test` still runs them.
ci:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	sh tools/servesmoke.sh
	sh tools/tracesmoke.sh
	sh tools/clustersmoke.sh
	$(MAKE) fuse-bench
	$(MAKE) span-bench
	$(MAKE) benchgate-smoke
	$(MAKE) benchgate

# Documentation gate: package comments present, ARCHITECTURE.md linked
# and complete, documented flags/ids exist, documented commands run in
# smoke mode (including the fault-injection flags).
docscheck:
	sh tools/docscheck.sh

# A fast end-to-end pass: one cheap experiment through the bench
# harness and the quick benchtab path.
bench-smoke:
	$(GO) test -run TestMain -bench 'BenchmarkTransitionCost|BenchmarkScalingSlots' -benchtime 1x .
	$(GO) run ./cmd/benchtab transition scaling

# Full paper tables (several minutes).
bench:
	$(GO) test -bench . -benchtime 1x .

# Regenerate BENCH_results.json with before/after timings for the
# SPEC-suite experiments, plus the telemetry-counter sidecar, and
# append a timestamped record to the perf trajectory (BENCH_history.jsonl).
results:
	$(GO) run ./cmd/benchtab -compare -results BENCH_results.json -metrics BENCH_metrics.json -history BENCH_history.jsonl -o /dev/null fig3 fig5 fig4 table2

# Wall-time deltas between the last two `make results` records.
benchdiff:
	sh tools/benchdiff.sh

# Regression gate over the same trajectory: fail if any experiment in
# the latest record is >10% slower than in the previous one. Enforcing
# in `make ci` for same-tier comparisons; new/gone experiments, tier
# mismatches, and a history with fewer than two records all skip (exit
# 0) rather than gate, so only a genuine same-tier slowdown blocks.
benchgate:
	sh tools/benchdiff.sh -gate 10

# Gate self-test on synthetic histories: newline-robust record counting
# (a two-record history without a trailing newline must still gate),
# fail on >threshold regressions, pass in-threshold ones, skip on tier
# mismatches and single-record histories.
benchgate-smoke:
	sh tools/benchgatesmoke.sh

# Fused-tier smoke: the superinstruction tier must not be slower than
# the predecoded tier on a real kernel (1.2x guard band for CI noise).
fuse-bench:
	REPRO_FUSEBENCH=1 $(GO) test -run TestFusedTierNotSlower -count=1 -v .

# Serving-layer smoke: boot faasd on an ephemeral port, burst it with
# faasload, check /healthz, /metrics, and /debug/requests, drain
# cleanly on SIGTERM.
serve-smoke:
	sh tools/servesmoke.sh

# Tracing smoke: boot faasd with -trace, load it, drain, and validate
# that the emitted Chrome-trace JSON parses and contains the serving
# phase spans (queue/exec/transitions on the wall-clock track).
trace-smoke:
	sh tools/tracesmoke.sh

# Span-overhead guard: with spans fully enabled, fused-tier kernel
# invocations must cost no more than 3% extra wall time versus the
# spans-disabled path (best-of-3 each way to damp CI noise).
span-bench:
	REPRO_SPANBENCH=1 $(GO) test -run TestSpanOverheadBounded -count=1 -v .

# Serving-layer benchmark: sweep an open-loop RPS ramp against a live
# faasd and record the throughput/latency trajectory per step in
# SERVE_results.json (RAMP/SECONDS_PER_STEP/KERNEL/OUT env overrides).
serve-bench:
	sh tools/servebench.sh

# Cluster smoke: faasrouter supervising three faasd workers — all
# healthy, a burst through the router with zero routing-layer 5xx,
# autoscale grow decisions visible in cluster.autoscale.* counters,
# keep-warm hits across the cluster, clean SIGTERM drain.
cluster-smoke:
	sh tools/clustersmoke.sh

# Cluster benchmark: the same seeded bursty trace per isolation backend
# through a supervised cluster; records per-backend trace steps and the
# warm-instance density table (colorguard vs multiproc) as the
# "cluster" section of SERVE_results.json (WORKERS/RPS/PEAK/SEED/OUT
# env overrides).
cluster-bench:
	sh tools/clusterbench.sh
