package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// TestFusedTierNotSlower is the fuse-bench smoke (`make fuse-bench`):
// it times one kernel on the predecoded tier and on the fused tier and
// fails if fusion makes dispatch slower. It is a wall-clock measurement,
// so it is gated behind REPRO_FUSEBENCH=1 and allows a noise margin;
// the correctness of the fused tier is covered by the differential
// tests, this guards the perf claim.
func TestFusedTierNotSlower(t *testing.T) {
	if os.Getenv("REPRO_FUSEBENCH") == "" {
		t.Skip("set REPRO_FUSEBENCH=1 to run the fused-tier smoke benchmark")
	}
	cpu.SetFuseEager(true)
	defer cpu.SetFuseEager(false)

	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	// Best of three timed batches per tier, to shrug off scheduler noise
	// in CI.
	run := func(tier cpu.Tier) time.Duration {
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
		if err != nil {
			t.Fatal(err)
		}
		inst.Mach.Tier = tier
		if _, err := inst.Invoke("run", 10000); err != nil { // warmup
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			for i := 0; i < 5; i++ {
				if _, err := inst.Invoke("run", 10000); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	fast := run(cpu.TierFast)
	fused := run(cpu.TierFused)
	t.Logf("seqhash: fast %v, fused %v (%.2fx)", fast, fused, fast.Seconds()/fused.Seconds())
	if fused.Seconds() > fast.Seconds()*1.2 {
		t.Fatalf("fused tier slower than fast tier: fast %v, fused %v", fast, fused)
	}
}
