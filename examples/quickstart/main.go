// Quickstart: build a module with the IR builder, compile it with and
// without Segue, run it in a sandbox, and see what the optimization
// buys — the five-minute tour of the library.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// buildChecksum returns a module computing a rolling checksum over a
// buffer in linear memory — a typical memory-bound library function.
func buildChecksum() *ir.Module {
	m := ir.NewModule("quickstart", 2, 2)

	// checksum(len): h = fnv(buf[0:len]) with a struct-array access
	// pattern thrown in.
	const (
		length = 0
		i      = 1
		h      = 2
		bp     = 3 // buffer pointer (a runtime value, like a C argument)
	)
	fb := m.NewFunc("checksum", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32, ir.I32)
	fb.I32(-2128831035).Set(h) // FNV offset basis
	fb.I32(0).Set(bp)
	fb.LoopNDyn(i, length, 0, 1, func() {
		// h ^= bp[i]; h *= prime — the struct/array access pattern of
		// Figure 1: base + index*4 + displacement.
		fb.Get(i).I32(2).I32Shl().Get(bp).I32Add().I32Load(0)
		fb.Get(h).I32Xor().I32(16777619).I32Mul().Set(h)
	})
	fb.Get(h)
	fb.MustBuild()
	m.MustExport("checksum")
	return m
}

func main() {
	module := buildChecksum()

	fmt.Println("quickstart: one module, three compilations")
	fmt.Println()

	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"classic SFI (guard pages)", core.Options{FSGSBASE: true}},
		{"Segue", core.Options{Segue: true, FSGSBASE: true}},
		{"explicit bounds checks", core.Options{BoundsChecks: true, FSGSBASE: true}},
	}

	var first uint64
	var firstNs float64
	for vi, v := range variants {
		eng := core.NewEngine(v.opts)
		cm, err := eng.Compile(module)
		if err != nil {
			panic(err)
		}
		sb, err := eng.Instantiate(cm, nil)
		if err != nil {
			panic(err)
		}
		// Stage input through the host-side memory accessor.
		buf := make([]byte, 64*1024)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		if err := sb.MemWrite(0, buf); err != nil {
			panic(err)
		}

		res, err := sb.Call("checksum", 8000)
		if err != nil {
			panic(err)
		}
		ns := sb.SimulatedNanos()
		if vi == 0 {
			first, firstNs = res[0], ns
		} else if res[0] != first {
			panic("variants disagree on the checksum")
		}
		fmt.Printf("  %-28s checksum=%#x  code=%5d B  simulated=%8.1f µs  (%.2fx)\n",
			v.name, res[0], cm.CodeBytes(), ns/1e3, ns/firstNs)
	}

	fmt.Println()
	fmt.Println("Out-of-bounds accesses trap deterministically:")
	eng := core.NewEngine(core.Options{Segue: true, FSGSBASE: true})
	cm, _ := eng.Compile(buildChecksum())
	sb, _ := eng.Instantiate(cm, nil)
	_, err := sb.Call("checksum", 1<<29) // reads far past the 128 KiB memory
	fmt.Printf("  checksum(2^29) -> %v\n", err)
}
