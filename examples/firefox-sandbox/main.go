// firefox-sandbox demonstrates the paper's motivating Firefox use case
// (§6.1): sandboxing a font-rendering library where every glyph is a
// separate sandbox invocation, so both per-access instrumentation and
// transition costs matter. It renders a page's worth of glyphs under
// native, classic SFI, and Segue, and reports the reflow-time style
// comparison — including the pre-IvyBridge syscall fallback Firefox
// has to support.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

func main() {
	k, err := workloads.Firefox().Find("font")
	if err != nil {
		panic(err)
	}
	const glyphs = 1200 // a text-heavy page reflow

	render := func(o core.Options, sandboxed bool) float64 {
		if !sandboxed {
			o = core.Options{FSGSBASE: o.FSGSBASE}
		}
		eng := core.NewEngine(o)
		cm, err := eng.Compile(k.Build(false))
		if err != nil {
			panic(err)
		}
		sb, err := eng.Instantiate(cm, nil)
		if err != nil {
			panic(err)
		}
		for g := 0; g < glyphs; g++ {
			if _, err := sb.Call("glyph", uint64(g)); err != nil {
				panic(err)
			}
		}
		return sb.SimulatedNanos() / 1e6
	}

	// The unsandboxed baseline still runs on the simulated machine —
	// it is the same library without instrumentation.
	native := renderNative(k, glyphs)
	classic := render(core.Options{FSGSBASE: true}, true)
	segue := render(core.Options{Segue: true, FSGSBASE: true}, true)
	segueOld := render(core.Options{Segue: true, FSGSBASE: false}, true)

	fmt.Printf("Rendering %d glyphs through the sandboxed font library:\n\n", glyphs)
	fmt.Printf("  %-36s %8.2f ms\n", "unsandboxed", native)
	fmt.Printf("  %-36s %8.2f ms  (+%.1f%%)\n", "Wasm sandbox (classic SFI)", classic, (classic/native-1)*100)
	fmt.Printf("  %-36s %8.2f ms  (+%.1f%%)\n", "Wasm sandbox + Segue", segue, (segue/native-1)*100)
	fmt.Printf("  %-36s %8.2f ms  (+%.1f%%)\n", "Segue, arch_prctl fallback (old CPU)", segueOld, (segueOld/native-1)*100)
	if classic > native {
		fmt.Printf("\nSegue eliminates %.0f%% of the sandboxing overhead on this page.\n",
			(classic-segue)/(classic-native)*100)
	}
	fmt.Println("(paper §6.1: 264 ms -> 356 ms sandboxed -> 287 ms with Segue, 75% eliminated)")
}

// renderNative measures the uninstrumented baseline. The core API
// always isolates (it is a sandboxing library), so the baseline uses
// the runtime layer directly with the native compilation mode.
func renderNative(k workloads.Kernel, glyphs int) float64 {
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeNative))
	if err != nil {
		panic(err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		panic(err)
	}
	for g := 0; g < glyphs; g++ {
		if _, err := inst.Invoke("glyph", uint64(g)); err != nil {
			panic(err)
		}
	}
	return inst.Mach.Stats.Nanos(&inst.Mach.Cost) / 1e6
}
