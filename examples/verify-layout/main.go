// verify-layout reruns the §5.2 story: the slot-layout computation is
// the contract between allocator and compiler, bugs there are the most
// common source of Wasmtime CVEs, and adversarial checking of the
// Table 1 invariants finds both the saturating-add bug and the missing
// preconditions in the pre-verification code — while passing the fixed
// version.
package main

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/verify"
)

func main() {
	fmt.Println("Verifying the slot-layout computation against the Table 1 invariants")
	fmt.Println("under the adversarial caller model (boundary sweep + 20,000 fuzz inputs):")
	fmt.Println()

	legacy := verify.Verify(pool.ComputeLayoutLegacy, 20000, 2024)
	fmt.Println("pre-verification implementation (saturating arithmetic, no preconditions):")
	fmt.Printf("  %s\n", legacy)
	classes := verify.Classify(legacy.Findings)
	fmt.Println("  violations by invariant:")
	for _, inv := range []string{"invariant 1", "invariant 2", "invariant 3", "invariant 4", "invariant 5",
		"invariant 6", "invariant 7", "invariant 8", "invariant 9", "invariant 10"} {
		if n := classes[inv]; n > 0 {
			fmt.Printf("    %-13s %6d\n", inv, n)
		}
	}
	fmt.Println()
	fmt.Println("  the invariant-1 violations are the paper's saturating-add bug;")
	fmt.Println("  invariants 7-9 are the missing alignment preconditions;")
	fmt.Println("  invariant 10 is the missing total-size bound.")
	fmt.Println()

	fixed := verify.Verify(pool.ComputeLayout, 20000, 2024)
	fmt.Println("post-verification implementation (checked arithmetic, preconditions enforced):")
	fmt.Printf("  %s\n", fixed)
	if fixed.Sound() {
		fmt.Println("  no violations — every adversarial input is either rejected or yields a safe layout.")
	}

	// Show one concrete finding end to end.
	if len(legacy.Findings) > 0 {
		f := legacy.Findings[0]
		fmt.Println()
		fmt.Println("example finding against the legacy code:")
		fmt.Printf("  input:     %+v\n", f.Input)
		fmt.Printf("  layout:    %+v\n", f.Layout)
		fmt.Printf("  violation: %s\n", f.Violation)
	}
}
