// faas-scaling demonstrates ColorGuard end to end (§3.2, §6.4): a pool
// packs many small sandboxes into the address space guard-page SFI
// would waste, each striped with an MPK color; cross-sandbox accesses
// trap; recycled slots come back zeroed with their colors intact; and
// the density matches §6.4.2's ≈15x.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/workloads"
)

func main() {
	eng := core.NewEngine(core.Options{Segue: true, FSGSBASE: true})

	// A pool of 64 MiB-max sandboxes with a 512 MiB guard requirement,
	// striped over the 15 usable MPK keys.
	p, err := eng.NewPool(core.PoolOptions{
		MaxMemoryBytes: 64 << 20,
		GuardBytes:     512 << 20,
		Slots:          256,
		Keys:           15,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("pool: %d slots, %d MPK stripes, %d free\n", p.Capacity(), p.Stripes(), p.Available())

	// Serve "requests" with the paper's regex-filtering handler.
	k, err := workloads.FaaS().Find("regex-filtering")
	if err != nil {
		panic(err)
	}
	cm, err := eng.Compile(k.Build(false))
	if err != nil {
		panic(err)
	}

	var boxes []*core.Sandbox
	for i := 0; i < 10; i++ {
		sb, err := p.Instantiate(cm, nil)
		if err != nil {
			panic(err)
		}
		res, err := sb.Call("run", 64)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  request %2d: matched %d of 64 URLs (%.1f µs simulated)\n",
			i, res[0], sb.SimulatedNanos()/1e3)
		boxes = append(boxes, sb)
	}
	fmt.Printf("after 10 requests: %d slots free\n", p.Available())
	for _, sb := range boxes {
		sb.Close()
	}
	fmt.Printf("after recycling:   %d slots free\n\n", p.Available())

	// The §6.4.2 density computation: 408 MB memories in an 85 TiB
	// budget, with and without striping.
	noCG, err := pool.ComputeLayout(pool.Config{
		MaxMemoryBytes: 408 << 20,
		GuardBytes:     6<<30 - 408<<20,
		TotalBytes:     85 << 40,
	})
	if err != nil {
		panic(err)
	}
	withCG, err := pool.ComputeLayout(pool.Config{
		MaxMemoryBytes: 408 << 20,
		GuardBytes:     6<<30 - 408<<20,
		TotalBytes:     85 << 40,
		Keys:           15,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("address-space density (408 MB linear memories, 85 TiB budget):")
	fmt.Printf("  guard regions only: %6d instances\n", noCG.NumSlots)
	fmt.Printf("  with ColorGuard:    %6d instances (%.1fx; paper: 14,582 -> 218,716)\n",
		withCG.NumSlots, float64(withCG.NumSlots)/float64(noCG.NumSlots))
}
