// epoch-scheduler shows the mechanism under the FaaS comparison (§6.4):
// Wasmtime-style epoch interruption lets one thread preempt and resume
// sandboxes at user level. Three instances run long loops; a
// round-robin scheduler slices them on one simulated core, and each
// instance finishes with the correct result despite being interrupted
// hundreds of times.
package main

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/rt"
	"repro/internal/sfi"
)

// workModule sums i*i for i in [0, n): long enough to be preempted many
// times per epoch quantum.
func workModule() *ir.Module {
	m := ir.NewModule("work", 1, 1)
	fb := m.NewFunc("work", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(1).Get(1).I32Mul().Get(2).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("work")
	return m
}

func main() {
	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	cfg.EpochChecks = true // compile epoch checks into loop headers
	mod, err := rt.CompileModule(workModule(), cfg)
	if err != nil {
		panic(err)
	}

	type job struct {
		inst   *rt.Instance
		n      uint64
		done   bool
		yields int
	}
	var jobs []*job
	for i, n := range []uint64{300000, 200000, 100000} {
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true, Place: isolation.Colored(uint8(i + 1))})
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, &job{inst: inst, n: n})
	}

	// Round-robin scheduler: each slice is a 50k-cycle epoch.
	const quantum = 50_000
	fmt.Println("scheduling 3 sandboxes on one simulated core (50k-cycle quanta):")
	started := make([]bool, len(jobs))
	for {
		live := 0
		for i, j := range jobs {
			if j.done {
				continue
			}
			live++
			j.inst.Mach.EpochEnabled = true
			j.inst.Mach.EpochDeadline = j.inst.Mach.Stats.Cycles + quantum
			var err error
			if !started[i] {
				started[i] = true
				_, err = j.inst.Invoke("work", j.n)
			} else {
				err = j.inst.Resume()
			}
			if err == nil {
				j.done = true
				fmt.Printf("  job %d finished: work(%d) = %d after %d preemptions (%.2f ms simulated)\n",
					i, j.n, j.inst.Mach.Result(), j.yields,
					j.inst.Mach.Stats.Nanos(&j.inst.Mach.Cost)/1e6)
				continue
			}
			var trap *cpu.Trap
			if !errors.As(err, &trap) || trap.Kind != cpu.TrapEpoch {
				panic(err)
			}
			j.yields++
		}
		if live == 0 {
			break
		}
	}

	fmt.Println()
	fmt.Println("every preemption and resume is a user-level transition —")
	fmt.Println("with ColorGuard, a PKRU write (≈44 cycles) instead of a process switch (microseconds).")
}
