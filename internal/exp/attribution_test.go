package exp

import (
	"testing"

	"repro/internal/telemetry"
)

// TestGoldenTablesWithAttribution extends PR 3's inertness guarantee to
// the span layer: with per-request phase attribution armed process-wide
// (on top of metrics and tracing), experiment tables stay byte-identical
// to the goldens. Spans observe the simulation's arithmetic; they must
// never participate in it.
func TestGoldenTablesWithAttribution(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.SetEnabled(true)
	telemetry.SetSpansEnabled(true)
	telemetry.Trace.Enable()
	defer func() {
		telemetry.Trace.Disable()
		telemetry.SetSpansEnabled(false)
		telemetry.SetEnabled(false)
	}()

	// The attribution table itself runs here too: its golden was pinned
	// with RecordPhases already on, so the process-wide switch must not
	// shift a single digit. fig7b is kept off the -race leg for the same
	// timeout reason as TestGoldenTablesWithTelemetry.
	ids := []string{"transition", "attribution", "scaling", "mte"}
	if !raceEnabled {
		ids = append(ids, "fig7b")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) { checkGolden(t, id) })
	}
}
