package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// The parallel experiment engine. Experiments decompose into
// independent cells — one (kernel, config, args) measurement each; a
// worker pool fans the cells across CPUs and results are collected in
// cell order, so every table, checksum cross-check, and error is
// byte-identical to a serial run. Cells are independent by
// construction: each measurement runs on a fresh rt.Instance (own
// address space, own machine), and the only shared state — the module
// compile cache and the sim-cycle counter — is concurrency-safe.

// parallelismOverride holds the configured worker count; 0 means
// runtime.NumCPU().
var parallelismOverride atomic.Int64

// SetParallelism sets the engine's worker count. n <= 0 restores the
// default of runtime.NumCPU(). The root bench harness and cmd/benchtab
// expose this as -j.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelismOverride.Store(int64(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := parallelismOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// parallelMap applies f to every item on the engine's worker pool and
// returns the results and errors indexed like items. Every item runs
// even when another fails, so callers can walk the error slice in
// serial-iteration order and report exactly the error a serial run
// would have hit first, independent of goroutine scheduling.
func parallelMap[T, R any](items []T, f func(T) (R, error)) ([]R, []error) {
	n := len(items)
	res := make([]R, n)
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}

	// exec runs one item; when telemetry is on it is wrapped to count
	// the cell, accumulate wall time, and emit a span on the wall-time
	// trace track (tid = worker). Results are unaffected either way.
	exec := func(i, worker int) {
		res[i], errs[i] = f(items[i])
	}
	tele := telemetry.Enabled()
	var cellNs atomic.Uint64
	if tele {
		ctrCells := telemetry.Default.Counter("exp.cells")
		ctrCellNs := telemetry.Default.Counter("exp.cell_wall_ns")
		inner := exec
		exec = func(i, worker int) {
			start := telemetry.Trace.Now()
			t0 := time.Now()
			inner(i, worker)
			d := uint64(time.Since(t0))
			ctrCells.Inc()
			ctrCellNs.Add(d)
			cellNs.Add(d)
			telemetry.Trace.Span("cell", "exp", telemetry.PidWall, worker,
				start, float64(d))
		}
	}
	mapStart := time.Now()

	if workers <= 1 {
		for i := range items {
			exec(i, 0)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					exec(i, worker)
				}
			}(w)
		}
		wg.Wait()
	}

	if tele && n > 0 {
		// Pool-level gauges describe the most recent fan-out: worker
		// count, fraction of worker-seconds spent inside cells, and
		// measured cell throughput.
		if workers < 1 {
			workers = 1
		}
		telemetry.Default.Gauge("exp.workers").Set(int64(workers))
		if elapsed := time.Since(mapStart); elapsed > 0 {
			util := float64(cellNs.Load()) / (float64(elapsed) * float64(workers)) * 100
			telemetry.Default.Gauge("exp.worker_utilization_pct").Set(int64(util + 0.5))
			telemetry.Default.Gauge("exp.cells_per_sec").Set(int64(float64(n)/elapsed.Seconds() + 0.5))
		}
	}
	return res, errs
}

// firstErr returns the lowest-index non-nil error.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cell is one experiment measurement: a kernel under a configuration.
type cell struct {
	Kernel workloads.Kernel
	Cfg    sfi.Config
	Args   []uint64
}

// measureCells measures every cell across the worker pool, results in
// cell order.
func measureCells(cells []cell) ([]Measurement, []error) {
	return parallelMap(cells, func(c cell) (Measurement, error) {
		return MeasureKernel(c.Kernel, c.Cfg, c.Args)
	})
}
