package exp

import (
	"fmt"

	"repro/internal/isolation"
	"repro/internal/report"
)

// BackendMatrix summarizes the unified isolation layer: for each
// backend the per-crossing transition cost (§6.4.1, §6.4.3), the
// per-slot lifecycle costs for a 64 KiB linear memory (§7), and the
// slot density the mechanism reaches in the §6.4.2 address budget
// (408 MB memories in 85 TiB). It is the paper's comparison collapsed
// onto the Backend interface: every number comes from the same cost
// models the runtime and the FaaS simulator charge.
func BackendMatrix() (*report.Table, error) {
	const memKiB = uint64(64 << 10)
	budget := uint64(85) << 40
	maxMem := uint64(408) << 20
	guard := uint64(6)<<30 - maxMem

	t := &report.Table{
		ID: "backend-matrix", Title: "Isolation backends: transition, lifecycle, and density",
		Headers: []string{"backend", "round trip ns", "switch ns", "init µs/64K", "reuse µs/64K", "teardown µs/64K", "slots in 85 TiB"},
		Notes: []string{
			"round trip: enter+leave one sandbox invocation; switch: extra cost when domains are OS processes",
			"init: first allocation (mmap+zero+coloring); reuse: allocation after a recycle; teardown: madvise recycle",
			"mte(+fix) is the MTE backend under the proposed tag-preserving madvise",
		},
	}
	type variant struct {
		name     string
		kind     isolation.Kind
		preserve bool
	}
	variants := []variant{
		{"guardpage", isolation.GuardPage, false},
		{"colorguard", isolation.ColorGuard, false},
		{"mte", isolation.MTE, false},
		{"mte(+fix)", isolation.MTE, true},
		{"multiproc", isolation.MultiProc, false},
	}
	for _, v := range variants {
		trans := isolation.TransitionFor(v.kind)
		life := isolation.LifecycleFor(v.kind, v.preserve)
		cfg := isolation.Config{MaxMemoryBytes: maxMem, GuardBytes: guard, TotalBytes: budget, Keys: 15}
		l, err := isolation.PlanLayout(v.kind, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.2f", trans.RoundTripNs()),
			fmt.Sprintf("%.0f", trans.SwitchNs+trans.RefillNs),
			fmt.Sprintf("%.0f", life.InitNs(memKiB, true)/1e3),
			fmt.Sprintf("%.0f", life.InitNs(memKiB, life.RecolorOnReuse)/1e3),
			fmt.Sprintf("%.0f", life.TeardownNs(memKiB)/1e3),
			fmt.Sprintf("%d", l.NumSlots),
		)
	}
	return t, nil
}
