//go:build !race

package exp

// raceEnabled reports whether the race detector is compiled in (used to
// skip the multi-minute golden tables under `go test -race`).
const raceEnabled = false
