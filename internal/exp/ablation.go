package exp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// AblationSegueParts decomposes Segue's win on a memory-heavy kernel:
// classic SFI, register-only Segue (freed GPR + segment-carried base
// addition), loads-only, and full Segue (operand-slot folding + free
// truncation).
func AblationSegueParts() (*report.Table, error) {
	k, err := workloads.Spec2006().Find("464_h264ref")
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		name string
		cfg  sfi.Config
	}{
		{"guard (classic SFI)", sfi.DefaultConfig(sfi.ModeGuard)},
		{"segue register-only", func() sfi.Config {
			c := sfi.DefaultConfig(sfi.ModeSegue)
			c.FoldOperandSlot = false
			return c
		}()},
		{"segue loads-only", func() sfi.Config {
			c := sfi.DefaultConfig(sfi.ModeSegue)
			c.SegueLoadsOnly = true
			return c
		}()},
		{"segue full", sfi.DefaultConfig(sfi.ModeSegue)},
		{"segue hybrid (cost function)", func() sfi.Config {
			c := sfi.DefaultConfig(sfi.ModeSegue)
			c.Hybrid = true
			return c
		}()},
	}
	t := &report.Table{
		ID: "ablation-segue", Title: "Decomposing Segue on 464_h264ref (normalized runtime)",
		Headers: []string{"configuration", "normalized", "insts", "code bytes"},
		Notes:   []string{"each step recovers part of the gap to native (1.0)"},
	}
	cells := []cell{{k, sfi.DefaultConfig(sfi.ModeNative), k.Args}}
	for _, c := range cfgs {
		cells = append(cells, cell{k, c.cfg, k.Args})
	}
	ms, errs := measureCells(cells)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	base := ms[0]
	for i, c := range cfgs {
		m := ms[i+1]
		t.AddRow(c.name, report.Norm(m.Cycles/base.Cycles), fmt.Sprintf("%d", m.Insts), fmt.Sprintf("%d", m.CodeBytes))
	}
	return t, nil
}

// AblationGuardGeometry contrasts the address-space/performance
// trade-offs of guard geometries: classic 4+4 GiB guards, Wasmtime's
// 2+2 GiB shared pre-guard scheme, and explicit bounds checks (no
// guards at all).
func AblationGuardGeometry() (*report.Table, error) {
	k, err := workloads.Spec2006().Find("462_libquantum")
	if err != nil {
		return nil, err
	}
	signedCfg := sfi.DefaultConfig(sfi.ModeGuard)
	signedCfg.SignedOffset = true
	ms, errs := measureCells([]cell{
		{k, sfi.DefaultConfig(sfi.ModeNative), k.Args},
		{k, sfi.DefaultConfig(sfi.ModeGuard), k.Args},
		{k, signedCfg, k.Args},
		{k, sfi.DefaultConfig(sfi.ModeBoundsCheck), k.Args},
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	base, guard, signed, bounds := ms[0], ms[1], ms[2], ms[3]

	budget := uint64(85) << 40
	slots := func(guardB, pre uint64) int {
		l, err := isolation.PlanLayout(isolation.GuardPage, isolation.Config{
			MaxMemoryBytes: 4 << 30, GuardBytes: guardB,
			PreGuardBytes: pre, TotalBytes: budget,
		})
		if err != nil {
			return 0
		}
		return l.NumSlots
	}
	t := &report.Table{
		ID: "ablation-guards", Title: "Guard geometry: runtime cost vs 4 GiB-memory slot density",
		Headers: []string{"scheme", "normalized runtime", "slots in 85 TiB"},
		Notes: []string{
			"guard regions trade address space for zero-cost checks; bounds checks trade cycles for density",
		},
	}
	t.AddRow("4+4 GiB guards (classic Wasm)", report.Norm(guard.Cycles/base.Cycles), fmt.Sprintf("%d", slots(4<<30, 0)))
	t.AddRow("2+2 GiB signed-offset (Wasmtime)", report.Norm(signed.Cycles/base.Cycles), fmt.Sprintf("%d", slots(2<<30, 2<<30)))
	t.AddRow("explicit bounds checks", report.Norm(bounds.Cycles/base.Cycles), fmt.Sprintf("%d", slots(4096, 0)))
	return t, nil
}

// AblationStripeCount sweeps the available MPK keys to show the
// density frontier ColorGuard opens.
func AblationStripeCount() (*report.Table, error) {
	budget := uint64(85) << 40
	maxMem := uint64(408) << 20
	guard := uint64(6)<<30 - maxMem
	t := &report.Table{
		ID: "ablation-stripes", Title: "Slot density vs available MPK keys (408 MB memories)",
		Headers: []string{"keys", "stripes", "slots", "density vs no striping"},
	}
	baseL, err := isolation.PlanLayout(isolation.GuardPage, isolation.Config{MaxMemoryBytes: maxMem, GuardBytes: guard, TotalBytes: budget})
	if err != nil {
		return nil, err
	}
	for _, keys := range []int{0, 2, 4, 8, 15} {
		l, err := isolation.PlanLayout(isolation.ColorGuard, isolation.Config{
			MaxMemoryBytes: maxMem, GuardBytes: guard,
			TotalBytes: budget, Keys: keys,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", keys), fmt.Sprintf("%d", l.NumStripes), fmt.Sprintf("%d", l.NumSlots),
			fmt.Sprintf("%.2fx", float64(l.NumSlots)/float64(baseL.NumSlots)))
	}
	return t, nil
}

// AblationFSGSBASE quantifies §4.1's deployment concern: on CPUs
// without FSGSBASE, every segment-base write is an arch_prctl system
// call, which hurts transition-heavy workloads like per-glyph font
// rendering.
func AblationFSGSBASE() (*report.Table, error) {
	k, err := workloads.Firefox().Find("font")
	if err != nil {
		return nil, err
	}
	measure := func(fsgsbase bool) (float64, error) {
		mod, err := rt.CompileModuleCached(
			rt.ModuleKey{Name: k.Name, Cfg: sfi.DefaultConfig(sfi.ModeSegue)},
			func() *ir.Module { return k.Build(false) })
		if err != nil {
			return 0, err
		}
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: fsgsbase})
		if err != nil {
			return 0, err
		}
		const glyphs = 800
		for i := 0; i < glyphs; i++ {
			if _, err := inst.Invoke("glyph", uint64(i)); err != nil {
				return 0, err
			}
		}
		addSimCycles(inst.Mach.Stats.Cycles)
		return inst.Mach.Stats.Nanos(&inst.Mach.Cost) / glyphs, nil
	}
	res, errs := parallelMap([]bool{true, false}, measure)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	fast, slow := res[0], res[1]
	t := &report.Table{
		ID: "ablation-fsgsbase", Title: "Per-glyph cost: FSGSBASE vs arch_prctl segment writes",
		Headers: []string{"segment-write path", "ns/glyph"},
		Notes: []string{
			"pre-IvyBridge CPUs lack FSGSBASE; Firefox must fall back to the syscall (§4.1)",
			fmt.Sprintf("syscall fallback adds %s per glyph", report.Pct(slow/fast-1)),
		},
	}
	t.AddRow("wrgsbase (FSGSBASE)", fmt.Sprintf("%.1f", fast))
	t.AddRow("arch_prctl syscall", fmt.Sprintf("%.1f", slow))
	return t, nil
}
