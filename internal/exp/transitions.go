package exp

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
)

// TransitionSchemes crosses the four transition schemes with the four
// isolation backends: the §6.4.1 microbenchmark re-run under each
// calling convention, next to the FaaS throughput the convention buys.
// Three views per cell agree on the same cost model:
//
//   - model ns: TransitionForScheme's enter+leave round trip — the
//     convention cost plus the mechanism tax the kind cannot shed
//   - rt ns: the runtime's measured per-transition cost on a placed
//     instance (convention cycles + segment-base write + WRPKRU)
//   - faas rps: a synthetic FaaS mix simulated under the scheme
//
// The scheme only prices the convention half of a crossing, so
// ColorGuard keeps its WRPKRU gap over guardpage in every row, and
// multiproc's context-switch and cache-refill costs never move.
func TransitionSchemes() (*report.Table, error) {
	kinds := []struct {
		kind  isolation.Kind
		procs int
	}{
		{isolation.GuardPage, 1},
		{isolation.ColorGuard, 1},
		{isolation.MTE, 1},
		{isolation.MultiProc, 8},
	}

	type cell struct {
		scheme isolation.Scheme
		kind   isolation.Kind
		procs  int
	}
	var cells []cell
	for _, s := range isolation.Schemes() {
		for _, k := range kinds {
			cells = append(cells, cell{s, k.kind, k.procs})
		}
	}

	// Synthetic per-request cost (as in FaultSweep): no emulator
	// measurement, so the golden depends only on the simulator and the
	// isolation cost models. The kernel is small (5 µs) and the offered
	// load saturating, so the throughput column is overhead-bound and
	// the convention choice is visible in it.
	w := faas.Workload{Name: "synthetic", ComputeNs: 5_000, Pages: 16}

	rows, errs := parallelMap(cells, func(c cell) ([]string, error) {
		model := isolation.TransitionForScheme(c.scheme, c.kind)
		rtNs, err := measureSchemeTransition(c.scheme, c.kind)
		if err != nil {
			return nil, err
		}
		cfg := faas.SchemeConfig(w, c.kind, c.scheme, c.procs)
		cfg.ArrivalsPerEpoch = 250
		cfg.DurationNs = 0.5e9
		r := faas.Run(cfg)
		return []string{
			string(c.scheme),
			string(c.kind),
			fmt.Sprintf("%.2f", model.RoundTripNs()),
			fmt.Sprintf("%.2f", rtNs),
			fmt.Sprintf("%.0f", r.ThroughputRPS),
		}, nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}

	// Self-check the headline claim before pinning it into the golden:
	// the zero-cost convention must beat the default round trip on every
	// same-process backend.
	roundTrip := func(s isolation.Scheme, k isolation.Kind) float64 {
		return isolation.TransitionForScheme(s, k).RoundTripNs()
	}
	for _, k := range []isolation.Kind{isolation.GuardPage, isolation.ColorGuard, isolation.MTE} {
		if zc, def := roundTrip(isolation.SchemeZeroCost, k), roundTrip(isolation.SchemeDefault, k); zc >= def {
			return nil, fmt.Errorf("exp: zerocost round trip %.2f ns >= default %.2f ns on %s", zc, def, k)
		}
	}

	t := &report.Table{
		ID: "transitions", Title: "Transition schemes across isolation backends (§6.4.1 + FaaS mix)",
		Headers: []string{"scheme", "backend", "model rt ns", "rt ns/trans", "faas rps"},
		Notes: []string{
			"model rt ns: enter+leave round trip from the isolation cost model; rt ns/trans: measured per transition on a placed runtime instance",
			"faas rps: synthetic 5 µs/request mix at saturating load (250 arrivals/ms epoch); multiproc simulated at 8 processes",
			"schemes price the calling convention only: ColorGuard keeps its WRPKRU tax and multiproc its switch+refill costs under every scheme",
		},
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// measureSchemeTransition runs the nop microbenchmark on an instance
// placed in a backend reserved under the scheme and returns the
// measured ns per transition (two transitions per invoke).
func measureSchemeTransition(scheme isolation.Scheme, kind isolation.Kind) (float64, error) {
	mod, err := rt.CompileModuleCached(
		rt.ModuleKey{Name: "nop", Cfg: sfi.DefaultConfig(sfi.ModeSegue)},
		nopModule)
	if err != nil {
		return 0, err
	}
	// 16 slots so ColorGuard's striping has room for its 15 keys — a
	// single-slot pool collapses to one stripe and the slot loses its
	// color (and with it the WRPKRU this microbenchmark measures).
	cfg := isolation.Config{
		Slots:          16,
		MaxMemoryBytes: 1 << 20,
		GuardBytes:     1 << 20,
		Scheme:         scheme,
	}
	if kind == isolation.ColorGuard {
		cfg.Keys = 15
	}
	b, err := isolation.NewReserved(kind, mem.NewAS(47), cfg)
	if err != nil {
		return 0, err
	}
	defer b.Release()
	slot, err := b.Allocate(1 << 16)
	if err != nil {
		return 0, err
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{
		FSGSBASE: true,
		Place:    isolation.Place(b, slot),
	})
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	const reps = 10
	for i := 0; i < reps; i++ {
		if _, err := inst.Invoke("nop"); err != nil {
			return 0, err
		}
	}
	addSimCycles(inst.Mach.Stats.Cycles)
	return inst.Mach.Stats.Nanos(&inst.Mach.Cost) / (2 * reps), nil
}
