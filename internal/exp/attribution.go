package exp

import (
	"fmt"
	"math"

	"repro/internal/faas"
	"repro/internal/isolation"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// Attribution decomposes the simulated serving latency into the fixed
// observability phases, per transition scheme × isolation backend: the
// table form of the paper's central claim that a scheme or mechanism
// improves a *specific* phase of a sandboxed call. Each row is the mean
// virtual nanoseconds a completed request spends in each phase, so
// "zerocost removes X ns of the transition phase, not the queue phase"
// is directly readable: between schemes on the same backend, only the
// trans column moves; between backends under one scheme, the exec and
// place columns carry the mechanism differences.
//
// The load is deliberately non-saturating (the queue column must be a
// stable property of the configuration, not of queue blow-up), and
// cold starts are on so the placement phase is populated.
func Attribution() (*report.Table, error) {
	kinds := []struct {
		kind  isolation.Kind
		procs int
	}{
		{isolation.GuardPage, 1},
		{isolation.ColorGuard, 1},
		{isolation.MTE, 1},
		{isolation.MultiProc, 8},
	}

	type cell struct {
		scheme isolation.Scheme
		kind   isolation.Kind
		procs  int
	}
	var cells []cell
	for _, s := range isolation.Schemes() {
		for _, k := range kinds {
			cells = append(cells, cell{s, k.kind, k.procs})
		}
	}

	w := faas.Workload{Name: "synthetic", ComputeNs: 5_000, Pages: 16}
	run := func(c cell) faas.Result {
		cfg := faas.SchemeConfig(w, c.kind, c.scheme, c.procs)
		cfg.ArrivalsPerEpoch = 2
		cfg.DurationNs = 0.5e9
		cfg.ColdStart = true
		cfg.InstanceBytes = 4 << 10
		cfg.RecordPhases = true
		return faas.Run(cfg)
	}

	// mean phase shares per completed request, with entry+exit folded
	// into one transition column.
	type shares struct {
		io, queue, place, trans, exec, total float64
	}
	phaseShares := func(r faas.Result) shares {
		n := float64(r.Completed)
		p := r.PhaseTotalsNs
		s := shares{
			io:    p[telemetry.PhaseIO] / n,
			queue: p[telemetry.PhaseQueue] / n,
			place: p[telemetry.PhasePlacement] / n,
			trans: (p[telemetry.PhaseTransitionIn] + p[telemetry.PhaseTransitionOut]) / n,
			exec:  p[telemetry.PhaseExec] / n,
		}
		s.total = s.io + s.queue + s.place + s.trans + s.exec
		return s
	}

	rows, errs := parallelMap(cells, func(c cell) ([]string, error) {
		r := run(c)
		if r.Completed == 0 {
			return nil, fmt.Errorf("exp: attribution %s/%s completed no requests", c.scheme, c.kind)
		}
		s := phaseShares(r)
		return []string{
			string(c.scheme),
			string(c.kind),
			fmt.Sprintf("%.1f", s.io),
			fmt.Sprintf("%.1f", s.queue),
			fmt.Sprintf("%.1f", s.place),
			fmt.Sprintf("%.2f", s.trans),
			fmt.Sprintf("%.1f", s.exec),
			fmt.Sprintf("%.1f", s.total),
		}, nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}

	// Self-check the headline claim before pinning it: on every
	// same-process backend, moving default → zerocost must shift the
	// transition phase by about the cost-model delta while leaving the
	// exec phase essentially untouched.
	for _, k := range []isolation.Kind{isolation.GuardPage, isolation.ColorGuard, isolation.MTE} {
		def := phaseShares(run(cell{isolation.SchemeDefault, k, 1}))
		zc := phaseShares(run(cell{isolation.SchemeZeroCost, k, 1}))
		modelDelta := isolation.TransitionForScheme(isolation.SchemeDefault, k).RoundTripNs() -
			isolation.TransitionForScheme(isolation.SchemeZeroCost, k).RoundTripNs()
		transDelta := def.trans - zc.trans
		if transDelta < 0.9*modelDelta || transDelta > 1.1*modelDelta {
			return nil, fmt.Errorf("exp: attribution %s: transition delta %.2f ns vs model %.2f ns", k, transDelta, modelDelta)
		}
		if execDelta := math.Abs(def.exec - zc.exec); execDelta > 0.1*modelDelta {
			return nil, fmt.Errorf("exp: attribution %s: exec phase moved %.2f ns across schemes", k, execDelta)
		}
	}

	t := &report.Table{
		ID: "attribution", Title: "Per-request latency attribution by phase (scheme × backend)",
		Headers: []string{"scheme", "backend", "io ns", "queue ns", "place ns", "trans ns", "exec ns", "total ns"},
		Notes: []string{
			"mean virtual ns per completed request in each phase; trans = transition_in + transition_out; total = their sum (conserves arrival-to-completion latency)",
			"synthetic 5 µs/request mix at non-saturating load (2 arrivals/ms epoch), cold starts on 4 KiB instances (MTE tag-zeroing makes larger instances saturate); multiproc simulated at 8 processes",
			"between schemes on one backend only the trans column moves (self-checked against the cost-model delta); mechanism taxes stay in place/exec",
		},
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
