// Package exp implements one function per table and figure in the
// paper's evaluation (§6, §7): each runs the corresponding experiment
// on the simulated machine and returns a report.Table with the same
// rows/series the paper presents. cmd/benchtab, the root bench harness,
// and the EXPERIMENTS.md generator all drive this registry.
package exp

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Measurement is one kernel execution's outcome.
type Measurement struct {
	Cycles       float64
	Nanos        float64
	Insts        uint64
	BytesFetched uint64
	CodeBytes    int
	Checksum     uint64
	Transitions  uint64
}

// simCycleBits accumulates simulated cycles across all measurements
// (float64 bits, CAS-updated so parallel cells can add concurrently).
var simCycleBits atomic.Uint64

func addSimCycles(c float64) {
	for {
		old := simCycleBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + c)
		if simCycleBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// TakeSimCycles returns the simulated cycles accumulated by all
// measurements since the last call, resetting the counter. The bench
// harness and cmd/benchtab report this next to wall-clock time.
func TakeSimCycles() float64 { return math.Float64frombits(simCycleBits.Swap(0)) }

// MeasureKernel compiles and runs a kernel under cfg with the given
// arguments, on a fresh instance. Compiled modules come from the
// rt compile cache (kernel names are unique across suites), so repeated
// measurements of one (kernel, config) cell skip recompilation;
// instances and machines are always fresh, keeping cells independent.
func MeasureKernel(k workloads.Kernel, cfg sfi.Config, args []uint64) (Measurement, error) {
	native := cfg.Mode == sfi.ModeNative
	variant := native && k.PtrSensitive
	mod, err := rt.CompileModuleCached(
		rt.ModuleKey{Name: k.Name, Variant: variant, Cfg: cfg},
		func() *ir.Module { return k.Build(variant) })
	if err != nil {
		return Measurement{}, fmt.Errorf("exp: %s/%v: %w", k.Name, cfg.Mode, err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		return Measurement{}, err
	}
	res, err := inst.Invoke(k.Entry, args...)
	if err != nil {
		return Measurement{}, fmt.Errorf("exp: %s/%v: %w", k.Name, cfg.Mode, err)
	}
	addSimCycles(inst.Mach.Stats.Cycles)
	if telemetry.Enabled() {
		inst.Mach.Hier.PublishTo(telemetry.Default, "cpu")
	}
	m := Measurement{
		Cycles:       inst.Mach.Stats.Cycles,
		Nanos:        inst.Mach.Stats.Nanos(&inst.Mach.Cost),
		Insts:        inst.Mach.Stats.Insts,
		BytesFetched: inst.Mach.Stats.BytesFetched,
		CodeBytes:    mod.Prog.CodeBytes(),
		Transitions:  inst.Transitions,
	}
	if len(res) > 0 {
		m.Checksum = res[0]
	}
	return m, nil
}

// normalizedSuite measures every kernel of a suite under each config,
// normalizing cycles to the native baseline. Checksums are
// cross-checked between configurations (except for pointer-sensitive
// kernels, whose native build is a different program).
func normalizedSuite(suite workloads.Suite, configs []sfi.Config, names []string) (*report.Table, []map[string]float64, error) {
	return normalizedSuiteVs(suite, sfi.DefaultConfig(sfi.ModeNative), configs, names)
}

// normalizedSuiteVs is normalizedSuite with an explicit native baseline
// configuration (the WAMR experiments use a vectorizing native
// baseline, since clang vectorizes the same loops).
//
// Measurements fan out over the parallel engine; cells are laid out in
// serial execution order (per kernel: baseline, then each config) and
// results are collected in that order, so the table, the checksum
// cross-checks, and any reported error match a serial run exactly.
func normalizedSuiteVs(suite workloads.Suite, baseCfg sfi.Config, configs []sfi.Config, names []string) (*report.Table, []map[string]float64, error) {
	cells := make([]cell, 0, len(suite.Kernels)*(1+len(configs)))
	for _, k := range suite.Kernels {
		cells = append(cells, cell{k, baseCfg, k.Args})
		for _, cfg := range configs {
			cells = append(cells, cell{k, cfg, k.Args})
		}
	}
	ms, errs := measureCells(cells)

	t := &report.Table{Headers: append([]string{"benchmark"}, names...)}
	norms := make([]map[string]float64, len(configs))
	for i := range norms {
		norms[i] = map[string]float64{}
	}
	i := 0
	for _, k := range suite.Kernels {
		base, err := ms[i], errs[i]
		i++
		if err != nil {
			return nil, nil, err
		}
		row := []string{k.Name}
		for ci := range configs {
			m, err := ms[i], errs[i]
			i++
			if err != nil {
				return nil, nil, err
			}
			if !k.PtrSensitive && m.Checksum != base.Checksum {
				return nil, nil, fmt.Errorf("exp: %s under %s: checksum %#x != native %#x",
					k.Name, names[ci], m.Checksum, base.Checksum)
			}
			n := m.Cycles / base.Cycles
			norms[ci][k.Name] = n
			row = append(row, report.Norm(n))
		}
		t.Rows = append(t.Rows, row)
	}
	// Geomean row (sorted-key fold, so the float accumulation order is
	// deterministic).
	row := []string{"geomean"}
	for ci := range configs {
		row = append(row, report.Norm(geomeanOf(norms[ci])))
	}
	t.Rows = append(t.Rows, row)
	return t, norms, nil
}

func geomeanOf(m map[string]float64) float64 {
	var vals []float64
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return stats.Geomean(vals)
}

// overheadEliminated reports what fraction of the baseline's overhead
// versus native an optimization removes: (base - opt) / (base - 1).
func overheadEliminated(base, opt float64) float64 {
	if base <= 1 {
		return 0
	}
	return (base - opt) / (base - 1)
}

// Experiment ties a paper artifact to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*report.Table, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Segue code generation on the Figure 1 patterns", Fig1Patterns},
		{"fig3", "SPEC CPU 2006 on Wasm2c, normalized to native (Figure 3)", Fig3SpecWasm2c},
		{"boundsnote", "Segue under explicit bounds checks (§6.1 note)", BoundsCheckSegue},
		{"table2", "Compiled binary sizes, SPEC CPU 2006 (Table 2)", Table2BinarySize},
		{"firefox-font", "Firefox font rendering (§6.1)", FirefoxFont},
		{"firefox-xml", "Firefox XML parsing (§6.1)", FirefoxXML},
		{"fig4", "Sightglass on WAMR (Figure 4)", Fig4SightglassWAMR},
		{"polybench", "PolybenchC on WAMR (§6.2)", PolybenchWAMR},
		{"dhrystone", "Dhrystone on WAMR (§6.2)", DhrystoneWAMR},
		{"fig5", "SPEC CPU 2017 on LFI, normalized to native (Figure 5)", Fig5SpecLFI},
		{"transition", "Transition cost microbenchmark (§6.4.1)", TransitionCost},
		{"transitions", "Transition schemes across isolation backends", TransitionSchemes},
		{"attribution", "Per-request latency attribution by phase", Attribution},
		{"scaling", "Slot-scaling microbenchmark (§6.4.2)", ScalingSlots},
		{"fig6", "ColorGuard vs multiprocess throughput (Figure 6)", Fig6Throughput},
		{"fig7a", "Context switches (Figure 7a)", Fig7aContextSwitches},
		{"fig7b", "dTLB misses (Figure 7b)", Fig7bDTLBMisses},
		{"table1", "Allocator-layout verification (Table 1 / §5.2)", Table1Verification},
		{"mte", "ColorGuard on ARM MTE (§7)", MTEObservations},
		{"backend-matrix", "Isolation-backend cost and density matrix", BackendMatrix},
		{"hardening", "Spectre-hardening tax across SFI modes and backends (Swivel)", SwivelHardening},
		{"faultsweep", "Fault injection and graceful degradation by backend", FaultSweep},
		{"ablation-segue", "Ablation: decomposing Segue's benefits", AblationSegueParts},
		{"ablation-guards", "Ablation: guard geometry vs density", AblationGuardGeometry},
		{"ablation-stripes", "Ablation: stripe count vs slot density", AblationStripeCount},
		{"ablation-fsgsbase", "Ablation: FSGSBASE vs syscall segment writes", AblationFSGSBASE},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// instanceStats is a helper for experiments needing machine counters
// beyond MeasureKernel's summary.
func runOnInstance(k workloads.Kernel, cfg sfi.Config, opts rt.InstanceOptions, args []uint64) (*rt.Instance, error) {
	mod, err := rt.CompileModuleCached(
		rt.ModuleKey{Name: k.Name, Cfg: cfg},
		func() *ir.Module { return k.Build(false) })
	if err != nil {
		return nil, err
	}
	inst, err := rt.NewInstance(mod, opts)
	if err != nil {
		return nil, err
	}
	if _, err := inst.Invoke(k.Entry, args...); err != nil {
		return nil, err
	}
	addSimCycles(inst.Mach.Stats.Cycles)
	return inst, nil
}

var _ = cpu.DefaultCostModel // keep cpu linked for cost constants used across files
