// Package exp implements one function per table and figure in the
// paper's evaluation (§6, §7): each runs the corresponding experiment
// on the simulated machine and returns a report.Table with the same
// rows/series the paper presents. cmd/benchtab, the root bench harness,
// and the EXPERIMENTS.md generator all drive this registry.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Measurement is one kernel execution's outcome.
type Measurement struct {
	Cycles       float64
	Nanos        float64
	Insts        uint64
	BytesFetched uint64
	CodeBytes    int
	Checksum     uint64
	Transitions  uint64
}

// MeasureKernel compiles and runs a kernel under cfg with the given
// arguments, on a fresh instance.
func MeasureKernel(k workloads.Kernel, cfg sfi.Config, args []uint64) (Measurement, error) {
	native := cfg.Mode == sfi.ModeNative
	mod, err := rt.CompileModule(k.Build(native && k.PtrSensitive), cfg)
	if err != nil {
		return Measurement{}, fmt.Errorf("exp: %s/%v: %w", k.Name, cfg.Mode, err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		return Measurement{}, err
	}
	res, err := inst.Invoke(k.Entry, args...)
	if err != nil {
		return Measurement{}, fmt.Errorf("exp: %s/%v: %w", k.Name, cfg.Mode, err)
	}
	m := Measurement{
		Cycles:       inst.Mach.Stats.Cycles,
		Nanos:        inst.Mach.Stats.Nanos(&inst.Mach.Cost),
		Insts:        inst.Mach.Stats.Insts,
		BytesFetched: inst.Mach.Stats.BytesFetched,
		CodeBytes:    mod.Prog.CodeBytes(),
		Transitions:  inst.Transitions,
	}
	if len(res) > 0 {
		m.Checksum = res[0]
	}
	return m, nil
}

// normalizedSuite measures every kernel of a suite under each config,
// normalizing cycles to the native baseline. Checksums are
// cross-checked between configurations (except for pointer-sensitive
// kernels, whose native build is a different program).
func normalizedSuite(suite workloads.Suite, configs []sfi.Config, names []string) (*report.Table, []map[string]float64, error) {
	return normalizedSuiteVs(suite, sfi.DefaultConfig(sfi.ModeNative), configs, names)
}

// normalizedSuiteVs is normalizedSuite with an explicit native baseline
// configuration (the WAMR experiments use a vectorizing native
// baseline, since clang vectorizes the same loops).
func normalizedSuiteVs(suite workloads.Suite, baseCfg sfi.Config, configs []sfi.Config, names []string) (*report.Table, []map[string]float64, error) {
	t := &report.Table{Headers: append([]string{"benchmark"}, names...)}
	norms := make([]map[string]float64, len(configs))
	for i := range norms {
		norms[i] = map[string]float64{}
	}
	for _, k := range suite.Kernels {
		base, err := MeasureKernel(k, baseCfg, k.Args)
		if err != nil {
			return nil, nil, err
		}
		row := []string{k.Name}
		for ci, cfg := range configs {
			m, err := MeasureKernel(k, cfg, k.Args)
			if err != nil {
				return nil, nil, err
			}
			if !k.PtrSensitive && m.Checksum != base.Checksum {
				return nil, nil, fmt.Errorf("exp: %s under %s: checksum %#x != native %#x",
					k.Name, names[ci], m.Checksum, base.Checksum)
			}
			n := m.Cycles / base.Cycles
			norms[ci][k.Name] = n
			row = append(row, report.Norm(n))
		}
		t.Rows = append(t.Rows, row)
	}
	// Geomean row.
	row := []string{"geomean"}
	for ci := range configs {
		var vals []float64
		for _, v := range norms[ci] {
			vals = append(vals, v)
		}
		row = append(row, report.Norm(stats.Geomean(vals)))
	}
	t.Rows = append(t.Rows, row)
	return t, norms, nil
}

func geomeanOf(m map[string]float64) float64 {
	var vals []float64
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return stats.Geomean(vals)
}

// overheadEliminated reports what fraction of the baseline's overhead
// versus native an optimization removes: (base - opt) / (base - 1).
func overheadEliminated(base, opt float64) float64 {
	if base <= 1 {
		return 0
	}
	return (base - opt) / (base - 1)
}

// Experiment ties a paper artifact to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*report.Table, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Segue code generation on the Figure 1 patterns", Fig1Patterns},
		{"fig3", "SPEC CPU 2006 on Wasm2c, normalized to native (Figure 3)", Fig3SpecWasm2c},
		{"boundsnote", "Segue under explicit bounds checks (§6.1 note)", BoundsCheckSegue},
		{"table2", "Compiled binary sizes, SPEC CPU 2006 (Table 2)", Table2BinarySize},
		{"firefox-font", "Firefox font rendering (§6.1)", FirefoxFont},
		{"firefox-xml", "Firefox XML parsing (§6.1)", FirefoxXML},
		{"fig4", "Sightglass on WAMR (Figure 4)", Fig4SightglassWAMR},
		{"polybench", "PolybenchC on WAMR (§6.2)", PolybenchWAMR},
		{"dhrystone", "Dhrystone on WAMR (§6.2)", DhrystoneWAMR},
		{"fig5", "SPEC CPU 2017 on LFI, normalized to native (Figure 5)", Fig5SpecLFI},
		{"transition", "Transition cost microbenchmark (§6.4.1)", TransitionCost},
		{"scaling", "Slot-scaling microbenchmark (§6.4.2)", ScalingSlots},
		{"fig6", "ColorGuard vs multiprocess throughput (Figure 6)", Fig6Throughput},
		{"fig7a", "Context switches (Figure 7a)", Fig7aContextSwitches},
		{"fig7b", "dTLB misses (Figure 7b)", Fig7bDTLBMisses},
		{"table1", "Allocator-layout verification (Table 1 / §5.2)", Table1Verification},
		{"mte", "ColorGuard on ARM MTE (§7)", MTEObservations},
		{"ablation-segue", "Ablation: decomposing Segue's benefits", AblationSegueParts},
		{"ablation-guards", "Ablation: guard geometry vs density", AblationGuardGeometry},
		{"ablation-stripes", "Ablation: stripe count vs slot density", AblationStripeCount},
		{"ablation-fsgsbase", "Ablation: FSGSBASE vs syscall segment writes", AblationFSGSBASE},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// instanceStats is a helper for experiments needing machine counters
// beyond MeasureKernel's summary.
func runOnInstance(k workloads.Kernel, cfg sfi.Config, opts rt.InstanceOptions, args []uint64) (*rt.Instance, error) {
	mod, err := rt.CompileModule(k.Build(false), cfg)
	if err != nil {
		return nil, err
	}
	inst, err := rt.NewInstance(mod, opts)
	if err != nil {
		return nil, err
	}
	if _, err := inst.Invoke(k.Entry, args...); err != nil {
		return nil, err
	}
	return inst, nil
}

var _ = cpu.DefaultCostModel // keep cpu linked for cost constants used across files
