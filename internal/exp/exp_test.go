package exp

import (
	"fmt"
	"strings"
	"testing"
)

// fastIDs are experiments that run in well under a second.
var fastIDs = []string{"fig1", "transition", "scaling", "table1", "mte", "ablation-stripes"}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%q) lost", e.ID)
		}
	}
	if _, ok := ByID("no-such"); ok {
		t.Error("ByID accepted garbage")
	}
}

func TestFastExperiments(t *testing.T) {
	for _, id := range fastIDs {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 || len(tab.Headers) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if tab.ID != id {
			t.Errorf("%s: table id %q", id, tab.ID)
		}
		txt := tab.Text()
		md := tab.Markdown()
		if !strings.Contains(txt, tab.Headers[0]) || !strings.Contains(md, "|") {
			t.Errorf("%s: rendering broken", id)
		}
	}
}

// TestTransitionNumbers pins the §6.4.1 reproduction: the ColorGuard
// delta must stay at the WRPKRU cost (≈20 ns at 2.2 GHz).
func TestTransitionNumbers(t *testing.T) {
	tab, err := TransitionCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	var plain, cg float64
	if _, err := sscan(tab.Rows[0][1], &plain); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[1][1], &cg); err != nil {
		t.Fatal(err)
	}
	delta := cg - plain
	if delta < 15 || delta > 25 {
		t.Errorf("transition delta = %.2f ns, want ≈20", delta)
	}
	if plain < 25 || plain > 40 {
		t.Errorf("base transition = %.2f ns, want ≈30", plain)
	}
}

// TestScalingNumbers pins §6.4.2's ≈15x.
func TestScalingNumbers(t *testing.T) {
	tab, err := ScalingSlots()
	if err != nil {
		t.Fatal(err)
	}
	var base, cg float64
	if _, err := sscan(tab.Rows[0][1], &base); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[1][1], &cg); err != nil {
		t.Fatal(err)
	}
	if ratio := cg / base; ratio < 13 || ratio > 15.5 {
		t.Errorf("scaling ratio %.2f, want ≈15", ratio)
	}
}

// TestMeasureKernelChecksumGate: MeasureKernel must surface trap errors
// rather than return zeroed measurements.
func TestMeasureKernelErrors(t *testing.T) {
	e, _ := ByID("fig1")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
