package exp

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// nopModule is the empty exported function used by the transition
// microbenchmark.
func nopModule() *ir.Module {
	m := ir.NewModule("nop", 1, 1)
	fb := m.NewFunc("nop", ir.Sig(nil, []ir.ValType{ir.I32}))
	fb.I32(1)
	fb.MustBuild()
	m.MustExport("nop")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// TransitionCost reproduces §6.4.1: the per-transition cost without and
// with ColorGuard's PKRU switch.
func TransitionCost() (*report.Table, error) {
	measure := func(pkey uint8) (float64, error) {
		mod, err := rt.CompileModuleCached(
			rt.ModuleKey{Name: "nop", Cfg: sfi.DefaultConfig(sfi.ModeSegue)},
			nopModule)
		if err != nil {
			return 0, err
		}
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true, Place: isolation.Colored(pkey)})
		if err != nil {
			return 0, err
		}
		const reps = 10
		for i := 0; i < reps; i++ {
			if _, err := inst.Invoke("nop"); err != nil {
				return 0, err
			}
		}
		addSimCycles(inst.Mach.Stats.Cycles)
		// Two transitions (in+out) per invoke; subtract the function
		// body by measuring the whole and dividing per transition.
		return inst.Mach.Stats.Nanos(&inst.Mach.Cost) / (2 * reps), nil
	}
	res, errs := parallelMap([]uint8{0, 5}, measure)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	plain, cg := res[0], res[1]
	t := &report.Table{
		ID: "transition", Title: "Per-transition cost (§6.4.1)",
		Headers: []string{"configuration", "ns/transition"},
		Notes: []string{
			"paper: 30.34 ns -> 51.52 ns (a ~44-cycle WRPKRU each way at 2.2 GHz)",
			fmt.Sprintf("measured increase: %.2f ns", cg-plain),
		},
	}
	t.AddRow("wasmtime", fmt.Sprintf("%.2f", plain))
	t.AddRow("wasmtime+colorguard", fmt.Sprintf("%.2f", cg))
	return t, nil
}

// ScalingSlots reproduces §6.4.2: slot counts for 408 MB slots in a
// fixed address budget, without and with ColorGuard striping.
func ScalingSlots() (*report.Table, error) {
	budget := uint64(85) << 40
	maxMem := uint64(408) << 20
	guard := uint64(6)<<30 - maxMem
	base := isolation.Config{MaxMemoryBytes: maxMem, GuardBytes: guard, TotalBytes: budget}
	withCG := base
	withCG.Keys = 15
	l0, err := isolation.PlanLayout(isolation.GuardPage, base)
	if err != nil {
		return nil, err
	}
	l1, err := isolation.PlanLayout(isolation.ColorGuard, withCG)
	if err != nil {
		return nil, err
	}
	if err := l1.Validate(); err != nil {
		return nil, fmt.Errorf("striped layout invalid: %w", err)
	}
	t := &report.Table{
		ID: "scaling", Title: "Memory slots in an 85 TiB reservation, 408 MB linear memories",
		Headers: []string{"configuration", "slots", "stripes", "slot stride"},
		Notes: []string{
			"paper: 14,582 slots -> 218,716 (≈15x)",
			fmt.Sprintf("measured ratio: %.2fx", float64(l1.NumSlots)/float64(l0.NumSlots)),
		},
	}
	t.AddRow("wasmtime", fmt.Sprintf("%d", l0.NumSlots), fmt.Sprintf("%d", l0.NumStripes), fmt.Sprintf("%d MB", l0.SlotBytes>>20))
	t.AddRow("wasmtime+colorguard", fmt.Sprintf("%d", l1.NumSlots), fmt.Sprintf("%d", l1.NumStripes), fmt.Sprintf("%d MB", l1.SlotBytes>>20))
	return t, nil
}

// faasWorkloads measures the three handlers' per-request compute costs
// on the emulator and returns the simulation workload descriptions.
// Per request: one batch of the handler's natural unit (a full URL set
// for filtering/balancing, a page render for templating).
func faasWorkloads() ([]faas.Workload, error) {
	defs := []struct {
		kernel string
		batch  uint64
		pages  int
	}{
		{"html-templating", 10, 24},
		{"hash-load-balance", 256, 40},
		{"regex-filtering", 280, 48},
	}
	out, errs := parallelMap(defs, func(d struct {
		kernel string
		batch  uint64
		pages  int
	}) (faas.Workload, error) {
		k, err := workloads.FaaS().Find(d.kernel)
		if err != nil {
			return faas.Workload{}, err
		}
		m, err := MeasureKernel(k, sfi.DefaultConfig(sfi.ModeSegue), []uint64{d.batch})
		if err != nil {
			return faas.Workload{}, err
		}
		return faas.Workload{Name: d.kernel, ComputeNs: m.Nanos, Pages: d.pages}, nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig6Throughput runs the ColorGuard-vs-multiprocess scaling comparison
// for the three FaaS workloads across 1..15 processes.
func Fig6Throughput() (*report.Table, error) {
	ws, err := faasWorkloads()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID: "fig6", Title: "Throughput gain of ColorGuard vs multiprocess scaling (%)",
		Headers: []string{"processes", ws[0].Name, ws[1].Name, ws[2].Name},
		Notes:   []string{"paper: gain grows with process count, up to ≈29%"},
	}
	// Each process count is an independent pair of simulations; build
	// the rows in parallel and append them in order.
	rows, errs := parallelMap([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		func(n int) ([]string, error) {
			row := []string{fmt.Sprintf("%d", n)}
			for _, w := range ws {
				gain, _, _ := faas.GainVsMultiprocess(w, n)
				row = append(row, fmt.Sprintf("%.1f", gain))
			}
			return row, nil
		})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// Fig7aContextSwitches reports the context-switch counts behind the
// throughput difference.
func Fig7aContextSwitches() (*report.Table, error) {
	return fig7(true)
}

// Fig7bDTLBMisses reports the dTLB miss counts.
func Fig7bDTLBMisses() (*report.Table, error) {
	return fig7(false)
}

func fig7(switches bool) (*report.Table, error) {
	ws, err := faasWorkloads()
	if err != nil {
		return nil, err
	}
	t := &report.Table{Headers: []string{"processes"}}
	if switches {
		t.ID, t.Title = "fig7a", "Context switches over the simulated run (thousands)"
		t.Notes = []string{"paper: ColorGuard constant; multiprocess grows with each added process"}
	} else {
		t.ID, t.Title = "fig7b", "dTLB misses over the simulated run (millions)"
		t.Notes = []string{"paper: multiprocess misses grow faster than ColorGuard's"}
	}
	for _, w := range ws {
		t.Headers = append(t.Headers, w.Name+" (mp)", w.Name+" (cg)")
	}
	rows, errs := parallelMap([]int{1, 3, 5, 7, 9, 11, 13, 15},
		func(n int) ([]string, error) {
			row := []string{fmt.Sprintf("%d", n)}
			for _, w := range ws {
				_, cg, mp := faas.GainVsMultiprocess(w, n)
				if switches {
					row = append(row, fmt.Sprintf("%.1fK", float64(mp.CtxSwitches)/1e3), fmt.Sprintf("%.1fK", float64(cg.CtxSwitches)/1e3))
				} else {
					row = append(row, fmt.Sprintf("%.2fM", float64(mp.DTLBMisses)/1e6), fmt.Sprintf("%.2fM", float64(cg.DTLBMisses)/1e6))
				}
			}
			return row, nil
		})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// Table1Verification reproduces §5.2: the adversarial verification of
// the slot-layout computation finds the saturating-add bug and the
// missing preconditions in the legacy code, and nothing in the fixed
// version.
func Table1Verification() (*report.Table, error) {
	legacy := verify.Verify(pool.ComputeLayoutLegacy, 4000, 42)
	fixed := verify.Verify(pool.ComputeLayout, 4000, 42)
	t := &report.Table{
		ID: "table1", Title: "Layout verification under the adversarial caller model",
		Headers: []string{"implementation", "layouts checked", "inputs rejected", "violations"},
		Notes: []string{
			"paper: verification found one bug (saturating add breaking invariant 1) and four missing preconditions (invariants 7-10)",
		},
	}
	t.AddRow("legacy (pre-verification)", fmt.Sprintf("%d", legacy.Checked), fmt.Sprintf("%d", legacy.Rejected), fmt.Sprintf("%d", len(legacy.Findings)))
	t.AddRow("fixed (post-verification)", fmt.Sprintf("%d", fixed.Checked), fmt.Sprintf("%d", fixed.Rejected), fmt.Sprintf("%d", len(fixed.Findings)))
	classes := verify.Classify(legacy.Findings)
	for _, inv := range []string{"invariant 1", "invariant 2", "invariant 3", "invariant 5", "invariant 6", "invariant 7", "invariant 8", "invariant 9", "invariant 10"} {
		if n := classes[inv]; n > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("legacy violations of %s: %d", inv, n))
		}
	}
	if !fixed.Sound() {
		return nil, fmt.Errorf("fixed layout computation has findings: %s", fixed.String())
	}
	return t, nil
}

// MTEObservations reproduces §7's two cost observations on
// ColorGuard-MTE, plus the proposed tag-preserving madvise fix. Each
// configuration is one isolation backend: the plain baseline is the
// guard-page backend (mmap+zero, madvise — no coloring costs), the MTE
// rows are the MTE backend with and without the preserving madvise. The
// costs come out of the same Allocate/Recycle accounting the FaaS
// simulator consumes.
func MTEObservations() (*report.Table, error) {
	const size = 65536
	const instances = 40
	run := func(kind isolation.Kind, preserve bool) (initNs, teardownNs float64) {
		b, err := isolation.NewReserved(kind, mem.NewAS(47), isolation.Config{
			Slots:                 instances,
			MaxMemoryBytes:        size,
			GuardBytes:            1 << 20,
			PreserveTagsOnMadvise: preserve,
		})
		if err != nil {
			panic(err) // static geometry; cannot fail
		}
		slots := make([]isolation.Slot, instances)
		for i := range slots {
			s, err := b.Allocate(size)
			if err != nil {
				panic(err)
			}
			slots[i] = s
		}
		for _, s := range slots {
			if err := b.Recycle(s); err != nil {
				panic(err)
			}
		}
		init, teardown := b.LifecycleNs()
		return init / instances, teardown / instances
	}
	pi, pt := run(isolation.GuardPage, false)
	mi, mt := run(isolation.MTE, false)
	fi, ft := run(isolation.MTE, true)
	t := &report.Table{
		ID: "mte", Title: "ColorGuard-MTE: per-instance costs for 40 x 64 KiB memories (µs)",
		Headers: []string{"configuration", "init µs", "teardown µs"},
		Notes: []string{
			"paper observation 1: init 79 µs -> 2,182 µs (user-level tagging moves 32 B/instruction)",
			"paper observation 2: teardown 29 µs -> 377 µs (madvise discards tags; MPK colors survive)",
			"the proposed tag-preserving madvise restores MPK-like recycling",
		},
	}
	t.AddRow("no MTE", fmt.Sprintf("%.0f", pi/1e3), fmt.Sprintf("%.0f", pt/1e3))
	t.AddRow("MTE (current kernel)", fmt.Sprintf("%.0f", mi/1e3), fmt.Sprintf("%.0f", mt/1e3))
	t.AddRow("MTE + tag-preserving madvise", fmt.Sprintf("%.0f", fi/1e3), fmt.Sprintf("%.0f", ft/1e3))
	return t, nil
}
