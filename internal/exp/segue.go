package exp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/report"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// fig1Module builds the two code patterns of Figure 1.
func fig1Module() *ir.Module {
	m := ir.NewModule("fig1", 1, 1)
	p1 := m.NewFunc("pattern1", ir.Sig([]ir.ValType{ir.I64}, []ir.ValType{ir.I64}))
	p1.Get(0).I32WrapI64().I64Load(0)
	p1.MustBuild()
	p2 := m.NewFunc("pattern2", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	p2.Get(1).I32(2).I32Shl().Get(0).I32Add()
	p2.I32Load(8)
	p2.MustBuild()
	m.MustExport("pattern1")
	m.MustExport("pattern2")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// wamrBase is WAMR without Segue: guard-page SFI plus its vectorization
// pass. wamrSegue is WAMR's shipped "register-only" Segue (§4.2): the
// extra addressing operand is not exploited (FoldOperandSlot false) but
// the base register is freed and the heap-base addition rides the
// segment. wamrSegueLoads is the loads-only tuning.
func wamrBase() sfi.Config {
	c := sfi.DefaultConfig(sfi.ModeGuard)
	c.Vectorize = true
	return c
}

// wamrNative is the native baseline for the WAMR comparisons: clang
// vectorizes the same loops WAMR's pass targets.
func wamrNative() sfi.Config {
	c := sfi.DefaultConfig(sfi.ModeNative)
	c.Vectorize = true
	return c
}

func wamrSegue() sfi.Config {
	c := sfi.DefaultConfig(sfi.ModeSegue)
	c.FoldOperandSlot = false
	c.Vectorize = true
	return c
}

func wamrSegueLoads() sfi.Config {
	c := wamrSegue()
	c.SegueLoadsOnly = true
	return c
}

// Fig1Patterns reproduces the Figure 1 listing comparison: instruction
// count and encoded bytes of the two access patterns per mode.
func Fig1Patterns() (*report.Table, error) {
	m := fig1Module()
	t := &report.Table{
		ID: "fig1", Title: "Figure 1 patterns: instructions / bytes per access",
		Headers: []string{"pattern", "native", "guard (classic SFI)", "segue"},
		Notes:   []string{"paper: each pattern takes two instructions classically, one with Segue"},
	}
	for fi, name := range []string{"int-to-ptr deref", "struct array read"} {
		row := []string{name}
		for _, mode := range []sfi.Mode{sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue} {
			prog, _, err := sfi.Compile(m, sfi.DefaultConfig(mode))
			if err != nil {
				return nil, err
			}
			f := prog.Funcs[fi]
			row = append(row, fmt.Sprintf("%d insts / %d B", len(f.Insts), f.ByteLen))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3SpecWasm2c runs SPEC CPU 2006 under the Wasm2c-style full-Segue
// toolchain: normalized runtimes for guard SFI and Segue.
func Fig3SpecWasm2c() (*report.Table, error) {
	t, norms, err := normalizedSuite(workloads.Spec2006(),
		[]sfi.Config{sfi.DefaultConfig(sfi.ModeGuard), sfi.DefaultConfig(sfi.ModeSegue)},
		[]string{"wasm2c", "wasm2c+segue"})
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig3", "SPEC CPU 2006 normalized runtime (native = 1.0)"
	g, s := geomeanOf(norms[0]), geomeanOf(norms[1])
	t.Notes = append(t.Notes,
		fmt.Sprintf("Segue eliminates %s of Wasm's geomean overhead (paper: 44.7%%)",
			report.Pct(overheadEliminated(g, s))),
		"paper outliers: 429_mcf runs faster than native (pointer compression); 473_astar slightly slower with Segue (prefix bytes)")
	return t, nil
}

// BoundsCheckSegue covers the §6.1 note: engines using explicit bounds
// checks (e.g. for memory64) also benefit from Segue.
func BoundsCheckSegue() (*report.Table, error) {
	t, norms, err := normalizedSuite(workloads.Spec2006(),
		[]sfi.Config{sfi.DefaultConfig(sfi.ModeBoundsCheck), sfi.DefaultConfig(sfi.ModeBoundsSegue)},
		[]string{"bounds-check", "bounds-check+segue"})
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "boundsnote", "SPEC CPU 2006 with explicit bounds checks"
	b, s := geomeanOf(norms[0]), geomeanOf(norms[1])
	t.Notes = append(t.Notes,
		fmt.Sprintf("Segue eliminates %s of the bounds-check engine's overhead (paper: 25.2%%)",
			report.Pct(overheadEliminated(b, s))))
	return t, nil
}

// Table2BinarySize compares compiled code sizes with and without Segue.
func Table2BinarySize() (*report.Table, error) {
	t := &report.Table{
		ID: "table2", Title: "Compiled binary sizes of SPEC CPU 2006",
		Headers: []string{"benchmark", "wasm2c", "wasm2c+segue", "reduction"},
		Notes:   []string{"paper: median reduction 5.9%, max 12.3%"},
	}
	kernels := workloads.Spec2006().Kernels
	var cells []cell
	for _, k := range kernels {
		cells = append(cells,
			cell{k, sfi.DefaultConfig(sfi.ModeGuard), k.TestArgs},
			cell{k, sfi.DefaultConfig(sfi.ModeSegue), k.TestArgs})
	}
	ms, errs := measureCells(cells)
	var reductions []float64
	for i, k := range kernels {
		g, s := ms[2*i], ms[2*i+1]
		if err := errs[2*i]; err != nil {
			return nil, err
		}
		if err := errs[2*i+1]; err != nil {
			return nil, err
		}
		red := 1 - float64(s.CodeBytes)/float64(g.CodeBytes)
		reductions = append(reductions, red)
		t.AddRow(k.Name, fmt.Sprintf("%d B", g.CodeBytes), fmt.Sprintf("%d B", s.CodeBytes), report.Pct(red))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("median reduction: %s", report.Pct(stats.Median(reductions))))
	return t, nil
}

// firefoxTimes measures a sandboxed library workload under native,
// guard, and Segue compilation, reporting per-invocation costs and the
// overhead Segue eliminates. perCall selects the per-glyph invocation
// pattern (each call transitions) versus batch parsing.
func firefoxTimes(kernelName, entry string, calls int, arg uint64) (*report.Table, error) {
	k, err := workloads.Firefox().Find(kernelName)
	if err != nil {
		return nil, err
	}
	measure := func(cfg sfi.Config) (float64, error) {
		mod, err := rt.CompileModuleCached(
			rt.ModuleKey{Name: k.Name, Cfg: cfg},
			func() *ir.Module { return k.Build(false) })
		if err != nil {
			return 0, err
		}
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
		if err != nil {
			return 0, err
		}
		for i := 0; i < calls; i++ {
			a := arg
			if entry == "glyph" {
				a = uint64(i)
			}
			if _, err := inst.Invoke(entry, a); err != nil {
				return 0, err
			}
		}
		addSimCycles(inst.Mach.Stats.Cycles)
		return inst.Mach.Stats.Nanos(&inst.Mach.Cost), nil
	}
	// The three configurations are independent single-instance runs; fan
	// them out over the engine.
	res, errs := parallelMap([]sfi.Config{
		sfi.DefaultConfig(sfi.ModeNative),
		sfi.DefaultConfig(sfi.ModeGuard),
		sfi.DefaultConfig(sfi.ModeSegue),
	}, measure)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	nat, guard, segue := res[0], res[1], res[2]
	t := &report.Table{
		Headers: []string{"configuration", "time (simulated ms, scaled)", "overhead vs native"},
	}
	// Scale so the native case lands near the paper's absolute numbers,
	// purely for readability; ratios are the measurement.
	scale := 1.0
	t.AddRow("unsandboxed", fmt.Sprintf("%.1f", nat*scale/1e6), "-")
	t.AddRow("sandboxed (wasm2c)", fmt.Sprintf("%.1f", guard*scale/1e6), report.Pct(guard/nat-1))
	t.AddRow("sandboxed + Segue", fmt.Sprintf("%.1f", segue*scale/1e6), report.Pct(segue/nat-1))
	t.Notes = append(t.Notes, fmt.Sprintf("Segue eliminates %s of the sandboxing overhead",
		report.Pct(overheadEliminated(guard/nat, segue/nat))))
	return t, nil
}

// FirefoxFont reproduces the font-rendering benchmark: many short
// sandbox invocations, one per glyph, so transition costs matter
// (paper: 264 / 356 / 287 ms — Segue removes 75% of the overhead).
func FirefoxFont() (*report.Table, error) {
	t, err := firefoxTimes("font", "glyph", 1500, 0)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "firefox-font", "Firefox font rendering (per-glyph sandbox invocations)"
	t.Notes = append(t.Notes, "paper: 264 ms native, 356 ms sandboxed, 287 ms with Segue (75% of overhead eliminated)")
	return t, nil
}

// FirefoxXML reproduces the XML-parsing benchmark: few, long
// invocations (paper: 331 / 381 / 347 ms — 68% eliminated).
func FirefoxXML() (*report.Table, error) {
	t, err := firefoxTimes("xml", "run", 1, 120)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "firefox-xml", "Firefox XML parsing (batch invocation)"
	t.Notes = append(t.Notes, "paper: 331 ms native, 381 ms sandboxed, 347 ms with Segue (68% of overhead eliminated)")
	return t, nil
}

// Fig4SightglassWAMR runs Sightglass under the WAMR configurations.
func Fig4SightglassWAMR() (*report.Table, error) {
	t, norms, err := normalizedSuiteVs(workloads.Sightglass(), wamrNative(),
		[]sfi.Config{wamrBase(), wamrSegue(), wamrSegueLoads()},
		[]string{"wamr", "wamr+segue", "wamr+segue-loads"})
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig4", "Sightglass on WAMR, normalized to native"
	mm := norms[1]["memmove"] / norms[0]["memmove"]
	sv := norms[1]["sieve"] / norms[0]["sieve"]
	t.Notes = append(t.Notes,
		fmt.Sprintf("full Segue slows memmove %s and sieve %s vs WAMR (paper: +35.6%% and +48.7%%) — the vectorizer's store patterns stop matching",
			report.Pct(mm-1), report.Pct(sv-1)),
		fmt.Sprintf("loads-only Segue: memmove %s, sieve %s vs WAMR (paper: no slowdowns)",
			report.Pct(norms[2]["memmove"]/norms[0]["memmove"]-1), report.Pct(norms[2]["sieve"]/norms[0]["sieve"]-1)))
	return t, nil
}

// PolybenchWAMR compares WAMR with and without Segue on the Polybench
// suite (§6.2). The paper reports Wasm 6% FASTER than native (an LLVM
// codegen artifact we do not model); the reproduced claim is Segue's
// relative improvement over stock WAMR.
func PolybenchWAMR() (*report.Table, error) {
	suite := workloads.Polybench()
	suite.Kernels = suite.Kernels[:len(suite.Kernels)-1] // dhrystone reported separately
	t, norms, err := normalizedSuiteVs(suite, wamrNative(),
		[]sfi.Config{wamrBase(), wamrSegue()},
		[]string{"wamr", "wamr+segue"})
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "polybench", "PolybenchC on WAMR, normalized to native"
	rel := geomeanOf(norms[0])/geomeanOf(norms[1]) - 1
	t.Notes = append(t.Notes,
		fmt.Sprintf("Segue improves WAMR's geomean by %s (paper: from +6%% to +10%% over native, a +3.8%% relative gain)", report.Pct(rel)),
		"deviation: the paper's WAMR beats native outright via LLVM vectorization differences our model does not include")
	return t, nil
}

// DhrystoneWAMR runs the Dhrystone comparison (§6.2).
func DhrystoneWAMR() (*report.Table, error) {
	k, err := workloads.Polybench().Find("dhrystone")
	if err != nil {
		return nil, err
	}
	base, err := MeasureKernel(k, sfi.DefaultConfig(sfi.ModeNative), k.Args)
	if err != nil {
		return nil, err
	}
	g, err := MeasureKernel(k, wamrBase(), k.Args)
	if err != nil {
		return nil, err
	}
	s, err := MeasureKernel(k, wamrSegue(), k.Args)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID: "dhrystone", Title: "Dhrystone on WAMR, normalized to native",
		Headers: []string{"configuration", "normalized runtime"},
	}
	t.AddRow("wamr", report.Norm(g.Cycles/base.Cycles))
	t.AddRow("wamr+segue", report.Norm(s.Cycles/base.Cycles))
	t.Notes = append(t.Notes,
		fmt.Sprintf("Segue improves WAMR by %s relative (paper: +9.7%% -> +28.2%% over native, a +16.9%% relative gain)",
			report.Pct(g.Cycles/s.Cycles-1)))
	return t, nil
}

// Fig5SpecLFI runs SPEC CPU 2017 under the LFI x86-64 backend with and
// without Segue (§6.3): data accesses change, control-flow
// instrumentation stays.
func Fig5SpecLFI() (*report.Table, error) {
	t, norms, err := normalizedSuite(workloads.Spec2017(),
		[]sfi.Config{sfi.DefaultConfig(sfi.ModeLFI), sfi.DefaultConfig(sfi.ModeLFISegue)},
		[]string{"lfi", "lfi+segue"})
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig5", "SPEC CPU 2017 on LFI, normalized to native"
	l, s := geomeanOf(norms[0]), geomeanOf(norms[1])
	t.Notes = append(t.Notes,
		fmt.Sprintf("LFI overhead %s -> %s with Segue; %s of overhead eliminated (paper: 17.4%% -> 9.4%%, 46%%)",
			report.Pct(l-1), report.Pct(s-1), report.Pct(overheadEliminated(l, s))))
	return t, nil
}
