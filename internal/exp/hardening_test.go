package exp

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
	"repro/internal/x86"
)

// hardenTestKernels are the kernels the bit-exactness proofs run: the
// indirect-dispatch worst case (indirect calls, returns, loops) and the
// FaaS regex kernel (heap loads and stores).
func hardenTestKernels(t *testing.T) []workloads.Kernel {
	t.Helper()
	regex, err := workloads.FaaS().Find("regex-filtering")
	if err != nil {
		t.Fatal(err)
	}
	return []workloads.Kernel{indirectDispatchKernel(), regex}
}

func isHardenOp(op x86.Op) bool {
	return op == x86.ENDBR || op == x86.BTBFLUSH || op == x86.INTERLOCK
}

// TestHardenNoneBitExact mirrors isolation's TestDefaultSchemeBitExact
// for the hardening axis: an explicit HardenNone must be invisible —
// the same instruction stream as a config that never mentions Harden,
// zero hardening opcodes in the output, and bit-identical cycles and
// checksums on every execution tier.
func TestHardenNoneBitExact(t *testing.T) {
	prev := cpu.DefaultTier()
	defer cpu.SetDefaultTier(prev)
	for _, mode := range []sfi.Mode{sfi.ModeGuard, sfi.ModeSegue} {
		for _, k := range hardenTestKernels(t) {
			legacy := sfi.Config{Mode: mode, FoldOperandSlot: true, FoldDispLimit: 1 << 30}
			off := legacy
			off.Harden = sfi.HardenNone

			progLegacy, _, err := sfi.Compile(k.Build(false), legacy)
			if err != nil {
				t.Fatal(err)
			}
			progOff, _, err := sfi.Compile(k.Build(false), off)
			if err != nil {
				t.Fatal(err)
			}
			if len(progLegacy.Funcs) != len(progOff.Funcs) {
				t.Fatalf("%s/%s: function count %d != %d", k.Name, mode, len(progOff.Funcs), len(progLegacy.Funcs))
			}
			for i := range progLegacy.Funcs {
				want, got := sfi.Disassemble(progLegacy.Funcs[i]), sfi.Disassemble(progOff.Funcs[i])
				if want != got {
					t.Fatalf("%s/%s: HardenNone changed codegen of %s:\n--- legacy ---\n%s--- HardenNone ---\n%s",
						k.Name, mode, progLegacy.Funcs[i].Name, want, got)
				}
				for _, in := range progOff.Funcs[i].Insts {
					if isHardenOp(in.Op) {
						t.Fatalf("%s/%s: hardening op %s emitted under HardenNone", k.Name, mode, in.Op)
					}
				}
			}

			modLegacy, err := rt.CompileModule(k.Build(false), legacy)
			if err != nil {
				t.Fatal(err)
			}
			modOff, err := rt.CompileModule(k.Build(false), off)
			if err != nil {
				t.Fatal(err)
			}
			for _, tier := range []cpu.Tier{cpu.TierSlow, cpu.TierFast, cpu.TierFused} {
				cpu.SetDefaultTier(tier)
				run := func(mod *rt.Module) (uint64, float64) {
					inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
					if err != nil {
						t.Fatal(err)
					}
					res, err := inst.Invoke(k.Entry, k.TestArgs...)
					if err != nil {
						t.Fatal(err)
					}
					return res[0], inst.Mach.Stats.Cycles
				}
				wantSum, wantCycles := run(modLegacy)
				gotSum, gotCycles := run(modOff)
				if gotSum != wantSum || gotCycles != wantCycles {
					t.Fatalf("%s/%s/%s: HardenNone run (sum %#x, cycles %v) != legacy (sum %#x, cycles %v)",
						k.Name, mode, tier, gotSum, gotCycles, wantSum, wantCycles)
				}
			}
		}
	}
}

// TestHardenTierDifferential extends the tier-differential law to every
// hardening scheme: slow, fast, and fused must charge the hardening
// pseudo-ops identically — bit-identical cycles and checksums.
func TestHardenTierDifferential(t *testing.T) {
	prev := cpu.DefaultTier()
	defer cpu.SetDefaultTier(prev)
	for _, h := range sfi.Hardens() {
		for _, mode := range []sfi.Mode{sfi.ModeGuard, sfi.ModeSegue} {
			for _, k := range hardenTestKernels(t) {
				cfg := sfi.DefaultConfig(mode)
				cfg.Harden = h
				mod, err := rt.CompileModule(k.Build(false), cfg)
				if err != nil {
					t.Fatal(err)
				}
				var wantSum uint64
				var wantCycles float64
				for i, tier := range []cpu.Tier{cpu.TierSlow, cpu.TierFast, cpu.TierFused} {
					cpu.SetDefaultTier(tier)
					inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
					if err != nil {
						t.Fatal(err)
					}
					res, err := inst.Invoke(k.Entry, k.TestArgs...)
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						wantSum, wantCycles = res[0], inst.Mach.Stats.Cycles
						continue
					}
					if res[0] != wantSum {
						t.Errorf("%s/%s/%s/%s: result %#x, slow tier got %#x", k.Name, mode, h, tier, res[0], wantSum)
					}
					if inst.Mach.Stats.Cycles != wantCycles {
						t.Errorf("%s/%s/%s/%s: cycles %v, slow tier got %v (tiers must be bit-identical)",
							k.Name, mode, h, tier, inst.Mach.Stats.Cycles, wantCycles)
					}
				}
			}
		}
	}
}
