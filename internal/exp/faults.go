package exp

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/report"
)

// FaultSweep runs the fault-injection and graceful-degradation
// experiment: a fixed synthetic FaaS workload simulated under each
// isolation backend while the base per-request fault rate sweeps from
// zero to 10%. Every cell runs the same degradation policy stack —
// retry with exponential backoff, a per-request deadline, a bounded
// admission queue, and a circuit breaker — so the columns isolate how
// each backend's characteristic fault mix (fault.RatesFor) erodes
// goodput as conditions worsen.
//
// The rate-0 row runs with the machinery armed but nothing able to
// fire; its throughput must match the clean simulator exactly, which
// is the inertness property TestGoldenTablesWithFaultsOff pins across
// the whole golden set.
func FaultSweep() (*report.Table, error) {
	// Synthetic per-request cost: no emulator measurement, so the sweep
	// is cheap and the golden depends only on the simulator and the
	// isolation cost models.
	w := faas.Workload{Name: "synthetic", ComputeNs: 30_000, Pages: 48}

	backends := []struct {
		name  string
		kind  isolation.Kind
		procs int
	}{
		{"guardpage", isolation.GuardPage, 1},
		{"colorguard", isolation.ColorGuard, 1},
		{"multiproc(8)", isolation.MultiProc, 8},
	}
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}

	t := &report.Table{
		ID: "faultsweep", Title: "Graceful degradation under injected faults (per-backend fault mixes)",
		Headers: []string{"fault rate"},
		Notes: []string{
			"synthetic workload, cold-start instances; policies: 4 attempts, exp backoff, 100 ms deadline, queue limit 512, breaker 64/5 ms",
			"rps: completed requests per simulated second; fail%: shed+failed+timed-out as a share of offered load",
			"rate 0 runs with the fault machinery armed and must match the clean simulator",
		},
	}
	for _, b := range backends {
		t.Headers = append(t.Headers, b.name+" rps", b.name+" fail%")
	}

	rows, errs := parallelMap(rates, func(rate float64) ([]string, error) {
		row := []string{fmt.Sprintf("%.3f", rate)}
		for _, b := range backends {
			cfg := faas.KindConfig(w, b.kind, b.procs)
			cfg.ColdStart = true
			cfg.InstanceBytes = 64 << 10
			cfg.ArrivalsPerEpoch = 5
			cfg.Faults = fault.Config{
				Seed:        1789,
				Rates:       fault.RatesFor(string(b.kind), rate),
				MaxAttempts: 4,
				Retry:       fault.Backoff{BaseNs: 200_000, Factor: 2, MaxNs: 8e6},
				TimeoutNs:   100e6,
				QueueLimit:  512,
				Breaker:     fault.BreakerConfig{FailureThreshold: 64, OpenNs: 5e6},
			}
			r := faas.Run(cfg)
			failPct := 100 * float64(r.Shed+r.Failed+r.TimedOut) / float64(r.Offered)
			row = append(row, fmt.Sprintf("%.0f", r.ThroughputRPS), fmt.Sprintf("%.2f", failPct))
		}
		return row, nil
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
