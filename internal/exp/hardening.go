package exp

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/report"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// SwivelHardening crosses the Spectre-hardening schemes with Segue
// on/off — the composition question the source paper leaves open: does
// Segue's addressing win survive once the sandbox must also be
// Spectre-safe? Kernel rows report the hardening tax (hardened cycles /
// unhardened cycles, same SFI mode) under classic guard-page SFI and
// under Segue, plus the segue/guard cycle ratio at that hardening
// level. The faas/<backend> rows re-run the FaaS mix on each isolation
// backend with the hardened kernel's measured compute time and report
// throughput retention (hardened rps / unhardened rps) the same way.
//
// The kernel roster spans the instruction mixes the schemes price
// differently: 470_lbm is straight-line f64 streaming (interlocks
// only), 445_gobmk is call-heavy (return flushes), indirect-dispatch
// makes an indirect call per loop iteration (Swivel-SFI's worst case),
// and regex-filtering is the FaaS mix's representative.
func SwivelHardening() (*report.Table, error) {
	spec := workloads.Spec2006()
	lbm, err := spec.Find("470_lbm")
	if err != nil {
		return nil, err
	}
	gobmk, err := spec.Find("445_gobmk")
	if err != nil {
		return nil, err
	}
	regex, err := workloads.FaaS().Find("regex-filtering")
	if err != nil {
		return nil, err
	}
	indirect := indirectDispatchKernel()

	type km struct {
		k    workloads.Kernel
		args []uint64
	}
	kernels := []km{
		{lbm, lbm.TestArgs},
		{gobmk, gobmk.TestArgs},
		{indirect, indirect.Args},
		{regex, regex.TestArgs},
	}
	hardens := sfi.Hardens()
	modes := []sfi.Mode{sfi.ModeGuard, sfi.ModeSegue}

	// Lay the cells out kernel-major, then harden, then mode, so index
	// arithmetic below recovers any (kernel, harden, mode) measurement.
	var cells []cell
	for _, kk := range kernels {
		for _, h := range hardens {
			for _, mode := range modes {
				cfg := sfi.DefaultConfig(mode)
				cfg.Harden = h
				cells = append(cells, cell{kk.k, cfg, kk.args})
			}
		}
	}
	ms, errs := measureCells(cells)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	at := func(ki, hi, mi int) Measurement {
		return ms[ki*len(hardens)*len(modes)+hi*len(modes)+mi]
	}
	const guardIdx, segueIdx = 0, 1

	// Self-check 1 (inertness): HardenNone must be architecturally
	// invisible — the full measurement (cycles, checksum, instruction
	// and fetch counts, code bytes) under an explicit HardenNone config
	// must equal a config built the pre-hardening way, with no Harden
	// field set at all.
	for ki, kk := range kernels {
		for mi, mode := range modes {
			legacy := sfi.Config{Mode: mode, FoldOperandSlot: true, FoldDispLimit: 1 << 30}
			lm, err := MeasureKernel(kk.k, legacy, kk.args)
			if err != nil {
				return nil, err
			}
			if got := at(ki, int(sfi.HardenNone), mi); got != lm {
				return nil, fmt.Errorf("exp: %s/%s: HardenNone measurement %+v differs from pre-hardening config %+v",
					kk.k.Name, mode, got, lm)
			}
		}
	}
	// Self-check 2: hardening is cost-only — checksums never move
	// across schemes or modes.
	for ki, kk := range kernels {
		want := at(ki, 0, 0).Checksum
		for hi := range hardens {
			for mi := range modes {
				if got := at(ki, hi, mi).Checksum; got != want {
					return nil, fmt.Errorf("exp: %s: checksum %#x under %s/%s != baseline %#x",
						kk.k.Name, got, hardens[hi], modes[mi], want)
				}
			}
		}
	}
	tax := func(ki, hi, mi int) float64 {
		return at(ki, hi, mi).Cycles / at(ki, int(sfi.HardenNone), mi).Cycles
	}
	// Self-check 3: Swivel-SFI's flush tax must land where the scheme
	// says it does — visibly heavier on the indirect-call-heavy kernel
	// than on the straight-line one, and heavier than both no-flush
	// variants on that same kernel.
	const lbmIdx, indirectIdx = 0, 2
	sfiTax := tax(indirectIdx, int(sfi.HardenSwivelSFI), segueIdx)
	if straight := tax(lbmIdx, int(sfi.HardenSwivelSFI), segueIdx); sfiTax <= straight {
		return nil, fmt.Errorf("exp: swivel-sfi tax %.3f on indirect-dispatch <= %.3f on 470_lbm", sfiTax, straight)
	}
	for _, h := range []sfi.Harden{sfi.HardenSwivelCET, sfi.HardenDeterministic} {
		if t := tax(indirectIdx, int(h), segueIdx); t >= sfiTax {
			return nil, fmt.Errorf("exp: %s tax %.3f >= swivel-sfi tax %.3f on indirect-dispatch", h, t, sfiTax)
		}
	}

	t := &report.Table{
		ID: "hardening", Title: "Spectre-hardening tax across SFI modes and isolation backends (Swivel)",
		Headers: []string{"workload", "harden", "guard", "segue", "segue/guard"},
		Notes: []string{
			"kernel rows: hardened cycles / unhardened cycles under the same SFI mode (tax, >= 1); segue/guard: cycle ratio at that hardening level",
			"faas/<backend> rows: FaaS mix throughput retention (hardened rps / unhardened rps, <= 1) with the hardened regex-filtering kernel's measured compute, extrapolated to the production batch; multiproc simulated at 8 processes",
			"swivel-sfi prices BTB flushes on indirect transfers plus load/back-edge interlocks; swivel-cet and deterministic price endbranch pads and SLH masks only",
		},
	}
	for ki, kk := range kernels {
		for hi := range hardens {
			t.Rows = append(t.Rows, []string{
				kk.k.Name,
				hardens[hi].String(),
				fmt.Sprintf("%.3f", tax(ki, hi, guardIdx)),
				fmt.Sprintf("%.3f", tax(ki, hi, segueIdx)),
				fmt.Sprintf("%.3f", at(ki, hi, segueIdx).Cycles/at(ki, hi, guardIdx).Cycles),
			})
		}
	}

	// FaaS composition: the hardened regex-filtering kernel's measured
	// per-request compute (extrapolated from the test batch to the
	// production batch) drives the simulator on every backend.
	const regexIdx = 3
	// Extrapolate the test-batch measurement to the FaaS-mix batch the
	// colorguard experiments serve (280 requests' worth of filtering),
	// keeping per-request compute in the regime the mix saturates.
	const faasMixBatch = 280
	scale := faasMixBatch / float64(regex.TestArgs[0])
	rps := func(hi, mi int, kind isolation.Kind, procs int) float64 {
		w := faas.Workload{
			Name:      regex.Name,
			ComputeNs: at(regexIdx, hi, mi).Nanos * scale,
			Pages:     48,
		}
		cfg := faas.KindConfig(w, kind, procs)
		cfg.ArrivalsPerEpoch = 250
		cfg.DurationNs = 0.5e9
		return faas.Run(cfg).ThroughputRPS
	}
	backends := []struct {
		kind  isolation.Kind
		procs int
	}{
		{isolation.GuardPage, 1},
		{isolation.ColorGuard, 1},
		{isolation.MTE, 1},
		{isolation.MultiProc, 8},
	}
	for _, b := range backends {
		baseGuard := rps(int(sfi.HardenNone), guardIdx, b.kind, b.procs)
		baseSegue := rps(int(sfi.HardenNone), segueIdx, b.kind, b.procs)
		for hi := range hardens {
			g := rps(hi, guardIdx, b.kind, b.procs)
			s := rps(hi, segueIdx, b.kind, b.procs)
			t.Rows = append(t.Rows, []string{
				"faas/" + string(b.kind),
				hardens[hi].String(),
				fmt.Sprintf("%.3f", g/baseGuard),
				fmt.Sprintf("%.3f", s/baseSegue),
				fmt.Sprintf("%.3f", s/g),
			})
		}
	}
	return t, nil
}

// indirectDispatchKernel builds the Swivel-SFI worst case: a loop whose
// every iteration makes an indirect call through the function table
// (one BTB flush at the call, another at the callee's return).
func indirectDispatchKernel() workloads.Kernel {
	build := func(bool) *ir.Module {
		m := ir.NewModule("indirect-dispatch", 1, 1)
		sig := ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32})
		mix := m.NewFunc("step_mix", sig)
		mix.Get(0).I32(-0x61C88647).I32Mul().Get(0).I32(13).I32ShrU().I32Xor()
		mix.MustBuild()
		add := m.NewFunc("step_add", sig)
		add.Get(0).I32(40503).I32Mul().I32(60493).I32Add()
		add.MustBuild()
		mi, _ := m.FuncIndex("step_mix")
		ai, _ := m.FuncIndex("step_add")
		m.Table = []uint32{mi, ai}

		// run(n): acc = 1; n times: acc = table[acc & 1](acc)
		f := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
		const acc, i = 1, 2
		f.I32(1).Set(acc)
		f.LoopNDyn(i, 0, 0, 1, func() {
			f.Get(acc)
			f.Get(acc).I32(1).I32And()
			f.CallIndirect(sig)
			f.Set(acc)
		})
		f.Get(acc)
		f.MustBuild()
		m.MustExport("run")
		return m
	}
	return workloads.Kernel{
		Name:     "indirect-dispatch",
		Build:    build,
		Entry:    "run",
		Args:     []uint64{4000},
		TestArgs: []uint64{200},
	}
}
