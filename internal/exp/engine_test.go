package exp

import (
	"testing"

	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// smallSuite is a fast multi-kernel suite for engine tests: a slice of
// Sightglass with reduced (TestArgs) workloads.
func smallSuite() workloads.Suite {
	s := workloads.Sightglass()
	if len(s.Kernels) > 4 {
		s.Kernels = s.Kernels[:4]
	}
	for i := range s.Kernels {
		if len(s.Kernels[i].TestArgs) > 0 {
			s.Kernels[i].Args = s.Kernels[i].TestArgs
		}
	}
	return s
}

// TestParallelMatchesSerial runs one multi-kernel experiment through
// the engine serially and with 4 workers and asserts the rendered table
// and every per-cell measurement — checksums included — are
// byte-identical. Run under -race this is also the engine's data-race
// gate (shared compile cache, sim-cycle counter, result collection).
func TestParallelMatchesSerial(t *testing.T) {
	suite := smallSuite()
	configs := []sfi.Config{sfi.DefaultConfig(sfi.ModeGuard), sfi.DefaultConfig(sfi.ModeSegue)}
	names := []string{"guard", "segue"}

	var cells []cell
	for _, k := range suite.Kernels {
		cells = append(cells, cell{k, sfi.DefaultConfig(sfi.ModeNative), k.Args})
		for _, cfg := range configs {
			cells = append(cells, cell{k, cfg, k.Args})
		}
	}

	run := func(workers int) ([]Measurement, string) {
		SetParallelism(workers)
		defer SetParallelism(0)
		ms, errs := measureCells(cells)
		if err := firstErr(errs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tab, _, err := normalizedSuiteVs(suite, sfi.DefaultConfig(sfi.ModeNative), configs, names)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ms, tab.Text()
	}

	serialMs, serialTab := run(1)
	parMs, parTab := run(4)

	if parTab != serialTab {
		t.Fatalf("table differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialTab, parTab)
	}
	for i := range serialMs {
		if serialMs[i] != parMs[i] {
			t.Fatalf("cell %d (%s/%v) differs:\nserial   %+v\nparallel %+v",
				i, cells[i].Kernel.Name, cells[i].Cfg.Mode, serialMs[i], parMs[i])
		}
	}
}

// TestParallelErrorDeterminism checks that the engine reports the error
// a serial run would hit first, regardless of worker count.
func TestParallelErrorDeterminism(t *testing.T) {
	suite := smallSuite()
	bad := suite.Kernels[1]
	bad.Entry = "no-such-export"
	suite.Kernels[1] = bad

	var errSerial, errPar error
	SetParallelism(1)
	_, _, errSerial = normalizedSuiteVs(suite, sfi.DefaultConfig(sfi.ModeNative),
		[]sfi.Config{sfi.DefaultConfig(sfi.ModeSegue)}, []string{"segue"})
	SetParallelism(4)
	_, _, errPar = normalizedSuiteVs(suite, sfi.DefaultConfig(sfi.ModeNative),
		[]sfi.Config{sfi.DefaultConfig(sfi.ModeSegue)}, []string{"segue"})
	SetParallelism(0)

	if errSerial == nil || errPar == nil {
		t.Fatalf("expected errors, got serial=%v parallel=%v", errSerial, errPar)
	}
	if errSerial.Error() != errPar.Error() {
		t.Fatalf("error differs:\nserial   %v\nparallel %v", errSerial, errPar)
	}
}

// TestEngineUsesCompileCache asserts repeated measurements of one cell
// hit the compile cache instead of recompiling.
func TestEngineUsesCompileCache(t *testing.T) {
	rt.ResetModuleCache()
	defer rt.ResetModuleCache()
	suite := smallSuite()
	k := suite.Kernels[0]
	for i := 0; i < 3; i++ {
		if _, err := MeasureKernel(k, sfi.DefaultConfig(sfi.ModeSegue), k.Args); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := rt.ModuleCacheStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("cache stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}
