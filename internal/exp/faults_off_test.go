package exp

import (
	"testing"

	"repro/internal/faas"
	"repro/internal/fault"
)

// TestGoldenTablesWithFaultsOff is the hard constraint of the fault
// layer: with the fault machinery armed process-wide — injector
// constructed, breaker consulted, every fault branch in faas.Run
// executing — but no rate or policy able to fire, the experiment
// tables are still byte-identical to the goldens. This is stronger
// than leaving Config.Faults zero (which skips the branches entirely):
// it proves the wired paths themselves are inert when idle.
func TestGoldenTablesWithFaultsOff(t *testing.T) {
	faas.SetDefaultFaults(&fault.Config{
		Seed:        4242,
		MaxAttempts: 3,
		Retry:       fault.Backoff{BaseNs: 1e6, Factor: 2, MaxNs: 1e8},
	})
	defer faas.SetDefaultFaults(nil)

	// transition/scaling/mte pin the non-FaaS tables; faultsweep arms
	// its own explicit config underneath the process default. fig7b is
	// the full FaaS sweep whose Configs carry a zero Faults field, so
	// the process default applies to every one of its runs — it is the
	// table that would move if an idle fault branch leaked cost. As in
	// the telemetry variant, the -race leg keeps the cheap tables only.
	ids := []string{"transition", "scaling", "mte", "faultsweep"}
	if !raceEnabled {
		ids = append(ids, "fig7b")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) { checkGolden(t, id) })
	}
}
