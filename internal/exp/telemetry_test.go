package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/rt"
	"repro/internal/telemetry"
)

// TestGoldenTablesWithTelemetry is the hard constraint of the telemetry
// layer: with metrics and tracing fully enabled, experiment tables are
// still byte-identical to the goldens. Telemetry observes runs; it must
// never perturb them.
func TestGoldenTablesWithTelemetry(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.SetEnabled(true)
	telemetry.Trace.Enable()
	defer func() {
		telemetry.Trace.Disable()
		telemetry.SetEnabled(false)
	}()

	// fig7b (a full FaaS sweep) already runs once in TestGoldenTables;
	// repeating it here under the race detector would push the package
	// past the test timeout, so the -race leg keeps the cheap table.
	ids := []string{"transition", "scaling", "mte"}
	if !raceEnabled {
		ids = append(ids, "fig7b")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) { checkGolden(t, id) })
	}

	// The runs above must have left observations behind.
	snap := telemetry.Default.Snapshot()
	if snap.Counters["exp.cells"] == 0 {
		t.Error("no cells counted with telemetry enabled")
	}
	if snap.Counters["cpu.insts_retired"] == 0 {
		t.Error("no instructions counted with telemetry enabled")
	}
	if len(telemetry.Trace.Events()) == 0 {
		t.Error("no trace events recorded")
	}

	// The trace exports as valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := telemetry.Trace.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) < 3 { // 2 metadata records + real events
		t.Errorf("trace has only %d events", len(tf.TraceEvents))
	}

	// Snapshot rendering is byte-stable for a fixed registry state.
	if a, b := snap.JSON(), telemetry.Default.Snapshot().JSON(); !bytes.Equal(a, b) {
		t.Error("snapshot JSON not byte-stable across renders")
	}
}

// TestTelemetryDisabledLeavesNoTrace: with telemetry off (the default),
// running an experiment records nothing — the disabled path really is
// inert, not just cheap.
func TestTelemetryDisabledLeavesNoTrace(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	telemetry.Default.Reset()
	rt.ResetModuleCache()
	e, _ := ByID("transition")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := telemetry.Default.Snapshot()
	for _, name := range []string{"exp.cells", "cpu.dispatch.fast", "cpu.insts_retired"} {
		if snap.Counters[name] != 0 {
			t.Errorf("%s = %d after a disabled run, want 0", name, snap.Counters[name])
		}
	}
}
