package exp

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rt"
)

// The golden files under testdata/golden/ were captured from cmd/benchtab
// before the isolation-backend refactor (`benchtab -o <file> <id>`). The
// differential tests assert the refactored stack reproduces every table
// byte-for-byte: same layout math, same cost arithmetic, same float
// accumulation order — the acceptance bar for routing rt, faas, and exp
// through internal/isolation.

// checkGolden runs one experiment the way benchtab does (cold module
// cache) and compares its rendered table against the golden bytes.
func checkGolden(t *testing.T, id string) {
	t.Helper()
	golden, err := os.ReadFile(filepath.Join("testdata", "golden", id+".txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	rt.ResetModuleCache()
	tab, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	got := tab.Text() + "\n" // benchtab prints the table plus one newline
	if got != string(golden) {
		t.Fatalf("%s: table differs from pre-refactor golden\n--- golden ---\n%s--- got ---\n%s", id, golden, got)
	}
}

// TestGoldenTables covers the §6.4/§7 tables the isolation layer feeds
// directly: transition and lifecycle costs, slot-density math, and the
// FaaS scaling figures.
func TestGoldenTables(t *testing.T) {
	for _, id := range []string{
		"transition",
		"transitions",
		"attribution",
		"scaling",
		"mte",
		"fig6",
		"fig7a",
		"fig7b",
		"ablation-guards",
		"ablation-stripes",
		"faultsweep",
		"backend-matrix",
		"hardening",
	} {
		id := id
		t.Run(id, func(t *testing.T) { checkGolden(t, id) })
	}
}

// TestGoldenTablesHeavy covers the full-suite figures (SPEC, Sightglass,
// binary sizes) — minutes of emulation, so they are skipped under the
// race detector to keep `go test -race ./...` fast; the plain tier-1 run
// still executes them.
func TestGoldenTablesHeavy(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy golden tables skipped under -race (run without -race for full coverage)")
	}
	if testing.Short() {
		t.Skip("heavy golden tables skipped in -short mode")
	}
	for _, id := range []string{
		"fig3",
		"fig4",
		"fig5",
		"table2",
	} {
		id := id
		t.Run(id, func(t *testing.T) { checkGolden(t, id) })
	}
}
