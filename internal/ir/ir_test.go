package ir

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// buildAdd returns a module with an exported i32 add function.
func buildAdd(t *testing.T) *Module {
	t.Helper()
	m := NewModule("add", 1, 1)
	fb := m.NewFunc("add", Sig([]ValType{I32, I32}, []ValType{I32}))
	fb.Get(0).Get(1).I32Add()
	fb.MustBuild()
	m.MustExport("add")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return m
}

func run(t *testing.T, m *Module, name string, args ...uint64) []uint64 {
	t.Helper()
	ip, err := NewInterp(m, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := ip.Invoke(name, args...)
	if err != nil {
		t.Fatalf("invoke %s: %v", name, err)
	}
	return res
}

func TestAdd(t *testing.T) {
	m := buildAdd(t)
	res := run(t, m, "add", 2, 40)
	if len(res) != 1 || res[0] != 42 {
		t.Fatalf("add(2,40) = %v, want [42]", res)
	}
	// i32 wrap-around.
	res = run(t, m, "add", math.MaxUint32, 1)
	if res[0] != 0 {
		t.Fatalf("add(max,1) = %v, want 0", res[0])
	}
}

func TestLoopSum(t *testing.T) {
	m := NewModule("sum", 1, 1)
	fb := m.NewFunc("sum", Sig([]ValType{I32}, []ValType{I32}), I32, I32) // locals: i, acc
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(2).Get(1).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("sum")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res := run(t, m, "sum", 10)
	if res[0] != 45 { // 0+1+...+9
		t.Fatalf("sum(10) = %d, want 45", res[0])
	}
}

func TestIfElse(t *testing.T) {
	m := NewModule("max", 1, 1)
	fb := m.NewFunc("max", Sig([]ValType{I32, I32}, []ValType{I32}))
	fb.Get(0).Get(1).I32GtS()
	fb.If(I32)
	fb.Get(0)
	fb.Else()
	fb.Get(1)
	fb.End()
	fb.MustBuild()
	m.MustExport("max")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if res := run(t, m, "max", 3, 9); res[0] != 9 {
		t.Fatalf("max(3,9) = %d", res[0])
	}
	if res := run(t, m, "max", 9, 3); res[0] != 9 {
		t.Fatalf("max(9,3) = %d", res[0])
	}
}

func TestBrTable(t *testing.T) {
	// classify(x): 0 -> 10, 1 -> 20, else -> 30
	m := NewModule("bt", 1, 1)
	fb := m.NewFunc("classify", Sig([]ValType{I32}, []ValType{I32}))
	fb.Block() // depth 2 (default)
	fb.Block() // depth 1
	fb.Block() // depth 0
	fb.Get(0)
	fb.BrTable([]uint32{0, 1}, 2)
	fb.End()
	fb.I32(10).Return()
	fb.End()
	fb.I32(20).Return()
	fb.End()
	fb.I32(30)
	fb.MustBuild()
	m.MustExport("classify")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	for _, c := range []struct{ in, want uint64 }{{0, 10}, {1, 20}, {2, 30}, {99, 30}} {
		if res := run(t, m, "classify", c.in); res[0] != c.want {
			t.Errorf("classify(%d) = %d, want %d", c.in, res[0], c.want)
		}
	}
}

func TestCallAndIndirect(t *testing.T) {
	m := NewModule("calls", 1, 1)
	sq := m.NewFunc("square", Sig([]ValType{I32}, []ValType{I32}))
	sq.Get(0).Get(0).I32Mul()
	sq.MustBuild()
	db := m.NewFunc("double", Sig([]ValType{I32}, []ValType{I32}))
	db.Get(0).Get(0).I32Add()
	db.MustBuild()
	sqIdx, _ := m.FuncIndex("square")
	dbIdx, _ := m.FuncIndex("double")
	m.Table = []uint32{sqIdx, dbIdx, NullFunc}

	// apply(slot, x) = table[slot](x)
	ap := m.NewFunc("apply", Sig([]ValType{I32, I32}, []ValType{I32}))
	ap.Get(1).Get(0).CallIndirect(Sig([]ValType{I32}, []ValType{I32}))
	ap.MustBuild()

	// via direct call
	d := m.NewFunc("sq5", Sig(nil, []ValType{I32}))
	d.I32(5).CallNamed("square")
	d.MustBuild()

	m.MustExport("apply")
	m.MustExport("sq5")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if res := run(t, m, "sq5"); res[0] != 25 {
		t.Fatalf("sq5 = %d", res[0])
	}
	if res := run(t, m, "apply", 0, 7); res[0] != 49 {
		t.Fatalf("apply(0,7) = %d", res[0])
	}
	if res := run(t, m, "apply", 1, 7); res[0] != 14 {
		t.Fatalf("apply(1,7) = %d", res[0])
	}

	ip, _ := NewInterp(m, nil)
	_, err := ip.Invoke("apply", 2, 7) // null element
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapIndirectNull {
		t.Fatalf("apply(2,7) err = %v, want null-element trap", err)
	}
	_, err = ip.Invoke("apply", 99, 7) // out of range
	if !errors.As(err, &trap) || trap.Kind != TrapIndirectOOB {
		t.Fatalf("apply(99,7) err = %v, want table-oob trap", err)
	}
}

func TestMemoryOps(t *testing.T) {
	m := NewModule("mem", 1, 2)
	m.AddData(8, []byte{1, 2, 3, 4})

	fb := m.NewFunc("rd", Sig([]ValType{I32}, []ValType{I32}))
	fb.Get(0).I32Load(0)
	fb.MustBuild()
	wb := m.NewFunc("wr", Sig([]ValType{I32, I32}, nil))
	wb.Get(0).Get(1).I32Store(0)
	wb.MustBuild()
	g := m.NewFunc("grow", Sig(nil, []ValType{I32}))
	g.I32(1).MemGrow()
	g.MustBuild()
	m.MustExport("rd")
	m.MustExport("wr")
	m.MustExport("grow")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	ip, _ := NewInterp(m, nil)
	res, err := ip.Invoke("rd", 8)
	if err != nil || res[0] != 0x04030201 {
		t.Fatalf("rd(8) = %v, %v", res, err)
	}
	if _, err := ip.Invoke("wr", 100, 0xdeadbeef); err != nil {
		t.Fatalf("wr: %v", err)
	}
	res, _ = ip.Invoke("rd", 100)
	if res[0] != 0xdeadbeef {
		t.Fatalf("rd(100) = %#x", res[0])
	}

	// OOB load traps.
	_, err = ip.Invoke("rd", uint64(PageSize-2))
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapOOB {
		t.Fatalf("oob read err = %v", err)
	}

	// Grow succeeds once (max=2), then fails.
	res, _ = ip.Invoke("grow")
	if res[0] != 1 {
		t.Fatalf("grow = %d, want old size 1", res[0])
	}
	res, _ = ip.Invoke("grow")
	if uint32(res[0]) != 0xFFFFFFFF {
		t.Fatalf("second grow = %d, want -1", int32(res[0]))
	}
}

func TestHostImport(t *testing.T) {
	m := NewModule("host", 1, 1)
	logIdx := m.AddImport("env.add10", Sig([]ValType{I32}, []ValType{I32}))
	fb := m.NewFunc("f", Sig([]ValType{I32}, []ValType{I32}))
	fb.Get(0).Call(logIdx)
	fb.MustBuild()
	m.MustExport("f")
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	ip, err := NewInterp(m, map[string]HostFunc{
		"env.add10": func(mem []byte, args []uint64) (uint64, error) { return args[0] + 10, nil },
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := ip.Invoke("f", 32)
	if err != nil || res[0] != 42 {
		t.Fatalf("f(32) = %v, %v", res, err)
	}

	// Missing host binding is an instantiation error.
	if _, err := NewInterp(m, nil); err == nil {
		t.Fatal("instantiation without host binding should fail")
	}
}

func TestDivTraps(t *testing.T) {
	m := NewModule("div", 1, 1)
	fb := m.NewFunc("div", Sig([]ValType{I32, I32}, []ValType{I32}))
	fb.Get(0).Get(1).I32DivS()
	fb.MustBuild()
	m.MustExport("div")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, _ := NewInterp(m, nil)
	_, err := ip.Invoke("div", 10, 0)
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapDivByZero {
		t.Fatalf("div by zero err = %v", err)
	}
	_, err = ip.Invoke("div", 0x80000000, 0xFFFFFFFF) // MinInt32 / -1
	if !errors.As(err, &trap) || trap.Kind != TrapIntOverflow {
		t.Fatalf("overflow err = %v", err)
	}
	res, err := ip.Invoke("div", uint64(uint32(^uint32(6))+1), 2) // -6 / 2
	if err != nil || int32(res[0]) != -3 {
		t.Fatalf("-6/2 = %d, %v", int32(res[0]), err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func(m *Module)
	}{
		{"stack underflow", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, []ValType{I32}))
			fb.I32Add() // nothing on the stack
			fb.I32(0)
			fb.MustBuild()
		}},
		{"type mismatch", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, []ValType{I32}))
			fb.I64(1).I64(2).I64Add() // leaves i64, result is i32
			fb.MustBuild()
		}},
		{"bad local", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, nil))
			fb.Get(3).Drop()
			fb.MustBuild()
		}},
		{"bad branch depth", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, nil))
			fb.Br(5)
			fb.MustBuild()
		}},
		{"if result without else", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, []ValType{I32}))
			fb.I32(1)
			fb.If(I32)
			fb.I32(2)
			fb.End()
			fb.MustBuild()
		}},
		{"set immutable global", func(m *Module) {
			m.AddGlobal(I32, false, 7)
			fb := m.NewFunc("f", Sig(nil, nil))
			fb.I32(1).GSet(0)
			fb.MustBuild()
		}},
		{"extra values at end", func(m *Module) {
			fb := m.NewFunc("f", Sig(nil, nil))
			fb.I32(1).I32(2)
			fb.MustBuild()
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewModule("bad", 1, 1)
			c.build(m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted invalid module (%s)", c.name)
			}
		})
	}
}

func TestValidateAcceptsDeadCode(t *testing.T) {
	m := NewModule("dead", 1, 1)
	fb := m.NewFunc("f", Sig(nil, []ValType{I32}))
	fb.Block(I32)
	fb.I32(1).Br(0)
	fb.I32Add() // dead: polymorphic stack
	fb.End()
	fb.MustBuild()
	m.MustExport("f")
	if err := m.Validate(); err != nil {
		t.Fatalf("dead code should validate: %v", err)
	}
	if res := run(t, m, "f"); res[0] != 1 {
		t.Fatalf("f() = %d", res[0])
	}
}

func TestGlobals(t *testing.T) {
	m := NewModule("glob", 1, 1)
	g := m.AddGlobal(I64, true, 100)
	fb := m.NewFunc("bump", Sig(nil, []ValType{I64}))
	fb.GGet(g).I64(1).I64Add().GSet(g)
	fb.GGet(g)
	fb.MustBuild()
	m.MustExport("bump")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, _ := NewInterp(m, nil)
	for want := uint64(101); want <= 103; want++ {
		res, err := ip.Invoke("bump")
		if err != nil || res[0] != want {
			t.Fatalf("bump = %v, %v; want %d", res, err, want)
		}
	}
}

func TestStepLimit(t *testing.T) {
	m := NewModule("spin", 1, 1)
	fb := m.NewFunc("spin", Sig(nil, nil))
	fb.Loop()
	fb.Br(0)
	fb.End()
	fb.MustBuild()
	m.MustExport("spin")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, _ := NewInterp(m, nil)
	ip.StepLimit = 10000
	if _, err := ip.Invoke("spin"); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestRecursionFib(t *testing.T) {
	m := NewModule("fib", 1, 1)
	fb := m.NewFunc("fib", Sig([]ValType{I32}, []ValType{I32}))
	fb.Get(0).I32(2).I32LtS()
	fb.If(I32)
	fb.Get(0)
	fb.Else()
	fb.Get(0).I32(1).I32Sub().Call(fb.Index())
	fb.Get(0).I32(2).I32Sub().Call(fb.Index())
	fb.I32Add()
	fb.End()
	fb.MustBuild()
	m.MustExport("fib")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if res := run(t, m, "fib", 15); res[0] != 610 {
		t.Fatalf("fib(15) = %d, want 610", res[0])
	}
}

func TestStackExhaustion(t *testing.T) {
	m := NewModule("rec", 1, 1)
	fb := m.NewFunc("rec", Sig([]ValType{I32}, []ValType{I32}))
	fb.Get(0).I32(1).I32Add().Call(fb.Index())
	fb.MustBuild()
	m.MustExport("rec")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, _ := NewInterp(m, nil)
	_, err := ip.Invoke("rec", 0)
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapStackExhausted {
		t.Fatalf("err = %v, want stack exhaustion", err)
	}
}

// TestI32ArithQuick checks a sample of i32 operators against Go
// semantics on random operand pairs.
func TestI32ArithQuick(t *testing.T) {
	type opCase struct {
		op   Op
		eval func(a, b uint32) uint32
	}
	cases := []opCase{
		{OpI32Add, func(a, b uint32) uint32 { return a + b }},
		{OpI32Sub, func(a, b uint32) uint32 { return a - b }},
		{OpI32Mul, func(a, b uint32) uint32 { return a * b }},
		{OpI32And, func(a, b uint32) uint32 { return a & b }},
		{OpI32Or, func(a, b uint32) uint32 { return a | b }},
		{OpI32Xor, func(a, b uint32) uint32 { return a ^ b }},
		{OpI32Shl, func(a, b uint32) uint32 { return a << (b & 31) }},
		{OpI32ShrU, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{OpI32ShrS, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
	}
	for _, c := range cases {
		m := NewModule("q", 1, 1)
		fb := m.NewFunc("f", Sig([]ValType{I32, I32}, []ValType{I32}))
		fb.Get(0).Get(1).Op(c.op)
		fb.MustBuild()
		m.MustExport("f")
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		ip, _ := NewInterp(m, nil)
		f := func(a, b uint32) bool {
			res, err := ip.Invoke("f", uint64(a), uint64(b))
			return err == nil && uint32(res[0]) == c.eval(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("op %v: %v", c.op, err)
		}
	}
}

func TestMemCopyFill(t *testing.T) {
	m := NewModule("bulk", 1, 1)
	f1 := m.NewFunc("fill", Sig([]ValType{I32, I32, I32}, nil))
	f1.Get(0).Get(1).Get(2).MemFill()
	f1.MustBuild()
	f2 := m.NewFunc("copy", Sig([]ValType{I32, I32, I32}, nil))
	f2.Get(0).Get(1).Get(2).MemCopy()
	f2.MustBuild()
	rd := m.NewFunc("rd", Sig([]ValType{I32}, []ValType{I32}))
	rd.Get(0).I32Load8U(0)
	rd.MustBuild()
	m.MustExport("fill")
	m.MustExport("copy")
	m.MustExport("rd")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, _ := NewInterp(m, nil)
	if _, err := ip.Invoke("fill", 10, 0xAB, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Invoke("copy", 100, 10, 4); err != nil {
		t.Fatal(err)
	}
	res, _ := ip.Invoke("rd", 103)
	if res[0] != 0xAB {
		t.Fatalf("rd(103) = %#x", res[0])
	}
	// Overlapping copy behaves like memmove.
	if _, err := ip.Invoke("copy", 11, 10, 4); err != nil {
		t.Fatal(err)
	}
	res, _ = ip.Invoke("rd", 14)
	if res[0] != 0xAB {
		t.Fatalf("overlap rd(14) = %#x", res[0])
	}
}

func TestWhileCombinator(t *testing.T) {
	// Collatz step count for n=27 is 111.
	m := NewModule("collatz", 1, 1)
	fb := m.NewFunc("collatz", Sig([]ValType{I32}, []ValType{I32}), I32)
	fb.While(func() {
		fb.Get(0).I32(1).I32Ne()
	}, func() {
		fb.Get(0).I32(1).I32And()
		fb.If()
		fb.Get(0).I32(3).I32Mul().I32(1).I32Add().Set(0)
		fb.Else()
		fb.Get(0).I32(1).I32ShrU().Set(0)
		fb.End()
		fb.Get(1).I32(1).I32Add().Set(1)
	})
	fb.Get(1)
	fb.MustBuild()
	m.MustExport("collatz")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if res := run(t, m, "collatz", 27); res[0] != 111 {
		t.Fatalf("collatz(27) = %d, want 111", res[0])
	}
}

func TestF64(t *testing.T) {
	m := NewModule("f64", 1, 1)
	fb := m.NewFunc("hyp", Sig([]ValType{F64, F64}, []ValType{F64}))
	fb.Get(0).Get(0).F64Mul()
	fb.Get(1).Get(1).F64Mul()
	fb.F64Add().F64Sqrt()
	fb.MustBuild()
	m.MustExport("hyp")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	res := run(t, m, "hyp", math.Float64bits(3), math.Float64bits(4))
	if got := math.Float64frombits(res[0]); got != 5 {
		t.Fatalf("hyp(3,4) = %g", got)
	}
}
