package ir

import "fmt"

// Validate type-checks every function in the module against the standard
// Wasm stack discipline (including unreachable-code polymorphism),
// verifies table/global/data consistency, and caches control-structure
// resolution (block/if → matching else/end) for the interpreter and the
// compilers. It must be called before Interp or compilation.
func (m *Module) Validate() error {
	if m.MemMax < m.MemMin {
		return fmt.Errorf("ir: module %q: MemMax %d < MemMin %d", m.Name, m.MemMax, m.MemMin)
	}
	for _, g := range m.Globals {
		if g.Type == V128 {
			return fmt.Errorf("ir: module %q: v128 globals unsupported", m.Name)
		}
	}
	for _, seg := range m.Data {
		end := uint64(seg.Offset) + uint64(len(seg.Bytes))
		if end > uint64(m.MemMin)*PageSize {
			return fmt.Errorf("ir: module %q: data segment [%d, %d) exceeds initial memory", m.Name, seg.Offset, end)
		}
	}
	for _, idx := range m.Table {
		if idx != NullFunc && int(idx) >= m.NumFuncs() {
			return fmt.Errorf("ir: module %q: table element %d out of range", m.Name, idx)
		}
	}
	for name, idx := range m.Exports {
		if int(idx) >= m.NumFuncs() {
			return fmt.Errorf("ir: module %q: export %q index %d out of range", m.Name, name, idx)
		}
	}
	for fi, f := range m.Funcs {
		if len(f.Type.Results) > 1 {
			return fmt.Errorf("ir: function %q: multiple results unsupported", f.Name)
		}
		if err := m.validateFunc(f); err != nil {
			return fmt.Errorf("ir: function %d (%q): %w", fi, f.Name, err)
		}
	}
	for _, imp := range m.Imports {
		if len(imp.Type.Results) > 1 {
			return fmt.Errorf("ir: import %q: multiple results unsupported", imp.Name)
		}
	}
	m.validated = true
	return nil
}

// Validated reports whether Validate has succeeded on this module.
func (m *Module) Validated() bool { return m.validated }

// unknownType is the polymorphic stack value used after unconditional
// branches.
const unknownType ValType = 0xFF

type vframe struct {
	op       Op
	result   int8 // NoResult or ValType
	height   int  // value-stack height at entry
	startIdx int  // instruction index of the opener (-1 for the body frame)
	elseIdx  int
	dead     bool // current code in this frame is unreachable
}

type validator struct {
	m      *Module
	f      *Func
	vals   []ValType
	frames []vframe
}

func (v *validator) push(t ValType) { v.vals = append(v.vals, t) }

func (v *validator) popAny() (ValType, error) {
	fr := &v.frames[len(v.frames)-1]
	if len(v.vals) == fr.height {
		if fr.dead {
			return unknownType, nil
		}
		return 0, fmt.Errorf("value stack underflow")
	}
	t := v.vals[len(v.vals)-1]
	v.vals = v.vals[:len(v.vals)-1]
	return t, nil
}

func (v *validator) pop(expect ValType) error {
	t, err := v.popAny()
	if err != nil {
		return err
	}
	if t != unknownType && t != expect {
		return fmt.Errorf("expected %v on stack, found %v", expect, t)
	}
	return nil
}

// labelTypes returns the types a branch to the frame must supply: none
// for a loop (branches re-enter), the result for block/if.
func labelTypes(fr vframe) []ValType {
	if fr.op == OpLoop || fr.result == NoResult {
		return nil
	}
	return []ValType{ValType(fr.result)}
}

func (v *validator) frameAt(depth int64) (*vframe, error) {
	if depth < 0 || int(depth) >= len(v.frames) {
		return nil, fmt.Errorf("branch depth %d out of range (nesting %d)", depth, len(v.frames))
	}
	return &v.frames[len(v.frames)-1-int(depth)], nil
}

func (v *validator) markDead() {
	fr := &v.frames[len(v.frames)-1]
	fr.dead = true
	v.vals = v.vals[:fr.height]
}

func (m *Module) validateFunc(f *Func) error {
	v := &validator{m: m, f: f}
	bodyResult := NoResult
	if len(f.Type.Results) == 1 {
		bodyResult = int8(f.Type.Results[0])
	}
	v.frames = []vframe{{op: OpBlock, result: bodyResult, startIdx: -1, elseIdx: -1}}
	f.ctrl = make(map[int]ctrlInfo)

	for pc, in := range f.Body {
		if err := v.step(pc, in); err != nil {
			return fmt.Errorf("at %d (%s): %w", pc, in, err)
		}
	}
	if len(v.frames) != 1 {
		return fmt.Errorf("unbalanced control: %d frames open at end of body", len(v.frames)-1)
	}
	// The implicit end of the body: the declared result must be present.
	fr := v.frames[0]
	if fr.result != NoResult {
		if err := v.pop(ValType(fr.result)); err != nil {
			return fmt.Errorf("function result: %w", err)
		}
	}
	if len(v.vals) != 0 && !fr.dead {
		return fmt.Errorf("%d extra values on stack at end of body", len(v.vals))
	}
	return nil
}

func (v *validator) step(pc int, in Inst) error {
	f, m := v.f, v.m
	switch in.Op {
	case OpNop:
	case OpUnreachable:
		v.markDead()

	case OpBlock, OpLoop:
		v.frames = append(v.frames, vframe{op: in.Op, result: in.BlockType, height: len(v.vals), startIdx: pc, elseIdx: -1})
	case OpIf:
		if err := v.pop(I32); err != nil {
			return err
		}
		v.frames = append(v.frames, vframe{op: OpIf, result: in.BlockType, height: len(v.vals), startIdx: pc, elseIdx: -1})
	case OpElse:
		fr := &v.frames[len(v.frames)-1]
		if fr.op != OpIf || fr.elseIdx != -1 {
			return fmt.Errorf("else without matching if")
		}
		if fr.result != NoResult {
			if err := v.pop(ValType(fr.result)); err != nil {
				return fmt.Errorf("true arm result: %w", err)
			}
		}
		if len(v.vals) != fr.height && !fr.dead {
			return fmt.Errorf("true arm leaves %d extra values", len(v.vals)-fr.height)
		}
		v.vals = v.vals[:fr.height]
		fr.elseIdx = pc
		fr.dead = false
	case OpEnd:
		if len(v.frames) == 1 {
			return fmt.Errorf("end without matching block")
		}
		fr := v.frames[len(v.frames)-1]
		if fr.result != NoResult {
			if err := v.pop(ValType(fr.result)); err != nil {
				return fmt.Errorf("block result: %w", err)
			}
		}
		if len(v.vals) != fr.height && !fr.dead {
			return fmt.Errorf("block leaves %d extra values", len(v.vals)-fr.height)
		}
		if fr.op == OpIf && fr.elseIdx == -1 && fr.result != NoResult {
			return fmt.Errorf("if with result type requires an else arm")
		}
		v.vals = v.vals[:fr.height]
		v.frames = v.frames[:len(v.frames)-1]
		if fr.result != NoResult {
			v.push(ValType(fr.result))
		}
		f.ctrl[fr.startIdx] = ctrlInfo{end: pc, els: fr.elseIdx}

	case OpBr:
		fr, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		for _, t := range labelTypes(*fr) {
			if err := v.pop(t); err != nil {
				return err
			}
		}
		v.markDead()
	case OpBrIf:
		if err := v.pop(I32); err != nil {
			return err
		}
		fr, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		lt := labelTypes(*fr)
		for _, t := range lt {
			if err := v.pop(t); err != nil {
				return err
			}
		}
		for _, t := range lt {
			v.push(t)
		}
	case OpBrTable:
		if err := v.pop(I32); err != nil {
			return err
		}
		def, err := v.frameAt(in.Imm)
		if err != nil {
			return err
		}
		want := labelTypes(*def)
		for _, d := range in.Targets {
			fr, err := v.frameAt(int64(d))
			if err != nil {
				return err
			}
			got := labelTypes(*fr)
			if len(got) != len(want) || (len(got) == 1 && got[0] != want[0]) {
				return fmt.Errorf("br_table label arity mismatch")
			}
		}
		for _, t := range want {
			if err := v.pop(t); err != nil {
				return err
			}
		}
		v.markDead()
	case OpReturn:
		for i := len(f.Type.Results) - 1; i >= 0; i-- {
			if err := v.pop(f.Type.Results[i]); err != nil {
				return err
			}
		}
		v.markDead()

	case OpCall:
		sig, err := m.TypeOf(uint32(in.Imm))
		if err != nil {
			return err
		}
		return v.applyCall(sig)
	case OpCallIndirect:
		if in.Imm < 0 || int(in.Imm) >= len(m.sigTable) {
			return fmt.Errorf("call_indirect type index %d out of range", in.Imm)
		}
		if err := v.pop(I32); err != nil {
			return err
		}
		return v.applyCall(m.sigTable[in.Imm])

	case OpDrop:
		_, err := v.popAny()
		return err
	case OpSelect:
		if err := v.pop(I32); err != nil {
			return err
		}
		t1, err := v.popAny()
		if err != nil {
			return err
		}
		t2, err := v.popAny()
		if err != nil {
			return err
		}
		if t1 != unknownType && t2 != unknownType && t1 != t2 {
			return fmt.Errorf("select operands differ: %v vs %v", t1, t2)
		}
		if t1 == unknownType {
			t1 = t2
		}
		v.push(t1)

	case OpLocalGet, OpLocalSet, OpLocalTee:
		if in.Imm < 0 || int(in.Imm) >= f.NumLocals() {
			return fmt.Errorf("local index %d out of range", in.Imm)
		}
		t := f.LocalType(int(in.Imm))
		switch in.Op {
		case OpLocalGet:
			v.push(t)
		case OpLocalSet:
			return v.pop(t)
		default:
			if err := v.pop(t); err != nil {
				return err
			}
			v.push(t)
		}
	case OpGlobalGet, OpGlobalSet:
		if in.Imm < 0 || int(in.Imm) >= len(m.Globals) {
			return fmt.Errorf("global index %d out of range", in.Imm)
		}
		g := m.Globals[in.Imm]
		if in.Op == OpGlobalGet {
			v.push(g.Type)
		} else {
			if !g.Mutable {
				return fmt.Errorf("global %d is immutable", in.Imm)
			}
			return v.pop(g.Type)
		}

	case OpI32Const:
		v.push(I32)
	case OpI64Const:
		v.push(I64)
	case OpF64Const:
		v.push(F64)

	case OpMemorySize:
		v.push(I32)
	case OpMemoryGrow:
		if err := v.pop(I32); err != nil {
			return err
		}
		v.push(I32)
	case OpMemoryCopy, OpMemoryFill:
		for i := 0; i < 3; i++ {
			if err := v.pop(I32); err != nil {
				return err
			}
		}

	default:
		return v.stepALU(in)
	}
	return nil
}

func (v *validator) applyCall(sig FuncType) error {
	for i := len(sig.Params) - 1; i >= 0; i-- {
		if err := v.pop(sig.Params[i]); err != nil {
			return fmt.Errorf("call argument %d: %w", i, err)
		}
	}
	for _, r := range sig.Results {
		v.push(r)
	}
	return nil
}

// loadResult maps a load opcode to the pushed type.
func loadResult(o Op) ValType {
	switch o {
	case OpI64Load:
		return I64
	case OpF64Load:
		return F64
	case OpV128Load:
		return V128
	default:
		return I32
	}
}

// storeOperand maps a store opcode to the popped value type.
func storeOperand(o Op) ValType {
	switch o {
	case OpI64Store:
		return I64
	case OpF64Store:
		return F64
	case OpV128Store:
		return V128
	default:
		return I32
	}
}

func (v *validator) stepALU(in Inst) error {
	o := in.Op
	bin := func(t, r ValType) error {
		if err := v.pop(t); err != nil {
			return err
		}
		if err := v.pop(t); err != nil {
			return err
		}
		v.push(r)
		return nil
	}
	un := func(t, r ValType) error {
		if err := v.pop(t); err != nil {
			return err
		}
		v.push(r)
		return nil
	}
	switch {
	case o.IsLoad():
		return un(I32, loadResult(o))
	case o.IsStore():
		if err := v.pop(storeOperand(o)); err != nil {
			return err
		}
		return v.pop(I32)
	case o == OpI32Eqz:
		return un(I32, I32)
	case o >= OpI32Eq && o <= OpI32GeU:
		return bin(I32, I32)
	case o >= OpI32Add && o <= OpI32ShrU || o == OpI32Rotl || o == OpI32Rotr:
		return bin(I32, I32)
	case o == OpI32Clz || o == OpI32Ctz || o == OpI32Popcnt:
		return un(I32, I32)
	case o == OpI64Eqz:
		return un(I64, I32)
	case o >= OpI64Eq && o <= OpI64GeU:
		return bin(I64, I32)
	case o >= OpI64Add && o <= OpI64ShrU || o == OpI64Rotl || o == OpI64Rotr:
		return bin(I64, I64)
	case o == OpI64Clz || o == OpI64Ctz || o == OpI64Popcnt:
		return un(I64, I64)
	case o >= OpF64Eq && o <= OpF64Ge:
		return bin(F64, I32)
	case o >= OpF64Add && o <= OpF64Div || o == OpF64Min || o == OpF64Max:
		return bin(F64, F64)
	case o == OpF64Sqrt || o == OpF64Abs || o == OpF64Neg:
		return un(F64, F64)
	case o == OpI32WrapI64:
		return un(I64, I32)
	case o == OpI64ExtendI32S || o == OpI64ExtendI32U:
		return un(I32, I64)
	case o == OpF64ConvertI32S || o == OpF64ConvertI32U:
		return un(I32, F64)
	case o == OpF64ConvertI64S:
		return un(I64, F64)
	case o == OpI32TruncF64S:
		return un(F64, I32)
	case o == OpI64TruncF64S:
		return un(F64, I64)
	case o == OpF64ReinterpretI64:
		return un(I64, F64)
	case o == OpI64ReinterpretF64:
		return un(F64, I64)
	default:
		return fmt.Errorf("unknown opcode %v", o)
	}
}
