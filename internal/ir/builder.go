package ir

import "fmt"

// FuncBuilder assembles a function body instruction by instruction. It
// tracks control nesting so Build can reject unbalanced bodies early,
// and offers loop combinators that keep kernel code compact.
//
// Obtain one from Module.NewFunc; finish with Build.
type FuncBuilder struct {
	m     *Module
	f     *Func
	depth int
	built bool
}

// NewFunc starts building a function with the given name, signature, and
// extra local types. The function is appended to the module immediately
// so its index is stable; the body is filled by the builder.
func (m *Module) NewFunc(name string, t FuncType, locals ...ValType) *FuncBuilder {
	f := &Func{Name: name, Type: t, Locals: locals}
	m.Funcs = append(m.Funcs, f)
	return &FuncBuilder{m: m, f: f}
}

// Index returns the function index (in the combined import+func space)
// of the function being built.
func (b *FuncBuilder) Index() uint32 {
	for i, f := range b.m.Funcs {
		if f == b.f {
			return uint32(len(b.m.Imports) + i)
		}
	}
	panic("ir: builder's function not in module")
}

// AddLocal appends an extra local of type t and returns its index.
func (b *FuncBuilder) AddLocal(t ValType) uint32 {
	b.f.Locals = append(b.f.Locals, t)
	return uint32(len(b.f.Type.Params) + len(b.f.Locals) - 1)
}

// Build finalizes the body, checking that control is balanced. The
// module-level Validate pass performs full type checking.
func (b *FuncBuilder) Build() error {
	if b.built {
		return fmt.Errorf("ir: function %q built twice", b.f.Name)
	}
	if b.depth != 0 {
		return fmt.Errorf("ir: function %q has unbalanced control (depth %d at end)", b.f.Name, b.depth)
	}
	b.built = true
	return nil
}

// MustBuild is Build that panics on error, for use in kernel definitions.
func (b *FuncBuilder) MustBuild() {
	if err := b.Build(); err != nil {
		panic(err)
	}
}

func (b *FuncBuilder) emit(i Inst) *FuncBuilder {
	b.f.Body = append(b.f.Body, i)
	return b
}

// Emit appends a raw instruction.
func (b *FuncBuilder) Emit(i Inst) *FuncBuilder { return b.emit(i) }

// Op appends a no-immediate instruction (ALU ops, conversions, drops).
func (b *FuncBuilder) Op(op Op) *FuncBuilder { return b.emit(Inst{Op: op}) }

// --- Control flow ---

// Block opens a block region. Pass no arguments for an empty result or
// one ValType for a single-result block.
func (b *FuncBuilder) Block(result ...ValType) *FuncBuilder {
	b.depth++
	return b.emit(Inst{Op: OpBlock, BlockType: blockType(result)})
}

// Loop opens a loop region (branches to it re-enter the loop).
func (b *FuncBuilder) Loop(result ...ValType) *FuncBuilder {
	b.depth++
	return b.emit(Inst{Op: OpLoop, BlockType: blockType(result)})
}

// If opens a conditional region consuming an i32 condition.
func (b *FuncBuilder) If(result ...ValType) *FuncBuilder {
	b.depth++
	return b.emit(Inst{Op: OpIf, BlockType: blockType(result)})
}

// Else begins the false arm of the innermost if.
func (b *FuncBuilder) Else() *FuncBuilder { return b.emit(Inst{Op: OpElse}) }

// End closes the innermost block/loop/if.
func (b *FuncBuilder) End() *FuncBuilder {
	b.depth--
	return b.emit(Inst{Op: OpEnd})
}

func blockType(result []ValType) int8 {
	switch len(result) {
	case 0:
		return NoResult
	case 1:
		return int8(result[0])
	default:
		panic("ir: blocks support at most one result")
	}
}

// Br branches unconditionally to the label at the given relative depth.
func (b *FuncBuilder) Br(depth uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpBr, Imm: int64(depth)})
}

// BrIf branches if the popped i32 condition is non-zero.
func (b *FuncBuilder) BrIf(depth uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpBrIf, Imm: int64(depth)})
}

// BrTable branches to targets[i] for popped index i, or to def.
func (b *FuncBuilder) BrTable(targets []uint32, def uint32) *FuncBuilder {
	cp := make([]uint32, len(targets))
	copy(cp, targets)
	return b.emit(Inst{Op: OpBrTable, Targets: cp, Imm: int64(def)})
}

// Return returns from the function.
func (b *FuncBuilder) Return() *FuncBuilder { return b.emit(Inst{Op: OpReturn}) }

// Call calls the function at the given index in the combined index space.
func (b *FuncBuilder) Call(fn uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpCall, Imm: int64(fn)})
}

// CallNamed calls a defined function by name; it panics if the name is
// unknown, so kernels must define callees before callers reference them.
func (b *FuncBuilder) CallNamed(name string) *FuncBuilder {
	idx, ok := b.m.FuncIndex(name)
	if !ok {
		panic(fmt.Sprintf("ir: CallNamed(%q): unknown function", name))
	}
	return b.Call(idx)
}

// CallIndirect calls through the table; the table slot index is popped
// from the stack and the callee must have signature t.
func (b *FuncBuilder) CallIndirect(t FuncType) *FuncBuilder {
	// Signatures are stored inline; the validator matches structurally.
	i := Inst{Op: OpCallIndirect}
	i.Imm = int64(b.m.internType(t))
	return b.emit(i)
}

// Unreachable traps deterministically.
func (b *FuncBuilder) Unreachable() *FuncBuilder { return b.emit(Inst{Op: OpUnreachable}) }

// Drop discards the top stack value. Select picks between the second and
// third stack values by the popped i32 condition.
func (b *FuncBuilder) Drop() *FuncBuilder   { return b.Op(OpDrop) }
func (b *FuncBuilder) Select() *FuncBuilder { return b.Op(OpSelect) }

// --- Constants, locals, globals ---

// I32 pushes an i32 constant.
func (b *FuncBuilder) I32(v int32) *FuncBuilder {
	return b.emit(Inst{Op: OpI32Const, Imm: int64(v)})
}

// I64 pushes an i64 constant.
func (b *FuncBuilder) I64(v int64) *FuncBuilder {
	return b.emit(Inst{Op: OpI64Const, Imm: v})
}

// F64 pushes an f64 constant.
func (b *FuncBuilder) F64(v float64) *FuncBuilder {
	return b.emit(Inst{Op: OpF64Const, Fimm: v})
}

// Get pushes local i; Set pops into local i; Tee stores without popping.
func (b *FuncBuilder) Get(i uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpLocalGet, Imm: int64(i)})
}

// Set pops the top of stack into local i.
func (b *FuncBuilder) Set(i uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpLocalSet, Imm: int64(i)})
}

// Tee stores the top of stack into local i without popping it.
func (b *FuncBuilder) Tee(i uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpLocalTee, Imm: int64(i)})
}

// GGet pushes global i; GSet pops into global i.
func (b *FuncBuilder) GGet(i uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpGlobalGet, Imm: int64(i)})
}

// GSet pops the top of stack into global i.
func (b *FuncBuilder) GSet(i uint32) *FuncBuilder {
	return b.emit(Inst{Op: OpGlobalSet, Imm: int64(i)})
}

// --- Memory ---

func (b *FuncBuilder) mem(op Op, offset uint32) *FuncBuilder {
	return b.emit(Inst{Op: op, Offset: offset})
}

// Memory loads: address (i32) is popped; offset is the static memarg.
func (b *FuncBuilder) I32Load(offset uint32) *FuncBuilder    { return b.mem(OpI32Load, offset) }
func (b *FuncBuilder) I64Load(offset uint32) *FuncBuilder    { return b.mem(OpI64Load, offset) }
func (b *FuncBuilder) F64Load(offset uint32) *FuncBuilder    { return b.mem(OpF64Load, offset) }
func (b *FuncBuilder) I32Load8U(offset uint32) *FuncBuilder  { return b.mem(OpI32Load8U, offset) }
func (b *FuncBuilder) I32Load8S(offset uint32) *FuncBuilder  { return b.mem(OpI32Load8S, offset) }
func (b *FuncBuilder) I32Load16U(offset uint32) *FuncBuilder { return b.mem(OpI32Load16U, offset) }
func (b *FuncBuilder) V128Load(offset uint32) *FuncBuilder   { return b.mem(OpV128Load, offset) }

// Memory stores: value then address are popped (address pushed first).
func (b *FuncBuilder) I32Store(offset uint32) *FuncBuilder   { return b.mem(OpI32Store, offset) }
func (b *FuncBuilder) I64Store(offset uint32) *FuncBuilder   { return b.mem(OpI64Store, offset) }
func (b *FuncBuilder) F64Store(offset uint32) *FuncBuilder   { return b.mem(OpF64Store, offset) }
func (b *FuncBuilder) I32Store8(offset uint32) *FuncBuilder  { return b.mem(OpI32Store8, offset) }
func (b *FuncBuilder) I32Store16(offset uint32) *FuncBuilder { return b.mem(OpI32Store16, offset) }
func (b *FuncBuilder) V128Store(offset uint32) *FuncBuilder  { return b.mem(OpV128Store, offset) }

// Bulk memory and sizing.
func (b *FuncBuilder) MemSize() *FuncBuilder { return b.Op(OpMemorySize) }
func (b *FuncBuilder) MemGrow() *FuncBuilder { return b.Op(OpMemoryGrow) }
func (b *FuncBuilder) MemCopy() *FuncBuilder { return b.Op(OpMemoryCopy) }
func (b *FuncBuilder) MemFill() *FuncBuilder { return b.Op(OpMemoryFill) }

// --- i32 ALU ---

func (b *FuncBuilder) I32Eqz() *FuncBuilder    { return b.Op(OpI32Eqz) }
func (b *FuncBuilder) I32Eq() *FuncBuilder     { return b.Op(OpI32Eq) }
func (b *FuncBuilder) I32Ne() *FuncBuilder     { return b.Op(OpI32Ne) }
func (b *FuncBuilder) I32LtS() *FuncBuilder    { return b.Op(OpI32LtS) }
func (b *FuncBuilder) I32LtU() *FuncBuilder    { return b.Op(OpI32LtU) }
func (b *FuncBuilder) I32GtS() *FuncBuilder    { return b.Op(OpI32GtS) }
func (b *FuncBuilder) I32GtU() *FuncBuilder    { return b.Op(OpI32GtU) }
func (b *FuncBuilder) I32LeS() *FuncBuilder    { return b.Op(OpI32LeS) }
func (b *FuncBuilder) I32LeU() *FuncBuilder    { return b.Op(OpI32LeU) }
func (b *FuncBuilder) I32GeS() *FuncBuilder    { return b.Op(OpI32GeS) }
func (b *FuncBuilder) I32GeU() *FuncBuilder    { return b.Op(OpI32GeU) }
func (b *FuncBuilder) I32Add() *FuncBuilder    { return b.Op(OpI32Add) }
func (b *FuncBuilder) I32Sub() *FuncBuilder    { return b.Op(OpI32Sub) }
func (b *FuncBuilder) I32Mul() *FuncBuilder    { return b.Op(OpI32Mul) }
func (b *FuncBuilder) I32DivS() *FuncBuilder   { return b.Op(OpI32DivS) }
func (b *FuncBuilder) I32DivU() *FuncBuilder   { return b.Op(OpI32DivU) }
func (b *FuncBuilder) I32RemS() *FuncBuilder   { return b.Op(OpI32RemS) }
func (b *FuncBuilder) I32RemU() *FuncBuilder   { return b.Op(OpI32RemU) }
func (b *FuncBuilder) I32And() *FuncBuilder    { return b.Op(OpI32And) }
func (b *FuncBuilder) I32Or() *FuncBuilder     { return b.Op(OpI32Or) }
func (b *FuncBuilder) I32Xor() *FuncBuilder    { return b.Op(OpI32Xor) }
func (b *FuncBuilder) I32Shl() *FuncBuilder    { return b.Op(OpI32Shl) }
func (b *FuncBuilder) I32ShrS() *FuncBuilder   { return b.Op(OpI32ShrS) }
func (b *FuncBuilder) I32ShrU() *FuncBuilder   { return b.Op(OpI32ShrU) }
func (b *FuncBuilder) I32Rotl() *FuncBuilder   { return b.Op(OpI32Rotl) }
func (b *FuncBuilder) I32Rotr() *FuncBuilder   { return b.Op(OpI32Rotr) }
func (b *FuncBuilder) I32Clz() *FuncBuilder    { return b.Op(OpI32Clz) }
func (b *FuncBuilder) I32Ctz() *FuncBuilder    { return b.Op(OpI32Ctz) }
func (b *FuncBuilder) I32Popcnt() *FuncBuilder { return b.Op(OpI32Popcnt) }

// --- i64 ALU ---

func (b *FuncBuilder) I64Eqz() *FuncBuilder    { return b.Op(OpI64Eqz) }
func (b *FuncBuilder) I64Eq() *FuncBuilder     { return b.Op(OpI64Eq) }
func (b *FuncBuilder) I64Ne() *FuncBuilder     { return b.Op(OpI64Ne) }
func (b *FuncBuilder) I64LtS() *FuncBuilder    { return b.Op(OpI64LtS) }
func (b *FuncBuilder) I64LtU() *FuncBuilder    { return b.Op(OpI64LtU) }
func (b *FuncBuilder) I64GtS() *FuncBuilder    { return b.Op(OpI64GtS) }
func (b *FuncBuilder) I64GtU() *FuncBuilder    { return b.Op(OpI64GtU) }
func (b *FuncBuilder) I64LeS() *FuncBuilder    { return b.Op(OpI64LeS) }
func (b *FuncBuilder) I64LeU() *FuncBuilder    { return b.Op(OpI64LeU) }
func (b *FuncBuilder) I64GeS() *FuncBuilder    { return b.Op(OpI64GeS) }
func (b *FuncBuilder) I64GeU() *FuncBuilder    { return b.Op(OpI64GeU) }
func (b *FuncBuilder) I64Add() *FuncBuilder    { return b.Op(OpI64Add) }
func (b *FuncBuilder) I64Sub() *FuncBuilder    { return b.Op(OpI64Sub) }
func (b *FuncBuilder) I64Mul() *FuncBuilder    { return b.Op(OpI64Mul) }
func (b *FuncBuilder) I64DivS() *FuncBuilder   { return b.Op(OpI64DivS) }
func (b *FuncBuilder) I64DivU() *FuncBuilder   { return b.Op(OpI64DivU) }
func (b *FuncBuilder) I64RemS() *FuncBuilder   { return b.Op(OpI64RemS) }
func (b *FuncBuilder) I64RemU() *FuncBuilder   { return b.Op(OpI64RemU) }
func (b *FuncBuilder) I64And() *FuncBuilder    { return b.Op(OpI64And) }
func (b *FuncBuilder) I64Or() *FuncBuilder     { return b.Op(OpI64Or) }
func (b *FuncBuilder) I64Xor() *FuncBuilder    { return b.Op(OpI64Xor) }
func (b *FuncBuilder) I64Shl() *FuncBuilder    { return b.Op(OpI64Shl) }
func (b *FuncBuilder) I64ShrS() *FuncBuilder   { return b.Op(OpI64ShrS) }
func (b *FuncBuilder) I64ShrU() *FuncBuilder   { return b.Op(OpI64ShrU) }
func (b *FuncBuilder) I64Rotl() *FuncBuilder   { return b.Op(OpI64Rotl) }
func (b *FuncBuilder) I64Rotr() *FuncBuilder   { return b.Op(OpI64Rotr) }
func (b *FuncBuilder) I64Clz() *FuncBuilder    { return b.Op(OpI64Clz) }
func (b *FuncBuilder) I64Ctz() *FuncBuilder    { return b.Op(OpI64Ctz) }
func (b *FuncBuilder) I64Popcnt() *FuncBuilder { return b.Op(OpI64Popcnt) }

// --- f64 ---

func (b *FuncBuilder) F64Eq() *FuncBuilder   { return b.Op(OpF64Eq) }
func (b *FuncBuilder) F64Ne() *FuncBuilder   { return b.Op(OpF64Ne) }
func (b *FuncBuilder) F64Lt() *FuncBuilder   { return b.Op(OpF64Lt) }
func (b *FuncBuilder) F64Gt() *FuncBuilder   { return b.Op(OpF64Gt) }
func (b *FuncBuilder) F64Le() *FuncBuilder   { return b.Op(OpF64Le) }
func (b *FuncBuilder) F64Ge() *FuncBuilder   { return b.Op(OpF64Ge) }
func (b *FuncBuilder) F64Add() *FuncBuilder  { return b.Op(OpF64Add) }
func (b *FuncBuilder) F64Sub() *FuncBuilder  { return b.Op(OpF64Sub) }
func (b *FuncBuilder) F64Mul() *FuncBuilder  { return b.Op(OpF64Mul) }
func (b *FuncBuilder) F64Div() *FuncBuilder  { return b.Op(OpF64Div) }
func (b *FuncBuilder) F64Sqrt() *FuncBuilder { return b.Op(OpF64Sqrt) }
func (b *FuncBuilder) F64Abs() *FuncBuilder  { return b.Op(OpF64Abs) }
func (b *FuncBuilder) F64Neg() *FuncBuilder  { return b.Op(OpF64Neg) }
func (b *FuncBuilder) F64Min() *FuncBuilder  { return b.Op(OpF64Min) }
func (b *FuncBuilder) F64Max() *FuncBuilder  { return b.Op(OpF64Max) }

// --- Conversions ---

func (b *FuncBuilder) I32WrapI64() *FuncBuilder        { return b.Op(OpI32WrapI64) }
func (b *FuncBuilder) I64ExtendI32S() *FuncBuilder     { return b.Op(OpI64ExtendI32S) }
func (b *FuncBuilder) I64ExtendI32U() *FuncBuilder     { return b.Op(OpI64ExtendI32U) }
func (b *FuncBuilder) F64ConvertI32S() *FuncBuilder    { return b.Op(OpF64ConvertI32S) }
func (b *FuncBuilder) F64ConvertI32U() *FuncBuilder    { return b.Op(OpF64ConvertI32U) }
func (b *FuncBuilder) F64ConvertI64S() *FuncBuilder    { return b.Op(OpF64ConvertI64S) }
func (b *FuncBuilder) I32TruncF64S() *FuncBuilder      { return b.Op(OpI32TruncF64S) }
func (b *FuncBuilder) I64TruncF64S() *FuncBuilder      { return b.Op(OpI64TruncF64S) }
func (b *FuncBuilder) F64ReinterpretI64() *FuncBuilder { return b.Op(OpF64ReinterpretI64) }
func (b *FuncBuilder) I64ReinterpretF64() *FuncBuilder { return b.Op(OpI64ReinterpretF64) }

// --- Combinators ---

// LoopN emits a counted loop: for (i = start; i < limit; i += step) body.
// The counter lives in local i and the comparison is signed. Branch
// depths inside body shift by two (the combinator's block and loop).
func (b *FuncBuilder) LoopN(i uint32, start, limit, step int32, body func()) *FuncBuilder {
	b.I32(start).Set(i)
	b.Block()
	b.Loop()
	b.Get(i).I32(limit).I32GeS().BrIf(1)
	body()
	b.Get(i).I32(step).I32Add().Set(i)
	b.Br(0)
	b.End()
	b.End()
	return b
}

// LoopNDyn emits a counted loop whose limit is local limitLocal.
func (b *FuncBuilder) LoopNDyn(i, limitLocal uint32, start, step int32, body func()) *FuncBuilder {
	b.I32(start).Set(i)
	b.Block()
	b.Loop()
	b.Get(i).Get(limitLocal).I32GeS().BrIf(1)
	body()
	b.Get(i).I32(step).I32Add().Set(i)
	b.Br(0)
	b.End()
	b.End()
	return b
}

// While emits: while (cond) body. cond must push one i32. Branch depths
// inside cond/body shift by two.
func (b *FuncBuilder) While(cond, body func()) *FuncBuilder {
	b.Block()
	b.Loop()
	cond()
	b.I32Eqz().BrIf(1)
	body()
	b.Br(0)
	b.End()
	b.End()
	return b
}

// InternType registers t in the module's signature table (the table
// call_indirect type indices refer to) and returns its index. The SFI
// compilers use the same indices as signature ids for table entries.
func (m *Module) InternType(t FuncType) int { return m.internType(t) }

// internType registers t in the module's signature table for
// call_indirect and returns its index.
func (m *Module) internType(t FuncType) int {
	for i, s := range m.sigTable {
		if s.Equal(t) {
			return i
		}
	}
	m.sigTable = append(m.sigTable, t)
	return len(m.sigTable) - 1
}

// SigByIndex returns the interned signature for a call_indirect type
// index.
func (m *Module) SigByIndex(i int) FuncType {
	return m.sigTable[i]
}

// SigTable returns a copy of the interned signature table, in index
// order (for serialization).
func (m *Module) SigTable() []FuncType {
	out := make([]FuncType, len(m.sigTable))
	copy(out, m.sigTable)
	return out
}
