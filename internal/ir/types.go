// Package ir defines the WebAssembly-like intermediate representation
// that every benchmark kernel in this repository is written in, together
// with a builder API, a structural validator, and a reference interpreter.
//
// The IR is a structured stack machine modeled on core Wasm: i32/i64/f64
// value types (plus v128 moves for the bulk/vectorized paths), linear
// memory addressed by a 32-bit index plus a static offset, structured
// control (block/loop/if with relative branch depths), direct and
// indirect calls, and host imports. The SFI compilers in internal/sfi
// lower this IR to the x86 model; the interpreter provides the semantics
// they are differentially tested against.
package ir

import "fmt"

// ValType is an IR value type.
type ValType uint8

// Value types.
const (
	I32 ValType = iota
	I64
	F64
	V128
)

// String returns the Wasm-style type name.
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case V128:
		return "v128"
	default:
		return fmt.Sprintf("valtype(%d)", uint8(t))
	}
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Sig builds a FuncType from parameter and result type lists.
func Sig(params, results []ValType) FuncType {
	return FuncType{Params: params, Results: results}
}

// Equal reports signature equality (used by call_indirect checks).
func (f FuncType) Equal(o FuncType) bool {
	if len(f.Params) != len(o.Params) || len(f.Results) != len(o.Results) {
		return false
	}
	for i, p := range f.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range f.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature as "(i32, i32) -> (i64)".
func (f FuncType) String() string {
	s := "("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range f.Results {
		if i > 0 {
			s += ", "
		}
		s += r.String()
	}
	return s + ")"
}

// Op is an IR opcode.
type Op uint8

// Opcodes. Ordering groups related operations; the compiler and
// interpreter switch on these.
const (
	OpUnreachable Op = iota
	OpNop

	// Structured control. Block/Loop/If regions are closed by OpEnd;
	// OpElse separates the arms of an if.
	OpBlock
	OpLoop
	OpIf
	OpElse
	OpEnd
	OpBr      // Imm = relative depth
	OpBrIf    // Imm = relative depth
	OpBrTable // Targets = depths, Imm = default depth
	OpReturn
	OpCall         // Imm = function index (imports first)
	OpCallIndirect // Imm = type index; callee table slot from stack

	OpDrop
	OpSelect

	OpLocalGet  // Imm = local index
	OpLocalSet  // Imm = local index
	OpLocalTee  // Imm = local index
	OpGlobalGet // Imm = global index
	OpGlobalSet // Imm = global index

	// Memory access: address (i32) from the stack, plus static Offset.
	OpI32Load
	OpI64Load
	OpF64Load
	OpI32Load8U
	OpI32Load8S
	OpI32Load16U
	OpV128Load
	OpI32Store
	OpI64Store
	OpF64Store
	OpI32Store8
	OpI32Store16
	OpV128Store

	OpMemorySize
	OpMemoryGrow
	OpMemoryCopy // dst, src, len (i32) from stack
	OpMemoryFill // dst, byte, len (i32) from stack

	OpI32Const // Imm
	OpI64Const // Imm
	OpF64Const // Fimm

	// i32 comparisons (result i32 0/1).
	OpI32Eqz
	OpI32Eq
	OpI32Ne
	OpI32LtS
	OpI32LtU
	OpI32GtS
	OpI32GtU
	OpI32LeS
	OpI32LeU
	OpI32GeS
	OpI32GeU

	// i32 arithmetic.
	OpI32Add
	OpI32Sub
	OpI32Mul
	OpI32DivS
	OpI32DivU
	OpI32RemS
	OpI32RemU
	OpI32And
	OpI32Or
	OpI32Xor
	OpI32Shl
	OpI32ShrS
	OpI32ShrU
	OpI32Rotl
	OpI32Rotr
	OpI32Clz
	OpI32Ctz
	OpI32Popcnt

	// i64 comparisons.
	OpI64Eqz
	OpI64Eq
	OpI64Ne
	OpI64LtS
	OpI64LtU
	OpI64GtS
	OpI64GtU
	OpI64LeS
	OpI64LeU
	OpI64GeS
	OpI64GeU

	// i64 arithmetic.
	OpI64Add
	OpI64Sub
	OpI64Mul
	OpI64DivS
	OpI64DivU
	OpI64RemS
	OpI64RemU
	OpI64And
	OpI64Or
	OpI64Xor
	OpI64Shl
	OpI64ShrS
	OpI64ShrU
	OpI64Rotl
	OpI64Rotr
	OpI64Clz
	OpI64Ctz
	OpI64Popcnt

	// f64 comparisons.
	OpF64Eq
	OpF64Ne
	OpF64Lt
	OpF64Gt
	OpF64Le
	OpF64Ge

	// f64 arithmetic.
	OpF64Add
	OpF64Sub
	OpF64Mul
	OpF64Div
	OpF64Sqrt
	OpF64Abs
	OpF64Neg
	OpF64Min
	OpF64Max

	// Conversions.
	OpI32WrapI64
	OpI64ExtendI32S
	OpI64ExtendI32U
	OpF64ConvertI32S
	OpF64ConvertI32U
	OpF64ConvertI64S
	OpI32TruncF64S
	OpI64TruncF64S
	OpF64ReinterpretI64
	OpI64ReinterpretF64

	opCount
)

var opNames = map[Op]string{
	OpUnreachable: "unreachable", OpNop: "nop", OpBlock: "block", OpLoop: "loop",
	OpIf: "if", OpElse: "else", OpEnd: "end", OpBr: "br", OpBrIf: "br_if",
	OpBrTable: "br_table", OpReturn: "return", OpCall: "call",
	OpCallIndirect: "call_indirect", OpDrop: "drop", OpSelect: "select",
	OpLocalGet: "local.get", OpLocalSet: "local.set", OpLocalTee: "local.tee",
	OpGlobalGet: "global.get", OpGlobalSet: "global.set",
	OpI32Load: "i32.load", OpI64Load: "i64.load", OpF64Load: "f64.load",
	OpI32Load8U: "i32.load8_u", OpI32Load8S: "i32.load8_s", OpI32Load16U: "i32.load16_u",
	OpV128Load: "v128.load", OpI32Store: "i32.store", OpI64Store: "i64.store",
	OpF64Store: "f64.store", OpI32Store8: "i32.store8", OpI32Store16: "i32.store16",
	OpV128Store: "v128.store", OpMemorySize: "memory.size", OpMemoryGrow: "memory.grow",
	OpMemoryCopy: "memory.copy", OpMemoryFill: "memory.fill",
	OpI32Const: "i32.const", OpI64Const: "i64.const", OpF64Const: "f64.const",
}

// String returns the Wasm-style mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	// Derive names for the regular ALU groups.
	type rng struct {
		lo, hi Op
		prefix string
		names  []string
	}
	cmpNames := []string{"eqz", "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"}
	arithNames := []string{"add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u", "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr", "clz", "ctz", "popcnt"}
	f64Cmp := []string{"eq", "ne", "lt", "gt", "le", "ge"}
	f64Arith := []string{"add", "sub", "mul", "div", "sqrt", "abs", "neg", "min", "max"}
	convNames := []string{"i32.wrap_i64", "i64.extend_i32_s", "i64.extend_i32_u",
		"f64.convert_i32_s", "f64.convert_i32_u", "f64.convert_i64_s",
		"i32.trunc_f64_s", "i64.trunc_f64_s", "f64.reinterpret_i64", "i64.reinterpret_f64"}
	for _, r := range []rng{
		{OpI32Eqz, OpI32GeU, "i32.", cmpNames},
		{OpI32Add, OpI32Popcnt, "i32.", arithNames},
		{OpI64Eqz, OpI64GeU, "i64.", cmpNames},
		{OpI64Add, OpI64Popcnt, "i64.", arithNames},
		{OpF64Eq, OpF64Ge, "f64.", f64Cmp},
		{OpF64Add, OpF64Max, "f64.", f64Arith},
	} {
		if o >= r.lo && o <= r.hi {
			return r.prefix + r.names[o-r.lo]
		}
	}
	if o >= OpI32WrapI64 && o <= OpI64ReinterpretF64 {
		return convNames[o-OpI32WrapI64]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one IR instruction. Imm carries integer immediates (constants,
// indices, branch depths), Fimm float constants, Offset the static
// memory-access offset, and Targets the br_table depth list.
type Inst struct {
	Op      Op
	Imm     int64
	Fimm    float64
	Offset  uint32
	Targets []uint32
	// BlockType is the single result type of a block/loop/if region,
	// or NoResult for an empty region type.
	BlockType int8
}

// NoResult marks a block with no result value.
const NoResult int8 = -1

// String renders the instruction.
func (i Inst) String() string {
	switch i.Op {
	case OpI32Const, OpI64Const:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpF64Const:
		return fmt.Sprintf("%s %g", i.Op, i.Fimm)
	case OpBr, OpBrIf, OpCall, OpCallIndirect, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpBrTable:
		return fmt.Sprintf("%s %v default=%d", i.Op, i.Targets, i.Imm)
	case OpI32Load, OpI64Load, OpF64Load, OpI32Load8U, OpI32Load8S, OpI32Load16U,
		OpV128Load, OpI32Store, OpI64Store, OpF64Store, OpI32Store8, OpI32Store16, OpV128Store:
		return fmt.Sprintf("%s offset=%d", i.Op, i.Offset)
	default:
		return i.Op.String()
	}
}

// IsLoad reports whether the opcode is a memory load.
func (o Op) IsLoad() bool { return o >= OpI32Load && o <= OpV128Load }

// IsStore reports whether the opcode is a memory store.
func (o Op) IsStore() bool { return o >= OpI32Store && o <= OpV128Store }

// AccessSize returns the memory footprint in bytes of a load/store
// opcode, or 0 for other ops.
func (o Op) AccessSize() uint32 {
	switch o {
	case OpI32Load8U, OpI32Load8S, OpI32Store8:
		return 1
	case OpI32Load16U, OpI32Store16:
		return 2
	case OpI32Load, OpI32Store:
		return 4
	case OpI64Load, OpI64Store, OpF64Load, OpF64Store:
		return 8
	case OpV128Load, OpV128Store:
		return 16
	default:
		return 0
	}
}

// PageSize is the Wasm linear-memory page size (64 KiB).
const PageSize = 64 * 1024

// TrapKind classifies an execution trap.
type TrapKind uint8

// Trap kinds.
const (
	TrapUnreachable TrapKind = iota
	TrapOOB
	TrapDivByZero
	TrapIntOverflow
	TrapIndirectOOB
	TrapIndirectSig
	TrapIndirectNull
	TrapStackExhausted
)

var trapNames = [...]string{
	"unreachable executed", "out-of-bounds memory access", "integer divide by zero",
	"integer overflow", "table index out of bounds", "indirect call signature mismatch",
	"uninitialized table element", "call stack exhausted",
}

// Trap is the error returned when IR execution traps.
type Trap struct {
	Kind TrapKind
	// Addr is the faulting linear-memory address for TrapOOB.
	Addr uint64
}

// Error implements error.
func (t *Trap) Error() string {
	name := "trap"
	if int(t.Kind) < len(trapNames) {
		name = trapNames[t.Kind]
	}
	if t.Kind == TrapOOB {
		return fmt.Sprintf("trap: %s at 0x%x", name, t.Addr)
	}
	return "trap: " + name
}
