package ir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// HostFunc implements an imported function for the interpreter. It
// receives the instance's linear memory and the raw argument values
// (i32/i64 zero-extended, f64 as bits) and returns a result value (used
// only when the import signature declares one).
type HostFunc func(mem []byte, args []uint64) (uint64, error)

// ErrStepLimit is returned when execution exceeds Interp.StepLimit.
var ErrStepLimit = errors.New("ir: interpreter step limit exceeded")

// maxCallDepth bounds recursion, producing TrapStackExhausted like a
// real engine's guarded stack.
const maxCallDepth = 2000

// Interp is the reference interpreter: the executable semantics that the
// SFI compilers are differentially tested against. It is deliberately
// simple and unoptimized.
type Interp struct {
	m       *Module
	Mem     []byte
	Globals []uint64
	hosts   []HostFunc

	// StepLimit bounds the total instruction count; 0 means no limit.
	StepLimit uint64
	Steps     uint64

	depth int
	v128  [][2]uint64 // side storage for v128 values (stack holds handles)
}

// NewInterp instantiates the module: validates (if not yet validated),
// allocates and initializes linear memory and globals, and binds host
// imports by name. Missing host bindings are an error.
func NewInterp(m *Module, hosts map[string]HostFunc) (*Interp, error) {
	if !m.validated {
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	ip := &Interp{m: m, Mem: make([]byte, int(m.MemMin)*PageSize)}
	for _, seg := range m.Data {
		copy(ip.Mem[seg.Offset:], seg.Bytes)
	}
	for _, g := range m.Globals {
		v := uint64(g.Init)
		if g.Type == F64 {
			v = math.Float64bits(g.InitF)
		}
		ip.Globals = append(ip.Globals, v)
	}
	for _, imp := range m.Imports {
		h, ok := hosts[imp.Name]
		if !ok {
			return nil, fmt.Errorf("ir: no host binding for import %q", imp.Name)
		}
		ip.hosts = append(ip.hosts, h)
	}
	return ip, nil
}

// Module returns the instantiated module.
func (ip *Interp) Module() *Module { return ip.m }

// Invoke calls the exported function by name with raw argument values.
func (ip *Interp) Invoke(name string, args ...uint64) ([]uint64, error) {
	idx, ok := ip.m.Exports[name]
	if !ok {
		return nil, fmt.Errorf("ir: no export %q", name)
	}
	return ip.CallIndex(idx, args...)
}

// CallIndex calls the function at the given index in the combined index
// space.
func (ip *Interp) CallIndex(idx uint32, args ...uint64) ([]uint64, error) {
	sig, err := ip.m.TypeOf(idx)
	if err != nil {
		return nil, err
	}
	if len(args) != len(sig.Params) {
		return nil, fmt.Errorf("ir: call with %d args, want %d", len(args), len(sig.Params))
	}
	return ip.call(idx, args)
}

func (ip *Interp) call(idx uint32, args []uint64) ([]uint64, error) {
	if int(idx) < len(ip.m.Imports) {
		res, err := ip.hosts[idx](ip.Mem, args)
		if err != nil {
			return nil, err
		}
		if len(ip.m.Imports[idx].Type.Results) == 1 {
			return []uint64{res}, nil
		}
		return nil, nil
	}
	ip.depth++
	defer func() { ip.depth-- }()
	if ip.depth > maxCallDepth {
		return nil, &Trap{Kind: TrapStackExhausted}
	}
	f := ip.m.Funcs[int(idx)-len(ip.m.Imports)]
	return ip.exec(f, args)
}

// ictrl is an interpreter control-stack entry.
type ictrl struct {
	start  int // instruction index of the opener
	end    int
	isLoop bool
	height int // value-stack height at entry
	arity  int // branch arity (0 or 1)
}

func (ip *Interp) exec(f *Func, args []uint64) ([]uint64, error) {
	locals := make([]uint64, f.NumLocals())
	copy(locals, args)
	var stack []uint64
	var ctrls []ictrl

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	pushF := func(v float64) { push(math.Float64bits(v)) }
	popF := func() float64 { return math.Float64frombits(pop()) }
	pushB := func(b bool) {
		if b {
			push(1)
		} else {
			push(0)
		}
	}

	// branchTo implements br to relative depth d: unwind control frames,
	// preserve the label-arity values, and set pc. It returns the new pc.
	branchTo := func(d int, pc int) int {
		idx := len(ctrls) - 1 - d
		if idx < 0 {
			// Branch out of the function body: behave like return.
			return len(f.Body)
		}
		target := ctrls[idx]
		arity := target.arity
		if target.isLoop {
			arity = 0
		}
		saved := make([]uint64, arity)
		copy(saved, stack[len(stack)-arity:])
		stack = stack[:target.height]
		stack = append(stack, saved...)
		if target.isLoop {
			ctrls = ctrls[:idx+1]
			return target.start + 1
		}
		ctrls = ctrls[:idx+1]
		return target.end // the End instruction pops the frame
	}

	body := f.Body
	pc := 0
	for pc < len(body) {
		if ip.StepLimit != 0 {
			ip.Steps++
			if ip.Steps > ip.StepLimit {
				return nil, ErrStepLimit
			}
		}
		in := body[pc]
		switch in.Op {
		case OpNop:
		case OpUnreachable:
			return nil, &Trap{Kind: TrapUnreachable}

		case OpBlock, OpLoop:
			ci := f.ctrl[pc]
			arity := 0
			if in.BlockType != NoResult {
				arity = 1
			}
			ctrls = append(ctrls, ictrl{start: pc, end: ci.end, isLoop: in.Op == OpLoop, height: len(stack), arity: arity})
		case OpIf:
			cond := pop()
			ci := f.ctrl[pc]
			arity := 0
			if in.BlockType != NoResult {
				arity = 1
			}
			ctrls = append(ctrls, ictrl{start: pc, end: ci.end, height: len(stack), arity: arity})
			if cond == 0 {
				if ci.els != -1 {
					pc = ci.els // fall into the else arm
				} else {
					pc = ci.end - 1 // the End pops the frame
				}
			}
		case OpElse:
			// Reached by fall-through from the true arm: skip to End.
			fr := ctrls[len(ctrls)-1]
			pc = fr.end - 1
		case OpEnd:
			fr := ctrls[len(ctrls)-1]
			ctrls = ctrls[:len(ctrls)-1]
			_ = fr

		case OpBr:
			pc = branchTo(int(in.Imm), pc)
			continue
		case OpBrIf:
			if pop() != 0 {
				pc = branchTo(int(in.Imm), pc)
				continue
			}
		case OpBrTable:
			i := uint32(pop())
			d := uint32(in.Imm)
			if int(i) < len(in.Targets) {
				d = in.Targets[i]
			}
			pc = branchTo(int(d), pc)
			continue
		case OpReturn:
			n := len(f.Type.Results)
			res := make([]uint64, n)
			copy(res, stack[len(stack)-n:])
			return res, nil

		case OpCall:
			if err := ip.doCall(uint32(in.Imm), &stack); err != nil {
				return nil, err
			}
		case OpCallIndirect:
			slot := uint32(pop())
			if int(slot) >= len(ip.m.Table) {
				return nil, &Trap{Kind: TrapIndirectOOB}
			}
			callee := ip.m.Table[slot]
			if callee == NullFunc {
				return nil, &Trap{Kind: TrapIndirectNull}
			}
			want := ip.m.sigTable[in.Imm]
			got, err := ip.m.TypeOf(callee)
			if err != nil {
				return nil, err
			}
			if !got.Equal(want) {
				return nil, &Trap{Kind: TrapIndirectSig}
			}
			if err := ip.doCall(callee, &stack); err != nil {
				return nil, err
			}

		case OpDrop:
			pop()
		case OpSelect:
			c := pop()
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}

		case OpLocalGet:
			push(locals[in.Imm])
		case OpLocalSet:
			locals[in.Imm] = pop()
		case OpLocalTee:
			locals[in.Imm] = stack[len(stack)-1]
		case OpGlobalGet:
			push(ip.Globals[in.Imm])
		case OpGlobalSet:
			ip.Globals[in.Imm] = pop()

		case OpI32Const:
			push(uint64(uint32(in.Imm)))
		case OpI64Const:
			push(uint64(in.Imm))
		case OpF64Const:
			pushF(in.Fimm)

		case OpI32Load, OpI64Load, OpF64Load, OpI32Load8U, OpI32Load8S, OpI32Load16U, OpV128Load:
			addr := uint32(pop())
			v, err := ip.load(in.Op, addr, in.Offset)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpI32Store, OpI64Store, OpF64Store, OpI32Store8, OpI32Store16, OpV128Store:
			val := pop()
			addr := uint32(pop())
			if err := ip.store(in.Op, addr, in.Offset, val); err != nil {
				return nil, err
			}

		case OpMemorySize:
			push(uint64(len(ip.Mem) / PageSize))
		case OpMemoryGrow:
			delta := uint32(pop())
			old := uint32(len(ip.Mem) / PageSize)
			if uint64(old)+uint64(delta) > uint64(ip.m.MemMax) {
				push(uint64(uint32(0xFFFFFFFF)))
			} else {
				ip.Mem = append(ip.Mem, make([]byte, int(delta)*PageSize)...)
				push(uint64(old))
			}
		case OpMemoryCopy:
			n := uint32(pop())
			src := uint32(pop())
			dst := uint32(pop())
			if uint64(src)+uint64(n) > uint64(len(ip.Mem)) || uint64(dst)+uint64(n) > uint64(len(ip.Mem)) {
				return nil, &Trap{Kind: TrapOOB, Addr: uint64(max32(src, dst)) + uint64(n)}
			}
			copy(ip.Mem[dst:dst+n], ip.Mem[src:src+n])
		case OpMemoryFill:
			n := uint32(pop())
			val := byte(pop())
			dst := uint32(pop())
			if uint64(dst)+uint64(n) > uint64(len(ip.Mem)) {
				return nil, &Trap{Kind: TrapOOB, Addr: uint64(dst) + uint64(n)}
			}
			for i := uint32(0); i < n; i++ {
				ip.Mem[dst+i] = val
			}

		// --- i32 ---
		case OpI32Eqz:
			pushB(uint32(pop()) == 0)
		case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU, OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
			b32 := uint32(pop())
			a32 := uint32(pop())
			pushB(cmp32(in.Op, a32, b32))
		case OpI32Add:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(a32 + b32))
		case OpI32Sub:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(a32 - b32))
		case OpI32Mul:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(a32 * b32))
		case OpI32DivS:
			b32, a32 := int32(pop()), int32(pop())
			if b32 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			if a32 == math.MinInt32 && b32 == -1 {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			push(uint64(uint32(a32 / b32)))
		case OpI32DivU:
			b32, a32 := uint32(pop()), uint32(pop())
			if b32 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			push(uint64(a32 / b32))
		case OpI32RemS:
			b32, a32 := int32(pop()), int32(pop())
			if b32 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			if a32 == math.MinInt32 && b32 == -1 {
				push(0)
			} else {
				push(uint64(uint32(a32 % b32)))
			}
		case OpI32RemU:
			b32, a32 := uint32(pop()), uint32(pop())
			if b32 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			push(uint64(a32 % b32))
		case OpI32And:
			push(uint64(uint32(pop()) & uint32(pop())))
		case OpI32Or:
			push(uint64(uint32(pop()) | uint32(pop())))
		case OpI32Xor:
			push(uint64(uint32(pop()) ^ uint32(pop())))
		case OpI32Shl:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(a32 << (b32 & 31)))
		case OpI32ShrS:
			b32, a32 := uint32(pop()), int32(pop())
			push(uint64(uint32(a32 >> (b32 & 31))))
		case OpI32ShrU:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(a32 >> (b32 & 31)))
		case OpI32Rotl:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(bits.RotateLeft32(a32, int(b32&31))))
		case OpI32Rotr:
			b32, a32 := uint32(pop()), uint32(pop())
			push(uint64(bits.RotateLeft32(a32, -int(b32&31))))
		case OpI32Clz:
			push(uint64(bits.LeadingZeros32(uint32(pop()))))
		case OpI32Ctz:
			push(uint64(bits.TrailingZeros32(uint32(pop()))))
		case OpI32Popcnt:
			push(uint64(bits.OnesCount32(uint32(pop()))))

		// --- i64 ---
		case OpI64Eqz:
			pushB(pop() == 0)
		case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU, OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU:
			b64 := pop()
			a64 := pop()
			pushB(cmp64(in.Op, a64, b64))
		case OpI64Add:
			b64, a64 := pop(), pop()
			push(a64 + b64)
		case OpI64Sub:
			b64, a64 := pop(), pop()
			push(a64 - b64)
		case OpI64Mul:
			b64, a64 := pop(), pop()
			push(a64 * b64)
		case OpI64DivS:
			b64, a64 := int64(pop()), int64(pop())
			if b64 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			if a64 == math.MinInt64 && b64 == -1 {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			push(uint64(a64 / b64))
		case OpI64DivU:
			b64, a64 := pop(), pop()
			if b64 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			push(a64 / b64)
		case OpI64RemS:
			b64, a64 := int64(pop()), int64(pop())
			if b64 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			if a64 == math.MinInt64 && b64 == -1 {
				push(0)
			} else {
				push(uint64(a64 % b64))
			}
		case OpI64RemU:
			b64, a64 := pop(), pop()
			if b64 == 0 {
				return nil, &Trap{Kind: TrapDivByZero}
			}
			push(a64 % b64)
		case OpI64And:
			push(pop() & pop())
		case OpI64Or:
			push(pop() | pop())
		case OpI64Xor:
			push(pop() ^ pop())
		case OpI64Shl:
			b64, a64 := pop(), pop()
			push(a64 << (b64 & 63))
		case OpI64ShrS:
			b64, a64 := pop(), int64(pop())
			push(uint64(a64 >> (b64 & 63)))
		case OpI64ShrU:
			b64, a64 := pop(), pop()
			push(a64 >> (b64 & 63))
		case OpI64Rotl:
			b64, a64 := pop(), pop()
			push(bits.RotateLeft64(a64, int(b64&63)))
		case OpI64Rotr:
			b64, a64 := pop(), pop()
			push(bits.RotateLeft64(a64, -int(b64&63)))
		case OpI64Clz:
			push(uint64(bits.LeadingZeros64(pop())))
		case OpI64Ctz:
			push(uint64(bits.TrailingZeros64(pop())))
		case OpI64Popcnt:
			push(uint64(bits.OnesCount64(pop())))

		// --- f64 ---
		case OpF64Eq:
			pushB(popF() == popF())
		case OpF64Ne:
			b, a := popF(), popF()
			pushB(a != b)
		case OpF64Lt:
			b, a := popF(), popF()
			pushB(a < b)
		case OpF64Gt:
			b, a := popF(), popF()
			pushB(a > b)
		case OpF64Le:
			b, a := popF(), popF()
			pushB(a <= b)
		case OpF64Ge:
			b, a := popF(), popF()
			pushB(a >= b)
		case OpF64Add:
			b, a := popF(), popF()
			pushF(a + b)
		case OpF64Sub:
			b, a := popF(), popF()
			pushF(a - b)
		case OpF64Mul:
			b, a := popF(), popF()
			pushF(a * b)
		case OpF64Div:
			b, a := popF(), popF()
			pushF(a / b)
		case OpF64Sqrt:
			pushF(math.Sqrt(popF()))
		case OpF64Abs:
			pushF(math.Abs(popF()))
		case OpF64Neg:
			pushF(-popF())
		case OpF64Min:
			b, a := popF(), popF()
			pushF(math.Min(a, b))
		case OpF64Max:
			b, a := popF(), popF()
			pushF(math.Max(a, b))

		// --- conversions ---
		case OpI32WrapI64:
			push(uint64(uint32(pop())))
		case OpI64ExtendI32S:
			push(uint64(int64(int32(pop()))))
		case OpI64ExtendI32U:
			push(uint64(uint32(pop())))
		case OpF64ConvertI32S:
			pushF(float64(int32(pop())))
		case OpF64ConvertI32U:
			pushF(float64(uint32(pop())))
		case OpF64ConvertI64S:
			pushF(float64(int64(pop())))
		case OpI32TruncF64S:
			v := popF()
			if math.IsNaN(v) {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			t := math.Trunc(v)
			if t < math.MinInt32 || t > math.MaxInt32 {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			push(uint64(uint32(int32(t))))
		case OpI64TruncF64S:
			v := popF()
			if math.IsNaN(v) {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			t := math.Trunc(v)
			if t < -9.223372036854776e18 || t >= 9.223372036854776e18 {
				return nil, &Trap{Kind: TrapIntOverflow}
			}
			push(uint64(int64(t)))
		case OpF64ReinterpretI64, OpI64ReinterpretF64:
			// Raw bits already; no-op on our representation.

		default:
			return nil, fmt.Errorf("ir: interpreter: unimplemented opcode %v", in.Op)
		}
		pc++
	}

	n := len(f.Type.Results)
	res := make([]uint64, n)
	copy(res, stack[len(stack)-n:])
	return res, nil
}

func (ip *Interp) doCall(idx uint32, stack *[]uint64) error {
	sig, err := ip.m.TypeOf(idx)
	if err != nil {
		return err
	}
	n := len(sig.Params)
	s := *stack
	args := make([]uint64, n)
	copy(args, s[len(s)-n:])
	s = s[:len(s)-n]
	res, err := ip.call(idx, args)
	if err != nil {
		return err
	}
	s = append(s, res...)
	*stack = s
	return nil
}

func (ip *Interp) load(op Op, addr uint32, offset uint32) (uint64, error) {
	ea := uint64(addr) + uint64(offset)
	sz := uint64(op.AccessSize())
	if ea+sz > uint64(len(ip.Mem)) {
		return 0, &Trap{Kind: TrapOOB, Addr: ea}
	}
	switch op {
	case OpI32Load8U:
		return uint64(ip.Mem[ea]), nil
	case OpI32Load8S:
		return uint64(uint32(int32(int8(ip.Mem[ea])))), nil
	case OpI32Load16U:
		return uint64(binary.LittleEndian.Uint16(ip.Mem[ea:])), nil
	case OpI32Load:
		return uint64(binary.LittleEndian.Uint32(ip.Mem[ea:])), nil
	case OpI64Load, OpF64Load:
		return binary.LittleEndian.Uint64(ip.Mem[ea:]), nil
	case OpV128Load:
		ip.v128 = append(ip.v128, [2]uint64{
			binary.LittleEndian.Uint64(ip.Mem[ea:]),
			binary.LittleEndian.Uint64(ip.Mem[ea+8:]),
		})
		return uint64(len(ip.v128) - 1), nil
	default:
		return 0, fmt.Errorf("ir: bad load op %v", op)
	}
}

func (ip *Interp) store(op Op, addr uint32, offset uint32, val uint64) error {
	ea := uint64(addr) + uint64(offset)
	sz := uint64(op.AccessSize())
	if ea+sz > uint64(len(ip.Mem)) {
		return &Trap{Kind: TrapOOB, Addr: ea}
	}
	switch op {
	case OpI32Store8:
		ip.Mem[ea] = byte(val)
	case OpI32Store16:
		binary.LittleEndian.PutUint16(ip.Mem[ea:], uint16(val))
	case OpI32Store:
		binary.LittleEndian.PutUint32(ip.Mem[ea:], uint32(val))
	case OpI64Store, OpF64Store:
		binary.LittleEndian.PutUint64(ip.Mem[ea:], val)
	case OpV128Store:
		v := ip.v128[val]
		binary.LittleEndian.PutUint64(ip.Mem[ea:], v[0])
		binary.LittleEndian.PutUint64(ip.Mem[ea+8:], v[1])
	default:
		return fmt.Errorf("ir: bad store op %v", op)
	}
	return nil
}

func cmp32(op Op, a, b uint32) bool {
	switch op {
	case OpI32Eq:
		return a == b
	case OpI32Ne:
		return a != b
	case OpI32LtS:
		return int32(a) < int32(b)
	case OpI32LtU:
		return a < b
	case OpI32GtS:
		return int32(a) > int32(b)
	case OpI32GtU:
		return a > b
	case OpI32LeS:
		return int32(a) <= int32(b)
	case OpI32LeU:
		return a <= b
	case OpI32GeS:
		return int32(a) >= int32(b)
	default:
		return a >= b
	}
}

func cmp64(op Op, a, b uint64) bool {
	switch op {
	case OpI64Eq:
		return a == b
	case OpI64Ne:
		return a != b
	case OpI64LtS:
		return int64(a) < int64(b)
	case OpI64LtU:
		return a < b
	case OpI64GtS:
		return int64(a) > int64(b)
	case OpI64GtU:
		return a > b
	case OpI64LeS:
		return int64(a) <= int64(b)
	case OpI64LeU:
		return a <= b
	case OpI64GeS:
		return int64(a) >= int64(b)
	default:
		return a >= b
	}
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
