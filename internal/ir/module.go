package ir

import "fmt"

// Import declares a host function the module calls. Imported functions
// occupy the front of the function index space, as in Wasm.
type Import struct {
	Name string
	Type FuncType
}

// Global is a module global variable.
type Global struct {
	Type    ValType
	Mutable bool
	Init    int64   // raw bits for I32/I64
	InitF   float64 // for F64
}

// DataSeg initializes a region of linear memory at instantiation.
type DataSeg struct {
	Offset uint32
	Bytes  []byte
}

// Func is a defined function.
type Func struct {
	Name   string
	Type   FuncType
	Locals []ValType // additional locals beyond the parameters
	Body   []Inst

	// ctrl caches control-structure resolution computed by Validate:
	// for each Block/Loop/If instruction index, the matching End (and
	// Else) indices.
	ctrl map[int]ctrlInfo
}

type ctrlInfo struct {
	end int // index of matching OpEnd
	els int // index of OpElse, or -1
}

// NumLocals returns the total local count (params + extra locals).
func (f *Func) NumLocals() int { return len(f.Type.Params) + len(f.Locals) }

// LocalType returns the type of local index i.
func (f *Func) LocalType(i int) ValType {
	if i < len(f.Type.Params) {
		return f.Type.Params[i]
	}
	return f.Locals[i-len(f.Type.Params)]
}

// Module is a compilation unit: imports, functions, globals, one linear
// memory, a function table for call_indirect, and data segments.
type Module struct {
	Name    string
	Imports []Import
	Funcs   []*Func
	Globals []Global

	// MemMin and MemMax are the linear memory limits in 64 KiB pages.
	MemMin, MemMax uint32

	// Table holds function indices for call_indirect. The sentinel
	// NullFunc marks an uninitialized element.
	Table []uint32

	// Data segments copied into memory at instantiation.
	Data []DataSeg

	// Exports maps export names to function indices.
	Exports map[string]uint32

	// sigTable interns signatures referenced by call_indirect.
	sigTable []FuncType

	validated bool
}

// NullFunc is the uninitialized table element sentinel.
const NullFunc = ^uint32(0)

// NewModule returns an empty module with the given name and memory
// limits in pages.
func NewModule(name string, memMin, memMax uint32) *Module {
	return &Module{
		Name:    name,
		MemMin:  memMin,
		MemMax:  memMax,
		Exports: map[string]uint32{},
	}
}

// NumFuncs returns the size of the function index space.
func (m *Module) NumFuncs() int { return len(m.Imports) + len(m.Funcs) }

// FuncIndex returns the function index of the defined function with the
// given name, or false.
func (m *Module) FuncIndex(name string) (uint32, bool) {
	for i, f := range m.Funcs {
		if f.Name == name {
			return uint32(len(m.Imports) + i), true
		}
	}
	return 0, false
}

// TypeOf returns the signature of the function at index idx in the
// combined index space.
func (m *Module) TypeOf(idx uint32) (FuncType, error) {
	if int(idx) < len(m.Imports) {
		return m.Imports[idx].Type, nil
	}
	d := int(idx) - len(m.Imports)
	if d < len(m.Funcs) {
		return m.Funcs[d].Type, nil
	}
	return FuncType{}, fmt.Errorf("ir: function index %d out of range", idx)
}

// AddImport appends a host-function import and returns its function
// index. Imports must be added before any defined function is referenced
// by index, since imports occupy the front of the index space.
func (m *Module) AddImport(name string, t FuncType) uint32 {
	m.Imports = append(m.Imports, Import{Name: name, Type: t})
	return uint32(len(m.Imports) - 1)
}

// AddGlobal appends a global and returns its index.
func (m *Module) AddGlobal(t ValType, mutable bool, init int64) uint32 {
	m.Globals = append(m.Globals, Global{Type: t, Mutable: mutable, Init: init})
	return uint32(len(m.Globals) - 1)
}

// AddData appends a data segment.
func (m *Module) AddData(offset uint32, bytes []byte) {
	m.Data = append(m.Data, DataSeg{Offset: offset, Bytes: bytes})
}

// Export marks the named defined function as exported.
func (m *Module) Export(name string) error {
	idx, ok := m.FuncIndex(name)
	if !ok {
		return fmt.Errorf("ir: export of unknown function %q", name)
	}
	m.Exports[name] = idx
	return nil
}

// MustExport is Export that panics on error, for use in kernel builders.
func (m *Module) MustExport(name string) {
	if err := m.Export(name); err != nil {
		panic(err)
	}
}
