package rt

import (
	"errors"
	"math"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/sfi"
	"repro/internal/telemetry"
)

// ErrGrownInstance is returned by Reset for an instance whose linear
// memory grew past its instantiation size: shrinking a slot back is a
// backend decision, so grown instances are torn down, not kept warm.
var ErrGrownInstance = errors.New("rt: instance grew; cannot reset")

var resetCounter = telemetry.Default.Counter("rt.resets")

// initMemory writes the module-defined initial state: context fields,
// globals, and data segments. Everything else an execution can observe
// (linear memory, the machine stack, the spill area of the context
// block) must already be zero — fresh mappings guarantee that at
// instantiation, MadviseDontneed restores it under Reset.
func (inst *Instance) initMemory() {
	m := inst.Mod.IR
	ctx := inst.CtxBase
	inst.AS.Store(ctx+sfi.CtxHeapBaseOff, 8, inst.HeapBase)
	inst.AS.Store(ctx+sfi.CtxMemLimitOff, 8, inst.MemBytes)
	inst.AS.Store(ctx+sfi.CtxMemPagesOff, 8, inst.MemBytes/ir.PageSize)
	for i, g := range m.Globals {
		v := uint64(g.Init)
		if g.Type == ir.F64 {
			v = math.Float64bits(g.InitF)
		}
		inst.AS.Store(ctx+sfi.CtxGlobalsOff+8*uint64(i), 8, v)
	}
	for _, seg := range m.Data {
		inst.AS.WriteBytes(inst.HeapBase+uint64(seg.Offset), seg.Bytes)
	}
}

// Reset returns the instance to its just-instantiated state without
// releasing its slot, so a keep-warm pool can reuse the placement and
// skip the whole cold-start path (slot allocation, address-space
// reservation, machine construction bookkeeping). The contract is
// bit-exactness: an Invoke after Reset returns exactly what the same
// Invoke returns on a fresh instance of the same module in the same
// slot.
//
// Mechanically that is MADV_DONTNEED over the linear memory, machine
// stack, and context block (zero-on-next-touch, so an idle warm
// instance also drops its dirty pages — the density lever), a replay of
// the module's initial state, and a fresh machine. VMA protections and
// MPK colors are properties of the mappings, not the pages, so they
// survive untouched; MTE granule tags live in the owning slab, which
// Reset deliberately never touches (no teardown/re-tag charge — that
// is the point of keeping the slot).
//
// An instance whose linear memory grew is rejected with
// ErrGrownInstance: callers should Close it and cold-start the next
// request instead.
func (inst *Instance) Reset() error {
	if inst.MemBytes != inst.initMemBytes {
		return ErrGrownInstance
	}
	if inst.MemBytes > 0 {
		if err := inst.AS.MadviseDontneed(inst.HeapBase, pageUp(inst.MemBytes)); err != nil {
			return err
		}
	}
	if err := inst.AS.MadviseDontneed(inst.stackBase, inst.StackTop-inst.stackBase); err != nil {
		return err
	}
	if err := inst.AS.MadviseDontneed(inst.CtxBase, inst.ctxBytes); err != nil {
		return err
	}
	inst.initMemory()
	inst.Mach = cpu.NewMachine(inst.AS, inst.Mod.Prog)
	inst.bindHosts()
	inst.Transitions = 0
	inst.transInCycles = 0
	inst.transOutCycles = 0
	if telemetry.Enabled() {
		resetCounter.Inc()
	}
	return nil
}
