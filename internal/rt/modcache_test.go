package rt

import (
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/sfi"
)

// TestCompileModuleCached checks hit/miss behaviour, key separation,
// and that a shared compiled module instantiates independently.
func TestCompileModuleCached(t *testing.T) {
	ResetModuleCache()
	defer ResetModuleCache()

	builds := 0
	build := func() *ir.Module {
		builds++
		return genModule(7)
	}
	key := ModuleKey{Name: "fuzz7", Cfg: sfi.DefaultConfig(sfi.ModeSegue)}

	m1, err := CompileModuleCached(key, build)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := CompileModuleCached(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same key returned distinct modules")
	}
	if builds != 1 {
		t.Fatalf("build called %d times, want 1", builds)
	}
	if hits, misses := ModuleCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different configuration is a different key.
	other := ModuleKey{Name: "fuzz7", Cfg: sfi.DefaultConfig(sfi.ModeGuard)}
	m3, err := CompileModuleCached(other, build)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("different config shared a module")
	}

	// Two instances of the shared module must agree with each other and
	// not interfere (host bindings are per-machine).
	i1, err := NewInstance(m1, InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	i2, err := NewInstance(m1, InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := i1.Invoke("run", 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := i2.Invoke("run", 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] != r2[0] {
		t.Fatalf("instances of one module disagree: %#x vs %#x", r1[0], r2[0])
	}
}

// TestCompileModuleCachedConcurrent hammers one key from many
// goroutines; the build must run exactly once and all callers must see
// the same module. Run under -race this also checks the entry gating.
func TestCompileModuleCachedConcurrent(t *testing.T) {
	ResetModuleCache()
	defer ResetModuleCache()

	var buildCount sync.Map
	key := ModuleKey{Name: "fuzz11", Cfg: sfi.DefaultConfig(sfi.ModeLFISegue)}
	const workers = 8
	mods := make([]*Module, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mod, err := CompileModuleCached(key, func() *ir.Module {
				buildCount.Store(w, true)
				return genModule(11)
			})
			if err != nil {
				t.Error(err)
				return
			}
			mods[w] = mod
		}(w)
	}
	wg.Wait()
	n := 0
	buildCount.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for w := 1; w < workers; w++ {
		if mods[w] != mods[0] {
			t.Fatal("workers saw different modules")
		}
	}
}

// TestFastSlowDifferentialRT runs generated programs through full
// compile+instantiate under several modes, executing each once per
// tier — the slow-path oracle, the predecoded fast path, and the fused
// superinstruction tier (eager, so short programs hit the fused
// stream) — and asserts checksums, Stats, and linear memory are
// bit-identical.
func TestFastSlowDifferentialRT(t *testing.T) {
	cpu.SetFuseEager(true)
	defer cpu.SetFuseEager(false)
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	modes := []sfi.Mode{sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue, sfi.ModeLFISegue}
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*9176011 + 5
		for _, mode := range modes {
			mod, err := CompileModule(genModule(seed), sfi.DefaultConfig(mode))
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", s, mode, err)
			}
			run := func(tier cpu.Tier) (*Instance, []uint64, error) {
				inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
				if err != nil {
					t.Fatalf("seed %d mode %v: %v", s, mode, err)
				}
				inst.Mach.Tier = tier
				res, err := inst.Invoke("run", uint64(s))
				return inst, res, err
			}
			si, sres, serr := run(cpu.TierSlow)
			for _, tier := range []cpu.Tier{cpu.TierFast, cpu.TierFused} {
				fi, fres, ferr := run(tier)
				if (ferr == nil) != (serr == nil) {
					t.Fatalf("seed %d mode %v: error mismatch %v=%v slow=%v", s, mode, tier, ferr, serr)
				}
				if serr != nil {
					continue
				}
				if fres[0] != sres[0] {
					t.Fatalf("seed %d mode %v: checksum %v %#x slow %#x", s, mode, tier, fres[0], sres[0])
				}
				if fi.Mach.Stats != si.Mach.Stats {
					t.Fatalf("seed %d mode %v: %v stats mismatch\n%v %+v\nslow %+v",
						s, mode, tier, tier, fi.Mach.Stats, si.Mach.Stats)
				}
				fbuf := make([]byte, 1<<16)
				sbuf := make([]byte, 1<<16)
				fi.AS.ReadBytes(fi.HeapBase, fbuf)
				si.AS.ReadBytes(si.HeapBase, sbuf)
				for i := range fbuf {
					if fbuf[i] != sbuf[i] {
						t.Fatalf("seed %d mode %v: %v memory[%d] %#x slow %#x",
							s, mode, tier, i, fbuf[i], sbuf[i])
					}
				}
			}
		}
	}
}

// TestFusedBuildOnceAcrossInstances spins up many instances of one
// shared module concurrently, all on the fused tier, and checks the
// superinstruction stream was compiled exactly once for the Program —
// the cross-instance amortization the module cache exists for.
func TestFusedBuildOnceAcrossInstances(t *testing.T) {
	ResetModuleCache()
	defer ResetModuleCache()
	cpu.SetFuseEager(true)
	defer cpu.SetFuseEager(false)

	key := ModuleKey{Name: "fuzz13", Cfg: sfi.DefaultConfig(sfi.ModeSegue)}
	mod, err := CompileModuleCached(key, func() *ir.Module { return genModule(13) })
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Error(err)
				return
			}
			inst.Mach.Tier = cpu.TierFused
			res, err := inst.Invoke("run", 13)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = res[0]
		}(w)
	}
	wg.Wait()
	if n := mod.Prog.FuseBuilds(); n != 1 {
		t.Fatalf("fused stream built %d times, want 1", n)
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatal("workers disagree on checksum")
		}
	}
}

// TestFusedProfileBuildOnceConcurrent exercises the profile-guided
// path under contention: many fused-tier machines run concurrently
// with a tiny warmup budget, their profiles merge into the shared
// Program, and the build must still happen exactly once.
func TestFusedProfileBuildOnceConcurrent(t *testing.T) {
	defer cpu.SetFuseWarmup(500, 1)()

	mod, err := CompileModule(genModule(17), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Error(err)
				return
			}
			inst.Mach.Tier = cpu.TierFused
			for i := 0; i < 4; i++ {
				if _, err := inst.Invoke("run", uint64(17+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := mod.Prog.FuseBuilds(); n > 1 {
		t.Fatalf("fused stream built %d times, want at most 1", n)
	}
}
