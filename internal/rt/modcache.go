package rt

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/sfi"
	"repro/internal/telemetry"
)

// ModuleKey identifies a compiled module for the compile cache: the
// kernel name, which source variant was built (pointer-sensitive
// kernels build a different program for their native baseline), and
// the full SFI configuration (sfi.Config is comparable, so identical
// configurations compare equal as map keys).
type ModuleKey struct {
	Name    string
	Variant bool
	Cfg     sfi.Config
}

// cacheEntry is one slot of the compile cache. The once gate makes
// concurrent first requests for the same key compile exactly once;
// later requests share the compiled Module, which is safe because a
// compiled Program is immutable (host bindings go into each instance's
// Machine, never into the Program).
type cacheEntry struct {
	once sync.Once
	mod  *Module
	err  error
}

// The hit/miss tallies live on the telemetry registry — the same single
// atomic add the private atomics used to be, but inspectable through
// every -metrics snapshot. ModuleCacheStats stays as a thin view.
type moduleCache struct {
	m        sync.Map // ModuleKey -> *cacheEntry
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	disabled atomic.Bool
}

var modCache = moduleCache{
	hits:   telemetry.Default.Counter("rt.modcache.hits"),
	misses: telemetry.Default.Counter("rt.modcache.misses"),
}

// CompileModuleCached returns the compiled module for key, building and
// compiling it on first use. build is only invoked on a cache miss.
// Concurrent callers with the same key block until the single compile
// finishes and then share the result.
func CompileModuleCached(key ModuleKey, build func() *ir.Module) (*Module, error) {
	if modCache.disabled.Load() {
		return CompileModule(build(), key.Cfg)
	}
	v, _ := modCache.m.LoadOrStore(key, &cacheEntry{})
	e := v.(*cacheEntry)
	compiled := false
	e.once.Do(func() {
		compiled = true
		modCache.misses.Inc()
		e.mod, e.err = CompileModule(build(), key.Cfg)
	})
	if !compiled {
		modCache.hits.Inc()
	}
	return e.mod, e.err
}

// SetModuleCacheEnabled turns the compile cache on or off (it is on by
// default). Disabling does not drop existing entries; use
// ResetModuleCache for that.
func SetModuleCacheEnabled(on bool) { modCache.disabled.Store(!on) }

// ResetModuleCache drops all cached modules and zeroes the counters.
func ResetModuleCache() {
	modCache.m.Range(func(k, _ any) bool {
		modCache.m.Delete(k)
		return true
	})
	modCache.hits.Reset()
	modCache.misses.Reset()
}

// ModuleCacheStats returns the hit and miss counts since the last
// reset.
func ModuleCacheStats() (hits, misses uint64) {
	return modCache.hits.Load(), modCache.misses.Load()
}
