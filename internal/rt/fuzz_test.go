package rt

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sfi"
	"repro/internal/stats"
)

// progGen generates random but always-valid modules: straight-line
// arithmetic over typed locals, masked memory accesses, nested
// if/else, and bounded loops. Running each generated program on the
// reference interpreter and under every compilation mode is the
// compiler's randomized differential gate.
type progGen struct {
	rng *stats.RNG
	fb  *ir.FuncBuilder
	// local index ranges by type
	i32s, i64s []uint32
	f64s       []uint32
	// counters are dedicated loop-counter locals, one per nesting
	// level, never written by generated statements — guaranteeing
	// every generated loop terminates.
	counters []uint32
	depth    int
	loops    int
}

const fuzzMemMask = 0xFFF8 // accesses within the single 64 KiB page

func (g *progGen) pick(xs []uint32) uint32 { return xs[g.rng.Intn(len(xs))] }

// expr emits code pushing one i32 value.
func (g *progGen) expr(d int) {
	fb := g.fb
	if d <= 0 {
		switch g.rng.Intn(3) {
		case 0:
			fb.I32(int32(g.rng.Uint64()))
		case 1:
			fb.Get(g.pick(g.i32s))
		default:
			// masked load
			fb.Get(g.pick(g.i32s)).I32(fuzzMemMask).I32And()
			fb.I32Load(uint32(g.rng.Intn(16)) * 4)
		}
		return
	}
	switch g.rng.Intn(10) {
	case 0:
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32Add()
	case 1:
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32Sub()
	case 2:
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32Mul()
	case 3:
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32Xor()
	case 4:
		g.expr(d - 1)
		fb.I32(int32(g.rng.Intn(31) + 1)).I32ShrU()
	case 5:
		g.expr(d - 1)
		fb.I32(int32(g.rng.Intn(31) + 1)).I32Shl()
	case 6:
		// safe division: divisor | 1
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32(1).I32Or()
		fb.I32DivU()
	case 7:
		g.expr(d - 1)
		g.expr(d - 1)
		fb.I32LtU() // comparison as value
	case 8:
		// i64 round trip
		g.expr(d - 1)
		fb.I64ExtendI32U()
		fb.Get(g.pick(g.i64s)).I64Add()
		fb.I32WrapI64()
	default:
		// f64 round trip (exact ops only)
		g.expr(d - 1)
		fb.F64ConvertI32U()
		fb.Get(g.pick(g.f64s)).F64Add()
		fb.I64ReinterpretF64().I32WrapI64()
	}
}

// stmt emits one statement.
func (g *progGen) stmt(budget *int) {
	fb := g.fb
	*budget--
	switch g.rng.Intn(8) {
	case 0, 1, 2:
		g.expr(2)
		fb.Set(g.pick(g.i32s))
	case 3:
		// store
		fb.Get(g.pick(g.i32s)).I32(fuzzMemMask).I32And()
		g.expr(1)
		fb.I32Store(uint32(g.rng.Intn(16)) * 4)
	case 4:
		// i64 update
		fb.Get(g.pick(g.i64s))
		g.expr(1)
		fb.I64ExtendI32U().I64Mul()
		fb.I64(int64(g.rng.Uint64() | 1)).I64Add()
		fb.Set(g.pick(g.i64s))
	case 5:
		// f64 update (add/mul only: exact and order-stable)
		fb.Get(g.pick(g.f64s))
		g.expr(1)
		fb.F64ConvertI32S().F64Add()
		fb.Set(g.pick(g.f64s))
	case 6:
		if g.depth < 3 {
			g.depth++
			g.expr(1)
			fb.If()
			n := g.rng.Intn(3) + 1
			for i := 0; i < n && *budget > 0; i++ {
				g.stmt(budget)
			}
			if g.rng.Intn(2) == 0 {
				fb.Else()
				n = g.rng.Intn(2) + 1
				for i := 0; i < n && *budget > 0; i++ {
					g.stmt(budget)
				}
			}
			fb.End()
			g.depth--
		} else {
			g.expr(2)
			fb.Set(g.pick(g.i32s))
		}
	default:
		if g.loops < len(g.counters) {
			g.loops++
			g.depth++
			ctr := g.counters[g.loops-1]
			trips := int32(g.rng.Intn(12) + 2)
			fb.LoopN(ctr, 0, trips, 1, func() {
				n := g.rng.Intn(3) + 1
				for i := 0; i < n && *budget > 0; i++ {
					g.stmt(budget)
				}
			})
			g.depth--
			g.loops--
		} else {
			g.expr(2)
			fb.Set(g.pick(g.i32s))
		}
	}
}

// genModule builds a random module from a seed.
func genModule(seed uint64) *ir.Module {
	rng := stats.NewRNG(seed)
	m := ir.NewModule("fuzz", 1, 1)
	// Deterministic data so loads see non-zero values.
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i*13 + int(seed))
	}
	m.AddData(0, data)

	g := &progGen{rng: rng}
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I64, ir.I64, ir.F64, ir.F64, ir.I32, ir.I32)
	g.fb = fb
	g.i32s = []uint32{0, 1, 2, 3}
	g.i64s = []uint32{4, 5}
	g.f64s = []uint32{6, 7}
	g.counters = []uint32{8, 9}

	budget := 40 + rng.Intn(40)
	for budget > 0 {
		g.stmt(&budget)
	}
	// checksum: fold everything
	fb.Get(0)
	fb.Get(1).I32Add()
	fb.Get(2).I32Xor()
	fb.Get(3).I32Add()
	fb.Get(4).I32WrapI64().I32Xor()
	fb.Get(5).I32WrapI64().I32Add()
	fb.Get(6).I64ReinterpretF64().I32WrapI64().I32Xor()
	fb.Get(7).I64ReinterpretF64().I64(32).I64ShrU().I32WrapI64().I32Add()
	fb.MustBuild()
	m.MustExport("run")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// TestRandomProgramsDifferential is the randomized compiler gate: 120
// generated programs, every compilation mode, interpreter as oracle.
func TestRandomProgramsDifferential(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	modes := []sfi.Mode{sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue, sfi.ModeBoundsCheck, sfi.ModeLFI, sfi.ModeLFISegue}
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*2654435761 + 17
		ref := genModule(seed)
		interp, err := ir.NewInterp(ref, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		interp.StepLimit = 50_000_000
		want, werr := interp.Invoke("run", uint64(s))
		for _, mode := range modes {
			mod, err := CompileModule(genModule(seed), sfi.DefaultConfig(mode))
			if err != nil {
				t.Fatalf("seed %d mode %v: compile: %v", s, mode, err)
			}
			inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Fatalf("seed %d mode %v: instantiate: %v", s, mode, err)
			}
			got, gerr := inst.Invoke("run", uint64(s))
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seed %d mode %v: error mismatch: interp=%v machine=%v", s, mode, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if got[0] != want[0] {
				t.Fatalf("seed %d mode %v: checksum %#x, interpreter %#x", s, mode, got[0], want[0])
			}
			// Memory must agree byte for byte.
			buf := make([]byte, 1<<16)
			inst.AS.ReadBytes(inst.HeapBase, buf)
			for i := range buf {
				if buf[i] != interp.Mem[i] {
					t.Fatalf("seed %d mode %v: memory[%d] = %#x, interpreter %#x", s, mode, i, buf[i], interp.Mem[i])
				}
			}
		}
	}
}

// TestRandomProgramsVectorized re-runs a slice of seeds under the
// vectorizing WAMR configurations.
func TestRandomProgramsVectorized(t *testing.T) {
	cfgs := []sfi.Config{
		{Mode: sfi.ModeGuard, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 1 << 30},
		{Mode: sfi.ModeSegue, SegueLoadsOnly: true, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 1 << 30},
	}
	for s := 0; s < 40; s++ {
		seed := uint64(s)*40503 + 99
		interp, _ := ir.NewInterp(genModule(seed), nil)
		interp.StepLimit = 50_000_000
		want, werr := interp.Invoke("run", uint64(s))
		for ci, cfg := range cfgs {
			mod, err := CompileModule(genModule(seed), cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", s, ci, err)
			}
			inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Fatal(err)
			}
			got, gerr := inst.Invoke("run", uint64(s))
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seed %d cfg %d: error mismatch %v vs %v", s, ci, werr, gerr)
			}
			if werr == nil && got[0] != want[0] {
				t.Fatalf("seed %d cfg %d: %#x vs %#x", s, ci, got[0], want[0])
			}
		}
	}
}
