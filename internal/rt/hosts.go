package rt

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sfi"
	"repro/internal/x86"
)

// bindHosts installs the import wrappers and memory builtins into the
// instance's machine. The bindings close over the instance, so they go
// into a fresh Machine.Hosts slice — never into the compiled Program,
// which stays immutable and shareable across instances (the module-
// compile cache depends on this). Each host call is a transition out of
// the sandbox and back in (§6.4.1), so the wrappers charge both
// directions.
func (inst *Instance) bindHosts() {
	meta := inst.Mod.Meta
	m := inst.Mod.IR
	hosts := make([]cpu.HostFunc, len(inst.Mod.Prog.Hosts))
	for i, imp := range m.Imports {
		idx := meta.HostIndex(uint32(i))
		impl, ok := inst.hosts[imp.Name]
		if !ok {
			// Leave a diagnostic stub; calling it is an error.
			name := imp.Name
			hosts[idx] = func(*cpu.Machine) error {
				return fmt.Errorf("rt: import %q not bound", name)
			}
			continue
		}
		sig := imp.Type
		hosts[idx] = inst.wrapHost(sig, impl)
	}
	hosts[meta.BuiltinIndex(sfi.BuiltinGrow)] = inst.builtinGrow
	hosts[meta.BuiltinIndex(sfi.BuiltinCopy)] = inst.builtinCopy
	hosts[meta.BuiltinIndex(sfi.BuiltinFill)] = inst.builtinFill
	inst.Mach.Hosts = hosts
}

// wrapHost adapts a runtime HostFunc to the machine-level convention:
// arguments in the ABI registers, integer result in RAX (f64 in xmm0).
func (inst *Instance) wrapHost(sig ir.FuncType, impl HostFunc) cpu.HostFunc {
	return func(mach *cpu.Machine) error {
		inst.transitionOut() // leaving the sandbox to run host code

		args := make([]uint64, len(sig.Params))
		ipos, fpos := 0, 0
		for i, p := range sig.Params {
			if p == ir.F64 {
				args[i] = mach.XmmLo[fpos]
				fpos++
			} else {
				args[i] = mach.Regs[cpu.ArgRegs[ipos]]
				if p == ir.I32 {
					args[i] = uint64(uint32(args[i]))
				}
				ipos++
			}
		}
		res, err := impl(&HostCall{Inst: inst, Args: args})
		if err != nil {
			return err
		}
		if len(sig.Results) == 1 {
			if sig.Results[0] == ir.F64 {
				mach.XmmLo[0] = res
			} else {
				mach.Regs[x86.RAX] = res
			}
		}
		inst.transitionIn() // back into the sandbox
		return nil
	}
}

// builtinGrow implements memory.grow: extend the open region of the
// reservation by delta pages, returning the previous size in pages (or
// -1 on failure), and refresh the context fields the compiled code
// reads.
func (inst *Instance) builtinGrow(mach *cpu.Machine) error {
	delta := uint64(uint32(mach.Regs[cpu.ArgRegs[0]]))
	oldPages := inst.MemBytes / ir.PageSize
	newBytes := inst.MemBytes + delta*ir.PageSize
	fail := func() {
		mach.Regs[x86.RAX] = uint64(uint32(0xFFFFFFFF))
	}
	if newBytes > inst.MaxBytes {
		fail()
		return nil
	}
	if delta > 0 {
		// Open the next chunk of the reservation. Pooled slots grow
		// through their backend (which re-applies the slot's color);
		// standalone reservations mprotect the delta directly.
		start := pageUp(inst.MemBytes)
		end := pageUp(newBytes)
		if end > start {
			var err error
			if b := inst.place.Backend; b != nil {
				err = b.Grow(inst.place.Slot, newBytes)
			} else if pkey := inst.place.Slot.Pkey; pkey != 0 {
				err = inst.AS.PkeyMprotect(inst.HeapBase+start, end-start, mem.ProtRead|mem.ProtWrite, pkey)
			} else {
				err = inst.AS.Mprotect(inst.HeapBase+start, end-start, mem.ProtRead|mem.ProtWrite)
			}
			if err != nil {
				fail()
				return nil
			}
		}
		// An mprotect is a system call.
		mach.Stats.Cycles += syscallCycles
	}
	inst.MemBytes = newBytes
	inst.AS.Store(inst.CtxBase+sfi.CtxMemLimitOff, 8, inst.MemBytes)
	inst.AS.Store(inst.CtxBase+sfi.CtxMemPagesOff, 8, inst.MemBytes/ir.PageSize)
	mach.Regs[x86.RAX] = oldPages
	return nil
}

// bulkCost charges the cycle cost of an n-byte bulk operation at a
// vectorized 16 B/cycle, plus cache traffic per line touched.
func (inst *Instance) bulkCost(mach *cpu.Machine, addrs []uint64, n uint64) {
	mach.Stats.Cycles += 2 + float64(n)/16
	for _, a := range addrs {
		for off := uint64(0); off < n; off += 64 {
			switch mach.Hier.AccessL1(inst.HeapBase + a + off) {
			case 1:
				mach.Stats.Cycles += mach.Cost.L2Hit
			case 2:
				mach.Stats.Cycles += mach.Cost.MemAccess
			}
		}
	}
}

// builtinCopy implements memory.copy with memmove semantics.
func (inst *Instance) builtinCopy(mach *cpu.Machine) error {
	dst := uint64(uint32(mach.Regs[cpu.ArgRegs[0]]))
	src := uint64(uint32(mach.Regs[cpu.ArgRegs[1]]))
	n := uint64(uint32(mach.Regs[cpu.ArgRegs[2]]))
	if dst+n > inst.MemBytes || src+n > inst.MemBytes {
		return &cpu.Trap{Kind: cpu.TrapPageFault, Addr: inst.HeapBase + max64(dst, src) + n}
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	inst.AS.ReadBytes(inst.HeapBase+src, buf)
	inst.AS.WriteBytes(inst.HeapBase+dst, buf)
	inst.bulkCost(mach, []uint64{src, dst}, n)
	return nil
}

// builtinFill implements memory.fill.
func (inst *Instance) builtinFill(mach *cpu.Machine) error {
	dst := uint64(uint32(mach.Regs[cpu.ArgRegs[0]]))
	val := byte(mach.Regs[cpu.ArgRegs[1]])
	n := uint64(uint32(mach.Regs[cpu.ArgRegs[2]]))
	if dst+n > inst.MemBytes {
		return &cpu.Trap{Kind: cpu.TrapPageFault, Addr: inst.HeapBase + dst + n}
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = val
	}
	inst.AS.WriteBytes(inst.HeapBase+dst, buf)
	inst.bulkCost(mach, []uint64{dst}, n)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
