// Package rt is the Wasm runtime over the simulated machine: it lays
// out instance memory (linear memory, guard regions, stack, context),
// instantiates compiled modules, performs transitions into and out of
// sandboxes (setting the segment base for Segue, PKRU for ColorGuard,
// and charging the §6.4.1 transition costs), and provides host-call
// plumbing including the memory.grow/copy/fill builtins.
package rt

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/x86"
)

// Per-backend transition counters (rt.transitions.<kind>), resolved
// once here so transitionIn pays at most one atomic add per counter.
// Instances without a backend count under "standalone".
var transCounters = func() map[isolation.Kind]*telemetry.Counter {
	m := map[isolation.Kind]*telemetry.Counter{
		"": telemetry.Default.Counter("rt.transitions.standalone"),
	}
	for _, k := range isolation.Kinds() {
		m[k] = telemetry.Default.Counter("rt.transitions." + string(k))
	}
	return m
}()

// Per-scheme transition counters (rt.transitions.scheme.<name>): which
// calling convention the crossings ran under. Resolved once here and
// cached on the instance, so the hot path never does a map lookup.
var schemeCounters = func() map[isolation.Scheme]*telemetry.Counter {
	m := make(map[isolation.Scheme]*telemetry.Counter, 4)
	for _, s := range isolation.Schemes() {
		m[s] = telemetry.Default.Counter("rt.transitions.scheme." + string(s))
	}
	return m
}()

// Per-tier instance counters (rt.tier.<tier>): how many instances were
// created on each execution tier, so a -metrics snapshot shows the tier
// mix alongside cpu.dispatch.*.
var tierCounters = [...]*telemetry.Counter{
	cpu.TierSlow:  telemetry.Default.Counter("rt.tier.slow"),
	cpu.TierFast:  telemetry.Default.Counter("rt.tier.fast"),
	cpu.TierFused: telemetry.Default.Counter("rt.tier.fused"),
}

// Module is a compiled module ready for instantiation.
type Module struct {
	IR   *ir.Module
	Prog *cpu.Program
	Meta *sfi.Meta
	Cfg  sfi.Config
}

// CompileModule validates and compiles an IR module under cfg.
func CompileModule(m *ir.Module, cfg sfi.Config) (*Module, error) {
	prog, meta, err := sfi.Compile(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Module{IR: m, Prog: prog, Meta: meta, Cfg: cfg}, nil
}

// HostCall carries the arguments of a host-function invocation.
type HostCall struct {
	Inst *Instance
	Args []uint64
}

// MemRead copies n bytes of linear memory at addr, failing on
// out-of-bounds like a trapping access would.
func (hc *HostCall) MemRead(addr uint32, n uint32) ([]byte, error) {
	if uint64(addr)+uint64(n) > hc.Inst.MemBytes {
		return nil, &cpu.Trap{Kind: cpu.TrapPageFault, Addr: hc.Inst.HeapBase + uint64(addr)}
	}
	buf := make([]byte, n)
	hc.Inst.AS.ReadBytes(hc.Inst.HeapBase+uint64(addr), buf)
	return buf, nil
}

// MemWrite copies data into linear memory at addr.
func (hc *HostCall) MemWrite(addr uint32, data []byte) error {
	if uint64(addr)+uint64(len(data)) > hc.Inst.MemBytes {
		return &cpu.Trap{Kind: cpu.TrapPageFault, Addr: hc.Inst.HeapBase + uint64(addr)}
	}
	hc.Inst.AS.WriteBytes(hc.Inst.HeapBase+uint64(addr), data)
	return nil
}

// HostFunc implements an imported function at the runtime level.
type HostFunc func(hc *HostCall) (uint64, error)

// InstanceOptions tunes instantiation.
type InstanceOptions struct {
	// Hosts binds import names to implementations.
	Hosts map[string]HostFunc

	// FSGSBASE selects user-level segment-base writes (post-IvyBridge);
	// when false, transitions pay the arch_prctl system-call cost, the
	// fallback Firefox needs on older CPUs (§4.1).
	FSGSBASE bool

	// GuardBytes is the guard-region size reserved after the maximum
	// linear memory; 0 selects the classic 4 GiB. Ignored for pooled
	// placements, whose backend owns the guard geometry.
	GuardBytes uint64

	// PreGuardBytes reserves an additional guard region BEFORE the
	// linear memory — required by the signed-offset compilation scheme
	// (sfi.Config.SignedOffset), whose corrupt indices go negative.
	PreGuardBytes uint64

	// Stack size for the machine stack; 0 selects 256 KiB.
	StackBytes uint64

	// Place, when non-nil, puts the instance under an isolation domain:
	// either a slot allocated from an isolation.Backend (Placement.AS
	// set; the backend owns guard geometry and recycling) or a
	// standalone reservation carrying a domain marking such as an MPK
	// color (isolation.Colored). Nil means an unmarked standalone
	// reservation — plain guard-page SFI.
	Place *isolation.Placement

	// Scheme selects the transition calling-convention scheme the
	// instance's crossings are charged under. Empty defers to the
	// placement backend's scheme, then to the process default.
	Scheme isolation.Scheme
}

// Transition cost model (§6.4.1): beyond the instructions the sandbox
// itself executes, each transition pays its calling convention's cost —
// stack switching, ABI adjustment, exception-handler setup under the
// default scheme (66.7 cycles ≈ 30.34 ns at 2.2 GHz), down to a bare
// call/ret under the zero-cost scheme. The per-scheme convention charge
// lives in isolation.Scheme.BaseCycles; what stays here is the
// mechanism fallback cost.
const (
	syscallCycles = 330.0 // arch_prctl fallback for %gs writes
)

// Instance is an instantiated module bound to machine state.
type Instance struct {
	Mod  *Module
	AS   *mem.AS
	Mach *cpu.Machine

	HeapBase uint64
	MemBytes uint64 // current linear-memory size
	MaxBytes uint64
	CtxBase  uint64
	StackTop uint64

	FSGSBASE bool

	// place is the instance's isolation domain: the slot marking drives
	// the transition and teardown behavior uniformly across backends.
	place isolation.Placement

	// scheme is the resolved transition scheme; transCycles is its
	// per-crossing convention charge, resolved once at instantiation so
	// transitionIn/Out touch no map or switch.
	scheme      isolation.Scheme
	transCycles float64

	// ctrKind/ctrScheme are the instance's pre-resolved transition
	// counters (nil-free: resolved for every kind and scheme).
	ctrKind   *telemetry.Counter
	ctrScheme *telemetry.Counter

	// Transitions counts sandbox entries (Invoke and host-call
	// returns re-enter; each entry has a matching exit).
	Transitions uint64

	// transInCycles/transOutCycles accumulate the simulated cycles the
	// instance has charged to sandbox entry and exit respectively —
	// convention charge plus mechanism work (segment-base write, PKRU
	// switches). They are plain unconditional adds of values already
	// computed on the transition path, so they cost nothing extra and
	// stay exact under any scheme or backend.
	transInCycles  float64
	transOutCycles float64

	// initMemBytes/stackBase/ctxBytes remember the instantiation-time
	// geometry so Reset can restore it without re-reserving anything.
	initMemBytes uint64
	stackBase    uint64
	ctxBytes     uint64

	hosts map[string]HostFunc
}

// Scheme returns the transition scheme the instance's crossings are
// charged under.
func (inst *Instance) Scheme() isolation.Scheme { return inst.scheme }

// Slot returns the isolation slot the instance runs in (the zero Slot
// for unmarked standalone instances).
func (inst *Instance) Slot() isolation.Slot { return inst.place.Slot }

// Backend returns the isolation backend owning the instance's slot, or
// nil for standalone instances.
func (inst *Instance) Backend() isolation.Backend { return inst.place.Backend }

// NewInstance lays out and initializes an instance of mod.
func NewInstance(mod *Module, opts InstanceOptions) (*Instance, error) {
	inst := &Instance{
		Mod:      mod,
		FSGSBASE: opts.FSGSBASE,
		hosts:    opts.Hosts,
	}
	if opts.Place != nil {
		inst.place = *opts.Place
	}
	// Resolve the transition scheme: an explicit option wins, then the
	// placement backend's scheme, then the process default. The
	// per-crossing charge and the telemetry counters are resolved here,
	// once, so each transition pays plain adds.
	sch := opts.Scheme
	var kind isolation.Kind
	if b := inst.place.Backend; b != nil {
		kind = b.Kind()
		if sch == "" {
			sch = b.Scheme()
		}
	}
	inst.scheme = isolation.ResolveScheme(sch)
	inst.transCycles = inst.scheme.BaseCycles()
	inst.ctrKind = transCounters[kind]
	inst.ctrScheme = schemeCounters[inst.scheme]
	guard := opts.GuardBytes
	if guard == 0 {
		guard = 4 << 30
	}
	stackBytes := opts.StackBytes
	if stackBytes == 0 {
		stackBytes = 256 << 10
	}

	m := mod.IR
	inst.MemBytes = uint64(m.MemMin) * ir.PageSize
	inst.MaxBytes = uint64(m.MemMax) * ir.PageSize

	if inst.place.AS != nil {
		// Pooled placement: the backend owns heap/guard geometry.
		inst.AS = inst.place.AS
		inst.HeapBase = inst.place.Slot.Addr
	} else {
		inst.AS = mem.NewAS(47)
		// Reserve [pre-guard][max memory + guard] as PROT_NONE, then
		// open the initial memory. The reservation is generous so
		// folded 33-bit effective addresses always land inside it.
		pre := pageUp(opts.PreGuardBytes)
		resv := inst.MaxBytes + guard
		if resv < inst.MemBytes+ir.PageSize {
			resv = inst.MemBytes + ir.PageSize
		}
		resv = pageUp(resv) + pre
		base, err := inst.AS.MmapAnywhere(resv, mem.ProtNone)
		if err != nil {
			return nil, fmt.Errorf("rt: reserving linear memory: %w", err)
		}
		inst.HeapBase = base + pre
	}
	if inst.MemBytes > 0 {
		if err := inst.AS.Mprotect(inst.HeapBase, pageUp(inst.MemBytes), mem.ProtRead|mem.ProtWrite); err != nil {
			return nil, fmt.Errorf("rt: opening linear memory: %w", err)
		}
	}
	if pkey := inst.place.Slot.Pkey; pkey != 0 {
		if err := inst.AS.PkeyMprotect(inst.HeapBase, pageUp(inst.MemBytes), mem.ProtRead|mem.ProtWrite, pkey); err != nil {
			return nil, fmt.Errorf("rt: coloring linear memory: %w", err)
		}
	}

	// Runtime areas: machine stack and context block (key 0).
	sb, err := inst.AS.MmapAnywhere(pageUp(stackBytes), mem.ProtRead|mem.ProtWrite)
	if err != nil {
		return nil, fmt.Errorf("rt: allocating stack: %w", err)
	}
	inst.StackTop = sb + pageUp(stackBytes)
	inst.stackBase = sb
	ctx, err := inst.AS.MmapAnywhere(pageUp(sfi.CtxSize(m)), mem.ProtRead|mem.ProtWrite)
	if err != nil {
		return nil, fmt.Errorf("rt: allocating context: %w", err)
	}
	inst.CtxBase = ctx
	inst.ctxBytes = pageUp(sfi.CtxSize(m))
	inst.initMemBytes = inst.MemBytes

	// Initialize context fields, globals, and data segments (shared
	// with Reset, which replays exactly this on a recycled instance).
	inst.initMemory()

	inst.Mach = cpu.NewMachine(inst.AS, mod.Prog)
	if telemetry.Enabled() {
		if t := int(inst.Mach.Tier); t < len(tierCounters) {
			tierCounters[t].Inc()
		}
	}
	inst.bindHosts()
	return inst, nil
}

func pageUp(n uint64) uint64 {
	return (n + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
}

// transitionIn charges the cost of entering the sandbox and sets up
// the machine registers the compiled code expects.
func (inst *Instance) transitionIn() {
	m := inst.Mach
	c0 := m.Stats.Cycles
	m.Stats.Cycles += inst.transCycles
	cfg := inst.Mod.Cfg

	// Segment base (Segue modes) — user instruction or syscall.
	if cfg.Mode == sfi.ModeSegue || cfg.Mode == sfi.ModeBoundsSegue || cfg.Mode == sfi.ModeLFISegue {
		if inst.FSGSBASE {
			m.Stats.Cycles += m.Cost.WRGSBASE
		} else {
			m.Stats.Cycles += syscallCycles
		}
		m.GSBase = inst.HeapBase
	} else {
		// Guard/bounds/native: the base travels in a register (or the
		// implicit native base); a plain move.
		m.Stats.Cycles += m.Cost.ALU
		m.GSBase = inst.HeapBase // SegImplicit (native) reads this
	}
	// R15 carries the base whenever the mode pins it (including the
	// loads-only Segue tuning, whose stores still use it). It must NOT
	// be touched otherwise: under full Segue it is a live allocatable
	// register, and Resume re-enters mid-execution.
	if cfg.PinsR15() {
		m.Regs[x86.R15] = inst.HeapBase
	}
	m.Regs[x86.R14] = inst.CtxBase

	// ColorGuard: restrict PKRU to the instance's color.
	if pkey := inst.place.Slot.Pkey; pkey != 0 {
		m.Stats.Cycles += m.Cost.WRPKRU
		m.PKRU = mem.PkruAllowOnly(pkey)
	}
	inst.Transitions++
	inst.transInCycles += m.Stats.Cycles - c0
	if telemetry.Enabled() {
		inst.ctrKind.Inc()
		inst.ctrScheme.Inc()
	}
}

// transitionOut charges the cost of leaving the sandbox and lifts the
// PKRU restriction.
func (inst *Instance) transitionOut() {
	m := inst.Mach
	c0 := m.Stats.Cycles
	m.Stats.Cycles += inst.transCycles
	if inst.place.Slot.Pkey != 0 {
		m.Stats.Cycles += m.Cost.WRPKRU
		m.PKRU = mem.PkruAllowAll
	}
	inst.transOutCycles += m.Stats.Cycles - c0
}

// TransitionNs returns the simulated wall-time the instance has spent
// entering and leaving the sandbox, under its machine's cost model.
// Together with Stats.Nanos this splits an invocation's simulated time
// into transition-in, execution, and transition-out shares for phase
// attribution.
func (inst *Instance) TransitionNs() (inNs, outNs float64) {
	c := &inst.Mach.Cost
	return c.CyclesToNanos(inst.transInCycles), c.CyclesToNanos(inst.transOutCycles)
}

// Close tears the instance down. Pooled instances recycle their slot
// back to the owning backend (charging the backend's teardown cost);
// standalone instances own their whole address space, which simply
// becomes unreachable. Close is idempotent.
func (inst *Instance) Close() error {
	b := inst.place.Backend
	if b == nil {
		return nil
	}
	inst.place.Backend = nil
	return b.Recycle(inst.place.Slot)
}

// ErrNoExport is returned by Invoke for unknown export names.
var ErrNoExport = errors.New("rt: no such export")

// Invoke calls an exported function. Results are masked to their
// declared types.
func (inst *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	fnIdx, ok := inst.Mod.Meta.Exports[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoExport, name)
	}
	irIdx := inst.Mod.IR.Exports[name]
	sig, err := inst.Mod.IR.TypeOf(irIdx)
	if err != nil {
		return nil, err
	}
	if len(args) != len(sig.Params) {
		return nil, fmt.Errorf("rt: %q takes %d args, got %d", name, len(sig.Params), len(args))
	}

	m := inst.Mach
	m.Regs[x86.RSP] = inst.StackTop
	inst.transitionIn()

	// Place arguments per the internal ABI.
	ipos, fpos := 0, 0
	var intArgs []uint64
	for i, p := range sig.Params {
		if p == ir.F64 {
			m.XmmLo[fpos] = args[i]
			fpos++
		} else {
			intArgs = append(intArgs, args[i])
			_ = ipos
		}
	}
	m.Start(fnIdx, intArgs...)
	err = m.Run()
	inst.transitionOut()
	if err != nil {
		return nil, err
	}
	if len(sig.Results) == 0 {
		return nil, nil
	}
	var res uint64
	switch sig.Results[0] {
	case ir.F64:
		res = m.XmmLo[0]
	case ir.I32:
		res = uint64(uint32(m.Result()))
	default:
		res = m.Result()
	}
	return []uint64{res}, nil
}

// Resume continues execution after an epoch interrupt.
func (inst *Instance) Resume() error {
	inst.transitionIn()
	err := inst.Mach.Run()
	inst.transitionOut()
	return err
}
