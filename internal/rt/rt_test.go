package rt

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/sfi"
)

// allModes is every compilation mode; differential tests must agree
// with the interpreter under each.
var allModes = []sfi.Mode{
	sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue,
	sfi.ModeBoundsCheck, sfi.ModeBoundsSegue,
	sfi.ModeLFI, sfi.ModeLFISegue,
}

// diffCase is one differential test: a module, an entry point, and a
// list of argument vectors. Results (and optionally a memory region)
// must match the interpreter in every mode.
type diffCase struct {
	name     string
	build    func() *ir.Module
	entry    string
	argSets  [][]uint64
	checkMem int // bytes of linear memory to compare (0 = none)
}

func buildArith() *ir.Module {
	m := ir.NewModule("arith", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}), ir.I32)
	// ((a*3 + b) ^ (a >> 2)) * (b | 5) - (a & b) + rotl(a, b&7)
	fb.Get(0).I32(3).I32Mul().Get(1).I32Add()
	fb.Get(0).I32(2).I32ShrU().I32Xor()
	fb.Get(1).I32(5).I32Or().I32Mul()
	fb.Get(0).Get(1).I32And().I32Sub()
	fb.Get(0).Get(1).I32(7).I32And().I32Rotl().I32Add()
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildMemRW() *ir.Module {
	m := ir.NewModule("memrw", 1, 1)
	// f(base, n): writes i*i at base+4i, then sums them back.
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(2, 1, 0, 1, func() {
		fb.Get(0).Get(2).I32(2).I32Shl().I32Add() // base + i*4
		fb.Get(2).Get(2).I32Mul()
		fb.I32Store(0)
	})
	fb.LoopNDyn(2, 1, 0, 1, func() {
		fb.Get(3)
		fb.Get(0).Get(2).I32(2).I32Shl().I32Add()
		fb.I32Load(0)
		fb.I32Add().Set(3)
	})
	fb.Get(3)
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildPointerChase() *ir.Module {
	// A linked list in linear memory: node = {next i32, val i32} at
	// 8-byte stride; f(n) builds then walks it. Exercises the
	// int-to-pointer deref pattern (Figure 1, pattern 1) via i64.
	m := ir.NewModule("chase", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32, ir.I64)
	// build: node i at 8*i -> next = 8*(i+1), val = i*7 (last next = 0)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(1).I32(3).I32Shl()
		fb.Get(1).I32(1).I32Add().I32(3).I32Shl()
		fb.I32Store(0)
		fb.Get(1).I32(3).I32Shl()
		fb.Get(1).I32(7).I32Mul()
		fb.I32Store(4)
	})
	// terminate
	fb.Get(0).I32(1).I32Sub().I32(3).I32Shl()
	fb.I32(0)
	fb.I32Store(0)
	// walk from an i64-held pointer (int-to-ptr pattern)
	fb.I64(0).Set(3) // ptr
	fb.Block()
	fb.Loop()
	fb.Get(2)
	fb.Get(3).I32WrapI64().I32Load(4)
	fb.I32Add().Set(2)
	fb.Get(3).I32WrapI64().I32Load(0)
	fb.I64ExtendI32U().Tee(3)
	fb.I64Eqz().BrIf(1)
	fb.Br(0)
	fb.End()
	fb.End()
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildControl() *ir.Module {
	m := ir.NewModule("control", 1, 1)
	// Collatz length with nested control.
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32)
	fb.While(func() {
		fb.Get(0).I32(1).I32GtU()
	}, func() {
		fb.Get(0).I32(1).I32And()
		fb.If()
		fb.Get(0).I32(3).I32Mul().I32(1).I32Add().Set(0)
		fb.Else()
		fb.Get(0).I32(1).I32ShrU().Set(0)
		fb.End()
		fb.Get(1).I32(1).I32Add().Set(1)
	})
	fb.Get(1)
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildBrTable() *ir.Module {
	m := ir.NewModule("brtable", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32)
	fb.LoopN(1, 0, 64, 1, func() {
		fb.Block()
		fb.Block()
		fb.Block()
		fb.Block()
		fb.Get(1).I32(3).I32And()
		fb.BrTable([]uint32{0, 1, 2}, 3)
		fb.End()
		fb.Get(0).I32(2).I32Add().Set(0)
		fb.Br(2)
		fb.End()
		fb.Get(0).I32(3).I32Mul().Set(0)
		fb.Br(1)
		fb.End()
		fb.Get(0).I32(1).I32ShrU().Set(0)
		fb.Br(0)
		fb.End()
		fb.Get(0).I32(1).I32Xor().Set(0)
	})
	fb.Get(0)
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildCalls() *ir.Module {
	m := ir.NewModule("calls", 1, 1)
	gcd := m.NewFunc("gcd", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	gcd.Get(1).I32Eqz()
	gcd.If(ir.I32)
	gcd.Get(0)
	gcd.Else()
	gcd.Get(1)
	gcd.Get(0).Get(1).I32RemU()
	gcd.Call(gcd.Index())
	gcd.End()
	gcd.MustBuild()

	sq := m.NewFunc("sq", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	sq.Get(0).Get(0).I32Mul()
	sq.MustBuild()
	dbl := m.NewFunc("dbl", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	dbl.Get(0).Get(0).I32Add()
	dbl.MustBuild()
	sqi, _ := m.FuncIndex("sq")
	dbi, _ := m.FuncIndex("dbl")
	m.Table = []uint32{sqi, dbi}

	f := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	f.Get(0).Get(1).CallNamed("gcd")
	f.Get(0).Get(1).I32And().I32(1).I32And() // table index 0/1
	f.CallIndirect(ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	f.MustBuild()
	m.MustExport("f")
	return m
}

func buildF64() *ir.Module {
	m := ir.NewModule("f64", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.F64}), ir.I32, ir.F64, ir.F64)
	fb.F64(1).Set(2)
	fb.LoopNDyn(1, 0, 1, 1, func() {
		// acc += sqrt(i) * 1.5 - min(i, 10); sum in local 3
		fb.Get(3)
		fb.Get(1).F64ConvertI32S().F64Sqrt().F64(1.5).F64Mul()
		fb.Get(1).F64ConvertI32S().F64(10).F64Min().F64Sub()
		fb.F64Add().Set(3)
		fb.Get(2).F64(1.0001).F64Mul().Set(2)
	})
	fb.Get(3).Get(2).F64Add()
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildI64() *ir.Module {
	m := ir.NewModule("i64", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I64, ir.I64}, []ir.ValType{ir.I64}), ir.I64)
	fb.Get(0).Get(1).I64Mul()
	fb.Get(0).I64(13).I64Shl().I64Add()
	fb.Get(1).I64Popcnt().I64Add()
	fb.Get(0).I64Clz().I64Add()
	fb.Get(1).I64(3).I64Or().I64DivU().Set(2)
	fb.Get(2).Get(0).Get(1).I64Xor().I64Rotl()
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildGlobalsSelect() *ir.Module {
	m := ir.NewModule("globals", 1, 1)
	g0 := m.AddGlobal(ir.I32, true, 17)
	g1 := m.AddGlobal(ir.I64, true, -5)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.GGet(g0).Get(0).I32Add().GSet(g0)
	fb.GGet(g1).I64(3).I64Mul().GSet(g1)
	fb.GGet(g0)
	fb.GGet(g1).I32WrapI64()
	fb.Get(0).I32(100).I32LtU()
	fb.Select()
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildBulkOps() *ir.Module {
	m := ir.NewModule("bulk", 1, 2)
	m.AddData(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32)
	// fill [1000, 1000+n) with 0xAA; copy 8 data bytes to 2000;
	// grow by 1 page; read back a mix.
	fb.I32(1000).I32(0xAA).Get(0).MemFill()
	fb.I32(2000).I32(0).I32(8).MemCopy()
	fb.I32(1).MemGrow().Drop()
	fb.MemSize().Set(1)
	fb.I32(1000).I32Load8U(0)
	fb.I32(2000).I32Load(4)
	fb.I32Add()
	fb.Get(1).I32Add()
	fb.MustBuild()
	m.MustExport("f")
	return m
}

func buildDirtyAddr() *ir.Module {
	// Exercises Figure 1 pattern 1 aggressively: addresses derived
	// from i64 arithmetic must be truncated before use.
	m := ir.NewModule("dirty", 1, 1)
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I64}, []ir.ValType{ir.I32}))
	fb.Get(0).I64(0x100000000).I64Add().I32WrapI64()
	fb.I32(77)
	fb.I32Store(0)
	fb.Get(0).I32WrapI64()
	fb.I32Load(0)
	fb.MustBuild()
	m.MustExport("f")
	return m
}

var diffCases = []diffCase{
	{name: "arith", build: buildArith, entry: "f",
		argSets: [][]uint64{{0, 0}, {1, 2}, {123456, 789}, {0xFFFFFFFF, 0x80000000}, {7, 31}}},
	{name: "memrw", build: buildMemRW, entry: "f",
		argSets: [][]uint64{{64, 10}, {0, 100}, {4096, 33}}, checkMem: 8192},
	{name: "chase", build: buildPointerChase, entry: "f",
		argSets: [][]uint64{{4}, {100}, {1}}, checkMem: 1024},
	{name: "control", build: buildControl, entry: "f",
		argSets: [][]uint64{{27}, {1}, {97}, {871}}},
	{name: "brtable", build: buildBrTable, entry: "f",
		argSets: [][]uint64{{5}, {0}, {0xDEAD}}},
	{name: "calls", build: buildCalls, entry: "f",
		argSets: [][]uint64{{48, 18}, {17, 5}, {1000, 999}}},
	{name: "f64", build: buildF64, entry: "f",
		argSets: [][]uint64{{10}, {100}, {1}}},
	{name: "i64", build: buildI64, entry: "f",
		argSets: [][]uint64{{2, 3}, {0xFFFFFFFFFFFF, 7}, {1, 1}}},
	{name: "globals", build: buildGlobalsSelect, entry: "f",
		argSets: [][]uint64{{5}, {200}, {0}}},
	{name: "bulk", build: buildBulkOps, entry: "f",
		argSets: [][]uint64{{16}, {64}}, checkMem: 4096},
	{name: "dirty", build: buildDirtyAddr, entry: "f",
		argSets: [][]uint64{{256}, {1024}}, checkMem: 2048},
}

// TestDifferential runs every case on the reference interpreter and on
// the emulator under every compilation mode, comparing results and
// linear-memory contents.
func TestDifferential(t *testing.T) {
	for _, tc := range diffCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range allModes {
				mode := mode
				t.Run(mode.String(), func(t *testing.T) {
					for _, args := range tc.argSets {
						// Fresh module per run: globals and memory are stateful.
						mRef := tc.build()
						interp, err := ir.NewInterp(mRef, nil)
						if err != nil {
							t.Fatalf("interp: %v", err)
						}
						want, wantErr := interp.Invoke(tc.entry, args...)

						mRun := tc.build()
						cfg := sfi.DefaultConfig(mode)
						mod, err := CompileModule(mRun, cfg)
						if err != nil {
							t.Fatalf("compile: %v", err)
						}
						inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
						if err != nil {
							t.Fatalf("instantiate: %v", err)
						}
						got, gotErr := inst.Invoke(tc.entry, args...)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("args %v: err mismatch: interp=%v machine=%v", args, wantErr, gotErr)
						}
						if wantErr != nil {
							continue
						}
						if len(want) != len(got) {
							t.Fatalf("args %v: result arity: %v vs %v", args, want, got)
						}
						for i := range want {
							if want[i] != got[i] {
								t.Fatalf("args %v: result[%d]: interp=%#x machine=%#x", args, i, want[i], got[i])
							}
						}
						if tc.checkMem > 0 {
							gotMem := make([]byte, tc.checkMem)
							inst.AS.ReadBytes(inst.HeapBase, gotMem)
							for i := 0; i < tc.checkMem; i++ {
								if interp.Mem[i] != gotMem[i] {
									t.Fatalf("args %v: memory[%d]: interp=%#x machine=%#x", args, i, interp.Mem[i], gotMem[i])
								}
							}
						}
					}
				})
			}
		})
	}
}

// TestDifferentialWAMRConfigs repeats the memory-heavy cases under the
// WAMR-flavored configurations (loads-only Segue, no operand-slot
// folding, vectorizer on).
func TestDifferentialWAMRConfigs(t *testing.T) {
	cfgs := []sfi.Config{
		{Mode: sfi.ModeSegue, SegueLoadsOnly: true, FoldOperandSlot: true, FoldDispLimit: 4096},
		{Mode: sfi.ModeSegue, FoldOperandSlot: false, FoldDispLimit: 4096},
		{Mode: sfi.ModeGuard, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 4096},
		{Mode: sfi.ModeSegue, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 4096},
		{Mode: sfi.ModeSegue, SegueLoadsOnly: true, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 4096},
		{Mode: sfi.ModeGuard, FoldOperandSlot: true, EpochChecks: true, FoldDispLimit: 4096},
		{Mode: sfi.ModeSegue, FoldOperandSlot: true, Hybrid: true, FoldDispLimit: 4096},
	}
	for _, tc := range diffCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for ci, cfg := range cfgs {
				for _, args := range tc.argSets {
					mRef := tc.build()
					interp, _ := ir.NewInterp(mRef, nil)
					want, wantErr := interp.Invoke(tc.entry, args...)

					mRun := tc.build()
					mod, err := CompileModule(mRun, cfg)
					if err != nil {
						t.Fatalf("cfg %d compile: %v", ci, err)
					}
					inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
					if err != nil {
						t.Fatalf("cfg %d instantiate: %v", ci, err)
					}
					got, gotErr := inst.Invoke(tc.entry, args...)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("cfg %d args %v: err mismatch: %v vs %v", ci, args, wantErr, gotErr)
					}
					if wantErr == nil && len(want) == 1 && want[0] != got[0] {
						t.Fatalf("cfg %d args %v: %#x vs %#x", ci, args, want[0], got[0])
					}
					if tc.checkMem > 0 && wantErr == nil {
						gotMem := make([]byte, tc.checkMem)
						inst.AS.ReadBytes(inst.HeapBase, gotMem)
						for i := 0; i < tc.checkMem; i++ {
							if interp.Mem[i] != gotMem[i] {
								t.Fatalf("cfg %d args %v: memory[%d] differs", ci, args, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestOOBTraps verifies out-of-bounds accesses trap in every mode —
// as a guard-page fault or an explicit bounds-check trap.
func TestOOBTraps(t *testing.T) {
	m := ir.NewModule("oob", 1, 1)
	fb := m.NewFunc("rd", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).I32Load(0)
	fb.MustBuild()
	m.MustExport("rd")

	for _, mode := range allModes {
		if mode == sfi.ModeNative {
			continue // the native baseline has no isolation to test
		}
		mod, err := CompileModule(m, sfi.DefaultConfig(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, GuardBytes: 4 << 30})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// In bounds: works.
		if _, err := inst.Invoke("rd", 100); err != nil {
			t.Fatalf("%v: in-bounds read failed: %v", mode, err)
		}
		// Past the end: traps.
		_, err = inst.Invoke("rd", uint64(ir.PageSize))
		var trap *cpu.Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%v: oob read err = %v, want trap", mode, err)
		}
		if mode.String() == "boundscheck" || mode.String() == "boundssegue" {
			if trap.Kind != cpu.TrapBounds {
				t.Errorf("%v: trap kind = %v, want bounds", mode, trap.Kind)
			}
		} else if trap.Kind != cpu.TrapPageFault {
			t.Errorf("%v: trap kind = %v, want page fault", mode, trap.Kind)
		}
		// Far past the end (maximum 33-bit address): still contained.
		_, err = inst.Invoke("rd", 0xFFFFFFFF)
		if !errors.As(err, &trap) {
			t.Fatalf("%v: far-oob read err = %v, want trap", mode, err)
		}
	}
}

// TestHostCallRoundtrip exercises import calls and transition counting.
func TestHostCallRoundtrip(t *testing.T) {
	m := ir.NewModule("host", 1, 1)
	h := m.AddImport("env.mul10", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopN(1, 0, 5, 1, func() {
		fb.Get(2).Get(0).Call(h).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("f")

	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{
		FSGSBASE: true,
		Hosts: map[string]HostFunc{
			"env.mul10": func(hc *HostCall) (uint64, error) { return hc.Args[0] * 10, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 350 {
		t.Fatalf("f(7) = %d, want 350", res[0])
	}
	// 1 entry + 5 host-call re-entries.
	if inst.Transitions != 6 {
		t.Fatalf("transitions = %d, want 6", inst.Transitions)
	}
}

// TestTransitionCostShape reproduces §6.4.1: ColorGuard adds roughly
// 44 cycles (≈20 ns at 2.2 GHz) per transition.
func TestTransitionCostShape(t *testing.T) {
	m := ir.NewModule("t", 1, 1)
	fb := m.NewFunc("nop", ir.Sig(nil, []ir.ValType{ir.I32}))
	fb.I32(1)
	fb.MustBuild()
	m.MustExport("nop")

	measure := func(pkey uint8) float64 {
		mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Place: isolation.Colored(pkey)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Invoke("nop"); err != nil {
			t.Fatal(err)
		}
		return inst.Mach.Stats.Nanos(&inst.Mach.Cost)
	}
	plain := measure(0)
	cg := measure(3)
	deltaNs := (cg - plain) / 2 // two transitions per invoke
	if deltaNs < 15 || deltaNs > 25 {
		t.Fatalf("per-transition ColorGuard cost = %.2f ns, want ≈20 ns", deltaNs)
	}
}

// TestColorGuardIsolation: an instance restricted to its color cannot
// read a neighboring color even when the pages are mapped.
func TestColorGuardIsolation(t *testing.T) {
	m := ir.NewModule("iso", 1, 1)
	fb := m.NewFunc("rd", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).I32Load(0)
	fb.MustBuild()
	m.MustExport("rd")

	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Place: isolation.Colored(2), GuardBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Map a differently-colored region right after the memory, inside
	// what used to be guard space (the ColorGuard layout).
	neighbor := inst.HeapBase + pageUp(inst.MemBytes)
	if err := inst.AS.PkeyMprotect(neighbor, 1<<16, mem.ProtRead|mem.ProtWrite, 3); err != nil {
		t.Fatal(err)
	}
	_, err = inst.Invoke("rd", uint64(ir.PageSize)+8)
	var trap *cpu.Trap
	if !errors.As(err, &trap) || trap.Kind != cpu.TrapPkey {
		t.Fatalf("cross-color read err = %v, want pkey trap", err)
	}
}

// TestMemoryGrowAcrossModes checks grow semantics and that new pages
// are usable (and colored) afterwards.
func TestMemoryGrowAcrossModes(t *testing.T) {
	m := ir.NewModule("grow", 1, 4)
	fb := m.NewFunc("f", ir.Sig(nil, []ir.ValType{ir.I32}), ir.I32)
	fb.I32(2).MemGrow().Set(0)
	// Write into the newly grown page and read back.
	fb.I32(ir.PageSize + 100).I32(42).I32Store(0)
	fb.I32(ir.PageSize + 100).I32Load(0)
	fb.Get(0).I32Add()
	fb.MemSize().I32Add()
	fb.MustBuild()
	m.MustExport("f")

	for _, mode := range allModes {
		mod, err := CompileModule(m, sfi.DefaultConfig(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		pkey := uint8(0)
		if mode == sfi.ModeSegue {
			pkey = 5 // also check grow+ColorGuard coloring
		}
		inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Place: isolation.Colored(pkey)})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := inst.Invoke("f")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// 42 + old pages (1) + new size (3) = 46.
		if res[0] != 46 {
			t.Fatalf("%v: f() = %d, want 46", mode, res[0])
		}
	}
}

// TestEpochInterruption: a long loop with epoch checks yields and
// resumes to completion.
func TestEpochInterruption(t *testing.T) {
	m := ir.NewModule("epoch", 1, 1)
	fb := m.NewFunc("spin", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(2).Get(1).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("spin")

	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	cfg.EpochChecks = true
	mod, err := CompileModule(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	inst.Mach.EpochEnabled = true
	inst.Mach.EpochDeadline = 1000

	yields := 0
	_, err = inst.Invoke("spin", 200000)
	for err != nil {
		var trap *cpu.Trap
		if !errors.As(err, &trap) || trap.Kind != cpu.TrapEpoch {
			t.Fatalf("err = %v", err)
		}
		yields++
		if yields > 10000 {
			t.Fatal("too many yields")
		}
		inst.Mach.EpochDeadline = inst.Mach.Stats.Cycles + 20000
		err = inst.Resume()
	}
	if inst.Mach.Result() != uint64(199999*200000/2)%(1<<32) {
		// sum 0..n-1 mod 2^32
		t.Fatalf("result = %d", inst.Mach.Result())
	}
	if yields == 0 {
		t.Fatal("expected at least one epoch yield")
	}
}

// TestSegueCodeShape compiles the two Figure 1 patterns and checks the
// headline claim: Segue halves the instruction count of the sandboxed
// memory access and shrinks code.
func TestSegueCodeShape(t *testing.T) {
	m := ir.NewModule("fig1", 1, 1)
	// Pattern 2: u32 b = obj->arr[idx] — base + idx*4 + 8.
	fb := m.NewFunc("pat2", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(1).I32(2).I32Shl().Get(0).I32Add()
	fb.I32Load(8)
	fb.MustBuild()
	m.MustExport("pat2")

	count := func(mode sfi.Mode) (insts int, bytes int) {
		prog, _ := sfi.MustCompile(m, sfi.DefaultConfig(mode))
		f := prog.Funcs[0]
		return len(f.Insts), f.ByteLen
	}
	gi, gb := count(sfi.ModeGuard)
	si, sb := count(sfi.ModeSegue)
	if si >= gi {
		t.Errorf("Segue instruction count %d should be below Guard %d", si, gi)
	}
	if sb >= gb {
		t.Errorf("Segue code size %d should be below Guard %d", sb, gb)
	}
	t.Logf("pattern 2: guard %d insts / %d bytes, segue %d insts / %d bytes", gi, gb, si, sb)
}

// TestF64Result sanity-checks float returns end to end.
func TestF64Result(t *testing.T) {
	m := buildF64()
	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeGuard))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	interp, _ := ir.NewInterp(buildF64(), nil)
	want, _ := interp.Invoke("f", 10)
	got := math.Float64frombits(res[0])
	if got != math.Float64frombits(want[0]) || math.IsNaN(got) {
		t.Fatalf("f(10) = %g, interpreter says %g", got, math.Float64frombits(want[0]))
	}
}

func ExampleInstance_Invoke() {
	m := ir.NewModule("hello", 1, 1)
	fb := m.NewFunc("add", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).Get(1).I32Add()
	fb.MustBuild()
	m.MustExport("add")

	mod, _ := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	inst, _ := NewInstance(mod, InstanceOptions{FSGSBASE: true})
	res, _ := inst.Invoke("add", 2, 40)
	fmt.Println(res[0])
	// Output: 42
}

// TestSignedOffsetScheme: Wasmtime's 2+2 GiB layout (§5.1). A corrupt
// index with the sign bit set traps in the PRE-guard region (negative
// offset) rather than wrapping into valid memory, and normal execution
// is unaffected.
func TestSignedOffsetScheme(t *testing.T) {
	cfg := sfi.DefaultConfig(sfi.ModeGuard)
	cfg.SignedOffset = true

	// Functional check across the differential corpus cases that use
	// wrapped addresses.
	for _, tc := range diffCases {
		for _, args := range tc.argSets {
			mRef := tc.build()
			interp, _ := ir.NewInterp(mRef, nil)
			want, wantErr := interp.Invoke(tc.entry, args...)
			mod, err := CompileModule(tc.build(), cfg)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			inst, err := NewInstance(mod, InstanceOptions{
				FSGSBASE:      true,
				GuardBytes:    2 << 30,
				PreGuardBytes: 2 << 30,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := inst.Invoke(tc.entry, args...)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s args %v: err mismatch %v vs %v", tc.name, args, wantErr, gotErr)
			}
			if wantErr == nil && len(want) > 0 && want[0] != got[0] {
				t.Fatalf("%s args %v: %#x vs %#x", tc.name, args, got[0], want[0])
			}
		}
	}

	// Isolation check: an i64-derived address with the top bit set is
	// sign-extended and faults BELOW the heap.
	m := ir.NewModule("neg", 1, 1)
	fb := m.NewFunc("rd", ir.Sig([]ir.ValType{ir.I64}, []ir.ValType{ir.I32}))
	fb.Get(0).I32WrapI64().I32Load(0)
	fb.MustBuild()
	m.MustExport("rd")
	mod, err := CompileModule(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{
		FSGSBASE:      true,
		GuardBytes:    2 << 30,
		PreGuardBytes: 2 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Invoke("rd", 0x80000000) // sign bit set: negative offset
	var trap *cpu.Trap
	if !errors.As(err, &trap) || trap.Kind != cpu.TrapPageFault {
		t.Fatalf("err = %v, want pre-guard page fault", err)
	}
	if trap.Addr >= inst.HeapBase {
		t.Fatalf("fault at %#x is not below the heap base %#x (pre-guard)", trap.Addr, inst.HeapBase)
	}
}
