package rt

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// resetTestInstance places one instance of kernel k in a fresh slab of
// the given kind.
func resetTestInstance(t *testing.T, k workloads.Kernel, kind isolation.Kind) (*Instance, isolation.Backend) {
	t.Helper()
	mod, err := CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatalf("compiling %s: %v", k.Name, err)
	}
	cfg := isolation.Config{
		Slots:          4,
		MaxMemoryBytes: uint64(mod.IR.MemMax) * ir.PageSize,
		GuardBytes:     1 << 20,
	}
	if kind == isolation.ColorGuard {
		cfg.Keys = 15
	}
	b, err := isolation.NewReserved(kind, mem.NewAS(47), cfg)
	if err != nil {
		t.Fatalf("reserving %s: %v", kind, err)
	}
	slot, err := b.Allocate(uint64(mod.IR.MemMin) * ir.PageSize)
	if err != nil {
		t.Fatalf("allocating: %v", err)
	}
	inst, err := NewInstance(mod, InstanceOptions{
		FSGSBASE: true,
		Place:    isolation.Place(b, slot),
	})
	if err != nil {
		t.Fatalf("instantiating: %v", err)
	}
	return inst, b
}

// TestResetBitExact: for every FaaS kernel and every backend, a warm
// instance (Invoke, Reset, Invoke) returns exactly the checksum and
// simulated cycle count of a fresh instance. The hash-load-balance
// kernel makes this a real test — it mutates a heap histogram, so a
// missed reset changes the checksum.
func TestResetBitExact(t *testing.T) {
	for _, k := range workloads.FaaS().Kernels {
		for _, kind := range isolation.Kinds() {
			inst, b := resetTestInstance(t, k, kind)
			args := k.TestArgs

			out1, err := inst.Invoke(k.Entry, args...)
			if err != nil {
				t.Fatalf("%s/%s first invoke: %v", k.Name, kind, err)
			}
			cycles1 := inst.Mach.Stats.Cycles
			trans1 := inst.Transitions

			if err := inst.Reset(); err != nil {
				t.Fatalf("%s/%s reset: %v", k.Name, kind, err)
			}
			if inst.Transitions != 0 || inst.Mach.Stats.Cycles != 0 {
				t.Fatalf("%s/%s reset left accounting: %d transitions, %g cycles",
					k.Name, kind, inst.Transitions, inst.Mach.Stats.Cycles)
			}

			out2, err := inst.Invoke(k.Entry, args...)
			if err != nil {
				t.Fatalf("%s/%s warm invoke: %v", k.Name, kind, err)
			}
			if out1[0] != out2[0] {
				t.Errorf("%s/%s: warm checksum %d != fresh %d", k.Name, kind, out2[0], out1[0])
			}
			if inst.Mach.Stats.Cycles != cycles1 {
				t.Errorf("%s/%s: warm cycles %g != fresh %g", k.Name, kind, inst.Mach.Stats.Cycles, cycles1)
			}
			if inst.Transitions != trans1 {
				t.Errorf("%s/%s: warm transitions %d != fresh %d", k.Name, kind, inst.Transitions, trans1)
			}
			inst.Close()
			b.Release()
		}
	}
}

// TestResetRepeatedReuse: many invoke/reset rounds on one instance stay
// bit-identical — the pool can pin an instance indefinitely.
func TestResetRepeatedReuse(t *testing.T) {
	k, err := workloads.FaaS().Find("hash-load-balance")
	if err != nil {
		t.Fatal(err)
	}
	inst, b := resetTestInstance(t, k, isolation.ColorGuard)
	defer func() { inst.Close(); b.Release() }()

	out, err := inst.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	want := out[0]
	for i := 0; i < 10; i++ {
		if err := inst.Reset(); err != nil {
			t.Fatalf("round %d reset: %v", i, err)
		}
		out, err := inst.Invoke(k.Entry, k.TestArgs...)
		if err != nil {
			t.Fatalf("round %d invoke: %v", i, err)
		}
		if out[0] != want {
			t.Fatalf("round %d: checksum %d != %d", i, out[0], want)
		}
	}
}

// TestResetWithoutReset documents why Reset exists: the
// hash-load-balance kernel's histogram persists across invokes, so a
// second un-reset invoke must differ. If this ever starts passing the
// warm pool could skip resets — it should not silently.
func TestResetWithoutReset(t *testing.T) {
	k, err := workloads.FaaS().Find("hash-load-balance")
	if err != nil {
		t.Fatal(err)
	}
	inst, b := resetTestInstance(t, k, isolation.GuardPage)
	defer func() { inst.Close(); b.Release() }()

	out1, err := inst.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := inst.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	if out1[0] == out2[0] {
		t.Fatalf("un-reset reuse produced identical checksums (%d); dirty-state hazard gone?", out1[0])
	}
}
