package rt

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/sfi"
)

func nopTestModule(t *testing.T) *Module {
	t.Helper()
	m := ir.NewModule("schemenop", 1, 1)
	fb := m.NewFunc("nop", ir.Sig(nil, []ir.ValType{ir.I32}))
	fb.I32(1)
	fb.MustBuild()
	m.MustExport("nop")
	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestSchemeTransitionCyclesPinned drives transitionIn/Out directly and
// pins the exact cycles each charges: the scheme's convention cycles
// plus the mechanism instructions (segment-base write each entry, a
// WRPKRU each way when the placement carries a color). One scheme must
// never change what another charges.
func TestSchemeTransitionCyclesPinned(t *testing.T) {
	mod := nopTestModule(t)
	for _, s := range isolation.Schemes() {
		for _, pkey := range []uint8{0, 5} {
			inst, err := NewInstance(mod, InstanceOptions{
				FSGSBASE: true,
				Scheme:   s,
				Place:    isolation.Colored(pkey),
			})
			if err != nil {
				t.Fatal(err)
			}
			cost := &inst.Mach.Cost

			before := inst.Mach.Stats.Cycles
			inst.transitionIn()
			wantIn := s.BaseCycles() + cost.WRGSBASE
			if pkey != 0 {
				wantIn += cost.WRPKRU
			}
			if got := inst.Mach.Stats.Cycles - before; got != wantIn {
				t.Errorf("%s pkey=%d: transitionIn charged %.2f cycles, want %.2f", s, pkey, got, wantIn)
			}

			before = inst.Mach.Stats.Cycles
			inst.transitionOut()
			wantOut := s.BaseCycles()
			if pkey != 0 {
				wantOut += cost.WRPKRU
			}
			if got := inst.Mach.Stats.Cycles - before; got != wantOut {
				t.Errorf("%s pkey=%d: transitionOut charged %.2f cycles, want %.2f", s, pkey, got, wantOut)
			}
		}
	}
}

// TestSchemeInvokeDelta pins the per-round-trip charge through the
// public surface: an Invoke is exactly one in+out pair, so between two
// schemes the total cycle difference is exactly twice the difference of
// their convention cycles — everything else (the function body, the
// segment write) is scheme-independent.
func TestSchemeInvokeDelta(t *testing.T) {
	mod := nopTestModule(t)
	run := func(s isolation.Scheme) float64 {
		inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Invoke("nop"); err != nil {
			t.Fatal(err)
		}
		if inst.Scheme() != s {
			t.Fatalf("Scheme() = %v, want %v", inst.Scheme(), s)
		}
		return inst.Mach.Stats.Cycles
	}
	base := run(isolation.SchemeDefault)
	for _, s := range []isolation.Scheme{isolation.SchemeZeroCost, isolation.SchemeOneStack, isolation.SchemeTrampoline} {
		got := run(s) - base
		want := 2 * (s.BaseCycles() - isolation.SchemeDefault.BaseCycles())
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: invoke cycle delta %.2f, want %.2f", s, got, want)
		}
	}
}

// TestSchemeHostCallDelta extends the pin to host calls: a loop making
// five host calls crosses the boundary six times each way (1 entry + 5
// re-entries, 5 exits + 1 final exit), so the scheme delta is 12 one-way
// convention charges.
func TestSchemeHostCallDelta(t *testing.T) {
	m := ir.NewModule("schemehost", 1, 1)
	h := m.AddImport("env.id", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopN(1, 0, 5, 1, func() {
		fb.Get(2).Get(0).Call(h).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("f")
	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}

	run := func(s isolation.Scheme) float64 {
		inst, err := NewInstance(mod, InstanceOptions{
			FSGSBASE: true,
			Scheme:   s,
			Hosts: map[string]HostFunc{
				"env.id": func(hc *HostCall) (uint64, error) { return hc.Args[0], nil },
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Invoke("f", 7); err != nil {
			t.Fatal(err)
		}
		if inst.Transitions != 6 {
			t.Fatalf("%s: transitions = %d, want 6", s, inst.Transitions)
		}
		return inst.Mach.Stats.Cycles
	}
	base := run(isolation.SchemeDefault)
	for _, s := range []isolation.Scheme{isolation.SchemeZeroCost, isolation.SchemeTrampoline} {
		got := run(s) - base
		want := 12 * (s.BaseCycles() - isolation.SchemeDefault.BaseCycles())
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: host-call cycle delta %.2f, want %.2f", s, got, want)
		}
	}
}

// TestSchemeTierDifferential: the transition scheme and the execution
// tier are independent axes — under every scheme, the slow, fast, and
// fused engines produce the same checksum and bit-identical simulated
// cycles (the same law benchtab -compare enforces for whole tables).
func TestSchemeTierDifferential(t *testing.T) {
	m := ir.NewModule("schemetier", 1, 1)
	fb := m.NewFunc("sum", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopN(1, 0, 64, 1, func() {
		fb.Get(2).Get(1).I32Add().Get(0).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("sum")
	mod, err := CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}

	prev := cpu.DefaultTier()
	defer cpu.SetDefaultTier(prev)

	for _, s := range isolation.Schemes() {
		var wantRes uint64
		var wantCycles float64
		for i, tier := range []cpu.Tier{cpu.TierSlow, cpu.TierFast, cpu.TierFused} {
			cpu.SetDefaultTier(tier)
			inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Scheme: s})
			if err != nil {
				t.Fatal(err)
			}
			res, err := inst.Invoke("sum", 3)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				wantRes, wantCycles = res[0], inst.Mach.Stats.Cycles
				continue
			}
			if res[0] != wantRes {
				t.Errorf("%s/%s: result %d, slow tier got %d", s, tier, res[0], wantRes)
			}
			if inst.Mach.Stats.Cycles != wantCycles {
				t.Errorf("%s/%s: cycles %.2f, slow tier got %.2f (tiers must be bit-identical)", s, tier, inst.Mach.Stats.Cycles, wantCycles)
			}
		}
	}
}

// TestInstanceSchemeFromBackend: a placed instance inherits the scheme
// its backend was reserved under, and an explicit InstanceOptions.Scheme
// overrides it.
func TestInstanceSchemeFromBackend(t *testing.T) {
	mod := nopTestModule(t)
	b, err := isolation.NewReserved(isolation.GuardPage, mem.NewAS(47), isolation.Config{
		Slots:          4,
		MaxMemoryBytes: 1 << 20,
		GuardBytes:     1 << 20,
		Scheme:         isolation.SchemeZeroCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()

	slot, err := b.Allocate(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, InstanceOptions{FSGSBASE: true, Place: isolation.Place(b, slot)})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Scheme(); got != isolation.SchemeZeroCost {
		t.Errorf("inherited scheme = %v, want zerocost", got)
	}
	inst.Close()

	slot, err = b.Allocate(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	inst, err = NewInstance(mod, InstanceOptions{
		FSGSBASE: true,
		Scheme:   isolation.SchemeTrampoline,
		Place:    isolation.Place(b, slot),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if got := inst.Scheme(); got != isolation.SchemeTrampoline {
		t.Errorf("explicit scheme = %v, want trampoline (must override the backend's)", got)
	}
}
