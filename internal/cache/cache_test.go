package cache

import (
	"testing"

	"repro/internal/telemetry"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(64, 4)
	if tlb.Access(0x1000) {
		t.Fatal("first access should miss")
	}
	if !tlb.Access(0x1008) {
		t.Fatal("same page should hit")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(4, 4) // one set, 4 ways
	pages := []uint64{0, 1, 2, 3}
	for _, p := range pages {
		tlb.Access(p << 12)
	}
	// Touch page 0 so page 1 is LRU, then insert page 4.
	tlb.Access(0)
	tlb.Access(4 << 12)
	if !tlb.Access(0) {
		t.Error("page 0 should survive (recently used)")
	}
	if tlb.Access(1 << 12) {
		t.Error("page 1 should have been evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(64, 4)
	tlb.Access(0x5000)
	tlb.Flush()
	if tlb.Access(0x5000) {
		t.Error("access after flush should miss")
	}
	if tlb.Flushes() != 1 {
		t.Errorf("Flushes = %d", tlb.Flushes())
	}
}

func TestCacheLevels(t *testing.T) {
	h := NewHierarchy()
	if lv := h.L1D.Access(0x1000); lv != 2 {
		t.Fatalf("cold access missed %d levels, want 2", lv)
	}
	if lv := h.L1D.Access(0x1010); lv != 0 {
		t.Fatalf("same line should hit L1, got %d", lv)
	}
	// Evict from L1 but not L2: walk more lines than L1 holds in one set.
	// Lines mapping to the same L1 set are 4 KiB apart (64 sets * 64B).
	conflict := uint64(48 << 10 / 12) // L1 set stride
	for i := uint64(1); i <= 12; i++ {
		h.L1D.Access(0x1000 + i*conflict)
	}
	if lv := h.L1D.Access(0x1000); lv != 1 {
		t.Fatalf("L1-evicted line should hit L2, missed %d levels", lv)
	}
}

func TestCacheWorkingSetEffect(t *testing.T) {
	// A working set of 4-byte elements has half the miss rate of the
	// same element count at 8 bytes once it spills out of L1 — the
	// pointer-compression effect behind the 429_mcf outlier.
	run := func(elemSize uint64) uint64 {
		h := NewHierarchy()
		const n = 32 << 10 // elements; 128KB/256KB working sets
		for pass := 0; pass < 4; pass++ {
			for i := uint64(0); i < n; i++ {
				h.L1D.Access(i * elemSize)
			}
		}
		return h.L1D.Misses()
	}
	m4, m8 := run(4), run(8)
	if m4 >= m8 {
		t.Fatalf("4-byte misses (%d) should be below 8-byte misses (%d)", m4, m8)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy()
	h.L1D.Access(0x2000)
	h.DTLB.Access(0x2000)
	h.Flush()
	if lv := h.L1D.Access(0x2000); lv != 2 {
		t.Errorf("after flush, access should miss both levels, got %d", lv)
	}
	if h.DTLB.Access(0x3000) {
		t.Error("after flush, TLB should miss")
	}
}

func TestHierarchyPublishTo(t *testing.T) {
	h := NewHierarchy()
	h.DTLB.Access(0x1000) // miss
	h.DTLB.Access(0x1008) // hit
	h.L1D.Access(0x1000)  // misses L1 and L2
	h.L1D.Access(0x1010)  // hits L1
	r := telemetry.NewRegistry()
	h.PublishTo(r, "cpu")
	for name, want := range map[string]uint64{
		"cpu.dtlb.hits":   1,
		"cpu.dtlb.misses": 1,
		"cpu.l1d.hits":    1,
		"cpu.l1d.misses":  1,
		"cpu.l2.misses":   1,
	} {
		if got := r.Counter(name).Load(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTLB(63, 4) },
		func() { NewTLB(0, 1) },
		func() { NewCache("x", 1000, 48, 2) },
		func() { NewCache("x", 3<<10, 64, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			f()
		}()
	}
}

// TestHierarchyMemoEquivalence drives a Hierarchy and an identical
// memo-free reference (separate TLB+Cache lookups) with the same
// deterministic address stream — same-line repeats, stack/heap
// alternation that exercises the two-entry memo, strided sweeps that
// evict, and set-conflicting lines that must invalidate the second
// entry — and requires bit-identical hit/miss counters throughout.
func TestHierarchyMemoEquivalence(t *testing.T) {
	h := NewHierarchy()
	ref := NewHierarchy() // driven through the memo-free reference path

	refAccess := func(addr uint64) (bool, int) {
		return ref.DTLB.Access(addr), ref.L1D.Access(addr)
	}

	var addrs []uint64
	const stack = 0x7f00_0000_0000
	const heap = 0x1_0000_0000
	// Same-line repeats and alternation between two disjoint lines.
	for i := 0; i < 64; i++ {
		addrs = append(addrs, stack+8*uint64(i%4), heap+uint64(i%2)*8)
	}
	// Lines that share an L1 set (48KiB/12-way over 64B lines is 64
	// sets, so addresses 4096 apart map to the same set).
	for i := 0; i < 32; i++ {
		addrs = append(addrs, heap+uint64(i%3)*4096)
	}
	// A large stride sweep to force evictions at every level.
	for i := 0; i < 4096; i++ {
		addrs = append(addrs, heap+uint64(i)*64)
	}
	// Revisit the early working set.
	for i := 0; i < 64; i++ {
		addrs = append(addrs, stack+8*uint64(i%4), heap+uint64(i%2)*8)
	}

	for i, a := range addrs {
		gotTLB, gotMiss := h.Access(a)
		wantTLB, wantMiss := refAccess(a)
		if gotTLB != wantTLB || gotMiss != wantMiss {
			t.Fatalf("access %d (%#x): memo (%v,%d) != reference (%v,%d)",
				i, a, gotTLB, gotMiss, wantTLB, wantMiss)
		}
		if h.DTLB.Hits() != ref.DTLB.Hits() || h.DTLB.Misses() != ref.DTLB.Misses() {
			t.Fatalf("access %d (%#x): dTLB counters diverge: %d/%d vs %d/%d",
				i, a, h.DTLB.Hits(), h.DTLB.Misses(), ref.DTLB.Hits(), ref.DTLB.Misses())
		}
		if h.L1D.Hits() != ref.L1D.Hits() || h.L1D.Misses() != ref.L1D.Misses() {
			t.Fatalf("access %d (%#x): L1 counters diverge: %d/%d vs %d/%d",
				i, a, h.L1D.Hits(), h.L1D.Misses(), ref.L1D.Hits(), ref.L1D.Misses())
		}
		l2, rl2 := h.L1D.Next, ref.L1D.Next
		if l2.Hits() != rl2.Hits() || l2.Misses() != rl2.Misses() {
			t.Fatalf("access %d (%#x): L2 counters diverge", i, a)
		}
	}
}
