// Package cache simulates the memory-hierarchy structures whose behaviour
// the paper's evaluation depends on: a set-associative data TLB (Figure 7b
// counts dTLB misses under multi-process vs ColorGuard scaling) and a
// two-level set-associative data cache (the pointer-compression effect
// that makes 429_mcf run faster under Wasm than natively is a cache
// effect of 4-byte vs 8-byte pointers).
//
// The structures are true LRU and deterministic; costs (cycles per miss)
// are applied by the CPU emulator, not here.
//
// Counters live in plain single-owner fields — each TLB/Cache belongs
// to one machine or one simulation, and the per-access increment is the
// hottest line in the emulator, so it must not pay an atomic. The
// telemetry registry is the export surface instead: accessors expose
// the counts as read-only views, and PublishTo folds them into
// registry counters at run boundaries.
package cache

import "repro/internal/telemetry"

// lruAccess looks tag up in one set's ways, kept in recency order
// (most recent first), and maintains that order: a hit rotates the way
// to the front; a miss evicts the last way (the least recent — or an
// empty slot while the set is filling, since empties sink to the back)
// and inserts the tag at the front. This is exactly true LRU — the
// recency ordering carries the same information as per-way timestamps —
// but a hit near the front costs one or two comparisons instead of a
// full scan over stamps, which is what the emulator pays per simulated
// memory access.
func lruAccess(w []uint64, tag uint64) bool {
	if w[0] == tag {
		return true
	}
	for i := 1; i < len(w); i++ {
		if w[i] == tag {
			copy(w[1:i+1], w[:i])
			w[0] = tag
			return true
		}
	}
	copy(w[1:], w[:len(w)-1])
	w[0] = tag
	return false
}

// TLB is a set-associative translation lookaside buffer over 4 KiB
// pages. The zero value is not usable; construct with NewTLB.
type TLB struct {
	sets     uint64
	ways     int
	tags     []uint64 // sets*ways entries in recency order; 0 = invalid (vpn+1 stored)
	pageBits uint

	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB returns a TLB with the given total entry count and
// associativity. Entries must be a multiple of ways and sets a power of
// two (e.g. 64 entries, 4 ways — a typical L1 dTLB).
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("cache: bad TLB geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("cache: TLB set count must be a power of two")
	}
	return &TLB{sets: uint64(sets), ways: ways, tags: make([]uint64, entries), pageBits: 12}
}

// Access looks up the page containing vaddr, updating hit/miss counters
// and LRU state. It returns true on a hit. The body checks only the
// most-recent way so the function inlines into the emulator's memory
// path; the full set scan lives in accessRest.
func (t *TLB) Access(vaddr uint64) bool {
	vpn := vaddr >> t.pageBits
	base := int(vpn&(t.sets-1)) * t.ways
	if t.tags[base] == vpn+1 {
		t.hits++
		return true
	}
	return t.accessRest(base, vpn+1)
}

func (t *TLB) accessRest(base int, tag uint64) bool {
	if lruAccess(t.tags[base:base+t.ways], tag) {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Flush invalidates all entries, as a process context switch (address
// space change without PCID reuse) does.
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
	}
	t.flushes++
}

// ResetStats zeroes the counters without touching entries.
func (t *TLB) ResetStats() { t.hits, t.misses, t.flushes = 0, 0, 0 }

// Hits returns the hit count since construction or ResetStats.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Flushes returns the flush count.
func (t *TLB) Flushes() uint64 { return t.flushes }

// PublishTo adds the TLB's counters into registry counters named
// <prefix>.hits/.misses/.flushes. Call once per TLB at a run boundary
// (repeated calls double-count).
func (t *TLB) PublishTo(r *telemetry.Registry, prefix string) {
	r.Counter(prefix + ".hits").Add(t.hits)
	r.Counter(prefix + ".misses").Add(t.misses)
	r.Counter(prefix + ".flushes").Add(t.flushes)
}

// Cache is one level of a set-associative data cache with true-LRU
// replacement. Levels chain through Next; Access recurses on miss.
type Cache struct {
	Name     string
	lineBits uint
	sets     uint64
	ways     int
	tags     []uint64 // sets*ways entries in recency order; 0 = invalid (line+1 stored)

	hits   uint64
	misses uint64

	// Next is the level below (nil = memory).
	Next *Cache
}

// NewCache returns a cache of the given total size in bytes, line size,
// and associativity.
func NewCache(name string, sizeBytes, lineBytes, ways int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	lines := sizeBytes / lineBytes
	if lines <= 0 || lines%ways != 0 {
		panic("cache: bad cache geometry")
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb != lineBytes {
		lb++
	}
	return &Cache{Name: name, lineBits: lb, sets: uint64(sets), ways: ways,
		tags: make([]uint64, lines)}
}

// Access looks up the line containing addr. It returns the number of
// levels that missed (0 = L1 hit, 1 = L1 miss/L2 hit, 2 = missed both).
// Like TLB.Access, the body checks only the most-recent way so it
// inlines; the set scan and the recursion into Next live in accessRest.
func (c *Cache) Access(addr uint64) int {
	ln := addr >> c.lineBits
	base := int(ln&(c.sets-1)) * c.ways
	if c.tags[base] == ln+1 {
		c.hits++
		return 0
	}
	return c.accessRest(base, ln+1, addr)
}

func (c *Cache) accessRest(base int, tag, addr uint64) int {
	if lruAccess(c.tags[base:base+c.ways], tag) {
		c.hits++
		return 0
	}
	c.misses++
	if c.Next != nil {
		return 1 + c.Next.Access(addr)
	}
	return 1
}

// Flush invalidates every line at this level and below.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	if c.Next != nil {
		c.Next.Flush()
	}
}

// ResetStats zeroes counters at this level and below.
func (c *Cache) ResetStats() {
	c.hits, c.misses = 0, 0
	if c.Next != nil {
		c.Next.ResetStats()
	}
}

// Hits returns this level's hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns this level's miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// PublishTo adds this level's (and lower levels') counters into
// registry counters named <prefix>.<level-name>.hits/.misses, with the
// level name lowercased from Name. Call once per cache at a run
// boundary.
func (c *Cache) PublishTo(r *telemetry.Registry, prefix string) {
	name := prefix + "." + lowerName(c.Name)
	r.Counter(name + ".hits").Add(c.hits)
	r.Counter(name + ".misses").Add(c.misses)
	if c.Next != nil {
		c.Next.PublishTo(r, prefix)
	}
}

// lowerName lowercases ASCII letters (avoiding a strings import on this
// otherwise dependency-free hot package).
func lowerName(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + 'a' - 'A'
		}
	}
	return string(b)
}

// Hierarchy bundles the default memory-hierarchy configuration used by
// the CPU emulator: a 64-entry 4-way dTLB, a 48 KiB 12-way L1D, and a
// 2 MiB 16-way L2 — roughly the Raptor Lake shapes from the paper's
// test machine.
type Hierarchy struct {
	DTLB *TLB
	L1D  *Cache

	// lastLine memoizes the most recent Access: the line number (plus
	// one, shifted by memoShift; 0 = invalid). A repeat access to the
	// same line is necessarily a dTLB front-way hit and an L1 front-way
	// hit with no LRU state change (the line is already most recent in
	// both sets), so Access can short-circuit to two counter increments.
	// Any other mutation of the structures — Flush, AccessL1 — must
	// clear the memo. memoShift is the L1 line shift when built by
	// NewHierarchy; for a hand-assembled Hierarchy it is zero, which
	// degrades the memo to exact-address repeats (still correct, since
	// the same address is a fortiori the same line and page).
	//
	// prevLine extends the memo to the second-most-recent line, for the
	// stack/heap alternation the sandboxed code does constantly. It is
	// usable only while prevOK: the two lines must index different dTLB
	// sets and different L1 sets, so the older line is provably still
	// the front way of both its sets (the newer access cannot have
	// rotated them) and a repeat hit again changes no LRU state. The
	// set-disjointness is computed once, when AccessFull rotates the
	// memo, not per lookup.
	lastLine  uint64
	prevLine  uint64
	prevOK    bool
	memoShift uint
}

// NewHierarchy returns the default hierarchy.
func NewHierarchy() *Hierarchy {
	l2 := NewCache("L2", 2<<20, 64, 16)
	l1 := NewCache("L1D", 48<<10, 64, 12)
	l1.Next = l2
	return &Hierarchy{DTLB: NewTLB(64, 4), L1D: l1, memoShift: l1.lineBits}
}

// Flush models a full address-space switch: TLB and caches lose their
// useful contents. (Caches are physically tagged in reality, but a
// process switch replaces the working set, which this approximates.)
func (h *Hierarchy) Flush() {
	h.lastLine, h.prevLine, h.prevOK = 0, 0, false
	h.DTLB.Flush()
	h.L1D.Flush()
}

// AccessL1 charges one access against the cache hierarchy only (no
// dTLB), as host-call helpers touching guest memory do. It goes
// through the Hierarchy rather than L1D directly so the same-line
// memo is invalidated: the access may rotate or evict lines that the
// memo assumed were most recent.
func (h *Hierarchy) AccessL1(addr uint64) int {
	h.lastLine, h.prevLine, h.prevOK = 0, 0, false
	return h.L1D.Access(addr)
}

// Access charges one data access at addr through the whole hierarchy
// in a single call — the emulator pays this per simulated memory
// access, so the dTLB and L1 most-recent-way checks are open-coded
// here rather than going through TLB.Access and Cache.Access. It
// returns the dTLB outcome and the number of cache levels missed,
// with identical counter updates to calling the two lookups directly.
// PublishTo adds the whole hierarchy's counters into the registry
// under <prefix>.dtlb and <prefix>.<cache-level> names.
func (h *Hierarchy) PublishTo(r *telemetry.Registry, prefix string) {
	h.DTLB.PublishTo(r, prefix+".dtlb")
	h.L1D.PublishTo(r, prefix)
}

func (h *Hierarchy) Access(addr uint64) (tlbHit bool, missLevels int) {
	if h.MemoHit(addr) {
		return true, 0
	}
	return h.AccessFull(addr)
}

// MemoHit reports whether addr repeats the line of the immediately
// preceding access, charging the guaranteed dTLB+L1 hit if so. It is
// small enough to inline into the emulator's load/store fast path, so
// the dominant same-line-repeat case pays no function call at all;
// callers fall back to Access (or accessFull via Access) when it
// returns false.
func (h *Hierarchy) MemoHit(addr uint64) bool {
	ln := addr>>h.memoShift + 1
	if ln == h.lastLine {
		h.DTLB.hits++
		h.L1D.hits++
		return true
	}
	if ln == h.prevLine && h.prevOK {
		h.prevLine = h.lastLine
		h.lastLine = ln
		h.DTLB.hits++
		h.L1D.hits++
		return true
	}
	return false
}

// AccessFull is the general path: full dTLB and cache lookups, then
// the memo records the line just accessed (now most recent in both
// structures whatever the outcome — misses insert at the front too).
// The displaced line stays usable as the second memo entry when it
// can be proven undisturbed: its L1 set must differ from the new
// line's (distinct lines in one set rotate the LRU order), and its
// page must either be the same page (still the front TLB way) or
// index a different TLB set.
func (h *Hierarchy) AccessFull(addr uint64) (tlbHit bool, missLevels int) {
	t := h.DTLB
	vpn := addr >> t.pageBits
	tb := int(vpn&(t.sets-1)) * t.ways
	if t.tags[tb] == vpn+1 {
		t.hits++
		tlbHit = true
	} else {
		tlbHit = t.accessRest(tb, vpn+1)
	}
	c := h.L1D
	ln := addr >> c.lineBits
	cb := int(ln&(c.sets-1)) * c.ways
	if c.tags[cb] == ln+1 {
		c.hits++
	} else {
		missLevels = c.accessRest(cb, ln+1, addr)
	}
	m := addr>>h.memoShift + 1
	if m != h.lastLine {
		if prev := h.lastLine; prev != 0 {
			pa := (prev - 1) << h.memoShift
			pvpn := pa >> t.pageBits
			h.prevOK = (pa>>c.lineBits)&(c.sets-1) != ln&(c.sets-1) &&
				(pvpn == vpn || pvpn&(t.sets-1) != vpn&(t.sets-1))
			h.prevLine = prev
		}
		h.lastLine = m
	}
	return
}
