// Package cache simulates the memory-hierarchy structures whose behaviour
// the paper's evaluation depends on: a set-associative data TLB (Figure 7b
// counts dTLB misses under multi-process vs ColorGuard scaling) and a
// two-level set-associative data cache (the pointer-compression effect
// that makes 429_mcf run faster under Wasm than natively is a cache
// effect of 4-byte vs 8-byte pointers).
//
// The structures are true LRU and deterministic; costs (cycles per miss)
// are applied by the CPU emulator, not here.
package cache

// TLB is a set-associative translation lookaside buffer over 4 KiB
// pages. The zero value is not usable; construct with NewTLB.
type TLB struct {
	sets     uint64
	ways     int
	tags     []uint64 // sets*ways entries; 0 = invalid (vpn+1 stored)
	stamps   []uint64
	clock    uint64
	pageBits uint

	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// NewTLB returns a TLB with the given total entry count and
// associativity. Entries must be a multiple of ways and sets a power of
// two (e.g. 64 entries, 4 ways — a typical L1 dTLB).
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("cache: bad TLB geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("cache: TLB set count must be a power of two")
	}
	return &TLB{sets: uint64(sets), ways: ways, tags: make([]uint64, entries), stamps: make([]uint64, entries), pageBits: 12}
}

// Access looks up the page containing vaddr, updating hit/miss counters
// and LRU state. It returns true on a hit.
func (t *TLB) Access(vaddr uint64) bool {
	vpn := vaddr >> t.pageBits
	set := vpn & (t.sets - 1)
	base := int(set) * t.ways
	t.clock++
	tag := vpn + 1
	victim, oldest := base, t.stamps[base]
	for i := base; i < base+t.ways; i++ {
		if t.tags[i] == tag {
			t.stamps[i] = t.clock
			t.Hits++
			return true
		}
		if t.stamps[i] < oldest {
			victim, oldest = i, t.stamps[i]
		}
	}
	t.Misses++
	t.tags[victim] = tag
	t.stamps[victim] = t.clock
	return false
}

// Flush invalidates all entries, as a process context switch (address
// space change without PCID reuse) does.
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
		t.stamps[i] = 0
	}
	t.Flushes++
}

// ResetStats zeroes the counters without touching entries.
func (t *TLB) ResetStats() { t.Hits, t.Misses, t.Flushes = 0, 0, 0 }

// Cache is one level of a set-associative data cache with true-LRU
// replacement. Levels chain through Next; Access recurses on miss.
type Cache struct {
	Name     string
	lineBits uint
	sets     uint64
	ways     int
	tags     []uint64
	stamps   []uint64
	clock    uint64

	Hits   uint64
	Misses uint64

	// Next is the level below (nil = memory).
	Next *Cache
}

// NewCache returns a cache of the given total size in bytes, line size,
// and associativity.
func NewCache(name string, sizeBytes, lineBytes, ways int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	lines := sizeBytes / lineBytes
	if lines <= 0 || lines%ways != 0 {
		panic("cache: bad cache geometry")
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb != lineBytes {
		lb++
	}
	return &Cache{Name: name, lineBits: lb, sets: uint64(sets), ways: ways,
		tags: make([]uint64, lines), stamps: make([]uint64, lines)}
}

// Access looks up the line containing addr. It returns the number of
// levels that missed (0 = L1 hit, 1 = L1 miss/L2 hit, 2 = missed both).
func (c *Cache) Access(addr uint64) int {
	ln := addr >> c.lineBits
	set := ln & (c.sets - 1)
	base := int(set) * c.ways
	c.clock++
	tag := ln + 1
	victim, oldest := base, c.stamps[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.Hits++
			return 0
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	if c.Next != nil {
		return 1 + c.Next.Access(addr)
	}
	return 1
}

// Flush invalidates every line at this level and below.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	if c.Next != nil {
		c.Next.Flush()
	}
}

// ResetStats zeroes counters at this level and below.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses = 0, 0
	if c.Next != nil {
		c.Next.ResetStats()
	}
}

// Hierarchy bundles the default memory-hierarchy configuration used by
// the CPU emulator: a 64-entry 4-way dTLB, a 48 KiB 12-way L1D, and a
// 2 MiB 16-way L2 — roughly the Raptor Lake shapes from the paper's
// test machine.
type Hierarchy struct {
	DTLB *TLB
	L1D  *Cache
}

// NewHierarchy returns the default hierarchy.
func NewHierarchy() *Hierarchy {
	l2 := NewCache("L2", 2<<20, 64, 16)
	l1 := NewCache("L1D", 48<<10, 64, 12)
	l1.Next = l2
	return &Hierarchy{DTLB: NewTLB(64, 4), L1D: l1}
}

// Flush models a full address-space switch: TLB and caches lose their
// useful contents. (Caches are physically tagged in reality, but a
// process switch replaces the working set, which this approximates.)
func (h *Hierarchy) Flush() {
	h.DTLB.Flush()
	h.L1D.Flush()
}
