// Package verify reproduces the paper's §5.2 verification effort as
// executable checking: where the authors used the Flux refinement-type
// checker (plus a Z3 proof for bitwise arithmetic) to verify Wasmtime's
// slot-layout computation against the Table 1 invariants under an
// adversarial caller model, this package drives a layout computation
// with adversarial inputs — boundary values, unaligned sizes,
// overflow-inducing geometries, and random fuzzing — and checks every
// produced layout against the invariants.
//
// Run against pool.ComputeLayoutLegacy it finds the saturating-addition
// bug and the four missing preconditions (Table 1, invariants 7–10);
// run against pool.ComputeLayout it finds nothing.
package verify

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/stats"
)

// LayoutFunc is the computation under verification.
type LayoutFunc func(pool.Config) (pool.Layout, error)

// Finding is one discovered violation: the input that produced an
// invariant-violating layout and the violation itself.
type Finding struct {
	Input     pool.Config
	Layout    pool.Layout
	Violation string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("config %+v => %s", f.Input, f.Violation)
}

// Report summarizes a verification run.
type Report struct {
	Checked  int // inputs whose layout was produced and checked
	Rejected int // inputs the computation refused (fine: defensive)
	Findings []Finding
}

// Sound reports whether no violations were found.
func (r *Report) Sound() bool { return len(r.Findings) == 0 }

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("verify: %d layouts checked, %d inputs rejected, %d violations",
		r.Checked, r.Rejected, len(r.Findings))
	for i, f := range r.Findings {
		if i >= 5 {
			s += fmt.Sprintf("\n  ... and %d more", len(r.Findings)-5)
			break
		}
		s += "\n  " + f.String()
	}
	return s
}

// interestingSizes are the boundary values the adversarial caller
// model probes: zero, page boundaries ±1, Wasm-page boundaries ±1,
// powers of two near overflow, and typical real configurations.
var interestingSizes = []uint64{
	0, 1, 4095, 4096, 4097,
	65535, 65536, 65537,
	1 << 20, 1<<20 + 4096, 1<<20 + 1,
	1 << 30, 4 << 30, 6 << 30, 8 << 30,
	408 << 20,
	1 << 40, 1 << 45, 1 << 47,
	1 << 62, 1<<63 - 1, 1 << 63, ^uint64(0) - 4095, ^uint64(0),
}

var interestingCounts = []int{0, 1, 2, 15, 16, 100, 1 << 20, 1 << 32, 1 << 40}

var interestingKeys = []int{0, 1, 2, 15, 16, 100}

// check runs one input through fn, validating any produced layout and
// applying invariant 10 (budget fit) from the input side.
func check(fn LayoutFunc, cfg pool.Config, r *Report) {
	l, err := fn(cfg)
	if err != nil {
		r.Rejected++
		return
	}
	r.Checked++
	if verr := l.Validate(); verr != nil {
		r.Findings = append(r.Findings, Finding{Input: cfg, Layout: l, Violation: verr.Error()})
		return
	}
	if cfg.TotalBytes != 0 && l.TotalSlabBytes > cfg.TotalBytes {
		r.Findings = append(r.Findings, Finding{Input: cfg, Layout: l,
			Violation: fmt.Sprintf("invariant 10 violated: total %d exceeds budget %d", l.TotalSlabBytes, cfg.TotalBytes)})
	}
}

// Exhaustive sweeps the cross product of the boundary values — the
// deterministic part of the adversarial caller model.
func Exhaustive(fn LayoutFunc) *Report {
	r := &Report{}
	for _, maxMem := range interestingSizes {
		for _, guard := range []uint64{0, 4096, 1 << 20, 2 << 30, 4 << 30, 1 << 62} {
			for _, n := range interestingCounts {
				for _, keys := range interestingKeys {
					check(fn, pool.Config{
						NumSlots:       n,
						MaxMemoryBytes: maxMem,
						GuardBytes:     guard,
						Keys:           keys,
					}, r)
				}
			}
		}
	}
	// Expected-slot-bytes probes (invariant 7) and budget probes
	// (invariant 10).
	for _, exp := range interestingSizes {
		check(fn, pool.Config{NumSlots: 4, MaxMemoryBytes: 1 << 20, GuardBytes: 1 << 20, ExpectedSlotBytes: exp, Keys: 15}, r)
	}
	for _, budget := range interestingSizes {
		check(fn, pool.Config{NumSlots: 0, MaxMemoryBytes: 64 << 10, GuardBytes: 1 << 20, TotalBytes: budget, Keys: 15}, r)
		check(fn, pool.Config{NumSlots: 100, MaxMemoryBytes: 64 << 10, GuardBytes: 1 << 20, TotalBytes: budget, Keys: 15}, r)
	}
	return r
}

// Fuzz drives fn with n pseudo-random configurations drawn to stress
// alignment and overflow edges.
func Fuzz(fn LayoutFunc, n int, seed uint64) *Report {
	r := &Report{}
	rng := stats.NewRNG(seed)
	size := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return rng.Uint64() % (1 << 24) // small, arbitrary alignment
		case 1:
			return (rng.Uint64() % (1 << 18)) << 16 // wasm-page multiples
		case 2:
			return uint64(1) << (40 + rng.Intn(24)) // huge powers of two
		default:
			return rng.Uint64() // anything
		}
	}
	for i := 0; i < n; i++ {
		cfg := pool.Config{
			NumSlots:       rng.Intn(1 << 22),
			MaxMemoryBytes: size(),
			GuardBytes:     size(),
			Keys:           rng.Intn(20),
		}
		if rng.Intn(3) == 0 {
			cfg.ExpectedSlotBytes = size()
		}
		if rng.Intn(3) == 0 {
			cfg.NumSlots = 0
			cfg.TotalBytes = size()
		}
		check(fn, cfg, r)
	}
	return r
}

// Verify runs both the exhaustive sweep and the fuzzer, merging the
// reports — the full §5.2 analogue.
func Verify(fn LayoutFunc, fuzzN int, seed uint64) *Report {
	r := Exhaustive(fn)
	fz := Fuzz(fn, fuzzN, seed)
	r.Checked += fz.Checked
	r.Rejected += fz.Rejected
	r.Findings = append(r.Findings, fz.Findings...)
	return r
}

// Classify buckets findings by which invariant they violate, for
// reporting (the paper reports one arithmetic bug and four missing
// preconditions).
func Classify(findings []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range findings {
		key := "other"
		for _, inv := range []string{"invariant 10", "invariant 1", "invariant 2", "invariant 3",
			"invariant 4", "invariant 5", "invariant 6", "invariant 7", "invariant 8", "invariant 9"} {
			if len(f.Violation) >= len(inv) && f.Violation[:len(inv)] == inv {
				key = inv
				break
			}
		}
		out[key]++
	}
	return out
}
