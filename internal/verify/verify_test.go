package verify

import (
	"strings"
	"testing"

	"repro/internal/pool"
)

// TestLegacyHasFindings is the §5.2 result: the pre-verification layout
// computation violates invariants under adversarial inputs — including
// the saturating-arithmetic break of invariant 1 and the missing
// alignment preconditions (7/8/9).
func TestLegacyHasFindings(t *testing.T) {
	r := Verify(pool.ComputeLayoutLegacy, 3000, 42)
	if r.Sound() {
		t.Fatal("legacy computation verified clean; it should not")
	}
	classes := Classify(r.Findings)
	t.Logf("legacy: %d checked, %d rejected, findings by invariant: %v", r.Checked, r.Rejected, classes)
	if classes["invariant 1"] == 0 {
		t.Error("the saturating-add bug (invariant 1) was not found")
	}
	missing := 0
	for _, inv := range []string{"invariant 7", "invariant 8", "invariant 9"} {
		if classes[inv] > 0 {
			missing++
		}
	}
	if missing == 0 {
		t.Error("none of the missing alignment preconditions (7-9) were found")
	}
}

// TestFixedIsSound: the post-verification computation survives the same
// adversarial model with zero findings.
func TestFixedIsSound(t *testing.T) {
	r := Verify(pool.ComputeLayout, 5000, 42)
	if !r.Sound() {
		for i, f := range r.Findings {
			if i > 4 {
				break
			}
			t.Errorf("finding: %s", f)
		}
		t.Fatalf("fixed computation has %d findings", len(r.Findings))
	}
	if r.Checked == 0 {
		t.Fatal("verification accepted nothing; the check harness is broken")
	}
	t.Logf("fixed: %d layouts checked, %d adversarial inputs rejected", r.Checked, r.Rejected)
}

// TestFixedIsUseful guards against the trivial fix of rejecting
// everything: common real geometries must still be accepted.
func TestFixedIsUseful(t *testing.T) {
	good := []pool.Config{
		{NumSlots: 1000, MaxMemoryBytes: 4 << 30, GuardBytes: 4 << 30},
		{NumSlots: 1000, MaxMemoryBytes: 4 << 30, GuardBytes: 2 << 30, PreGuardBytes: 2 << 30},
		{NumSlots: 100, MaxMemoryBytes: 408 << 20, GuardBytes: 6<<30 - 408<<20, Keys: 15},
		{NumSlots: 16, MaxMemoryBytes: 1 << 30, GuardBytes: 7 << 30, Keys: 8},
	}
	for _, cfg := range good {
		if _, err := pool.ComputeLayout(cfg); err != nil {
			t.Errorf("rejected a sane config %+v: %v", cfg, err)
		}
	}
}

// TestReportString exercises the human-readable rendering.
func TestReportString(t *testing.T) {
	r := Verify(pool.ComputeLayoutLegacy, 500, 7)
	s := r.String()
	if !strings.Contains(s, "violations") {
		t.Errorf("report = %q", s)
	}
}

// TestFuzzDeterminism: the same seed explores the same inputs.
func TestFuzzDeterminism(t *testing.T) {
	a := Fuzz(pool.ComputeLayoutLegacy, 1000, 99)
	b := Fuzz(pool.ComputeLayoutLegacy, 1000, 99)
	if a.Checked != b.Checked || a.Rejected != b.Rejected || len(a.Findings) != len(b.Findings) {
		t.Errorf("non-deterministic fuzzing: %+v vs %+v", a, b)
	}
}
