package telemetry

import "testing"

// The hard budget for telemetry compiled in but disabled is one atomic
// add or less on any hot path. These benchmarks pin the primitive
// costs the instrumented packages pay.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCheck(b *testing.B) {
	SetEnabled(false)
	n := 0
	for i := 0; i < b.N; i++ {
		if Enabled() {
			n++
		}
	}
	_ = n
}

func BenchmarkDisabledSpan(b *testing.B) {
	tr := NewTracer(16)
	for i := 0; i < b.N; i++ {
		tr.Span("s", "c", PidVirtual, 0, 0, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBuckets(100, 2, 24))
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xFFFF))
	}
}
