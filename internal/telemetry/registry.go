package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// usable; obtain shared named instances from a Registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous level (queue depth, worker count).
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// Histogram is a fixed-bucket distribution: bucket i counts
// observations v <= bounds[i], with one extra overflow bucket above the
// last bound. Buckets are fixed at creation so concurrent observation
// is lock-free and snapshots are deterministic.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. It panics on empty or unsorted bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExpBuckets returns n ascending bounds starting at first and growing
// by factor — the usual shape for latency histograms.
func ExpBuckets(first, factor float64, n int) []float64 {
	if first <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: bad ExpBuckets parameters")
	}
	bs := make([]float64, n)
	v := first
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Reset zeroes counts and sum.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// inside the bucket where the target rank falls. Values in the overflow
// bucket report the last bound (the histogram cannot see beyond it).
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(target-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds named metrics. Lookup is get-or-create and
// concurrency-safe; callers on hot paths should cache the returned
// pointer rather than re-resolving the name.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls return the existing histogram
// regardless of bounds (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, NewHistogram(bounds))
	return v.(*Histogram)
}

// Reset zeroes every registered metric (metrics stay registered, so
// cached pointers remain valid).
func (r *Registry) Reset() {
	r.counters.Range(func(_, v any) bool { v.(*Counter).Reset(); return true })
	r.gauges.Range(func(_, v any) bool { v.(*Gauge).Reset(); return true })
	r.hists.Range(func(_, v any) bool { v.(*Histogram).Reset(); return true })
}

// Bucket is one histogram bucket in a snapshot. LE is the bucket's
// upper bound rendered as a string ("+Inf" for the overflow bucket) so
// the JSON stays valid and byte-stable.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram. Only
// non-empty buckets are listed.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry. Maps marshal with
// sorted keys, so JSON output is byte-stable for equal metric values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.counters.Range(func(k, v any) bool {
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		s.Histograms[k.(string)] = v.(*Histogram).snapshot()
		return true
	})
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		hs.Buckets = append(hs.Buckets, Bucket{LE: le, Count: n})
	}
	return hs
}

// JSON renders the snapshot as indented JSON with a trailing newline.
// encoding/json sorts map keys, so equal values produce equal bytes.
func (s Snapshot) JSON() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of numbers; marshal cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// Text renders the snapshot as sorted "name value" lines.
func (s Snapshot) Text() string {
	var lines []string
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", k, h.Count),
			fmt.Sprintf("%s.sum %g", k, h.Sum),
			fmt.Sprintf("%s.p50 %g", k, h.P50),
			fmt.Sprintf("%s.p95 %g", k, h.P95),
			fmt.Sprintf("%s.p99 %g", k, h.P99))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
