// Package telemetry is the deterministic observability layer shared by
// the runtime, the simulators, and the experiment engine: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms) whose
// snapshots render to sorted-key JSON/text so output is byte-stable, an
// event tracer recording spans and instants into a ring buffer and
// exporting Chrome trace-event JSON (chrome://tracing), and opt-in
// profiling hooks (net/http/pprof plus an expvar bridge).
//
// Design constraints, in order:
//
//  1. Telemetry never touches the golden output path. No simulated cost
//     is ever charged from here; enabling or disabling telemetry leaves
//     every figure and table byte-identical.
//  2. Hot-path cost with telemetry compiled in but disabled is a single
//     atomic load or add, or less. The emulator's per-instruction
//     dispatch loop and the cache hierarchy's per-access counters stay
//     plain single-owner fields; they are published into the registry
//     at run boundaries instead of paying an atomic per event (see
//     cache.Hierarchy.PublishTo and cpu.Machine.Run).
//  3. Virtual time is first-class: the FaaS simulator and the emulator
//     trace in virtual nanoseconds, the experiment engine in wall time,
//     on separate trace tracks (PidVirtual / PidWall).
//
// Low-frequency counters (module-cache hits, compiles, slot lifecycle
// events) are always live — they cost the same atomic add their
// pre-registry versions did. Per-run collection of machine and
// hierarchy statistics is gated on Enabled, and tracing on
// Trace.Enabled, so the default-off configuration does no extra work.
package telemetry

import "sync/atomic"

// enabled gates the per-run collection paths (machine-stat publishing,
// gauge updates, histogram observations). It does not gate plain
// counters, which are single atomic adds regardless.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide. Off by
// default.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on. The check is a
// single atomic load, cheap enough for per-run (not per-instruction)
// guards.
func Enabled() bool { return enabled.Load() }

// Default is the process-wide registry every instrumented package
// publishes into.
var Default = NewRegistry()

// Trace is the process-wide tracer, disabled until Trace.Enable.
var Trace = NewTracer(DefaultTraceCap)
