package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter lookup did not return the same instance")
	}
	g := r.Gauge("q")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.Reset()
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
	if r.Counter("a.b") != c {
		t.Fatal("Reset dropped registered metrics")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5556 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// Overflow observations report the last bound.
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q100 = %g, want 1000 (last bound)", q)
	}
	// Median rank 2.5 of 5 falls in the (10,100] bucket.
	if q := h.Quantile(0.5); q <= 10 || q > 100 {
		t.Fatalf("q50 = %g, want inside (10,100]", q)
	}
	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 100 observations uniform over one bucket (0,100]: the quantile
	// interpolates linearly, so q0.25 ≈ 25.
	h := NewHistogram([]float64{100, 200})
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	if q := h.Quantile(0.25); math.Abs(q-25) > 1e-9 {
		t.Fatalf("q25 = %g, want 25", q)
	}
}

func TestExpBuckets(t *testing.T) {
	bs := ExpBuckets(1000, 2, 4)
	want := []float64{1000, 2000, 4000, 8000}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", bs, want)
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; output must not care.
		r.Counter("z").Add(1)
		r.Counter("a").Add(2)
		r.Gauge("m").Set(-3)
		h := r.Histogram("lat", []float64{10, 100})
		h.Observe(5)
		h.Observe(50)
		return r
	}
	r1, r2 := build(), build()
	j1, j2 := r1.Snapshot().JSON(), r2.Snapshot().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", j1, j2)
	}
	var parsed Snapshot
	if err := json.Unmarshal(j1, &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if parsed.Counters["a"] != 2 || parsed.Counters["z"] != 1 || parsed.Gauges["m"] != -3 {
		t.Fatalf("round-trip lost values: %+v", parsed)
	}
	if parsed.Histograms["lat"].Count != 2 {
		t.Fatalf("round-trip lost histogram: %+v", parsed.Histograms)
	}
	if t1, t2 := r1.Snapshot().Text(), r2.Snapshot().Text(); t1 != t2 {
		t.Fatalf("text snapshots differ:\n%s\nvs\n%s", t1, t2)
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{9})
	if h1 != h2 {
		t.Fatal("second registration returned a different histogram")
	}
}
