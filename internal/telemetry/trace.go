package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace-track process ids. Chrome's trace viewer groups events by pid;
// virtual-time events (faas simulator, emulator) and wall-time events
// (experiment engine, compiles) get separate tracks so their clocks are
// never mixed on one timeline.
const (
	PidVirtual = 1
	PidWall    = 2
)

// DefaultTraceCap is the default ring-buffer capacity. When a run emits
// more events, the oldest are overwritten and Dropped reports how many.
const DefaultTraceCap = 1 << 16

// Event is one trace record. TS and Dur are nanoseconds on the track's
// clock: virtual sim-time for PidVirtual, Tracer.Now wall time for
// PidWall.
type Event struct {
	Name  string
	Cat   string
	Phase byte // 'X' span, 'i' instant
	TS    float64
	Dur   float64
	PID   int
	TID   int
}

// Tracer records events into a fixed-capacity ring buffer. Emission is
// gated on Enabled with a single atomic load, so a disabled tracer
// costs nothing on instrumented paths.
type Tracer struct {
	enabled atomic.Bool

	mu      sync.Mutex
	buf     []Event
	cap     int
	next    int // ring write position once the buffer is full
	dropped uint64
	start   time.Time
}

// NewTracer returns a disabled tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Enable clears the buffer, restarts the wall clock, and turns
// recording on.
func (t *Tracer) Enable() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.dropped = 0
	t.start = time.Now()
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns recording off; buffered events stay readable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer records events (one atomic load).
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Now returns wall-clock nanoseconds since Enable, the timestamp base
// for PidWall events.
func (t *Tracer) Now() float64 {
	t.mu.Lock()
	start := t.start
	t.mu.Unlock()
	return float64(time.Since(start))
}

// Span records a completed span. No-op while disabled.
func (t *Tracer) Span(name, cat string, pid, tid int, startNs, durNs float64) {
	if !t.enabled.Load() {
		return
	}
	t.emit(Event{Name: name, Cat: cat, Phase: 'X', TS: startNs, Dur: durNs, PID: pid, TID: tid})
}

// Instant records a point event. No-op while disabled.
func (t *Tracer) Instant(name, cat string, pid, tid int, tsNs float64) {
	if !t.enabled.Load() {
		return
	}
	t.emit(Event{Name: name, Cat: cat, Phase: 'i', TS: tsNs, PID: pid, TID: tid})
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten since Enable.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonEvent is the Chrome trace-event wire format; ts and dur are in
// microseconds per the spec.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteJSON exports the buffered events as a Chrome trace-event file
// loadable in chrome://tracing (or ui.perfetto.dev). Track-naming
// metadata events label the virtual- and wall-time processes.
func (t *Tracer) WriteJSON(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents     []jsonEvent `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents,
		jsonEvent{Name: "process_name", Ph: "M", Pid: PidVirtual,
			Args: map[string]string{"name": "virtual time (simulators)"}},
		jsonEvent{Name: "process_name", Ph: "M", Pid: PidWall,
			Args: map[string]string{"name": "wall time (experiment engine)"}},
	)
	for _, ev := range evs {
		je := jsonEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Phase),
			TS: ev.TS / 1e3, Pid: ev.PID, Tid: ev.TID,
		}
		if ev.Phase == 'X' {
			je.Dur = ev.Dur / 1e3
		}
		if ev.Phase == 'i' {
			je.S = "t" // thread-scoped instant
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
