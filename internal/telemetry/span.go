package telemetry

import (
	"sync"
	"sync/atomic"
)

// Phase attribution: every sandboxed invocation decomposes into a fixed
// set of phases — where each nanosecond of its latency went. The same
// phase vocabulary covers both clocks: internal/faas attributes virtual
// nanoseconds per simulated request, internal/server attributes wall
// nanoseconds per HTTP request. Phase-sum conservation is the layer's
// invariant: for every recorded request, the phase durations sum to the
// request's total latency (within float rounding) — no nanosecond is
// double-counted or lost.

// Phase is one fixed latency phase of a sandboxed invocation.
type Phase uint8

// The fixed phases, in request-lifecycle order.
const (
	// PhaseIO is off-CPU waiting on a timer or simulated IO completion
	// (the FaaS simulator's Poisson IO delay, retry backoff windows).
	PhaseIO Phase = iota
	// PhaseQueue is time spent ready but waiting for a CPU or worker:
	// the shard queue on the serving path, the per-process ready queue
	// in the simulator.
	PhaseQueue
	// PhaseAdmission is the admission-control decision: validation,
	// breaker and in-flight checks, shard selection.
	PhaseAdmission
	// PhasePlacement is cold-start and slot placement: backend slot
	// allocation, instance layout, lifecycle init charges.
	PhasePlacement
	// PhaseTransitionIn is the sandbox-entry share of the crossing.
	PhaseTransitionIn
	// PhaseExec is kernel execution inside the sandbox.
	PhaseExec
	// PhaseTransitionOut is the sandbox-exit share of the crossing.
	PhaseTransitionOut
	// PhaseMarshal is result marshalling: delivering the worker's
	// result back and rendering the response.
	PhaseMarshal

	// NumPhases is the number of fixed phases.
	NumPhases = int(PhaseMarshal) + 1
)

// phaseNames index by Phase; these are the <name> part of the
// serve.phase.<name> metric keys and the flight-recorder JSON keys.
var phaseNames = [NumPhases]string{
	"io", "queue", "admission", "placement",
	"transition_in", "exec", "transition_out", "marshal",
}

// String returns the phase's metric/JSON name.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseNames returns the phase names in phase order.
func PhaseNames() [NumPhases]string { return phaseNames }

// spansEnabled gates phase recording process-wide, independent of the
// metrics registry: spans cost a fixed-size value struct when on and a
// single predictable branch when off.
var spansEnabled atomic.Bool

// SetSpansEnabled turns per-request phase attribution on or off
// process-wide. Off by default.
func SetSpansEnabled(on bool) { spansEnabled.Store(on) }

// SpansEnabled reports whether phase attribution is on (one atomic
// load; resolve it once per run or request, not per phase).
func SpansEnabled() bool { return spansEnabled.Load() }

// Span accumulates one request's per-phase durations. It is a plain
// value — embed it in a request struct and no allocation ever happens,
// enabled or not. All methods are single-owner: one goroutine owns the
// span at any time (ownership may move with the request, e.g. from an
// HTTP handler to a worker and back, as long as the handoff
// synchronizes).
//
// Durations are in nanoseconds of whichever clock the caller uses —
// virtual for simulators, wall for servers — and a span never mixes
// clocks. When the span is off (constructed while SpansEnabled was
// false), Add is a no-op behind one predictable branch.
type Span struct {
	on   bool
	durs [NumPhases]float64
}

// NewSpan returns a span that records iff spans are enabled
// process-wide at this moment.
func NewSpan() Span { return Span{on: spansEnabled.Load()} }

// On reports whether the span records.
func (s *Span) On() bool { return s.on }

// Add attributes ns nanoseconds to phase p. No-op when the span is off
// or ns <= 0.
func (s *Span) Add(p Phase, ns float64) {
	if !s.on || ns <= 0 {
		return
	}
	s.durs[p] += ns
}

// Get returns the accumulated nanoseconds of phase p.
func (s *Span) Get(p Phase) float64 { return s.durs[p] }

// Total returns the sum over all phases.
func (s *Span) Total() float64 {
	var t float64
	for _, d := range s.durs {
		t += d
	}
	return t
}

// Durations returns a copy of the per-phase nanoseconds.
func (s *Span) Durations() [NumPhases]float64 { return s.durs }

// PhaseMap renders the non-zero phases as a name → nanoseconds map
// (for JSON payloads). Allocates; call only on recording paths.
func (s *Span) PhaseMap() map[string]float64 {
	m := make(map[string]float64, NumPhases)
	for p, d := range s.durs {
		if d > 0 {
			m[phaseNames[p]] = d
		}
	}
	return m
}

// PhaseRecorder publishes completed spans as per-phase histograms under
// <prefix>.<name> (plus <prefix>.total), caching the histogram pointers
// so recording pays one Observe per non-zero phase and no map lookups.
type PhaseRecorder struct {
	hists [NumPhases]*Histogram
	total *Histogram
}

// NewPhaseRecorder resolves the phase histograms in reg under prefix
// (canonically "serve.phase" for the serving path).
func NewPhaseRecorder(reg *Registry, prefix string) *PhaseRecorder {
	// 100 ns .. ~13 s: wide enough for wall latencies of queued
	// requests and fine enough for sub-µs transition shares.
	bounds := ExpBuckets(100, 2, 27)
	r := &PhaseRecorder{total: reg.Histogram(prefix+".total", bounds)}
	for p := 0; p < NumPhases; p++ {
		r.hists[p] = reg.Histogram(prefix+"."+phaseNames[p], bounds)
	}
	return r
}

// Record observes every non-zero phase of a finished span, plus the
// span total. No-op for spans that are off.
func (r *PhaseRecorder) Record(s *Span) {
	if !s.on {
		return
	}
	var total float64
	for p, d := range s.durs {
		if d > 0 {
			r.hists[p].Observe(d)
			total += d
		}
	}
	r.total.Observe(total)
}

// RequestRecord is one fully-attributed request in the flight
// recorder: identity, outcome, and the per-phase breakdown.
type RequestRecord struct {
	TraceID string `json:"trace_id"`
	Kernel  string `json:"kernel,omitempty"`
	Backend string `json:"backend,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	Status  int    `json:"status"`
	Shard   int    `json:"shard"`
	Worker  int    `json:"worker"`

	// StartNs is the request's start on the recorder owner's clock
	// (wall nanoseconds since server start for the serving path).
	StartNs float64 `json:"start_ns"`
	// TotalNs is the independently measured end-to-end latency; the
	// phase durations sum to it within rounding.
	TotalNs float64            `json:"total_ns"`
	Phases  map[string]float64 `json:"phases"`
}

// FlightRecorder keeps the most-recent-N and slowest-N fully-attributed
// requests, for the /debug/requests endpoint. Recording is
// mutex-guarded and O(N) worst case with N small (the default 16), so
// it sits comfortably on a per-request path that is already doing
// network IO.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	recent  []RequestRecord // ring buffer
	next    int             // ring write position once full
	slowest []RequestRecord // descending TotalNs, at most cap
	seen    uint64
}

// DefaultFlightCap is how many requests each FlightRecorder list holds
// when NewFlightRecorder is given a non-positive capacity.
const DefaultFlightCap = 16

// NewFlightRecorder returns a recorder keeping n recent and n slowest
// requests.
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = DefaultFlightCap
	}
	return &FlightRecorder{cap: n}
}

// Record adds one finished request.
func (f *FlightRecorder) Record(rec RequestRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen++
	if len(f.recent) < f.cap {
		f.recent = append(f.recent, rec)
	} else {
		f.recent[f.next] = rec
		f.next = (f.next + 1) % f.cap
	}
	// Insertion into the slowest list: find the spot, shift, drop the
	// tail. len(slowest) <= cap, so this is a handful of copies.
	i := len(f.slowest)
	for i > 0 && f.slowest[i-1].TotalNs < rec.TotalNs {
		i--
	}
	if i >= f.cap {
		return
	}
	if len(f.slowest) < f.cap {
		f.slowest = append(f.slowest, RequestRecord{})
	}
	copy(f.slowest[i+1:], f.slowest[i:])
	f.slowest[i] = rec
}

// FlightSnapshot is a point-in-time copy of the recorder.
type FlightSnapshot struct {
	// Seen counts every request recorded since creation (recent and
	// slowest are windows onto this stream).
	Seen uint64 `json:"seen"`
	// Recent lists the newest requests, most recent first.
	Recent []RequestRecord `json:"recent"`
	// Slowest lists the slowest requests, slowest first.
	Slowest []RequestRecord `json:"slowest"`
}

// Snapshot copies the recorder's current state.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FlightSnapshot{Seen: f.seen}
	// Ring order is oldest-first from next; emit newest-first.
	n := len(f.recent)
	snap.Recent = make([]RequestRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (f.next + n - 1 - i) % n
		snap.Recent = append(snap.Recent, f.recent[idx])
	}
	snap.Slowest = append([]RequestRecord(nil), f.slowest...)
	return snap
}
