package telemetry

import "testing"

// TestHistogramQuantileEmpty: an empty histogram reports 0 for every
// quantile rather than interpolating garbage.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram count/sum = %d/%g", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileSingle: with one observation the estimate
// interpolates inside that observation's bucket — the rank target q·1
// lands q of the way from the bucket's lower to its upper bound.
func TestHistogramQuantileSingle(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(5) // bucket (0, 10]
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, // halfway into (0, 10]
		{1, 10},  // full rank = bucket's upper bound
		{0.1, 1}, // a tenth of the way
		{-1, 0},  // clamps to q=0 → rank 0 inside the first bucket
		{2, 10},  // clamps to q=1
	} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("single-observation Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestHistogramBucketBound: a value exactly on a bucket's upper bound
// counts in that bucket (v <= bound), not the next one.
func TestHistogramBucketBound(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(10)  // exactly the first bound → bucket (0, 10]
	h.Observe(100) // exactly the last bound → bucket (10, 100], not overflow
	s := h.snapshot()
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want one count in each bound's bucket", s.Buckets)
	}
	if s.Buckets[0].LE != "10" || s.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v, want le=10 count=1", s.Buckets[0])
	}
	if s.Buckets[1].LE != "100" || s.Buckets[1].Count != 1 {
		t.Errorf("bucket 1 = %+v, want le=100 count=1", s.Buckets[1])
	}
	// With both observations on bounds, the top quantile is the last
	// finite bound.
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want 100", got)
	}
}

// TestHistogramOverflowClamp: observations beyond the last bound land
// in the overflow bucket and every quantile that falls there clamps to
// the last finite bound — the histogram cannot resolve beyond it.
func TestHistogramOverflowClamp(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(1e9)
	h.Observe(2e9)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("overflow-only Quantile(%g) = %g, want clamp to 100", q, got)
		}
	}
	s := h.snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].LE != "+Inf" || s.Buckets[0].Count != 2 {
		t.Errorf("overflow snapshot buckets = %+v, want one +Inf bucket with 2", s.Buckets)
	}
	if h.Sum() != 3e9 {
		t.Errorf("overflow sum = %g, want 3e9", h.Sum())
	}

	// Mixed: one in-range observation plus overflow — low quantiles see
	// the finite bucket, high quantiles clamp.
	m := NewHistogram([]float64{10, 100})
	m.Observe(5)
	m.Observe(1e9)
	if got := m.Quantile(0.25); got != 5 {
		t.Errorf("mixed Quantile(0.25) = %g, want 5", got)
	}
	if got := m.Quantile(0.99); got != 100 {
		t.Errorf("mixed Quantile(0.99) = %g, want clamp to 100", got)
	}
}
