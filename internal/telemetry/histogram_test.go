package telemetry

import (
	"math"
	"testing"
)

// TestHistogramQuantileEmpty: an empty histogram reports 0 for every
// quantile rather than interpolating garbage.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram count/sum = %d/%g", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileSingle: with one observation the estimate
// interpolates inside that observation's bucket — the rank target q·1
// lands q of the way from the bucket's lower to its upper bound.
func TestHistogramQuantileSingle(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(5) // bucket (0, 10]
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, // halfway into (0, 10]
		{1, 10},  // full rank = bucket's upper bound
		{0.1, 1}, // a tenth of the way
		{-1, 0},  // clamps to q=0 → rank 0 inside the first bucket
		{2, 10},  // clamps to q=1
	} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("single-observation Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileEmptyInterior: empty buckets between the
// cumulative rank and the target must not absorb the quantile. When
// the target equals the running cumulative count, every empty bucket
// satisfies cum+n >= target — the `n > 0` guard must skip them (a
// naive interpolation would divide by zero there) so the estimate
// lands in the next populated bucket.
func TestHistogramQuantileEmptyInterior(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50})
	for i := 0; i < 5; i++ {
		h.Observe(45) // bucket (40, 50]; all four lower buckets stay empty
	}
	// q=0 → target 0 = cum at every leading empty bucket: each matches
	// cum+0 >= 0 and must be skipped, landing rank 0 exactly on the
	// populated bucket's lower bound rather than interpolating 0/0.
	if got := h.Quantile(0); got != 40 {
		t.Errorf("Quantile(0) = %g, want 40 (skip empty buckets to the populated one)", got)
	}
	// Interior gap with data on both sides: the rank-boundary quantile
	// resolves in the bucket that completes the rank, and ranks past it
	// skip the empty middle.
	for i := 0; i < 5; i++ {
		h.Observe(5) // bucket (0, 10]; (10,20], (20,30], (30,40] still empty
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("Quantile(0.5) = %g, want 10 (rank boundary belongs to the lower bucket)", got)
	}
	// target = 0.6·10 = 6 crosses the three empty interior buckets and
	// interpolates 1/5 of the way into (40, 50].
	if got := h.Quantile(0.6); math.Abs(got-42) > 1e-9 {
		t.Errorf("Quantile(0.6) = %g, want 42", got)
	}
	if got := h.Quantile(0.9); math.Abs(got-48) > 1e-9 {
		t.Errorf("Quantile(0.9) = %g, want 48", got)
	}
}

// TestHistogramQuantileSingleBucket: the q=0 and q=1 extremes on a
// one-bucket histogram pin the interpolation endpoints — rank 0 is the
// bucket's implicit lower bound 0, full rank its upper bound.
func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(7)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0 (bucket's implicit lower bound)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %g, want 10 (bucket's upper bound)", got)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
}

// TestHistogramBucketBound: a value exactly on a bucket's upper bound
// counts in that bucket (v <= bound), not the next one.
func TestHistogramBucketBound(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(10)  // exactly the first bound → bucket (0, 10]
	h.Observe(100) // exactly the last bound → bucket (10, 100], not overflow
	s := h.snapshot()
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want one count in each bound's bucket", s.Buckets)
	}
	if s.Buckets[0].LE != "10" || s.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v, want le=10 count=1", s.Buckets[0])
	}
	if s.Buckets[1].LE != "100" || s.Buckets[1].Count != 1 {
		t.Errorf("bucket 1 = %+v, want le=100 count=1", s.Buckets[1])
	}
	// With both observations on bounds, the top quantile is the last
	// finite bound.
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want 100", got)
	}
}

// TestHistogramOverflowClamp: observations beyond the last bound land
// in the overflow bucket and every quantile that falls there clamps to
// the last finite bound — the histogram cannot resolve beyond it.
func TestHistogramOverflowClamp(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(1e9)
	h.Observe(2e9)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("overflow-only Quantile(%g) = %g, want clamp to 100", q, got)
		}
	}
	s := h.snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].LE != "+Inf" || s.Buckets[0].Count != 2 {
		t.Errorf("overflow snapshot buckets = %+v, want one +Inf bucket with 2", s.Buckets)
	}
	if h.Sum() != 3e9 {
		t.Errorf("overflow sum = %g, want 3e9", h.Sum())
	}

	// Mixed: one in-range observation plus overflow — low quantiles see
	// the finite bucket, high quantiles clamp.
	m := NewHistogram([]float64{10, 100})
	m.Observe(5)
	m.Observe(1e9)
	if got := m.Quantile(0.25); got != 5 {
		t.Errorf("mixed Quantile(0.25) = %g, want 5", got)
	}
	if got := m.Quantile(0.99); got != 100 {
		t.Errorf("mixed Quantile(0.99) = %g, want clamp to 100", got)
	}
}
