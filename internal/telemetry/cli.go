package telemetry

import (
	"flag"
	"fmt"
	"os"
)

// CLI bundles the telemetry command-line surface shared by cmd/benchtab,
// cmd/faassim, and cmd/sfic: -metrics, -trace, and -pprof.
type CLI struct {
	Metrics string // snapshot path, "-" for stdout
	Trace   string // Chrome trace-event output path
	Pprof   string // pprof/expvar listen address

	stopPprof func() error
}

// RegisterFlags declares the telemetry flags on fs and returns the
// holder to Start before the run and Finish after it.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Metrics, "metrics", "", `write a metrics snapshot as JSON to this path ("-" = stdout)`)
	fs.StringVar(&c.Trace, "trace", "", "record a Chrome trace-event file here (load in chrome://tracing)")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	return c
}

// Active reports whether any telemetry flag was set.
func (c *CLI) Active() bool { return c.Metrics != "" || c.Trace != "" || c.Pprof != "" }

// Start enables the telemetry the flags ask for. Call after flag.Parse.
func (c *CLI) Start() error {
	if c.Active() {
		SetEnabled(true)
	}
	if c.Trace != "" {
		Trace.Enable()
	}
	if c.Pprof != "" {
		addr, stop, err := StartProfiling(c.Pprof, Default)
		if err != nil {
			return fmt.Errorf("telemetry: starting pprof server: %w", err)
		}
		c.stopPprof = stop
		fmt.Fprintf(os.Stderr, "[pprof serving on http://%s/debug/pprof]\n", addr)
	}
	return nil
}

// Finish writes the requested outputs: the trace file and the metrics
// snapshot. Call once at the end of a successful run.
func (c *CLI) Finish() error {
	if c.Trace != "" {
		Trace.Disable()
		f, err := os.Create(c.Trace)
		if err != nil {
			return err
		}
		if err := Trace.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if n := Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "[trace ring overflowed: %d oldest events dropped]\n", n)
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", c.Trace)
	}
	if c.Metrics != "" {
		// A trace-enabled run's snapshot records how much of the trace
		// survived the ring buffer, so a truncated trace is never read
		// as complete next to a clean-looking metrics dump.
		if c.Trace != "" {
			Default.Gauge("trace.dropped").Set(int64(Trace.Dropped()))
		}
		data := Default.Snapshot().JSON()
		if c.Metrics == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(c.Metrics, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[wrote %s]\n", c.Metrics)
		}
	}
	if c.stopPprof != nil {
		return c.stopPprof()
	}
	return nil
}
