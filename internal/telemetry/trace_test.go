package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer(8)
	tr.Span("s", "c", PidVirtual, 0, 0, 10)
	tr.Instant("i", "c", PidVirtual, 0, 5)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}
}

func TestTracerSpanAndInstant(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	tr.Span("epoch", "faas", PidVirtual, 3, 1000, 500)
	tr.Instant("switch", "faas", PidVirtual, 3, 1200)
	tr.Disable()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "epoch" || evs[0].Phase != 'X' || evs[0].TS != 1000 || evs[0].Dur != 500 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Phase != 'i' || evs[1].TID != 3 {
		t.Fatalf("instant event = %+v", evs[1])
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Instant("e", "c", PidWall, i, float64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// Oldest were overwritten: the survivors are 6..9 in order.
	for i, ev := range evs {
		if ev.TID != 6+i {
			t.Fatalf("event %d has tid %d, want %d", i, ev.TID, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// Enable resets the ring.
	tr.Enable()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Enable did not reset the ring")
	}
}

// TestWriteJSONChromeFormat pins the exported shape: a traceEvents
// array whose entries chrome://tracing accepts (name/ph/ts/pid/tid,
// ts in microseconds), with metadata naming the two clock tracks.
func TestWriteJSONChromeFormat(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	tr.Span("cell", "exp", PidWall, 1, 2000, 1000) // 2 µs start, 1 µs long
	tr.Disable()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(out.TraceEvents) != 3 { // 2 metadata + 1 span
		t.Fatalf("got %d events, want 3", len(out.TraceEvents))
	}
	meta := out.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Fatalf("first event is not track metadata: %v", meta)
	}
	span := out.TraceEvents[2]
	if span["name"] != "cell" || span["ph"] != "X" {
		t.Fatalf("span event = %v", span)
	}
	if ts := span["ts"].(float64); ts != 2 {
		t.Fatalf("ts = %v µs, want 2", ts)
	}
	if dur := span["dur"].(float64); dur != 1 {
		t.Fatalf("dur = %v µs, want 1", dur)
	}
}
