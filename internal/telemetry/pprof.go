package telemetry

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"sync"
)

var expvarOnce sync.Once

// StartProfiling serves the Go profiling endpoints (/debug/pprof) and
// the expvar page (/debug/vars, with the registry's snapshot published
// as "telemetry") on addr. It returns the bound address (useful with
// ":0") and a shutdown function. Opt-in only: nothing listens unless a
// command was started with -pprof.
func StartProfiling(addr string, r *Registry) (string, func() error, error) {
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return r.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return ln.Addr().String(), srv.Close, nil
}
