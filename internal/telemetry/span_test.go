package telemetry

import (
	"math"
	"testing"
)

func TestSpanDisabledIsInert(t *testing.T) {
	SetSpansEnabled(false)
	s := NewSpan()
	if s.On() {
		t.Fatal("span on while spans disabled")
	}
	s.Add(PhaseExec, 100)
	if s.Total() != 0 {
		t.Fatalf("disabled span accumulated %g ns", s.Total())
	}
}

// TestSpanDisabledZeroAlloc pins the acceptance bar: with spans
// disabled, the whole per-request span path — construction, phase
// attribution, recording — allocates zero bytes.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	SetSpansEnabled(false)
	reg := NewRegistry()
	rec := NewPhaseRecorder(reg, "test.phase")
	fr := NewFlightRecorder(4)
	allocs := testing.AllocsPerRun(1000, func() {
		s := NewSpan()
		s.Add(PhaseQueue, 10)
		s.Add(PhaseExec, 20)
		rec.Record(&s)
		if s.On() {
			fr.Record(RequestRecord{TotalNs: s.Total(), Phases: s.PhaseMap()})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f bytes/request, want 0", allocs)
	}
}

func TestSpanAccumulatesAndConserves(t *testing.T) {
	SetSpansEnabled(true)
	defer SetSpansEnabled(false)
	s := NewSpan()
	if !s.On() {
		t.Fatal("span off while spans enabled")
	}
	s.Add(PhaseQueue, 5)
	s.Add(PhaseTransitionIn, 1.5)
	s.Add(PhaseExec, 10)
	s.Add(PhaseExec, 2)
	s.Add(PhaseTransitionOut, 1.5)
	s.Add(PhaseMarshal, 0) // zero is dropped
	s.Add(PhaseIO, -3)     // negative is dropped
	if got := s.Get(PhaseExec); got != 12 {
		t.Fatalf("exec = %g, want 12", got)
	}
	if got, want := s.Total(), 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("total = %g, want %g", got, want)
	}
	m := s.PhaseMap()
	if len(m) != 4 {
		t.Fatalf("phase map has %d entries, want 4: %v", len(m), m)
	}
	var sum float64
	for _, v := range m {
		sum += v
	}
	if math.Abs(sum-s.Total()) > 1e-12 {
		t.Fatalf("phase map sum %g != total %g", sum, s.Total())
	}
}

func TestPhaseRecorderPublishes(t *testing.T) {
	SetSpansEnabled(true)
	defer SetSpansEnabled(false)
	reg := NewRegistry()
	rec := NewPhaseRecorder(reg, "serve.phase")
	s := NewSpan()
	s.Add(PhaseQueue, 1000)
	s.Add(PhaseExec, 5000)
	rec.Record(&s)
	snap := reg.Snapshot()
	if got := snap.Histograms["serve.phase.queue"].Count; got != 1 {
		t.Fatalf("serve.phase.queue count = %d, want 1", got)
	}
	if got := snap.Histograms["serve.phase.exec"].Sum; got != 5000 {
		t.Fatalf("serve.phase.exec sum = %g, want 5000", got)
	}
	if got := snap.Histograms["serve.phase.total"].Sum; got != 6000 {
		t.Fatalf("serve.phase.total sum = %g, want 6000", got)
	}
	// A disabled span leaves the recorder untouched.
	SetSpansEnabled(false)
	off := NewSpan()
	off.Add(PhaseExec, 123)
	rec.Record(&off)
	if got := reg.Snapshot().Histograms["serve.phase.exec"].Count; got != 1 {
		t.Fatalf("disabled span was recorded (count %d)", got)
	}
}

func TestFlightRecorderWindows(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		fr.Record(RequestRecord{
			TraceID: string(rune('a' + i - 1)),
			TotalNs: float64(i * 100),
		})
	}
	snap := fr.Snapshot()
	if snap.Seen != 5 {
		t.Fatalf("seen = %d, want 5", snap.Seen)
	}
	// Most recent first: e, d, c.
	if len(snap.Recent) != 3 || snap.Recent[0].TraceID != "e" || snap.Recent[2].TraceID != "c" {
		t.Fatalf("recent = %+v", snap.Recent)
	}
	// Slowest first: e (500), d (400), c (300).
	if len(snap.Slowest) != 3 || snap.Slowest[0].TotalNs != 500 || snap.Slowest[2].TotalNs != 300 {
		t.Fatalf("slowest = %+v", snap.Slowest)
	}
	// A new slow outlier displaces the tail of the slowest list but only
	// the head of recency.
	fr.Record(RequestRecord{TraceID: "z", TotalNs: 1000})
	snap = fr.Snapshot()
	if snap.Slowest[0].TraceID != "z" || snap.Slowest[1].TotalNs != 500 {
		t.Fatalf("slowest after outlier = %+v", snap.Slowest)
	}
	if snap.Recent[0].TraceID != "z" {
		t.Fatalf("recent after outlier = %+v", snap.Recent)
	}
}

func TestPhaseNamesCoverAllPhases(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		if name == "" || name == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
}
