package mte

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPointerTagRoundtrip(t *testing.T) {
	f := func(ptr uint64, tag uint8) bool {
		p := WithTag(ptr, tag)
		return PointerTag(p) == tag&0xF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagCheck(t *testing.T) {
	ts := NewTagStore()
	ts.TagRange(0x1000, 0x100, 5)

	ok := WithTag(0x1010, 5)
	if err := ts.Check(ok, 16); err != nil {
		t.Fatalf("matching tag rejected: %v", err)
	}
	bad := WithTag(0x1010, 6)
	var fault *TagFault
	if err := ts.Check(bad, 16); !errors.As(err, &fault) {
		t.Fatalf("mismatched tag accepted")
	}
	// Crossing into an untagged granule faults.
	edge := WithTag(0x10f8, 5)
	if err := ts.Check(edge, 16); err == nil {
		t.Fatal("access crossing the tagged range accepted")
	}
}

func TestStripingWithTags(t *testing.T) {
	// Two adjacent 1 KiB "linear memories" with different colors: a
	// pointer colored for the first cannot touch the second.
	ts := NewTagStore()
	ts.TagRange(0, 1024, 1)
	ts.TagRange(1024, 1024, 2)
	p := WithTag(1020, 1)
	if err := ts.Check(p, 16); err == nil {
		t.Fatal("cross-color access accepted")
	}
	if err := ts.Check(WithTag(0, 1), 1024); err != nil {
		t.Fatalf("own-color full-range access rejected: %v", err)
	}
}

// TestObservation1 reproduces §7: initializing a 64 KiB memory costs
// ≈79 µs without MTE and ≈2,182 µs with user-level tagging.
func TestObservation1(t *testing.T) {
	const size = 65536
	plain := NewAllocator(false)
	plain.InitInstance(0, size, 1)
	mte := NewAllocator(true)
	mte.InitInstance(0, size, 1)

	if math.Abs(plain.InitNs-79_000) > 1 {
		t.Errorf("plain init = %.0f ns, want 79,000", plain.InitNs)
	}
	if math.Abs(mte.InitNs-2_182_000) > 1 {
		t.Errorf("mte init = %.0f ns, want 2,182,000", mte.InitNs)
	}
	ratio := mte.InitNs / plain.InitNs
	if ratio < 20 || ratio > 35 {
		t.Errorf("init slowdown = %.1fx, expected ≈27x", ratio)
	}
}

// TestObservation2 reproduces §7: teardown goes from ≈29 µs to ≈377 µs
// because madvise discards tags, and the next init must re-tag.
func TestObservation2(t *testing.T) {
	const size = 65536
	mte := NewAllocator(true)
	mte.InitInstance(0, size, 1)
	firstInit := mte.InitNs
	mte.TeardownInstance(0, size)
	if math.Abs(mte.TeardownNs-377_000) > 1 {
		t.Errorf("mte teardown = %.0f ns, want 377,000", mte.TeardownNs)
	}
	// Tags were discarded: re-init pays the tagging cost again.
	mte.InitInstance(0, size, 1)
	if mte.InitNs < 2*firstInit-1 {
		t.Errorf("recycled init did not re-tag: %.0f vs first %.0f", mte.InitNs, firstInit)
	}

	plain := NewAllocator(false)
	plain.TeardownInstance(0, size)
	if math.Abs(plain.TeardownNs-29_000) > 1 {
		t.Errorf("plain teardown = %.0f ns, want 29,000", plain.TeardownNs)
	}
}

// TestProposedFix quantifies the tag-preserving madvise: recycling
// becomes as cheap as the baseline and re-init skips re-tagging —
// the MPK-like behaviour the paper asks the OS for.
func TestProposedFix(t *testing.T) {
	const size = 65536
	fixed := NewAllocator(true)
	fixed.PreserveTagsOnMadvise = true
	fixed.InitInstance(0, size, 1)
	firstInit := fixed.InitNs
	fixed.TeardownInstance(0, size)
	if math.Abs(fixed.TeardownNs-29_000) > 1 {
		t.Errorf("preserving teardown = %.0f ns, want 29,000", fixed.TeardownNs)
	}
	fixed.InitInstance(0, size, 1)
	reinit := fixed.InitNs - firstInit
	if math.Abs(reinit-79_000) > 1 {
		t.Errorf("recycled init = %.0f ns, want 79,000 (no re-tagging)", reinit)
	}
	// Tags must actually still be there.
	if err := fixed.Tags.Check(WithTag(0x10, 1), 16); err != nil {
		t.Errorf("tags lost despite preserving flag: %v", err)
	}
}

// TestFortyInstances mirrors the paper's exact experiment: forty 64 KiB
// memories.
func TestFortyInstances(t *testing.T) {
	const size = 65536
	mte := NewAllocator(true)
	for i := uint64(0); i < 40; i++ {
		mte.InitInstance(i*size, size, uint8(1+i%15))
	}
	perInstance := mte.InitNs / 40
	if perInstance < 2_000_000 || perInstance > 2_400_000 {
		t.Errorf("per-instance init = %.0f ns, want ≈2,182,000", perInstance)
	}
	for i := uint64(0); i < 40; i++ {
		mte.TeardownInstance(i*size, size)
	}
	if per := mte.TeardownNs / 40; per < 300_000 || per > 450_000 {
		t.Errorf("per-instance teardown = %.0f ns, want ≈377,000", per)
	}
}
