// Package mte models ColorGuard-MTE (§7): ARM's memory tagging
// extension colors 16-byte granules instead of pages, with tags checked
// against bits 63:60 of every pointer. The package reproduces the two
// performance observations the paper makes on real MTE hardware
// (a Pixel 8 Pro):
//
//	Observation 1 — user-level tagging moves at most two granules
//	(32 bytes) per instruction, so striping a linear memory is slow:
//	initializing a 64 KiB memory goes from 79 µs to 2,182 µs.
//
//	Observation 2 — madvise(MADV_DONTNEED) discards tags, so recycling
//	a slot (which is free under MPK, whose colors live in PTEs) costs
//	extra on teardown (29 µs → 377 µs) and forces a full re-tag on the
//	next allocation.
//
// The cost constants are the paper's measured values, expressed per
// byte; the proposed fix (a tag-preserving madvise flag) is modeled so
// its benefit can be quantified.
package mte

import "fmt"

// GranuleSize is the MTE tagging granule (16 bytes).
const GranuleSize = 16

// Measured cost constants (ns), derived from §7's numbers for 64 KiB
// linear memories.
const (
	InitBaseNs     = 79_000.0 // mmap + zeroing, no MTE
	TeardownBaseNs = 29_000.0 // madvise(MADV_DONTNEED), no MTE
	// Tagging measured: 2,182 µs total - 79 µs base over 64 KiB.
	TagNsPerByte = (2_182_000.0 - InitBaseNs) / 65536
	// Teardown with tag discarding: 377 µs total - 29 µs base.
	TagClearNsPerByte = (377_000.0 - TeardownBaseNs) / 65536
)

// TagStore holds granule tags for a region of memory, sparsely.
type TagStore struct {
	tags map[uint64]uint8 // granule index -> 4-bit tag
}

// NewTagStore returns an empty tag store.
func NewTagStore() *TagStore {
	return &TagStore{tags: make(map[uint64]uint8)}
}

// Set tags the granule containing addr.
func (ts *TagStore) Set(addr uint64, tag uint8) {
	ts.tags[addr/GranuleSize] = tag & 0xF
}

// Get returns the tag of the granule containing addr (0 if never set).
func (ts *TagStore) Get(addr uint64) uint8 {
	return ts.tags[addr/GranuleSize]
}

// ClearRange drops tags in [base, base+size) — what
// madvise(MADV_DONTNEED) does on MTE memory (Observation 2).
func (ts *TagStore) ClearRange(base, size uint64) {
	for g := base / GranuleSize; g < (base+size+GranuleSize-1)/GranuleSize; g++ {
		delete(ts.tags, g)
	}
}

// TagRange tags every granule in [base, base+size).
func (ts *TagStore) TagRange(base, size uint64, tag uint8) {
	for g := base / GranuleSize; g < (base+size+GranuleSize-1)/GranuleSize; g++ {
		ts.tags[g] = tag & 0xF
	}
}

// PointerTag extracts bits 63:60 — where MTE keeps the expected tag.
func PointerTag(ptr uint64) uint8 { return uint8(ptr >> 60) }

// WithTag returns ptr with its tag bits set.
func WithTag(ptr uint64, tag uint8) uint64 {
	return ptr&^(uint64(0xF)<<60) | uint64(tag&0xF)<<60
}

// TagFault reports a tag-check failure.
type TagFault struct {
	Addr     uint64
	Expected uint8 // pointer tag
	Actual   uint8 // memory tag
}

// Error implements error.
func (f *TagFault) Error() string {
	return fmt.Sprintf("mte: tag mismatch at %#x: pointer %x, memory %x", f.Addr, f.Expected, f.Actual)
}

// Check validates an access through a tagged pointer: the pointer's tag
// must equal the granule tag of every granule touched.
func (ts *TagStore) Check(ptr uint64, size uint64) error {
	tag := PointerTag(ptr)
	addr := ptr &^ (uint64(0xF) << 60)
	for a := addr; a < addr+size; a += GranuleSize {
		if got := ts.Get(a); got != tag {
			return &TagFault{Addr: a, Expected: tag, Actual: got}
		}
	}
	// The final byte may fall in a later granule.
	if size > 0 {
		last := addr + size - 1
		if got := ts.Get(last); got != tag {
			return &TagFault{Addr: last, Expected: tag, Actual: got}
		}
	}
	return nil
}

// Allocator models the Wasm slot allocator on MTE hardware, accounting
// wall-clock costs per the measured constants.
type Allocator struct {
	// MTE enables tagging (ColorGuard-MTE); disabled, the allocator
	// behaves like the plain baseline.
	MTE bool

	// PreserveTagsOnMadvise models the paper's proposed fix: an
	// madvise flag that leaves tags invariant, making recycling as
	// cheap as under MPK.
	PreserveTagsOnMadvise bool

	Tags *TagStore

	// Accumulated costs in nanoseconds.
	InitNs     float64
	TeardownNs float64

	// retagNeeded tracks slots whose tags were discarded.
	retagNeeded map[uint64]bool
}

// NewAllocator returns an allocator with an empty tag store.
func NewAllocator(mte bool) *Allocator {
	return &Allocator{MTE: mte, Tags: NewTagStore(), retagNeeded: make(map[uint64]bool)}
}

// InitInstance prepares a linear memory of size bytes at base with the
// given color, charging the measured costs. Re-initializing a recycled
// slot whose tags survived costs only the base.
func (a *Allocator) InitInstance(base, size uint64, tag uint8) {
	cost := InitBaseNs * float64(size) / 65536
	if a.MTE && (a.retagNeeded[base] || a.Tags.Get(base) != tag) {
		cost += TagNsPerByte * float64(size)
		a.Tags.TagRange(base, size, tag)
		delete(a.retagNeeded, base)
	}
	a.InitNs += cost
}

// TeardownInstance recycles the slot with madvise, charging the tag
// discarding penalty unless the preserving flag is set.
func (a *Allocator) TeardownInstance(base, size uint64) {
	cost := TeardownBaseNs * float64(size) / 65536
	if a.MTE && !a.PreserveTagsOnMadvise {
		cost += TagClearNsPerByte * float64(size)
		a.Tags.ClearRange(base, size)
		a.retagNeeded[base] = true
	}
	a.TeardownNs += cost
}
