// Package lfi implements LFI's deployment model (§4.3): rather than a
// Wasm compiler that emits instrumented code, LFI is an assembly-level
// rewriter — it takes already-compiled native code and inserts SFI
// instrumentation after the fact, using NaCl-style techniques for
// loads, stores, and control flow.
//
// Rewrite consumes native-mode output from the SFI compiler (whose
// memory operands use the implicit pointer base) and produces a
// sandboxed program:
//
//   - data accesses are rebased onto the pinned heap-base register
//     (classic scheme) or the %gs segment (WithSegue), with explicit
//     truncation where the rewriter cannot prove the index is clean;
//   - return paths are instrumented with the mask+rebase sequence that
//     bounds backward control flow to the sandbox;
//   - indirect calls get the same treatment on the target.
//
// The rewriter and the compiler's ModeLFI/ModeLFISegue produce
// behaviourally identical sandboxes (differentially tested); the point
// of this package is to reproduce the paper's binary-rewriting
// deployment path, which needs no cooperation from the compiler.
package lfi

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/x86"
)

// Options configures the rewriter.
type Options struct {
	// WithSegue uses segment-relative addressing for rewritten data
	// accesses instead of the pinned base register — the paper's
	// "Segue in LFI". The base register stays reserved either way,
	// because control-flow instrumentation needs it (§4.3).
	WithSegue bool
}

// HeapReg is the register LFI reserves for the sandbox base. Rewritten
// code must not use it; native-mode output from internal/sfi treats it
// as allocatable, so Rewrite verifies and rejects programs that use it.
const HeapReg = x86.R15

// ErrUsesHeapReg is returned when input code already uses the reserved
// register.
var ErrUsesHeapReg = fmt.Errorf("lfi: input code uses the reserved base register %s", HeapReg)

// Rewrite instruments a compiled program in place-on-a-copy and
// returns the sandboxed version.
func Rewrite(p *cpu.Program, opts Options) (*cpu.Program, error) {
	out := &cpu.Program{
		Table:     append([]cpu.TableEntry(nil), p.Table...),
		Hosts:     append([]cpu.HostFunc(nil), p.Hosts...),
		HostNames: append([]string(nil), p.HostNames...),
	}
	for _, f := range p.Funcs {
		nf, err := rewriteFunc(f, opts)
		if err != nil {
			return nil, fmt.Errorf("lfi: %s: %w", f.Name, err)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out, nil
}

// usesReg reports whether the instruction reads or writes r anywhere.
func usesReg(in x86.Inst, r x86.Reg) bool {
	check := func(o x86.Operand) bool {
		switch o.Kind {
		case x86.KindReg:
			return o.Reg == r
		case x86.KindMem:
			return o.Mem.Base == r || (o.Mem.HasIndex() && o.Mem.Index == r)
		}
		return false
	}
	return check(in.Dst) || check(in.Src)
}

// rewriteMem rebases one memory operand. Native-mode operands address
// the sandbox through the implicit base (SegImplicit); the rewriter
// makes the base explicit. The returned prefix instructions (possibly
// nil) must execute immediately before the access — the explicit
// truncation that the classic scheme needs where the native code
// relied on 32-bit effective-address wrap (Addr32).
func rewriteMem(m x86.Mem, opts Options) (x86.Mem, []x86.Inst, error) {
	if m.Seg != x86.SegImplicit {
		// Frame/stack accesses (rbp/rsp-based runtime state) are not
		// sandbox memory; leave them.
		return m, nil, nil
	}
	if opts.WithSegue {
		m.Seg = x86.SegGS
		// The address-size override bounds the effective address to
		// 32 bits, standing in for the rewriter's masking.
		m.Addr32 = true
		return m, nil, nil
	}
	// Classic scheme: [base + index*scale + disp] must gain the heap
	// base. x86 has one base slot, so an operand that already uses
	// both base and index needs the index folded first — the rewriter
	// inserts a LEA like NaCl's.
	if m.Base != x86.RegNone && m.HasIndex() {
		return m, nil, fmt.Errorf("needs pre-lowering (base+index operand)")
	}
	var prefix []x86.Inst
	if m.Base != x86.RegNone {
		if m.Addr32 {
			// The native form wrapped at 32 bits; the classic form
			// computes a 64-bit EA, so truncate the index explicitly
			// (Figure 1 pattern 1's mov ebx, ebx).
			prefix = append(prefix, x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R11), Src: x86.R(m.Base)})
			m.Base = x86.R11
		}
		m.Index, m.Scale = m.Base, 1
	}
	m.Seg = x86.SegNone
	m.Base = HeapReg
	m.Addr32 = false
	return m, prefix, nil
}

// rewriteFunc instruments one function.
func rewriteFunc(f *cpu.Func, opts Options) (*cpu.Func, error) {
	type pending struct {
		insts []x86.Inst
		from  int // original index this expansion replaces
	}
	var expanded []pending
	for i, in := range f.Insts {
		if usesReg(in, HeapReg) {
			return nil, ErrUsesHeapReg
		}
		seq := []x86.Inst{}
		switch {
		case in.Op == x86.RET:
			// Backward-edge instrumentation: mask the return address
			// to 32 bits and rebase it (NaCl-style), then return.
			seq = append(seq,
				x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.M(x86.Mem{Base: x86.RSP})},
				x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R11), Src: x86.R(x86.R11)},
				x86.Inst{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.R(HeapReg)},
				in,
			)
		case in.Op == x86.CALLREG:
			// Forward-edge: mask and rebase the target (modeled on a
			// scratch copy, as in internal/sfi).
			seq = append(seq,
				x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R11), Src: in.Dst},
				x86.Inst{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.R(HeapReg)},
				in,
			)
		case in.HasMem():
			var err error
			var prefix []x86.Inst
			if in.Dst.Kind == x86.KindMem {
				in.Dst.Mem, prefix, err = rewriteMem(in.Dst.Mem, opts)
			} else {
				in.Src.Mem, prefix, err = rewriteMem(in.Src.Mem, opts)
			}
			if err != nil {
				// Fold base+index with an inserted LEA (32-bit: the
				// fold also truncates), then rebase.
				mem := in.Dst.Mem
				dstIsMem := in.Dst.Kind == x86.KindMem
				if !dstIsMem {
					mem = in.Src.Mem
				}
				lea := x86.Inst{Op: x86.LEA, W: x86.W32, Dst: x86.R(x86.R11),
					Src: x86.M(x86.Mem{Base: mem.Base, Index: mem.Index, Scale: mem.Scale, Disp: mem.Disp})}
				nm := x86.Mem{Base: HeapReg, Index: x86.R11, Scale: 1}
				if dstIsMem {
					in.Dst.Mem = nm
				} else {
					in.Src.Mem = nm
				}
				seq = append(seq, lea, in)
			} else {
				seq = append(seq, prefix...)
				seq = append(seq, in)
			}
		default:
			seq = append(seq, in)
		}
		expanded = append(expanded, pending{insts: seq, from: i})
	}

	// Rebuild with a label remap.
	remap := make([]int, len(f.Insts)+1)
	var insts []x86.Inst
	for _, p := range expanded {
		remap[p.from] = len(insts)
		insts = append(insts, p.insts...)
	}
	remap[len(f.Insts)] = len(insts)
	for k := range insts {
		in := &insts[k]
		switch in.Op {
		case x86.JMP, x86.JCC:
			in.Dst.Label = remap[in.Dst.Label]
		case x86.JTAB:
			in.Src.Label = remap[in.Src.Label]
			tg := append([]int(nil), in.Targets...)
			for j, t := range tg {
				tg[j] = remap[t]
			}
			in.Targets = tg
		}
	}
	nf := &cpu.Func{Name: f.Name, Insts: insts}
	nf.Encode()
	return nf, nil
}
