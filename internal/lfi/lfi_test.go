package lfi_test

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/lfi"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
	"repro/internal/x86"
)

// rewriteKernel compiles a kernel natively (with the -ffixed-r15
// contract), rewrites it, and wraps it for the runtime under the given
// register-setup mode.
func rewriteKernel(t *testing.T, k workloads.Kernel, opts lfi.Options) *rt.Module {
	t.Helper()
	cfg := sfi.DefaultConfig(sfi.ModeNative)
	cfg.ReserveR15 = true
	prog, meta, err := sfi.Compile(k.Build(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed, err := lfi.Rewrite(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	runCfg := sfi.DefaultConfig(sfi.ModeLFI)
	if opts.WithSegue {
		runCfg = sfi.DefaultConfig(sfi.ModeLFISegue)
	}
	return &rt.Module{IR: k.Build(false), Prog: sandboxed, Meta: meta, Cfg: runCfg}
}

// TestRewriteDifferential: rewritten binaries compute exactly what the
// interpreter (and the compiler's LFI modes) compute.
func TestRewriteDifferential(t *testing.T) {
	suite := workloads.Sightglass()
	for _, name := range []string{"fib2", "seqhash", "heapsort", "gimli", "base64", "switch2", "strchr"} {
		k, err := suite.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		interp, _ := ir.NewInterp(k.Build(false), nil)
		interp.StepLimit = 200_000_000
		want, err := interp.Invoke(k.Entry, k.TestArgs...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, segue := range []bool{false, true} {
			mod := rewriteKernel(t, k, lfi.Options{WithSegue: segue})
			inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Fatalf("%s segue=%v: %v", name, segue, err)
			}
			got, err := inst.Invoke(k.Entry, k.TestArgs...)
			if err != nil {
				t.Fatalf("%s segue=%v: %v", name, segue, err)
			}
			if got[0] != want[0] {
				t.Fatalf("%s segue=%v: %#x, want %#x", name, segue, got[0], want[0])
			}
		}
	}
}

// TestRewriteIsolation: rewritten code cannot escape the sandbox; an
// out-of-range access traps in the guard region.
func TestRewriteIsolation(t *testing.T) {
	m := ir.NewModule("oob", 1, 1)
	fb := m.NewFunc("rd", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).I32Load(0)
	fb.MustBuild()
	m.MustExport("rd")

	cfg := sfi.DefaultConfig(sfi.ModeNative)
	cfg.ReserveR15 = true
	prog, meta, err := sfi.Compile(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed, err := lfi.Rewrite(prog, lfi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod := &rt.Module{IR: m, Prog: sandboxed, Meta: meta, Cfg: sfi.DefaultConfig(sfi.ModeLFI)}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("rd", 100); err != nil {
		t.Fatalf("in-bounds: %v", err)
	}
	_, err = inst.Invoke("rd", 0xFFFFFF00)
	var trap *cpu.Trap
	if !errors.As(err, &trap) || trap.Kind != cpu.TrapPageFault {
		t.Fatalf("oob err = %v, want guard fault", err)
	}
}

// TestRewriteInstrumentsReturns: every function gains the mask+rebase
// sequence before RET.
func TestRewriteInstrumentsReturns(t *testing.T) {
	k, _ := workloads.Sightglass().Find("fib2")
	cfg := sfi.DefaultConfig(sfi.ModeNative)
	cfg.ReserveR15 = true
	prog, _, err := sfi.Compile(k.Build(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := len(prog.Funcs[0].Insts)
	sandboxed, err := lfi.Rewrite(prog, lfi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := len(sandboxed.Funcs[0].Insts)
	if after < before+3 {
		t.Errorf("expected at least 3 instrumentation instructions, got %d -> %d", before, after)
	}
}

// TestRewriteRejectsReservedReg: input that already uses R15 is
// refused — the compilation contract is checked, not assumed.
func TestRewriteRejectsReservedReg(t *testing.T) {
	prog := &cpu.Program{Funcs: []*cpu.Func{{
		Name: "bad",
		Insts: []x86.Inst{
			{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R15), Src: x86.Imm(1)},
			{Op: x86.RET},
		},
	}}}
	prog.Funcs[0].Encode()
	if _, err := lfi.Rewrite(prog, lfi.Options{}); !errors.Is(err, lfi.ErrUsesHeapReg) {
		t.Fatalf("err = %v, want ErrUsesHeapReg", err)
	}
}

// TestRewriteMatchesCompilerMode: the rewriter and ModeLFI produce the
// same checksums on a branchy kernel (they are different
// implementations of the same scheme).
func TestRewriteMatchesCompilerMode(t *testing.T) {
	k, _ := workloads.Spec2006().Find("458_sjeng")
	modRewrite := rewriteKernel(t, k, lfi.Options{WithSegue: true})
	instA, err := rt.NewInstance(modRewrite, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := instA.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	modCompile, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeLFISegue))
	if err != nil {
		t.Fatal(err)
	}
	instB, err := rt.NewInstance(modCompile, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := instB.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("rewriter %#x != compiler mode %#x", a[0], b[0])
	}
}
