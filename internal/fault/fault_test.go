package fault

import "testing"

// TestBackoffDelays pins the backoff schedule arithmetic: exponential
// growth from the base, the cap, constant-backoff degenerate factors,
// and the inert zero value.
func TestBackoffDelays(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		want    float64
	}{
		{"zero value", Backoff{}, 3, 0},
		{"attempt zero", Backoff{BaseNs: 100, Factor: 2}, 0, 0},
		{"attempt negative", Backoff{BaseNs: 100, Factor: 2}, -2, 0},
		{"first retry is base", Backoff{BaseNs: 100, Factor: 2}, 1, 100},
		{"second doubles", Backoff{BaseNs: 100, Factor: 2}, 2, 200},
		{"fifth is base*2^4", Backoff{BaseNs: 100, Factor: 2}, 5, 1600},
		{"factor three", Backoff{BaseNs: 10, Factor: 3}, 3, 90},
		{"factor below one is constant", Backoff{BaseNs: 50, Factor: 0.5}, 4, 50},
		{"factor zero is constant", Backoff{BaseNs: 50}, 7, 50},
		{"cap clamps", Backoff{BaseNs: 100, Factor: 2, MaxNs: 500}, 4, 500},
		{"cap holds forever", Backoff{BaseNs: 100, Factor: 2, MaxNs: 500}, 40, 500},
		{"below cap untouched", Backoff{BaseNs: 100, Factor: 2, MaxNs: 500}, 2, 200},
		{"cap below base clamps base", Backoff{BaseNs: 100, Factor: 2, MaxNs: 60}, 1, 60},
		{"negative base disables", Backoff{BaseNs: -5, Factor: 2}, 3, 0},
	}
	for _, c := range cases {
		if got := c.b.DelayNs(c.attempt); got != c.want {
			t.Errorf("%s: DelayNs(%d) = %g, want %g", c.name, c.attempt, got, c.want)
		}
	}
}

// TestBreakerLifecycle walks the breaker through the full state
// machine: closed → open on the threshold, rejecting while open,
// half-open after OpenNs, reopening on a probe failure, and closing
// after enough probe successes.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenNs: 1000, HalfOpenSuccesses: 2})

	if b.State() != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	if !b.Allow(0) {
		t.Fatal("closed breaker rejected")
	}

	// Two failures: still closed. A success resets the run.
	b.OnFailure(10)
	b.OnFailure(20)
	b.OnSuccess(30)
	b.OnFailure(40)
	b.OnFailure(50)
	if b.State() != BreakerClosed {
		t.Fatalf("state after interrupted failure run = %v, want closed", b.State())
	}

	// Third consecutive failure trips it.
	b.OnFailure(60)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	if b.Allow(100) {
		t.Error("open breaker allowed before OpenNs elapsed")
	}

	// OpenNs elapsed: half-open, probe admitted.
	if !b.Allow(60 + 1000) {
		t.Fatal("breaker did not admit the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}

	// Probe failure reopens immediately.
	b.OnFailure(1100)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state after probe failure = %v opens=%d, want open/2", b.State(), b.Opens())
	}

	// Half-open again; two successes close.
	if !b.Allow(1100 + 1000) {
		t.Fatal("second half-open probe rejected")
	}
	b.OnSuccess(2200)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("closed after one probe success, want two")
	}
	b.OnSuccess(2300)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}
	if !b.Allow(2400) {
		t.Error("reclosed breaker rejected")
	}
}

// TestBreakerDisabled: the zero config never rejects and never changes
// state, so a disarmed breaker on the hot path is inert.
func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 100; i++ {
		b.OnFailure(float64(i))
		if !b.Allow(float64(i)) {
			t.Fatal("disabled breaker rejected")
		}
	}
	if b.State() != BreakerClosed || b.Opens() != 0 {
		t.Fatalf("disabled breaker moved: state=%v opens=%d", b.State(), b.Opens())
	}
}

// TestBreakerDefaultHalfOpenSuccesses: HalfOpenSuccesses 0 behaves as 1.
func TestBreakerDefaultHalfOpenSuccesses(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenNs: 10})
	b.OnFailure(0)
	if !b.Allow(10) {
		t.Fatal("probe rejected")
	}
	b.OnSuccess(11)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after one probe success", b.State())
	}
}

// TestInjectorDeterminism: the same seed replays the same hit sequence
// and counts.
func TestInjectorDeterminism(t *testing.T) {
	draw := func() ([]bool, uint64) {
		in := NewInjector(42)
		var hits []bool
		for i := 0; i < 2000; i++ {
			hits = append(hits, in.Hit(Poisoned, 0.1))
		}
		return hits, in.Count(Poisoned)
	}
	h1, c1 := draw()
	h2, c2 := draw()
	if c1 != c2 {
		t.Fatalf("counts differ: %d vs %d", c1, c2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hit sequence diverges at draw %d", i)
		}
	}
	if c1 == 0 || c1 > 400 {
		t.Errorf("2000 draws at rate 0.1 hit %d times; want roughly 200", c1)
	}
}

// TestInjectorZeroRateConsumesNothing: a disabled class does not draw
// from the stream, so toggling it cannot shift another class's
// sequence — the inertness property the golden tables rely on.
func TestInjectorZeroRateConsumesNothing(t *testing.T) {
	a := NewInjector(7)
	b := NewInjector(7)
	var sa, sb []bool
	for i := 0; i < 500; i++ {
		sa = append(sa, a.Hit(Poisoned, 0.2))
		b.Hit(ColdStartFail, 0)    // must not consume
		b.Hit(TransitionFault, -1) // must not consume
		sb = append(sb, b.Hit(Poisoned, 0.2))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("zero-rate draws shifted the stream at %d", i)
		}
	}
	if a.Total() != a.Count(Poisoned) || b.Count(ColdStartFail) != 0 {
		t.Error("zero-rate class recorded hits")
	}
}

// TestRatesFor: base 0 is the zero mix; each backend mix scales with
// the base and covers every class.
func TestRatesFor(t *testing.T) {
	if RatesFor("multiproc", 0) != (Rates{}) {
		t.Error("base 0 should produce zero rates")
	}
	for _, backend := range []string{"guardpage", "colorguard", "mte", "multiproc", "never-heard-of-it"} {
		r := RatesFor(backend, 0.01)
		for c := Class(0); c < NumClasses; c++ {
			if r.Rate(c) <= 0 {
				t.Errorf("%s: class %v has no rate", backend, c)
			}
		}
		double := RatesFor(backend, 0.02)
		for c := Class(0); c < NumClasses; c++ {
			if double.Rate(c) != 2*r.Rate(c) {
				t.Errorf("%s: class %v does not scale linearly with base", backend, c)
			}
		}
	}
	if mp := RatesFor("multiproc", 0.01); mp.ColdStartFail <= RatesFor("colorguard", 0.01).ColdStartFail {
		t.Error("multiproc cold starts should fail more often than colorguard's")
	}
}

// TestConfigArmed: only the zero value is disarmed.
func TestConfigArmed(t *testing.T) {
	if (Config{}).Armed() {
		t.Error("zero config reports armed")
	}
	for _, c := range []Config{
		{Seed: 1},
		{Rates: Rates{Poisoned: 0.1}},
		{TimeoutNs: 1e6},
		{QueueLimit: 100},
		{Breaker: BreakerConfig{FailureThreshold: 5}},
		{CurveBucketNs: 1e8},
		{MaxAttempts: 3},
		{Retry: Backoff{BaseNs: 10}},
	} {
		if !c.Armed() {
			t.Errorf("config %+v reports disarmed", c)
		}
	}
}

// TestClassStrings: every class has a distinct telemetry name.
func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("class %d name %q invalid or duplicated", c, s)
		}
		seen[s] = true
	}
}
