// Package fault is the deterministic fault-injection and
// graceful-degradation layer of the FaaS simulation: a seeded injector
// that decides, per request, whether one of the production failure
// modes strikes — cold-start initialization failures, slot-allocation
// exhaustion, faulting sandbox transitions, poisoned (crashing)
// instances — plus the pure policy math the platform degrades through:
// retry with exponential backoff, per-request deadlines, admission
// control (a bounded queue that sheds load), and a circuit breaker.
//
// Everything here is expressed in virtual nanoseconds and driven by a
// dedicated RNG stream, so three properties hold by construction:
//
//   - Determinism: the same Config (seed included) produces the same
//     fault sequence, the same degraded schedule, and the same
//     telemetry, run after run, on any machine.
//   - Independence: the injector's RNG stream is separate from the
//     simulation's arrival/IO stream, so an injected fault never
//     perturbs which requests arrive or when their IO completes — a
//     faulty run sees exactly the offered load of a clean run.
//   - Inertness: a zero rate draws nothing from the stream and a zero
//     Config arms nothing; internal/faas's golden tables are
//     byte-identical with the fault machinery compiled in, wired up,
//     and disabled (see exp.TestGoldenTablesWithFaultsOff).
//
// internal/faas consumes this package through faas.Config.Faults; the
// exp "faultsweep" experiment and cmd/faassim's -faultrate/-timeout/
// -retries/-shed flags drive it from above.
package fault

import "repro/internal/stats"

// Class names one injected failure mode.
type Class int

// The four fault classes the FaaS simulation injects.
const (
	// ColdStartFail: a fresh instance's init (mmap+zero+coloring)
	// fails after its cost is spent — the fork/exec and page-table
	// races real platforms hit under churn.
	ColdStartFail Class = iota

	// SlotExhausted: the pooling allocator has no free slot for this
	// attempt; the request backs off and retries.
	SlotExhausted

	// TransitionFault: a sandbox boundary crossing faults (PKRU
	// mismatch, segment fault, signal delivered mid-trampoline); the
	// crossing's cost is paid and the attempt restarts.
	TransitionFault

	// Poisoned: the instance crashes partway through compute; the
	// attempt's progress is lost and the request needs a fresh
	// instance.
	Poisoned

	// NumClasses is the number of fault classes.
	NumClasses
)

// String returns the class's telemetry-friendly name.
func (c Class) String() string {
	switch c {
	case ColdStartFail:
		return "coldstart"
	case SlotExhausted:
		return "slot_exhausted"
	case TransitionFault:
		return "transition"
	case Poisoned:
		return "poisoned"
	}
	return "unknown"
}

// Rates holds the per-request injection probability of each class.
// The zero value injects nothing.
type Rates struct {
	ColdStartFail   float64
	SlotExhausted   float64
	TransitionFault float64
	Poisoned        float64
}

// Rate returns the probability configured for a class.
func (r Rates) Rate(c Class) float64 {
	switch c {
	case ColdStartFail:
		return r.ColdStartFail
	case SlotExhausted:
		return r.SlotExhausted
	case TransitionFault:
		return r.TransitionFault
	case Poisoned:
		return r.Poisoned
	}
	return 0
}

// RatesFor scales a base per-request fault rate into each backend's
// characteristic mix. The weights model where each mechanism is
// fragile: multi-process cold starts involve fork/exec and fresh page
// tables (double weight, and crossings fault more because signals land
// mid-switch); ColorGuard's striped slots contend on stripe allocation
// (double slot exhaustion) but its user-level transitions rarely fault;
// MTE pays both tagging init and tag-check faults. A base of 0 returns
// the zero Rates. Backend names follow isolation.Kind strings; unknown
// names get the guard-page mix.
func RatesFor(backend string, base float64) Rates {
	if base <= 0 {
		return Rates{}
	}
	switch backend {
	case "multiproc":
		return Rates{ColdStartFail: 2 * base, SlotExhausted: base / 2, TransitionFault: base / 2, Poisoned: base}
	case "colorguard":
		return Rates{ColdStartFail: base / 2, SlotExhausted: 2 * base, TransitionFault: base / 4, Poisoned: base}
	case "mte":
		return Rates{ColdStartFail: base, SlotExhausted: base, TransitionFault: base / 2, Poisoned: base}
	default: // guardpage and anything unrecognized
		return Rates{ColdStartFail: base, SlotExhausted: base, TransitionFault: base / 4, Poisoned: base}
	}
}

// Config is the complete fault-injection and degradation-policy
// configuration of one simulation run. It is a comparable value type:
// the zero Config means "fault machinery disarmed" and internal/faas
// guarantees a run under the zero Config is byte-identical to a run
// without the machinery at all.
type Config struct {
	// Seed seeds the injector's dedicated RNG stream. Independent of
	// the simulation seed: faults never perturb arrivals or IO.
	Seed uint64

	// Rates are the per-class injection probabilities.
	Rates Rates

	// MaxAttempts is the total attempt budget per request for
	// recoverable faults: 1 (or 0) means a single attempt — any fault
	// fails the request; n allows n-1 retries.
	MaxAttempts int

	// Retry is the backoff schedule between attempts.
	Retry Backoff

	// TimeoutNs is the per-request deadline in virtual nanoseconds
	// from arrival; a request that reaches the CPU past its deadline
	// is dropped. 0 disables.
	TimeoutNs float64

	// QueueLimit bounds the number of in-flight requests; arrivals
	// beyond it are shed at admission. 0 means unbounded.
	QueueLimit int

	// Breaker configures the circuit breaker consulted at admission.
	Breaker BreakerConfig

	// CurveBucketNs, when set, samples the cumulative
	// completed/shed/failed/timed-out counts every bucket of virtual
	// time into Result.Degradation — the degradation curve.
	CurveBucketNs float64
}

// Armed reports whether any part of the fault machinery is configured.
// internal/faas skips every fault branch when false.
func (c Config) Armed() bool { return c != Config{} }

// Injector draws fault decisions from a dedicated deterministic RNG
// stream and counts what it injected, per class. Not safe for
// concurrent use; each simulation run owns one.
type Injector struct {
	rng    *stats.RNG
	counts [NumClasses]uint64
}

// NewInjector returns an injector seeded with its own splitmix-expanded
// stream.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: stats.NewRNG(seed)}
}

// Hit reports whether a fault of class c strikes at probability rate.
// A rate <= 0 returns false without consuming the stream, so disabled
// classes leave the draw sequence of enabled ones unchanged.
func (in *Injector) Hit(c Class, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if in.rng.Float64() >= rate {
		return false
	}
	in.counts[c]++
	return true
}

// Frac returns a uniform draw in [0, 1) from the injector stream —
// used to place a poisoned instance's crash point inside the attempt's
// compute.
func (in *Injector) Frac() float64 { return in.rng.Float64() }

// Count returns how many faults of class c have been injected.
func (in *Injector) Count(c Class) uint64 { return in.counts[c] }

// Total returns the number of faults injected across all classes.
func (in *Injector) Total() uint64 {
	var t uint64
	for _, n := range in.counts {
		t += n
	}
	return t
}
