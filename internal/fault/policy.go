package fault

// Backoff is an exponential retry-delay schedule in virtual
// nanoseconds: attempt n (1-based count of failures so far) waits
// BaseNs * Factor^(n-1), capped at MaxNs. The zero value waits nothing
// (immediate retry). No jitter: the schedule is pure arithmetic, so a
// seeded run's retry timeline is reproducible without consuming any
// RNG stream.
type Backoff struct {
	// BaseNs is the delay before the first retry. <= 0 disables
	// delays entirely.
	BaseNs float64

	// Factor multiplies the delay per additional failure; values
	// below 1 are treated as 1 (constant backoff).
	Factor float64

	// MaxNs caps the delay; 0 means uncapped.
	MaxNs float64
}

// DelayNs returns the wait before retry number attempt (1 = first
// retry). Non-positive attempts and a non-positive base yield 0.
func (b Backoff) DelayNs(attempt int) float64 {
	if attempt <= 0 || b.BaseNs <= 0 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 1
	}
	d := b.BaseNs
	for i := 1; i < attempt; i++ {
		d *= f
		if b.MaxNs > 0 && d >= b.MaxNs {
			return b.MaxNs
		}
	}
	if b.MaxNs > 0 && d > b.MaxNs {
		return b.MaxNs
	}
	return d
}

// BreakerConfig parameterizes the circuit breaker. The zero value
// disables it.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that
	// trips the breaker open. 0 disables the breaker.
	FailureThreshold int

	// OpenNs is how long (virtual ns) an open breaker rejects
	// admissions before moving to half-open on the next Allow.
	OpenNs float64

	// HalfOpenSuccesses is how many successes in half-open close the
	// breaker again; 0 means 1.
	HalfOpenSuccesses int
}

// Enabled reports whether the breaker does anything.
func (c BreakerConfig) Enabled() bool { return c.FailureThreshold > 0 }

// BreakerState is the circuit breaker's position.
type BreakerState int

// The classic three-state breaker.
const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: admissions fast-fail until OpenNs elapses.
	BreakerOpen
	// BreakerHalfOpen: traffic flows probationally; one failure
	// reopens, HalfOpenSuccesses successes close.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a virtual-time circuit breaker: it trips open after a run
// of consecutive failures, rejects admissions for OpenNs, then admits
// probes half-open until enough succeed to close. All time is the
// caller's virtual clock; the breaker holds no real-time state, so a
// seeded simulation replays its trips exactly. Not safe for concurrent
// use; each simulation run owns one.
type Breaker struct {
	cfg         BreakerConfig
	state       BreakerState
	consecFails int
	reopenAt    float64 // virtual time when open may move to half-open
	probeOK     int
	opens       uint64
}

// NewBreaker returns a closed breaker under cfg.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// Allow reports whether an admission at virtual time now may proceed.
// A disabled breaker always allows. An open breaker whose OpenNs has
// elapsed moves to half-open and allows the probe.
func (b *Breaker) Allow(now float64) bool {
	if !b.cfg.Enabled() {
		return true
	}
	if b.state == BreakerOpen {
		if now < b.reopenAt {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeOK = 0
	}
	return true
}

// OnSuccess records a completed request at virtual time now.
func (b *Breaker) OnSuccess(now float64) {
	if !b.cfg.Enabled() {
		return
	}
	switch b.state {
	case BreakerClosed:
		b.consecFails = 0
	case BreakerHalfOpen:
		b.probeOK++
		need := b.cfg.HalfOpenSuccesses
		if need < 1 {
			need = 1
		}
		if b.probeOK >= need {
			b.state = BreakerClosed
			b.consecFails = 0
		}
	}
}

// OnFailure records a failed, timed-out, or faulted request at virtual
// time now. In half-open any failure reopens immediately.
func (b *Breaker) OnFailure(now float64) {
	if !b.cfg.Enabled() {
		return
	}
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case BreakerHalfOpen:
		b.trip(now)
	}
}

func (b *Breaker) trip(now float64) {
	b.state = BreakerOpen
	b.reopenAt = now + b.cfg.OpenNs
	b.consecFails = 0
	b.opens++
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 { return b.opens }
