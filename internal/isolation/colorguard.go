package isolation

import (
	"repro/internal/mem"
)

// colorGuard is MPK page striping (§3.2, §5.1): slots cycle through the
// available protection keys so the guard requirement is covered by
// differently-colored neighbor slots instead of dead address space.
// Colors live in PTEs: they are applied by pkey_mprotect during
// Allocate, survive madvise-based recycling for free (the §7 advantage
// over MTE), and each transition pays a WRPKRU write each way.
type colorGuard struct {
	slab
}

func newColorGuard() *colorGuard {
	b := &colorGuard{}
	b.slab.kind = ColorGuard
	b.slab.trans = TransitionFor(ColorGuard)
	b.slab.life = LifecycleFor(ColorGuard, false)
	return b
}

// Color re-applies the slot's stripe color with pkey_mprotect. Allocate
// already colors the open region, so this only matters after an
// explicit plain mprotect stripped the key.
func (b *colorGuard) Color(s Slot, bytes uint64) error {
	if b.p == nil {
		return ErrNotReserved
	}
	if s.Pkey == 0 || bytes == 0 {
		return nil
	}
	if err := b.as.PkeyMprotect(s.Addr, pageUp(bytes), mem.ProtRead|mem.ProtWrite, s.Pkey); err != nil {
		return err
	}
	b.ctrColor.Inc()
	return nil
}

func pageUp(n uint64) uint64 {
	return (n + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
}
