package isolation

import (
	"repro/internal/mte"
)

// mteBackend is ColorGuard-MTE (§7): slots are colored by tagging every
// 16-byte granule rather than by PTE keys. Tagging is user-level and
// moves at most two granules per instruction, so applying a color is
// paid per byte (observation 1); madvise(MADV_DONTNEED) discards tags,
// so recycling either pays a per-byte teardown and forces a re-tag on
// reuse, or — with the proposed tag-preserving madvise
// (Config.PreserveTagsOnMadvise) — behaves like MPK (observation 2).
type mteBackend struct {
	slab
	tags *mte.TagStore

	// tagged and retag track which slots currently hold their color:
	// never-tagged and discarded slots must be (re)tagged on Allocate.
	tagged map[int]bool
	retag  map[int]bool
}

func newMTE() *mteBackend {
	b := &mteBackend{
		tags:   mte.NewTagStore(),
		tagged: make(map[int]bool),
		retag:  make(map[int]bool),
	}
	b.slab.kind = MTE
	b.slab.trans = TransitionFor(MTE)
	b.slab.life = LifecycleFor(MTE, false)
	return b
}

// TagForSlot returns the MTE tag of slot i: colors cycle through the 15
// non-zero tags, mirroring the MPK striping pattern in tag space.
func TagForSlot(i int) uint8 { return uint8(1 + i%15) }

// Tags exposes the granule tag store (for tests and trap checking).
func (b *mteBackend) Tags() *mte.TagStore { return b.tags }

func (b *mteBackend) Allocate(initialBytes uint64) (Slot, error) {
	if b.p == nil {
		return Slot{}, ErrNotReserved
	}
	// Peek whether the slot we are about to take needs (re)tagging; the
	// pool hands out slots LIFO, but the coloring state is per-index,
	// so decide after the pool picks.
	ps, err := b.p.Allocate(initialBytes)
	if err != nil {
		return Slot{}, err
	}
	sl := Slot{Index: ps.Index, Addr: ps.Addr, MaxBytes: ps.MaxBytes, Tag: TagForSlot(ps.Index)}
	recolor := !b.tagged[sl.Index] || b.retag[sl.Index]
	if recolor && initialBytes > 0 {
		b.tags.TagRange(sl.Addr, initialBytes, sl.Tag)
	}
	if recolor {
		b.tagged[sl.Index] = true
		delete(b.retag, sl.Index)
	}
	b.initNs += b.life.InitNs(initialBytes, recolor)
	b.ctrAlloc.Inc()
	if recolor {
		b.ctrColor.Inc()
	}
	return sl, nil
}

// Color re-tags bytes of the slot's granules, charging the per-byte
// tagging cost (used when growing a memory past its tagged prefix).
func (b *mteBackend) Color(s Slot, bytes uint64) error {
	if b.p == nil {
		return ErrNotReserved
	}
	if bytes == 0 {
		return nil
	}
	b.tags.TagRange(s.Addr, bytes, s.Tag)
	b.initNs += b.life.ColorNsPerByte * float64(bytes)
	b.ctrColor.Inc()
	return nil
}

// Grow opens more of the slot and maintains the coloring invariant:
// every open granule carries the slot's tag (tagging is idempotent, so
// re-tagging the prefix is harmless and no extra cost is charged for
// already-tagged granules — the bookkeeping charges the full range once
// via Allocate/Color).
func (b *mteBackend) Grow(s Slot, upTo uint64) error {
	if err := b.slab.Grow(s, upTo); err != nil {
		return err
	}
	if upTo > 0 {
		b.tags.TagRange(s.Addr, upTo, s.Tag)
	}
	return nil
}

func (b *mteBackend) Recycle(s Slot) error {
	if b.p == nil {
		return ErrNotReserved
	}
	if err := b.p.Free(poolSlot(s)); err != nil {
		return err
	}
	b.teardownNs += b.life.TeardownNs(s.MaxBytes)
	b.ctrRecycle.Inc()
	if b.life.RecolorOnReuse {
		// madvise discarded the tags with the pages.
		b.tags.ClearRange(s.Addr, s.MaxBytes)
		b.retag[s.Index] = true
	}
	return nil
}
