package isolation

import (
	"math"
	"testing"

	"repro/internal/mem"
)

// TestParseScheme: every scheme name round-trips, the empty string
// resolves to the process default, and unknown names are rejected.
func TestParseScheme(t *testing.T) {
	for _, want := range Schemes() {
		got, err := ParseScheme(string(want))
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", want, got, err, want)
		}
	}
	if got, err := ParseScheme(""); err != nil || got != SchemeDefault {
		t.Fatalf("ParseScheme(\"\") = %v, %v; want default", got, err)
	}
	if _, err := ParseScheme("warp"); err == nil {
		t.Fatal("ParseScheme(\"warp\") succeeded, want error")
	}
}

// TestDefaultSchemeBitExact: the default scheme must reproduce the
// historical TransitionFor costs exactly — every pre-scheme golden
// table integrates these floats over millions of virtual-time events,
// so even a one-ulp difference breaks byte-identity.
func TestDefaultSchemeBitExact(t *testing.T) {
	for _, kind := range Kinds() {
		if got, want := TransitionForScheme(SchemeDefault, kind), TransitionFor(kind); got != want {
			t.Fatalf("%s: TransitionForScheme(default) = %+v, TransitionFor = %+v", kind, got, want)
		}
		if got, want := TransitionForScheme("", kind), TransitionFor(kind); got != want {
			t.Fatalf("%s: TransitionForScheme(\"\") = %+v, TransitionFor = %+v", kind, got, want)
		}
	}
}

// TestRoundTripPinned pins the exact round-trip cost of every scheme ×
// backend cell — the numbers the transitions golden table renders.
func TestRoundTripPinned(t *testing.T) {
	cases := []struct {
		scheme Scheme
		kind   Kind
		want   float64
	}{
		{SchemeDefault, GuardPage, 2 * TransitionNs},
		{SchemeDefault, ColorGuard, 2 * TransitionPKRUNs},
		{SchemeDefault, MTE, 2 * TransitionNs},
		{SchemeDefault, MultiProc, 2 * TransitionNs},
		{SchemeZeroCost, GuardPage, 2 * ZeroCostTransitionNs},
		{SchemeZeroCost, ColorGuard, 2 * (ZeroCostTransitionNs + WRPKRUTaxNs)},
		{SchemeZeroCost, MTE, 2 * ZeroCostTransitionNs},
		{SchemeZeroCost, MultiProc, 2 * ZeroCostTransitionNs},
		{SchemeOneStack, GuardPage, 2 * OneStackTransitionNs},
		{SchemeOneStack, ColorGuard, 2 * (OneStackTransitionNs + WRPKRUTaxNs)},
		{SchemeOneStack, MTE, 2 * OneStackTransitionNs},
		{SchemeOneStack, MultiProc, 2 * OneStackTransitionNs},
		{SchemeTrampoline, GuardPage, 2 * TrampolineTransitionNs},
		{SchemeTrampoline, ColorGuard, 2 * (TrampolineTransitionNs + WRPKRUTaxNs)},
		{SchemeTrampoline, MTE, 2 * TrampolineTransitionNs},
		{SchemeTrampoline, MultiProc, 2 * TrampolineTransitionNs},
	}
	for _, c := range cases {
		got := TransitionForScheme(c.scheme, c.kind).RoundTripNs()
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s/%s: round trip %.4f ns, want %.4f", c.scheme, c.kind, got, c.want)
		}
	}
	// Sanity-pin the headline figures against drift in the constants
	// themselves (ns, at 2.2 GHz).
	if got := TransitionForScheme(SchemeDefault, GuardPage).RoundTripNs(); math.Abs(got-60.68) > 1e-9 {
		t.Errorf("default/guardpage round trip %.4f ns, want 60.68", got)
	}
	if got := TransitionForScheme(SchemeDefault, ColorGuard).RoundTripNs(); math.Abs(got-103.04) > 1e-9 {
		t.Errorf("default/colorguard round trip %.4f ns, want 103.04", got)
	}
	if got := TransitionForScheme(SchemeZeroCost, GuardPage).RoundTripNs(); math.Abs(got-4.54) > 1e-9 {
		t.Errorf("zerocost/guardpage round trip %.4f ns, want 4.54", got)
	}
}

// TestZeroCostBeatsDefault: the acceptance bar — zerocost strictly
// below the default round trip on every backend, and the mechanism tax
// never disappears (ColorGuard stays above guardpage under every
// scheme; multiproc keeps its switch+refill terms).
func TestZeroCostBeatsDefault(t *testing.T) {
	for _, kind := range Kinds() {
		zc := TransitionForScheme(SchemeZeroCost, kind).RoundTripNs()
		def := TransitionForScheme(SchemeDefault, kind).RoundTripNs()
		if zc >= def {
			t.Errorf("%s: zerocost %.2f >= default %.2f", kind, zc, def)
		}
	}
	for _, s := range Schemes() {
		cg := TransitionForScheme(s, ColorGuard).RoundTripNs()
		gp := TransitionForScheme(s, GuardPage).RoundTripNs()
		if cg <= gp {
			t.Errorf("%s: colorguard %.2f <= guardpage %.2f (WRPKRU tax vanished)", s, cg, gp)
		}
		mp := TransitionForScheme(s, MultiProc)
		if mp.SwitchNs != CtxSwitchNs || mp.RefillNs != CacheRefillNs || !mp.FlushTLB {
			t.Errorf("%s: multiproc lost its mechanism terms: %+v", s, mp)
		}
	}
}

// TestBackendScheme: a backend reserved under a scheme reports it and
// prices its transitions with it; an empty Config.Scheme reserves the
// default.
func TestBackendScheme(t *testing.T) {
	cfg := Config{Slots: 4, MaxMemoryBytes: 1 << 20, GuardBytes: 1 << 20, Scheme: SchemeZeroCost}
	for _, kind := range Kinds() {
		kcfg := cfg
		if kind == ColorGuard {
			kcfg.Keys = 15
		}
		b, err := NewReserved(kind, mem.NewAS(47), kcfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := b.Scheme(); got != SchemeZeroCost {
			t.Errorf("%s: Scheme() = %v, want zerocost", kind, got)
		}
		if got, want := b.TransitionCost(), TransitionForScheme(SchemeZeroCost, kind); got != want {
			t.Errorf("%s: TransitionCost() = %+v, want %+v", kind, got, want)
		}
		if err := b.Release(); err != nil {
			t.Fatalf("%s: release: %v", kind, err)
		}
	}

	kcfg := cfg
	kcfg.Scheme = ""
	b, err := NewReserved(GuardPage, mem.NewAS(47), kcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if got := b.Scheme(); got != SchemeDefault {
		t.Errorf("empty Config.Scheme: Scheme() = %v, want default", got)
	}
	if got, want := b.TransitionCost(), TransitionFor(GuardPage); got != want {
		t.Errorf("empty Config.Scheme: TransitionCost() = %+v, want %+v", got, want)
	}
}

// TestDefaultSchemeProcessWide: SetDefaultScheme changes what the empty
// scheme resolves to (benchtab's -scheme flag), and the empty string
// restores the built-in default.
func TestDefaultSchemeProcessWide(t *testing.T) {
	defer SetDefaultScheme("")
	SetDefaultScheme(SchemeOneStack)
	if got := ResolveScheme(""); got != SchemeOneStack {
		t.Fatalf("ResolveScheme(\"\") = %v after SetDefaultScheme(onestack)", got)
	}
	if got := ResolveScheme(SchemeTrampoline); got != SchemeTrampoline {
		t.Fatalf("ResolveScheme(trampoline) = %v, explicit schemes must not be overridden", got)
	}
	if got, want := TransitionForScheme("", GuardPage), TransitionForScheme(SchemeOneStack, GuardPage); got != want {
		t.Fatalf("empty scheme under onestack default: %+v, want %+v", got, want)
	}
	SetDefaultScheme("")
	if got := ResolveScheme(""); got != SchemeDefault {
		t.Fatalf("ResolveScheme(\"\") = %v after reset", got)
	}
}
