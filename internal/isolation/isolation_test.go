package isolation

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/mte"
	"repro/internal/pool"
)

const testMemBytes = uint64(64 << 10)

func reserved(t *testing.T, kind Kind, cfg Config) Backend {
	t.Helper()
	b, err := NewReserved(kind, mem.NewAS(47), cfg)
	if err != nil {
		t.Fatalf("%s: reserve: %v", kind, err)
	}
	return b
}

func smallConfig() Config {
	return Config{Slots: 8, MaxMemoryBytes: testMemBytes, GuardBytes: 1 << 20, Keys: 4}
}

func TestBackendsImplementLifecycle(t *testing.T) {
	for _, kind := range Kinds() {
		b := reserved(t, kind, smallConfig())
		if b.Kind() != kind {
			t.Fatalf("kind = %s, want %s", b.Kind(), kind)
		}
		if b.Capacity() != 8 || b.Available() != 8 {
			t.Fatalf("%s: capacity/available = %d/%d, want 8/8", kind, b.Capacity(), b.Available())
		}
		s, err := b.Allocate(testMemBytes)
		if err != nil {
			t.Fatalf("%s: allocate: %v", kind, err)
		}
		if s.MaxBytes != testMemBytes {
			t.Fatalf("%s: slot max = %d, want %d", kind, s.MaxBytes, testMemBytes)
		}
		if b.Available() != 7 {
			t.Fatalf("%s: available after allocate = %d, want 7", kind, b.Available())
		}
		// The open region is readable/writable.
		v, ok := b.AS().VMAAt(s.Addr)
		if !ok || v.Prot&(mem.ProtRead|mem.ProtWrite) != (mem.ProtRead|mem.ProtWrite) {
			t.Fatalf("%s: slot not open after allocate (vma %+v ok=%v)", kind, v, ok)
		}
		if err := b.Recycle(s); err != nil {
			t.Fatalf("%s: recycle: %v", kind, err)
		}
		if b.Available() != 8 {
			t.Fatalf("%s: available after recycle = %d, want 8", kind, b.Available())
		}
		if err := b.Release(); err != nil {
			t.Fatalf("%s: release: %v", kind, err)
		}
	}
}

func TestUnreservedBackendErrors(t *testing.T) {
	for _, kind := range Kinds() {
		b, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Allocate(testMemBytes); !errors.Is(err, ErrNotReserved) {
			t.Fatalf("%s: allocate on empty backend: %v, want ErrNotReserved", kind, err)
		}
		if err := b.Recycle(Slot{}); !errors.Is(err, ErrNotReserved) {
			t.Fatalf("%s: recycle on empty backend: %v, want ErrNotReserved", kind, err)
		}
	}
}

func TestDoubleReserveRejected(t *testing.T) {
	b := reserved(t, GuardPage, smallConfig())
	if err := b.Reserve(mem.NewAS(47), smallConfig()); !errors.Is(err, ErrReserved) {
		t.Fatalf("second reserve: %v, want ErrReserved", err)
	}
}

// TestBackendDoubleRecycle: recycling a slot twice is the pool
// double-free, surfaced through the backend for every kind.
func TestBackendDoubleRecycle(t *testing.T) {
	for _, kind := range Kinds() {
		b := reserved(t, kind, smallConfig())
		s, err := b.Allocate(testMemBytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Recycle(s); err != nil {
			t.Fatal(err)
		}
		if err := b.Recycle(s); !errors.Is(err, pool.ErrDoubleFree) {
			t.Fatalf("%s: second recycle: %v, want ErrDoubleFree", kind, err)
		}
		// The double free must not double the teardown accounting.
		_, teardown := b.LifecycleNs()
		want := LifecycleFor(kind, false).TeardownNs(testMemBytes)
		if teardown != want {
			t.Fatalf("%s: teardown after double recycle = %v, want %v", kind, teardown, want)
		}
	}
}

// TestColorGuardColorsPersist: MPK colors live in PTEs, so a recycled
// and reallocated slot keeps its stripe color without re-striping — the
// §7 advantage over MTE.
func TestColorGuardColorsPersist(t *testing.T) {
	b := reserved(t, ColorGuard, smallConfig())
	s, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pkey == 0 {
		t.Fatal("colorguard slot has no color")
	}
	v, ok := b.AS().VMAAt(s.Addr)
	if !ok || v.Pkey != s.Pkey {
		t.Fatalf("slot VMA pkey = %d, want %d", v.Pkey, s.Pkey)
	}
	if err := b.Recycle(s); err != nil {
		t.Fatal(err)
	}
	// madvise discards contents but not the mapping or its key.
	v, ok = b.AS().VMAAt(s.Addr)
	if !ok || v.Pkey != s.Pkey {
		t.Fatalf("after recycle, VMA pkey = %d, want %d (colors must survive madvise)", v.Pkey, s.Pkey)
	}
	// LIFO reuse hands back the same slot, same color, and charges no
	// coloring cost (ColorNsPerByte is zero under MPK).
	s2, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Index != s.Index || s2.Pkey != s.Pkey {
		t.Fatalf("reused slot = (%d, key %d), want (%d, key %d)", s2.Index, s2.Pkey, s.Index, s.Pkey)
	}
	initNs, _ := b.LifecycleNs()
	want := 2 * LifecycleFor(ColorGuard, false).InitNs(testMemBytes, false)
	if initNs != want {
		t.Fatalf("init accounting = %v, want %v (no recoloring charge)", initNs, want)
	}
}

// TestMTERetagsAfterMadvise: without the tag-preserving madvise,
// recycling discards granule tags, and the next allocation of the slot
// pays the full re-tagging cost.
func TestMTERetagsAfterMadvise(t *testing.T) {
	b := reserved(t, MTE, smallConfig())
	mb := b.(*mteBackend)
	s, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tag == 0 || s.Tag != TagForSlot(s.Index) {
		t.Fatalf("slot tag = %d, want %d", s.Tag, TagForSlot(s.Index))
	}
	if got := mb.Tags().Get(s.Addr); got != s.Tag {
		t.Fatalf("granule tag = %d, want %d", got, s.Tag)
	}
	life := LifecycleFor(MTE, false)
	firstInit := life.InitNs(testMemBytes, true)
	if initNs, _ := b.LifecycleNs(); initNs != firstInit {
		t.Fatalf("first init = %v, want %v (base + tagging)", initNs, firstInit)
	}
	if err := b.Recycle(s); err != nil {
		t.Fatal(err)
	}
	// madvise dropped the tags with the pages.
	if got := mb.Tags().Get(s.Addr); got != 0 {
		t.Fatalf("after recycle, granule tag = %d, want 0 (madvise discards tags)", got)
	}
	if _, teardown := b.LifecycleNs(); teardown != life.TeardownNs(testMemBytes) {
		t.Fatalf("teardown = %v, want %v (includes tag-clearing term)", teardown, life.TeardownNs(testMemBytes))
	}
	// Reuse re-tags and pays for it again.
	s2, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Index != s.Index {
		t.Fatalf("reused slot = %d, want %d (LIFO)", s2.Index, s.Index)
	}
	if got := mb.Tags().Get(s2.Addr); got != s2.Tag {
		t.Fatalf("after reuse, granule tag = %d, want %d (re-tagged)", got, s2.Tag)
	}
	if initNs, _ := b.LifecycleNs(); initNs != 2*firstInit {
		t.Fatalf("init after reuse = %v, want %v (full re-tag charged)", initNs, 2*firstInit)
	}
}

// TestMTEPreservingMadviseSkipsRetag: with the proposed fix, tags
// survive recycling, so reuse is as cheap as under MPK.
func TestMTEPreservingMadviseSkipsRetag(t *testing.T) {
	cfg := smallConfig()
	cfg.PreserveTagsOnMadvise = true
	b := reserved(t, MTE, cfg)
	mb := b.(*mteBackend)
	life := b.LifecycleCost()
	if life.RecolorOnReuse || life.DecolorNsPerByte != 0 {
		t.Fatalf("preserving lifecycle = %+v, want no decolor/recolor terms", life)
	}
	s, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recycle(s); err != nil {
		t.Fatal(err)
	}
	if got := mb.Tags().Get(s.Addr); got != s.Tag {
		t.Fatalf("after preserving recycle, granule tag = %d, want %d", got, s.Tag)
	}
	s2, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	initNs, teardownNs := b.LifecycleNs()
	wantInit := life.InitNs(testMemBytes, true) + life.InitNs(testMemBytes, false)
	if initNs != wantInit {
		t.Fatalf("init = %v, want %v (reuse skips tagging)", initNs, wantInit)
	}
	if teardownNs != life.TeardownNs(testMemBytes) {
		t.Fatalf("teardown = %v, want base-only %v", teardownNs, life.TeardownNs(testMemBytes))
	}
	if got := mb.Tags().Get(s2.Addr); got != s2.Tag {
		t.Fatalf("reused slot tag = %d, want %d", got, s2.Tag)
	}
}

// TestGuardPageRecycledSlotStaysGuarded: after a recycle, the guard
// space around a guard-page slot is still PROT_NONE, and the next slot
// over is unreachable.
func TestGuardPageSlotGeometry(t *testing.T) {
	b := reserved(t, GuardPage, smallConfig())
	s0, err := b.Allocate(testMemBytes)
	if err != nil {
		t.Fatal(err)
	}
	// The region immediately after the slot's maximum memory is guard
	// space: PROT_NONE all the way to the next slot.
	guardAddr := s0.Addr + s0.MaxBytes
	v, ok := b.AS().VMAAt(guardAddr)
	if !ok || v.Prot != mem.ProtNone {
		t.Fatalf("guard VMA at %#x = %+v ok=%v, want PROT_NONE", guardAddr, v, ok)
	}
	if err := b.Recycle(s0); err != nil {
		t.Fatal(err)
	}
	// Recycling must not open anything: the slot pages were discarded,
	// the guard is still PROT_NONE.
	v, ok = b.AS().VMAAt(guardAddr)
	if !ok || v.Prot != mem.ProtNone {
		t.Fatalf("after recycle, guard VMA = %+v ok=%v, want PROT_NONE", v, ok)
	}
	if err := b.CheckIsolation(); err != nil {
		t.Fatalf("isolation check: %v", err)
	}
}

// TestMultiProcDealsSlots: slots are dealt round-robin across the
// configured process count, and the cost model charges switches.
func TestMultiProcDealsSlots(t *testing.T) {
	cfg := smallConfig()
	cfg.Processes = 3
	b := reserved(t, MultiProc, cfg)
	if got := b.(*multiProc).Processes(); got != 3 {
		t.Fatalf("processes = %d, want 3", got)
	}
	for i := 0; i < 6; i++ {
		s, err := b.Allocate(testMemBytes)
		if err != nil {
			t.Fatal(err)
		}
		if s.Proc != s.Index%3 {
			t.Fatalf("slot %d proc = %d, want %d", s.Index, s.Proc, s.Index%3)
		}
	}
	trans := b.TransitionCost()
	if trans.SwitchNs != CtxSwitchNs || trans.RefillNs != CacheRefillNs || !trans.FlushTLB {
		t.Fatalf("multiproc transition = %+v, want context-switch costs and TLB flush", trans)
	}
}

// TestTransitionCostModel pins the §6.4.1/§6.4.3 numbers the golden
// tables depend on.
func TestTransitionCostModel(t *testing.T) {
	if got := TransitionFor(GuardPage).RoundTripNs(); got != 2*30.34 {
		t.Fatalf("guardpage round trip = %v, want %v", got, 2*30.34)
	}
	if got := TransitionFor(ColorGuard).RoundTripNs(); got != 2*51.52 {
		t.Fatalf("colorguard round trip = %v, want %v", got, 2*51.52)
	}
	mp := TransitionFor(MultiProc)
	if mp.RoundTripNs() != 2*30.34 || mp.SwitchNs != 3500 || mp.RefillNs != 3200 {
		t.Fatalf("multiproc costs = %+v", mp)
	}
}

// TestLifecycleCostModel pins the §7 per-instance numbers for a 64 KiB
// memory: 79/29 µs plain, 2182/377 µs under MTE, and 2182/29 with the
// preserving madvise.
func TestLifecycleCostModel(t *testing.T) {
	cases := []struct {
		kind              Kind
		preserve, recolor bool
		initUs, downUs    float64
	}{
		{GuardPage, false, false, 79, 29},
		{MTE, false, true, 2182, 377},
		{MTE, true, true, 2182, 29},
	}
	for _, c := range cases {
		l := LifecycleFor(c.kind, c.preserve)
		init := l.InitNs(testMemBytes, c.recolor) / 1e3
		down := l.TeardownNs(testMemBytes) / 1e3
		if math.Abs(init-c.initUs) > 1e-9 || math.Abs(down-c.downUs) > 1e-9 {
			t.Fatalf("%s preserve=%v: %v/%v µs, want %v/%v", c.kind, c.preserve, init, down, c.initUs, c.downUs)
		}
	}
	if got := LifecycleFor(MTE, false).ColorNsPerByte; got != mte.TagNsPerByte {
		t.Fatalf("ColorNsPerByte = %v, want %v", got, mte.TagNsPerByte)
	}
}

// TestPlanLayoutMatchesPool: the density math is pool.ComputeLayout's,
// with striping only under ColorGuard.
func TestPlanLayoutMatchesPool(t *testing.T) {
	budget := uint64(85) << 40
	maxMem := uint64(408) << 20
	guard := uint64(6)<<30 - maxMem
	cfg := Config{MaxMemoryBytes: maxMem, GuardBytes: guard, TotalBytes: budget, Keys: 15}
	for _, kind := range Kinds() {
		l, err := PlanLayout(kind, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wantKeys := 0
		if kind == ColorGuard {
			wantKeys = 15
		}
		want, err := pool.ComputeLayout(pool.Config{MaxMemoryBytes: maxMem, GuardBytes: guard, TotalBytes: budget, Keys: wantKeys})
		if err != nil {
			t.Fatal(err)
		}
		if l != want {
			t.Fatalf("%s: layout %+v != pool layout %+v", kind, l, want)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := New(Kind("cheri")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
