package isolation

// guardPage is classic guard-region SFI: slots are separated by dead
// PROT_NONE address space covering the full guard requirement, so an
// out-of-bounds access lands in unmapped memory and faults. No
// coloring, no extra transition cost — the mechanism's whole price is
// address-space density (§6.4.2).
type guardPage struct {
	slab
}

func newGuardPage() *guardPage {
	b := &guardPage{}
	b.slab.kind = GuardPage
	b.slab.trans = TransitionFor(GuardPage)
	b.slab.life = LifecycleFor(GuardPage, false)
	return b
}
