package isolation

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Backend state errors.
var (
	ErrNotReserved = errors.New("isolation: backend has no reservation (call Reserve first)")
	ErrReserved    = errors.New("isolation: backend already reserved")
)

// slab is the shared pooled implementation behind every backend: a
// pool.Pool slab reservation plus the backend's cost models and the
// accumulated lifecycle accounting. Concrete backends embed it and
// override the lifecycle steps their mechanism changes.
type slab struct {
	kind   Kind
	cfg    Config
	as     *mem.AS
	p      *pool.Pool
	scheme Scheme
	trans  TransitionCost
	life   LifecycleCost

	initNs     float64
	teardownNs float64

	// Lifecycle telemetry (isolation.<kind>.allocates/.recycles/.grows/
	// .colors), bound by Reserve. Lifecycle events are per-instance, not
	// per-instruction, so the single atomic add per event is paid
	// unconditionally. Nil only before Reserve, and every count site is
	// behind the s.p != nil check.
	ctrAlloc   *telemetry.Counter
	ctrRecycle *telemetry.Counter
	ctrGrow    *telemetry.Counter
	ctrColor   *telemetry.Counter
}

func (s *slab) Kind() Kind { return s.kind }

func (s *slab) Reserve(as *mem.AS, cfg Config) error {
	if s.p != nil {
		return ErrReserved
	}
	p, err := pool.New(as, poolConfig(s.kind, cfg))
	if err != nil {
		return fmt.Errorf("isolation: %s: %w", s.kind, err)
	}
	s.as, s.cfg, s.p = as, cfg, p
	s.scheme = ResolveScheme(cfg.Scheme)
	s.trans = TransitionForScheme(s.scheme, s.kind)
	s.life = LifecycleFor(s.kind, cfg.PreserveTagsOnMadvise)
	pfx := "isolation." + string(s.kind)
	s.ctrAlloc = telemetry.Default.Counter(pfx + ".allocates")
	s.ctrRecycle = telemetry.Default.Counter(pfx + ".recycles")
	s.ctrGrow = telemetry.Default.Counter(pfx + ".grows")
	s.ctrColor = telemetry.Default.Counter(pfx + ".colors")
	return nil
}

// allocate is the shared slot-taking step; recolor selects the
// lifecycle coloring charge (backends that color memory pass true on
// first use and after discarding recycles).
func (s *slab) allocate(initialBytes uint64, recolor bool) (Slot, error) {
	if s.p == nil {
		return Slot{}, ErrNotReserved
	}
	ps, err := s.p.Allocate(initialBytes)
	if err != nil {
		return Slot{}, err
	}
	s.initNs += s.life.InitNs(initialBytes, recolor)
	s.ctrAlloc.Inc()
	if recolor || ps.Pkey != 0 {
		s.ctrColor.Inc()
	}
	return Slot{Index: ps.Index, Addr: ps.Addr, Pkey: ps.Pkey, MaxBytes: ps.MaxBytes}, nil
}

func (s *slab) Allocate(initialBytes uint64) (Slot, error) {
	return s.allocate(initialBytes, false)
}

// Color is a no-op for PTE- and process-based mechanisms: the coloring
// is applied by Allocate (pkey_mprotect) or implied by the address
// space, and persists across recycles.
func (s *slab) Color(Slot, uint64) error { return nil }

func (s *slab) Grow(sl Slot, upTo uint64) error {
	if s.p == nil {
		return ErrNotReserved
	}
	if err := s.p.Grow(poolSlot(sl), upTo); err != nil {
		return err
	}
	s.ctrGrow.Inc()
	return nil
}

func (s *slab) Recycle(sl Slot) error {
	if s.p == nil {
		return ErrNotReserved
	}
	if err := s.p.Free(poolSlot(sl)); err != nil {
		return err
	}
	s.teardownNs += s.life.TeardownNs(sl.MaxBytes)
	s.ctrRecycle.Inc()
	return nil
}

func (s *slab) Release() error {
	if s.p == nil {
		return ErrNotReserved
	}
	err := s.as.Munmap(s.p.Base, s.p.Layout.TotalSlabBytes)
	s.p = nil
	return err
}

func (s *slab) AS() *mem.AS { return s.as }

func (s *slab) Layout() pool.Layout {
	if s.p == nil {
		return pool.Layout{}
	}
	return s.p.Layout
}

func (s *slab) Capacity() int {
	if s.p == nil {
		return 0
	}
	return s.p.Capacity()
}

func (s *slab) Available() int {
	if s.p == nil {
		return 0
	}
	return s.p.Available()
}

func (s *slab) CheckIsolation() error {
	if s.p == nil {
		return ErrNotReserved
	}
	return s.p.CheckIsolation()
}

func (s *slab) TransitionCost() TransitionCost { return s.trans }
func (s *slab) LifecycleCost() LifecycleCost   { return s.life }

func (s *slab) Scheme() Scheme {
	if s.scheme == "" {
		return SchemeDefault
	}
	return s.scheme
}

func (s *slab) LifecycleNs() (initNs, teardownNs float64) {
	return s.initNs, s.teardownNs
}

func poolSlot(sl Slot) pool.Slot {
	return pool.Slot{Index: sl.Index, Addr: sl.Addr, Pkey: sl.Pkey, MaxBytes: sl.MaxBytes}
}
