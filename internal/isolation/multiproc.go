package isolation

import (
	"repro/internal/mem"
)

// multiProc is the scaling strategy ColorGuard replaces (§6.4.3): each
// isolation domain is an OS process, dealt round-robin across
// Config.Processes. Isolation is free at the mechanism level — disjoint
// page tables — but every domain crossing is a kernel context switch
// that flushes the dTLB and cold-starts the caches (Figure 7), which is
// what TransitionFor(MultiProc) charges.
type multiProc struct {
	slab
	processes int
}

func newMultiProc() *multiProc {
	b := &multiProc{processes: 1}
	b.slab.kind = MultiProc
	b.slab.trans = TransitionFor(MultiProc)
	b.slab.life = LifecycleFor(MultiProc, false)
	return b
}

// Processes returns the process count slots are dealt across.
func (b *multiProc) Processes() int { return b.processes }

func (b *multiProc) Reserve(as *mem.AS, cfg Config) error {
	if err := b.slab.Reserve(as, cfg); err != nil {
		return err
	}
	if cfg.Processes > 0 {
		b.processes = cfg.Processes
	}
	return nil
}

func (b *multiProc) Allocate(initialBytes uint64) (Slot, error) {
	sl, err := b.slab.allocate(initialBytes, false)
	if err != nil {
		return Slot{}, err
	}
	sl.Proc = sl.Index % b.processes
	return sl, nil
}
