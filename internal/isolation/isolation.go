// Package isolation is the unified isolation-backend layer: one slot
// lifecycle (Reserve → Allocate → Color → Recycle → Release) shared by
// every mechanism the paper compares — guard-page SFI, ColorGuard's MPK
// page striping (§3.2, §5.1), ColorGuard-MTE granule tagging (§7), and
// classic N-process scaling (§6.4.3) — plus the transition- and
// lifecycle-cost models those mechanisms differ on.
//
// The point of the abstraction is that the paper's central comparison
// is exactly an axis of this interface: every backend places instances
// into slots the same way, but each pays different costs to cross the
// isolation boundary (TransitionCost) and to initialize or recycle a
// slot (LifecycleCost). The runtime (internal/rt), the FaaS simulator
// (internal/faas), and the experiments (internal/exp) all consume the
// same Backend, so the §6.4 tables and the §7 MTE numbers come from one
// code path. Adding a new mechanism (CHERI-style capabilities, a
// Segue-off ablation) is one new file implementing Backend.
package isolation

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/mte"
	"repro/internal/pool"
)

// Kind names an isolation backend.
type Kind string

// The four backends of the paper's comparison.
const (
	// GuardPage is classic guard-region SFI: slots are separated by
	// dead PROT_NONE address space sized to the guard requirement.
	GuardPage Kind = "guardpage"

	// ColorGuard stripes slots with MPK protection keys so guard space
	// is reclaimed as differently-colored neighbor slots (§3.2).
	ColorGuard Kind = "colorguard"

	// MTE colors 16-byte granules with ARM memory-tagging tags instead
	// of coloring pages with PTE keys (§7).
	MTE Kind = "mte"

	// MultiProc is the strategy ColorGuard replaces: one OS process per
	// isolation domain, paying context-switch and cache/TLB refill
	// costs at every domain crossing (§6.4.3).
	MultiProc Kind = "multiproc"
)

// Kinds returns every backend kind, in the paper's comparison order.
func Kinds() []Kind { return []Kind{GuardPage, ColorGuard, MTE, MultiProc} }

// Config describes the slot geometry a backend manages. It mirrors the
// pooling allocator's parameters (§5.1) plus the per-mechanism options.
type Config struct {
	// Slots is the slot count; 0 fills TotalBytes.
	Slots int

	// MaxMemoryBytes is the largest linear memory a slot must hold.
	MaxMemoryBytes uint64

	// GuardBytes is the guard requirement between a sandbox and the
	// next region it must never reach.
	GuardBytes uint64

	// PreGuardBytes reserves a shared pre-guard before the first slot
	// (the signed-offset scheme).
	PreGuardBytes uint64

	// TotalBytes caps the slab reservation; required when Slots is 0.
	TotalBytes uint64

	// Keys is the number of MPK keys available (ColorGuard only).
	Keys int

	// Processes is the process count (MultiProc only); slots are dealt
	// round-robin across processes.
	Processes int

	// PreserveTagsOnMadvise selects §7's proposed fix (MTE only): an
	// madvise flag that leaves granule tags invariant, making recycling
	// as cheap as under MPK.
	PreserveTagsOnMadvise bool

	// Scheme selects the transition calling-convention scheme the
	// backend's TransitionCost is priced under. Empty means the process
	// default (SchemeDefault unless SetDefaultScheme changed it).
	Scheme Scheme
}

// Slot is one allocated isolation domain: where the instance's linear
// memory lives and how the backend marks it. Exactly one of Pkey/Tag is
// meaningful per backend; Proc identifies the owning OS process under
// MultiProc.
type Slot struct {
	Index    int
	Addr     uint64
	Pkey     uint8 // MPK color (ColorGuard)
	Tag      uint8 // MTE granule tag (MTE)
	Proc     int   // owning process (MultiProc)
	MaxBytes uint64
}

// TransitionCost is the per-boundary-crossing cost model (§6.4.1,
// §6.4.3): what entering and leaving an isolation domain costs at user
// level, and what switching between domains costs when domains are OS
// processes.
type TransitionCost struct {
	// EnterNs/LeaveNs is the user-level sandbox transition cost each
	// way: stack switch, ABI adjustment, exception-handler setup, plus
	// the PKRU write under ColorGuard.
	EnterNs float64
	LeaveNs float64

	// SwitchNs/RefillNs is the cost of moving the core between two
	// domains that are separate OS processes: the direct kernel
	// context-switch cost and the L1/L2 warmup the displaced working
	// set causes (Figure 7). Zero for same-process backends.
	SwitchNs float64
	RefillNs float64

	// FlushTLB reports whether a domain switch flushes the dTLB
	// (process switches do; user-level transitions keep it warm).
	FlushTLB bool
}

// RoundTripNs is the enter+leave cost of one sandbox invocation.
func (t TransitionCost) RoundTripNs() float64 { return t.EnterNs + t.LeaveNs }

// LifecycleCost is the per-slot init/recycle cost model (§7): a base
// cost proportional to the memory size, plus per-byte coloring terms
// where the mechanism stores colors in memory rather than PTEs.
type LifecycleCost struct {
	// InitBaseNs is the mmap+zero cost per 64 KiB of linear memory.
	InitBaseNs float64

	// ColorNsPerByte is the extra per-byte cost of applying the
	// backend's coloring to fresh memory (MTE's user-level tagging;
	// zero for PTE-based coloring, which piggybacks on mprotect).
	ColorNsPerByte float64

	// TeardownBaseNs is the madvise(MADV_DONTNEED) cost per 64 KiB.
	TeardownBaseNs float64

	// DecolorNsPerByte is the extra per-byte teardown cost where
	// recycling discards the coloring (MTE without the tag-preserving
	// madvise).
	DecolorNsPerByte float64

	// RecolorOnReuse reports whether a recycled slot must be recolored
	// before reuse (MTE without the fix; MPK colors live in PTEs and
	// survive madvise).
	RecolorOnReuse bool
}

// InitNs returns the cost of initializing bytes of slot memory; recolor
// selects the coloring term (first use, or reuse after a discarding
// recycle).
func (l LifecycleCost) InitNs(bytes uint64, recolor bool) float64 {
	cost := l.InitBaseNs * float64(bytes) / 65536
	if recolor {
		cost += l.ColorNsPerByte * float64(bytes)
	}
	return cost
}

// TeardownNs returns the cost of recycling bytes of slot memory.
func (l LifecycleCost) TeardownNs(bytes uint64) float64 {
	return l.TeardownBaseNs*float64(bytes)/65536 + l.DecolorNsPerByte*float64(bytes)
}

// Measured cost constants shared by the backends' models: the §6.4.1
// transition measurements at 2.2 GHz and the standard Linux same-core
// context-switch figures behind Figure 7.
const (
	// TransitionNs is one sandbox transition without ColorGuard.
	TransitionNs = 30.34
	// TransitionPKRUNs adds the ~44-cycle WRPKRU each way.
	TransitionPKRUNs = 51.52
	// CtxSwitchNs is the direct kernel process-switch cost.
	CtxSwitchNs = 3500.0
	// CacheRefillNs models the post-switch L1/L2 warmup (a 48 KiB L1
	// alone is ~750 lines), the "resource contention" of Figure 7.
	CacheRefillNs = 3200.0
)

// TransitionFor returns the transition cost model of a backend kind
// under the default transition scheme (the §6.4.1 convention every
// pre-scheme golden was produced with). TransitionForScheme generalizes
// it over the calling-convention axis.
func TransitionFor(kind Kind) TransitionCost {
	return transitionDefault(kind)
}

// transitionDefault is the historical cost switch, kept verbatim so the
// default scheme is bit-exact with every pre-scheme number: the faas
// simulator integrates these floats over millions of virtual-time
// events, where even one ulp would shift a golden table.
func transitionDefault(kind Kind) TransitionCost {
	switch kind {
	case ColorGuard:
		return TransitionCost{EnterNs: TransitionPKRUNs, LeaveNs: TransitionPKRUNs}
	case MultiProc:
		return TransitionCost{
			EnterNs: TransitionNs, LeaveNs: TransitionNs,
			SwitchNs: CtxSwitchNs, RefillNs: CacheRefillNs, FlushTLB: true,
		}
	default: // GuardPage, MTE: plain user-level transitions.
		return TransitionCost{EnterNs: TransitionNs, LeaveNs: TransitionNs}
	}
}

// LifecycleFor returns the lifecycle cost model of a backend kind. The
// base terms are the §7 measurements for mmap+zero and madvise; only
// MTE adds coloring terms, and only without the tag-preserving madvise
// does recycling discard the colors.
func LifecycleFor(kind Kind, preserveTags bool) LifecycleCost {
	lc := LifecycleCost{InitBaseNs: mte.InitBaseNs, TeardownBaseNs: mte.TeardownBaseNs}
	if kind == MTE {
		lc.ColorNsPerByte = mte.TagNsPerByte
		if !preserveTags {
			lc.DecolorNsPerByte = mte.TagClearNsPerByte
			lc.RecolorOnReuse = true
		}
	}
	return lc
}

// Backend is the unified slot lifecycle every isolation mechanism
// implements. A backend is created empty (New), bound to an address
// space and geometry once (Reserve), then hands out slots (Allocate),
// re-applies coloring where the mechanism needs it (Color), returns
// slots to the free list (Recycle), and finally tears the slab down
// (Release). TransitionCost and LifecycleCost expose the mechanism's
// cost models to the runtime and the simulators.
type Backend interface {
	// Kind identifies the mechanism.
	Kind() Kind

	// Reserve maps the slab into as under cfg and prepares the free
	// list. Must be called exactly once before any allocation.
	Reserve(as *mem.AS, cfg Config) error

	// Allocate takes a free slot, opens initialBytes of it read-write
	// with the backend's coloring applied, and charges the lifecycle
	// init cost (including recoloring when a prior recycle discarded
	// the colors).
	Allocate(initialBytes uint64) (Slot, error)

	// Color re-applies the backend's isolation marking to bytes of an
	// allocated slot (a no-op where colors persist in PTEs).
	Color(s Slot, bytes uint64) error

	// Grow opens more of an allocated slot, up to its maximum.
	Grow(s Slot, upTo uint64) error

	// Recycle returns a slot to the free list, discarding contents with
	// madvise and charging the lifecycle teardown cost.
	Recycle(s Slot) error

	// Release unmaps the whole slab.
	Release() error

	// AS returns the address space the slab lives in.
	AS() *mem.AS

	// Layout returns the computed slab geometry.
	Layout() pool.Layout

	// Capacity and Available return total and free slot counts.
	Capacity() int
	Available() int

	// CheckIsolation validates the backend's safety property on the
	// concrete slot layout (striping distances, guard coverage).
	CheckIsolation() error

	// TransitionCost returns the per-boundary-crossing cost model
	// (priced under the backend's transition scheme).
	TransitionCost() TransitionCost

	// Scheme returns the transition scheme the backend was reserved
	// under (SchemeDefault before Reserve).
	Scheme() Scheme

	// LifecycleCost returns the per-slot init/recycle cost model.
	LifecycleCost() LifecycleCost

	// LifecycleNs returns the accumulated init and teardown time
	// charged by Allocate and Recycle so far.
	LifecycleNs() (initNs, teardownNs float64)
}

// New returns an empty backend of the given kind.
func New(kind Kind) (Backend, error) {
	switch kind {
	case GuardPage:
		return newGuardPage(), nil
	case ColorGuard:
		return newColorGuard(), nil
	case MTE:
		return newMTE(), nil
	case MultiProc:
		return newMultiProc(), nil
	}
	return nil, fmt.Errorf("isolation: unknown backend kind %q", kind)
}

// NewReserved creates a backend and reserves its slab in one step.
func NewReserved(kind Kind, as *mem.AS, cfg Config) (Backend, error) {
	b, err := New(kind)
	if err != nil {
		return nil, err
	}
	if err := b.Reserve(as, cfg); err != nil {
		return nil, err
	}
	return b, nil
}

// PlanLayout computes the slot layout Reserve would use for a kind,
// without reserving address space — the pure §6.4.2 density math.
func PlanLayout(kind Kind, cfg Config) (pool.Layout, error) {
	return pool.ComputeLayout(poolConfig(kind, cfg))
}

// poolConfig translates an isolation Config into the pooling
// allocator's geometry. Only ColorGuard stripes; every other mechanism
// separates slots with real guard space (MTE colors granules inside the
// slot, processes have disjoint address spaces).
func poolConfig(kind Kind, cfg Config) pool.Config {
	pc := pool.Config{
		NumSlots:       cfg.Slots,
		MaxMemoryBytes: cfg.MaxMemoryBytes,
		GuardBytes:     cfg.GuardBytes,
		PreGuardBytes:  cfg.PreGuardBytes,
		TotalBytes:     cfg.TotalBytes,
	}
	if kind == ColorGuard {
		pc.Keys = cfg.Keys
	}
	return pc
}

// Placement describes where a runtime instance's linear memory lives
// and under which isolation domain it runs. internal/rt consumes this
// instead of raw (AS, base, pkey) triples.
type Placement struct {
	// AS, when non-nil, is the shared address space of a pooled
	// backend; Slot.Addr is then the instance's slot base. Nil means
	// the runtime makes a standalone reservation and applies Slot's
	// coloring to it.
	AS *mem.AS

	// Slot carries the domain marking (color, tag, process).
	Slot Slot

	// Backend, when non-nil, owns the slot: closing the instance
	// recycles through it.
	Backend Backend
}

// Place returns the placement for a slot allocated from b.
func Place(b Backend, s Slot) *Placement {
	return &Placement{AS: b.AS(), Slot: s, Backend: b}
}

// Colored returns a standalone placement carrying an MPK color: the
// runtime reserves its own address space but colors the linear memory
// and restricts PKRU while the instance runs.
func Colored(pkey uint8) *Placement {
	return &Placement{Slot: Slot{Pkey: pkey}}
}
