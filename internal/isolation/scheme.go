package isolation

import (
	"fmt"
	"sync/atomic"
)

// Scheme names a transition calling-convention scheme: how much
// register and stack state a sandbox crossing saves, restores, and
// switches. "Isolation Without Taxation" shows most of the classic
// transition cost (register save/restore, stack switch, springboard
// indirection) is a convention choice, not a security requirement —
// so the scheme is an axis orthogonal to the isolation mechanism.
//
// A scheme prices only the convention half of a crossing. The
// mechanism tax composes on top and never goes away: ColorGuard still
// pays a WRPKRU each way, and multiproc still pays the context-switch
// and cache-refill costs when the core moves between process domains.
// TransitionForScheme is the single place that composition happens.
type Scheme string

// The four transition schemes, cheapest convention last-but-one.
const (
	// SchemeDefault is the conventional transition the paper measures
	// in §6.4.1: stack switch, ABI adjustment, and exception-handler
	// setup — 30.34 ns each way at 2.2 GHz. Every pre-scheme golden
	// number was produced under this convention.
	SchemeDefault Scheme = "default"

	// SchemeZeroCost is the zero-cost calling convention: the sandbox
	// shares the host's ABI, so entering is an ordinary call and
	// leaving an ordinary return — no register save/restore, no stack
	// switch. The crossing costs what a function call costs.
	SchemeZeroCost Scheme = "zerocost"

	// SchemeOneStack keeps the host stack inside the sandbox and saves
	// context lazily: only the registers the crossing actually clobbers
	// are spilled, on first use rather than up front.
	SchemeOneStack Scheme = "onestack"

	// SchemeTrampoline is the heavyweight springboard baseline: a full
	// register-file save/restore plus an indirect trampoline jump in
	// each direction — the classic NaCl-style crossing the other
	// schemes are measured against.
	SchemeTrampoline Scheme = "trampoline"
)

// Schemes returns every transition scheme, default first.
func Schemes() []Scheme {
	return []Scheme{SchemeDefault, SchemeZeroCost, SchemeOneStack, SchemeTrampoline}
}

// ParseScheme maps a flag string to a Scheme; the empty string selects
// the process default (see SetDefaultScheme).
func ParseScheme(s string) (Scheme, error) {
	if s == "" {
		return DefaultScheme(), nil
	}
	for _, sc := range Schemes() {
		if sc == Scheme(s) {
			return sc, nil
		}
	}
	return "", fmt.Errorf("isolation: unknown transition scheme %q (want one of %v)", s, Schemes())
}

// defaultScheme is the process-wide scheme used wherever a Config or
// InstanceOptions leaves the scheme empty. benchtab's -scheme flag sets
// it so every experiment in a run shares one convention.
var defaultScheme atomic.Value // Scheme

// SetDefaultScheme installs the process-wide default transition scheme.
// The empty string restores SchemeDefault.
func SetDefaultScheme(s Scheme) {
	if s == "" {
		s = SchemeDefault
	}
	defaultScheme.Store(s)
}

// DefaultScheme returns the process-wide default transition scheme.
func DefaultScheme() Scheme {
	if s, ok := defaultScheme.Load().(Scheme); ok {
		return s
	}
	return SchemeDefault
}

// ResolveScheme maps the empty scheme to the process default and leaves
// every explicit scheme unchanged.
func ResolveScheme(s Scheme) Scheme {
	if s == "" {
		return DefaultScheme()
	}
	return s
}

// Per-scheme convention costs. The nanosecond figures feed the
// virtual-time simulators (faas) and the cycle figures feed the
// runtime's per-transition charging (rt) — sibling views of the same
// measurement, like TransitionNs (30.34 ns) and the runtime's 66.7
// cycles are for the default convention.
const (
	// defaultTransitionCycles is the runtime-side charge of one default
	// transition (≈30.34 ns at 2.2 GHz).
	defaultTransitionCycles = 66.7

	// ZeroCostTransitionNs is a zero-cost crossing each way: a call (or
	// ret) plus the pipeline bubble of the indirect target — 5 cycles.
	ZeroCostTransitionNs     = 2.27
	zeroCostTransitionCycles = 5.0

	// OneStackTransitionNs is a lazy-save crossing each way: the call
	// plus spilling the handful of registers the crossing clobbers —
	// 22 cycles.
	OneStackTransitionNs     = 10.0
	oneStackTransitionCycles = 22.0

	// TrampolineTransitionNs is the springboard baseline each way: full
	// register-file save/restore, stack switch, and the indirect
	// trampoline jump — 132 cycles.
	TrampolineTransitionNs     = 60.0
	trampolineTransitionCycles = 132.0

	// WRPKRUTaxNs is ColorGuard's mechanism tax each way under any
	// scheme: the §6.4.1 measured growth from 30.34 ns to 51.52 ns.
	WRPKRUTaxNs = 21.18
)

// BaseNs returns the scheme's convention cost of one crossing (one
// way), before any mechanism tax.
func (s Scheme) BaseNs() float64 {
	switch s {
	case SchemeZeroCost:
		return ZeroCostTransitionNs
	case SchemeOneStack:
		return OneStackTransitionNs
	case SchemeTrampoline:
		return TrampolineTransitionNs
	default:
		return TransitionNs
	}
}

// BaseCycles returns the scheme's convention cost of one crossing in
// runtime cycles — what rt.Instance charges per transitionIn/Out on
// top of the mechanism instructions (segment-base write, WRPKRU).
func (s Scheme) BaseCycles() float64 {
	switch s {
	case SchemeZeroCost:
		return zeroCostTransitionCycles
	case SchemeOneStack:
		return oneStackTransitionCycles
	case SchemeTrampoline:
		return trampolineTransitionCycles
	default:
		return defaultTransitionCycles
	}
}

// TransitionForScheme returns the transition cost model of a backend
// kind under a transition scheme: the scheme's convention cost composed
// with the mechanism tax the kind cannot shed. The default scheme
// reproduces TransitionFor's historical constants exactly — every
// pre-scheme golden is pinned to that path.
func TransitionForScheme(s Scheme, kind Kind) TransitionCost {
	s = ResolveScheme(s)
	if s == SchemeDefault {
		return transitionDefault(kind)
	}
	base := s.BaseNs()
	t := TransitionCost{EnterNs: base, LeaveNs: base}
	switch kind {
	case ColorGuard:
		t.EnterNs += WRPKRUTaxNs
		t.LeaveNs += WRPKRUTaxNs
	case MultiProc:
		t.SwitchNs, t.RefillNs, t.FlushTLB = CtxSwitchNs, CacheRefillNs, true
	}
	return t
}
