package colorguard

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestStripeCount(t *testing.T) {
	gib := uint64(1) << 30
	cases := []struct {
		slot, guard uint64
		keys, want  int
	}{
		{1 * gib, 7 * gib, 15, 8},            // Figure 2: 8 colors for 8x density
		{1 * gib, 7 * gib, 4, 4},             // clamped by available keys
		{2 * gib, 4 * gib, 15, 3},            // §5.1 example: (4/2)+1 = 3 colors
		{4 * gib, 4 * gib, 15, 2},            // next slot covers the whole guard
		{1 * gib, 0, 15, 1},                  // no guard requirement: no striping
		{1 * gib, 7 * gib, 0, 1},             // no keys: no striping
		{1 * gib, 7 * gib, 1, 1},             // one key is no striping
		{408 << 20, 6<<30 - 408<<20, 15, 15}, // the §6.4.2 geometry
	}
	for _, c := range cases {
		if got := StripeCount(c.slot, c.guard, c.keys); got != c.want {
			t.Errorf("StripeCount(%d, %d, %d) = %d, want %d", c.slot, c.guard, c.keys, got, c.want)
		}
	}
}

func TestKeyForSlot(t *testing.T) {
	// Colors cycle 1..stripes; key 0 stays with the runtime.
	for slot := 0; slot < 40; slot++ {
		k := KeyForSlot(slot, 8)
		if k < 1 || k > 8 {
			t.Fatalf("slot %d: key %d out of range", slot, k)
		}
		if k != KeyForSlot(slot+8, 8) {
			t.Fatalf("slot %d and %d should share a color", slot, slot+8)
		}
		if KeyForSlot(slot, 8) == KeyForSlot(slot+1, 8) {
			t.Fatalf("adjacent slots %d/%d share color %d", slot, slot+1, k)
		}
	}
	if KeyForSlot(5, 1) != 0 {
		t.Error("unstriped pools should use key 0")
	}
}

func TestPkruFor(t *testing.T) {
	pkru := PkruFor(3)
	if !mem.PkeyAllowed(pkru, 3, true) {
		t.Error("own color should be writable")
	}
	if !mem.PkeyAllowed(pkru, 0, true) {
		t.Error("runtime key 0 should stay accessible")
	}
	for k := uint8(1); k < 16; k++ {
		if k == 3 {
			continue
		}
		if mem.PkeyAllowed(pkru, k, false) {
			t.Errorf("key %d should be blocked", k)
		}
	}
	if PkruFor(0) != mem.PkruAllowAll {
		t.Error("key 0 means no restriction")
	}
}

func TestUncoveredGuard(t *testing.T) {
	gib := uint64(1) << 30
	if got := UncoveredGuard(1*gib, 7*gib, 8); got != 0 {
		t.Errorf("8 stripes fully cover: got %d", got)
	}
	if got := UncoveredGuard(1*gib, 7*gib, 4); got != 4*gib {
		t.Errorf("4 stripes leave 4 GiB: got %d", got)
	}
	if got := UncoveredGuard(1*gib, 7*gib, 1); got != 7*gib {
		t.Errorf("no striping leaves all: got %d", got)
	}
}

func TestCheckStriping(t *testing.T) {
	gib := uint64(1) << 30
	// Correct striping: 8 slots of 1 GiB, colors 1..4 cycling, guard 3 GiB.
	addrs := make([]uint64, 8)
	for i := range addrs {
		addrs[i] = uint64(i) * gib
	}
	keyOf := func(i int) uint8 { return KeyForSlot(i, 4) }
	if err := CheckStriping(addrs, gib, 3*gib, keyOf); err != nil {
		t.Errorf("valid striping rejected: %v", err)
	}
	// Broken: everything the same color.
	bad := func(int) uint8 { return 1 }
	if err := CheckStriping(addrs, gib, 3*gib, bad); err == nil {
		t.Error("uniform coloring accepted")
	}
	// Guard too large for the cycle.
	if err := CheckStriping(addrs, gib, 4*gib, keyOf); err == nil {
		t.Error("undersized cycle accepted")
	}
}

// TestStripingPropertyQuick: for any geometry, the striping pattern
// KeyForSlot with StripeCount colors satisfies CheckStriping whenever
// the stride covers the footprint — the core ColorGuard safety
// argument, checked over random geometries.
func TestStripingPropertyQuick(t *testing.T) {
	f := func(slotMB, guardMB uint16, keys uint8, n uint8) bool {
		slot := uint64(slotMB)%512 + 1
		guard := uint64(guardMB) % 4096
		k := int(keys)%15 + 1
		count := int(n)%64 + 2
		slot <<= 20
		guard <<= 20
		stripes := StripeCount(slot, guard, k)
		// The pool guarantees the stride covers footprint/stripes;
		// emulate that adjustment here.
		stride := slot
		if stripes > 1 {
			need := (slot + guard + uint64(stripes) - 1) / uint64(stripes)
			if stride < need {
				stride = need
			}
		} else {
			stride = slot + guard
		}
		addrs := make([]uint64, count)
		for i := range addrs {
			addrs[i] = uint64(i) * stride
		}
		keyOf := func(i int) uint8 { return KeyForSlot(i, stripes) }
		return CheckStriping(addrs, slot, guard, keyOf) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
