// Package colorguard implements the striping arithmetic of ColorGuard
// (§3.2, §5.1): how many MPK colors a slot/guard geometry needs, which
// color each slot gets, and the PKRU values transitions write. The
// pooling allocator (internal/pool) uses it to pack sandboxes into what
// guard-page SFI wastes as dead address space.
package colorguard

import (
	"fmt"

	"repro/internal/mem"
)

// MaxKeys is the number of MPK protection keys usable for striping;
// key 0 stays with the runtime, leaving 15 (the paper's 15× ceiling).
const MaxKeys = mem.NumPkeys - 1

// StripeCount returns how many stripes (colors) are needed so that the
// differently-colored slots following a sandbox cover its guard
// requirement: guardBytes of space that the sandbox itself must never
// be able to touch. In the simple case this is guard/slot + 1 — the
// slots that fit into the guard range, plus the color of the protected
// slot itself (§5.1).
//
// The result is clamped to the available keys; the caller must then
// make up any uncovered remainder with real guard pages (invariant 5
// of Table 1 captures the lower bound).
func StripeCount(slotBytes, guardBytes uint64, keysAvailable int) int {
	if keysAvailable > MaxKeys {
		keysAvailable = MaxKeys
	}
	if keysAvailable < 2 || slotBytes == 0 {
		return 1
	}
	want := int(ceilDiv(guardBytes, slotBytes)) + 1
	if want > keysAvailable {
		return keysAvailable
	}
	if want < 1 {
		return 1
	}
	return want
}

func ceilDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// KeyForSlot returns the MPK key for a slot index under the striping
// pattern: colors cycle 1..stripes so identically-colored slots are
// exactly stripes slots apart. Stripes of 1 mean no coloring (key 0).
func KeyForSlot(slot, stripes int) uint8 {
	if stripes <= 1 {
		return 0
	}
	return uint8(1 + slot%stripes)
}

// PkruFor returns the PKRU value a thread writes when entering a
// sandbox with the given color: only key 0 (runtime) and the sandbox's
// own color stay accessible.
func PkruFor(key uint8) uint32 {
	if key == 0 {
		return mem.PkruAllowAll
	}
	return mem.PkruAllowOnly(key)
}

// UncoveredGuard returns how many bytes of real guard region must
// follow each slot when the stripes alone cannot cover guardBytes —
// the "combination of stripes and guard regions" case of §5.1.
func UncoveredGuard(slotBytes, guardBytes uint64, stripes int) uint64 {
	if stripes <= 1 {
		return guardBytes
	}
	covered := slotBytes * uint64(stripes-1)
	if covered >= guardBytes {
		return 0
	}
	return guardBytes - covered
}

// CheckStriping verifies the core ColorGuard safety property on a
// concrete slot sequence: any two slots with the same color must be at
// least guardBytes apart, measured from the end of the first slot's
// accessible memory (memBytes) to the start of the second, so an
// out-of-bounds access from one can never reach the other.
func CheckStriping(slotAddrs []uint64, memBytes, guardBytes uint64, keyOf func(int) uint8) error {
	for i := range slotAddrs {
		for j := i + 1; j < len(slotAddrs); j++ {
			if keyOf(i) != keyOf(j) {
				continue
			}
			lo, hi := slotAddrs[i], slotAddrs[j]
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < lo+memBytes || hi-(lo+memBytes) < guardBytes {
				return fmt.Errorf("colorguard: slots %d and %d share color %d only %d bytes apart (need %d)",
					i, j, keyOf(i), hi-lo, guardBytes)
			}
		}
	}
	return nil
}
