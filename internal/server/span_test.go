package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cpu"
	"repro/internal/telemetry"
)

// TestServeTraceIDAlwaysPresent: every /invoke response carries a
// unique X-Trace-Id header, spans on or off, and the success body
// echoes it — but phase attribution only appears when spans are on.
func TestServeTraceIDAlwaysPresent(t *testing.T) {
	telemetry.SetSpansEnabled(false)
	reg := telemetry.NewRegistry()
	s, err := New(Config{Shards: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/invoke/html-templating?n=8")
		if err != nil {
			t.Fatal(err)
		}
		id := resp.Header.Get("X-Trace-Id")
		resp.Body.Close()
		if id == "" {
			t.Fatal("no X-Trace-Id header")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
	_, body := get(t, ts.URL+"/invoke/html-templating?n=8")
	if body["trace_id"] == "" || body["trace_id"] == nil {
		t.Fatalf("success body has no trace_id: %v", body)
	}
	if _, ok := body["phase_us"]; ok {
		t.Fatalf("spans disabled but body has phase_us: %v", body)
	}
	// With spans off, nothing was recorded and no serve.phase keys
	// polluted the registry.
	if code, dbg := get(t, ts.URL+"/debug/requests"); code != http.StatusOK || dbg["seen"].(float64) != 0 {
		t.Fatalf("/debug/requests with spans off = %d %v, want seen 0", code, dbg)
	}
	for k := range snapshot(t, ts.URL).Histograms {
		if len(k) >= 11 && k[:11] == "serve.phase" {
			t.Fatalf("spans disabled but /metrics has %q", k)
		}
	}
}

// TestServeSpanAttribution: with spans enabled, every recorded request
// conserves wall time — the phase durations sum to the measured total —
// across backends × schemes × execution tiers, and the attribution is
// visible in all three surfaces (response JSON, /debug/requests,
// /metrics histograms).
func TestServeSpanAttribution(t *testing.T) {
	telemetry.SetSpansEnabled(true)
	defer telemetry.SetSpansEnabled(false)
	prevTier := cpu.DefaultTier()
	defer cpu.SetDefaultTier(prevTier)

	for _, tier := range []cpu.Tier{cpu.TierFast, cpu.TierFused} {
		cpu.SetDefaultTier(tier)
		t.Run(tier.String(), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			s, err := New(Config{Shards: 2, Registry: reg})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			total := 0
			for _, backend := range []string{"guardpage", "colorguard", "mte", "multiproc"} {
				for _, scheme := range []string{"default", "zerocost"} {
					total++
					code, body := get(t, fmt.Sprintf(
						"%s/invoke/hash-load-balance?n=64&backend=%s&scheme=%s", ts.URL, backend, scheme))
					if code != http.StatusOK {
						t.Fatalf("%s/%s: status %d (%v)", backend, scheme, code, body)
					}
					phases, ok := body["phase_us"].(map[string]any)
					if !ok || len(phases) == 0 {
						t.Fatalf("%s/%s: no phase_us in body: %v", backend, scheme, body)
					}
					if _, ok := phases["exec"]; !ok {
						t.Fatalf("%s/%s: no exec phase: %v", backend, scheme, phases)
					}
				}
			}

			// Conservation, from the flight recorder's independent TotalNs.
			_, dbg := get(t, ts.URL+"/debug/requests")
			if int(dbg["seen"].(float64)) != total {
				t.Fatalf("flight recorder saw %v requests, want %d", dbg["seen"], total)
			}
			recent := dbg["recent"].([]any)
			if len(recent) == 0 {
				t.Fatal("no recent records")
			}
			for _, raw := range recent {
				rec := raw.(map[string]any)
				if rec["trace_id"] == "" {
					t.Fatalf("record without trace id: %v", rec)
				}
				totalNs := rec["total_ns"].(float64)
				var sum float64
				for _, v := range rec["phases"].(map[string]any) {
					sum += v.(float64)
				}
				if math.Abs(sum-totalNs) > 1e-6*totalNs+1 {
					t.Fatalf("phase sum %.0f ns != total %.0f ns in %v", sum, totalNs, rec)
				}
			}

			snap := snapshot(t, ts.URL)
			for _, key := range []string{"serve.phase.total", "serve.phase.exec", "serve.phase.queue"} {
				h, ok := snap.Histograms[key]
				if !ok || h.Count == 0 {
					t.Fatalf("/metrics missing %s after attributed traffic", key)
				}
			}
			if got := snap.Histograms["serve.phase.total"].Count; got != uint64(total) {
				t.Fatalf("serve.phase.total count = %d, want %d", got, total)
			}
		})
	}
}

// TestServeTracerPhaseSpans: with the process tracer live, serving
// emits wall-clock phase spans on per-shard tracks, and /metrics
// surfaces the tracer's drop counter.
func TestServeTracerPhaseSpans(t *testing.T) {
	telemetry.Trace.Enable()
	defer telemetry.Trace.Disable()
	reg := telemetry.NewRegistry()
	s, err := New(Config{Shards: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if code, body := get(t, ts.URL+"/invoke/regex-filtering?n=16"); code != http.StatusOK {
			t.Fatalf("invoke: %d %v", code, body)
		}
	}
	snap := snapshot(t, ts.URL)
	if _, ok := snap.Gauges["trace.dropped"]; !ok {
		t.Fatal("/metrics missing trace.dropped while tracer enabled")
	}

	wantNames := map[string]bool{"queue": false, "placement": false,
		"transition_in": false, "exec": false, "transition_out": false}
	for _, ev := range telemetry.Trace.Events() {
		if ev.Cat != "serve" {
			continue
		}
		if ev.PID != telemetry.PidWall {
			t.Fatalf("serve span %q on pid %d, want wall pid %d", ev.Name, ev.PID, telemetry.PidWall)
		}
		if ev.TID < 0 || ev.TID >= 2 {
			t.Fatalf("serve span %q on tid %d, want a shard id in [0,2)", ev.Name, ev.TID)
		}
		if _, ok := wantNames[ev.Name]; ok {
			wantNames[ev.Name] = true
		}
	}
	for name, seen := range wantNames {
		if !seen {
			t.Fatalf("no %q phase span on the tracer", name)
		}
	}
}

// TestHealthzShardDetail: /healthz reports per-shard queue saturation
// alongside the server-wide breaker and in-flight count.
func TestHealthzShardDetail(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Shards: 3, QueueDepth: 7, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d %v", code, body)
	}
	if _, ok := body["breaker"]; !ok {
		t.Fatal("/healthz missing breaker state")
	}
	if _, ok := body["in_flight"]; !ok {
		t.Fatal("/healthz missing in_flight")
	}
	shards, ok := body["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("/healthz shards = %v, want 3 entries", body["shards"])
	}
	for i, raw := range shards {
		sh := raw.(map[string]any)
		if int(sh["id"].(float64)) != i {
			t.Fatalf("shard %d has id %v", i, sh["id"])
		}
		if int(sh["queue_capacity"].(float64)) != 7 {
			t.Fatalf("shard %d capacity = %v, want 7", i, sh["queue_capacity"])
		}
		if d := sh["queue_depth"].(float64); d != 0 {
			t.Fatalf("idle shard %d depth = %v", i, d)
		}
	}
}
