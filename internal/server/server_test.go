package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// get issues one GET and returns the status plus decoded JSON body.
func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	var body map[string]any
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("%s: non-JSON body %q: %v", url, data, err)
	}
	return resp.StatusCode, body
}

// snapshot fetches and decodes /metrics.
func snapshot(t *testing.T, base string) telemetry.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var s telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return s
}

// TestServeEndToEnd: concurrent requests across every kernel and
// backend all complete, checksums agree across backends (the isolation
// mechanism must not change results), and /metrics and /healthz report
// the traffic.
func TestServeEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Shards:          2,
		WorkersPerShard: 2,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	kernels := []string{"html-templating", "hash-load-balance", "regex-filtering"}
	backends := []string{"guardpage", "colorguard", "mte", "multiproc"}

	type outcome struct {
		kernel, backend string
		checksum        float64
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	const perPair = 2
	total := 0
	for _, k := range kernels {
		for _, b := range backends {
			for i := 0; i < perPair; i++ {
				total++
				wg.Add(1)
				go func(k, b string) {
					defer wg.Done()
					code, body := get(t, fmt.Sprintf("%s/invoke/%s?backend=%s&n=16", ts.URL, k, b))
					if code != http.StatusOK {
						t.Errorf("invoke %s/%s: status %d (%v)", k, b, code, body)
						return
					}
					mu.Lock()
					outcomes = append(outcomes, outcome{k, b, body["checksum"].(float64)})
					mu.Unlock()
				}(k, b)
			}
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Same kernel, same batch → same checksum, whatever the backend.
	want := map[string]float64{}
	for _, o := range outcomes {
		if prev, ok := want[o.kernel]; ok && prev != o.checksum {
			t.Errorf("%s: checksum differs across requests/backends: %v vs %v", o.kernel, prev, o.checksum)
		}
		want[o.kernel] = o.checksum
	}

	snap := snapshot(t, ts.URL)
	if got := snap.Counters["server.requests"]; got != uint64(total) {
		t.Errorf("server.requests = %d, want %d", got, total)
	}
	if got := snap.Counters["server.completed"]; got != uint64(total) {
		t.Errorf("server.completed = %d, want %d", got, total)
	}
	if h, ok := snap.Histograms["server.request_latency_ns"]; !ok || h.Count != uint64(total) {
		t.Errorf("latency histogram = %+v, want count %d", h, total)
	}

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("/healthz = %d %v, want 200 ok", code, body)
	}
	if st := s.Stats(); st.Shed != 0 || st.Failed != 0 || st.Timeouts != 0 {
		t.Errorf("clean run recorded degradation: %+v", st)
	}
}

// TestServeInputValidation: the HTTP surface rejects unknown kernels,
// unknown backends, and out-of-range batch sizes without touching the
// worker pool.
func TestServeInputValidation(t *testing.T) {
	s, err := New(Config{Shards: 1, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, c := range []struct {
		path string
		want int
	}{
		{"/invoke/no-such-kernel", http.StatusNotFound},
		{"/invoke/regex-filtering?backend=bogus", http.StatusBadRequest},
		{"/invoke/regex-filtering?scheme=bogus", http.StatusBadRequest},
		{"/invoke/regex-filtering?n=0", http.StatusBadRequest},
		{"/invoke/regex-filtering?n=-4", http.StatusBadRequest},
		{"/invoke/regex-filtering?n=900000000", http.StatusBadRequest},
		{"/invoke/regex-filtering?n=junk", http.StatusBadRequest},
	} {
		if code, body := get(t, ts.URL+c.path); code != c.want {
			t.Errorf("%s: status %d (%v), want %d", c.path, code, body, c.want)
		}
	}
	if st := s.Stats(); st.Completed != 0 {
		t.Errorf("validation failures reached the workers: %+v", st)
	}
}

// TestServeSchemes: a request can pick its transition scheme, the
// response reports it, results are scheme-independent, and the cheaper
// convention yields strictly less simulated time for the same work.
func TestServeSchemes(t *testing.T) {
	s, err := New(Config{
		Shards:   1,
		Kernels:  []string{"regex-filtering"},
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sim := map[string]float64{}
	sum := map[string]float64{}
	for _, scheme := range []string{"default", "zerocost", "trampoline"} {
		code, body := get(t, ts.URL+"/invoke/regex-filtering?n=16&scheme="+scheme)
		if code != http.StatusOK {
			t.Fatalf("scheme %s: status %d (%v)", scheme, code, body)
		}
		if got := body["scheme"]; got != scheme {
			t.Errorf("scheme %s: response reports %v", scheme, got)
		}
		sim[scheme] = body["sim_us"].(float64)
		sum[scheme] = body["checksum"].(float64)
	}
	if sum["zerocost"] != sum["default"] || sum["trampoline"] != sum["default"] {
		t.Errorf("checksums differ across schemes: %v", sum)
	}
	if !(sim["zerocost"] < sim["default"] && sim["default"] < sim["trampoline"]) {
		t.Errorf("simulated time not ordered by convention cost: %v", sim)
	}

	// An omitted ?scheme= uses the server's default.
	code, body := get(t, ts.URL+"/invoke/regex-filtering?n=16")
	if code != http.StatusOK || body["scheme"] != "default" {
		t.Errorf("no ?scheme=: %d %v, want 200 with scheme=default", code, body)
	}
}

// TestServeDefaultSchemeConfig: Config.DefaultScheme applies to every
// request that names no scheme, and an unknown default is rejected at
// construction.
func TestServeDefaultSchemeConfig(t *testing.T) {
	if _, err := New(Config{DefaultScheme: "warp", Registry: telemetry.NewRegistry()}); err == nil {
		t.Fatal("New accepted an unknown DefaultScheme")
	}
	s, err := New(Config{
		Shards:        1,
		Kernels:       []string{"regex-filtering"},
		DefaultScheme: isolation.SchemeZeroCost,
		Registry:      telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/invoke/regex-filtering?n=16")
	if code != http.StatusOK || body["scheme"] != "zerocost" {
		t.Errorf("default-scheme request: %d %v, want 200 with scheme=zerocost", code, body)
	}
	code, body = get(t, ts.URL+"/invoke/regex-filtering?n=16&scheme=trampoline")
	if code != http.StatusOK || body["scheme"] != "trampoline" {
		t.Errorf("?scheme=trampoline must override the server default: %d %v", code, body)
	}
}

// TestServeSaturation: saturating the admission queue sheds with 429,
// queued requests past the (deliberately unmeetable) deadline time out
// with 504, the accumulated failures trip the breaker, and an open
// breaker fast-fails later admissions with 503.
func TestServeSaturation(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Kernels:         []string{"regex-filtering"},
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      2,
		MaxInFlight:     4,
		RequestTimeout:  time.Nanosecond, // every admitted request misses it
		Breaker: fault.BreakerConfig{
			FailureThreshold:  3,
			OpenNs:            float64(time.Hour), // stays open for the test
			HalfOpenSuccesses: 1,
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const storm = 40
	counts := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/invoke/regex-filtering")
			if err != nil {
				t.Errorf("storm request: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.Shed == 0 {
		t.Errorf("saturation shed nothing: statuses %v, stats %+v", counts, st)
	}
	if counts[http.StatusTooManyRequests] == 0 && counts[http.StatusServiceUnavailable] == 0 {
		t.Errorf("no 429/503 responses under saturation: %v", counts)
	}
	if st.Timeouts == 0 {
		t.Errorf("no deadline misses despite 1 ns timeout: statuses %v, stats %+v", counts, st)
	}
	if st.BreakerOpens == 0 {
		t.Errorf("breaker never opened: statuses %v, stats %+v", counts, st)
	}

	// The breaker is open (OpenNs is an hour): the next admission is
	// fast-failed with 503 before reaching a queue.
	code, body := get(t, ts.URL+"/invoke/regex-filtering")
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-storm request = %d (%v), want 503 from the open breaker", code, body)
	}

	snap := snapshot(t, ts.URL)
	if snap.Counters["server.shed"] == 0 || snap.Counters["server.timeouts"] == 0 {
		t.Errorf("/metrics missing degradation counters: %v", snap.Counters)
	}
	if snap.Counters["server.breaker_opens"] != st.BreakerOpens {
		t.Errorf("/metrics breaker_opens = %d, Stats = %d",
			snap.Counters["server.breaker_opens"], st.BreakerOpens)
	}
}

// TestServeDrain: after BeginDrain, /healthz flips to draining/503 and
// new invokes are rejected; Close is clean and idempotent.
func TestServeDrain(t *testing.T) {
	s, err := New(Config{Shards: 1, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Serve one request first so the drain path has seen real traffic.
	if code, body := get(t, ts.URL+"/invoke/regex-filtering"); code != http.StatusOK {
		t.Fatalf("pre-drain invoke = %d (%v)", code, body)
	}

	s.BeginDrain()
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("/healthz while draining = %d %v", code, body)
	}
	if code, _ := get(t, ts.URL+"/invoke/regex-filtering"); code != http.StatusServiceUnavailable {
		t.Errorf("invoke while draining = %d, want 503", code)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestFusedSharedAcrossShards drives one kernel through every shard of
// the worker pool on the fused tier and checks that all shards served
// from a single superinstruction compilation: the module cache hands
// every worker the same Program, so the fused stream is built once for
// the process, not once per shard or per worker.
func TestFusedSharedAcrossShards(t *testing.T) {
	rt.ResetModuleCache()
	defer rt.ResetModuleCache()
	cpu.SetFuseEager(true)
	defer cpu.SetFuseEager(false)

	s, err := New(Config{Shards: 4, WorkersPerShard: 2, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Enough concurrent requests that the round-robin deal reaches
	// every shard.
	const kernel = "hash-load-balance"
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts.URL+"/invoke/"+kernel+"?backend=guardpage&n=16")
			if code != http.StatusOK {
				t.Errorf("invoke: status %d (%v)", code, body)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Fetch the module the workers used straight from the shared cache.
	// The build callback must not run — running would mean the workers
	// had not shared one cache entry.
	built := false
	mod, err := rt.CompileModuleCached(
		rt.ModuleKey{Name: kernel, Cfg: sfi.DefaultConfig(sfi.ModeSegue)},
		func() *ir.Module {
			built = true
			return workloads.FaaS().Kernels[0].Build(false)
		})
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Fatal("kernel module was not in the shared cache")
	}
	if n := mod.Prog.FuseBuilds(); n != 1 {
		t.Fatalf("fused stream built %d times across shards, want 1", n)
	}
}
