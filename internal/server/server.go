// Package server is the real serving layer over the sandbox runtime:
// an HTTP front end that executes the measured FaaS workload kernels
// (internal/workloads) on emulated instances (internal/rt) placed by an
// isolation backend (internal/isolation) chosen per request, behind a
// sharded worker-pool dispatcher with bounded queues.
//
// Where internal/faas simulates this serving path in virtual time, this
// package runs it on the wall clock: the same internal/fault policy
// math — admission control against a bounded in-flight count, a
// per-request deadline measured from admission, and the three-state
// circuit breaker — guards a real network surface. The endpoints are
//
//	POST/GET /invoke/<kernel>   execute one request (?n= batch,
//	                            ?backend= isolation kind)
//	GET      /healthz           serving/draining status, breaker state
//	GET      /metrics           telemetry Registry snapshot as JSON
//	GET/POST /control/warm      read / set per-backend keep-warm targets
//
// Concurrency model: compiled modules are shared (they are immutable
// after compilation, and come from the race-safe rt compile cache), but
// simulated address spaces are not thread-safe, so every worker
// goroutine owns its isolation backends outright — one slab per backend
// kind, reserved lazily on first use. A request is admitted by the HTTP
// handler, dealt round-robin to a shard's bounded queue, executed by
// one of the shard's workers on a fresh instance allocated from the
// worker's backend, and recycled on completion. Saturation therefore
// degrades exactly like the simulator: queue-full and over-limit
// arrivals shed with 429, deadline misses count as timeouts and feed
// the breaker, and an open breaker fast-fails admissions with 503.
//
// Keep-warm pools amortize cold starts: after a successful request the
// worker may pin the instance (slot held, memory initialized) instead
// of recycling it, so the next request for the same (kernel, backend,
// scheme) pays an rt.Instance.Reset — a madvise and a state replay —
// rather than the whole placement path. Pool capacity is a per-backend
// target, adjustable at runtime through /control/warm; the cluster
// autoscaler (internal/cluster) drives it from scraped telemetry. This
// is where ColorGuard's slot density pays off at scale: its warm
// instances share one process, while a warm multiproc instance is a
// whole pinned OS process (§7).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/rt"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the default noted on it.
type Config struct {
	// Kernels names the workload kernels to serve, from the FaaS suite
	// (default: all of it).
	Kernels []string

	// DefaultBackend is the isolation backend used when a request does
	// not pick one with ?backend= (default: colorguard).
	DefaultBackend isolation.Kind

	// DefaultScheme is the transition scheme used when a request does
	// not pick one with ?scheme= (default: the process default,
	// normally isolation.SchemeDefault).
	DefaultScheme isolation.Scheme

	// Shards is the number of dispatcher shards, each with its own
	// bounded queue (default: NumCPU, capped at 8).
	Shards int

	// WorkersPerShard is the number of executor goroutines per shard,
	// each owning its isolation backends (default: 1).
	WorkersPerShard int

	// QueueDepth bounds each shard's queue; an arrival finding the
	// queue full is shed with 429 (default: 64).
	QueueDepth int

	// MaxInFlight is the server-wide admission limit across queued and
	// executing requests — fault.Config.QueueLimit on the wall clock.
	// 0 means Shards*QueueDepth.
	MaxInFlight int

	// RequestTimeout is the per-request deadline measured from
	// admission — fault.Config.TimeoutNs on the wall clock. A request
	// still queued at its deadline is dropped with 504 and counts as a
	// breaker failure. 0 disables.
	RequestTimeout time.Duration

	// Breaker configures the three-state circuit breaker consulted at
	// admission (internal/fault's policy on wall-clock nanoseconds).
	// The zero value leaves the breaker disabled.
	Breaker fault.BreakerConfig

	// SlotsPerWorker is each worker backend's slot count (default: 4;
	// a worker runs one request at a time, slack covers recycle churn
	// and pinned keep-warm instances).
	SlotsPerWorker int

	// WarmPerWorker is the initial keep-warm target per backend kind:
	// how many recently-used instances each worker pins (slot held,
	// memory initialized) so a repeat request pays an instance reset
	// instead of a cold start. 0 selects the default (2); negative
	// disables keep-warm. Targets are adjustable at runtime per backend
	// via POST /control/warm (the cluster autoscaler's lever) and are
	// always clamped to SlotsPerWorker-1 so a worker keeps one slot of
	// cold-start headroom.
	WarmPerWorker int

	// Registry receives the server's metrics (default:
	// telemetry.Default).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Kernels) == 0 {
		for _, k := range workloads.FaaS().Kernels {
			c.Kernels = append(c.Kernels, k.Name)
		}
	}
	if c.DefaultBackend == "" {
		c.DefaultBackend = isolation.ColorGuard
	}
	c.DefaultScheme = isolation.ResolveScheme(c.DefaultScheme)
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = c.Shards * c.QueueDepth
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 4
	}
	switch {
	case c.WarmPerWorker == 0:
		c.WarmPerWorker = 2
	case c.WarmPerWorker < 0:
		c.WarmPerWorker = 0 // keep-warm disabled
	}
	if max := c.SlotsPerWorker - 1; c.WarmPerWorker > max {
		c.WarmPerWorker = max
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// metrics caches the server's registry instruments so the request path
// pays one atomic op per event, never a map lookup.
type metrics struct {
	requests     *telemetry.Counter
	completed    *telemetry.Counter
	shed         *telemetry.Counter
	timeouts     *telemetry.Counter
	failed       *telemetry.Counter
	breakerOpens *telemetry.Counter
	inFlight     *telemetry.Gauge
	latency      *telemetry.Histogram

	// Keep-warm pool instruments: hits reused a pinned instance, misses
	// cold-started, evictions closed a pinned instance to make room (or
	// on an autoscaler shrink), resetFails fell back to a cold start.
	// warmPinned gauges the instances currently pinned across workers.
	warmHits       *telemetry.Counter
	warmMisses     *telemetry.Counter
	warmEvictions  *telemetry.Counter
	warmResetFails *telemetry.Counter
	warmPinned     *telemetry.Gauge

	// warmMissKind splits misses per backend so an autoscaler can grow
	// exactly the pool that is cold-starting.
	warmMissKind map[isolation.Kind]*telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		requests:     reg.Counter("server.requests"),
		completed:    reg.Counter("server.completed"),
		shed:         reg.Counter("server.shed"),
		timeouts:     reg.Counter("server.timeouts"),
		failed:       reg.Counter("server.failed"),
		breakerOpens: reg.Counter("server.breaker_opens"),
		inFlight:     reg.Gauge("server.in_flight"),
		latency: reg.Histogram("server.request_latency_ns",
			telemetry.ExpBuckets(1e4, 2, 28)), // 10 µs .. ~22 min
		warmHits:       reg.Counter("server.warm.hits"),
		warmMisses:     reg.Counter("server.warm.misses"),
		warmEvictions:  reg.Counter("server.warm.evictions"),
		warmResetFails: reg.Counter("server.warm.reset_fails"),
		warmPinned:     reg.Gauge("server.warm.pinned"),
		warmMissKind:   warmMissCounters(reg),
	}
}

func warmMissCounters(reg *telemetry.Registry) map[isolation.Kind]*telemetry.Counter {
	m := make(map[isolation.Kind]*telemetry.Counter, len(isolation.Kinds()))
	for _, k := range isolation.Kinds() {
		m[k] = reg.Counter("server.warm.misses." + string(k))
	}
	return m
}

// wallBreaker adapts internal/fault's single-owner virtual-time breaker
// to a concurrent wall-clock server: one mutex serializes it, and time
// is nanoseconds since server start.
type wallBreaker struct {
	mu    sync.Mutex
	b     *fault.Breaker
	start time.Time
}

func newWallBreaker(cfg fault.BreakerConfig) *wallBreaker {
	return &wallBreaker{b: fault.NewBreaker(cfg), start: time.Now()}
}

func (w *wallBreaker) now() float64 { return float64(time.Since(w.start)) }

func (w *wallBreaker) Allow() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Allow(w.now())
}

func (w *wallBreaker) OnSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.b.OnSuccess(w.now())
}

// OnFailure records a failure and reports whether it tripped the
// breaker open (so the caller can count trips as they happen).
func (w *wallBreaker) OnFailure() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	before := w.b.Opens()
	w.b.OnFailure(w.now())
	return w.b.Opens() > before
}

func (w *wallBreaker) State() fault.BreakerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.State()
}

func (w *wallBreaker) Opens() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Opens()
}

// Server dispatches /invoke requests over a sharded worker pool and
// reports health and metrics. Create with New, expose with Handler,
// stop with BeginDrain then Close.
type Server struct {
	cfg     Config
	kernels map[string]workloads.Kernel
	mods    map[string]*rt.Module // compiled once, shared read-only
	shards  []*shard
	breaker *wallBreaker
	met     *metrics
	start   time.Time

	// flight keeps the slowest-N and most-recent-N fully-attributed
	// requests for /debug/requests. phaseRec publishes serve.phase.*
	// histograms; it is resolved lazily on the first recorded span so a
	// server that never enables spans never adds the keys to /metrics.
	flight    *telemetry.FlightRecorder
	phaseOnce sync.Once
	phaseRec  *telemetry.PhaseRecorder
	traceSeq  atomic.Uint64

	inFlight atomic.Int64
	rr       atomic.Uint64 // round-robin shard cursor

	// warmTargets is the per-backend keep-warm target (instances each
	// worker pins). Written by SetWarmTarget (the /control/warm
	// endpoint), read by workers on every pool decision; enforcement is
	// lazy on the worker's own goroutine.
	warmMu      sync.RWMutex
	warmTargets map[isolation.Kind]int

	// mu guards the enqueue-vs-Close race: Close sets closed and closes
	// the shard queues under the write lock; enqueues hold the read
	// lock, so no send can hit a closed channel.
	mu       sync.RWMutex
	closed   bool
	draining atomic.Bool
	wg       sync.WaitGroup
}

// New builds and starts a server: workers launch immediately and the
// returned server is ready to serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	suite := workloads.FaaS()
	kernels := make(map[string]workloads.Kernel, len(cfg.Kernels))
	mods := make(map[string]*rt.Module, len(cfg.Kernels))
	for _, name := range cfg.Kernels {
		k, err := suite.Find(name)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		mod, err := compileKernel(k)
		if err != nil {
			return nil, fmt.Errorf("server: compiling %s: %w", name, err)
		}
		kernels[name] = k
		mods[name] = mod
	}
	if err := validBackend(cfg.DefaultBackend); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if _, err := isolation.ParseScheme(string(cfg.DefaultScheme)); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		kernels:     kernels,
		mods:        mods,
		breaker:     newWallBreaker(cfg.Breaker),
		met:         newMetrics(cfg.Registry),
		flight:      telemetry.NewFlightRecorder(0),
		start:       time.Now(),
		warmTargets: make(map[isolation.Kind]int, len(isolation.Kinds())),
	}
	for _, k := range isolation.Kinds() {
		s.warmTargets[k] = cfg.WarmPerWorker
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:    i,
			queue: make(chan *job, cfg.QueueDepth),
		}
		s.shards = append(s.shards, sh)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			wk := newWorker(s, i*cfg.WorkersPerShard+w)
			s.wg.Add(1)
			go wk.run(sh.queue)
		}
	}
	return s, nil
}

func validBackend(kind isolation.Kind) error {
	for _, k := range isolation.Kinds() {
		if k == kind {
			return nil
		}
	}
	return fmt.Errorf("unknown isolation backend %q (want one of %v)", kind, isolation.Kinds())
}

// shard is one dispatcher lane: a bounded queue feeding that lane's
// workers.
type shard struct {
	id    int
	queue chan *job
}

// job is one admitted request on its way through a shard queue.
type job struct {
	kernel   workloads.Kernel
	backend  isolation.Kind
	scheme   isolation.Scheme
	batch    uint64
	traceID  string
	shard    int
	start    time.Time // handler entry, the span's zero point
	admitted time.Time
	deadline time.Time // zero = no deadline
	done     chan jobResult

	// span accumulates the request's wall-clock phase attribution.
	// Ownership follows the request: the handler writes the admission
	// phase before enqueueing, the worker writes queue through
	// transition-out, and the handler writes marshal after receiving on
	// done — each handoff synchronizes through the queue channels.
	span telemetry.Span
}

// jobResult is what a worker delivers back to the waiting handler.
type jobResult struct {
	status   int
	err      string
	checksum uint64
	simNs    float64
	worker   int
	// finished is the worker's last attributed boundary; the handler
	// charges finished → response-render to PhaseMarshal. Only set when
	// the job's span (or the tracer) is live.
	finished time.Time
}

// BeginDrain flips the server to draining: /healthz turns 503 and new
// /invoke requests are rejected, while queued and executing requests
// finish. Call before shutting the HTTP listener down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the workers and releases their backends. Only call once
// no handler can still be enqueueing — i.e. after BeginDrain plus
// http.Server.Shutdown. Queued jobs are still executed before workers
// exit (their waiters, if gone, are not blocked on: results are
// buffered).
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.draining.Store(true)
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke/", s.handleInvoke)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/control/warm", s.handleControlWarm)
	return mux
}

// WarmTarget returns the current keep-warm target for kind.
func (s *Server) WarmTarget(kind isolation.Kind) int {
	s.warmMu.RLock()
	defer s.warmMu.RUnlock()
	return s.warmTargets[kind]
}

// WarmTargets snapshots every backend's keep-warm target.
func (s *Server) WarmTargets() map[isolation.Kind]int {
	s.warmMu.RLock()
	defer s.warmMu.RUnlock()
	out := make(map[isolation.Kind]int, len(s.warmTargets))
	for k, v := range s.warmTargets {
		out[k] = v
	}
	return out
}

// SetWarmTarget sets the keep-warm target for kind, clamped to
// [0, SlotsPerWorker-1] so every worker keeps one slot of cold-start
// headroom. It returns the applied value. Workers converge lazily: the
// next time one touches its pool it enforces the new target (an idle
// worker keeps its pins until then — shrink frees slots on the next
// request, not instantly).
func (s *Server) SetWarmTarget(kind isolation.Kind, target int) int {
	if target < 0 {
		target = 0
	}
	if max := s.cfg.SlotsPerWorker - 1; target > max {
		target = max
	}
	s.warmMu.Lock()
	s.warmTargets[kind] = target
	s.warmMu.Unlock()
	s.cfg.Registry.Gauge("server.warm.target." + string(kind)).Set(int64(target))
	return target
}

// handleControlWarm is the autoscaler's lever: GET reports the current
// per-backend keep-warm targets, POST ?backend=<kind>&target=<n> sets
// one (the response echoes the clamped value actually applied).
func (s *Server) handleControlWarm(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		targets := make(map[string]int)
		for k, v := range s.WarmTargets() {
			targets[string(k)] = v
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"targets": targets,
			"pinned":  s.met.warmPinned.Load(),
			"slots":   s.cfg.SlotsPerWorker,
		})
	case http.MethodPost:
		kind := isolation.Kind(r.URL.Query().Get("backend"))
		if err := validBackend(kind); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		target, err := strconv.Atoi(r.URL.Query().Get("target"))
		if err != nil || target < 0 {
			writeError(w, http.StatusBadRequest, "target must be an integer >= 0")
			return
		}
		applied := s.SetWarmTarget(kind, target)
		writeJSON(w, http.StatusOK, map[string]any{
			"backend": string(kind),
			"target":  applied,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// Stats is a point-in-time summary of the serving counters (for the
// faasd shutdown report and tests).
type Stats struct {
	Requests     uint64
	Completed    uint64
	Shed         uint64
	Timeouts     uint64
	Failed       uint64
	BreakerOpens uint64
	InFlight     int64
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.met.requests.Load(),
		Completed:    s.met.completed.Load(),
		Shed:         s.met.shed.Load(),
		Timeouts:     s.met.timeouts.Load(),
		Failed:       s.met.failed.Load(),
		BreakerOpens: s.breaker.Opens(),
		InFlight:     s.inFlight.Load(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// All payloads here are plain structs/maps of scalars.
		panic(err)
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	// Per-shard saturation detail, so load tooling can tell "one hot
	// shard" from "healthy" without scraping /metrics. The breaker and
	// admission limit are server-wide; queue depth is the per-shard
	// signal.
	shards := make([]map[string]any, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, map[string]any{
			"id":             sh.id,
			"queue_depth":    len(sh.queue),
			"queue_capacity": cap(sh.queue),
		})
	}
	warmTargets := make(map[string]int)
	for k, v := range s.WarmTargets() {
		warmTargets[string(k)] = v
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"breaker":   s.breaker.State().String(),
		"in_flight": s.inFlight.Load(),
		"shards":    shards,
		"warm": map[string]any{
			"pinned":  s.met.warmPinned.Load(),
			"targets": warmTargets,
		},
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Surface trace truncation in the snapshot whenever the process
	// tracer is live, so a scraped metrics dump never pairs with a
	// silently truncated trace.
	if telemetry.Trace.Enabled() {
		s.cfg.Registry.Gauge("trace.dropped").Set(int64(telemetry.Trace.Dropped()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.cfg.Registry.Snapshot().JSON())
}

// handleDebugRequests serves the flight recorder: the most recent and
// slowest fully-attributed requests, newest/slowest first.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	snap := s.flight.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"spans_enabled": telemetry.SpansEnabled(),
		"seen":          snap.Seen,
		"recent":        snap.Recent,
		"slowest":       snap.Slowest,
	})
}

// newTraceID returns a server-unique request id: a per-boot prefix from
// the start time plus a sequence number.
func (s *Server) newTraceID() string {
	return fmt.Sprintf("%08x-%06x", uint32(s.start.UnixNano()), s.traceSeq.Add(1))
}

// recordRequest publishes one finished, span-attributed request to the
// serve.phase histograms and the flight recorder.
func (s *Server) recordRequest(j *job, res jobResult, totalNs float64) {
	s.phaseOnce.Do(func() {
		s.phaseRec = telemetry.NewPhaseRecorder(s.cfg.Registry, "serve.phase")
	})
	s.phaseRec.Record(&j.span)
	s.flight.Record(telemetry.RequestRecord{
		TraceID: j.traceID,
		Kernel:  j.kernel.Name,
		Backend: string(j.backend),
		Scheme:  string(j.scheme),
		Status:  res.status,
		Shard:   j.shard,
		Worker:  res.worker,
		StartNs: float64(j.start.Sub(s.start)),
		TotalNs: totalNs,
		Phases:  j.span.PhaseMap(),
	})
}

// maxBatch bounds the per-request batch argument: the kernels are
// linear in it, and an unbounded value would let one request occupy a
// worker indefinitely.
const maxBatch = 100000

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	start := time.Now()
	traceID := s.newTraceID()
	w.Header().Set("X-Trace-Id", traceID)

	name := strings.TrimPrefix(r.URL.Path, "/invoke/")
	k, ok := s.kernels[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown kernel %q", name))
		return
	}
	backend := s.cfg.DefaultBackend
	if b := r.URL.Query().Get("backend"); b != "" {
		backend = isolation.Kind(b)
		if err := validBackend(backend); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	scheme := s.cfg.DefaultScheme
	if sc := r.URL.Query().Get("scheme"); sc != "" {
		parsed, err := isolation.ParseScheme(sc)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		scheme = parsed
	}
	batch := k.TestArgs[0]
	if n := r.URL.Query().Get("n"); n != "" {
		v, err := strconv.ParseUint(n, 10, 64)
		if err != nil || v < 1 || v > maxBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("n must be an integer in [1, %d]", maxBatch))
			return
		}
		batch = v
	}

	// Admission control, cheapest rejection first: drain state, then
	// the breaker, then the in-flight limit, then the shard queue.
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if !s.breaker.Allow() {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open")
		return
	}
	if s.inFlight.Load() >= int64(s.cfg.MaxInFlight) {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission limit reached")
		return
	}

	now := time.Now()
	j := &job{
		kernel:   k,
		backend:  backend,
		scheme:   scheme,
		batch:    batch,
		traceID:  traceID,
		start:    start,
		admitted: now,
		done:     make(chan jobResult, 1),
		span:     telemetry.NewSpan(),
	}
	if s.cfg.RequestTimeout > 0 {
		j.deadline = now.Add(s.cfg.RequestTimeout)
	}
	// Everything from handler entry to admission is the admission
	// phase; the queue phase starts at j.admitted.
	j.span.Add(telemetry.PhaseAdmission, float64(now.Sub(start)))

	// Deal to a shard round-robin; a full queue sheds immediately
	// rather than blocking the handler (open-loop clients keep
	// arriving regardless).
	sh := s.shards[s.rr.Add(1)%uint64(len(s.shards))]
	j.shard = sh.id
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	enqueued := false
	select {
	case sh.queue <- j:
		enqueued = true
		s.inFlight.Add(1)
		s.met.inFlight.Set(s.inFlight.Load())
	default:
	}
	s.mu.RUnlock()
	if !enqueued {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}

	select {
	case res := <-j.done:
		// Close out the span: the worker's writes happened-before the
		// done receive, so charging its last boundary → here to marshal
		// makes the phases telescope exactly over [start, rec].
		if j.span.On() {
			rec := time.Now()
			if !res.finished.IsZero() {
				j.span.Add(telemetry.PhaseMarshal, float64(rec.Sub(res.finished)))
			}
			s.recordRequest(j, res, float64(rec.Sub(j.start)))
		}
		if res.status != http.StatusOK {
			writeError(w, res.status, res.err)
			return
		}
		wall := time.Since(j.admitted)
		payload := map[string]any{
			"kernel":   k.Name,
			"backend":  string(backend),
			"scheme":   string(scheme),
			"n":        batch,
			"checksum": res.checksum,
			"sim_us":   res.simNs / 1e3,
			"wall_us":  float64(wall.Nanoseconds()) / 1e3,
			"worker":   res.worker,
			"trace_id": j.traceID,
		}
		if j.span.On() {
			phases := make(map[string]float64, telemetry.NumPhases)
			for name, ns := range j.span.PhaseMap() {
				phases[name] = ns / 1e3
			}
			payload["phase_us"] = phases
		}
		writeJSON(w, http.StatusOK, payload)
	case <-r.Context().Done():
		// Client gone; the worker still completes and accounts the job
		// (done is buffered, so it never blocks). Nothing is recorded:
		// the span's final phases never materialize.
		writeError(w, http.StatusServiceUnavailable, "client cancelled")
	}
}
