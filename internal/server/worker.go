package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// compileKernel fetches a kernel's compiled module from the process-wide
// race-safe compile cache, so N workers share one compilation.
func compileKernel(k workloads.Kernel) (*rt.Module, error) {
	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	return rt.CompileModuleCached(
		rt.ModuleKey{Name: k.Name, Cfg: cfg},
		func() *ir.Module { return k.Build(false) })
}

// worker is one executor goroutine. It owns its isolation backends
// outright — simulated address spaces are single-owner — and runs one
// request at a time: allocate a slot from the request's backend, build
// a fresh instance in it, invoke the kernel, recycle the slot.
//
// Backends are keyed by (kind, scheme): a slab's transition cost model
// is fixed at Reserve, so requests under different transition schemes
// must not share a slab.
type worker struct {
	s        *Server
	id       int
	maxBytes uint64 // largest linear memory any served kernel needs
	backends map[backendKey]isolation.Backend

	// warm pins recently-used instances (slot held, memory initialized)
	// so a repeat (kernel, backend, scheme) pays an instance reset
	// instead of the cold-start path. Owned by this goroutine, like the
	// backends; capacity follows the server's per-backend warm targets.
	warm *warmPool
}

// backendKey identifies one of a worker's slabs: the isolation
// mechanism plus the transition scheme its cost model was reserved
// under.
type backendKey struct {
	kind   isolation.Kind
	scheme isolation.Scheme
}

func newWorker(s *Server, id int) *worker {
	var maxBytes uint64
	for _, m := range s.mods {
		if n := uint64(m.IR.MemMax) * ir.PageSize; n > maxBytes {
			maxBytes = n
		}
	}
	return &worker{
		s:        s,
		id:       id,
		maxBytes: maxBytes,
		backends: make(map[backendKey]isolation.Backend),
		warm:     newWarmPool(),
	}
}

// backend returns the worker's slab for (kind, scheme), reserving it on
// first use (a worker that never sees an MTE request never pays for an
// MTE slab, and a worker that never sees a zerocost request never pays
// for a second slab of the same kind).
func (w *worker) backend(kind isolation.Kind, scheme isolation.Scheme) (isolation.Backend, error) {
	key := backendKey{kind: kind, scheme: scheme}
	if b, ok := w.backends[key]; ok {
		return b, nil
	}
	cfg := isolation.Config{
		Slots:          w.s.cfg.SlotsPerWorker,
		MaxMemoryBytes: w.maxBytes,
		GuardBytes:     1 << 20,
		Scheme:         scheme,
	}
	if kind == isolation.ColorGuard {
		cfg.Keys = 15
	}
	if kind == isolation.MultiProc {
		// Process-per-instance: every slot is its own OS process in the
		// model (§6.4.3), so a pinned warm instance costs a whole
		// process — the density disadvantage ColorGuard's same-process
		// slots are measured against at cluster scale.
		cfg.Processes = w.s.cfg.SlotsPerWorker
	}
	b, err := isolation.NewReserved(kind, mem.NewAS(47), cfg)
	if err != nil {
		return nil, fmt.Errorf("reserving %s backend: %w", kind, err)
	}
	if err := b.CheckIsolation(); err != nil {
		_ = b.Release()
		return nil, fmt.Errorf("%s slot layout unsafe: %w", kind, err)
	}
	w.backends[key] = b
	return b, nil
}

// run drains the shard queue until Close closes it, then closes the
// pinned warm instances and releases the worker's slabs.
func (w *worker) run(queue <-chan *job) {
	defer w.s.wg.Done()
	defer func() {
		if n := w.warm.closeAll(); n > 0 {
			w.s.met.warmPinned.Add(int64(-n))
		}
		for _, b := range w.backends {
			_ = b.Release()
		}
	}()
	for j := range queue {
		w.serve(j)
	}
}

// serve applies the degradation policies around one execution: a
// request past its deadline is dropped before any isolation or compute
// cost is sunk (and feeds the breaker, like the simulator's timeout
// path); completions and failures feed the breaker the same way.
func (w *worker) serve(j *job) {
	defer func() {
		w.s.met.inFlight.Set(w.s.inFlight.Add(-1))
	}()
	// obs gates all wall-clock phase bookkeeping below: with spans and
	// tracing both off, serving pays these two loads and nothing else.
	obs := j.span.On() || telemetry.Trace.Enabled()
	var deq time.Time
	if obs {
		deq = time.Now()
		j.span.Add(telemetry.PhaseQueue, float64(deq.Sub(j.admitted)))
		traceSpan("queue", j.shard, j.admitted, deq)
	}
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		w.s.met.timeouts.Inc()
		if w.s.breaker.OnFailure() {
			w.s.met.breakerOpens.Inc()
		}
		j.done <- jobResult{status: http.StatusGatewayTimeout,
			err: "deadline exceeded before execution", finished: deq}
		return
	}
	res := w.execute(j, obs, deq)
	if res.status == http.StatusOK {
		w.s.met.completed.Inc()
		w.s.met.latency.Observe(float64(time.Since(j.admitted)))
		w.s.breaker.OnSuccess()
	} else {
		w.s.met.failed.Inc()
		if w.s.breaker.OnFailure() {
			w.s.met.breakerOpens.Inc()
		}
	}
	j.done <- res
}

// execute runs one request end to end on a fresh placed instance. When
// obs is set it attributes the wall time to phases on j.span (and the
// tracer), keeping the phase boundaries telescoped: every return path
// sets finished to its last attributed instant, so the handler's
// marshal phase picks up exactly where execution left off. deq is the
// dequeue instant the placement phase starts from.
func (w *worker) execute(j *job, obs bool, deq time.Time) jobResult {
	mod := w.s.mods[j.kernel.Name]
	fail := func(status int, msg string) jobResult {
		res := jobResult{status: status, err: msg, worker: w.id}
		if obs {
			// The failed setup work is still placement time.
			res.finished = time.Now()
			j.span.Add(telemetry.PhasePlacement, float64(res.finished.Sub(deq)))
		}
		return res
	}
	key := warmKey{kernel: j.kernel.Name, kind: j.backend, scheme: j.scheme}
	inst, status, msg := w.acquire(key, mod)
	if inst == nil {
		return fail(status, msg)
	}
	var placed time.Time
	if obs {
		placed = time.Now()
		j.span.Add(telemetry.PhasePlacement, float64(placed.Sub(deq)))
		traceSpan("placement", j.shard, deq, placed)
	}
	out, err := inst.Invoke(j.kernel.Entry, j.batch)
	res := jobResult{worker: w.id}
	if obs {
		invoked := time.Now()
		res.finished = invoked
		w.attributeInvoke(j, inst, placed, invoked)
	}
	if err != nil {
		// A trapped or failed execution leaves machine state suspect:
		// never pin it.
		inst.Close()
		res.status = http.StatusInternalServerError
		res.err = fmt.Sprintf("invoking %s: %v", j.kernel.Name, err)
		return res
	}
	var sum uint64
	if len(out) > 0 {
		sum = out[0]
	}
	res.status = http.StatusOK
	res.checksum = sum
	res.simNs = inst.Mach.Stats.Nanos(&inst.Mach.Cost)
	w.retire(key, inst)
	return res
}

// acquire produces a ready instance for key: a pinned warm instance
// reset to its initial state when the pool has one, a cold start
// (fresh slot + instance) otherwise. A failed reset falls back to the
// cold path. Returns (nil, status, msg) when even the cold path fails.
func (w *worker) acquire(key warmKey, mod *rt.Module) (*rt.Instance, int, string) {
	if wi := w.warm.take(key); wi != nil {
		w.s.met.warmPinned.Add(-1)
		if err := wi.Reset(); err != nil {
			w.s.met.warmResetFails.Inc()
			wi.Close()
		} else {
			w.s.met.warmHits.Inc()
			return wi, 0, ""
		}
	}
	w.s.met.warmMisses.Inc()
	w.s.met.warmMissKind[key.kind].Inc()
	b, err := w.backend(key.kind, key.scheme)
	if err != nil {
		return nil, http.StatusInternalServerError, err.Error()
	}
	need := uint64(mod.IR.MemMin) * ir.PageSize
	slot, err := b.Allocate(need)
	if err != nil {
		// Slot exhaustion: the serving-layer analogue of the
		// simulator's SlotExhausted fault class.
		return nil, http.StatusServiceUnavailable,
			fmt.Sprintf("no free %s slot: %v", key.kind, err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{
		FSGSBASE: true,
		Place:    isolation.Place(b, slot),
	})
	if err != nil {
		_ = b.Recycle(slot)
		return nil, http.StatusInternalServerError,
			fmt.Sprintf("instantiating: %v", err)
	}
	return inst, 0, ""
}

// retire decides a successfully-used instance's fate: pin it warm
// under the current per-backend target, or close it (recycling the
// slot). Shrunken targets are enforced here too — on the owning
// goroutine — so an autoscaler shrink lands the next time the worker
// completes any request.
func (w *worker) retire(key warmKey, inst *rt.Instance) {
	for kind, target := range w.s.WarmTargets() {
		if kind == key.kind {
			continue // put enforces this kind's target below
		}
		if n := w.warm.trim(kind, target); n > 0 {
			w.s.met.warmEvictions.Add(uint64(n))
			w.s.met.warmPinned.Add(int64(-n))
		}
	}
	pinned, evicted := w.warm.put(key, inst, w.s.WarmTarget(key.kind))
	if evicted > 0 {
		w.s.met.warmEvictions.Add(uint64(evicted))
		w.s.met.warmPinned.Add(int64(-evicted))
	}
	if pinned {
		w.s.met.warmPinned.Add(1)
	} else {
		inst.Close()
	}
}

// attributeInvoke splits the wall time of one Invoke into transition-in,
// exec, and transition-out shares, in proportion to the instance's
// simulated cycle accounting (the only ground truth for where inside
// the crossing the time went), and emits the matching tracer spans on
// the job's shard track.
func (w *worker) attributeInvoke(j *job, inst *rt.Instance, placed, invoked time.Time) {
	wall := float64(invoked.Sub(placed))
	if wall <= 0 {
		return
	}
	inNs, outNs := inst.TransitionNs()
	simNs := inst.Mach.Stats.Nanos(&inst.Mach.Cost)
	var wIn, wOut float64
	if simNs > 0 && inNs+outNs <= simNs {
		wIn = wall * (inNs / simNs)
		wOut = wall * (outNs / simNs)
	}
	wExec := wall - wIn - wOut
	j.span.Add(telemetry.PhaseTransitionIn, wIn)
	j.span.Add(telemetry.PhaseExec, wExec)
	j.span.Add(telemetry.PhaseTransitionOut, wOut)
	if telemetry.Trace.Enabled() {
		tIn := placed.Add(time.Duration(wIn))
		tExec := tIn.Add(time.Duration(wExec))
		traceSpan("transition_in", j.shard, placed, tIn)
		traceSpan("exec", j.shard, tIn, tExec)
		traceSpan("transition_out", j.shard, tExec, invoked)
	}
}

// traceSpan emits one wall-clock phase span on the shard's track of the
// process tracer (one track per shard, cat "serve").
func traceSpan(name string, shard int, start, end time.Time) {
	if !telemetry.Trace.Enabled() || !end.After(start) {
		return
	}
	ts := telemetry.Trace.Now() - float64(time.Since(start))
	telemetry.Trace.Span(name, "serve", telemetry.PidWall, shard, ts, float64(end.Sub(start)))
}
