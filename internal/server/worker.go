package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// compileKernel fetches a kernel's compiled module from the process-wide
// race-safe compile cache, so N workers share one compilation.
func compileKernel(k workloads.Kernel) (*rt.Module, error) {
	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	return rt.CompileModuleCached(
		rt.ModuleKey{Name: k.Name, Cfg: cfg},
		func() *ir.Module { return k.Build(false) })
}

// worker is one executor goroutine. It owns its isolation backends
// outright — simulated address spaces are single-owner — and runs one
// request at a time: allocate a slot from the request's backend, build
// a fresh instance in it, invoke the kernel, recycle the slot.
//
// Backends are keyed by (kind, scheme): a slab's transition cost model
// is fixed at Reserve, so requests under different transition schemes
// must not share a slab.
type worker struct {
	s        *Server
	id       int
	maxBytes uint64 // largest linear memory any served kernel needs
	backends map[backendKey]isolation.Backend
}

// backendKey identifies one of a worker's slabs: the isolation
// mechanism plus the transition scheme its cost model was reserved
// under.
type backendKey struct {
	kind   isolation.Kind
	scheme isolation.Scheme
}

func newWorker(s *Server, id int) *worker {
	var maxBytes uint64
	for _, m := range s.mods {
		if n := uint64(m.IR.MemMax) * ir.PageSize; n > maxBytes {
			maxBytes = n
		}
	}
	return &worker{
		s:        s,
		id:       id,
		maxBytes: maxBytes,
		backends: make(map[backendKey]isolation.Backend),
	}
}

// backend returns the worker's slab for (kind, scheme), reserving it on
// first use (a worker that never sees an MTE request never pays for an
// MTE slab, and a worker that never sees a zerocost request never pays
// for a second slab of the same kind).
func (w *worker) backend(kind isolation.Kind, scheme isolation.Scheme) (isolation.Backend, error) {
	key := backendKey{kind: kind, scheme: scheme}
	if b, ok := w.backends[key]; ok {
		return b, nil
	}
	cfg := isolation.Config{
		Slots:          w.s.cfg.SlotsPerWorker,
		MaxMemoryBytes: w.maxBytes,
		GuardBytes:     1 << 20,
		Scheme:         scheme,
	}
	if kind == isolation.ColorGuard {
		cfg.Keys = 15
	}
	b, err := isolation.NewReserved(kind, mem.NewAS(47), cfg)
	if err != nil {
		return nil, fmt.Errorf("reserving %s backend: %w", kind, err)
	}
	if err := b.CheckIsolation(); err != nil {
		_ = b.Release()
		return nil, fmt.Errorf("%s slot layout unsafe: %w", kind, err)
	}
	w.backends[key] = b
	return b, nil
}

// run drains the shard queue until Close closes it, then releases the
// worker's slabs.
func (w *worker) run(queue <-chan *job) {
	defer w.s.wg.Done()
	defer func() {
		for _, b := range w.backends {
			_ = b.Release()
		}
	}()
	for j := range queue {
		w.serve(j)
	}
}

// serve applies the degradation policies around one execution: a
// request past its deadline is dropped before any isolation or compute
// cost is sunk (and feeds the breaker, like the simulator's timeout
// path); completions and failures feed the breaker the same way.
func (w *worker) serve(j *job) {
	defer func() {
		w.s.met.inFlight.Set(w.s.inFlight.Add(-1))
	}()
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		w.s.met.timeouts.Inc()
		if w.s.breaker.OnFailure() {
			w.s.met.breakerOpens.Inc()
		}
		j.done <- jobResult{status: http.StatusGatewayTimeout, err: "deadline exceeded before execution"}
		return
	}
	res := w.execute(j)
	if res.status == http.StatusOK {
		w.s.met.completed.Inc()
		w.s.met.latency.Observe(float64(time.Since(j.admitted)))
		w.s.breaker.OnSuccess()
	} else {
		w.s.met.failed.Inc()
		if w.s.breaker.OnFailure() {
			w.s.met.breakerOpens.Inc()
		}
	}
	j.done <- res
}

// execute runs one request end to end on a fresh placed instance.
func (w *worker) execute(j *job) jobResult {
	mod := w.s.mods[j.kernel.Name]
	b, err := w.backend(j.backend, j.scheme)
	if err != nil {
		return jobResult{status: http.StatusInternalServerError, err: err.Error()}
	}
	need := uint64(mod.IR.MemMin) * ir.PageSize
	slot, err := b.Allocate(need)
	if err != nil {
		// Slot exhaustion: the serving-layer analogue of the
		// simulator's SlotExhausted fault class.
		return jobResult{status: http.StatusServiceUnavailable,
			err: fmt.Sprintf("no free %s slot: %v", j.backend, err)}
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{
		FSGSBASE: true,
		Place:    isolation.Place(b, slot),
	})
	if err != nil {
		_ = b.Recycle(slot)
		return jobResult{status: http.StatusInternalServerError,
			err: fmt.Sprintf("instantiating: %v", err)}
	}
	defer inst.Close()
	out, err := inst.Invoke(j.kernel.Entry, j.batch)
	if err != nil {
		return jobResult{status: http.StatusInternalServerError,
			err: fmt.Sprintf("invoking %s: %v", j.kernel.Name, err)}
	}
	var sum uint64
	if len(out) > 0 {
		sum = out[0]
	}
	return jobResult{
		status:   http.StatusOK,
		checksum: sum,
		simNs:    inst.Mach.Stats.Nanos(&inst.Mach.Cost),
		worker:   w.id,
	}
}
