package server

import (
	"container/list"

	"repro/internal/isolation"
	"repro/internal/rt"
)

// warmKey identifies one keep-warm pool entry: a placed, initialized
// instance of a kernel under one isolation mechanism and transition
// scheme. The slot stays allocated while the entry is pinned, so a hit
// skips the whole cold-start path (slot allocation, address-space
// layout, data-segment initialization bookkeeping) and pays only an
// rt.Instance.Reset.
type warmKey struct {
	kernel string
	kind   isolation.Kind
	scheme isolation.Scheme
}

// warmEntry is one pinned instance on the pool's LRU list.
type warmEntry struct {
	key  warmKey
	inst *rt.Instance
}

// warmPool is a worker's keep-warm cache. It is owned by exactly one
// worker goroutine — instances wrap single-owner address spaces, so the
// pool must never be shared — and holds at most one instance per key
// (a worker runs one request at a time). Capacity is governed per
// backend kind by the server's warm targets, which the autoscaler
// adjusts at runtime through /control/warm; enforcement is lazy, on the
// worker's own put path, so resizing never touches another goroutine's
// instances.
type warmPool struct {
	entries map[warmKey]*list.Element
	lru     *list.List // front = most recently used
	perKind map[isolation.Kind]int
}

func newWarmPool() *warmPool {
	return &warmPool{
		entries: make(map[warmKey]*list.Element),
		lru:     list.New(),
		perKind: make(map[isolation.Kind]int),
	}
}

// take removes and returns the pinned instance for key, or nil.
func (p *warmPool) take(key warmKey) *rt.Instance {
	el, ok := p.entries[key]
	if !ok {
		return nil
	}
	p.remove(el)
	return el.Value.(*warmEntry).inst
}

// put pins inst under key, evicting the least-recently-used entry of
// the same kind if that kind is at its target. target <= 0 refuses the
// pin (the caller closes the instance). Returns the number of entries
// evicted (0 or 1) — evicted instances are closed here, recycling
// their slots.
func (p *warmPool) put(key warmKey, inst *rt.Instance, target int) (pinned bool, evicted int) {
	if target <= 0 {
		return false, 0
	}
	if el, ok := p.entries[key]; ok {
		// A stale pin under the same key (should not happen: take
		// removes before execute). Replace it.
		p.remove(el)
		el.Value.(*warmEntry).inst.Close()
		evicted++
	}
	for p.perKind[key.kind] >= target {
		if !p.evictKind(key.kind) {
			break
		}
		evicted++
	}
	p.entries[key] = p.lru.PushFront(&warmEntry{key: key, inst: inst})
	p.perKind[key.kind]++
	return true, evicted
}

// trim closes LRU entries of kind until at most target remain,
// returning how many it closed. The autoscaler's shrink decisions land
// here, on the owning worker's goroutine, the next time it touches the
// pool.
func (p *warmPool) trim(kind isolation.Kind, target int) int {
	if target < 0 {
		target = 0
	}
	n := 0
	for p.perKind[kind] > target {
		if !p.evictKind(kind) {
			break
		}
		n++
	}
	return n
}

// evictKind closes the least-recently-used entry of kind.
func (p *warmPool) evictKind(kind isolation.Kind) bool {
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*warmEntry)
		if e.key.kind == kind {
			p.remove(el)
			e.inst.Close()
			return true
		}
	}
	return false
}

// size returns the number of pinned instances.
func (p *warmPool) size() int { return p.lru.Len() }

// closeAll tears every pinned instance down (worker shutdown).
func (p *warmPool) closeAll() int {
	n := 0
	for el := p.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*warmEntry).inst.Close()
		n++
	}
	p.entries = make(map[warmKey]*list.Element)
	p.lru.Init()
	p.perKind = make(map[isolation.Kind]int)
	return n
}

func (p *warmPool) remove(el *list.Element) {
	e := el.Value.(*warmEntry)
	p.lru.Remove(el)
	delete(p.entries, e.key)
	p.perKind[e.key.kind]--
}
