package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// warmTestServer boots a 1-shard/1-worker server so request ordering is
// deterministic, with its own registry for counter assertions.
func warmTestServer(t *testing.T, warm int) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Shards:          1,
		WorkersPerShard: 1,
		WarmPerWorker:   warm,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, reg
}

// TestWarmReuse: the second request to the same (kernel, backend,
// scheme) hits the keep-warm pool — no second cold start — and returns
// the identical checksum and simulated time (the reset is bit-exact).
func TestWarmReuse(t *testing.T) {
	_, ts, reg := warmTestServer(t, 2)
	url := ts.URL + "/invoke/hash-load-balance?backend=colorguard"

	st1, body1 := get(t, url)
	st2, body2 := get(t, url)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d, %d", st1, st2)
	}
	if body1["checksum"] != body2["checksum"] {
		t.Errorf("warm checksum %v != cold %v", body2["checksum"], body1["checksum"])
	}
	if body1["sim_us"] != body2["sim_us"] {
		t.Errorf("warm sim_us %v != cold %v (reset not bit-exact?)", body2["sim_us"], body1["sim_us"])
	}

	if hits := reg.Counter("server.warm.hits").Load(); hits != 1 {
		t.Errorf("warm hits = %d, want 1", hits)
	}
	if misses := reg.Counter("server.warm.misses").Load(); misses != 1 {
		t.Errorf("warm misses = %d, want 1 (second request cold-started)", misses)
	}
	if pinned := reg.Gauge("server.warm.pinned").Load(); pinned != 1 {
		t.Errorf("warm pinned = %d, want 1", pinned)
	}
}

// TestWarmDistinctKeys: requests under different backends or schemes
// never share a pinned instance — each key cold-starts once, then hits.
func TestWarmDistinctKeys(t *testing.T) {
	_, ts, reg := warmTestServer(t, 3)
	urls := []string{
		ts.URL + "/invoke/regex-filtering?backend=colorguard",
		ts.URL + "/invoke/regex-filtering?backend=guardpage",
		ts.URL + "/invoke/regex-filtering?backend=colorguard&scheme=zerocost",
	}
	for _, u := range urls {
		if st, _ := get(t, u); st != http.StatusOK {
			t.Fatalf("GET %s: %d", u, st)
		}
	}
	if hits := reg.Counter("server.warm.hits").Load(); hits != 0 {
		t.Fatalf("distinct keys hit the pool %d times", hits)
	}
	for _, u := range urls {
		if st, _ := get(t, u); st != http.StatusOK {
			t.Fatalf("GET %s: %d", u, st)
		}
	}
	if hits := reg.Counter("server.warm.hits").Load(); hits != 3 {
		t.Errorf("second round hits = %d, want 3", hits)
	}
}

// TestWarmDisabled: a negative WarmPerWorker turns keep-warm off —
// every request cold-starts and nothing is pinned.
func TestWarmDisabled(t *testing.T) {
	_, ts, reg := warmTestServer(t, -1)
	url := ts.URL + "/invoke/regex-filtering"
	for i := 0; i < 3; i++ {
		if st, _ := get(t, url); st != http.StatusOK {
			t.Fatalf("request %d: %d", i, st)
		}
	}
	if hits := reg.Counter("server.warm.hits").Load(); hits != 0 {
		t.Errorf("disabled pool recorded %d hits", hits)
	}
	if pinned := reg.Gauge("server.warm.pinned").Load(); pinned != 0 {
		t.Errorf("disabled pool pinned %d instances", pinned)
	}
}

// TestWarmTargetControl: POST /control/warm retargets a backend's pool
// at runtime; a shrink to zero evicts the pinned instance on the next
// completed request, and the clamp keeps one slot of headroom.
func TestWarmTargetControl(t *testing.T) {
	s, ts, reg := warmTestServer(t, 2)
	url := ts.URL + "/invoke/regex-filtering?backend=colorguard"
	if st, _ := get(t, url); st != http.StatusOK {
		t.Fatal("seed request failed")
	}
	if pinned := reg.Gauge("server.warm.pinned").Load(); pinned != 1 {
		t.Fatalf("pinned = %d after seed, want 1", pinned)
	}

	// Shrink colorguard to zero via the control endpoint.
	resp, err := http.Post(ts.URL+"/control/warm?backend=colorguard&target=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control POST: %d", resp.StatusCode)
	}
	if got := s.WarmTarget("colorguard"); got != 0 {
		t.Fatalf("target after shrink = %d", got)
	}

	// The next completed request must not be pinned, and the old pin is
	// gone (evicted by the lazy trim or replaced then dropped).
	if st, _ := get(t, url); st != http.StatusOK {
		t.Fatal("post-shrink request failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("server.warm.pinned").Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pinned := reg.Gauge("server.warm.pinned").Load(); pinned != 0 {
		t.Errorf("pinned = %d after shrink to 0", pinned)
	}

	// Clamp: a target above SlotsPerWorker-1 is cut to the headroom
	// bound (default slots = 4 -> max warm 3).
	resp, err = http.Post(ts.URL+"/control/warm?backend=colorguard&target=99", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.WarmTarget("colorguard"); got != 3 {
		t.Errorf("clamped target = %d, want 3", got)
	}

	// Invalid controls are 400s.
	for _, q := range []string{"backend=warp&target=1", "backend=colorguard&target=-2", "backend=colorguard&target=x"} {
		resp, err := http.Post(ts.URL+"/control/warm?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /control/warm?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestWarmEvictionLRU: with a target of 1, alternating kernels under
// one backend evict each other (least-recently-used), visible as
// evictions without the pinned gauge ever exceeding the target.
func TestWarmEvictionLRU(t *testing.T) {
	_, ts, reg := warmTestServer(t, 1)
	a := ts.URL + "/invoke/regex-filtering?backend=colorguard"
	b := ts.URL + "/invoke/hash-load-balance?backend=colorguard"
	for i := 0; i < 3; i++ {
		for _, u := range []string{a, b} {
			if st, _ := get(t, u); st != http.StatusOK {
				t.Fatalf("round %d: GET %s failed", i, u)
			}
		}
	}
	if ev := reg.Counter("server.warm.evictions").Load(); ev < 4 {
		t.Errorf("evictions = %d, want >= 4 (alternating kernels must displace each other)", ev)
	}
	if pinned := reg.Gauge("server.warm.pinned").Load(); pinned > 1 {
		t.Errorf("pinned = %d exceeds target 1", pinned)
	}
	if hits := reg.Counter("server.warm.hits").Load(); hits != 0 {
		t.Errorf("hits = %d, want 0 (pool of 1 thrashes)", hits)
	}
}

// TestWarmHealthz: /healthz surfaces the pinned count and per-backend
// targets so operators (and the autoscaler) see pool state per worker
// process.
func TestWarmHealthz(t *testing.T) {
	_, ts, _ := warmTestServer(t, 2)
	if st, _ := get(t, ts.URL+"/invoke/regex-filtering"); st != http.StatusOK {
		t.Fatal("seed request failed")
	}
	st, body := get(t, ts.URL+"/healthz")
	if st != http.StatusOK {
		t.Fatalf("/healthz: %d", st)
	}
	warm, ok := body["warm"].(map[string]any)
	if !ok {
		t.Fatalf("/healthz has no warm section: %v", body)
	}
	if warm["pinned"].(float64) != 1 {
		t.Errorf("healthz pinned = %v, want 1", warm["pinned"])
	}
	targets := warm["targets"].(map[string]any)
	for _, kind := range []string{"guardpage", "colorguard", "mte", "multiproc"} {
		if _, ok := targets[kind]; !ok {
			t.Errorf("healthz warm targets missing %s: %v", kind, targets)
		}
	}
	if targets["colorguard"].(float64) != 2 {
		t.Errorf("colorguard target = %v, want 2", targets["colorguard"])
	}
}

// TestWarmGetControl: GET /control/warm reports targets, pinned count,
// and the slot bound.
func TestWarmGetControl(t *testing.T) {
	_, ts, _ := warmTestServer(t, 2)
	st, body := get(t, ts.URL+"/control/warm")
	if st != http.StatusOK {
		t.Fatalf("GET /control/warm: %d", st)
	}
	if body["slots"].(float64) != 4 {
		t.Errorf("slots = %v, want 4", body["slots"])
	}
	targets := body["targets"].(map[string]any)
	if len(targets) != 4 {
		t.Errorf("targets = %v, want all four backends", targets)
	}
}

// TestWarmFasterThanCold sanity-checks the point of the pool: across a
// few samples, the best warm placement phase should not be slower than
// the best cold one (reset skips slot allocation and layout).
func TestWarmFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	_, ts, reg := warmTestServer(t, 2)
	url := ts.URL + "/invoke/hash-load-balance?backend=colorguard"
	for i := 0; i < 12; i++ {
		if st, _ := get(t, url); st != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	hits := reg.Counter("server.warm.hits").Load()
	if hits < 11 {
		t.Fatalf("hits = %d, want 11 (single worker, single key)", hits)
	}
	// No strict latency assertion (CI machines are noisy); the phase
	// histogram existing at all proves placement was attributed on the
	// warm path too.
	if snap := reg.Snapshot(); len(snap.Histograms) == 0 {
		t.Skip("spans disabled; nothing to compare")
	}
}
