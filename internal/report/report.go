// Package report renders experiment results as aligned text tables and
// Markdown — the output format of cmd/benchtab and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: an identifier tying it to the
// paper's table/figure, headers, string-rendered rows, and free-form
// notes (paper-reported values, caveats).
type Table struct {
	ID      string // e.g. "fig3", "table2"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row built from values via %v (floats as %.3g unless
// pre-rendered strings are given).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// Norm formats a normalized runtime (1.0 = native).
func Norm(x float64) string { return fmt.Sprintf("%.3f", x) }
