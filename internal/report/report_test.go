package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "t1",
		Title:   "sample",
		Headers: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", 1.5)
	t.AddRow("a-much-longer-name", 42)
	t.AddRow("pct", Pct(0.25))
	return t
}

func TestText(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{"== t1: sample ==", "alpha", "1.500", "a-much-longer-name", "42", "25.0%", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data row starts with a padded name column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
	hdr := strings.Index(lines[1], "value")
	row := strings.Index(lines[3], "1.500")
	if hdr < 0 || row < 0 || hdr != row {
		t.Errorf("value column misaligned: header at %d, row at %d", hdr, row)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### t1 — sample", "| name | value |", "| --- | --- |", "| alpha | 1.500 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Norm(1.0) != "1.000" {
		t.Errorf("Norm = %q", Norm(1.0))
	}
}
