// Package pool implements the Wasmtime-style pooling allocator of §5.1:
// a single large mmap (the slab) split into fixed-size slots delimited
// by guard regions, recycled with madvise(MADV_DONTNEED), and — with
// ColorGuard — striped with MPK colors so slots can pack into the space
// classic layouts waste on guards.
//
// The slot-layout computation is the security-critical piece the paper
// formally verified (§5.2, Table 1). ComputeLayout is the fixed version
// enforcing all ten invariants; ComputeLayoutLegacy preserves the
// pre-verification behaviour — a saturating addition that should have
// been checked, and four missing preconditions — so internal/verify can
// demonstrate finding the bug.
package pool

import (
	"errors"
	"fmt"

	"repro/internal/colorguard"
	"repro/internal/mem"
)

// WasmPageSize is the Wasm linear-memory page size (64 KiB); OSPageSize
// is the host page size.
const (
	WasmPageSize = 64 * 1024
	OSPageSize   = mem.PageSize
)

// Config describes a requested pool geometry, mirroring the parameters
// Wasmtime's memory pool accepts (§5.1): slot count, per-instance
// maximum memory, guard sizes, whether pre-guards are used, and how
// many protection keys striping may use.
type Config struct {
	// NumSlots is the requested slot count; 0 means "as many as fit in
	// TotalBytes".
	NumSlots int

	// MaxMemoryBytes is the largest linear memory an instance may grow
	// to; the slot must hold it (invariant 2).
	MaxMemoryBytes uint64

	// ExpectedSlotBytes is the per-sandbox memory reservation the
	// compiler assumes without striping (the addressable region,
	// excluding guards; ≥ MaxMemoryBytes). 0 derives it from
	// MaxMemoryBytes.
	ExpectedSlotBytes uint64

	// GuardBytes is the dead space that must separate a sandbox from
	// the next identically-colored (or unmanaged) region.
	GuardBytes uint64

	// PreGuardBytes, when non-zero, reserves a shared pre-guard before
	// the first slot (the signed-offset 2 GiB scheme).
	PreGuardBytes uint64

	// Keys is the number of MPK keys available for striping (0 or 1
	// disables ColorGuard).
	Keys int

	// TotalBytes caps the slab's address-space reservation; required
	// when NumSlots is 0.
	TotalBytes uint64
}

// Layout is the computed slab geometry — the explicit contract between
// the allocator and the compiler (§5.1).
type Layout struct {
	PreSlabGuardBytes  uint64
	SlotBytes          uint64
	PostSlabGuardBytes uint64
	NumSlots           int
	NumStripes         int
	TotalSlabBytes     uint64

	// Echoed inputs the invariants refer to.
	MaxMemoryBytes    uint64
	ExpectedSlotBytes uint64
	GuardBytes        uint64
}

// BytesToNextStripeSlot returns the distance from a slot's start to the
// next slot of the same color — the quantity invariant 6 bounds.
func (l Layout) BytesToNextStripeSlot() uint64 {
	return l.SlotBytes * uint64(l.NumStripes)
}

// Layout computation errors.
var (
	ErrOverflow  = errors.New("pool: layout arithmetic overflow")
	ErrTooSmall  = errors.New("pool: slot cannot hold maximum memory")
	ErrNoBudget  = errors.New("pool: total byte budget required when NumSlots is 0")
	ErrNoFit     = errors.New("pool: no slots fit in the byte budget")
	ErrUnaligned = errors.New("pool: size parameter not page-aligned")
	ErrBadConfig = errors.New("pool: invalid configuration")
)

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func ceilDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

func checkedAdd(a, b uint64) (uint64, error) {
	s := a + b
	if s < a {
		return 0, ErrOverflow
	}
	return s, nil
}

func checkedMul(a, b uint64) (uint64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/a != b {
		return 0, ErrOverflow
	}
	return p, nil
}

// satAdd and satMul are the saturating forms the legacy computation
// used — the §5.2 bug: when they actually saturate, the resulting
// layout silently violates Table 1's invariant 1.
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b {
		return ^uint64(0)
	}
	return p
}

// ComputeLayout derives the slab layout for cfg, enforcing every
// precondition and invariant of Table 1 (1–10). It is the
// post-verification version: checked arithmetic throughout, and inputs
// that would produce an unsafe layout are rejected rather than
// accepted.
func ComputeLayout(cfg Config) (Layout, error) {
	// Missing preconditions 7-10 revealed by verification, now checked.
	if cfg.MaxMemoryBytes == 0 {
		return Layout{}, fmt.Errorf("%w: zero maximum memory", ErrBadConfig)
	}
	if cfg.MaxMemoryBytes%WasmPageSize != 0 {
		return Layout{}, fmt.Errorf("%w: max memory %d not a multiple of the Wasm page size", ErrUnaligned, cfg.MaxMemoryBytes)
	}
	if cfg.ExpectedSlotBytes != 0 && cfg.ExpectedSlotBytes%WasmPageSize != 0 {
		return Layout{}, fmt.Errorf("%w: expected slot bytes %d not a multiple of the Wasm page size", ErrUnaligned, cfg.ExpectedSlotBytes)
	}
	if cfg.GuardBytes%OSPageSize != 0 || cfg.PreGuardBytes%OSPageSize != 0 {
		return Layout{}, fmt.Errorf("%w: guard sizes must be multiples of the OS page size", ErrUnaligned)
	}
	if cfg.NumSlots < 0 || cfg.Keys < 0 {
		return Layout{}, ErrBadConfig
	}

	expected := cfg.ExpectedSlotBytes
	if expected == 0 {
		expected = alignUp(cfg.MaxMemoryBytes, WasmPageSize)
	}
	if expected < cfg.MaxMemoryBytes {
		return Layout{}, ErrTooSmall
	}

	// footprint is what one sandbox occupies without striping: its
	// memory reservation plus the guard that must follow it.
	footprint, err := checkedAdd(expected, cfg.GuardBytes)
	if err != nil {
		return Layout{}, err
	}
	base := alignUp(cfg.MaxMemoryBytes, OSPageSize)
	stripes := colorguard.StripeCount(base, cfg.GuardBytes, cfg.Keys)
	// A fixed slot count bounds the usable stripes up front; in the
	// budget-filling case the computed count always exceeds the key
	// count, so no recomputation is needed there.
	if cfg.NumSlots > 0 && stripes > cfg.NumSlots {
		stripes = cfg.NumSlots
	}
	// Striped slot size: carve the footprint into stripes, never below
	// the maximum memory (invariant 2). Because the stride is at least
	// footprint/stripes, the distance back to the same color always
	// covers memory + guard (invariant 6); shortfalls from too few keys
	// surface as a larger stride — the "combination of stripes and
	// guard regions" of §5.1.
	var slot uint64
	if stripes > 1 {
		slot = alignUp(ceilDiv(footprint, uint64(stripes)), OSPageSize)
		if slot < base {
			slot = base
		}
	} else {
		slot = alignUp(footprint, OSPageSize)
	}

	post := alignUp(cfg.GuardBytes, OSPageSize)
	pre := alignUp(cfg.PreGuardBytes, OSPageSize)

	n := cfg.NumSlots
	if n == 0 {
		if cfg.TotalBytes == 0 {
			return Layout{}, ErrNoBudget
		}
		fixed, err := checkedAdd(pre, post)
		if err != nil {
			return Layout{}, err
		}
		if cfg.TotalBytes <= fixed || slot == 0 {
			return Layout{}, ErrNoFit
		}
		n = int((cfg.TotalBytes - fixed) / slot)
		if n == 0 {
			return Layout{}, ErrNoFit
		}
		if stripes > n {
			// A budget too small for one full stripe cycle: fall back
			// to unstriped guard-region slots.
			stripes = 1
			slot = alignUp(footprint, OSPageSize)
			n = int((cfg.TotalBytes - fixed) / slot)
			if n == 0 {
				return Layout{}, ErrNoFit
			}
		}
	}

	slotsTotal, err := checkedMul(slot, uint64(n))
	if err != nil {
		return Layout{}, err
	}
	total, err := checkedAdd(pre, slotsTotal)
	if err != nil {
		return Layout{}, err
	}
	total, err = checkedAdd(total, post)
	if err != nil {
		return Layout{}, err
	}
	if cfg.TotalBytes != 0 && total > cfg.TotalBytes {
		// Invariant 10: the layout must fit the stated budget.
		return Layout{}, fmt.Errorf("%w: layout needs %d bytes, budget is %d", ErrNoFit, total, cfg.TotalBytes)
	}

	l := Layout{
		PreSlabGuardBytes:  pre,
		SlotBytes:          slot,
		PostSlabGuardBytes: post,
		NumSlots:           n,
		NumStripes:         stripes,
		TotalSlabBytes:     total,
		MaxMemoryBytes:     cfg.MaxMemoryBytes,
		ExpectedSlotBytes:  expected,
		GuardBytes:         cfg.GuardBytes,
	}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// ComputeLayoutLegacy is the pre-verification computation: it performs
// the same derivation with SATURATING arithmetic (the §5.2 bug) and
// without preconditions 7–10, so adversarial inputs yield layouts that
// silently violate the Table 1 invariants. Kept for the verification
// demonstration and regression tests; do not use for real allocation.
func ComputeLayoutLegacy(cfg Config) (Layout, error) {
	expected := cfg.ExpectedSlotBytes
	if expected == 0 {
		expected = alignUp(cfg.MaxMemoryBytes, WasmPageSize)
	}
	footprint := satAdd(expected, cfg.GuardBytes)
	base := alignUp(cfg.MaxMemoryBytes, OSPageSize)
	stripes := colorguard.StripeCount(base, cfg.GuardBytes, cfg.Keys)
	var slot uint64
	if stripes > 1 {
		slot = alignUp(ceilDiv(footprint, uint64(stripes)), OSPageSize)
		if slot < base {
			slot = base
		}
	} else {
		slot = alignUp(footprint, OSPageSize)
	}
	post := alignUp(cfg.GuardBytes, OSPageSize)
	pre := alignUp(cfg.PreGuardBytes, OSPageSize)
	n := cfg.NumSlots
	if n == 0 {
		if cfg.TotalBytes == 0 || slot == 0 {
			return Layout{}, ErrNoBudget
		}
		fixed := satAdd(pre, post)
		if cfg.TotalBytes <= fixed {
			return Layout{}, ErrNoFit
		}
		n = int((cfg.TotalBytes - fixed) / slot)
	}
	if stripes > n && n > 0 {
		stripes = n
	}
	if stripes < 1 {
		stripes = 1
	}
	// THE BUG: saturating instead of checked arithmetic. When the
	// multiply or adds saturate, TotalSlabBytes no longer equals
	// pre + slot*n + post and invariant 1 is broken — silently.
	total := satAdd(satAdd(pre, satMul(slot, uint64(n))), post)
	return Layout{
		PreSlabGuardBytes:  pre,
		SlotBytes:          slot,
		PostSlabGuardBytes: post,
		NumSlots:           n,
		NumStripes:         stripes,
		TotalSlabBytes:     total,
		MaxMemoryBytes:     cfg.MaxMemoryBytes,
		ExpectedSlotBytes:  expected,
		GuardBytes:         cfg.GuardBytes,
	}, nil
}

// Validate checks the Table 1 invariants (1–9) on a computed layout.
// (Invariant 10, budget fit, needs the config and is enforced by
// ComputeLayout.)
func (l Layout) Validate() error {
	// 1: no leaks — the pieces sum to the whole.
	slots, err := checkedMul(l.SlotBytes, uint64(l.NumSlots))
	if err != nil {
		return fmt.Errorf("invariant 1: %w", err)
	}
	sum, err := checkedAdd(l.PreSlabGuardBytes, slots)
	if err != nil {
		return fmt.Errorf("invariant 1: %w", err)
	}
	sum, err = checkedAdd(sum, l.PostSlabGuardBytes)
	if err != nil {
		return fmt.Errorf("invariant 1: %w", err)
	}
	if sum != l.TotalSlabBytes {
		return fmt.Errorf("invariant 1 violated: pre %d + slots %d + post %d != total %d",
			l.PreSlabGuardBytes, slots, l.PostSlabGuardBytes, l.TotalSlabBytes)
	}
	// 2: the memory fits its slot.
	if l.SlotBytes < l.MaxMemoryBytes {
		return fmt.Errorf("invariant 2 violated: slot %d < max memory %d", l.SlotBytes, l.MaxMemoryBytes)
	}
	// 3: page alignment.
	for name, v := range map[string]uint64{
		"slot_bytes":            l.SlotBytes,
		"max_memory_bytes":      l.MaxMemoryBytes,
		"pre_slot_guard_bytes":  l.PreSlabGuardBytes,
		"post_slot_guard_bytes": l.PostSlabGuardBytes,
		"total_slot_bytes":      l.TotalSlabBytes,
	} {
		if v%OSPageSize != 0 {
			return fmt.Errorf("invariant 3 violated: %s = %d not page aligned", name, v)
		}
	}
	// 4: stripe count within keys and slots.
	if l.NumStripes < 1 || l.NumStripes > colorguard.MaxKeys+1 || (l.NumSlots > 0 && l.NumStripes > l.NumSlots) {
		return fmt.Errorf("invariant 4 violated: %d stripes for %d slots", l.NumStripes, l.NumSlots)
	}
	// 5: minimum stripes for the guard requirement.
	if l.MaxMemoryBytes > 0 {
		maxNeeded := l.GuardBytes/l.MaxMemoryBytes + 2
		if uint64(l.NumStripes) > maxNeeded {
			return fmt.Errorf("invariant 5 violated: %d stripes exceeds needed %d", l.NumStripes, maxNeeded)
		}
	}
	// 6: striping preserves the guard distance, and the final slot
	// does not rely on MPK (its guard is the post-slab guard).
	if l.NumStripes > 1 {
		need, err := checkedAdd(maxU64(l.ExpectedSlotBytes, l.MaxMemoryBytes), l.GuardBytes)
		if err != nil {
			return fmt.Errorf("invariant 6: %w", err)
		}
		if l.BytesToNextStripeSlot() < need {
			return fmt.Errorf("invariant 6 violated: next same-color slot at %d, need %d",
				l.BytesToNextStripeSlot(), need)
		}
	}
	if got, err := checkedAdd(l.SlotBytes, l.PostSlabGuardBytes); err != nil || got < minSlotClose(l) {
		return fmt.Errorf("invariant 6 violated: final slot underprotected (%d < %d)", got, minSlotClose(l))
	}
	// 7/8: Wasm-page alignment of the sizes the compiler contracts on.
	if l.ExpectedSlotBytes%WasmPageSize != 0 {
		return fmt.Errorf("invariant 7 violated: expected slot bytes %d", l.ExpectedSlotBytes)
	}
	if l.MaxMemoryBytes%WasmPageSize != 0 {
		return fmt.Errorf("invariant 8 violated: max memory %d", l.MaxMemoryBytes)
	}
	// 9: guard alignment (already covered for pre/post in 3; the
	// configured guard itself must be OS-page aligned).
	if l.GuardBytes%OSPageSize != 0 {
		return fmt.Errorf("invariant 9 violated: guard bytes %d", l.GuardBytes)
	}
	return nil
}

// minSlotClose is the minimum protection the final slot needs: its own
// memory plus the guard requirement.
func minSlotClose(l Layout) uint64 {
	return l.MaxMemoryBytes + l.GuardBytes
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
