package pool

import (
	"fmt"

	"repro/internal/colorguard"
	"repro/internal/mem"
)

// Slot describes an allocated pool slot: where the instance's linear
// memory lives and which MPK color protects it.
type Slot struct {
	Index    int
	Addr     uint64
	Pkey     uint8
	MaxBytes uint64
}

// Pool is the live allocator: a slab reservation inside an address
// space, a free list of slots, and the striping pattern.
type Pool struct {
	AS     *mem.AS
	Layout Layout
	Base   uint64

	free    []int
	inUse   map[int]bool
	colored bool // slots have been pkey-striped

	// Allocations and Releases count slot turnover.
	Allocations uint64
	Releases    uint64
}

// New reserves the slab for cfg inside as and prepares the free list.
// The whole slab is PROT_NONE until slots are allocated; striping
// colors are applied lazily per slot (matching how pkey_mprotect is
// used together with madvise-based recycling: colors persist across
// instance reuse, §7).
func New(as *mem.AS, cfg Config) (*Pool, error) {
	l, err := ComputeLayout(cfg)
	if err != nil {
		return nil, err
	}
	base, err := as.MmapAnywhere(l.TotalSlabBytes, mem.ProtNone)
	if err != nil {
		return nil, fmt.Errorf("pool: reserving slab: %w", err)
	}
	p := &Pool{AS: as, Layout: l, Base: base, inUse: make(map[int]bool)}
	for i := l.NumSlots - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p, nil
}

// Capacity returns the total slot count.
func (p *Pool) Capacity() int { return p.Layout.NumSlots }

// Available returns the number of free slots.
func (p *Pool) Available() int { return len(p.free) }

// SlotAddr returns the base address of slot i.
func (p *Pool) SlotAddr(i int) uint64 {
	return p.Base + p.Layout.PreSlabGuardBytes + uint64(i)*p.Layout.SlotBytes
}

// KeyForSlot returns the MPK color of slot i under the pool's striping.
func (p *Pool) KeyForSlot(i int) uint8 {
	return colorguard.KeyForSlot(i, p.Layout.NumStripes)
}

// ErrExhausted is returned when no slots are free.
var ErrExhausted = fmt.Errorf("pool: no free slots")

// ErrDoubleFree is returned by Free for a slot that is not allocated:
// pushing it onto the free list again would hand the same slot to two
// instances and corrupt the striping safety argument.
var ErrDoubleFree = fmt.Errorf("pool: slot is not allocated (double free)")

// Allocate takes a free slot, opens initialBytes of it read-write with
// the slot's stripe color, and returns its descriptor.
func (p *Pool) Allocate(initialBytes uint64) (Slot, error) {
	if len(p.free) == 0 {
		return Slot{}, ErrExhausted
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[i] = true
	p.Allocations++

	s := Slot{
		Index:    i,
		Addr:     p.SlotAddr(i),
		Pkey:     p.KeyForSlot(i),
		MaxBytes: p.Layout.MaxMemoryBytes,
	}
	if initialBytes > 0 {
		n := alignUp(initialBytes, OSPageSize)
		if n > p.Layout.MaxMemoryBytes {
			_ = p.Free(s)
			return Slot{}, fmt.Errorf("pool: initial size %d exceeds slot maximum %d", initialBytes, p.Layout.MaxMemoryBytes)
		}
		var err error
		if s.Pkey != 0 {
			err = p.AS.PkeyMprotect(s.Addr, n, mem.ProtRead|mem.ProtWrite, s.Pkey)
		} else {
			err = p.AS.Mprotect(s.Addr, n, mem.ProtRead|mem.ProtWrite)
		}
		if err != nil {
			_ = p.Free(s)
			return Slot{}, fmt.Errorf("pool: opening slot %d: %w", i, err)
		}
	}
	return s, nil
}

// Grow opens more of an allocated slot, up to its maximum.
func (p *Pool) Grow(s Slot, upTo uint64) error {
	if upTo > s.MaxBytes {
		return fmt.Errorf("pool: grow beyond slot maximum")
	}
	n := alignUp(upTo, OSPageSize)
	if s.Pkey != 0 {
		return p.AS.PkeyMprotect(s.Addr, n, mem.ProtRead|mem.ProtWrite, s.Pkey)
	}
	return p.AS.Mprotect(s.Addr, n, mem.ProtRead|mem.ProtWrite)
}

// Free recycles a slot: its contents are discarded with
// madvise(MADV_DONTNEED) — keeping both the mapping and the MPK color,
// so reuse needs no re-striping (the MPK advantage over MTE, §7).
// Freeing a slot that is not allocated returns ErrDoubleFree and leaves
// the free list untouched.
func (p *Pool) Free(s Slot) error {
	if s.Index < 0 || s.Index >= p.Layout.NumSlots || !p.inUse[s.Index] {
		return fmt.Errorf("%w: slot %d", ErrDoubleFree, s.Index)
	}
	delete(p.inUse, s.Index)
	p.Releases++
	// Discard any touched pages.
	_ = p.AS.MadviseDontneed(s.Addr, alignUp(s.MaxBytes, OSPageSize))
	p.free = append(p.free, s.Index)
	return nil
}

// CheckIsolation validates the striping safety property: same-colored
// slots are at least the guard requirement apart, and the final slot is
// protected by the post-slab guard. Small pools are checked
// exhaustively; large pools use the analytic form (slots are uniformly
// spaced, so the nearest same-color pair determines the bound).
func (p *Pool) CheckIsolation() error {
	l := p.Layout
	if l.NumSlots <= 4096 {
		addrs := make([]uint64, l.NumSlots)
		for i := range addrs {
			addrs[i] = p.SlotAddr(i)
		}
		if err := colorguard.CheckStriping(addrs, l.MaxMemoryBytes, l.GuardBytes, p.KeyForSlot); err != nil {
			return err
		}
	} else if l.NumStripes > 1 {
		gap := uint64(l.NumStripes)*l.SlotBytes - l.MaxMemoryBytes
		if gap < l.GuardBytes {
			return fmt.Errorf("pool: same-color gap %d below guard requirement %d", gap, l.GuardBytes)
		}
	}
	if l.PostSlabGuardBytes < l.GuardBytes {
		return fmt.Errorf("pool: post-slab guard %d below requirement %d", l.PostSlabGuardBytes, l.GuardBytes)
	}
	return nil
}
