package pool

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

const (
	mib = uint64(1) << 20
	gib = uint64(1) << 30
	tib = uint64(1) << 40
)

func TestComputeLayoutNoStriping(t *testing.T) {
	l, err := ComputeLayout(Config{
		NumSlots:       100,
		MaxMemoryBytes: 4 * gib,
		GuardBytes:     4 * gib,
		Keys:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes != 1 {
		t.Errorf("stripes = %d, want 1", l.NumStripes)
	}
	if l.SlotBytes != 8*gib {
		t.Errorf("slot = %d, want 8 GiB", l.SlotBytes)
	}
	if l.TotalSlabBytes != 100*8*gib+4*gib {
		t.Errorf("total = %d", l.TotalSlabBytes)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestComputeLayoutStriped(t *testing.T) {
	// The Figure 2 example: 1 GiB sandboxes, 7 GiB guard requirement,
	// 8 colors give 8x density.
	l, err := ComputeLayout(Config{
		NumSlots:       64,
		MaxMemoryBytes: 1 * gib,
		GuardBytes:     7 * gib,
		Keys:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes != 8 {
		t.Errorf("stripes = %d, want 8", l.NumStripes)
	}
	if l.SlotBytes != 1*gib {
		t.Errorf("slot = %d, want 1 GiB", l.SlotBytes)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestComputeLayoutStripeShortfall(t *testing.T) {
	// Only 4 keys for a 7 GiB guard over 1 GiB slots: stripes cover
	// 3 GiB, the remaining 4 GiB must come back as per-slot guard.
	l, err := ComputeLayout(Config{
		NumSlots:       16,
		MaxMemoryBytes: 1 * gib,
		GuardBytes:     7 * gib,
		Keys:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStripes != 4 {
		t.Errorf("stripes = %d, want 4", l.NumStripes)
	}
	if l.SlotBytes <= 1*gib {
		t.Errorf("slot = %d: expected guard padding beyond 1 GiB", l.SlotBytes)
	}
	// Same-color distance must still cover memory + guard.
	if l.BytesToNextStripeSlot() < 1*gib+7*gib {
		t.Errorf("same-color distance %d < 8 GiB", l.BytesToNextStripeSlot())
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestComputeLayoutRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero max memory", Config{NumSlots: 1, GuardBytes: gib}},
		{"unaligned max memory (invariant 8)", Config{NumSlots: 1, MaxMemoryBytes: 12345, GuardBytes: gib}},
		{"unaligned expected (invariant 7)", Config{NumSlots: 1, MaxMemoryBytes: 64 * 1024, ExpectedSlotBytes: 65 * 1000, GuardBytes: gib}},
		{"unaligned guard (invariant 9)", Config{NumSlots: 1, MaxMemoryBytes: 64 * 1024, GuardBytes: 100}},
		{"overflowing geometry", Config{NumSlots: 1 << 40, MaxMemoryBytes: 1 << 40, GuardBytes: 0}},
		{"no budget for auto slots", Config{NumSlots: 0, MaxMemoryBytes: 64 * 1024, GuardBytes: 0}},
		{"budget too small (invariant 10)", Config{NumSlots: 10, MaxMemoryBytes: gib, GuardBytes: gib, TotalBytes: gib}},
	}
	for _, c := range cases {
		if _, err := ComputeLayout(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLegacyLayoutSaturates(t *testing.T) {
	// The §5.2 bug: a geometry whose slot*n multiplication saturates
	// passes through the legacy computation with invariant 1 broken.
	cfg := Config{
		NumSlots:       1 << 40,
		MaxMemoryBytes: 1 << 40,
		GuardBytes:     0,
	}
	l, err := ComputeLayoutLegacy(cfg)
	if err != nil {
		t.Fatalf("legacy rejected (bug would be fixed): %v", err)
	}
	if verr := l.Validate(); verr == nil {
		t.Fatal("legacy layout passed validation; the saturating-add bug should break invariant 1")
	}
	// The fixed computation rejects the same input.
	if _, err := ComputeLayout(cfg); err == nil {
		t.Fatal("fixed computation accepted an overflowing geometry")
	}
}

func TestLegacyMissingPreconditions(t *testing.T) {
	// Missing precondition 8: unaligned max memory flows through.
	cfg := Config{NumSlots: 4, MaxMemoryBytes: 12345, GuardBytes: 0, ExpectedSlotBytes: 0}
	l, err := ComputeLayoutLegacy(cfg)
	if err != nil {
		t.Fatalf("legacy rejected: %v", err)
	}
	if verr := l.Validate(); verr == nil {
		t.Fatal("legacy layout with unaligned max memory should fail validation")
	}
	if _, err := ComputeLayout(cfg); err == nil {
		t.Fatal("fixed computation accepted unaligned max memory")
	}
}

func TestPoolAllocateFree(t *testing.T) {
	as := mem.NewAS(47)
	p, err := New(as, Config{
		NumSlots:       8,
		MaxMemoryBytes: 16 * mib,
		GuardBytes:     64 * mib,
		Keys:           15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIsolation(); err != nil {
		t.Fatal(err)
	}
	s1, err := p.Allocate(1 * mib)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Allocate(1 * mib)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Index == s2.Index {
		t.Fatal("duplicate slot")
	}
	if s1.Pkey == 0 || s2.Pkey == 0 {
		t.Fatal("striped pool should color slots")
	}
	// The slot is usable and colored.
	as.Store(s1.Addr+100, 8, 42)
	v, ok := as.VMAAt(s1.Addr)
	if !ok || v.Pkey != s1.Pkey {
		t.Fatalf("slot VMA = %+v, want pkey %d", v, s1.Pkey)
	}
	// Recycling zeroes contents but keeps the color.
	p.Free(s1)
	s3, err := p.Allocate(1 * mib)
	for s3.Index != s1.Index && err == nil {
		// Drain until we get the recycled slot back.
		s3, err = p.Allocate(1 * mib)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Load(s3.Addr+100, 8); got != 0 {
		t.Fatalf("recycled slot not zeroed: %d", got)
	}
	if v, _ := as.VMAAt(s3.Addr); v.Pkey != s1.Pkey {
		t.Fatalf("recycled slot lost its color: %d vs %d", v.Pkey, s1.Pkey)
	}
}

// TestPoolDoubleFree: freeing a slot twice must fail instead of
// pushing the index onto the free list again — a double-pushed slot
// would be handed to two instances at once, breaking the striping
// safety argument.
func TestPoolDoubleFree(t *testing.T) {
	as := mem.NewAS(40)
	p, err := New(as, Config{NumSlots: 2, MaxMemoryBytes: mib, GuardBytes: mib, Keys: 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Allocate(mib)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(s); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := p.Free(s); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second free: %v, want ErrDoubleFree", err)
	}
	if p.Available() != 2 {
		t.Fatalf("available after double free = %d, want 2 (free list must not grow)", p.Available())
	}
	// A never-allocated slot and an out-of-range index are rejected too.
	if err := p.Free(Slot{Index: 1}); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("free of unallocated slot: %v, want ErrDoubleFree", err)
	}
	if err := p.Free(Slot{Index: 99}); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("free of bogus index: %v, want ErrDoubleFree", err)
	}
	// Both slots remain individually allocatable.
	if _, err := p.Allocate(mib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(mib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(mib); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third allocate: %v, want ErrExhausted", err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	as := mem.NewAS(40)
	p, err := New(as, Config{NumSlots: 3, MaxMemoryBytes: mib, GuardBytes: mib, Keys: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Allocate(64 * 1024); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Allocate(64 * 1024); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want exhaustion", err)
	}
}

// TestScalingMicrobench reproduces §6.4.2's shape: with 408 MB slots in
// a fixed address budget, ColorGuard packs ≈15x more slots.
func TestScalingMicrobench(t *testing.T) {
	budget := 85 * tib // what a 47-bit process can realistically reserve
	maxMem := uint64(408) * mib
	guard := 6*gib - maxMem // Wasmtime's 4G+2G footprint minus the memory

	base := Config{
		NumSlots:       0,
		MaxMemoryBytes: maxMem,
		GuardBytes:     guard,
		TotalBytes:     budget,
	}
	noCG := base
	noCG.Keys = 0
	withCG := base
	withCG.Keys = 15

	l0, err := ComputeLayout(noCG)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ComputeLayout(withCG)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(l1.NumSlots) / float64(l0.NumSlots)
	t.Logf("slots without ColorGuard: %d; with: %d; ratio %.2fx", l0.NumSlots, l1.NumSlots, ratio)
	if l0.NumSlots < 13000 || l0.NumSlots > 16000 {
		t.Errorf("baseline slots = %d, want ≈14.5K", l0.NumSlots)
	}
	if ratio < 13 || ratio > 15.5 {
		t.Errorf("density ratio = %.2f, want ≈15x", ratio)
	}
	if err := l1.Validate(); err != nil {
		t.Errorf("striped layout invalid: %v", err)
	}
}

// TestVMACountPressure: striping multiplies VMAs, which is why the
// paper notes vm.max_map_count must be raised (§5.1).
func TestVMACountPressure(t *testing.T) {
	as := mem.NewAS(47)
	as.MaxMapCount = 40
	p, err := New(as, Config{NumSlots: 64, MaxMemoryBytes: mib, GuardBytes: 4 * mib, Keys: 15})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	allocated := 0
	for i := 0; i < 64; i++ {
		if _, err := p.Allocate(mib); err != nil {
			lastErr = err
			break
		}
		allocated++
	}
	if lastErr == nil {
		t.Fatal("expected to hit the map-count limit")
	}
	if !errors.Is(lastErr, mem.ErrMapCount) {
		t.Fatalf("err = %v, want map-count", lastErr)
	}
	t.Logf("allocated %d slots before hitting vm.max_map_count=40", allocated)
}
