package wasmbin

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// modulesEquivalent runs both modules and compares results.
func modulesEquivalent(t *testing.T, a, b *ir.Module, entry string, args ...uint64) {
	t.Helper()
	ia, err := ir.NewInterp(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := ir.NewInterp(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ia.StepLimit, ib.StepLimit = 200_000_000, 200_000_000
	ra, ea := ia.Invoke(entry, args...)
	rb, eb := ib.Invoke(entry, args...)
	if (ea == nil) != (eb == nil) {
		t.Fatalf("error mismatch: %v vs %v", ea, eb)
	}
	if ea == nil && len(ra) > 0 && ra[0] != rb[0] {
		t.Fatalf("results differ: %#x vs %#x", ra[0], rb[0])
	}
	for i := range ia.Mem {
		if ia.Mem[i] != ib.Mem[i] {
			t.Fatalf("memory[%d] differs after run", i)
		}
	}
}

func TestRoundTripKernels(t *testing.T) {
	for _, suite := range []workloads.Suite{workloads.Sightglass(), workloads.Firefox(), workloads.FaaS()} {
		for _, k := range suite.Kernels {
			k := k
			t.Run(suite.Name+"/"+k.Name, func(t *testing.T) {
				orig := k.Build(false)
				data := Encode(orig)
				dec, err := Decode(data)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if dec.Name != orig.Name || dec.MemMin != orig.MemMin || dec.MemMax != orig.MemMax {
					t.Fatalf("header mismatch: %q %d/%d vs %q %d/%d",
						dec.Name, dec.MemMin, dec.MemMax, orig.Name, orig.MemMin, orig.MemMax)
				}
				if len(dec.Funcs) != len(orig.Funcs) || len(dec.Exports) != len(orig.Exports) {
					t.Fatal("function/export counts differ")
				}
				modulesEquivalent(t, k.Build(false), dec, k.Entry, k.TestArgs...)
			})
		}
	}
}

func TestRoundTripCompiles(t *testing.T) {
	// A decoded module must compile and run identically on the machine.
	k, err := workloads.Sightglass().Find("heapsort")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(Encode(k.Build(false)))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := rt.CompileModule(dec, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Invoke(k.Entry, k.TestArgs...)
	if err != nil {
		t.Fatal(err)
	}
	interp, _ := ir.NewInterp(k.Build(false), nil)
	want, _ := interp.Invoke(k.Entry, k.TestArgs...)
	if got[0] != want[0] {
		t.Fatalf("decoded module computes %#x, want %#x", got[0], want[0])
	}
}

func TestRoundTripIndirectAndImports(t *testing.T) {
	m := ir.NewModule("indirect", 1, 1)
	h := m.AddImport("env.log", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	sq := m.NewFunc("sq", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	sq.Get(0).Get(0).I32Mul()
	sq.MustBuild()
	sqi, _ := m.FuncIndex("sq")
	m.Table = []uint32{sqi, ir.NullFunc}
	f := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	f.Get(0).I32(0).CallIndirect(ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	f.Get(0).Call(h).I32Add()
	f.MustBuild()
	m.MustExport("f")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	dec, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]ir.HostFunc{
		"env.log": func(mem []byte, args []uint64) (uint64, error) { return args[0] + 5, nil },
	}
	ia, _ := ir.NewInterp(m, hosts)
	ib, _ := ir.NewInterp(dec, hosts)
	ra, _ := ia.Invoke("f", 6)
	rb, err := ib.Invoke("f", 6)
	if err != nil || ra[0] != rb[0] {
		t.Fatalf("decoded indirect module: %v vs %v (%v)", rb, ra, err)
	}
	if len(dec.Table) != 2 || dec.Table[1] != ir.NullFunc {
		t.Fatalf("table mismatch: %v", dec.Table)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short input: %v", err)
	}
	if _, err := Decode([]byte("nope!")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad := append([]byte{}, Magic[:]...)
	bad = append(bad, 99)
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Corrupting the body must never yield an unvalidated module.
	k, _ := workloads.Sightglass().Find("fib2")
	good := Encode(k.Build(false))
	for i := 5; i < len(good); i += 7 {
		corrupt := append([]byte{}, good...)
		corrupt[i] ^= 0x55
		if m, err := Decode(corrupt); err == nil {
			// A decode that still succeeds must at least validate.
			if !m.Validated() {
				t.Fatalf("corruption at %d produced an unvalidated module", i)
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	k, _ := workloads.Sightglass().Find("gimli")
	a := Encode(k.Build(false))
	b := Encode(k.Build(false))
	if !bytes.Equal(a, b) {
		t.Error("encoding is not deterministic")
	}
}
