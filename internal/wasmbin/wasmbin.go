// Package wasmbin serializes IR modules to a compact binary format and
// back — the module-interchange substrate (engines persist and ship
// compiled-module inputs as bytes). The format follows Wasm's design:
// a magic/version header, LEB128 integers, and tagged sections, though
// it encodes this repository's IR rather than standard Wasm opcodes.
package wasmbin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/ir"
)

// Magic and version identify the format.
var Magic = [4]byte{0x00, 'i', 'r', 'm'}

// Version is the current format version.
const Version = 1

// Section ids.
const (
	secTypes   = 1
	secImports = 2
	secFuncs   = 3
	secGlobals = 4
	secMemory  = 5
	secTable   = 6
	secData    = 7
	secExports = 8
	secName    = 9
)

// Errors.
var (
	ErrBadMagic   = errors.New("wasmbin: bad magic")
	ErrBadVersion = errors.New("wasmbin: unsupported version")
	ErrTruncated  = errors.New("wasmbin: truncated input")
)

// --- LEB128 ---

func putUvarint(w *bytes.Buffer, v uint64) {
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], v)
	w.Write(tmp[:n])
}

func putVarint(w *bytes.Buffer, v int64) {
	var tmp [10]byte
	n := binary.PutVarint(tmp[:], v)
	w.Write(tmp[:n])
}

type reader struct {
	r *bytes.Reader
}

func (r reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, ErrTruncated
	}
	return v, nil
}

func (r reader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		return 0, ErrTruncated
	}
	return v, nil
}

func (r reader) bytes(n uint64) ([]byte, error) {
	if n > uint64(r.r.Len()) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r.r, out); err != nil {
		return nil, ErrTruncated
	}
	return out, nil
}

func (r reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	return string(b), err
}

func putStr(w *bytes.Buffer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func putSig(w *bytes.Buffer, t ir.FuncType) {
	putUvarint(w, uint64(len(t.Params)))
	for _, p := range t.Params {
		w.WriteByte(byte(p))
	}
	putUvarint(w, uint64(len(t.Results)))
	for _, p := range t.Results {
		w.WriteByte(byte(p))
	}
}

func (r reader) sig() (ir.FuncType, error) {
	var t ir.FuncType
	np, err := r.uvarint()
	if err != nil {
		return t, err
	}
	for i := uint64(0); i < np; i++ {
		b, err := r.r.ReadByte()
		if err != nil {
			return t, ErrTruncated
		}
		t.Params = append(t.Params, ir.ValType(b))
	}
	nr, err := r.uvarint()
	if err != nil {
		return t, err
	}
	for i := uint64(0); i < nr; i++ {
		b, err := r.r.ReadByte()
		if err != nil {
			return t, ErrTruncated
		}
		t.Results = append(t.Results, ir.ValType(b))
	}
	return t, nil
}

// Encode serializes a module.
func Encode(m *ir.Module) []byte {
	var out bytes.Buffer
	out.Write(Magic[:])
	out.WriteByte(Version)

	section := func(id byte, body func(*bytes.Buffer)) {
		var b bytes.Buffer
		body(&b)
		out.WriteByte(id)
		putUvarint(&out, uint64(b.Len()))
		out.Write(b.Bytes())
	}

	section(secName, func(b *bytes.Buffer) { putStr(b, m.Name) })
	section(secTypes, func(b *bytes.Buffer) {
		sigs := m.SigTable()
		putUvarint(b, uint64(len(sigs)))
		for _, s := range sigs {
			putSig(b, s)
		}
	})
	section(secImports, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Imports)))
		for _, imp := range m.Imports {
			putStr(b, imp.Name)
			putSig(b, imp.Type)
		}
	})
	section(secMemory, func(b *bytes.Buffer) {
		putUvarint(b, uint64(m.MemMin))
		putUvarint(b, uint64(m.MemMax))
	})
	section(secGlobals, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			b.WriteByte(byte(g.Type))
			if g.Mutable {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
			if g.Type == ir.F64 {
				putUvarint(b, math.Float64bits(g.InitF))
			} else {
				putVarint(b, g.Init)
			}
		}
	})
	section(secFuncs, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			putStr(b, f.Name)
			putSig(b, f.Type)
			putUvarint(b, uint64(len(f.Locals)))
			for _, l := range f.Locals {
				b.WriteByte(byte(l))
			}
			putUvarint(b, uint64(len(f.Body)))
			for _, in := range f.Body {
				encodeInst(b, in)
			}
		}
	})
	section(secTable, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Table)))
		for _, e := range m.Table {
			putUvarint(b, uint64(e))
		}
	})
	section(secData, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Data)))
		for _, d := range m.Data {
			putUvarint(b, uint64(d.Offset))
			putUvarint(b, uint64(len(d.Bytes)))
			b.Write(d.Bytes)
		}
	})
	section(secExports, func(b *bytes.Buffer) {
		putUvarint(b, uint64(len(m.Exports)))
		for name := range m.Exports {
			putStr(b, name)
		}
	})
	return out.Bytes()
}

// Instruction flag bits selecting which immediates follow the opcode.
const (
	fImm = 1 << iota
	fFimm
	fOffset
	fTargets
	fBlock
)

func encodeInst(b *bytes.Buffer, in ir.Inst) {
	var flags byte
	if in.Imm != 0 {
		flags |= fImm
	}
	if in.Fimm != 0 {
		flags |= fFimm
	}
	if in.Offset != 0 {
		flags |= fOffset
	}
	if len(in.Targets) > 0 {
		flags |= fTargets
	}
	if in.BlockType != 0 {
		flags |= fBlock
	}
	b.WriteByte(byte(in.Op))
	b.WriteByte(flags)
	if flags&fImm != 0 {
		putVarint(b, in.Imm)
	}
	if flags&fFimm != 0 {
		putUvarint(b, math.Float64bits(in.Fimm))
	}
	if flags&fOffset != 0 {
		putUvarint(b, uint64(in.Offset))
	}
	if flags&fTargets != 0 {
		putUvarint(b, uint64(len(in.Targets)))
		for _, t := range in.Targets {
			putUvarint(b, uint64(t))
		}
	}
	if flags&fBlock != 0 {
		putVarint(b, int64(in.BlockType))
	}
}

func (r reader) inst() (ir.Inst, error) {
	var in ir.Inst
	op, err := r.r.ReadByte()
	if err != nil {
		return in, ErrTruncated
	}
	in.Op = ir.Op(op)
	flags, err := r.r.ReadByte()
	if err != nil {
		return in, ErrTruncated
	}
	if flags&fImm != 0 {
		if in.Imm, err = r.varint(); err != nil {
			return in, err
		}
	}
	if flags&fFimm != 0 {
		bits, err := r.uvarint()
		if err != nil {
			return in, err
		}
		in.Fimm = math.Float64frombits(bits)
	}
	if flags&fOffset != 0 {
		off, err := r.uvarint()
		if err != nil {
			return in, err
		}
		in.Offset = uint32(off)
	}
	if flags&fTargets != 0 {
		n, err := r.uvarint()
		if err != nil {
			return in, err
		}
		if n > 1<<20 {
			return in, fmt.Errorf("wasmbin: unreasonable br_table size %d", n)
		}
		for i := uint64(0); i < n; i++ {
			t, err := r.uvarint()
			if err != nil {
				return in, err
			}
			in.Targets = append(in.Targets, uint32(t))
		}
	}
	if flags&fBlock != 0 {
		bt, err := r.varint()
		if err != nil {
			return in, err
		}
		in.BlockType = int8(bt)
	}
	return in, nil
}

// Decode parses a serialized module. The result is validated before
// being returned, so a decoded module is always safe to compile.
func Decode(data []byte) (*ir.Module, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if !bytes.Equal(data[:4], Magic[:]) {
		return nil, ErrBadMagic
	}
	if data[4] != Version {
		return nil, ErrBadVersion
	}
	m := ir.NewModule("", 0, 0)
	r := reader{r: bytes.NewReader(data[5:])}
	for r.r.Len() > 0 {
		id, err := r.r.ReadByte()
		if err != nil {
			return nil, ErrTruncated
		}
		size, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		body, err := r.bytes(size)
		if err != nil {
			return nil, err
		}
		br := reader{r: bytes.NewReader(body)}
		if err := decodeSection(m, id, br); err != nil {
			return nil, fmt.Errorf("wasmbin: section %d: %w", id, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("wasmbin: decoded module invalid: %w", err)
	}
	return m, nil
}

func decodeSection(m *ir.Module, id byte, r reader) error {
	switch id {
	case secName:
		name, err := r.str()
		if err != nil {
			return err
		}
		m.Name = name
	case secTypes:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			sig, err := r.sig()
			if err != nil {
				return err
			}
			// Interning in order reconstructs the same indices the
			// encoded call_indirect instructions refer to.
			m.InternType(sig)
		}
	case secImports:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			name, err := r.str()
			if err != nil {
				return err
			}
			sig, err := r.sig()
			if err != nil {
				return err
			}
			m.AddImport(name, sig)
		}
	case secMemory:
		mn, err := r.uvarint()
		if err != nil {
			return err
		}
		mx, err := r.uvarint()
		if err != nil {
			return err
		}
		m.MemMin, m.MemMax = uint32(mn), uint32(mx)
	case secGlobals:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			tb, err := r.r.ReadByte()
			if err != nil {
				return ErrTruncated
			}
			mb, err := r.r.ReadByte()
			if err != nil {
				return ErrTruncated
			}
			t := ir.ValType(tb)
			if t == ir.F64 {
				bits, err := r.uvarint()
				if err != nil {
					return err
				}
				m.Globals = append(m.Globals, ir.Global{Type: t, Mutable: mb == 1, InitF: math.Float64frombits(bits)})
			} else {
				v, err := r.varint()
				if err != nil {
					return err
				}
				m.Globals = append(m.Globals, ir.Global{Type: t, Mutable: mb == 1, Init: v})
			}
		}
	case secFuncs:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			name, err := r.str()
			if err != nil {
				return err
			}
			sig, err := r.sig()
			if err != nil {
				return err
			}
			nl, err := r.uvarint()
			if err != nil {
				return err
			}
			var locals []ir.ValType
			for j := uint64(0); j < nl; j++ {
				b, err := r.r.ReadByte()
				if err != nil {
					return ErrTruncated
				}
				locals = append(locals, ir.ValType(b))
			}
			fb := m.NewFunc(name, sig, locals...)
			nb, err := r.uvarint()
			if err != nil {
				return err
			}
			if nb > 1<<24 {
				return fmt.Errorf("unreasonable body size %d", nb)
			}
			for j := uint64(0); j < nb; j++ {
				in, err := r.inst()
				if err != nil {
					return err
				}
				fb.Emit(in)
			}
		}
	case secTable:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			m.Table = append(m.Table, uint32(v))
		}
	case secData:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			off, err := r.uvarint()
			if err != nil {
				return err
			}
			sz, err := r.uvarint()
			if err != nil {
				return err
			}
			b, err := r.bytes(sz)
			if err != nil {
				return err
			}
			m.AddData(uint32(off), b)
		}
	case secExports:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			name, err := r.str()
			if err != nil {
				return err
			}
			if err := m.Export(name); err != nil {
				return err
			}
		}
	default:
		// Unknown sections are skipped (forward compatibility).
	}
	return nil
}
