package faas

import (
	"reflect"
	"testing"

	"repro/internal/isolation"
)

// TestFlagTransLegacyPinned pins the cost model the deleted legacyTrans
// used to hardcode: the ColorGuard-flag configs must keep deriving the
// exact historical numbers from the isolation layer, switch terms
// always present (they are only charged when Processes > 1).
func TestFlagTransLegacyPinned(t *testing.T) {
	want := isolation.TransitionCost{
		EnterNs:  isolation.TransitionPKRUNs, // 51.52
		LeaveNs:  isolation.TransitionPKRUNs,
		SwitchNs: isolation.CtxSwitchNs,   // 3500
		RefillNs: isolation.CacheRefillNs, // 3200
		FlushTLB: true,
	}
	if got := DefaultConfig(testWorkload, 1, true).Trans; got != want {
		t.Fatalf("ColorGuard flag Trans = %+v, want %+v", got, want)
	}
	want.EnterNs, want.LeaveNs = isolation.TransitionNs, isolation.TransitionNs // 30.34
	if got := DefaultConfig(testWorkload, 8, false).Trans; got != want {
		t.Fatalf("plain flag Trans = %+v, want %+v", got, want)
	}
	// And the numbers themselves, against drift in the constants.
	if isolation.TransitionPKRUNs != 51.52 || isolation.TransitionNs != 30.34 {
		t.Fatalf("transition constants drifted: %v, %v", isolation.TransitionPKRUNs, isolation.TransitionNs)
	}
	if isolation.CtxSwitchNs != 3500.0 || isolation.CacheRefillNs != 3200.0 {
		t.Fatalf("switch constants drifted: %v, %v", isolation.CtxSwitchNs, isolation.CacheRefillNs)
	}
}

// TestSchemeConfigDefault: the empty scheme leaves KindConfig exactly
// what it always was — the invariant behind every pre-scheme golden.
func TestSchemeConfigDefault(t *testing.T) {
	for _, kind := range isolation.Kinds() {
		a := KindConfig(testWorkload, kind, 4)
		b := SchemeConfig(testWorkload, kind, "", 4)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: KindConfig != SchemeConfig(\"\"):\n%+v\n%+v", kind, a, b)
		}
		if a.Trans != isolation.TransitionFor(kind) {
			t.Errorf("%s: default Trans = %+v, want legacy TransitionFor", kind, a.Trans)
		}
	}
}

// TestSchemeRunThroughput: under a saturating load of small requests, a
// cheaper transition scheme strictly raises simulated throughput on
// every same-process backend, and the ordering of schemes by convention
// cost is the reverse ordering by throughput.
func TestSchemeRunThroughput(t *testing.T) {
	w := Workload{Name: "tiny", ComputeNs: 2_000, Pages: 8}
	run := func(s isolation.Scheme, kind isolation.Kind) float64 {
		cfg := SchemeConfig(w, kind, s, 1)
		cfg.ArrivalsPerEpoch = 600
		cfg.DurationNs = 0.2e9
		return Run(cfg).ThroughputRPS
	}
	for _, kind := range []isolation.Kind{isolation.GuardPage, isolation.ColorGuard, isolation.MTE} {
		zc := run(isolation.SchemeZeroCost, kind)
		def := run(isolation.SchemeDefault, kind)
		tr := run(isolation.SchemeTrampoline, kind)
		if !(zc > def && def > tr) {
			t.Errorf("%s: want zerocost > default > trampoline rps, got %.0f, %.0f, %.0f", kind, zc, def, tr)
		}
	}
}

// TestRunZeroTransDerivesScheme: a Config built by hand with a zero
// Trans derives the cost model from its Scheme and ColorGuard fields —
// the successor of the legacyTrans fallback inside Run.
func TestRunZeroTransDerivesScheme(t *testing.T) {
	base := DefaultConfig(testWorkload, 1, true)
	base.DurationNs = 0.1e9

	implicit := base
	implicit.Scheme = isolation.SchemeZeroCost
	implicit.Trans = isolation.TransitionCost{}

	explicit := base
	explicit.Scheme = isolation.SchemeZeroCost
	explicit.Trans = flagTrans(isolation.SchemeZeroCost, true)

	if got, want := Run(implicit), Run(explicit); !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-Trans run differs from explicit flagTrans run:\n%+v\n%+v", got, want)
	}
}
