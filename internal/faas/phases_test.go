package faas

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/telemetry"
)

// TestPhaseSumConservation pins the attribution invariant in virtual
// time: for every completed request, across every backend × scheme
// combination, the per-phase durations sum to the request's
// arrival-to-completion latency within float rounding.
func TestPhaseSumConservation(t *testing.T) {
	w := Workload{Name: "synthetic", ComputeNs: 5_000, Pages: 16}
	for _, kind := range isolation.Kinds() {
		for _, scheme := range isolation.Schemes() {
			kind, scheme := kind, scheme
			t.Run(string(kind)+"/"+string(scheme), func(t *testing.T) {
				procs := 1
				if kind == isolation.MultiProc {
					procs = 4
				}
				cfg := SchemeConfig(w, kind, scheme, procs)
				cfg.DurationNs = 0.2e9
				cfg.ColdStart = true
				cfg.InstanceBytes = 64 << 10
				cfg.RecordLatency = true
				cfg.RecordPhases = true
				res := Run(cfg)
				checkConservation(t, res)
			})
		}
	}
}

// TestPhaseSumConservationUnderFaults extends conservation to the
// degraded paths: retries, backoff windows, poisoned partial compute —
// every retried request's extra virtual time still lands in a phase.
func TestPhaseSumConservationUnderFaults(t *testing.T) {
	w := Workload{Name: "synthetic", ComputeNs: 20_000, Pages: 16}
	cfg := KindConfig(w, isolation.ColorGuard, 1)
	cfg.DurationNs = 0.3e9
	cfg.RecordLatency = true
	cfg.RecordPhases = true
	cfg.Faults = fault.Config{
		Seed:        99,
		Rates:       fault.RatesFor("colorguard", 0.05),
		MaxAttempts: 4,
		Retry:       fault.Backoff{BaseNs: 200_000, Factor: 2, MaxNs: 8e6},
	}
	res := Run(cfg)
	if res.Retried == 0 {
		t.Fatal("fault config produced no retries; conservation under retries untested")
	}
	checkConservation(t, res)
}

func checkConservation(t *testing.T, res Result) {
	t.Helper()
	if res.Completed == 0 {
		t.Fatal("no completed requests")
	}
	if len(res.PhaseBreakdown) != len(res.Latencies) {
		t.Fatalf("%d phase rows vs %d latencies", len(res.PhaseBreakdown), len(res.Latencies))
	}
	for i, phases := range res.PhaseBreakdown {
		var sum float64
		for _, d := range phases {
			sum += d
		}
		lat := res.Latencies[i]
		if tol := 1e-6 * math.Max(lat, 1); math.Abs(sum-lat) > tol {
			t.Fatalf("request %d: phase sum %.6f ns != latency %.6f ns (diff %g)",
				i, sum, lat, sum-lat)
		}
	}
	// The totals are the column sums of the breakdown.
	var totals [telemetry.NumPhases]float64
	for _, phases := range res.PhaseBreakdown {
		for p, d := range phases {
			totals[p] += d
		}
	}
	for p := range totals {
		if math.Abs(totals[p]-res.PhaseTotalsNs[p]) > 1e-3 {
			t.Fatalf("phase %s: totals %.3f != breakdown column sum %.3f",
				telemetry.Phase(p), res.PhaseTotalsNs[p], totals[p])
		}
	}
}

// TestPhaseRecordingInert proves the bookkeeping never perturbs the
// simulation: an identical config with RecordPhases on and off produces
// identical scheduling outcomes.
func TestPhaseRecordingInert(t *testing.T) {
	w := Workload{Name: "synthetic", ComputeNs: 8_000, Pages: 32}
	base := KindConfig(w, isolation.MultiProc, 6)
	base.DurationNs = 0.3e9
	base.RecordLatency = true

	off := Run(base)
	withPhases := base
	withPhases.RecordPhases = true
	on := Run(withPhases)

	// Strip the phase fields; everything else must match exactly.
	on.PhaseTotalsNs = [telemetry.NumPhases]float64{}
	on.PhaseBreakdown = nil
	if off.Completed != on.Completed || off.ThroughputRPS != on.ThroughputRPS ||
		off.CtxSwitches != on.CtxSwitches || off.DTLBMisses != on.DTLBMisses ||
		off.LatencyP99Ns != on.LatencyP99Ns {
		t.Fatalf("phase recording perturbed the run:\noff %+v\non  %+v", off, on)
	}
	// The process-wide spans switch arms the same paths.
	telemetry.SetSpansEnabled(true)
	defer telemetry.SetSpansEnabled(false)
	armed := Run(base)
	armed.PhaseTotalsNs = [telemetry.NumPhases]float64{}
	armed.PhaseBreakdown = nil
	if off.Completed != armed.Completed || off.ThroughputRPS != armed.ThroughputRPS ||
		off.LatencyP99Ns != armed.LatencyP99Ns {
		t.Fatalf("SpansEnabled perturbed the run:\noff   %+v\narmed %+v", off, armed)
	}
}
