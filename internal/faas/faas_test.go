package faas

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

var testWorkload = Workload{Name: "test", ComputeNs: 28_000, Pages: 48}

// TestFigure6Shape: the throughput gain of ColorGuard over n-process
// scaling grows with n, peaking near the paper's ≈29% at 15 processes.
func TestFigure6Shape(t *testing.T) {
	prev := -5.0
	for _, n := range []int{2, 4, 8, 12, 15} {
		gain, _, _ := GainVsMultiprocess(testWorkload, n)
		if gain < prev {
			t.Errorf("gain at n=%d (%.2f%%) below gain at smaller n (%.2f%%): not monotone", n, gain, prev)
		}
		prev = gain
	}
	gain15, _, _ := GainVsMultiprocess(testWorkload, 15)
	if gain15 < 20 || gain15 > 40 {
		t.Errorf("gain at 15 processes = %.2f%%, want ≈29%%", gain15)
	}
}

// TestFigure7aShape: context switches grow with process count while
// ColorGuard's stay at the constant background rate.
func TestFigure7aShape(t *testing.T) {
	_, cg4, mp4 := GainVsMultiprocess(testWorkload, 4)
	_, cg15, mp15 := GainVsMultiprocess(testWorkload, 15)
	if cg4.CtxSwitches != cg15.CtxSwitches {
		t.Errorf("ColorGuard switch count should be constant: %d vs %d", cg4.CtxSwitches, cg15.CtxSwitches)
	}
	if cg4.CtxSwitches == 0 {
		t.Error("ColorGuard should still see background context switches")
	}
	if mp15.CtxSwitches <= 2*mp4.CtxSwitches {
		t.Errorf("multiprocess switches should grow strongly with n: %d (4) vs %d (15)", mp4.CtxSwitches, mp15.CtxSwitches)
	}
	if mp4.CtxSwitches < 10*cg4.CtxSwitches {
		t.Errorf("multiprocess switches (%d) should dwarf ColorGuard's (%d)", mp4.CtxSwitches, cg4.CtxSwitches)
	}
}

// TestFigure7bShape: dTLB misses grow with process count faster than
// under ColorGuard.
func TestFigure7bShape(t *testing.T) {
	_, cg, mp4 := GainVsMultiprocess(testWorkload, 4)
	_, _, mp15 := GainVsMultiprocess(testWorkload, 15)
	if mp4.DTLBMisses <= cg.DTLBMisses {
		t.Errorf("4-process dTLB misses (%d) should exceed ColorGuard (%d)", mp4.DTLBMisses, cg.DTLBMisses)
	}
	if mp15.DTLBMisses <= mp4.DTLBMisses {
		t.Errorf("dTLB misses should grow with process count: %d vs %d", mp4.DTLBMisses, mp15.DTLBMisses)
	}
}

// TestTransitionAccounting: every completed request entered and left
// the sandbox at least once.
func TestTransitionAccounting(t *testing.T) {
	r := Run(DefaultConfig(testWorkload, 1, true))
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.Transitions < 2*uint64(r.Completed) {
		t.Errorf("transitions %d < 2x completed %d", r.Transitions, r.Completed)
	}
	if r.MaxConcurrent == 0 {
		t.Error("no concurrency recorded")
	}
}

// TestDeterminism: identical configs produce identical results.
func TestDeterminism(t *testing.T) {
	a := Run(DefaultConfig(testWorkload, 8, false))
	b := Run(DefaultConfig(testWorkload, 8, false))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic simulation: %+v vs %+v", a, b)
	}
}

// BenchmarkRun measures the cost of one full simulation run (the unit
// of work Fig6Throughput fans out 45 times and fig7 16 times).
func BenchmarkRun(b *testing.B) {
	cfg := DefaultConfig(testWorkload, 8, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(cfg)
		if r.Completed == 0 {
			b.Fatal("nothing completed")
		}
	}
}

// TestUnderLoad: when offered load is far below capacity, both
// strategies complete everything and the gain vanishes.
func TestUnderLoad(t *testing.T) {
	cfgCG := DefaultConfig(testWorkload, 1, true)
	cfgCG.ArrivalsPerEpoch = 4
	cfgMP := DefaultConfig(testWorkload, 15, false)
	cfgMP.ArrivalsPerEpoch = 4
	cg := Run(cfgCG)
	mp := Run(cfgMP)
	diff := (cg.ThroughputRPS/mp.ThroughputRPS - 1) * 100
	if diff > 3 || diff < -3 {
		t.Errorf("under light load the strategies should tie; got %.2f%% difference", diff)
	}
}

// TestRecordLatencyPercentiles: with RecordLatency set, Run keeps every
// completed request's latency and the reported percentiles are exactly
// stats.Percentile over that sample; without it, recording costs
// nothing and the rest of the Result is unchanged.
func TestRecordLatencyPercentiles(t *testing.T) {
	cfg := DefaultConfig(testWorkload, 4, false)
	cfg.RecordLatency = true
	r := Run(cfg)
	if len(r.Latencies) != r.Completed {
		t.Fatalf("recorded %d latencies for %d completions", len(r.Latencies), r.Completed)
	}
	for _, c := range []struct {
		q    float64
		got  float64
		name string
	}{
		{50, r.LatencyP50Ns, "p50"},
		{95, r.LatencyP95Ns, "p95"},
		{99, r.LatencyP99Ns, "p99"},
	} {
		if want := stats.Percentile(r.Latencies, c.q); c.got != want {
			t.Errorf("%s = %g, want stats.Percentile = %g", c.name, c.got, want)
		}
	}
	if !(r.LatencyP50Ns > 0 && r.LatencyP50Ns <= r.LatencyP95Ns && r.LatencyP95Ns <= r.LatencyP99Ns) {
		t.Errorf("percentiles not ordered: p50=%g p95=%g p99=%g",
			r.LatencyP50Ns, r.LatencyP95Ns, r.LatencyP99Ns)
	}
	// A request's latency is at least its IO wait; the p50 should be on
	// the order of the 5 ms Poisson IO delay, not nanoseconds.
	if r.LatencyP50Ns < 1e5 {
		t.Errorf("p50 %g ns implausibly small", r.LatencyP50Ns)
	}

	off := Run(DefaultConfig(testWorkload, 4, false))
	if off.Latencies != nil || off.LatencyP50Ns != 0 {
		t.Error("latencies recorded without RecordLatency")
	}
	// Recording must not perturb the simulation itself.
	r.Latencies, r.LatencyP50Ns, r.LatencyP95Ns, r.LatencyP99Ns = nil, 0, 0, 0
	if !reflect.DeepEqual(r, off) {
		t.Errorf("RecordLatency changed the simulation: %+v vs %+v", r, off)
	}
}
