// Package faas is the discrete-event simulation of §6.4.3: a FaaS edge
// platform handling IO-bound requests on a single pinned core, either
// as one ColorGuard process (user-level transitions between striped
// instances) or as N OS processes (the scaling strategy ColorGuard
// replaces). It reproduces the paper's simulation design — 1 ms epochs,
// Poisson(5 ms) IO delays, N incoming requests per epoch — and its
// measured effects: process scaling pays context-switch costs and
// dTLB/cache refills that grow with the process count (Figures 6, 7a,
// 7b).
//
// The simulator works in nanoseconds of virtual time. Per-request
// compute costs and page footprints come from measuring the actual
// workload kernels on the emulator (see internal/exp); this package is
// pure scheduling.
//
// Beyond the paper's warm steady state, the simulator models what
// production platforms actually experience under load: Config.Faults
// arms internal/fault's deterministic injector (cold-start failures,
// slot exhaustion, transition faults, poisoned instances) and the
// degradation policies the platform responds with — retry with
// exponential backoff, per-request deadlines, admission control with
// load shedding, and a circuit breaker, all in virtual nanoseconds.
// Result's shed/retried/failed/timed-out counters and Degradation
// curve report the outcome. The zero Faults value is provably inert:
// every golden table is byte-identical with the machinery disabled
// (exp.TestGoldenTablesWithFaultsOff).
package faas

import (
	"container/heap"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Workload describes one handler's per-request behaviour, measured
// externally.
type Workload struct {
	Name string

	// ComputeNs is the mean on-CPU time per request; actual draws
	// vary ±25% deterministically.
	ComputeNs float64

	// Pages is the number of distinct instance pages a request
	// touches while computing.
	Pages int
}

// Config parameterizes one simulation run.
type Config struct {
	Workload Workload

	// Processes is the number of OS processes; 1 with ColorGuard set
	// is the ColorGuard strategy.
	Processes  int
	ColorGuard bool

	// Trans is the per-boundary-crossing cost model the simulation
	// charges: enter+leave per request, switch+refill per process
	// switch. The zero value derives the model from the ColorGuard
	// flag and Scheme via the isolation layer (flagTrans);
	// KindConfig/SchemeConfig/BackendConfig fill it from an isolation
	// backend, so §6.4.3 and §7 share one cost path.
	Trans isolation.TransitionCost

	// Scheme is the transition calling-convention scheme behind Trans.
	// It only participates in cost derivation when Trans is zero (the
	// Config constructors resolve Trans eagerly); empty means the
	// process default.
	Scheme isolation.Scheme

	// Lifecycle is the per-slot init/recycle cost model, charged per
	// request when ColdStart is set.
	Lifecycle isolation.LifecycleCost

	// ColdStart charges Lifecycle init before each request's compute
	// and Lifecycle teardown at completion — the serverless pattern
	// where every request gets a fresh instance (§7's concern). Off by
	// default: the §6.4.3 figures model warm instances.
	ColdStart bool

	// InstanceBytes is the linear-memory size Lifecycle costs are
	// charged on (ColdStart only).
	InstanceBytes uint64

	// EpochNs is the preemption quantum (paper: 1 ms).
	EpochNs float64
	// IODelayMeanNs is the Poisson mean of the simulated IO wait
	// (paper: 5 ms).
	IODelayMeanNs float64
	// ArrivalsPerEpoch requests arrive each epoch.
	ArrivalsPerEpoch int
	// DurationNs is the simulated wall-clock length.
	DurationNs float64

	// RecordLatency keeps every completed request's arrival-to-completion
	// time in Result.Latencies and fills the LatencyP* percentiles. Off
	// by default so bulk experiment sweeps pay no per-request append.
	RecordLatency bool

	// RecordPhases attributes every completed request's virtual-time
	// latency to the fixed telemetry phases (IO wait, queue wait,
	// placement, transition in/out, execution) and fills
	// Result.PhaseTotalsNs and Result.PhaseBreakdown. The bookkeeping
	// never touches the simulation clock, so enabling it leaves every
	// figure byte-identical; it also arms process-wide whenever
	// telemetry.SpansEnabled() is on, which the attribution golden test
	// uses to prove the wired paths inert.
	RecordPhases bool

	// Faults arms deterministic fault injection and the degradation
	// policies (retry/backoff, deadline, admission control, circuit
	// breaker). The zero value is inert: no fault branch executes and
	// the run is byte-identical to one without the machinery.
	Faults fault.Config

	Seed uint64
}

// defaultFaults, when non-nil, is applied to any Run whose
// Config.Faults is the zero value. It exists so tests and tools can
// arm the fault machinery process-wide underneath experiments that
// build their own Configs (exp.TestGoldenTablesWithFaultsOff arms an
// all-zero-rate config this way to prove the wired paths are inert).
var defaultFaults atomic.Pointer[fault.Config]

// SetDefaultFaults installs (or, with nil, clears) a process-wide
// fault configuration used by runs whose own Config.Faults is zero.
func SetDefaultFaults(fc *fault.Config) {
	if fc == nil {
		defaultFaults.Store(nil)
		return
	}
	cp := *fc
	defaultFaults.Store(&cp)
}

// DefaultConfig returns the paper's simulation parameters around the
// given workload, with the flag-derived cost model: plain or PKRU
// transitions per the colorGuard flag under the process-default
// transition scheme, and the standard context-switch/cache-refill
// costs when processes contend.
func DefaultConfig(w Workload, processes int, colorGuard bool) Config {
	scheme := isolation.ResolveScheme("")
	return Config{
		Workload:         w,
		Processes:        processes,
		ColorGuard:       colorGuard,
		Scheme:           scheme,
		Trans:            flagTrans(scheme, colorGuard),
		EpochNs:          1e6,
		IODelayMeanNs:    5e6,
		ArrivalsPerEpoch: 40,
		DurationNs:       2e9,
		Seed:             7,
	}
}

// flagTrans derives the historical ColorGuard-flag cost model from the
// scheme-composed isolation layer: the scheme's convention cost under
// the backend kind the flag implies, with the process-switch terms
// always present (they are only ever charged when Processes > 1).
// It replaces the deleted legacyTrans, which duplicated the isolation
// constants; every number now originates in internal/isolation.
func flagTrans(scheme isolation.Scheme, colorGuard bool) isolation.TransitionCost {
	kind := isolation.GuardPage
	if colorGuard {
		kind = isolation.ColorGuard
	}
	t := isolation.TransitionForScheme(scheme, kind)
	t.SwitchNs, t.RefillNs, t.FlushTLB = isolation.CtxSwitchNs, isolation.CacheRefillNs, true
	return t
}

// KindConfig returns the paper's simulation parameters with the cost
// model of an isolation backend kind under the default scheme: the
// §6.4.3 comparison is KindConfig(w, isolation.ColorGuard, 1) against
// KindConfig(w, isolation.MultiProc, n).
func KindConfig(w Workload, kind isolation.Kind, processes int) Config {
	return SchemeConfig(w, kind, "", processes)
}

// SchemeConfig is KindConfig generalized over the transition-scheme
// axis: the same backend kind priced under an explicit calling
// convention (empty = process default).
func SchemeConfig(w Workload, kind isolation.Kind, scheme isolation.Scheme, processes int) Config {
	cfg := DefaultConfig(w, processes, kind == isolation.ColorGuard)
	cfg.Scheme = isolation.ResolveScheme(scheme)
	cfg.Trans = isolation.TransitionForScheme(cfg.Scheme, kind)
	cfg.Lifecycle = isolation.LifecycleFor(kind, false)
	return cfg
}

// BackendConfig returns the simulation parameters with the cost models
// of a live backend (including per-backend options such as the MTE
// tag-preserving madvise and the backend's transition scheme).
func BackendConfig(w Workload, b isolation.Backend, processes int) Config {
	cfg := DefaultConfig(w, processes, b.Kind() == isolation.ColorGuard)
	cfg.Scheme = b.Scheme()
	cfg.Trans = b.TransitionCost()
	cfg.Lifecycle = b.LifecycleCost()
	return cfg
}

// DegradationPoint is one sample of the degradation curve: the
// cumulative request outcomes as of TimeNs of virtual time. Sampled
// every Faults.CurveBucketNs when that is set.
type DegradationPoint struct {
	TimeNs    float64
	Completed int
	Shed      int
	Failed    int
	TimedOut  int
	Retried   int
}

// Result carries the measured outcomes.
type Result struct {
	Completed     int
	Offered       int // requests generated (admitted or shed)
	ThroughputRPS float64
	CtxSwitches   uint64 // process context switches
	Transitions   uint64 // sandbox transitions (user level)
	DTLBMisses    uint64
	MaxConcurrent int

	// Fault-injection and degradation outcomes. All stay zero unless
	// Config.Faults is armed.
	Shed           int    // rejected at admission (queue full or breaker open)
	Retried        int    // retry attempts scheduled after recoverable faults
	Failed         int    // abandoned after exhausting the attempt budget
	TimedOut       int    // dropped at the per-request deadline
	FaultsInjected uint64 // total injector hits across classes
	BreakerOpens   uint64 // circuit-breaker trips
	// Degradation is the cumulative-outcome curve sampled every
	// Faults.CurveBucketNs (nil when unset).
	Degradation []DegradationPoint

	// LifecycleNs is the virtual time spent in instance init/teardown
	// (ColdStart runs only).
	LifecycleNs float64

	// PhaseTotalsNs accumulates, per telemetry phase, the virtual time
	// completed requests spent there (RecordPhases runs only). Summed
	// over Completed requests; PhaseTotalsNs[p]/Completed is the mean.
	PhaseTotalsNs [telemetry.NumPhases]float64
	// PhaseBreakdown holds each completed request's per-phase virtual
	// nanoseconds, in completion order (RecordPhases runs only). Each
	// row sums to the request's arrival-to-completion latency within
	// rounding — the phase-sum conservation invariant.
	PhaseBreakdown [][telemetry.NumPhases]float64

	// Latencies holds each completed request's arrival-to-completion
	// virtual time in ns, in completion order (RecordLatency runs only).
	Latencies []float64
	// LatencyP50Ns/P95Ns/P99Ns are percentiles over Latencies
	// (RecordLatency runs only).
	LatencyP50Ns float64
	LatencyP95Ns float64
	LatencyP99Ns float64
}

// Scheduling constants. The transition and process-switch costs now
// come from the isolation layer's cost models (Config.Trans); what
// stays here is pure scheduler behavior.
const (
	// procSwitchNs is the direct kernel context-switch cost, charged
	// for the background switches every pinned process suffers
	// regardless of isolation mechanism (kernel threads and timers —
	// the constant baseline of Figure 7a).
	procSwitchNs = isolation.CtxSwitchNs
	tlbMissNs    = 10.0 // ≈22 cycles at 2.2 GHz
	runtimePages = 96   // engine/stack/libc pages a request touches
	// The OS scheduler divides its period among runnable processes
	// (CFS-style), floored at a minimum granularity — so the context
	// switch rate grows with the process count, the linear shape of
	// Figure 7a.
	schedPeriodNs  = 600_000.0
	minGranularity = 40_000.0
)

// task is one in-flight request.
type task struct {
	arrivedAt float64 // when the request arrived
	readyAt   float64 // when IO completes
	computeNs float64 // compute remaining
	fullNs    float64 // full compute draw (restored when an attempt's work is lost)
	proc      int
	base      uint64 // instance memory base (for TLB page addresses)
	started   bool   // cold-start init already charged
	attempts  int    // failed attempts so far (fault-armed runs)

	// Phase attribution (RecordPhases runs only). mark is the last
	// clock instant already attributed; the gap up to the next CPU
	// grant splits into IO (until readyAt) and queue (after).
	mark   float64
	phases [telemetry.NumPhases]float64
}

// ioHeap orders tasks by IO completion.
type ioHeap []*task

func (h ioHeap) Len() int           { return len(h) }
func (h ioHeap) Less(i, j int) bool { return h[i].readyAt < h[j].readyAt }
func (h ioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ioHeap) Push(x any)        { *h = append(*h, x.(*task)) }
func (h *ioHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil // release the reference so the task can be collected
	*h = old[:n-1]
	return t
}

// Run executes the simulation.
func Run(cfg Config) Result {
	if cfg.Processes < 1 {
		cfg.Processes = 1
	}
	rng := stats.NewRNG(cfg.Seed)
	// A Raptor-Lake-sized second-level dTLB.
	tlb := cache.NewTLB(2048, 8)

	// Telemetry is resolved once per run; when disabled the simulation
	// body pays nothing beyond the captured booleans.
	tele := telemetry.Enabled()
	tracing := telemetry.Trace.Enabled()
	var (
		qDepth  *telemetry.Gauge
		latHist *telemetry.Histogram
	)
	if tele {
		qDepth = telemetry.Default.Gauge("faas.queue_depth")
		latHist = telemetry.Default.Histogram("faas.request_latency_ns",
			telemetry.ExpBuckets(1e5, 2, 24))
	}

	trans := cfg.Trans
	if trans == (isolation.TransitionCost{}) {
		// Zero-value Config: derive the cost model from the ColorGuard
		// flag and the transition scheme.
		trans = flagTrans(isolation.ResolveScheme(cfg.Scheme), cfg.ColorGuard)
	}

	// Phase attribution is resolved once per run; when off, the
	// simulation body pays one predictable branch per bookkeeping site
	// and allocates nothing. It never advances the clock either way.
	phasesOn := cfg.RecordPhases || telemetry.SpansEnabled()

	// Fault machinery. A zero Faults config (and no process default)
	// leaves faultsOn false, and every fault branch below is skipped:
	// the run is byte-identical to the pre-fault simulator. An armed
	// config with zero rates and disabled policies runs the branches
	// but changes nothing — exp.TestGoldenTablesWithFaultsOff holds the
	// golden tables to that.
	fcfg := cfg.Faults
	if !fcfg.Armed() {
		if p := defaultFaults.Load(); p != nil {
			fcfg = *p
		}
	}
	faultsOn := fcfg.Armed()
	var (
		inj      *fault.Injector
		breaker  *fault.Breaker
		attempts = fcfg.MaxAttempts
	)
	if faultsOn {
		inj = fault.NewInjector(fcfg.Seed)
		breaker = fault.NewBreaker(fcfg.Breaker)
		if attempts < 1 {
			attempts = 1
		}
	}

	var (
		clock     float64
		res       Result
		io        ioHeap
		ready     = make([][]*task, cfg.Processes)
		lastProc  = -1
		nextEpoch float64
		nextBase  uint64
		inFlight  int
		transCost = trans.RoundTripNs()
		rrCursor  int
		nextCurve = fcfg.CurveBucketNs
	)

	// sample appends a degradation-curve point for every curve bucket
	// the clock has crossed.
	sample := func() {
		for nextCurve > 0 && clock >= nextCurve {
			res.Degradation = append(res.Degradation, DegradationPoint{
				TimeNs:    nextCurve,
				Completed: res.Completed,
				Shed:      res.Shed,
				Failed:    res.Failed,
				TimedOut:  res.TimedOut,
				Retried:   res.Retried,
			})
			nextCurve += fcfg.CurveBucketNs
		}
	}

	// fail drops or retries a request after a recoverable fault: the
	// attempt's progress is lost; within the attempt budget the request
	// re-enters the IO heap after the backoff delay, otherwise it is
	// abandoned. Every fault also feeds the circuit breaker.
	fail := func(t *task) {
		breaker.OnFailure(clock)
		t.attempts++
		t.computeNs = t.fullNs
		t.started = false
		if t.attempts >= attempts {
			res.Failed++
			inFlight--
			return
		}
		res.Retried++
		t.readyAt = clock + fcfg.Retry.DelayNs(t.attempts)
		if phasesOn {
			// The backoff window (now → readyAt) is off-CPU waiting;
			// the next CPU grant attributes it from this mark.
			t.mark = clock
		}
		heap.Push(&io, t)
	}

	// touch simulates the TLB traffic of one request's compute slice:
	// the process's runtime pages plus the instance's own pages.
	touch := func(t *task) float64 {
		var penalty float64
		procBase := uint64(t.proc+1) << 40
		for p := 0; p < runtimePages; p++ {
			if !tlb.Access(procBase + uint64(p)*4096) {
				penalty += tlbMissNs
				res.DTLBMisses++
			}
		}
		for p := 0; p < cfg.Workload.Pages; p++ {
			if !tlb.Access(t.base + uint64(p)*4096) {
				penalty += tlbMissNs
				res.DTLBMisses++
			}
		}
		return penalty
	}

	arrive := func() {
		for i := 0; i < cfg.ArrivalsPerEpoch; i++ {
			// The arrival draws happen before any shed decision, so a
			// degraded run sees exactly the offered load of a clean one:
			// faults and policies never perturb the arrival stream.
			jitter := 0.75 + 0.5*rng.Float64()
			t := &task{
				arrivedAt: clock,
				readyAt:   clock + float64(rng.Poisson(cfg.IODelayMeanNs/1e3))*1e3,
				computeNs: cfg.Workload.ComputeNs * jitter,
				proc:      (res.Completed + inFlight) % cfg.Processes,
				base:      uint64(1)<<45 + nextBase,
			}
			t.fullNs = t.computeNs
			if phasesOn {
				t.mark = clock
			}
			nextBase += 1 << 23 // instances 8 MiB apart
			res.Offered++
			if faultsOn {
				// Admission control: a full queue or an open breaker
				// sheds the request immediately (load shedding is the
				// platform's first degradation line — reject cheap,
				// before any isolation or compute cost is sunk).
				if (fcfg.QueueLimit > 0 && inFlight >= fcfg.QueueLimit) ||
					!breaker.Allow(clock) {
					res.Shed++
					continue
				}
			}
			inFlight++
			if inFlight > res.MaxConcurrent {
				res.MaxConcurrent = inFlight
			}
			heap.Push(&io, t)
		}
		if tele {
			qDepth.Set(int64(inFlight))
		}
	}

	drainIO := func() {
		for io.Len() > 0 && io[0].readyAt <= clock {
			t := heap.Pop(&io).(*task)
			ready[t.proc] = append(ready[t.proc], t)
		}
	}

	// pickProc returns the next process (round robin) with ready work,
	// or -1.
	pickProc := func() int {
		for k := 0; k < cfg.Processes; k++ {
			p := (rrCursor + k) % cfg.Processes
			if len(ready[p]) > 0 {
				rrCursor = (p + 1) % cfg.Processes
				return p
			}
		}
		return -1
	}

	// Even a single pinned process is switched out occasionally by
	// kernel threads and timers — the constant baseline rate Figure 7a
	// shows for ColorGuard.
	const backgroundSwitchNs = 4e6
	nextBackground := backgroundSwitchNs

	arrive()
	nextEpoch = cfg.EpochNs
	for clock < cfg.DurationNs {
		sample()
		for clock >= nextEpoch {
			if tracing {
				telemetry.Trace.Span("epoch", "faas", telemetry.PidVirtual, 0,
					nextEpoch-cfg.EpochNs, cfg.EpochNs)
			}
			arrive()
			nextEpoch += cfg.EpochNs
		}
		for clock >= nextBackground {
			clock += procSwitchNs
			tlb.Flush()
			res.CtxSwitches++
			if tracing {
				telemetry.Trace.Instant("ctx-switch (background)", "faas",
					telemetry.PidVirtual, 0, clock)
			}
			nextBackground += backgroundSwitchNs
		}
		drainIO()
		p := pickProc()
		if p < 0 {
			// Idle until the next IO completion or epoch.
			next := nextEpoch
			if io.Len() > 0 && io[0].readyAt < next {
				next = io[0].readyAt
			}
			clock = next
			continue
		}
		if p != lastProc {
			if lastProc >= 0 {
				// OS context switch: direct cost, cold caches, and — for
				// process-separated domains — a dTLB flush.
				clock += trans.SwitchNs + trans.RefillNs
				if trans.FlushTLB {
					tlb.Flush()
				}
				res.CtxSwitches++
				if tracing {
					telemetry.Trace.Instant("ctx-switch", "faas",
						telemetry.PidVirtual, p+1, clock)
				}
			}
			lastProc = p
		}
		// The process's event loop runs ready tasks until its queue
		// drains or the OS slice expires (single process: the epoch is
		// the only bound — no other process contends for the core).
		sliceEnd := clock + cfg.EpochNs
		if cfg.Processes > 1 {
			slice := schedPeriodNs / float64(cfg.Processes)
			if slice < minGranularity {
				slice = minGranularity
			}
			if clock+slice < sliceEnd {
				sliceEnd = clock + slice
			}
		}
		sliceStart := clock
		for len(ready[p]) > 0 && clock < sliceEnd && clock < cfg.DurationNs {
			t := ready[p][0]
			ready[p] = ready[p][1:]
			if phasesOn {
				// The gap since the last attributed instant splits at
				// readyAt: before it the task was off-CPU (IO or
				// backoff), after it ready but waiting for the core.
				if t.readyAt > t.mark {
					t.phases[telemetry.PhaseIO] += t.readyAt - t.mark
					t.phases[telemetry.PhaseQueue] += clock - t.readyAt
				} else {
					t.phases[telemetry.PhaseQueue] += clock - t.mark
				}
				t.mark = clock
			}
			if faultsOn {
				// Deadline: a request that reaches the CPU past its
				// timeout is dropped before any further cost is sunk.
				if fcfg.TimeoutNs > 0 && clock-t.arrivedAt >= fcfg.TimeoutNs {
					res.TimedOut++
					inFlight--
					breaker.OnFailure(clock)
					continue
				}
				// Slot exhaustion strikes at attempt start (a preempted
				// task, computeNs < fullNs, already holds its slot).
				if t.computeNs == t.fullNs &&
					inj.Hit(fault.SlotExhausted, fcfg.Rates.SlotExhausted) {
					fail(t)
					continue
				}
			}
			if cfg.ColdStart && !t.started {
				// Fresh instance per request: mmap+zero plus the
				// backend's coloring cost (re-coloring, since slots cycle
				// through discarding recycles under plain MTE).
				init := cfg.Lifecycle.InitNs(cfg.InstanceBytes, cfg.Lifecycle.RecolorOnReuse)
				clock += init
				res.LifecycleNs += init
				if phasesOn {
					t.phases[telemetry.PhasePlacement] += init
				}
				if faultsOn && inj.Hit(fault.ColdStartFail, fcfg.Rates.ColdStartFail) {
					// The init cost is spent but the instance is dead.
					fail(t)
					continue
				}
				t.started = true
			}
			clock += transCost
			res.Transitions += 2
			if phasesOn {
				t.phases[telemetry.PhaseTransitionIn] += trans.EnterNs
				t.phases[telemetry.PhaseTransitionOut] += trans.LeaveNs
			}
			if faultsOn && inj.Hit(fault.TransitionFault, fcfg.Rates.TransitionFault) {
				// The crossing's cost is paid (enter plus the unwinding
				// leave) but the attempt never reaches its compute.
				fail(t)
				continue
			}
			pen := touch(t)
			clock += pen
			if phasesOn {
				t.phases[telemetry.PhaseExec] += pen
			}
			if faultsOn && inj.Hit(fault.Poisoned, fcfg.Rates.Poisoned) {
				// The instance crashes partway into this attempt's
				// compute: the burned fraction is charged, the progress
				// is lost.
				burn := t.computeNs * inj.Frac()
				clock += burn
				if phasesOn {
					t.phases[telemetry.PhaseExec] += burn
				}
				fail(t)
				continue
			}
			run := t.computeNs
			if clock+run > sliceEnd {
				// Epoch preemption: requeue the remainder.
				run = sliceEnd - clock
				if run < 0 {
					run = 0
				}
				t.computeNs -= run
				clock += run
				if phasesOn {
					t.phases[telemetry.PhaseExec] += run
					t.mark = clock
				}
				ready[p] = append(ready[p], t)
				continue
			}
			clock += run
			res.Completed++
			inFlight--
			if phasesOn {
				t.phases[telemetry.PhaseExec] += run
				for ph, d := range t.phases {
					res.PhaseTotalsNs[ph] += d
				}
				res.PhaseBreakdown = append(res.PhaseBreakdown, t.phases)
			}
			if faultsOn {
				breaker.OnSuccess(clock)
			}
			lat := clock - t.arrivedAt
			if cfg.RecordLatency {
				res.Latencies = append(res.Latencies, lat)
			}
			if tele {
				latHist.Observe(lat)
				qDepth.Set(int64(inFlight))
			}
			if cfg.ColdStart {
				teardown := cfg.Lifecycle.TeardownNs(cfg.InstanceBytes)
				clock += teardown
				res.LifecycleNs += teardown
			}
		}
		if tracing && clock > sliceStart {
			telemetry.Trace.Span("slice", "faas", telemetry.PidVirtual, p+1,
				sliceStart, clock-sliceStart)
		}
	}
	res.ThroughputRPS = float64(res.Completed) / (cfg.DurationNs / 1e9)
	if len(res.Latencies) > 0 {
		res.LatencyP50Ns = stats.Percentile(res.Latencies, 50)
		res.LatencyP95Ns = stats.Percentile(res.Latencies, 95)
		res.LatencyP99Ns = stats.Percentile(res.Latencies, 99)
	}
	if faultsOn {
		sample() // flush curve buckets the final events crossed
		res.FaultsInjected = inj.Total()
		res.BreakerOpens = breaker.Opens()
	}
	if tele {
		tlb.PublishTo(telemetry.Default, "faas.dtlb")
		if faultsOn {
			// Publish only non-zero outcomes, so an armed-but-inert
			// configuration leaves the registry exactly as a clean run
			// would (telemetry inertness extends to the fault layer).
			reg := telemetry.Default
			for c := fault.Class(0); c < fault.NumClasses; c++ {
				if n := inj.Count(c); n > 0 {
					reg.Counter("faas.faults." + c.String()).Add(n)
				}
			}
			addIf := func(name string, n int) {
				if n > 0 {
					reg.Counter(name).Add(uint64(n))
				}
			}
			addIf("faas.shed", res.Shed)
			addIf("faas.retries", res.Retried)
			addIf("faas.failed", res.Failed)
			addIf("faas.timeouts", res.TimedOut)
			if res.BreakerOpens > 0 {
				reg.Counter("faas.breaker_opens").Add(res.BreakerOpens)
			}
		}
	}
	return res
}

// GainVsMultiprocess runs the Figure 6 comparison: ColorGuard in one
// process versus n-process scaling on the same load, returning the
// percentage throughput gain and both results. The two sides are the
// same simulation under two isolation-backend cost models.
func GainVsMultiprocess(w Workload, n int) (gainPct float64, cg, mp Result) {
	cg = Run(KindConfig(w, isolation.ColorGuard, 1))
	mp = Run(KindConfig(w, isolation.MultiProc, n))
	gainPct = (cg.ThroughputRPS/mp.ThroughputRPS - 1) * 100
	return gainPct, cg, mp
}
