package faas

import (
	"reflect"
	"testing"

	"repro/internal/isolation"
	"repro/internal/mem"
)

var diffWorkload = Workload{Name: "w", ComputeNs: 30_000, Pages: 48}

// TestBackendConfigMatchesLegacy: the backend-derived cost models must
// reproduce the legacy flag-derived simulation exactly — same Result
// struct, field for field — for every (kind, process-count) combination
// the legacy API could express. This is the §6.4.3 half of the
// refactor's acceptance bar: one cost path, zero drift.
func TestBackendConfigMatchesLegacy(t *testing.T) {
	cases := []struct {
		kind       isolation.Kind
		processes  int
		colorGuard bool
	}{
		{isolation.ColorGuard, 1, true},
		{isolation.GuardPage, 1, false},
		{isolation.MTE, 1, false},
		{isolation.MultiProc, 1, false},
		{isolation.MultiProc, 4, false},
		{isolation.MultiProc, 15, false},
	}
	for _, c := range cases {
		legacy := Run(DefaultConfig(diffWorkload, c.processes, c.colorGuard))
		backend := Run(KindConfig(diffWorkload, c.kind, c.processes))
		if !reflect.DeepEqual(legacy, backend) {
			t.Fatalf("%s/%d: backend result %+v != legacy result %+v", c.kind, c.processes, backend, legacy)
		}
	}
}

// TestZeroValueConfigDerivesLegacyCosts: a Config built by hand without
// Trans still runs under the historical cost model.
func TestZeroValueConfigDerivesLegacyCosts(t *testing.T) {
	base := DefaultConfig(diffWorkload, 3, true)
	bare := base
	bare.Trans = isolation.TransitionCost{}
	if !reflect.DeepEqual(Run(base), Run(bare)) {
		t.Fatal("zero-value Trans did not fall back to the flag-derived model")
	}
}

// TestBackendConfigFromLiveBackend: BackendConfig reads the cost models
// off a reserved backend, including per-backend options like the MTE
// tag-preserving madvise.
func TestBackendConfigFromLiveBackend(t *testing.T) {
	b, err := isolation.NewReserved(isolation.MTE, mem.NewAS(47), isolation.Config{
		Slots: 4, MaxMemoryBytes: 64 << 10, GuardBytes: 1 << 20,
		PreserveTagsOnMadvise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BackendConfig(diffWorkload, b, 1)
	if cfg.Trans != isolation.TransitionFor(isolation.MTE) {
		t.Fatalf("trans = %+v", cfg.Trans)
	}
	if cfg.Lifecycle.RecolorOnReuse || cfg.Lifecycle.DecolorNsPerByte != 0 {
		t.Fatalf("lifecycle = %+v, want tag-preserving (no decolor terms)", cfg.Lifecycle)
	}
	if cfg.ColorGuard {
		t.Fatal("MTE backend config should not set the ColorGuard flag")
	}
}

// TestColdStartOrdersBackends: with a fresh instance per request, the
// §7 lifecycle costs separate the mechanisms — MTE without the
// preserving madvise pays full re-tagging and clearing per request and
// must complete the fewest requests; the fix recovers most of the gap;
// warm instances beat both.
func TestColdStartOrdersBackends(t *testing.T) {
	mkCfg := func(preserve bool) Config {
		cfg := KindConfig(diffWorkload, isolation.MTE, 1)
		cfg.Lifecycle = isolation.LifecycleFor(isolation.MTE, preserve)
		cfg.ColdStart = true
		cfg.InstanceBytes = 64 << 10
		return cfg
	}
	warm := Run(KindConfig(diffWorkload, isolation.MTE, 1))
	coldFix := Run(mkCfg(true))
	cold := Run(mkCfg(false))
	if cold.LifecycleNs <= 0 || coldFix.LifecycleNs <= 0 {
		t.Fatalf("cold starts charged no lifecycle time: %v / %v", cold.LifecycleNs, coldFix.LifecycleNs)
	}
	if warm.LifecycleNs != 0 {
		t.Fatalf("warm run charged lifecycle time: %v", warm.LifecycleNs)
	}
	if !(cold.Completed < coldFix.Completed && coldFix.Completed < warm.Completed) {
		t.Fatalf("completed ordering: cold %d, cold+fix %d, warm %d — want strictly increasing",
			cold.Completed, coldFix.Completed, warm.Completed)
	}
	// Per-request lifecycle gap matches the §7 per-instance numbers:
	// cold pays init+teardown with tagging, the fix pays base costs.
	perReqCold := isolation.LifecycleFor(isolation.MTE, false)
	perReqFix := isolation.LifecycleFor(isolation.MTE, true)
	if perReqCold.InitNs(64<<10, true) <= perReqFix.InitNs(64<<10, false) {
		t.Fatal("cost model inversion")
	}
}
