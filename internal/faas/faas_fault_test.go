package faas

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/telemetry"
)

// faultyConfig is a representative armed configuration: every fault
// class active, retries with backoff, a deadline, a bounded queue, and
// a breaker.
func faultyConfig(rate float64) Config {
	cfg := DefaultConfig(testWorkload, 1, true)
	cfg.Faults = fault.Config{
		Seed:        101,
		Rates:       fault.RatesFor("colorguard", rate),
		MaxAttempts: 4,
		Retry:       fault.Backoff{BaseNs: 200_000, Factor: 2, MaxNs: 8e6},
		TimeoutNs:   80e6,
		QueueLimit:  4096,
		Breaker:     fault.BreakerConfig{FailureThreshold: 64, OpenNs: 4e6},
	}
	return cfg
}

// TestFaultsZeroConfigInert: the zero Faults value leaves the Result
// field-for-field identical to the pre-fault simulator — no fault
// branch may execute.
func TestFaultsZeroConfigInert(t *testing.T) {
	clean := Run(DefaultConfig(testWorkload, 8, false))
	if clean.Shed != 0 || clean.Failed != 0 || clean.Retried != 0 ||
		clean.TimedOut != 0 || clean.FaultsInjected != 0 || clean.Degradation != nil {
		t.Fatalf("clean run reported fault outcomes: %+v", clean)
	}
	if clean.Offered == 0 {
		t.Fatal("Offered not counted")
	}
}

// TestFaultsArmedButIdleInert: an armed configuration whose rates are
// zero and whose policies cannot trigger (no timeout, unbounded queue,
// disabled breaker) runs every fault branch and still produces a
// Result identical to the disarmed run. This is the per-Run version of
// exp.TestGoldenTablesWithFaultsOff.
func TestFaultsArmedButIdleInert(t *testing.T) {
	off := Run(DefaultConfig(testWorkload, 8, false))
	armed := DefaultConfig(testWorkload, 8, false)
	armed.Faults = fault.Config{
		Seed:        999,
		MaxAttempts: 5,
		Retry:       fault.Backoff{BaseNs: 1e6, Factor: 2},
	}
	on := Run(armed)
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("armed-but-idle fault config changed the run:\noff: %+v\non:  %+v", off, on)
	}
}

// TestSetDefaultFaultsApplies: the process-wide default arms runs whose
// own Faults field is zero, and an explicit per-run config wins.
func TestSetDefaultFaultsApplies(t *testing.T) {
	def := fault.Config{Seed: 5, Rates: fault.Rates{Poisoned: 0.05}, MaxAttempts: 3}
	SetDefaultFaults(&def)
	defer SetDefaultFaults(nil)

	viaDefault := Run(DefaultConfig(testWorkload, 1, true))
	if viaDefault.FaultsInjected == 0 {
		t.Error("process default did not arm the run")
	}

	explicit := DefaultConfig(testWorkload, 1, true)
	explicit.Faults = fault.Config{Seed: 5} // armed, but nothing can fire
	if r := Run(explicit); r.FaultsInjected != 0 {
		t.Errorf("explicit config overridden by default: %d faults", r.FaultsInjected)
	}
}

// TestFaultDeterminism: same seed and config twice gives identical
// Results — including the degradation curve — and identical telemetry
// snapshots, byte for byte.
func TestFaultDeterminism(t *testing.T) {
	cfg := faultyConfig(0.02)
	cfg.Faults.CurveBucketNs = 2e8

	run := func() (Result, []byte) {
		telemetry.Default.Reset()
		telemetry.SetEnabled(true)
		defer telemetry.SetEnabled(false)
		r := Run(cfg)
		return r, telemetry.Default.Snapshot().JSON()
	}
	r1, snap1 := run()
	r2, snap2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("fault-seeded runs diverged:\n%+v\n%+v", r1, r2)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("telemetry snapshots diverged:\n%s\n%s", snap1, snap2)
	}
	if r1.FaultsInjected == 0 || r1.Retried == 0 {
		t.Fatalf("expected injected faults and retries: %+v", r1)
	}

	// A different seed must change the fault sequence (otherwise the
	// determinism above would be vacuous).
	other := cfg
	other.Faults.Seed++
	if r3 := Run(other); r3.FaultsInjected == r1.FaultsInjected && reflect.DeepEqual(r1, r3) {
		t.Error("changing the fault seed changed nothing")
	}
}

// TestFaultConservation: every offered request is accounted for —
// completed, shed, failed, timed out, or still in flight at the end.
func TestFaultConservation(t *testing.T) {
	for _, rate := range []float64{0, 0.01, 0.1} {
		r := Run(faultyConfig(rate))
		acct := r.Completed + r.Shed + r.Failed + r.TimedOut
		if acct > r.Offered {
			t.Errorf("rate %g: outcomes %d exceed offered %d", rate, acct, r.Offered)
		}
		if leftover := r.Offered - acct; leftover > r.MaxConcurrent {
			t.Errorf("rate %g: %d requests unaccounted for (max concurrent %d)",
				rate, leftover, r.MaxConcurrent)
		}
	}
}

// TestAdmissionControlSheds: a tight queue bound sheds load and caps
// concurrency at the limit.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := DefaultConfig(testWorkload, 1, true)
	cfg.Faults = fault.Config{QueueLimit: 32}
	r := Run(cfg)
	if r.Shed == 0 {
		t.Fatal("overloaded bounded queue shed nothing")
	}
	if r.MaxConcurrent > 32 {
		t.Errorf("max concurrent %d exceeds the queue limit 32", r.MaxConcurrent)
	}
	if r.Completed == 0 {
		t.Error("shedding starved the platform completely")
	}
	unbounded := Run(DefaultConfig(testWorkload, 1, true))
	if r.MaxConcurrent >= unbounded.MaxConcurrent {
		t.Errorf("queue limit did not reduce concurrency: %d vs %d",
			r.MaxConcurrent, unbounded.MaxConcurrent)
	}
}

// TestTimeoutDropsStragglers: a deadline shorter than typical latency
// times requests out; a very long one does not.
func TestTimeoutDropsStragglers(t *testing.T) {
	tight := DefaultConfig(testWorkload, 1, true)
	tight.Faults = fault.Config{TimeoutNs: 3e6} // 3 ms vs the 5 ms IO mean
	r := Run(tight)
	if r.TimedOut == 0 {
		t.Fatal("3 ms deadline timed nothing out against a 5 ms IO delay")
	}
	loose := DefaultConfig(testWorkload, 1, true)
	loose.Faults = fault.Config{TimeoutNs: 1e12}
	if rl := Run(loose); rl.TimedOut != 0 {
		t.Errorf("effectively-infinite deadline timed out %d requests", rl.TimedOut)
	}
}

// TestRetriesRecoverThroughput: with faults striking, an attempt budget
// converts failures into retries — strictly fewer abandoned requests
// than the no-retry run, at the same fault sequence.
func TestRetriesRecoverThroughput(t *testing.T) {
	base := DefaultConfig(testWorkload, 1, true)
	base.Faults = fault.Config{
		Seed:        7,
		Rates:       fault.Rates{Poisoned: 0.05, TransitionFault: 0.02},
		MaxAttempts: 1,
	}
	noRetry := Run(base)

	withRetry := base
	withRetry.Faults.MaxAttempts = 5
	withRetry.Faults.Retry = fault.Backoff{BaseNs: 100_000, Factor: 2, MaxNs: 2e6}
	rr := Run(withRetry)

	if noRetry.Failed == 0 {
		t.Fatal("fault rates injected no failures in the no-retry run")
	}
	if rr.Retried == 0 {
		t.Fatal("retry budget scheduled no retries")
	}
	// Retried requests resolve later, so raw completions inside the
	// fixed window can dip slightly; the meaningful win is the failure
	// fraction among resolved requests.
	fracNo := float64(noRetry.Failed) / float64(noRetry.Failed+noRetry.Completed)
	fracRe := float64(rr.Failed) / float64(rr.Failed+rr.Completed)
	if fracRe >= fracNo {
		t.Errorf("retries did not reduce the failure fraction: %.4f with vs %.4f without", fracRe, fracNo)
	}
}

// TestBreakerTripsUnderFaultStorm: certain failure trips the breaker,
// which then sheds at admission.
func TestBreakerTripsUnderFaultStorm(t *testing.T) {
	cfg := DefaultConfig(testWorkload, 1, true)
	cfg.Faults = fault.Config{
		Seed:    3,
		Rates:   fault.Rates{Poisoned: 1.0}, // every attempt crashes
		Breaker: fault.BreakerConfig{FailureThreshold: 16, OpenNs: 10e6},
	}
	r := Run(cfg)
	if r.BreakerOpens == 0 {
		t.Fatal("breaker never tripped under a 100% crash rate")
	}
	if r.Shed == 0 {
		t.Error("open breaker shed nothing at admission")
	}
	if r.Completed != 0 {
		t.Errorf("%d requests completed despite a 100%% crash rate", r.Completed)
	}
}

// TestDegradationCurve: curve points land on bucket boundaries, carry
// monotonically non-decreasing cumulative counts, and end at the run's
// final totals.
func TestDegradationCurve(t *testing.T) {
	cfg := faultyConfig(0.05)
	cfg.Faults.CurveBucketNs = 1e8 // 100 ms buckets over a 2 s run
	r := Run(cfg)
	if len(r.Degradation) < 10 {
		t.Fatalf("only %d curve points over 20 buckets", len(r.Degradation))
	}
	var prev DegradationPoint
	for i, p := range r.Degradation {
		if p.TimeNs != float64(i+1)*1e8 {
			t.Fatalf("point %d stamped %g, want bucket boundary %g", i, p.TimeNs, float64(i+1)*1e8)
		}
		if p.Completed < prev.Completed || p.Shed < prev.Shed || p.Failed < prev.Failed ||
			p.TimedOut < prev.TimedOut || p.Retried < prev.Retried {
			t.Fatalf("cumulative counts decreased at point %d: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	last := r.Degradation[len(r.Degradation)-1]
	if last.Completed > r.Completed || last.Shed > r.Shed || last.Failed > r.Failed {
		t.Errorf("final curve point %+v exceeds run totals %+v", last, r)
	}
}

// TestColdStartFaultsChargeLifecycle: failed inits still burn
// lifecycle time, so cold-start failure storms show up as lost virtual
// time, not free retries.
func TestColdStartFaultsChargeLifecycle(t *testing.T) {
	mk := func(rate float64) Config {
		cfg := KindConfig(testWorkload, isolation.ColorGuard, 1)
		cfg.ColdStart = true
		cfg.InstanceBytes = 64 << 10
		cfg.Faults = fault.Config{
			Seed:        13,
			Rates:       fault.Rates{ColdStartFail: rate},
			MaxAttempts: 4,
		}
		return cfg
	}
	clean := Run(mk(0))
	faulty := Run(mk(0.3))
	if faulty.FaultsInjected == 0 {
		t.Fatal("no cold-start faults injected at rate 0.3")
	}
	perClean := clean.LifecycleNs / float64(clean.Completed)
	perFaulty := faulty.LifecycleNs / float64(faulty.Completed)
	if perFaulty <= perClean {
		t.Errorf("failed inits charged no extra lifecycle time: %.0f vs %.0f ns/request",
			perFaulty, perClean)
	}
}
