// Package stats provides the small statistical helpers the benchmark
// harness needs: geometric mean, arithmetic mean, standard deviation,
// median, and a deterministic pseudo-random source with the distributions
// used by the FaaS simulation (uniform, exponential, Poisson).
//
// Everything here is deterministic: the RNG is a seeded xoshiro-style
// generator so that simulations and tests are reproducible run to run.
package stats

import (
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. It panics if any value is
// non-positive, because a geometric mean is undefined there and callers
// (normalized runtimes) should never produce such values.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: Geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are given.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the q-th percentile (q in [0, 100]) of xs using
// linear interpolation between closest ranks, without modifying xs.
// An empty slice yields 0; q outside [0, 100] clamps to the extremes.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 100 {
		return cp[len(cp)-1]
	}
	pos := q / 100 * float64(len(cp)-1)
	i := int(pos)
	if i+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	frac := pos - float64(i)
	return cp[i] + frac*(cp[i+1]-cp[i])
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RNG is a deterministic splitmix64-seeded xoshiro256** generator.
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that
// nearby seeds still produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
//
// Draws are rejection-sampled: a raw 64-bit draw below 2^64 mod n would
// over-weight the low residues (the classic modulo bias), so such draws
// are discarded and redrawn. Accepted draws map to exactly the value the
// old biased reduction produced, and the rejection region is at most
// n/2^64 of the space, so existing seeded sequences are unchanged in
// practice while the distribution is exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	un := uint64(n)
	// 2^64 mod n, computed as (2^64 - n) mod n without overflow.
	thresh := -un % un
	for {
		v := r.Uint64()
		if v >= thresh {
			return int(v % un)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson-distributed value with the given mean,
// using Knuth's method for small means and a normal approximation for
// large ones. The FaaS simulation draws IO delays from this, following
// the paper's "delay drawn from a Poisson distribution at 5ms".
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		n := mean + math.Sqrt(mean)*r.normal()
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// normal returns a standard normal variate via Box-Muller.
func (r *RNG) normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
