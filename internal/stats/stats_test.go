package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean of ones = %g", g)
	}
	if g := Geomean([]float64{2, 8}); !almost(g, 4, 1e-12) {
		t.Errorf("geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("geomean of non-positive should panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMeanStddevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Stddev(xs); !almost(s, 2.1380899, 1e-6) {
		t.Errorf("stddev = %g", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("median = %g", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if Stddev([]float64{1}) != 0 || Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	// Median must not mutate its argument.
	xs2 := []float64{3, 1, 2}
	Median(xs2)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max = %g/%g", Min(xs), Max(xs))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nearby seeds too correlated: %d/100 equal", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if m := sum / n; !almost(m, 5, 0.1) {
		t.Errorf("Exp(5) sample mean = %g", m)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{3, 30, 500} { // Knuth and normal paths
		r := NewRNG(11)
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if !almost(got, mean, mean*0.05+0.2) {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
