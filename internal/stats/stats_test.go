package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean of ones = %g", g)
	}
	if g := Geomean([]float64{2, 8}); !almost(g, 4, 1e-12) {
		t.Errorf("geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("geomean of non-positive should panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMeanStddevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Stddev(xs); !almost(s, 2.1380899, 1e-6) {
		t.Errorf("stddev = %g", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("median = %g", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if Stddev([]float64{1}) != 0 || Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	// Median must not mutate its argument.
	xs2 := []float64{3, 1, 2}
	Median(xs2)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max = %g/%g", Min(xs), Max(xs))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nearby seeds too correlated: %d/100 equal", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if m := sum / n; !almost(m, 5, 0.1) {
		t.Errorf("Exp(5) sample mean = %g", m)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{3, 30, 500} { // Knuth and normal paths
		r := NewRNG(11)
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if !almost(got, mean, mean*0.05+0.2) {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

// TestIntnDistribution: Intn is range-correct, deterministic under a
// fixed seed, and — now that draws below 2^64 mod n are rejected —
// exactly uniform. The frequency check would not catch the old modulo
// bias (it is ~n/2^64), so the rejection threshold itself is checked
// white-box: accepted draws reduce to the same value the old code
// produced, which is what keeps the golden tables byte-identical.
func TestIntnDistribution(t *testing.T) {
	// Range and uniform frequencies.
	const n, draws = 10, 200000
	r := NewRNG(31)
	var counts [n]int
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) out of range: %d", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		// ~±4.5 sigma of Binomial(draws, 1/n): deterministic seed, so
		// this never flakes; it does catch gross non-uniformity.
		if math.Abs(float64(c)-want) > 600 {
			t.Errorf("Intn(%d): value %d drawn %d times, want ≈%.0f", n, v, c, want)
		}
	}

	// Determinism: same seed, same sequence.
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Intn(1<<20), b.Intn(1<<20); x != y {
			t.Fatalf("Intn diverged at draw %d: %d vs %d", i, x, y)
		}
	}

	// Accepted draws must reduce exactly as the pre-fix code did: mirror
	// the raw stream and apply the reduction by hand.
	raw := NewRNG(7)
	red := NewRNG(7)
	const m = 12345
	um := uint64(m)
	thresh := -um % um // 2^64 mod m
	for i := 0; i < 1000; i++ {
		got := red.Intn(m)
		v := raw.Uint64()
		for v < thresh {
			v = raw.Uint64()
		}
		if got != int(v%um) {
			t.Fatalf("draw %d: Intn(%d) = %d, want %d (accepted-draw reduction changed)", i, m, got, v%um)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5} // 1..10 shuffled
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {100, 10}, {-5, 1}, {150, 10},
		{50, 5.5},  // pos 4.5 between 5 and 6
		{25, 3.25}, // pos 2.25 between 3 and 4
		{95, 9.55}, // pos 8.55 between 9 and 10
		{99, 9.91},
	} {
		if got := Percentile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile should be that element")
	}
	// Percentile must not mutate its argument.
	if xs[0] != 10 || xs[9] != 5 {
		t.Error("Percentile mutated its input")
	}
}

// TestUniformMoments: Float64 under a fixed seed matches the first two
// moments of U[0,1) — mean 1/2 and variance 1/12 — and stays in range.
func TestUniformMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if !almost(mean, 0.5, 0.005) {
		t.Errorf("uniform mean = %g", mean)
	}
	if !almost(variance, 1.0/12, 0.005) {
		t.Errorf("uniform variance = %g, want %g", variance, 1.0/12)
	}
}

// TestExpMoments: an exponential with mean m has variance m².
func TestExpMoments(t *testing.T) {
	const mean = 5.0
	r := NewRNG(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("Exp returned negative %g", x)
		}
		sum += x
		sumSq += x * x
	}
	m := sum / n
	variance := sumSq/n - m*m
	if !almost(m, mean, mean*0.03) {
		t.Errorf("Exp(%g) sample mean = %g", mean, m)
	}
	if !almost(variance, mean*mean, mean*mean*0.08) {
		t.Errorf("Exp(%g) sample variance = %g, want %g", mean, variance, mean*mean)
	}
}

// TestPoissonVariance: a Poisson's variance equals its mean, on both
// the Knuth path (small means) and the normal-approximation path.
func TestPoissonVariance(t *testing.T) {
	for _, mean := range []float64{4, 200} {
		r := NewRNG(29)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(mean))
			sum += x
			sumSq += x * x
		}
		m := sum / n
		variance := sumSq/n - m*m
		if !almost(variance, mean, mean*0.08+0.3) {
			t.Errorf("Poisson(%g) sample variance = %g", mean, variance)
		}
	}
}
