package x86

// The encoder computes the machine-code byte length of every instruction,
// honoring the prefix rules that matter to Segue:
//
//   - a segment override (gs:/fs:) adds one 0x65/0x64 prefix byte;
//   - the 32-bit address-size override adds one 0x67 prefix byte;
//   - REX is required for 64-bit operation width or extended registers;
//   - ModRM/SIB/disp sizing follows the hardware rules (no-disp vs disp8
//     vs disp32, SIB forced by an index register or RSP/R12 base).
//
// Branches are laid out with a shrink pass so near jumps use rel8, which
// is what lets Segue's one-byte-longer memory ops still produce smaller
// functions overall (they eliminate whole instructions elsewhere).
//
// The byte image itself is a deterministic best-effort rendering: opcode
// bytes come from a table and immediates/displacements are encoded
// little-endian, but the image is not meant to run on real hardware —
// only its length is load-bearing for the cost model.

// opEnc describes the fixed encoding parts of an opcode.
type opEnc struct {
	opBytes  int  // opcode byte count (1, 2, or 3), excluding prefixes
	mandPfx  byte // mandatory prefix (0x66/0xF2/0xF3) or 0
	modRM    bool // has a ModRM byte in reg/mem forms
	fixedLen int  // when non-zero, total length ignores operands (pseudo/fixed ops)
}

var opEncTable = map[Op]opEnc{
	NOP:   {opBytes: 1},
	MOV:   {opBytes: 1, modRM: true},
	MOVZX: {opBytes: 2, modRM: true},
	MOVSX: {opBytes: 2, modRM: true},
	LEA:   {opBytes: 1, modRM: true},
	XCHG:  {opBytes: 1, modRM: true},
	CMOV:  {opBytes: 2, modRM: true},
	PUSH:  {opBytes: 1},
	POP:   {opBytes: 1},

	ADD: {opBytes: 1, modRM: true}, SUB: {opBytes: 1, modRM: true},
	IMUL: {opBytes: 2, modRM: true}, MULX: {opBytes: 3, modRM: true},
	AND: {opBytes: 1, modRM: true}, OR: {opBytes: 1, modRM: true},
	XOR: {opBytes: 1, modRM: true}, NOT: {opBytes: 1, modRM: true},
	NEG: {opBytes: 1, modRM: true}, SHL: {opBytes: 1, modRM: true},
	SHR: {opBytes: 1, modRM: true}, SAR: {opBytes: 1, modRM: true},
	ROL: {opBytes: 1, modRM: true}, ROR: {opBytes: 1, modRM: true},
	CMP: {opBytes: 1, modRM: true}, TEST: {opBytes: 1, modRM: true},
	SETCC: {opBytes: 2, modRM: true},
	CQO:   {fixedLen: 2},
	IDIV:  {opBytes: 1, modRM: true}, DIV: {opBytes: 1, modRM: true},
	POPCNT: {opBytes: 2, mandPfx: 0xF3, modRM: true},
	LZCNT:  {opBytes: 2, mandPfx: 0xF3, modRM: true},
	TZCNT:  {opBytes: 2, mandPfx: 0xF3, modRM: true},

	JMP:      {opBytes: 1},  // rel8: 2 bytes, rel32: 5 bytes
	JCC:      {opBytes: 2},  // rel8: 2 bytes, rel32: 6 bytes
	CALLFN:   {fixedLen: 5}, // call rel32
	CALLREG:  {opBytes: 1, modRM: true},
	CALLHOST: {fixedLen: 6}, // call [rip+disp32] through the vmctx
	RET:      {fixedLen: 1},
	UD2:      {fixedLen: 2},
	TRAPIF:   {fixedLen: 6},  // jcc rel32 to the function's trap stub
	EPOCH:    {fixedLen: 10}, // cmp [vmctx+epoch], reg ; jae deadline
	JTAB:     {fixedLen: 12}, // cmp+jae default; jmp [table+idx*8]

	WRGSBASE: {fixedLen: 5}, RDGSBASE: {fixedLen: 5}, WRFSBASE: {fixedLen: 5},
	WRPKRU: {fixedLen: 3}, RDPKRU: {fixedLen: 3},

	ENDBR:     {fixedLen: 4}, // f3 0f 1e fa
	BTBFLUSH:  {fixedLen: 8}, // wrmsr-based indirect-predictor barrier stub
	INTERLOCK: {fixedLen: 4}, // cmov/lfence-style masking of a loaded value

	MOVSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	MINSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	MAXSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	NEGSD:     {fixedLen: 8}, // xorpd xmm, [rip+const]
	ABSSD:     {fixedLen: 8}, // andpd xmm, [rip+const]
	ADDSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	SUBSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	MULSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	DIVSD:     {opBytes: 2, mandPfx: 0xF2, modRM: true},
	SQRTSD:    {opBytes: 2, mandPfx: 0xF2, modRM: true},
	UCOMISD:   {opBytes: 2, mandPfx: 0x66, modRM: true},
	CVTSI2SD:  {opBytes: 2, mandPfx: 0xF2, modRM: true},
	CVTTSD2SI: {opBytes: 2, mandPfx: 0xF2, modRM: true},
	MOVQXR:    {opBytes: 2, mandPfx: 0x66, modRM: true},
	MOVQRX:    {opBytes: 2, mandPfx: 0x66, modRM: true},

	MOVDQU: {opBytes: 2, mandPfx: 0xF3, modRM: true},
	PADDD:  {opBytes: 2, mandPfx: 0x66, modRM: true},
	PXOR:   {opBytes: 2, mandPfx: 0x66, modRM: true},
}

// memEncoding returns the extra byte counts contributed by a memory
// operand: segment/address-size prefixes, SIB presence, and displacement
// size.
func memEncoding(m Mem) (prefixes, sib, disp int) {
	if m.Seg == SegFS || m.Seg == SegGS {
		prefixes++
	}
	if m.Addr32 && m.Seg != SegImplicit {
		prefixes++
	}
	needSIB := m.HasIndex() || m.Base == RSP || m.Base == R12 || m.Base == RegNone
	if needSIB {
		sib = 1
	}
	switch {
	case m.Base == RegNone:
		disp = 4 // absolute/disp32 form
	case m.Disp == 0 && m.Base != RBP && m.Base != R13:
		disp = 0
	case m.Disp >= -128 && m.Disp <= 127:
		disp = 1
	default:
		disp = 4
	}
	return prefixes, sib, disp
}

// needsREX reports whether the instruction requires a REX prefix.
func needsREX(i Inst) bool {
	if i.W == W64 && i.Op != JMP && i.Op != JCC && i.Op != PUSH && i.Op != POP {
		// Most 64-bit-width ALU/data ops need REX.W. (Push/pop and
		// branches default to 64-bit operation in long mode.)
		switch i.Op {
		case MOVSD, ADDSD, SUBSD, MULSD, DIVSD, SQRTSD, UCOMISD, MOVDQU, PADDD, PXOR:
			// SSE ops encode width in the opcode, not REX.W.
		default:
			return true
		}
	}
	ext := func(o Operand) bool {
		switch o.Kind {
		case KindReg:
			return o.Reg >= R8 && o.Reg != RegNone
		case KindXmm:
			return o.Xmm >= 8
		case KindMem:
			return (o.Mem.Base != RegNone && o.Mem.Base >= R8) ||
				(o.Mem.HasIndex() && o.Mem.Index >= R8)
		}
		return false
	}
	if ext(i.Dst) || ext(i.Src) {
		return true
	}
	// 8-bit access to spl/bpl/sil/dil requires REX.
	if i.W == W8 {
		for _, o := range []Operand{i.Dst, i.Src} {
			if o.Kind == KindReg && o.Reg >= RSP && o.Reg <= RDI {
				return true
			}
		}
	}
	return false
}

// immSize returns the immediate byte count for an instruction with an
// immediate source operand.
func immSize(i Inst) int {
	if i.Src.Kind != KindImm {
		return 0
	}
	v := i.Src.Imm
	switch i.Op {
	case SHL, SHR, SAR, ROL, ROR:
		return 1
	case PUSH:
		if v >= -128 && v <= 127 {
			return 1
		}
		return 4
	case MOV:
		if i.Dst.Kind == KindReg {
			if i.W == W64 && (v < -1<<31 || v > 1<<31-1) {
				return 8 // movabs
			}
			return 4
		}
		return 4 // mov r/m, imm32
	default:
		// ALU group 1 has a sign-extended imm8 form.
		if v >= -128 && v <= 127 {
			return 1
		}
		return 4
	}
}

// Len returns the encoded byte length of a non-branch instruction.
// Branch lengths depend on layout; use EncodeFunc for functions that
// contain branches (it handles the rel8/rel32 shrink pass).
func Len(i Inst) int {
	enc, ok := opEncTable[i.Op]
	if !ok {
		return 1
	}
	if enc.fixedLen != 0 {
		return enc.fixedLen
	}
	switch i.Op {
	case JMP:
		return 5 // conservative rel32; EncodeFunc may shrink to 2
	case JCC:
		return 6
	}
	n := enc.opBytes
	if enc.mandPfx != 0 {
		n++
	}
	if needsREX(i) {
		n++
	}
	if i.W == W16 && enc.mandPfx == 0 {
		n++ // operand-size override
	}
	if enc.modRM {
		n++
	}
	for _, o := range []Operand{i.Dst, i.Src} {
		if o.Kind == KindMem {
			p, s, d := memEncoding(o.Mem)
			n += p + s + d
		}
	}
	n += immSize(i)
	return n
}

// EncodeFunc lays out a function body, returning the final byte image,
// the byte offset of each instruction, and the total length. Branch
// targets are instruction indices (Operand.Label); a shrink pass
// converts branches whose displacement fits in 8 bits to short form.
func EncodeFunc(insts []Inst) (image []byte, offsets []int, total int) {
	n := len(insts)
	sizes := make([]int, n)
	short := make([]bool, n)
	for k, in := range insts {
		sizes[k] = Len(in)
	}
	offsets = make([]int, n+1)
	layout := func() {
		off := 0
		for k := 0; k < n; k++ {
			offsets[k] = off
			off += sizes[k]
		}
		offsets[n] = off
	}
	layout()
	// Shrink pass: branch displacements only get smaller as other
	// branches shrink, so iterating to a fixpoint is monotone.
	for changed := true; changed; {
		changed = false
		for k, in := range insts {
			if (in.Op != JMP && in.Op != JCC) || short[k] {
				continue
			}
			tgt := in.Dst.Label
			if tgt < 0 || tgt > n {
				continue
			}
			disp := offsets[tgt] - (offsets[k] + 2) // short form is 2 bytes
			if disp >= -128 && disp <= 127 {
				short[k] = true
				sizes[k] = 2
				changed = true
			}
		}
		if changed {
			layout()
		}
	}
	total = offsets[n]
	image = make([]byte, 0, total)
	for k, in := range insts {
		image = appendInst(image, in, sizes[k], short[k], offsets, k)
	}
	return image, offsets, total
}

// appendInst appends a deterministic byte rendering of in, padded or
// trimmed to exactly size bytes.
func appendInst(buf []byte, in Inst, size int, short bool, offsets []int, idx int) []byte {
	start := len(buf)
	switch in.Op {
	case JMP:
		tgt := offsets[in.Dst.Label]
		if short {
			disp := tgt - (offsets[idx] + 2)
			buf = append(buf, 0xEB, byte(disp))
		} else {
			disp := int32(tgt - (offsets[idx] + 5))
			buf = append(buf, 0xE9)
			buf = appendLE32(buf, uint32(disp))
		}
	case JCC:
		tgt := offsets[in.Dst.Label]
		cc := byte(in.Cond)
		if short {
			disp := tgt - (offsets[idx] + 2)
			buf = append(buf, 0x70|cc, byte(disp))
		} else {
			disp := int32(tgt - (offsets[idx] + 6))
			buf = append(buf, 0x0F, 0x80|cc)
			buf = appendLE32(buf, uint32(disp))
		}
	default:
		enc := opEncTable[in.Op]
		for _, o := range []Operand{in.Dst, in.Src} {
			if o.Kind == KindMem {
				if o.Mem.Seg == SegGS {
					buf = append(buf, 0x65)
				} else if o.Mem.Seg == SegFS {
					buf = append(buf, 0x64)
				}
				if o.Mem.Addr32 {
					buf = append(buf, 0x67)
				}
			}
		}
		if enc.mandPfx != 0 {
			buf = append(buf, enc.mandPfx)
		}
		if needsREX(in) {
			buf = append(buf, 0x48)
		}
		buf = append(buf, byte(0x80|uint16(in.Op)&0x7F))
		// Pad the remainder (modrm/sib/disp/imm) deterministically.
		for len(buf)-start < size {
			buf = append(buf, byte(len(buf)-start))
		}
	}
	// Normalize to the declared size (defensive: rendering should match).
	for len(buf)-start < size {
		buf = append(buf, 0x90)
	}
	if len(buf)-start > size {
		buf = buf[:start+size]
	}
	return buf
}

func appendLE32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
