package x86

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		w    Width
		want string
	}{
		{RAX, W64, "rax"},
		{RAX, W32, "eax"},
		{RBX, W8, "bl"},
		{RSI, W8, "sil"},
		{R10, W32, "r10d"},
		{R15, W64, "r15"},
		{R8, W16, "r8w"},
	}
	for _, c := range cases {
		if got := c.r.Name(c.w); got != c.want {
			t.Errorf("Reg(%d).Name(%d) = %q, want %q", c.r, c.w, got, c.want)
		}
	}
}

func TestCondNegate(t *testing.T) {
	conds := []Cond{CondE, CondNE, CondL, CondLE, CondG, CondGE, CondB, CondBE, CondA, CondAE, CondS, CondNS}
	for _, c := range conds {
		if got := c.Negate().Negate(); got != c {
			t.Errorf("double negation of %v = %v", c, got)
		}
		if c.Negate() == c {
			t.Errorf("negation of %v is itself", c)
		}
	}
}

func TestMemString(t *testing.T) {
	m := Mem{Seg: SegGS, Base: RCX, Index: RDX, Scale: 4, Disp: 8, Addr32: true}
	if got, want := m.String(), "gs:[ecx + edx*4 + 0x8]"; got != want {
		t.Errorf("Mem.String() = %q, want %q", got, want)
	}
	m2 := Mem{Base: RAX, Index: RBX, Scale: 1}
	if got, want := m2.String(), "[rax + rbx]"; got != want {
		t.Errorf("Mem.String() = %q, want %q", got, want)
	}
}

func TestInstString(t *testing.T) {
	// The two Segue patterns from Figure 1c of the paper.
	i1 := Inst{Op: MOV, W: W64, Dst: R(R10), Src: M(Mem{Seg: SegGS, Base: RBX, Addr32: true})}
	if got, want := i1.String(), "mov r10, gs:[ebx]"; got != want {
		t.Errorf("pattern 1 = %q, want %q", got, want)
	}
	i2 := Inst{Op: MOV, W: W64, Dst: R(R11), Src: M(Mem{Seg: SegGS, Base: RCX, Index: RDX, Scale: 4, Disp: 8, Addr32: true})}
	if got, want := i2.String(), "mov r11, gs:[ecx + edx*4 + 0x8]"; got != want {
		t.Errorf("pattern 2 = %q, want %q", got, want)
	}
}

func TestSeguePrefixCost(t *testing.T) {
	// The classic SFI sequence: mov ebx, ebx ; mov r10, [rax + rbx].
	trunc := Inst{Op: MOV, W: W32, Dst: R(RBX), Src: R(RBX)}
	load := Inst{Op: MOV, W: W64, Dst: R(R10), Src: M(Mem{Base: RAX, Index: RBX, Scale: 1})}
	classic := Len(trunc) + Len(load)

	// Segue: a single gs:[ebx] load with segment + addr-size prefixes.
	segue := Len(Inst{Op: MOV, W: W64, Dst: R(R10), Src: M(Mem{Seg: SegGS, Base: RBX, Addr32: true})})

	if segue >= classic {
		t.Errorf("Segue encoding (%d bytes) should be smaller than classic two-instruction form (%d bytes)", segue, classic)
	}
	// But the single Segue instruction must be longer than the plain
	// load alone — the prefixes cost real bytes (the astar outlier).
	plain := Len(Inst{Op: MOV, W: W64, Dst: R(R10), Src: M(Mem{Base: RBX})})
	if segue <= plain {
		t.Errorf("Segue load (%d bytes) should be longer than unprefixed load (%d bytes)", segue, plain)
	}
}

func TestLenDispSizing(t *testing.T) {
	base := Inst{Op: MOV, W: W64, Dst: R(RAX), Src: M(Mem{Base: RCX})}
	d8 := base
	d8.Src.Mem.Disp = 16
	d32 := base
	d32.Src.Mem.Disp = 4096
	if Len(d8) != Len(base)+1 {
		t.Errorf("disp8 should add 1 byte: base=%d disp8=%d", Len(base), Len(d8))
	}
	if Len(d32) != Len(base)+4 {
		t.Errorf("disp32 should add 4 bytes: base=%d disp32=%d", Len(base), Len(d32))
	}
	// RBP base forces at least disp8.
	rbp := Inst{Op: MOV, W: W64, Dst: R(RAX), Src: M(Mem{Base: RBP})}
	if Len(rbp) != Len(base)+1 {
		t.Errorf("rbp base should force disp8: %d vs %d", Len(rbp), Len(base))
	}
}

func TestEncodeFuncOffsets(t *testing.T) {
	insts := []Inst{
		{Op: XOR, W: W64, Dst: R(RAX), Src: R(RAX)},  // 0
		{Op: ADD, W: W64, Dst: R(RAX), Src: Imm(1)},  // 1
		{Op: CMP, W: W64, Dst: R(RAX), Src: Imm(10)}, // 2
		{Op: JCC, Cond: CondL, Dst: Label(1)},        // 3: loop back
		{Op: RET},                                    // 4
	}
	image, offsets, total := EncodeFunc(insts)
	if len(image) != total {
		t.Fatalf("image length %d != total %d", len(image), total)
	}
	if offsets[len(insts)] != total {
		t.Fatalf("final offset %d != total %d", offsets[len(insts)], total)
	}
	for k := 0; k < len(insts); k++ {
		if offsets[k+1] <= offsets[k] {
			t.Errorf("instruction %d has non-positive size", k)
		}
	}
	// The backward branch is near, so it must have been shrunk to rel8.
	if sz := offsets[4] - offsets[3]; sz != 2 {
		t.Errorf("near backward jcc should be 2 bytes, got %d", sz)
	}
}

func TestEncodeFuncLongBranch(t *testing.T) {
	// A branch over >127 bytes of instructions must stay rel32.
	var insts []Inst
	insts = append(insts, Inst{Op: JMP, Dst: Label(60)})
	for i := 0; i < 59; i++ {
		// movabs: 10 bytes each.
		insts = append(insts, Inst{Op: MOV, W: W64, Dst: R(RAX), Src: Imm(1 << 40)})
	}
	insts = append(insts, Inst{Op: RET})
	_, offsets, _ := EncodeFunc(insts)
	if sz := offsets[1] - offsets[0]; sz != 5 {
		t.Errorf("far jmp should be 5 bytes, got %d", sz)
	}
}

func TestLenPositiveQuick(t *testing.T) {
	// Every representable non-branch instruction encodes to 1..16 bytes.
	f := func(op uint16, w uint8, dr, sr uint8, disp int32, seg uint8, addr32 bool) bool {
		o := Op(op % uint16(opCount))
		if o == JMP || o == JCC {
			return true
		}
		widths := []Width{W8, W16, W32, W64}
		in := Inst{
			Op:  o,
			W:   widths[w%4],
			Dst: R(Reg(dr % 16)),
			Src: M(Mem{Seg: Seg(seg % 3), Base: Reg(sr % 16), Disp: disp, Addr32: addr32}),
		}
		n := Len(in)
		return n >= 1 && n <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFuncImageMatchesOffsets(t *testing.T) {
	f := func(seed int64) bool {
		// Build a small random function and check image/offset agreement.
		n := int(seed%13) + 3
		if n < 3 {
			n = 3
		}
		var insts []Inst
		for i := 0; i < n; i++ {
			switch (seed + int64(i)) % 4 {
			case 0:
				insts = append(insts, Inst{Op: ADD, W: W64, Dst: R(RAX), Src: R(RCX)})
			case 1:
				insts = append(insts, Inst{Op: MOV, W: W32, Dst: R(RDX), Src: Imm(seed)})
			case 2:
				insts = append(insts, Inst{Op: JMP, Dst: Label((i + 1) % n)})
			default:
				insts = append(insts, Inst{Op: MOV, W: W64, Dst: R(R9), Src: M(Mem{Seg: SegGS, Base: RBX, Addr32: true})})
			}
		}
		insts = append(insts, Inst{Op: RET})
		image, offsets, total := EncodeFunc(insts)
		return len(image) == total && offsets[len(insts)] == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
