package x86

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode in the modeled subset.
type Op uint16

// Opcodes. The integer/control subset follows hardware semantics closely;
// a few pseudo-ops (CALLFN, CALLHOST, CALLREG, EPOCH, TRAPIF) stand for
// short fixed sequences that real engines emit as glue — each documents
// the byte length and cycle cost it stands for in the encoder/emulator.
const (
	NOP Op = iota

	// Data movement.
	MOV   // mov dst, src (reg/mem/imm); 32-bit form zero-extends
	MOVZX // mov with zero extension from a narrower source width
	MOVSX // mov with sign extension from a narrower source width
	LEA   // load effective address (address arithmetic, no memory access)
	XCHG  // exchange reg, reg
	CMOV  // conditional move (Cond field)
	PUSH  // push reg
	POP   // pop reg

	// Integer ALU.
	ADD
	SUB
	IMUL // two-operand signed multiply
	MULX // unsigned widening multiply helper (dst = low 64 of dst*src)
	AND
	OR
	XOR
	NOT
	NEG
	SHL
	SHR
	SAR
	ROL
	ROR
	CMP
	TEST
	SETCC  // set byte on condition
	CQO    // sign-extend rax into rdx:rax
	IDIV   // signed divide rdx:rax by operand
	DIV    // unsigned divide rdx:rax by operand
	POPCNT // population count
	LZCNT  // leading-zero count
	TZCNT  // trailing-zero count

	// Control flow.
	JMP      // unconditional jump to label
	JCC      // conditional jump to label (Cond field)
	CALLFN   // pseudo: direct call to compiled function (Imm = func index)
	CALLREG  // pseudo: indirect call, callee function index in register
	CALLHOST // pseudo: call into the host runtime (Imm = host func index)
	RET
	UD2    // undefined instruction: deterministic trap
	TRAPIF // pseudo: conditional trap (bounds-check failure path), Cond field
	EPOCH  // pseudo: epoch-interruption check at loop back-edges
	JTAB   // pseudo: bounds-checked jump table; Dst = index register,
	// Src.Label = default target, Targets = per-index targets

	// Segment and protection-key state.
	WRGSBASE // write GS base from register (FSGSBASE extension)
	RDGSBASE // read GS base into register
	WRFSBASE // write FS base from register
	WRPKRU   // write PKRU from eax (ecx=edx=0)
	RDPKRU   // read PKRU into eax

	// Scalar double-precision SSE.
	MOVSD // move f64 between xmm and memory/xmm
	ADDSD
	SUBSD
	MULSD
	DIVSD
	SQRTSD
	MINSD
	MAXSD
	NEGSD     // stands for xorpd with a RIP-relative sign-bit constant
	ABSSD     // stands for andpd with a RIP-relative mask constant
	UCOMISD   // f64 compare, sets flags
	CVTSI2SD  // int64 -> f64
	CVTTSD2SI // f64 -> int64 (truncating)
	MOVQXR    // move raw 64 bits xmm -> gpr
	MOVQRX    // move raw 64 bits gpr -> xmm

	// 128-bit vector moves and ALU (vectorizer output).
	MOVDQU // unaligned 128-bit load/store
	PADDD  // packed 32-bit add
	PXOR   // packed xor

	// Spectre-hardening pseudo-ops (Swivel-style). Architecturally inert:
	// they mutate no machine state, only model the fetch/execute cost of
	// the hardening sequences the sfi compiler would emit on real hardware.
	ENDBR     // CET endbranch landing pad at indirect-transfer targets
	BTBFLUSH  // pseudo: BTB flush before an indirect transfer (Swivel-SFI)
	INTERLOCK // pseudo: register interlock / speculative-load-hardening mask

	opCount
)

// OpCount is the number of defined opcodes, for dense per-op tables.
const OpCount = int(opCount)

var opNames = map[Op]string{
	NOP: "nop", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	XCHG: "xchg", CMOV: "cmov", PUSH: "push", POP: "pop",
	ADD: "add", SUB: "sub", IMUL: "imul", MULX: "mulx", AND: "and",
	OR: "or", XOR: "xor", NOT: "not", NEG: "neg", SHL: "shl", SHR: "shr",
	SAR: "sar", ROL: "rol", ROR: "ror", CMP: "cmp", TEST: "test",
	SETCC: "set", CQO: "cqo", IDIV: "idiv", DIV: "div",
	POPCNT: "popcnt", LZCNT: "lzcnt", TZCNT: "tzcnt",
	JMP: "jmp", JCC: "j", CALLFN: "call", CALLREG: "call", CALLHOST: "call.host",
	RET: "ret", UD2: "ud2", TRAPIF: "trapif", EPOCH: "epoch.check",
	WRGSBASE: "wrgsbase", RDGSBASE: "rdgsbase", WRFSBASE: "wrfsbase",
	WRPKRU: "wrpkru", RDPKRU: "rdpkru",
	JTAB:  "jmp.table",
	MOVSD: "movsd", ADDSD: "addsd", SUBSD: "subsd", MULSD: "mulsd",
	DIVSD: "divsd", SQRTSD: "sqrtsd", MINSD: "minsd", MAXSD: "maxsd",
	NEGSD: "negsd", ABSSD: "abssd", UCOMISD: "ucomisd",
	CVTSI2SD: "cvtsi2sd", CVTTSD2SI: "cvttsd2si",
	MOVQXR: "movq", MOVQRX: "movq",
	MOVDQU: "movdqu", PADDD: "paddd", PXOR: "pxor",
	ENDBR: "endbr64", BTBFLUSH: "btb.flush", INTERLOCK: "interlock",
}

// String returns the Intel-syntax mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// Mem is a memory operand: [seg: base + index*scale + disp]. When
// Addr32 is set the effective address is computed with 32-bit wrap-around
// (the 0x67 address-size override prefix), which Segue uses to get free
// truncation of untrusted offsets.
//
// The index register participates only when Scale is non-zero, so the
// zero value of Mem (base RAX, no index, no displacement) is a valid
// plain [rax] operand.
type Mem struct {
	Seg    Seg
	Base   Reg
	Index  Reg
	Scale  uint8 // 0 = no index; otherwise 1, 2, 4, or 8
	Disp   int32
	Addr32 bool
}

// HasIndex reports whether the operand uses an index register.
func (m Mem) HasIndex() bool { return m.Scale != 0 && m.Index != RegNone }

// String renders the operand in Intel syntax.
func (m Mem) String() string {
	var b strings.Builder
	if m.Seg == SegFS || m.Seg == SegGS {
		b.WriteString(m.Seg.String())
		b.WriteByte(':')
	}
	b.WriteByte('[')
	wrote := false
	name := func(r Reg) string {
		if m.Addr32 {
			return r.Name(W32)
		}
		return r.Name(W64)
	}
	if m.Base != RegNone {
		b.WriteString(name(m.Base))
		wrote = true
	}
	if m.HasIndex() {
		if wrote {
			b.WriteString(" + ")
		}
		b.WriteString(name(m.Index))
		if m.Scale > 1 {
			fmt.Fprintf(&b, "*%d", m.Scale)
		}
		wrote = true
	}
	if m.Disp != 0 || !wrote {
		if wrote {
			if m.Disp >= 0 {
				fmt.Fprintf(&b, " + %#x", m.Disp)
			} else {
				fmt.Fprintf(&b, " - %#x", -int64(m.Disp))
			}
		} else {
			fmt.Fprintf(&b, "%#x", m.Disp)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindXmm
	KindImm
	KindMem
	KindLabel
)

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Xmm   Xmm
	Imm   int64
	Mem   Mem
	Label int // branch target: instruction index within the function
}

// Convenience constructors.

// R returns a GPR operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// X returns an xmm operand.
func X(x Xmm) Operand { return Operand{Kind: KindXmm, Xmm: x} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// M returns a memory operand.
func M(m Mem) Operand { return Operand{Kind: KindMem, Mem: m} }

// Label returns a branch-target operand.
func Label(idx int) Operand { return Operand{Kind: KindLabel, Label: idx} }

// String renders the operand in Intel syntax, with w selecting register
// width naming.
func (o Operand) String() string { return o.string(W64) }

func (o Operand) string(w Width) string {
	switch o.Kind {
	case KindReg:
		return o.Reg.Name(w)
	case KindXmm:
		return o.Xmm.String()
	case KindImm:
		if o.Imm >= -1024 && o.Imm <= 1024 {
			return fmt.Sprintf("%d", o.Imm)
		}
		return fmt.Sprintf("%#x", uint64(o.Imm))
	case KindMem:
		return o.Mem.String()
	case KindLabel:
		return fmt.Sprintf("L%d", o.Label)
	default:
		return ""
	}
}

// Inst is one instruction. Dst/Src follow Intel operand order
// (destination first). W is the operation width; for MOVZX/MOVSX,
// SrcW is the narrower source width.
type Inst struct {
	Op   Op
	W    Width
	SrcW Width
	Cond Cond
	Dst  Operand
	Src  Operand

	// Targets holds JTAB per-index branch targets (instruction indices);
	// the default target travels in Dst.Label.
	Targets []int
}

// String renders the instruction in Intel syntax.
func (i Inst) String() string {
	mn := i.Op.String()
	switch i.Op {
	case JCC:
		mn = "j" + i.Cond.String()
	case SETCC:
		mn = "set" + i.Cond.String()
	case CMOV:
		mn = "cmov" + i.Cond.String()
	case TRAPIF:
		mn = "trapif." + i.Cond.String()
	}
	parts := []string{}
	if i.Dst.Kind != KindNone {
		parts = append(parts, i.Dst.string(i.W))
	}
	if i.Src.Kind != KindNone {
		w := i.W
		if i.Op == MOVZX || i.Op == MOVSX {
			w = i.SrcW
		}
		parts = append(parts, i.Src.string(w))
	}
	if len(parts) == 0 {
		return mn
	}
	return mn + " " + strings.Join(parts, ", ")
}

// HasMem reports whether the instruction touches memory through an
// explicit memory operand (PUSH/POP/CALL/RET stack traffic is implicit).
func (i Inst) HasMem() bool {
	return i.Dst.Kind == KindMem || i.Src.Kind == KindMem
}

// MemOperand returns the instruction's memory operand and whether the
// access is a store (memory operand is the destination). The second
// result is false for loads and for instructions without a memory
// operand (check HasMem first).
func (i Inst) MemOperand() (Mem, bool) {
	if i.Dst.Kind == KindMem {
		return i.Dst.Mem, true
	}
	if i.Src.Kind == KindMem {
		return i.Src.Mem, false
	}
	return Mem{}, false
}
