// Package x86 models the subset of the x86-64 ISA that the SFI compilers
// emit and the emulator executes. The model is structural — instructions
// are Go values, not bytes — but the encoder computes the exact byte
// length (and a best-effort byte image) of every instruction, including
// the segment-override and address-size-override prefixes that Segue
// relies on, so binary-size and fetch-bandwidth effects are measurable.
package x86

import "fmt"

// Reg names a general-purpose 64-bit register. The numeric values match
// the hardware encoding (RAX=0 … R15=15), which the encoder uses to
// decide when a REX prefix is required.
type Reg uint8

// General-purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// RegNone marks an absent base or index register in a memory operand.
	RegNone Reg = 0xFF
)

var regNames = [16]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var regNames32 = [16]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

var regNames16 = [16]string{
	"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
}

var regNames8 = [16]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
}

// String returns the 64-bit name of the register.
func (r Reg) String() string {
	if r == RegNone {
		return "<none>"
	}
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Name returns the register name at the given operand width in bytes.
func (r Reg) Name(width Width) string {
	if r == RegNone || int(r) >= 16 {
		return r.String()
	}
	switch width {
	case W8:
		return regNames8[r]
	case W16:
		return regNames16[r]
	case W32:
		return regNames32[r]
	default:
		return regNames[r]
	}
}

// Xmm names an SSE vector register (xmm0 … xmm15). The WAMR-style
// vectorizer pass emits 128-bit moves through these.
type Xmm uint8

// String returns the xmm register name.
func (x Xmm) String() string { return fmt.Sprintf("xmm%d", uint8(x)) }

// Seg selects a segment-override prefix for a memory operand. Segue
// stores the sandbox heap base in GS and addresses linear memory as
// gs:[...]; FS is reserved for thread-local storage as on Linux.
type Seg uint8

// Segment override values. SegImplicit is a modeling device for the
// native (non-sandboxed) baseline: the emulator adds the heap base (as
// a real native program's 64-bit pointers would already include it) but
// the encoder charges no prefix bytes and no truncation applies in
// spirit — native pointers need neither. See DESIGN.md.
const (
	SegNone Seg = iota
	SegFS
	SegGS
	SegImplicit
)

// String returns the segment prefix name ("fs"/"gs") or "".
func (s Seg) String() string {
	switch s {
	case SegFS:
		return "fs"
	case SegGS:
		return "gs"
	default:
		return ""
	}
}

// Width is an operand width in bytes.
type Width uint8

// Operand widths.
const (
	W8   Width = 1
	W16  Width = 2
	W32  Width = 4
	W64  Width = 8
	W128 Width = 16
)

// Cond is a condition code for Jcc/SETcc/CMOVcc, named by the signed
// and unsigned comparison it implements.
type Cond uint8

// Condition codes.
const (
	CondNone Cond = iota
	CondE         // equal / zero
	CondNE        // not equal / not zero
	CondL         // signed less
	CondLE        // signed less-or-equal
	CondG         // signed greater
	CondGE        // signed greater-or-equal
	CondB         // unsigned below
	CondBE        // unsigned below-or-equal
	CondA         // unsigned above
	CondAE        // unsigned above-or-equal
	CondS         // sign (negative)
	CondNS        // not sign
)

var condNames = [...]string{
	CondNone: "?", CondE: "e", CondNE: "ne", CondL: "l", CondLE: "le",
	CondG: "g", CondGE: "ge", CondB: "b", CondBE: "be", CondA: "a",
	CondAE: "ae", CondS: "s", CondNS: "ns",
}

// String returns the Intel-syntax condition suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "?"
}

// Negate returns the condition testing the opposite outcome.
func (c Cond) Negate() Cond {
	switch c {
	case CondE:
		return CondNE
	case CondNE:
		return CondE
	case CondL:
		return CondGE
	case CondLE:
		return CondG
	case CondG:
		return CondLE
	case CondGE:
		return CondL
	case CondB:
		return CondAE
	case CondBE:
		return CondA
	case CondA:
		return CondBE
	case CondAE:
		return CondB
	case CondS:
		return CondNS
	case CondNS:
		return CondS
	default:
		return CondNone
	}
}
