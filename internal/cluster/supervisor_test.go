package cluster

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestHelperWorker is not a test: when re-exec'd by the supervisor
// tests (CLUSTER_HELPER=1) it acts as a minimal faasd stand-in — bind
// an ephemeral port, write the address file, serve /healthz, exit on
// SIGTERM.
func TestHelperWorker(t *testing.T) {
	if os.Getenv("CLUSTER_HELPER") != "1" {
		t.Skip("helper process, not a test")
	}
	var addrFile string
	for i, a := range os.Args {
		if a == "-addrfile" && i+1 < len(os.Args) {
			addrFile = os.Args[i+1]
		}
	}
	if addrFile == "" {
		fmt.Fprintln(os.Stderr, "helper: no -addrfile")
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	go http.Serve(ln, mux)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	os.Exit(0)
}

// testSupervisor re-execs this test binary as the worker command.
func testSupervisor(t *testing.T, workers int, up func(string, string), down func(string)) *Supervisor {
	t.Helper()
	t.Setenv("CLUSTER_HELPER", "1")
	s, err := NewSupervisor(SupervisorConfig{
		Command: os.Args[0],
		// The "--" stops the test binary's flag parsing, so the -addr /
		// -addrfile pair the supervisor appends lands in flag.Args()
		// instead of tripping "flag provided but not defined".
		Args:         []string{"-test.run=TestHelperWorker", "--"},
		Workers:      workers,
		Dir:          t.TempDir(),
		StartTimeout: 15 * time.Second,
		OnUp:         up,
		OnDown:       down,
		Registry:     telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestSupervisorSpawn: both workers come up, announce reachable
// addresses, and shut down on Stop.
func TestSupervisorSpawn(t *testing.T) {
	var mu sync.Mutex
	ups := map[string]string{}
	s := testSupervisor(t, 2, func(name, url string) {
		mu.Lock()
		ups[name] = url
		mu.Unlock()
	}, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ups) != 2 {
		t.Fatalf("OnUp fired for %v, want 2 workers", ups)
	}
	for name, url := range ups {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatalf("%s at %s unreachable: %v", name, url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s /healthz: %d", name, resp.StatusCode)
		}
	}
}

// TestSupervisorRestart: a killed worker triggers OnDown, is restarted
// (OnUp again, possibly at a new port), and the restart is counted.
func TestSupervisorRestart(t *testing.T) {
	var mu sync.Mutex
	upCount := map[string]int{}
	downs := map[string]int{}
	s := testSupervisor(t, 1,
		func(name, url string) { mu.Lock(); upCount[name]++; mu.Unlock() },
		func(name string) { mu.Lock(); downs[name]++; mu.Unlock() })
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Kill("worker-0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		restarted := upCount["worker-0"] >= 2
		mu.Unlock()
		if restarted {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if upCount["worker-0"] < 2 {
		t.Fatalf("worker-0 not restarted: ups=%v downs=%v", upCount, downs)
	}
	if downs["worker-0"] < 1 {
		t.Fatalf("OnDown never fired: %v", downs)
	}
}

// TestWaitForAddrRejectsTornWrite: the addrfile handoff must not hand
// the router a partially written address. The writer exposes the torn
// intermediate states a non-atomic os.WriteFile could leave behind
// while waitForAddr polls, then publishes the complete address the way
// the fixed faasd does — temp file + rename. waitForAddr must skip
// every torn state and return only the complete host:port.
func TestWaitForAddrRejectsTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "worker.addr")
	const full = "127.0.0.1:43211"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, torn := range []string{"1", "127.0", "127.0.0.1", "127.0.0.1:"} {
			if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(40 * time.Millisecond)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(full+"\n"), 0o644); err != nil {
			t.Error(err)
			return
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Error(err)
		}
	}()

	got, err := waitForAddr(path, 15*time.Second)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatalf("waitForAddr returned %q (a torn read?), want %q", got, full)
	}
}

// TestWaitForAddrTimesOutOnGarbage: content that never parses as
// host:port is indistinguishable from an absent file — waitForAddr
// must keep polling and report a timeout, not return the garbage.
func TestWaitForAddrTimesOutOnGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "worker.addr")
	if err := os.WriteFile(path, []byte("not-an-address\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := waitForAddr(path, 150*time.Millisecond); err == nil {
		t.Fatalf("waitForAddr accepted garbage content %q", got)
	}
}
