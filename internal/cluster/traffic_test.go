package cluster

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// TestDiurnalShape: trough at t=0, peak half a period in, back to
// trough after a full period.
func TestDiurnalShape(t *testing.T) {
	d := DiurnalShape{Base: 10, Amplitude: 40, Period: time.Minute}
	if r := d.Rate(0); r < 9.9 || r > 10.1 {
		t.Errorf("trough rate = %g, want ~10", r)
	}
	if r := d.Rate(30 * time.Second); r < 49.9 || r > 50.1 {
		t.Errorf("peak rate = %g, want ~50", r)
	}
	if r := d.Rate(time.Minute); r < 9.9 || r > 10.1 {
		t.Errorf("full-period rate = %g, want ~10", r)
	}
}

// TestBurstyShape: the rate is Peak inside scheduled bursts and Base
// outside, and equal seeds replay the identical schedule.
func TestBurstyShape(t *testing.T) {
	mk := func() *BurstyShape {
		return NewBurstyShape(5, 200, 100*time.Millisecond, time.Second, 42)
	}
	a, b := mk(), mk()
	sawPeak, sawBase := false, false
	for ms := 0; ms < 10000; ms += 7 {
		el := time.Duration(ms) * time.Millisecond
		ra, rb := a.Rate(el), b.Rate(el)
		if ra != rb {
			t.Fatalf("same seed diverged at %v: %g vs %g", el, ra, rb)
		}
		switch ra {
		case 200:
			sawPeak = true
		case 5:
			sawBase = true
		default:
			t.Fatalf("rate %g is neither base nor peak", ra)
		}
	}
	if !sawPeak || !sawBase {
		t.Fatalf("10s of trace saw peak=%v base=%v; want both", sawPeak, sawBase)
	}
}

// TestArrivalGen: a constant 100 req/s shape produces mean inter-arrival
// gaps near 10ms (the draw is seeded, so the sample mean is a fixed
// number — the bounds just leave room if the RNG changes).
func TestArrivalGen(t *testing.T) {
	g := NewArrivalGen(ConstShape{RPS: 100}, 7)
	var total time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		total += g.Next()
	}
	mean := total / n
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Errorf("mean gap = %v, want ~10ms", mean)
	}
	if g.Elapsed() != total {
		t.Errorf("Elapsed %v != summed gaps %v", g.Elapsed(), total)
	}
}

// TestBoundedPareto: samples stay in bounds, the distribution is
// heavy-tailed (most mass near min, some far above), and equal seeds
// agree.
func TestBoundedPareto(t *testing.T) {
	r1, r2 := stats.NewRNG(11), stats.NewRNG(11)
	const n = 20000
	small, big := 0, 0
	for i := 0; i < n; i++ {
		v := BoundedPareto(r1, 1.2, 100, 100000)
		if v2 := BoundedPareto(r2, 1.2, 100, 100000); v2 != v {
			t.Fatalf("same seed diverged: %d vs %d", v, v2)
		}
		if v < 100 || v > 100000 {
			t.Fatalf("sample %d out of [100, 100000]", v)
		}
		if v < 300 {
			small++
		}
		if v > 10000 {
			big++
		}
	}
	if float64(small)/n < 0.5 {
		t.Errorf("only %d/%d samples near min; not head-heavy", small, n)
	}
	if big == 0 {
		t.Errorf("no samples above 100x min; tail missing")
	}
	// Degenerate configs collapse to min.
	if v := BoundedPareto(stats.NewRNG(1), 1.2, 50, 50); v != 50 {
		t.Errorf("min==max sample = %d", v)
	}
}

// TestMix: weighted picks are roughly proportional and parsing accepts
// both weighted and bare entries.
func TestMix(t *testing.T) {
	m, err := ParseMix("regex-filtering:8,hash-load-balance:1,image-transcode-tiles:1")
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[m.Pick(rng)]++
	}
	if f := float64(counts["regex-filtering"]) / n; f < 0.75 || f > 0.85 {
		t.Errorf("regex-filtering fraction = %g, want ~0.8", f)
	}
	if counts["hash-load-balance"] == 0 || counts["image-transcode-tiles"] == 0 {
		t.Errorf("light kernels never picked: %v", counts)
	}

	if m2, err := ParseMix("a,b"); err != nil || len(m2.Names()) != 2 {
		t.Errorf("bare mix parse: %v %v", m2, err)
	}
	for _, bad := range []string{"", "a:-1", "a:x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
