package cluster

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

// SupervisorConfig configures a worker-process supervisor.
type SupervisorConfig struct {
	// Command is the worker binary to spawn (a faasd build).
	Command string

	// Args are passed to every worker in addition to the -addr/-addrfile
	// pair the supervisor appends (e.g. "-slots", "8").
	Args []string

	// Workers is how many worker processes to run. 0 selects 2.
	Workers int

	// Dir is where address files (and worker logs) are written. Empty
	// selects the OS temp dir.
	Dir string

	// StartTimeout bounds how long one worker may take to write its
	// address file. 0 selects 10s.
	StartTimeout time.Duration

	// MaxRestarts bounds restarts per worker; a worker that dies more
	// often stays down (and OnDown fires a final time). 0 selects 3.
	MaxRestarts int

	// OnUp is called when a worker is listening (fresh start or
	// restart): name and base URL. Typically Router.AddWorker.
	OnUp func(name, baseURL string)

	// OnDown is called when a worker process exits. Typically
	// Router.SetHealthy(name, false).
	OnDown func(name string)

	// Registry receives the cluster.supervisor.* instruments. Nil
	// selects telemetry.Default.
	Registry *telemetry.Registry
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 10 * time.Second
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Supervisor spawns and supervises N faasd worker processes. Each is
// started with `-addr 127.0.0.1:0 -addrfile <dir>/<name>.addr`, so the
// OS picks the port and the supervisor learns it from the file — no
// port coordination, no races. A worker that exits is restarted (with
// a short backoff, up to MaxRestarts) and re-announced through OnUp;
// between death and restart the OnDown callback lets the router route
// around it.
type Supervisor struct {
	cfg SupervisorConfig

	mu      sync.Mutex
	procs   map[string]*workerProc
	stopped bool
	wg      sync.WaitGroup

	starts   *telemetry.Counter
	restarts *telemetry.Counter
	deaths   *telemetry.Counter
}

type workerProc struct {
	name string
	cmd  *exec.Cmd
}

// NewSupervisor validates cfg and returns an unstarted Supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if cfg.Command == "" {
		return nil, fmt.Errorf("supervisor: Command is required")
	}
	reg := cfg.Registry
	return &Supervisor{
		cfg:      cfg,
		procs:    make(map[string]*workerProc),
		starts:   reg.Counter("cluster.supervisor.starts"),
		restarts: reg.Counter("cluster.supervisor.restarts"),
		deaths:   reg.Counter("cluster.supervisor.deaths"),
	}, nil
}

// Start launches all workers and begins supervising them. It returns
// after every worker has announced its address (or errors on the first
// that cannot start).
func (s *Supervisor) Start() error {
	for i := 0; i < s.cfg.Workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		if err := s.launch(name, 0); err != nil {
			s.Stop()
			return err
		}
	}
	return nil
}

// launch starts one worker process, waits for its address file, fires
// OnUp, and begins watching for exit. generation counts restarts.
func (s *Supervisor) launch(name string, generation int) error {
	addrFile := filepath.Join(s.cfg.Dir, name+".addr")
	_ = os.Remove(addrFile)

	args := append(append([]string{}, s.cfg.Args...),
		"-addr", "127.0.0.1:0", "-addrfile", addrFile)
	cmd := exec.Command(s.cfg.Command, args...)
	logf, err := os.Create(filepath.Join(s.cfg.Dir, name+".log"))
	if err == nil {
		cmd.Stdout = logf
		cmd.Stderr = logf
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", name, err)
	}
	addr, err := waitForAddr(addrFile, s.cfg.StartTimeout)
	if err != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return fmt.Errorf("%s: %w", name, err)
	}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = cmd.Process.Signal(syscall.SIGTERM)
		return fmt.Errorf("supervisor stopped during %s start", name)
	}
	s.procs[name] = &workerProc{name: name, cmd: cmd}
	s.mu.Unlock()

	if generation == 0 {
		s.starts.Inc()
	} else {
		s.restarts.Inc()
	}
	if s.cfg.OnUp != nil {
		s.cfg.OnUp(name, "http://"+addr)
	}

	s.wg.Add(1)
	go s.watch(name, cmd, generation)
	return nil
}

// watch waits for one worker process to exit and decides whether to
// restart it.
func (s *Supervisor) watch(name string, cmd *exec.Cmd, generation int) {
	defer s.wg.Done()
	_ = cmd.Wait()

	s.mu.Lock()
	stopped := s.stopped
	delete(s.procs, name)
	s.mu.Unlock()
	if stopped {
		return
	}
	s.deaths.Inc()
	if s.cfg.OnDown != nil {
		s.cfg.OnDown(name)
	}
	if generation >= s.cfg.MaxRestarts {
		return
	}
	// Linear backoff: enough to stop a crash-looping worker from
	// spinning, short enough that the smoke test's restart completes
	// within its budget.
	time.Sleep(time.Duration(generation+1) * 200 * time.Millisecond)
	s.mu.Lock()
	stopped = s.stopped
	s.mu.Unlock()
	if stopped {
		return
	}
	_ = s.launch(name, generation+1)
}

// Kill force-kills one worker by name (the smoke test's failure
// injection); the watcher restarts it.
func (s *Supervisor) Kill(name string) error {
	s.mu.Lock()
	p, ok := s.procs[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("no running worker %q", name)
	}
	return p.cmd.Process.Kill()
}

// Stop terminates all workers (SIGTERM, which faasd drains on) and
// waits for the watchers to finish.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopped = true
	procs := make([]*workerProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	s.wg.Wait()
}

// waitForAddr polls for the address file the worker writes once its
// listener is bound. Content that does not parse as host:port is
// treated the same as an absent file and polling continues: even
// though the worker publishes via rename, the path may be written
// directly by older workers or by hand, and accepting a torn read
// here would hand the router a garbage address.
func waitForAddr(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			addr := string(data)
			for len(addr) > 0 && (addr[len(addr)-1] == '\n' || addr[len(addr)-1] == ' ') {
				addr = addr[:len(addr)-1]
			}
			if _, port, err := net.SplitHostPort(addr); err == nil && port != "" {
				return addr, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("no valid host:port address in %s after %s", path, timeout)
}
