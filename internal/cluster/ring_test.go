package cluster

import (
	"fmt"
	"testing"
)

// TestRingBalance: with the default virtual-node count, keys spread
// across members within a modest bound of the mean (consistent hashing
// is not perfectly uniform; vnodes keep the skew small). The hash is
// deterministic, so this is a fixed computation, not a flake risk.
func TestRingBalance(t *testing.T) {
	for _, members := range [][]string{
		{"a", "b", "c"},
		{"w0", "w1", "w2", "w3", "w4"},
		{"worker-1", "worker-2"},
	} {
		r := NewRing(0)
		for _, m := range members {
			r.Add(m)
		}
		counts := make(map[string]int)
		const keys = 30000
		for i := 0; i < keys; i++ {
			owner := r.Lookup(fmt.Sprintf("kernel-%d|backend|scheme", i), 1)
			if len(owner) != 1 {
				t.Fatalf("no owner for key %d", i)
			}
			counts[owner[0]]++
		}
		mean := float64(keys) / float64(len(members))
		for m, c := range counts {
			frac := float64(c) / mean
			if frac < 0.55 || frac > 1.55 {
				t.Errorf("members=%v: %s owns %d keys (%.2fx mean) — outside [0.55, 1.55]",
					members, m, c, frac)
			}
		}
		if len(counts) != len(members) {
			t.Errorf("members=%v: only %d members own keys", members, len(counts))
		}
	}
}

// TestRingMinimalMovement: adding a member moves keys only TO the new
// member (never between existing ones), and only about 1/(n+1) of
// them; removing it restores the original assignment exactly.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	const keys = 20000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("key-%d", i), 1)[0]
	}

	r.Add("d")
	moved := 0
	for i := range before {
		after := r.Lookup(fmt.Sprintf("key-%d", i), 1)[0]
		if after != before[i] {
			moved++
			if after != "d" {
				t.Fatalf("key-%d moved %s -> %s, not to the new member", i, before[i], after)
			}
		}
	}
	frac := float64(moved) / keys
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("join moved %.1f%% of keys; want roughly 1/4 (10%%..45%%)", 100*frac)
	}

	r.Remove("d")
	for i := range before {
		if after := r.Lookup(fmt.Sprintf("key-%d", i), 1)[0]; after != before[i] {
			t.Fatalf("key-%d did not return to %s after leave (got %s)", i, before[i], after)
		}
	}
}

// TestRingLookupOrder: Lookup returns distinct members, the first
// stable per key, and never more than the member count.
func TestRingLookupOrder(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	cands := r.Lookup("some-key", 5)
	if len(cands) != 3 {
		t.Fatalf("Lookup(5) over 3 members returned %d", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %s in %v", c, cands)
		}
		seen[c] = true
	}
	for i := 0; i < 100; i++ {
		if got := r.Lookup("some-key", 3)[0]; got != cands[0] {
			t.Fatalf("home flapped: %s then %s", cands[0], got)
		}
	}
	if got := r.Lookup("anything", 1); len(got) != 1 {
		t.Fatalf("Lookup(1) = %v", got)
	}
	empty := NewRing(0)
	if got := empty.Lookup("k", 2); got != nil {
		t.Fatalf("empty ring Lookup = %v", got)
	}
}
