package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
)

// Shape maps elapsed wall time to an instantaneous arrival rate in
// requests/second. Shapes are deterministic in elapsed time; all
// randomness lives in the ArrivalGen's seeded RNG, so a (shape, seed)
// pair replays the identical trace.
type Shape interface {
	Rate(elapsed time.Duration) float64
}

// ConstShape is a flat arrival rate (the plain open-loop baseline).
type ConstShape struct{ RPS float64 }

// Rate returns the constant rate.
func (c ConstShape) Rate(time.Duration) float64 { return c.RPS }

// DiurnalShape is a sinusoidal day/night cycle compressed to Period:
// rate(t) = Base + Amplitude * (1 + sin(2πt/Period - π/2)) / 2, so the
// trace starts at the trough (Base), peaks at Base+Amplitude half a
// period in, and returns.
type DiurnalShape struct {
	Base      float64       // trough rate, req/s
	Amplitude float64       // peak - trough, req/s
	Period    time.Duration // one full cycle
}

// Rate returns the diurnal rate at elapsed.
func (d DiurnalShape) Rate(elapsed time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := 2*math.Pi*float64(elapsed)/float64(d.Period) - math.Pi/2
	return d.Base + d.Amplitude*(1+math.Sin(phase))/2
}

// BurstyShape is a base rate punctuated by bursts: burst start gaps are
// exponential with mean Gap, each burst lasts Len at Peak req/s. The
// burst schedule is drawn once from the seed, so two generators with
// equal config and seed see identical bursts.
type BurstyShape struct {
	Base float64       // rate between bursts, req/s
	Peak float64       // rate inside a burst, req/s
	Len  time.Duration // burst duration
	Gap  time.Duration // mean gap between burst starts

	rng       *stats.RNG
	nextStart time.Duration
	burstEnd  time.Duration
}

// NewBurstyShape seeds a bursty shape's burst schedule.
func NewBurstyShape(base, peak float64, length, gap time.Duration, seed uint64) *BurstyShape {
	b := &BurstyShape{Base: base, Peak: peak, Len: length, Gap: gap,
		rng: stats.NewRNG(seed)}
	b.nextStart = time.Duration(b.rng.Exp(float64(gap)))
	return b
}

// Rate returns the bursty rate at elapsed. Callers must pass
// non-decreasing elapsed values (ArrivalGen does).
func (b *BurstyShape) Rate(elapsed time.Duration) float64 {
	for elapsed >= b.nextStart {
		b.burstEnd = b.nextStart + b.Len
		b.nextStart = b.burstEnd + time.Duration(b.rng.Exp(float64(b.Gap)))
	}
	if elapsed < b.burstEnd {
		return b.Peak
	}
	return b.Base
}

// ArrivalGen turns a Shape into a Poisson arrival sequence: each Next
// call returns the gap to the following arrival, drawn exponentially at
// the shape's current rate. Deterministic per (shape, seed).
type ArrivalGen struct {
	shape   Shape
	rng     *stats.RNG
	elapsed time.Duration
}

// NewArrivalGen returns a generator over shape seeded with seed.
func NewArrivalGen(shape Shape, seed uint64) *ArrivalGen {
	return &ArrivalGen{shape: shape, rng: stats.NewRNG(seed)}
}

// Next advances to the next arrival and returns the inter-arrival gap.
// A rate at or below zero is floored at 0.1 req/s so the trace always
// makes progress.
func (g *ArrivalGen) Next() time.Duration {
	rate := g.shape.Rate(g.elapsed)
	if rate < 0.1 {
		rate = 0.1
	}
	gap := time.Duration(g.rng.Exp(float64(time.Second) / rate))
	g.elapsed += gap
	return gap
}

// Elapsed returns the trace time of the last arrival.
func (g *ArrivalGen) Elapsed() time.Duration { return g.elapsed }

// BoundedPareto samples a heavy-tailed batch size in [min, max] with
// tail index alpha (smaller alpha = heavier tail). This is the
// inverse-CDF of a Pareto truncated at max — most requests are small,
// a few are far larger, the canonical FaaS invocation mix.
func BoundedPareto(rng *stats.RNG, alpha float64, min, max uint64) uint64 {
	if min >= max || alpha <= 0 {
		return min
	}
	l := float64(min)
	h := float64(max)
	u := rng.Float64()
	la := math.Pow(l, alpha)
	ha := math.Pow(h, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return uint64(x)
}

// Mix is a weighted kernel mix: Pick returns kernel names with
// probability proportional to their weights.
type Mix struct {
	names []string
	cum   []float64
	total float64
}

// NewMix builds a mix from name→weight. Weights must be positive.
func NewMix(weights map[string]float64) (*Mix, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty kernel mix")
	}
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names)
	m := &Mix{names: names}
	for _, n := range names {
		w := weights[n]
		if w <= 0 {
			return nil, fmt.Errorf("kernel %q has non-positive weight %g", n, w)
		}
		m.total += w
		m.cum = append(m.cum, m.total)
	}
	return m, nil
}

// ParseMix parses "name:weight,name:weight" (weight defaults to 1 when
// omitted) into a Mix.
func ParseMix(s string) (*Mix, error) {
	weights := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		w := 1.0
		if ok {
			v, err := strconv.ParseFloat(wstr, 64)
			if err != nil {
				return nil, fmt.Errorf("mix entry %q: bad weight: %v", part, err)
			}
			w = v
		}
		weights[name] += w
	}
	return NewMix(weights)
}

// Pick draws one kernel name.
func (m *Mix) Pick(rng *stats.RNG) string {
	u := rng.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.names) {
		i = len(m.names) - 1
	}
	return m.names[i]
}

// Names returns the mix's kernel names, sorted.
func (m *Mix) Names() []string { return append([]string(nil), m.names...) }
