package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// clusterWorker is one in-process faasd-equivalent: a real server.Server
// behind an httptest listener, with its own registry.
type clusterWorker struct {
	srv *server.Server
	ts  *httptest.Server
	reg *telemetry.Registry
}

func newClusterWorker(t *testing.T) *clusterWorker {
	t.Helper()
	reg := telemetry.NewRegistry()
	s, err := server.New(server.Config{
		Shards:          1,
		WorkersPerShard: 1,
		WarmPerWorker:   2,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return &clusterWorker{srv: s, ts: ts, reg: reg}
}

// newTestCluster wires n in-process workers to a fresh router.
func newTestCluster(t *testing.T, n int, cfg RouterConfig) (*Router, []*clusterWorker, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	r := NewRouter(cfg)
	workers := make([]*clusterWorker, n)
	for i := range workers {
		workers[i] = newClusterWorker(t)
		r.AddWorker(names(n)[i], workers[i].ts.URL)
	}
	front := httptest.NewServer(r.Handler())
	t.Cleanup(front.Close)
	return r, workers, front
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "w" + string(rune('0'+i))
	}
	return out
}

func getBody(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	body := map[string]any{}
	_ = json.Unmarshal(data, &body)
	return resp.StatusCode, resp.Header, body
}

// TestRouterAffinity: repeated requests for one (kernel, backend,
// scheme) all land on the same worker, and after the first request they
// hit that worker's keep-warm pool.
func TestRouterAffinity(t *testing.T) {
	_, workers, front := newTestCluster(t, 3, RouterConfig{})
	url := front.URL + "/invoke/hash-load-balance?backend=colorguard"

	var served string
	for i := 0; i < 6; i++ {
		st, hdr, body := getBody(t, url)
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d body %v", i, st, body)
		}
		if hdr.Get("X-Trace-Id") == "" {
			t.Fatalf("request %d: no X-Trace-Id propagated", i)
		}
		by := hdr.Get("X-Served-By")
		if served == "" {
			served = by
		} else if by != served {
			t.Fatalf("affinity broke: request %d went to %s, earlier to %s", i, by, served)
		}
	}

	var hits uint64
	for _, w := range workers {
		hits += w.reg.Counter("server.warm.hits").Load()
	}
	if hits != 5 {
		t.Errorf("cluster-wide warm hits = %d, want 5 (all repeats on the home worker)", hits)
	}
}

// TestRouterDistinctKeysSpread: different affinity keys spread across
// the cluster — with enough keys every worker serves some.
func TestRouterDistinctKeysSpread(t *testing.T) {
	_, _, front := newTestCluster(t, 3, RouterConfig{})
	seen := map[string]bool{}
	for _, q := range []string{
		"/invoke/hash-load-balance?backend=colorguard",
		"/invoke/hash-load-balance?backend=guardpage",
		"/invoke/hash-load-balance?backend=mte",
		"/invoke/regex-filtering?backend=colorguard",
		"/invoke/regex-filtering?backend=guardpage",
		"/invoke/html-templating?backend=colorguard",
		"/invoke/html-templating?backend=colorguard&scheme=zerocost",
		"/invoke/regex-filtering?backend=colorguard&scheme=onestack",
	} {
		st, hdr, body := getBody(t, front.URL+q)
		if st != http.StatusOK {
			t.Fatalf("GET %s: %d %v", q, st, body)
		}
		seen[hdr.Get("X-Served-By")] = true
	}
	if len(seen) < 2 {
		t.Errorf("8 distinct keys all routed to %v; want spread over >= 2 of 3 workers", seen)
	}
}

// TestRouterFailover: killing a worker's listener must not surface as a
// routing-layer 5xx — the router fails over to a surviving candidate
// and marks the dead worker down.
func TestRouterFailover(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, workers, front := newTestCluster(t, 2, RouterConfig{Registry: reg, Spread: 2})

	// Find a key homed on w0 so killing w0 exercises failover.
	var url, victim string
	for _, q := range []string{
		"/invoke/regex-filtering?backend=colorguard",
		"/invoke/regex-filtering?backend=guardpage",
		"/invoke/hash-load-balance?backend=colorguard",
	} {
		st, hdr, _ := getBody(t, front.URL+q)
		if st != http.StatusOK {
			t.Fatalf("probe %s: %d", q, st)
		}
		url, victim = front.URL+q, hdr.Get("X-Served-By")
		break
	}

	// Kill the victim's listener (the process-death analogue here).
	for i, w := range workers {
		if names(2)[i] == victim {
			w.ts.CloseClientConnections()
			w.ts.Close()
		}
	}

	st, hdr, body := getBody(t, url)
	if st != http.StatusOK {
		t.Fatalf("post-kill request: status %d body %v", st, body)
	}
	if by := hdr.Get("X-Served-By"); by == victim {
		t.Fatalf("request served by the dead worker %s", by)
	}
	if fo := reg.Counter("cluster.router.failovers").Load(); fo < 1 {
		t.Errorf("failovers = %d, want >= 1", fo)
	}
	if reg.Counter("cluster.router.no_worker").Load() != 0 {
		t.Errorf("routing-layer 502 recorded despite a healthy survivor")
	}
	if r.countHealthy() != 1 {
		t.Errorf("healthy workers = %d, want 1", r.countHealthy())
	}
}

// TestRouterNoWorker: with no registered workers the router answers
// 502 and counts it.
func TestRouterNoWorker(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(RouterConfig{Registry: reg})
	front := httptest.NewServer(r.Handler())
	defer front.Close()
	st, _, _ := getBody(t, front.URL+"/invoke/regex-filtering")
	if st != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", st)
	}
	if reg.Counter("cluster.router.no_worker").Load() != 1 {
		t.Errorf("no_worker counter not incremented")
	}
}

// TestRouterPickBoundedLoad: a home worker over the bounded-load limit
// diverts to the next candidate; under it, affinity wins even when the
// other worker is idle.
func TestRouterPickBoundedLoad(t *testing.T) {
	r := NewRouter(RouterConfig{Registry: telemetry.NewRegistry(), Spread: 2, LoadFactor: 1.25})
	r.AddWorker("a", "http://a")
	r.AddWorker("b", "http://b")
	a, b := r.workers["a"], r.workers["b"]

	picked, diverted := r.pick([]*routerWorker{a, b})
	if picked != a || diverted {
		t.Fatalf("idle home not picked: %v diverted=%v", picked.name, diverted)
	}

	// Load the home far beyond the bounded-load limit.
	a.inFlight.Store(100)
	picked, diverted = r.pick([]*routerWorker{a, b})
	if picked != b || !diverted {
		t.Fatalf("overloaded home not diverted: picked %s diverted=%v", picked.name, diverted)
	}

	// Both overloaded: least-loaded wins rather than failing.
	b.inFlight.Store(200)
	picked, _ = r.pick([]*routerWorker{a, b})
	if picked != a {
		t.Fatalf("least-loaded fallback picked %s", picked.name)
	}

	// Unhealthy home is skipped outright.
	a.inFlight.Store(0)
	a.healthy.Store(false)
	picked, diverted = r.pick([]*routerWorker{a, b})
	if picked != b || !diverted {
		t.Fatalf("unhealthy home not skipped: picked %s", picked.name)
	}
}

// TestRouterEndpoints: /healthz, /workers and /metrics answer with the
// expected shapes.
func TestRouterEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, _, front := newTestCluster(t, 2, RouterConfig{Registry: reg})

	st, _, body := getBody(t, front.URL+"/healthz")
	if st != http.StatusOK {
		t.Fatalf("/healthz: %d", st)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz status = %v", body["status"])
	}
	if ws := body["workers"].([]any); len(ws) != 2 {
		t.Errorf("healthz workers = %v", ws)
	}

	st, _, body = getBody(t, front.URL+"/workers")
	if st != http.StatusOK || len(body) != 2 {
		t.Fatalf("/workers: %d %v", st, body)
	}

	st, _, body = getBody(t, front.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	if _, ok := body["counters"].(map[string]any)["cluster.router.requests"]; !ok {
		t.Errorf("metrics missing cluster.router.requests: %v", body["counters"])
	}
}
