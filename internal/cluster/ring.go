// Package cluster is the layer above one faasd process: a front-end
// router that consistent-hashes requests across N worker processes, a
// telemetry-driven autoscaler that grows and shrinks the workers'
// per-backend keep-warm pools, and a supervisor that spawns and
// restarts worker processes. Together they extend the paper's §7
// scalability argument from simulation to the live serving path: one
// node hosting many warm instances is exactly where ColorGuard's slot
// density (~218k slots per process) beats process-per-instance
// isolation, and the keep-warm pools are the lever that realizes it.
//
// The pieces compose but do not require each other: the Router works
// over any set of worker base URLs (in-process test servers or
// supervised child processes), the Autoscaler reads any Router's
// worker set, and the Supervisor can drive any registration callback.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// fnv1a hashes s with 64-bit FNV-1a and a murmur-style finalizer —
// stable across processes and Go versions, so a router restart maps
// keys identically. The finalizer matters: raw FNV of short strings
// with shared prefixes ("w0#12", "w0#13") clusters on the ring badly
// enough to skew members 1.8x from the mean.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a member's i-th position on the ring.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Keys map to the
// first point clockwise from their hash; adding or removing a member
// moves only the keys whose arc that member's points cover (about
// 1/(n+1) of them), which is what keeps worker-local keep-warm pools
// valid across topology changes.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (0 selects the default, 64 — enough to balance within ~15%).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   fnv1a(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns up to n distinct members for key, in ring order
// starting at the key's successor point: the first entry is the key's
// home (affinity — where its warm instances accumulate), the rest are
// the spread candidates a loaded router may divert to and the failover
// order when workers die.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
