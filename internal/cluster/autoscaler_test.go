package cluster

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func busySample(misses uint64, targets map[string]int) Sample {
	return Sample{
		Requests:    misses * 2,
		InFlight:    1,
		QueueFrac:   0.2,
		WarmMisses:  map[string]uint64{"colorguard": misses, "multiproc": 0},
		WarmTargets: targets,
	}
}

func idleSample(reqs uint64, targets map[string]int) Sample {
	return Sample{
		Requests:    reqs,
		WarmMisses:  map[string]uint64{"colorguard": 0, "multiproc": 0},
		WarmTargets: targets,
	}
}

// TestPolicyGrowOnMisses: a cold-start delta at the threshold grows the
// missing backend by one, and the cooldown holds it for the configured
// ticks even if misses keep coming.
func TestPolicyGrowOnMisses(t *testing.T) {
	p := NewPolicy(PolicyConfig{GrowMissDelta: 3, CooldownTicks: 2})
	targets := map[string]int{"colorguard": 2, "multiproc": 2}

	if d := p.Tick("w0", busySample(0, targets)); d != nil {
		t.Fatalf("seed tick made decisions: %v", d)
	}
	d := p.Tick("w0", busySample(3, targets))
	if len(d) != 1 || !d[0].Grow || d[0].Backend != "colorguard" || d[0].Target != 3 {
		t.Fatalf("grow decision = %v, want colorguard -> 3", d)
	}
	// Cooldown: two more miss-heavy ticks make no new decision.
	for i := 0; i < 2; i++ {
		if d := p.Tick("w0", busySample(uint64(6+3*i), targets)); d != nil {
			t.Fatalf("tick %d during cooldown decided %v", i, d)
		}
	}
	// Cooldown expired: misses still flowing, grow again.
	targets["colorguard"] = 3
	d = p.Tick("w0", busySample(15, targets))
	if len(d) != 1 || d[0].Target != 4 {
		t.Fatalf("post-cooldown decision = %v, want colorguard -> 4", d)
	}
}

// TestPolicyShrinkAfterIdle: only a sustained idle streak shrinks, and
// each shrink is one step with a cooldown — no collapse to zero in one
// tick.
func TestPolicyShrinkAfterIdle(t *testing.T) {
	p := NewPolicy(PolicyConfig{ShrinkIdleTicks: 3, CooldownTicks: 1, MinTarget: 0})
	targets := map[string]int{"colorguard": 2, "multiproc": 2}

	p.Tick("w0", busySample(3, map[string]int{"colorguard": 2, "multiproc": 2}))
	// Ticks 1..2 idle: not enough yet.
	for i := 1; i <= 2; i++ {
		if d := p.Tick("w0", idleSample(6, targets)); d != nil {
			t.Fatalf("idle tick %d shrank early: %v", i, d)
		}
	}
	// Tick 3 idle: shrink every backend by exactly one.
	d := p.Tick("w0", idleSample(6, targets))
	if len(d) != 2 {
		t.Fatalf("idle tick 3 decisions = %v, want one shrink per backend", d)
	}
	for _, dec := range d {
		if dec.Grow || dec.Target != 1 {
			t.Fatalf("bad shrink decision %v", dec)
		}
	}
}

// TestPolicyNoFlapping: traffic alternating busy/idle every tick never
// satisfies the consecutive-idle requirement, so the policy holds its
// targets — the hysteresis the issue asks for.
func TestPolicyNoFlapping(t *testing.T) {
	p := NewPolicy(PolicyConfig{GrowMissDelta: 100, ShrinkIdleTicks: 3, CooldownTicks: 2})
	targets := map[string]int{"colorguard": 2}
	var misses uint64
	p.Tick("w0", busySample(misses, targets))
	for i := 0; i < 20; i++ {
		var d []Decision
		if i%2 == 0 {
			misses++ // small activity, below the grow threshold
			d = p.Tick("w0", busySample(misses, targets))
		} else {
			d = p.Tick("w0", idleSample(misses*2, targets))
		}
		if d != nil {
			t.Fatalf("tick %d flapped: %v", i, d)
		}
	}
}

// TestPolicyRestartReseed: a worker restart (counters reset to zero)
// reseeds instead of producing a giant bogus delta.
func TestPolicyRestartReseed(t *testing.T) {
	p := NewPolicy(PolicyConfig{})
	targets := map[string]int{"colorguard": 2}
	p.Tick("w0", busySample(50, targets))
	if d := p.Tick("w0", busySample(0, targets)); d != nil {
		t.Fatalf("restart produced decisions: %v", d)
	}
	// Next real delta works from the fresh baseline.
	if d := p.Tick("w0", busySample(3, targets)); len(d) != 1 || !d[0].Grow {
		t.Fatalf("post-restart grow = %v", d)
	}
}

// TestPolicyBounds: grow stops at MaxTarget, shrink at MinTarget.
func TestPolicyBounds(t *testing.T) {
	p := NewPolicy(PolicyConfig{GrowMissDelta: 1, CooldownTicks: 1, MaxTarget: 3, ShrinkIdleTicks: 1, MinTarget: 1})
	p.Tick("w0", busySample(0, map[string]int{"colorguard": 3}))
	if d := p.Tick("w0", busySample(5, map[string]int{"colorguard": 3})); d != nil {
		t.Fatalf("grew past MaxTarget: %v", d)
	}
	p2 := NewPolicy(PolicyConfig{ShrinkIdleTicks: 1, CooldownTicks: 1, MinTarget: 1})
	p2.Tick("w1", idleSample(0, map[string]int{"colorguard": 1}))
	if d := p2.Tick("w1", idleSample(0, map[string]int{"colorguard": 1})); d != nil {
		t.Fatalf("shrank past MinTarget: %v", d)
	}
}

// TestAutoscalerEndToEnd: against real in-process workers, a burst of
// cold-starting traffic makes the autoscaler grow the hot backend's
// pool via POST /control/warm, and sustained idleness shrinks it back —
// all visible as cluster.autoscale.* counters.
func TestAutoscalerEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, workers, front := newTestCluster(t, 1, RouterConfig{Registry: reg})
	a := NewAutoscaler(r, AutoscalerConfig{
		Registry: reg,
		Policy:   PolicyConfig{GrowMissDelta: 2, ShrinkIdleTicks: 2, CooldownTicks: 1, MaxTarget: 3},
	})

	a.TickOnce() // seed baselines

	// Burst: three kernels under one backend — three cold starts.
	for _, k := range []string{"regex-filtering", "hash-load-balance", "html-templating"} {
		st, _, body := getBody(t, front.URL+"/invoke/"+k+"?backend=colorguard")
		if st != http.StatusOK {
			t.Fatalf("burst %s: %d %v", k, st, body)
		}
	}
	decisions := a.TickOnce()
	var grew bool
	for _, d := range decisions {
		if d.Grow && d.Backend == "colorguard" && d.Target == 3 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no colorguard grow in %v", decisions)
	}
	deadline := time.Now().Add(2 * time.Second)
	for workers[0].srv.WarmTarget("colorguard") != 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := workers[0].srv.WarmTarget("colorguard"); got != 3 {
		t.Fatalf("worker target after grow = %d, want 3", got)
	}
	if reg.Counter("cluster.autoscale.grow").Load() < 1 {
		t.Errorf("cluster.autoscale.grow not incremented")
	}

	// Idle ticks: cooldown tick, then two idle ticks trigger the shrink.
	var shrank bool
	for i := 0; i < 6 && !shrank; i++ {
		for _, d := range a.TickOnce() {
			if !d.Grow && d.Backend == "colorguard" {
				shrank = true
			}
		}
	}
	if !shrank {
		t.Fatalf("no shrink after sustained idleness")
	}
	if reg.Counter("cluster.autoscale.shrink").Load() < 1 {
		t.Errorf("cluster.autoscale.shrink not incremented")
	}
	if reg.Counter("cluster.autoscale.ticks").Load() < 3 {
		t.Errorf("ticks counter = %d", reg.Counter("cluster.autoscale.ticks").Load())
	}
}
