package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// writeJSONValue marshals v to w. Values here are maps/slices of
// scalars; marshal cannot fail.
func writeJSONValue(w io.Writer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	w.Write(data)
}

// RouterConfig configures a Router. The zero value is usable.
type RouterConfig struct {
	// Vnodes is the virtual-node count per worker on the hash ring
	// (0 selects the ring default).
	Vnodes int

	// Spread is how many ring candidates a request may be served by:
	// 1 pins every key to its home worker (maximum keep-warm affinity),
	// larger values let a loaded home divert to the next candidates.
	// 0 selects the default, 2.
	Spread int

	// LoadFactor is the bounded-load constant c: a candidate is skipped
	// while its in-flight count exceeds c * (cluster in-flight / workers)
	// + 1. 0 selects the default, 1.25.
	LoadFactor float64

	// Client performs the proxied requests. Nil selects a dedicated
	// client with a short dial timeout so a dead worker fails over fast.
	Client *http.Client

	// Registry receives the cluster.router.* instruments. Nil selects
	// telemetry.Default.
	Registry *telemetry.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Spread <= 0 {
		c.Spread = 2
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.25
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// routerWorker is the router's view of one worker process: its base
// URL, the live in-flight count (the bounded-load signal), and a health
// bit flipped by proxy failures and supervisor callbacks.
type routerWorker struct {
	name     string
	baseURL  string
	inFlight atomic.Int64
	healthy  atomic.Bool
}

// Router consistent-hashes /invoke requests across a set of faasd
// worker processes. The affinity key is (kernel, backend, scheme) — the
// same key the workers' keep-warm pools pin under — so repeat requests
// land where their warm instance lives. A home worker over the
// bounded-load limit diverts to the next ring candidate, and a worker
// that fails at the transport level is marked down and failed over,
// so worker death never surfaces as a routing-layer 5xx while any
// replica is reachable.
type Router struct {
	cfg  RouterConfig
	ring *Ring

	mu      sync.RWMutex
	workers map[string]*routerWorker

	met routerMetrics
}

type routerMetrics struct {
	requests  *telemetry.Counter
	proxied   *telemetry.Counter
	diverted  *telemetry.Counter
	failovers *telemetry.Counter
	noWorker  *telemetry.Counter
	workersUp *telemetry.Gauge
}

// NewRouter returns a Router with no workers; add them with AddWorker
// (or let a Supervisor's OnUp callback do it).
func NewRouter(cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	return &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		workers: make(map[string]*routerWorker),
		met: routerMetrics{
			requests:  reg.Counter("cluster.router.requests"),
			proxied:   reg.Counter("cluster.router.proxied"),
			diverted:  reg.Counter("cluster.router.diverted"),
			failovers: reg.Counter("cluster.router.failovers"),
			noWorker:  reg.Counter("cluster.router.no_worker"),
			workersUp: reg.Gauge("cluster.router.workers"),
		},
	}
}

// AddWorker registers a worker under name, serving at baseURL (e.g.
// "http://127.0.0.1:8081"). Re-adding an existing name updates its URL
// and marks it healthy (a supervisor restart lands here).
func (rt *Router) AddWorker(name, baseURL string) {
	rt.mu.Lock()
	w, ok := rt.workers[name]
	if !ok {
		w = &routerWorker{name: name}
		rt.workers[name] = w
	}
	w.baseURL = strings.TrimSuffix(baseURL, "/")
	w.healthy.Store(true)
	rt.mu.Unlock()
	rt.ring.Add(name)
	rt.met.workersUp.Set(int64(rt.countHealthy()))
}

// RemoveWorker unregisters a worker entirely (it also leaves the ring,
// so its keys move to the survivors).
func (rt *Router) RemoveWorker(name string) {
	rt.ring.Remove(name)
	rt.mu.Lock()
	delete(rt.workers, name)
	rt.mu.Unlock()
	rt.met.workersUp.Set(int64(rt.countHealthy()))
}

// SetHealthy flips a worker's health bit without moving ring keys: an
// unhealthy worker is skipped by routing but keeps its arc, so a brief
// restart does not reshuffle every pool in the cluster.
func (rt *Router) SetHealthy(name string, up bool) {
	rt.mu.RLock()
	w := rt.workers[name]
	rt.mu.RUnlock()
	if w != nil {
		w.healthy.Store(up)
		rt.met.workersUp.Set(int64(rt.countHealthy()))
	}
}

// Workers returns the registered worker names and base URLs, sorted by
// name (the autoscaler's scrape list).
func (rt *Router) Workers() map[string]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]string, len(rt.workers))
	for n, w := range rt.workers {
		out[n] = w.baseURL
	}
	return out
}

func (rt *Router) countHealthy() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	n := 0
	for _, w := range rt.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

func (rt *Router) totalInFlight() int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var n int64
	for _, w := range rt.workers {
		n += w.inFlight.Load()
	}
	return n
}

// AffinityKey is the routing key for one request: the same triple the
// workers pin warm instances under, so routing and reuse agree.
func AffinityKey(kernel, backend, scheme string) string {
	return kernel + "|" + backend + "|" + scheme
}

// candidates resolves the ordered worker list for a key: the home
// first, then the spread/failover candidates.
func (rt *Router) candidates(key string) []*routerWorker {
	names := rt.ring.Lookup(key, rt.cfg.Spread)
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*routerWorker, 0, len(names))
	for _, n := range names {
		if w, ok := rt.workers[n]; ok {
			out = append(out, w)
		}
	}
	return out
}

// pick chooses the first healthy candidate under the bounded-load
// limit; if all healthy candidates are over the limit, the least-loaded
// healthy one. Returns nil when no candidate is healthy.
func (rt *Router) pick(cands []*routerWorker) (*routerWorker, bool) {
	limit := int64(rt.cfg.LoadFactor*float64(rt.totalInFlight())/float64(maxInt(rt.ring.Size(), 1))) + 1
	var fallback *routerWorker
	for i, w := range cands {
		if !w.healthy.Load() {
			continue
		}
		if w.inFlight.Load() < limit {
			return w, i > 0
		}
		if fallback == nil || w.inFlight.Load() < fallback.inFlight.Load() {
			fallback = w
		}
	}
	return fallback, fallback != nil && len(cands) > 0 && fallback != cands[0]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Handler returns the router's HTTP handler:
//
//	GET/POST /invoke/<kernel>   proxied to a worker (query forwarded)
//	GET      /healthz           router + per-worker health
//	GET      /metrics           registry snapshot (cluster.router.*)
//	GET      /workers           registered worker names and URLs
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke/", rt.handleInvoke)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/workers", rt.handleWorkers)
	return mux
}

func (rt *Router) handleInvoke(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Inc()
	kernel := strings.TrimPrefix(r.URL.Path, "/invoke/")
	q := r.URL.Query()
	key := AffinityKey(kernel, q.Get("backend"), q.Get("scheme"))

	// Failover loop: try the picked candidate; a transport-level failure
	// marks it down and moves on. Worker-returned statuses (including
	// 4xx/5xx) are the worker's answer, not a routing failure — they
	// pass through untouched.
	tried := make(map[string]bool)
	for attempt := 0; attempt < rt.cfg.Spread+1; attempt++ {
		cands := rt.candidates(key)
		var next []*routerWorker
		for _, c := range cands {
			if !tried[c.name] {
				next = append(next, c)
			}
		}
		if len(next) == 0 {
			break
		}
		picked, diverted := rt.pick(next)
		if picked == nil {
			break
		}
		tried[picked.name] = true
		if diverted {
			rt.met.diverted.Inc()
		}
		if rt.proxy(w, r, picked) {
			rt.met.proxied.Inc()
			return
		}
		// Transport failure: mark down, fail over to the next candidate.
		picked.healthy.Store(false)
		rt.met.workersUp.Set(int64(rt.countHealthy()))
		rt.met.failovers.Inc()
	}
	rt.met.noWorker.Inc()
	http.Error(w, `{"error":"no healthy worker"}`, http.StatusBadGateway)
}

// proxy forwards one request to a worker and copies the response back,
// propagating X-Trace-Id both ways. Returns false on a transport-level
// failure (the worker never answered); any HTTP response counts as
// success and is relayed verbatim.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, wk *routerWorker) bool {
	wk.inFlight.Add(1)
	defer wk.inFlight.Add(-1)

	url := wk.baseURL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		return false
	}
	if tid := r.Header.Get("X-Trace-Id"); tid != "" {
		req.Header.Set("X-Trace-Id", tid)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if tid := resp.Header.Get("X-Trace-Id"); tid != "" {
		w.Header().Set("X-Trace-Id", tid)
	}
	w.Header().Set("X-Served-By", wk.name)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	names := make([]string, 0, len(rt.workers))
	for n := range rt.workers {
		names = append(names, n)
	}
	rt.mu.RUnlock()
	sort.Strings(names)
	workers := make([]map[string]any, 0, len(names))
	healthy := 0
	for _, n := range names {
		rt.mu.RLock()
		wk := rt.workers[n]
		rt.mu.RUnlock()
		if wk == nil {
			continue
		}
		up := wk.healthy.Load()
		if up {
			healthy++
		}
		workers = append(workers, map[string]any{
			"name":      n,
			"url":       wk.baseURL,
			"healthy":   up,
			"in_flight": wk.inFlight.Load(),
		})
	}
	status := http.StatusOK
	if healthy == 0 && len(names) > 0 {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"workers":`, map[bool]string{true: "ok", false: "degraded"}[healthy == len(names)])
	writeJSONValue(w, workers)
	fmt.Fprint(w, "}\n")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(rt.cfg.Registry.Snapshot().JSON())
}

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONValue(w, rt.Workers())
	fmt.Fprintln(w)
}
