package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Sample is one scrape of one worker: the saturation signals the
// autoscaler steers by. Counter fields are cumulative (the policy
// differences consecutive samples itself).
type Sample struct {
	// BreakerOpen reports a non-closed circuit breaker — the worker is
	// shedding load.
	BreakerOpen bool

	// QueueFrac is the fullest shard queue's depth/capacity in [0, 1].
	QueueFrac float64

	// InFlight is the worker's current in-flight request count.
	InFlight int64

	// Requests is the worker's cumulative admitted-request counter.
	Requests uint64

	// WarmMisses maps backend name to the cumulative cold-start count
	// (server.warm.misses.<backend>).
	WarmMisses map[string]uint64

	// WarmTargets maps backend name to the worker's current keep-warm
	// target.
	WarmTargets map[string]int
}

// PolicyConfig tunes the autoscaling policy. The zero value selects
// the defaults noted per field.
type PolicyConfig struct {
	// GrowMissDelta: a backend whose cold-starts grew by at least this
	// many since the last tick gets one more warm slot. Default 3.
	GrowMissDelta uint64

	// GrowQueueFrac: queue pressure at or above this fraction counts as
	// saturation, letting even a small miss delta trigger growth.
	// Default 0.5.
	GrowQueueFrac float64

	// ShrinkIdleTicks: a worker idle (no new requests, nothing queued or
	// in flight) for this many consecutive ticks shrinks each pool by
	// one. Default 3.
	ShrinkIdleTicks int

	// CooldownTicks: after any decision for a (worker, backend), hold
	// that pair for this many ticks — the hysteresis that stops a burst
	// from flapping grow/shrink/grow. Default 2.
	CooldownTicks int

	// MinTarget and MaxTarget bound the targets the policy will set.
	// MaxTarget 0 selects 8 (the worker clamps to its slot headroom
	// anyway).
	MinTarget int
	MaxTarget int
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.GrowMissDelta == 0 {
		c.GrowMissDelta = 3
	}
	if c.GrowQueueFrac == 0 {
		c.GrowQueueFrac = 0.5
	}
	if c.ShrinkIdleTicks == 0 {
		c.ShrinkIdleTicks = 3
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 2
	}
	if c.MaxTarget == 0 {
		c.MaxTarget = 8
	}
	return c
}

// Decision is one policy output: set worker's backend pool target.
type Decision struct {
	Worker  string `json:"worker"`
	Backend string `json:"backend"`
	Target  int    `json:"target"`
	Grow    bool   `json:"grow"`
	Reason  string `json:"reason"`
}

// Policy is the pure autoscaling core: feed it one Sample per worker
// per tick, get back target changes. It is deterministic — same sample
// sequence, same decisions — which is what makes the smoke test's
// counter assertions reliable. Not safe for concurrent use; the
// Autoscaler serializes ticks.
type Policy struct {
	cfg     PolicyConfig
	workers map[string]*policyState
}

type policyState struct {
	seeded   bool
	last     Sample
	idle     int
	cooldown map[string]int
}

// NewPolicy returns a Policy with the given tuning.
func NewPolicy(cfg PolicyConfig) *Policy {
	return &Policy{cfg: cfg.withDefaults(), workers: make(map[string]*policyState)}
}

// Forget drops a worker's history (call when a worker is removed, or
// restarted with fresh counters).
func (p *Policy) Forget(worker string) { delete(p.workers, worker) }

// Tick ingests one worker's sample and returns the decisions it
// implies. The first sample for a worker only seeds the deltas.
func (p *Policy) Tick(worker string, s Sample) []Decision {
	st, ok := p.workers[worker]
	if !ok {
		st = &policyState{cooldown: make(map[string]int)}
		p.workers[worker] = st
	}
	if !st.seeded {
		st.seeded = true
		st.last = s
		return nil
	}
	reqDelta := s.Requests - st.last.Requests
	if s.Requests < st.last.Requests {
		// Counter went backwards: the worker restarted. Reseed.
		st.last = s
		st.idle = 0
		return nil
	}
	if reqDelta == 0 && s.InFlight == 0 && s.QueueFrac == 0 {
		st.idle++
	} else {
		st.idle = 0
	}
	saturated := s.BreakerOpen || s.QueueFrac >= p.cfg.GrowQueueFrac

	backends := make([]string, 0, len(s.WarmTargets))
	for b := range s.WarmTargets {
		backends = append(backends, b)
	}
	sort.Strings(backends)

	var out []Decision
	for _, b := range backends {
		if st.cooldown[b] > 0 {
			st.cooldown[b]--
			continue
		}
		target := s.WarmTargets[b]
		var missDelta uint64
		if cur, prev := s.WarmMisses[b], st.last.WarmMisses[b]; cur > prev {
			missDelta = cur - prev
		}
		switch {
		case target < p.cfg.MaxTarget && (missDelta >= p.cfg.GrowMissDelta || (saturated && missDelta > 0)):
			reason := fmt.Sprintf("cold-starts +%d", missDelta)
			if saturated && missDelta < p.cfg.GrowMissDelta {
				reason = fmt.Sprintf("saturated, cold-starts +%d", missDelta)
			}
			out = append(out, Decision{Worker: worker, Backend: b, Target: target + 1, Grow: true, Reason: reason})
			st.cooldown[b] = p.cfg.CooldownTicks
		case target > p.cfg.MinTarget && st.idle >= p.cfg.ShrinkIdleTicks:
			out = append(out, Decision{Worker: worker, Backend: b, Target: target - 1,
				Reason: fmt.Sprintf("idle %d ticks", st.idle)})
			st.cooldown[b] = p.cfg.CooldownTicks
		}
	}
	st.last = s
	return out
}

// AutoscalerConfig configures the scrape/apply loop around a Policy.
type AutoscalerConfig struct {
	// Interval between scrape ticks. 0 selects 1s.
	Interval time.Duration

	// Policy tunes the decision core.
	Policy PolicyConfig

	// Client performs the scrapes and control POSTs. Nil selects a
	// client with a 5s timeout.
	Client *http.Client

	// Registry receives the cluster.autoscale.* instruments. Nil
	// selects telemetry.Default.
	Registry *telemetry.Registry
}

// Autoscaler periodically scrapes every worker registered with a
// Router (/healthz + /metrics), runs the Policy, and applies its
// decisions back through each worker's POST /control/warm. Decisions
// and errors are recorded as cluster.autoscale.* counters.
type Autoscaler struct {
	router *Router
	cfg    AutoscalerConfig
	policy *Policy

	mu      sync.Mutex // serializes ticks (Start loop vs TickOnce in tests)
	stop    chan struct{}
	done    chan struct{}
	started bool

	ticks        *telemetry.Counter
	grows        *telemetry.Counter
	shrinks      *telemetry.Counter
	scrapeErrors *telemetry.Counter
	applyErrors  *telemetry.Counter
}

// NewAutoscaler returns an Autoscaler steering router's workers.
func NewAutoscaler(router *Router, cfg AutoscalerConfig) *Autoscaler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	reg := cfg.Registry
	return &Autoscaler{
		router:       router,
		cfg:          cfg,
		policy:       NewPolicy(cfg.Policy),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		ticks:        reg.Counter("cluster.autoscale.ticks"),
		grows:        reg.Counter("cluster.autoscale.grow"),
		shrinks:      reg.Counter("cluster.autoscale.shrink"),
		scrapeErrors: reg.Counter("cluster.autoscale.scrape_errors"),
		applyErrors:  reg.Counter("cluster.autoscale.apply_errors"),
	}
}

// Start launches the tick loop; Stop ends it.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.TickOnce()
			}
		}
	}()
}

// Stop halts a started loop and waits for it to exit.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	started := a.started
	a.mu.Unlock()
	if !started {
		return
	}
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// TickOnce scrapes every worker, runs the policy, applies the
// decisions, and returns them (the smoke tooling calls this directly
// for deterministic stepping).
func (a *Autoscaler) TickOnce() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ticks.Inc()
	workers := a.router.Workers()
	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)

	var all []Decision
	for _, name := range names {
		s, err := a.scrape(workers[name])
		if err != nil {
			a.scrapeErrors.Inc()
			a.router.SetHealthy(name, false)
			continue
		}
		a.router.SetHealthy(name, true)
		for _, d := range a.policy.Tick(name, s) {
			if err := a.apply(workers[name], d); err != nil {
				a.applyErrors.Inc()
				continue
			}
			if d.Grow {
				a.grows.Inc()
			} else {
				a.shrinks.Inc()
			}
			all = append(all, d)
		}
	}
	return all
}

// healthzPayload mirrors the slice of faasd's /healthz the policy needs.
type healthzPayload struct {
	Breaker string `json:"breaker"`
	InFl    int64  `json:"in_flight"`
	Shards  []struct {
		Depth int `json:"queue_depth"`
		Cap   int `json:"queue_capacity"`
	} `json:"shards"`
	Warm struct {
		Targets map[string]int `json:"targets"`
	} `json:"warm"`
}

// scrape builds one Sample from a worker's /healthz and /metrics.
func (a *Autoscaler) scrape(baseURL string) (Sample, error) {
	var hz healthzPayload
	if err := a.getJSON(baseURL+"/healthz", &hz); err != nil {
		return Sample{}, err
	}
	var snap telemetry.Snapshot
	if err := a.getJSON(baseURL+"/metrics", &snap); err != nil {
		return Sample{}, err
	}
	s := Sample{
		BreakerOpen: hz.Breaker != "" && hz.Breaker != "closed",
		InFlight:    hz.InFl,
		Requests:    snap.Counters["server.requests"],
		WarmMisses:  make(map[string]uint64, len(hz.Warm.Targets)),
		WarmTargets: hz.Warm.Targets,
	}
	for _, sh := range hz.Shards {
		if sh.Cap > 0 {
			if f := float64(sh.Depth) / float64(sh.Cap); f > s.QueueFrac {
				s.QueueFrac = f
			}
		}
	}
	for b := range hz.Warm.Targets {
		s.WarmMisses[b] = snap.Counters["server.warm.misses."+b]
	}
	return s, nil
}

// getJSON fetches url and decodes its JSON body into v. A draining
// worker answers /healthz with 503 but still sends the payload, so any
// decodable body is accepted.
func (a *Autoscaler) getJSON(url string, v any) error {
	resp, err := a.cfg.Client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// apply pushes one decision to its worker's control endpoint.
func (a *Autoscaler) apply(baseURL string, d Decision) error {
	url := fmt.Sprintf("%s/control/warm?backend=%s&target=%d", baseURL, d.Backend, d.Target)
	resp, err := a.cfg.Client.Post(url, "", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("control/warm: HTTP %d", resp.StatusCode)
	}
	return nil
}
