package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMmapBasics(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 2*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatalf("mmap: %v", err)
	}
	if a.VMACount() != 1 {
		t.Fatalf("VMACount = %d", a.VMACount())
	}
	// Overlapping fixed mapping fails.
	if err := a.Mmap(0x10000+PageSize, PageSize, ProtRead); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap err = %v", err)
	}
	// Unaligned fails.
	if err := a.Mmap(0x10001, PageSize, ProtRead); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned err = %v", err)
	}
	// Beyond the address space fails.
	if err := a.Mmap(a.Size()-PageSize, 2*PageSize, ProtRead); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestLoadStore(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, PageSize*2, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	a.Store(0x10008, 8, 0x1122334455667788)
	if got := a.Load(0x10008, 8); got != 0x1122334455667788 {
		t.Fatalf("Load = %#x", got)
	}
	if got := a.Load(0x10008, 4); got != 0x55667788 {
		t.Fatalf("Load4 = %#x", got)
	}
	if got := a.Load(0x1000c, 4); got != 0x11223344 {
		t.Fatalf("Load4 hi = %#x", got)
	}
	// Page-straddling access.
	a.Store(0x10000+PageSize-4, 8, 0xAABBCCDDEEFF0011)
	if got := a.Load(0x10000+PageSize-4, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("straddle Load = %#x", got)
	}
	// Untouched page reads zero.
	if got := a.Load(0x10000+PageSize+512, 8); got != 0 {
		t.Fatalf("untouched Load = %#x", got)
	}
}

func TestCheckAccess(t *testing.T) {
	a := NewAS(47)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Mmap(0x10000, PageSize, ProtRead|ProtWrite)) // rw page
	must(a.Mmap(0x11000, PageSize, ProtRead))           // ro page
	must(a.Mmap(0x12000, PageSize, ProtNone))           // guard

	if err := a.CheckAccess(0x10010, 8, true, PkruAllowAll); err != nil {
		t.Fatalf("rw write: %v", err)
	}
	var f *Fault
	if err := a.CheckAccess(0x11010, 8, true, PkruAllowAll); !errors.As(err, &f) || f.Kind != FaultProt {
		t.Fatalf("ro write err = %v", err)
	}
	if err := a.CheckAccess(0x12010, 8, false, PkruAllowAll); !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("guard read err = %v", err)
	}
	if err := a.CheckAccess(0x13000, 1, false, PkruAllowAll); !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("unmapped read err = %v", err)
	}
	// Access straddling into the guard faults at the guard page.
	if err := a.CheckAccess(0x11000+PageSize-4, 8, false, PkruAllowAll); !errors.As(err, &f) || f.Addr != 0x12000 {
		t.Fatalf("straddle err = %v", err)
	}
}

func TestPkeySemantics(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 4*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := a.PkeyMprotect(0x10000, PageSize, ProtRead|ProtWrite, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.PkeyMprotect(0x11000, PageSize, ProtRead|ProtWrite, 4); err != nil {
		t.Fatal(err)
	}

	pkru := PkruAllowOnly(3)
	if err := a.CheckAccess(0x10000, 8, true, pkru); err != nil {
		t.Fatalf("key 3 allowed: %v", err)
	}
	var f *Fault
	if err := a.CheckAccess(0x11000, 8, false, pkru); !errors.As(err, &f) || f.Kind != FaultPkey {
		t.Fatalf("key 4 read err = %v", err)
	}
	// Key 0 (runtime memory) is always allowed by PkruAllowOnly.
	if err := a.CheckAccess(0x12000, 8, true, pkru); err != nil {
		t.Fatalf("key 0: %v", err)
	}
	// Invalid key rejected.
	if err := a.PkeyMprotect(0x10000, PageSize, ProtRead, 16); !errors.Is(err, ErrBadPkey) {
		t.Fatalf("bad pkey err = %v", err)
	}
}

func TestPkeyWriteDisable(t *testing.T) {
	// Write-disable bit: read allowed, write denied.
	var pkru uint32 = 2 << (2 * 5) // WD for key 5
	if !PkeyAllowed(pkru, 5, false) {
		t.Error("read should be allowed with WD only")
	}
	if PkeyAllowed(pkru, 5, true) {
		t.Error("write should be denied with WD")
	}
	if !PkeyAllowed(pkru, 6, true) {
		t.Error("other keys unaffected")
	}
}

func TestMprotectSplitCoalesce(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 8*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := a.Mprotect(0x12000, 2*PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if a.VMACount() != 3 {
		t.Fatalf("after split: %d VMAs, want 3: %v", a.VMACount(), a.VMAs())
	}
	// Restoring the protection coalesces back to one VMA.
	if err := a.Mprotect(0x12000, 2*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if a.VMACount() != 1 {
		t.Fatalf("after restore: %d VMAs, want 1: %v", a.VMACount(), a.VMAs())
	}
	// Protecting an unmapped range fails.
	if err := a.Mprotect(0x40000, PageSize, ProtRead); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped mprotect err = %v", err)
	}
}

func TestMaxMapCount(t *testing.T) {
	a := NewAS(47)
	a.MaxMapCount = 3
	if err := a.Mmap(0x10000, 16*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	// First split: 1 -> 3 VMAs. OK.
	if err := a.PkeyMprotect(0x12000, PageSize, ProtRead|ProtWrite, 1); err != nil {
		t.Fatalf("first split: %v", err)
	}
	if a.VMACount() != 3 {
		t.Fatalf("VMAs = %d", a.VMACount())
	}
	// Next split exceeds the limit, like hitting vm.max_map_count.
	if err := a.PkeyMprotect(0x14000, PageSize, ProtRead|ProtWrite, 2); !errors.Is(err, ErrMapCount) {
		t.Fatalf("err = %v, want ErrMapCount", err)
	}
}

func TestMadviseDontneed(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 2*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := a.PkeyMprotect(0x10000, PageSize, ProtRead|ProtWrite, 7); err != nil {
		t.Fatal(err)
	}
	a.Store(0x10100, 8, 0x42)
	if a.ResidentPages() != 1 {
		t.Fatalf("resident = %d", a.ResidentPages())
	}
	if err := a.MadviseDontneed(0x10000, PageSize); err != nil {
		t.Fatal(err)
	}
	if got := a.Load(0x10100, 8); got != 0 {
		t.Fatalf("after madvise, Load = %#x, want 0", got)
	}
	if a.ResidentPages() != 0 {
		t.Fatalf("resident after madvise = %d", a.ResidentPages())
	}
	// Protection key survives madvise (the MPK property from §7).
	v, ok := a.VMAAt(0x10000)
	if !ok || v.Pkey != 7 {
		t.Fatalf("pkey after madvise = %v, %v", v, ok)
	}
}

func TestMunmap(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 4*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	a.Store(0x11000, 8, 99)
	if err := a.Munmap(0x11000, PageSize); err != nil {
		t.Fatal(err)
	}
	if a.VMACount() != 2 {
		t.Fatalf("VMAs = %d, want 2", a.VMACount())
	}
	if err := a.CheckAccess(0x11000, 1, false, PkruAllowAll); err == nil {
		t.Fatal("unmapped page should fault")
	}
	// Remapping the hole works and reads zero.
	if err := a.Mmap(0x11000, PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if got := a.Load(0x11000, 8); got != 0 {
		t.Fatalf("recycled page = %#x", got)
	}
}

func TestMmapAnywhere(t *testing.T) {
	a := NewAS(30)
	p1, err := a.MmapAnywhere(4*PageSize, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.MmapAnywhere(4*PageSize, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping placements")
	}
	// Exhaustion: a 30-bit space cannot hold a 2GB mapping.
	if _, err := a.MmapAnywhere(1<<31, ProtRead); err == nil {
		t.Fatal("should exhaust address space")
	}
}

func TestReadWriteBytes(t *testing.T) {
	a := NewAS(47)
	if err := a.Mmap(0x10000, 3*PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 2*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	a.WriteBytes(0x10000+100, src)
	dst := make([]byte, len(src))
	a.ReadBytes(0x10000+100, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: %d != %d", i, dst[i], src[i])
		}
	}
}

// TestIsolationProperty: an access outside every mapped range always
// faults, regardless of PKRU — the foundation of guard-page SFI.
func TestIsolationProperty(t *testing.T) {
	a := NewAS(40)
	if err := a.Mmap(1<<20, 1<<20, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	f := func(addr uint64, pkru uint32, write bool) bool {
		addr %= uint64(1) << 40
		inMapped := addr >= 1<<20 && addr+8 <= 2<<20
		err := a.CheckAccess(addr, 8, write, pkru)
		if inMapped {
			return true // mapped accesses may pass or fail on pkey; not under test
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStripingIsolationProperty models the ColorGuard claim: two
// adjacent slots with different keys, PKRU allowing only one — any
// access to the other slot faults.
func TestStripingIsolationProperty(t *testing.T) {
	a := NewAS(47)
	slot := uint64(1 << 20)
	base := uint64(1 << 21)
	if err := a.Mmap(base, 2*slot, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := a.PkeyMprotect(base, slot, ProtRead|ProtWrite, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.PkeyMprotect(base+slot, slot, ProtRead|ProtWrite, 2); err != nil {
		t.Fatal(err)
	}
	pkru := PkruAllowOnly(1)
	f := func(off uint64, write bool) bool {
		off %= 2*slot - 8
		err := a.CheckAccess(base+off, 8, write, pkru)
		inOwn := off+8 <= slot
		if inOwn {
			return err == nil
		}
		var fault *Fault
		return errors.As(err, &fault) && fault.Kind == FaultPkey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
