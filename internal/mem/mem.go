// Package mem implements the simulated virtual address space that
// ColorGuard's scaling story is built on: a 47-bit user address space
// managed as a sorted list of VMAs (virtual memory areas) with
// page-granular protections and 4-bit MPK protection keys, plus the
// Linux-like operations the Wasm runtimes use — mmap of large PROT_NONE
// reservations, mprotect, pkey_mprotect, madvise(MADV_DONTNEED), and a
// vm.max_map_count limit on the number of VMAs.
//
// Page backing is allocated lazily, so reserving terabytes of address
// space (as pooling allocators do) costs almost nothing until pages are
// touched — exactly the property the paper's guard regions rely on.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PageSize is the OS page size (4 KiB).
const PageSize = 4096

// NumPkeys is the number of MPK protection keys the hardware offers.
const NumPkeys = 16

// Prot is a page protection bitmask.
type Prot uint8

// Protection bits. ProtNone (no bits) is an unreadable, unwritable
// reservation — a guard region.
const (
	ProtNone Prot = 0
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// String renders the protection like "rw-".
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Errors returned by address-space operations.
var (
	ErrNoMem      = errors.New("mem: out of address space")
	ErrMapCount   = errors.New("mem: vm.max_map_count exceeded")
	ErrUnmapped   = errors.New("mem: address range not mapped")
	ErrUnaligned  = errors.New("mem: unaligned address or length")
	ErrBadPkey    = errors.New("mem: invalid protection key")
	ErrOverlap    = errors.New("mem: fixed mapping overlaps existing VMA")
	ErrOutOfRange = errors.New("mem: address beyond user address space")
)

// FaultKind classifies an access fault.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped FaultKind = iota // no VMA or PROT_NONE: SIGSEGV (guard hit)
	FaultProt                      // mapped but wrong permission
	FaultPkey                      // MPK key disallows the access (SEGV_PKUERR)
)

// Fault is the error for a denied memory access.
type Fault struct {
	Kind  FaultKind
	Addr  uint64
	Write bool
}

// Error implements error.
func (f *Fault) Error() string {
	kind := [...]string{"unmapped", "protection", "pkey"}[f.Kind]
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s fault on %s at %#x", kind, op, f.Addr)
}

// VMA is one virtual memory area: [Start, End) with uniform protection
// and protection key.
type VMA struct {
	Start, End uint64
	Prot       Prot
	Pkey       uint8
}

// AS is a simulated address space. The zero value is not usable;
// construct with NewAS.
type AS struct {
	bits  uint8
	limit uint64 // first address beyond user space

	vmas  []VMA
	pages map[uint64]*[PageSize]byte

	// MaxMapCount is the vm.max_map_count analogue: operations that
	// would push the VMA count beyond it fail with ErrMapCount.
	// Zero means unlimited.
	MaxMapCount int

	// lastVMA caches the index of the most recently hit VMA, since
	// emulated access streams have high locality.
	lastVMA int

	// lastPage caches the most recently touched backing page, skipping
	// the page-map lookup (and its hash) for the common case of
	// consecutive accesses to one page. Invalidated whenever backing
	// pages are released.
	lastPN   uint64
	lastPage *[PageSize]byte

	// gen counts mapping mutations (mmap, munmap, mprotect, madvise).
	// External caches of per-page permissions or backing pages — the
	// emulator's access-grant cache — revalidate against it.
	gen uint64
}

// NewAS returns an address space with the given number of virtual
// address bits available to user space (the paper's x86-64 machines
// have 47).
func NewAS(bits uint8) *AS {
	if bits < 16 || bits > 57 {
		panic("mem: unreasonable address-space size")
	}
	return &AS{
		bits:  bits,
		limit: uint64(1) << bits,
		pages: make(map[uint64]*[PageSize]byte),
	}
}

// Bits returns the user address-space width in bits.
func (a *AS) Bits() uint8 { return a.bits }

// Gen returns the mapping generation: it changes whenever a mutation
// could invalidate externally cached per-page permissions or backing
// pages. Caches holding a page pointer or a (prot, pkey) grant must
// drop their entries when the generation moves.
func (a *AS) Gen() uint64 { return a.gen }

// PageFor returns the backing page containing addr, allocating it when
// alloc is set. A nil return (without alloc) means the page is
// untouched and reads as zero. Callers must have validated the access;
// this is the emulator fast path's direct line to page memory.
func (a *AS) PageFor(addr uint64, alloc bool) *[PageSize]byte {
	return a.page(addr, alloc)
}

// Size returns the total user address-space size in bytes.
func (a *AS) Size() uint64 { return a.limit }

// VMACount returns the current number of VMAs.
func (a *AS) VMACount() int { return len(a.vmas) }

// ResidentPages returns the number of lazily allocated backing pages
// (an RSS analogue).
func (a *AS) ResidentPages() int { return len(a.pages) }

func aligned(addr, length uint64) bool {
	return addr%PageSize == 0 && length%PageSize == 0
}

// findVMA returns the index of the VMA containing addr, or -1.
func (a *AS) findVMA(addr uint64) int {
	// Fast path: repeat hit on the cached VMA.
	if a.lastVMA < len(a.vmas) {
		v := a.vmas[a.lastVMA]
		if addr >= v.Start && addr < v.End {
			return a.lastVMA
		}
	}
	i := sort.Search(len(a.vmas), func(i int) bool { return a.vmas[i].End > addr })
	if i < len(a.vmas) && addr >= a.vmas[i].Start {
		a.lastVMA = i
		return i
	}
	return -1
}

// Mmap reserves [addr, addr+length) with the given protection (fixed
// placement, like mmap(MAP_FIXED|MAP_NORESERVE)). The range must be
// page-aligned, inside user space, and not overlap an existing VMA.
func (a *AS) Mmap(addr, length uint64, prot Prot) error {
	if !aligned(addr, length) {
		return ErrUnaligned
	}
	if length == 0 || addr+length < addr || addr+length > a.limit {
		return ErrOutOfRange
	}
	// Find insert position and check overlap.
	i := sort.Search(len(a.vmas), func(i int) bool { return a.vmas[i].End > addr })
	if i < len(a.vmas) && a.vmas[i].Start < addr+length {
		return ErrOverlap
	}
	if a.MaxMapCount > 0 && len(a.vmas)+1 > a.MaxMapCount {
		return ErrMapCount
	}
	a.vmas = append(a.vmas, VMA{})
	copy(a.vmas[i+1:], a.vmas[i:])
	a.vmas[i] = VMA{Start: addr, End: addr + length, Prot: prot}
	a.coalesceAround(i)
	a.gen++
	return nil
}

// MmapAnywhere finds a free page-aligned range of the given length,
// maps it with prot, and returns its start address. Placement is a
// simple first-fit above a small reserved low region.
func (a *AS) MmapAnywhere(length uint64, prot Prot) (uint64, error) {
	if length == 0 || length%PageSize != 0 {
		return 0, ErrUnaligned
	}
	const lowReserve = 1 << 20 // keep the null page and friends unmapped
	cand := uint64(lowReserve)
	for _, v := range a.vmas {
		if v.Start >= cand+length {
			break
		}
		if v.End > cand {
			cand = v.End
		}
	}
	if cand+length > a.limit || cand+length < cand {
		return 0, ErrNoMem
	}
	if err := a.Mmap(cand, length, prot); err != nil {
		return 0, err
	}
	return cand, nil
}

// Munmap removes mappings in [addr, addr+length), releasing backing
// pages. Unmapped holes inside the range are permitted, as with munmap.
func (a *AS) Munmap(addr, length uint64) error {
	if !aligned(addr, length) {
		return ErrUnaligned
	}
	end := addr + length
	if err := a.split(addr); err != nil {
		return err
	}
	if err := a.split(end); err != nil {
		return err
	}
	out := a.vmas[:0]
	for _, v := range a.vmas {
		if v.Start >= addr && v.End <= end {
			a.dropPages(v.Start, v.End)
			continue
		}
		out = append(out, v)
	}
	a.vmas = out
	a.lastVMA = 0
	a.gen++
	return nil
}

// Mprotect changes the protection of [addr, addr+length), which must be
// fully mapped. Splitting may increase the VMA count; the map-count
// limit applies.
func (a *AS) Mprotect(addr, length uint64, prot Prot) error {
	return a.protect(addr, length, prot, nil)
}

// PkeyMprotect is Mprotect plus assignment of the MPK protection key,
// mirroring the pkey_mprotect(2) system call.
func (a *AS) PkeyMprotect(addr, length uint64, prot Prot, pkey uint8) error {
	if pkey >= NumPkeys {
		return ErrBadPkey
	}
	return a.protect(addr, length, prot, &pkey)
}

func (a *AS) protect(addr, length uint64, prot Prot, pkey *uint8) error {
	if !aligned(addr, length) {
		return ErrUnaligned
	}
	end := addr + length
	if end < addr || end > a.limit {
		return ErrOutOfRange
	}
	// The whole range must be mapped.
	cover := addr
	for cover < end {
		i := a.findVMA(cover)
		if i < 0 {
			return ErrUnmapped
		}
		cover = a.vmas[i].End
	}
	if err := a.split(addr); err != nil {
		return err
	}
	if err := a.split(end); err != nil {
		return err
	}
	first := -1
	for i := range a.vmas {
		v := &a.vmas[i]
		if v.Start >= addr && v.End <= end {
			v.Prot = prot
			if pkey != nil {
				v.Pkey = *pkey
			}
			if first == -1 {
				first = i
			}
		}
	}
	if first >= 0 {
		a.coalesceAround(first)
	}
	a.gen++
	return nil
}

// split ensures a VMA boundary exists at addr (no-op when addr is not
// inside a VMA or already a boundary).
func (a *AS) split(addr uint64) error {
	i := a.findVMA(addr)
	if i < 0 || a.vmas[i].Start == addr {
		return nil
	}
	if a.MaxMapCount > 0 && len(a.vmas)+1 > a.MaxMapCount {
		return ErrMapCount
	}
	v := a.vmas[i]
	left := VMA{Start: v.Start, End: addr, Prot: v.Prot, Pkey: v.Pkey}
	right := VMA{Start: addr, End: v.End, Prot: v.Prot, Pkey: v.Pkey}
	a.vmas = append(a.vmas, VMA{})
	copy(a.vmas[i+1:], a.vmas[i:])
	a.vmas[i] = left
	a.vmas[i+1] = right
	return nil
}

// coalesceAround merges VMAs adjacent to index i that have identical
// attributes, keeping the VMA list minimal as the kernel does.
func (a *AS) coalesceAround(i int) {
	// Walk left to the first mergeable neighbor.
	for i > 0 && mergeable(a.vmas[i-1], a.vmas[i]) {
		i--
	}
	j := i
	for j+1 < len(a.vmas) && mergeable(a.vmas[j], a.vmas[j+1]) {
		a.vmas[j].End = a.vmas[j+1].End
		a.vmas = append(a.vmas[:j+1], a.vmas[j+2:]...)
	}
	a.lastVMA = 0
}

func mergeable(l, r VMA) bool {
	return l.End == r.Start && l.Prot == r.Prot && l.Pkey == r.Pkey
}

// dropPages releases backing pages in [start, end).
func (a *AS) dropPages(start, end uint64) {
	for p := start / PageSize; p < (end+PageSize-1)/PageSize; p++ {
		delete(a.pages, p)
	}
	a.lastPage = nil
}

// MadviseDontneed zeroes [addr, addr+length) by discarding backing
// pages, keeping the mapping (and, like MPK but unlike MTE, keeping any
// protection keys). This is how the pooling allocator recycles slots.
func (a *AS) MadviseDontneed(addr, length uint64) error {
	if !aligned(addr, length) {
		return ErrUnaligned
	}
	if a.findVMA(addr) < 0 {
		return ErrUnmapped
	}
	a.dropPages(addr, addr+length)
	a.gen++
	return nil
}

// VMAAt returns the VMA containing addr.
func (a *AS) VMAAt(addr uint64) (VMA, bool) {
	i := a.findVMA(addr)
	if i < 0 {
		return VMA{}, false
	}
	return a.vmas[i], true
}

// VMAs returns a copy of the VMA list (for inspection and tests).
func (a *AS) VMAs() []VMA {
	out := make([]VMA, len(a.vmas))
	copy(out, a.vmas)
	return out
}

// PkeyAllowed reports whether the PKRU register value permits the given
// access to a page with the given key. PKRU holds two bits per key:
// bit 2k = access-disable, bit 2k+1 = write-disable.
func PkeyAllowed(pkru uint32, pkey uint8, write bool) bool {
	ad := pkru>>(2*pkey)&1 != 0
	wd := pkru>>(2*pkey+1)&1 != 0
	if ad {
		return false
	}
	if write && wd {
		return false
	}
	return true
}

// PkruAllowOnly returns a PKRU value that permits full access to key 0
// and the listed keys, and denies all others. Key 0 is always allowed
// because runtime data structures live there.
func PkruAllowOnly(keys ...uint8) uint32 {
	var pkru uint32 = 0xFFFFFFFF
	allow := func(k uint8) { pkru &^= 3 << (2 * k) }
	allow(0)
	for _, k := range keys {
		allow(k)
	}
	return pkru
}

// PkruAllowAll permits access to every key.
const PkruAllowAll uint32 = 0

// CheckAccess validates an access of size bytes at addr under the given
// PKRU value, returning a Fault on denial. Accesses may straddle page
// and VMA boundaries; each page is checked.
func (a *AS) CheckAccess(addr uint64, size int, write bool, pkru uint32) error {
	if size <= 0 {
		return nil
	}
	end := addr + uint64(size)
	if end < addr || end > a.limit {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Write: write}
	}
	p := addr
	for {
		i := a.findVMA(p)
		if i < 0 {
			return &Fault{Kind: FaultUnmapped, Addr: p, Write: write}
		}
		v := a.vmas[i]
		need := ProtRead
		if write {
			need = ProtWrite
		}
		if v.Prot&need == 0 {
			if v.Prot == ProtNone {
				return &Fault{Kind: FaultUnmapped, Addr: p, Write: write}
			}
			return &Fault{Kind: FaultProt, Addr: p, Write: write}
		}
		if !PkeyAllowed(pkru, v.Pkey, write) {
			return &Fault{Kind: FaultPkey, Addr: p, Write: write}
		}
		if v.End >= end {
			return nil
		}
		p = v.End
	}
}

// page returns the backing page for the page containing addr,
// allocating when alloc is set. A nil return means an untouched
// (all-zero) page.
func (a *AS) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr / PageSize
	if a.lastPage != nil && a.lastPN == pn {
		return a.lastPage
	}
	pg := a.pages[pn]
	if pg == nil && alloc {
		pg = new([PageSize]byte)
		a.pages[pn] = pg
	}
	if pg != nil {
		a.lastPN, a.lastPage = pn, pg
	}
	return pg
}

// ReadBytes copies size bytes at addr into dst without permission
// checks (a host-side read; the emulator performs CheckAccess first).
func (a *AS) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if pg := a.page(addr, false); pg != nil {
			copy(dst[:n], pg[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory at addr without permission checks.
func (a *AS) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		pg := a.page(addr, true)
		copy(pg[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Load reads a little-endian value of size 1, 2, 4, or 8 bytes.
func (a *AS) Load(addr uint64, size int) uint64 {
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		pg := a.page(addr, false)
		if pg == nil {
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(pg[off : off+8])
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off : off+4]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg[off : off+2]))
		case 1:
			return uint64(pg[off])
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(pg[off+uint64(i)])
		}
		return v
	}
	var buf [8]byte
	a.ReadBytes(addr, buf[:size])
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// Store writes a little-endian value of size 1, 2, 4, or 8 bytes.
func (a *AS) Store(addr uint64, size int, val uint64) {
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		pg := a.page(addr, true)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(pg[off:off+8], val)
		case 4:
			binary.LittleEndian.PutUint32(pg[off:off+4], uint32(val))
		case 2:
			binary.LittleEndian.PutUint16(pg[off:off+2], uint16(val))
		case 1:
			pg[off] = byte(val)
		default:
			for i := 0; i < size; i++ {
				pg[off+uint64(i)] = byte(val >> (8 * i))
			}
		}
		return
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(val >> (8 * i))
	}
	a.WriteBytes(addr, buf[:size])
}
