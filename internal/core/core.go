// Package core is the public face of the library: a downstream user
// builds a module with the IR builder, compiles it with Segue and/or
// runs it under ColorGuard, without touching the substrate packages.
//
// The three core types are:
//
//   - Engine — a compilation configuration (Segue on/off, vectorizer,
//     epoch interruption) shared by modules.
//   - CompiledModule — a validated, compiled module.
//   - Sandbox — one running instance with its own linear memory,
//     either standalone or packed into a ColorGuard pool.
//
// A minimal session:
//
//	eng := core.NewEngine(core.Options{Segue: true})
//	mod, err := eng.Compile(m)              // m is an *ir.Module
//	sb, err := eng.Instantiate(mod, nil)
//	res, err := sb.Call("run", 1000)
//
// For high-density serving, create a ColorGuard pool and instantiate
// into it:
//
//	pool, err := eng.NewPool(core.PoolOptions{MaxMemoryBytes: 64 << 20})
//	sb, err := pool.Instantiate(mod, nil)
package core

import (
	"errors"
	"fmt"

	"repro/internal/colorguard"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
	"repro/internal/mem"
	"repro/internal/rt"
	"repro/internal/sfi"
)

// Options configures an Engine.
type Options struct {
	// Segue stores the heap base in %gs and uses segment-relative
	// addressing for sandboxed memory operations.
	Segue bool

	// SegueLoadsOnly applies Segue to loads only (WAMR's tuning knob).
	SegueLoadsOnly bool

	// BoundsChecks uses explicit bounds checks instead of guard pages
	// (for environments without large virtual address spaces).
	BoundsChecks bool

	// Vectorize enables the 128-bit store-fusion pass.
	Vectorize bool

	// EpochInterruption inserts preemption checks at loop headers so a
	// host can interrupt and resume sandboxes.
	EpochInterruption bool

	// FSGSBASE selects user-level segment-base writes; disable to model
	// pre-IvyBridge CPUs where transitions fall back to a system call.
	FSGSBASE bool
}

// Engine compiles modules under a fixed configuration.
type Engine struct {
	cfg      sfi.Config
	fsgsbase bool
}

// NewEngine returns an engine for the given options.
func NewEngine(o Options) *Engine {
	mode := sfi.ModeGuard
	switch {
	case o.BoundsChecks && o.Segue:
		mode = sfi.ModeBoundsSegue
	case o.BoundsChecks:
		mode = sfi.ModeBoundsCheck
	case o.Segue:
		mode = sfi.ModeSegue
	}
	cfg := sfi.DefaultConfig(mode)
	cfg.SegueLoadsOnly = o.SegueLoadsOnly
	cfg.Vectorize = o.Vectorize
	cfg.EpochChecks = o.EpochInterruption
	return &Engine{cfg: cfg, fsgsbase: o.FSGSBASE}
}

// CompiledModule is a compiled, instantiable module.
type CompiledModule struct {
	mod *rt.Module
}

// CodeBytes returns the compiled code size.
func (cm *CompiledModule) CodeBytes() int { return cm.mod.Prog.CodeBytes() }

// Compile validates and compiles an IR module.
func (e *Engine) Compile(m *ir.Module) (*CompiledModule, error) {
	mod, err := rt.CompileModule(m, e.cfg)
	if err != nil {
		return nil, err
	}
	return &CompiledModule{mod: mod}, nil
}

// HostFunc implements an imported function.
type HostFunc = rt.HostFunc

// HostCall carries host-call arguments and memory access helpers.
type HostCall = rt.HostCall

// Sandbox is one running instance.
type Sandbox struct {
	inst *rt.Instance
}

// Instantiate creates a standalone sandbox (own simulated address
// space with full-size guard regions).
func (e *Engine) Instantiate(cm *CompiledModule, hosts map[string]HostFunc) (*Sandbox, error) {
	inst, err := rt.NewInstance(cm.mod, rt.InstanceOptions{
		Hosts:    hosts,
		FSGSBASE: e.fsgsbase,
	})
	if err != nil {
		return nil, err
	}
	return &Sandbox{inst: inst}, nil
}

// Call invokes an exported function.
func (sb *Sandbox) Call(name string, args ...uint64) ([]uint64, error) {
	return sb.inst.Invoke(name, args...)
}

// Stats returns the accumulated machine counters.
func (sb *Sandbox) Stats() cpu.Stats { return sb.inst.Mach.Stats }

// SimulatedNanos returns the simulated wall-clock time consumed so far.
func (sb *Sandbox) SimulatedNanos() float64 {
	return sb.inst.Mach.Stats.Nanos(&sb.inst.Mach.Cost)
}

// MemRead copies linear-memory contents (for inspecting results).
func (sb *Sandbox) MemRead(addr uint32, n uint32) ([]byte, error) {
	hc := &rt.HostCall{Inst: sb.inst}
	return hc.MemRead(addr, n)
}

// MemWrite fills linear memory (for staging inputs).
func (sb *Sandbox) MemWrite(addr uint32, data []byte) error {
	hc := &rt.HostCall{Inst: sb.inst}
	return hc.MemWrite(addr, data)
}

// Close releases the sandbox's pool slot back to its backend, if any.
func (sb *Sandbox) Close() error {
	return sb.inst.Close()
}

// Slot returns the sandbox's isolation slot (the zero Slot for
// standalone sandboxes).
func (sb *Sandbox) Slot() isolation.Slot { return sb.inst.Slot() }

// PoolOptions configures a sandbox pool.
type PoolOptions struct {
	// MaxMemoryBytes caps each sandbox's linear memory (must cover the
	// modules instantiated into the pool).
	MaxMemoryBytes uint64

	// GuardBytes is the guard requirement between identically-colored
	// sandboxes; 0 selects 4 GiB-equivalent protection scaled to the
	// slot size.
	GuardBytes uint64

	// Slots is the slot count; 0 fills TotalBytes.
	Slots int

	// TotalBytes caps the pool reservation (required when Slots is 0).
	TotalBytes uint64

	// Keys is the number of MPK keys to stripe with (0 disables
	// ColorGuard and falls back to pure guard regions). Only meaningful
	// for the ColorGuard backend.
	Keys int

	// Backend selects the isolation mechanism protecting the pool's
	// slots; empty selects ColorGuard when Keys > 0, guard pages
	// otherwise (the historical behavior).
	Backend isolation.Kind

	// Processes deals slots across this many OS processes (multi-process
	// backend only); 0 selects 1.
	Processes int

	// PreserveTagsOnMadvise models the proposed tag-preserving
	// madvise(MADV_DONTNEED) (MTE backend only, §7): recycling keeps
	// granule tags, so slot reuse needs no re-tagging.
	PreserveTagsOnMadvise bool
}

// Pool is a pooling allocator: one shared simulated address space
// packing sandboxes, protected by an isolation backend (MPK striping,
// MTE tagging, guard pages, or process separation).
type Pool struct {
	eng *Engine
	b   isolation.Backend
}

// NewPool reserves a pool.
func (e *Engine) NewPool(o PoolOptions) (*Pool, error) {
	if o.MaxMemoryBytes == 0 {
		return nil, errors.New("core: PoolOptions.MaxMemoryBytes required")
	}
	guard := o.GuardBytes
	if guard == 0 {
		guard = 4 << 30
	}
	kind := o.Backend
	if kind == "" {
		if o.Keys > 0 {
			kind = isolation.ColorGuard
		} else {
			kind = isolation.GuardPage
		}
	}
	b, err := isolation.NewReserved(kind, mem.NewAS(47), isolation.Config{
		Slots:                 o.Slots,
		MaxMemoryBytes:        o.MaxMemoryBytes,
		GuardBytes:            guard,
		TotalBytes:            o.TotalBytes,
		Keys:                  o.Keys,
		Processes:             o.Processes,
		PreserveTagsOnMadvise: o.PreserveTagsOnMadvise,
	})
	if err != nil {
		return nil, err
	}
	if err := b.CheckIsolation(); err != nil {
		return nil, fmt.Errorf("core: pool striping unsafe: %w", err)
	}
	return &Pool{eng: e, b: b}, nil
}

// Capacity returns the pool's total slot count.
func (p *Pool) Capacity() int { return p.b.Capacity() }

// Available returns the free slot count.
func (p *Pool) Available() int { return p.b.Available() }

// Stripes returns the number of colors in use.
func (p *Pool) Stripes() int { return p.b.Layout().NumStripes }

// Backend exposes the pool's isolation backend (for cost accounting
// and tests).
func (p *Pool) Backend() isolation.Backend { return p.b }

// Instantiate creates a sandbox inside the pool: its linear memory is
// a slot colored by the pool's backend, and every call applies the
// backend's transition behavior (e.g. restricting PKRU to the slot's
// color under ColorGuard).
func (p *Pool) Instantiate(cm *CompiledModule, hosts map[string]HostFunc) (*Sandbox, error) {
	need := uint64(cm.mod.IR.MemMin) * ir.PageSize
	maxNeed := uint64(cm.mod.IR.MemMax) * ir.PageSize
	if maxNeed > p.b.Layout().MaxMemoryBytes {
		return nil, fmt.Errorf("core: module needs %d bytes, pool slots hold %d", maxNeed, p.b.Layout().MaxMemoryBytes)
	}
	slot, err := p.b.Allocate(need)
	if err != nil {
		return nil, err
	}
	inst, err := rt.NewInstance(cm.mod, rt.InstanceOptions{
		Hosts:    hosts,
		FSGSBASE: p.eng.fsgsbase,
		Place:    isolation.Place(p.b, slot),
	})
	if err != nil {
		_ = p.b.Recycle(slot)
		return nil, err
	}
	return &Sandbox{inst: inst}, nil
}

// PkruFor exposes the PKRU value used when entering a sandbox with the
// given color (for inspection and tests).
func PkruFor(key uint8) uint32 { return colorguard.PkruFor(key) }
