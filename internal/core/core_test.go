package core

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isolation"
)

func sumModule() *ir.Module {
	m := ir.NewModule("sum", 1, 1)
	fb := m.NewFunc("sum", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(2).Get(1).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("sum")
	return m
}

func TestEngineRoundtrip(t *testing.T) {
	for _, o := range []Options{
		{},
		{Segue: true},
		{BoundsChecks: true},
		{Segue: true, BoundsChecks: true},
		{Segue: true, Vectorize: true},
	} {
		eng := NewEngine(Options{Segue: o.Segue, BoundsChecks: o.BoundsChecks, Vectorize: o.Vectorize, FSGSBASE: true})
		cm, err := eng.Compile(sumModule())
		if err != nil {
			t.Fatalf("%+v: compile: %v", o, err)
		}
		sb, err := eng.Instantiate(cm, nil)
		if err != nil {
			t.Fatalf("%+v: instantiate: %v", o, err)
		}
		res, err := sb.Call("sum", 100)
		if err != nil {
			t.Fatalf("%+v: call: %v", o, err)
		}
		if res[0] != 4950 {
			t.Fatalf("%+v: sum(100) = %d", o, res[0])
		}
		if sb.Stats().Insts == 0 || sb.SimulatedNanos() <= 0 {
			t.Errorf("%+v: no stats accumulated", o)
		}
	}
}

func TestSegueIsFaster(t *testing.T) {
	run := func(segue bool) float64 {
		eng := NewEngine(Options{Segue: segue, FSGSBASE: true})
		cm, _ := eng.Compile(memHeavyModule())
		sb, _ := eng.Instantiate(cm, nil)
		if _, err := sb.Call("run", 50000); err != nil {
			t.Fatal(err)
		}
		return sb.SimulatedNanos()
	}
	guard, segue := run(false), run(true)
	if segue >= guard {
		t.Errorf("segue (%f ns) should beat classic SFI (%f ns) on memory-heavy code", segue, guard)
	}
}

func memHeavyModule() *ir.Module {
	m := ir.NewModule("memheavy", 2, 2)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		// arr[b + i*4 mod 64K] pattern
		fb.Get(1).I32(1023).I32And().I32(2).I32Shl().Get(3).I32Add()
		fb.I32Load(0)
		fb.Get(2).I32Add().Set(2)
		fb.Get(1).I32(511).I32And().I32(2).I32Shl().Get(3).I32Add()
		fb.Get(2)
		fb.I32Store(4096)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("run")
	return m
}

func TestHostBinding(t *testing.T) {
	m := ir.NewModule("host", 1, 1)
	h := m.AddImport("env.double", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb := m.NewFunc("f", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).Call(h)
	fb.MustBuild()
	m.MustExport("f")

	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eng.Instantiate(cm, map[string]HostFunc{
		"env.double": func(hc *HostCall) (uint64, error) { return hc.Args[0] * 2, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.Call("f", 21)
	if err != nil || res[0] != 42 {
		t.Fatalf("f(21) = %v, %v", res, err)
	}
}

func TestPoolLifecycle(t *testing.T) {
	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	p, err := eng.NewPool(PoolOptions{
		MaxMemoryBytes: 1 << 20,
		GuardBytes:     8 << 20,
		Slots:          32,
		Keys:           15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stripes() < 2 {
		t.Fatalf("expected striping, got %d stripes", p.Stripes())
	}
	cm, err := eng.Compile(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	var boxes []*Sandbox
	for i := 0; i < 8; i++ {
		sb, err := p.Instantiate(cm, nil)
		if err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		res, err := sb.Call("sum", uint64(10*(i+1)))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want := uint64(10*(i+1)) * (uint64(10*(i+1)) - 1) / 2
		if res[0] != want {
			t.Fatalf("box %d: sum = %d, want %d", i, res[0], want)
		}
		boxes = append(boxes, sb)
	}
	if p.Available() != 32-8 {
		t.Fatalf("available = %d", p.Available())
	}
	for _, sb := range boxes {
		sb.Close()
	}
	if p.Available() != 32 {
		t.Fatalf("after close, available = %d", p.Available())
	}
}

func TestPoolExhaustionAndOversize(t *testing.T) {
	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	p, err := eng.NewPool(PoolOptions{MaxMemoryBytes: 128 << 10, GuardBytes: 1 << 20, Slots: 2, Keys: 15})
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := eng.Compile(sumModule())
	a, err := p.Instantiate(cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instantiate(cm, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instantiate(cm, nil); err == nil {
		t.Fatal("third instantiate should exhaust the 2-slot pool")
	}
	a.Close()
	if _, err := p.Instantiate(cm, nil); err != nil {
		t.Fatalf("after close: %v", err)
	}

	// A module whose max memory exceeds the slot size is rejected.
	big := ir.NewModule("big", 1, 64) // max 4 MiB > 128 KiB slots
	fb := big.NewFunc("f", ir.Sig(nil, nil))
	fb.MustBuild()
	big.MustExport("f")
	bm, err := eng.Compile(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instantiate(bm, nil); err == nil {
		t.Fatal("oversized module accepted into pool")
	}
}

// TestPoolIsolation: a sandbox in a striped pool cannot reach its
// neighbor's memory even with a corrupted access — the trap is an MPK
// fault, not silent corruption.
func TestPoolIsolation(t *testing.T) {
	m := ir.NewModule("oob", 1, 1)
	fb := m.NewFunc("rd", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}))
	fb.Get(0).I32Load(0)
	fb.MustBuild()
	m.MustExport("rd")

	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	p, err := eng.NewPool(PoolOptions{MaxMemoryBytes: 64 << 10, GuardBytes: 512 << 10, Slots: 16, Keys: 15})
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := eng.Compile(m)
	a, err := p.Instantiate(cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Instantiate(cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Write a secret into b's memory, then have a read past its own
	// memory at the distance of b's slot.
	if err := b.MemWrite(16, []byte{0xAA, 0xBB, 0xCC, 0xDD}); err != nil {
		t.Fatal(err)
	}
	delta := b.Slot().Addr - a.Slot().Addr
	_, err = a.Call("rd", delta+16)
	var trap *cpu.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("cross-slot read returned %v, want a trap", err)
	}
	if trap.Kind != cpu.TrapPkey && trap.Kind != cpu.TrapPageFault {
		t.Fatalf("trap kind = %v, want pkey or guard fault", trap.Kind)
	}
}

// TestPoolBackends: every isolation backend serves as a pool substrate
// through the same Instantiate/Call/Close lifecycle, and Close recycles
// the slot back to the backend.
func TestPoolBackends(t *testing.T) {
	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	cm, err := eng.Compile(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range isolation.Kinds() {
		opts := PoolOptions{
			MaxMemoryBytes: 128 << 10, GuardBytes: 1 << 20, Slots: 4,
			Backend: kind,
		}
		if kind == isolation.ColorGuard {
			opts.Keys = 4
		}
		if kind == isolation.MultiProc {
			opts.Processes = 2
		}
		p, err := eng.NewPool(opts)
		if err != nil {
			t.Fatalf("%s: pool: %v", kind, err)
		}
		if p.Backend().Kind() != kind {
			t.Fatalf("%s: backend kind = %s", kind, p.Backend().Kind())
		}
		sb, err := p.Instantiate(cm, nil)
		if err != nil {
			t.Fatalf("%s: instantiate: %v", kind, err)
		}
		res, err := sb.Call("sum", 10)
		if err != nil {
			t.Fatalf("%s: call: %v", kind, err)
		}
		if res[0] != 45 {
			t.Fatalf("%s: sum = %d, want 45", kind, res[0])
		}
		switch kind {
		case isolation.ColorGuard:
			if sb.Slot().Pkey == 0 {
				t.Fatalf("%s: slot has no MPK color", kind)
			}
		case isolation.MTE:
			if sb.Slot().Tag == 0 {
				t.Fatalf("%s: slot has no MTE tag", kind)
			}
		}
		if p.Available() != 3 {
			t.Fatalf("%s: available = %d, want 3", kind, p.Available())
		}
		if err := sb.Close(); err != nil {
			t.Fatalf("%s: close: %v", kind, err)
		}
		if p.Available() != 4 {
			t.Fatalf("%s: available after close = %d, want 4", kind, p.Available())
		}
		if err := sb.Close(); err != nil {
			t.Fatalf("%s: second close should be a no-op, got %v", kind, err)
		}
		initNs, teardownNs := p.Backend().LifecycleNs()
		if initNs <= 0 || teardownNs <= 0 {
			t.Fatalf("%s: lifecycle accounting init=%v teardown=%v, want positive", kind, initNs, teardownNs)
		}
	}
}

// TestPoolBackendDefault: the historical API — Keys selects ColorGuard,
// no Keys selects guard pages — still picks the right backend.
func TestPoolBackendDefault(t *testing.T) {
	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	p, err := eng.NewPool(PoolOptions{MaxMemoryBytes: 128 << 10, GuardBytes: 1 << 20, Slots: 4, Keys: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend().Kind() != isolation.ColorGuard {
		t.Fatalf("Keys>0 backend = %s, want colorguard", p.Backend().Kind())
	}
	p, err = eng.NewPool(PoolOptions{MaxMemoryBytes: 128 << 10, GuardBytes: 1 << 20, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend().Kind() != isolation.GuardPage {
		t.Fatalf("no-Keys backend = %s, want guardpage", p.Backend().Kind())
	}
}

// TestPooledGrow: memory.grow inside a pooled sandbox routes through the
// backend and keeps the slot's coloring on the grown pages.
func TestPooledGrow(t *testing.T) {
	m := ir.NewModule("grow", 1, 4)
	fb := m.NewFunc("f", ir.Sig(nil, []ir.ValType{ir.I32}), ir.I32)
	fb.I32(2).MemGrow().Set(0)
	fb.I32(ir.PageSize + 100).I32(7).I32Store(0)
	fb.I32(ir.PageSize + 100).I32Load(0)
	fb.MustBuild()
	m.MustExport("f")

	eng := NewEngine(Options{Segue: true, FSGSBASE: true})
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.NewPool(PoolOptions{MaxMemoryBytes: 256 << 10, GuardBytes: 1 << 20, Slots: 4, Keys: 4})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := p.Instantiate(cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 {
		t.Fatalf("read after grow = %d, want 7", res[0])
	}
	// The grown pages carry the slot's color.
	if v, ok := p.Backend().AS().VMAAt(sb.Slot().Addr + uint64(ir.PageSize)); !ok || v.Pkey != sb.Slot().Pkey {
		t.Fatalf("grown page pkey = %d, want %d", v.Pkey, sb.Slot().Pkey)
	}
}
