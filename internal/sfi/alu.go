package sfi

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/x86"
)

// aluOpFor maps straightforward IR binops to x86 opcodes.
var aluOpFor = map[ir.Op]x86.Op{
	ir.OpI32Add: x86.ADD, ir.OpI32Sub: x86.SUB, ir.OpI32Mul: x86.IMUL,
	ir.OpI32And: x86.AND, ir.OpI32Or: x86.OR, ir.OpI32Xor: x86.XOR,
	ir.OpI32Shl: x86.SHL, ir.OpI32ShrS: x86.SAR, ir.OpI32ShrU: x86.SHR,
	ir.OpI32Rotl: x86.ROL, ir.OpI32Rotr: x86.ROR,
	ir.OpI64Add: x86.ADD, ir.OpI64Sub: x86.SUB, ir.OpI64Mul: x86.IMUL,
	ir.OpI64And: x86.AND, ir.OpI64Or: x86.OR, ir.OpI64Xor: x86.XOR,
	ir.OpI64Shl: x86.SHL, ir.OpI64ShrS: x86.SAR, ir.OpI64ShrU: x86.SHR,
	ir.OpI64Rotl: x86.ROL, ir.OpI64Rotr: x86.ROR,
}

// condFor maps IR comparisons to x86 condition codes (for CMP a, b).
var condFor = map[ir.Op]x86.Cond{
	ir.OpI32Eq: x86.CondE, ir.OpI32Ne: x86.CondNE,
	ir.OpI32LtS: x86.CondL, ir.OpI32LtU: x86.CondB,
	ir.OpI32GtS: x86.CondG, ir.OpI32GtU: x86.CondA,
	ir.OpI32LeS: x86.CondLE, ir.OpI32LeU: x86.CondBE,
	ir.OpI32GeS: x86.CondGE, ir.OpI32GeU: x86.CondAE,
	ir.OpI64Eq: x86.CondE, ir.OpI64Ne: x86.CondNE,
	ir.OpI64LtS: x86.CondL, ir.OpI64LtU: x86.CondB,
	ir.OpI64GtS: x86.CondG, ir.OpI64GtU: x86.CondA,
	ir.OpI64LeS: x86.CondLE, ir.OpI64LeU: x86.CondBE,
	ir.OpI64GeS: x86.CondGE, ir.OpI64GeU: x86.CondAE,
	// f64 via UCOMISD: unsigned flags.
	ir.OpF64Eq: x86.CondE, ir.OpF64Ne: x86.CondNE,
	ir.OpF64Lt: x86.CondB, ir.OpF64Gt: x86.CondA,
	ir.OpF64Le: x86.CondBE, ir.OpF64Ge: x86.CondAE,
}

var fbinOpFor = map[ir.Op]x86.Op{
	ir.OpF64Add: x86.ADDSD, ir.OpF64Sub: x86.SUBSD, ir.OpF64Mul: x86.MULSD,
	ir.OpF64Div: x86.DIVSD, ir.OpF64Min: x86.MINSD, ir.OpF64Max: x86.MAXSD,
}

// fuseAhead reports whether the next IR instruction consumes a
// comparison directly (compare/branch fusion).
func (fc *fnc) fuseAhead(pc int) bool {
	if pc+1 >= len(fc.f.Body) {
		return false
	}
	switch fc.f.Body[pc+1].Op {
	case ir.OpBrIf, ir.OpIf, ir.OpSelect:
		return true
	}
	return false
}

// memopAfter reports whether the value produced at pc feeds a memory
// access directly: either the next instruction is a load, or the next
// pushes a simple value (const/local.get) and the one after is a store.
func (fc *fnc) memopAfter(pc int) bool {
	body := fc.f.Body
	if pc+1 >= len(body) {
		return false
	}
	n1 := body[pc+1].Op
	if n1.IsLoad() || n1.IsStore() {
		return true
	}
	if (n1 == ir.OpI32Const || n1 == ir.OpI64Const || n1 == ir.OpF64Const || n1 == ir.OpLocalGet) &&
		pc+2 < len(body) && body[pc+2].Op.IsStore() {
		return true
	}
	return false
}

// foldConst evaluates a binop on two integer constants.
func foldConst(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpI32Add:
		return int64(uint32(a) + uint32(b)), true
	case ir.OpI32Sub:
		return int64(uint32(a) - uint32(b)), true
	case ir.OpI32Mul:
		return int64(uint32(a) * uint32(b)), true
	case ir.OpI32And:
		return a & b, true
	case ir.OpI32Or:
		return a | b, true
	case ir.OpI32Xor:
		return int64(uint32(a) ^ uint32(b)), true
	case ir.OpI32Shl:
		return int64(uint32(a) << (uint32(b) & 31)), true
	case ir.OpI64Add:
		return a + b, true
	case ir.OpI64Sub:
		return a - b, true
	case ir.OpI64Mul:
		return a * b, true
	case ir.OpI64And:
		return a & b, true
	case ir.OpI64Or:
		return a | b, true
	case ir.OpI64Xor:
		return a ^ b, true
	}
	return 0, false
}

func (fc *fnc) compileALU(pc int, in ir.Inst) error {
	o := in.Op
	switch {
	case o == ir.OpI32Eqz || o == ir.OpI64Eqz:
		w := x86.W32
		if o == ir.OpI64Eqz {
			w = x86.W64
		}
		r, _ := fc.popReg(false)
		fc.emit(x86.Inst{Op: x86.CMP, W: w, Dst: x86.R(r), Src: x86.Imm(0)})
		fc.pushCmpResult(pc, x86.CondE)
		return nil

	case condFor[o] != 0 && ((o >= ir.OpI32Eq && o <= ir.OpI32GeU) || (o >= ir.OpI64Eq && o <= ir.OpI64GeU)):
		w := x86.W32
		if o >= ir.OpI64Eq {
			w = x86.W64
		}
		n := len(fc.vstack)
		if top := fc.vstack[n-1]; top.kind == lConst && fitsImm32(top.imm) {
			fc.pop()
			a := fc.ensureReg(n-2, false)
			fc.pop()
			fc.emit(x86.Inst{Op: x86.CMP, W: w, Dst: x86.R(a), Src: x86.Imm(top.imm)})
		} else {
			fc.ensureReg(n-1, false)
			a := fc.ensureReg(n-2, false)
			b := fc.ensureReg(n-1, false)
			fc.vstack = fc.vstack[:n-2]
			fc.emit(x86.Inst{Op: x86.CMP, W: w, Dst: x86.R(a), Src: x86.R(b)})
		}
		fc.pushCmpResult(pc, condFor[o])
		return nil

	case o >= ir.OpF64Eq && o <= ir.OpF64Ge:
		n := len(fc.vstack)
		fc.ensureXmm(n-1, false)
		a := fc.ensureXmm(n-2, false)
		b := fc.ensureXmm(n-1, false)
		fc.vstack = fc.vstack[:n-2]
		fc.emit(x86.Inst{Op: x86.UCOMISD, Dst: x86.X(a), Src: x86.X(b)})
		fc.pushCmpResult(pc, condFor[o])
		return nil

	case o == ir.OpI32DivS || o == ir.OpI32DivU || o == ir.OpI32RemS || o == ir.OpI32RemU ||
		o == ir.OpI64DivS || o == ir.OpI64DivU || o == ir.OpI64RemS || o == ir.OpI64RemU:
		return fc.compileDivRem(o)

	case o == ir.OpI32Clz || o == ir.OpI64Clz:
		return fc.unaryBit(x86.LZCNT, o == ir.OpI64Clz)
	case o == ir.OpI32Ctz || o == ir.OpI64Ctz:
		return fc.unaryBit(x86.TZCNT, o == ir.OpI64Ctz)
	case o == ir.OpI32Popcnt || o == ir.OpI64Popcnt:
		return fc.unaryBit(x86.POPCNT, o == ir.OpI64Popcnt)

	case aluOpFor[o] != 0:
		return fc.compileIntBin(pc, in)

	case fbinOpFor[o] != 0:
		n := len(fc.vstack)
		fc.ensureXmm(n-1, false)
		a := fc.ensureXmm(n-2, true)
		b := fc.ensureXmm(n-1, false)
		fc.vstack = fc.vstack[:n-2]
		fc.emit(x86.Inst{Op: fbinOpFor[o], Dst: x86.X(a), Src: x86.X(b)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: a})
		return nil

	case o == ir.OpF64Sqrt || o == ir.OpF64Abs || o == ir.OpF64Neg:
		a := fc.popXmm(true)
		switch o {
		case ir.OpF64Sqrt:
			fc.emit(x86.Inst{Op: x86.SQRTSD, Dst: x86.X(a), Src: x86.X(a)})
		case ir.OpF64Abs:
			fc.emit(x86.Inst{Op: x86.ABSSD, Dst: x86.X(a)})
		case ir.OpF64Neg:
			fc.emit(x86.Inst{Op: x86.NEGSD, Dst: x86.X(a)})
		}
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: a})
		return nil

	default:
		return fc.compileConvert(pc, in)
	}
}

// pushCmpResult pushes either a fused flags value or a SETcc result.
func (fc *fnc) pushCmpResult(pc int, c x86.Cond) {
	if fc.fuseAhead(pc) {
		fc.push(loc{kind: lFlags, typ: ir.I32, imm: int64(c)})
		return
	}
	r := fc.allocGPR()
	fc.emit(x86.Inst{Op: x86.SETCC, Cond: c, Dst: x86.R(r)})
	fc.pushReg(r, ir.I32)
}

func fitsImm32(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// compileIntBin lowers add/sub/mul/logic/shift/rotate, including the
// address-folding lookahead that creates pending-address pairs for
// Segue's extra operand slot (and Guard's single-LEA form).
func (fc *fnc) compileIntBin(pc int, in ir.Inst) error {
	o := in.Op
	is64 := o >= ir.OpI64Add
	w := x86.W32
	t := ir.I32
	if is64 {
		w, t = x86.W64, ir.I64
	}
	n := len(fc.vstack)
	a, b := &fc.vstack[n-2], &fc.vstack[n-1]

	// Constant folding.
	if a.kind == lConst && b.kind == lConst {
		if v, ok := foldConst(o, a.imm, b.imm); ok {
			fc.vstack = fc.vstack[:n-2]
			fc.push(loc{kind: lConst, typ: t, imm: v})
			return nil
		}
	}

	// Address-pair formation for i32.add feeding a memory access.
	if o == ir.OpI32Add && fc.memopAfter(pc) {
		if p := fc.tryFormPair(); p {
			return nil
		}
	}
	// Scaled-index formation: i32.shl x, c (c in 1..3) or i32.mul by
	// 2/4/8, followed — possibly after one simple push (local.get or
	// const, the other add operand) — by an i32.add feeding a memory
	// access.
	scaledAhead := func() bool {
		body := fc.f.Body
		if pc+1 >= len(body) {
			return false
		}
		if body[pc+1].Op == ir.OpI32Add && fc.memopAfter(pc+1) {
			return true
		}
		if (body[pc+1].Op == ir.OpLocalGet || body[pc+1].Op == ir.OpI32Const) &&
			pc+2 < len(body) && body[pc+2].Op == ir.OpI32Add && fc.memopAfter(pc+2) {
			return true
		}
		return false
	}
	if (o == ir.OpI32Shl || o == ir.OpI32Mul) && b.kind == lConst && scaledAhead() {
		var scale uint8
		if o == ir.OpI32Shl {
			switch b.imm {
			case 1:
				scale = 2
			case 2:
				scale = 4
			case 3:
				scale = 8
			}
		} else {
			switch b.imm {
			case 2, 4, 8:
				scale = uint8(b.imm)
			}
		}
		if scale != 0 && a.kind != lPair && a.kind != lFlags {
			fc.pop() // const
			r := fc.ensureReg(n-2, false)
			fc.pop()
			fc.push(loc{kind: lPair, typ: ir.I32, base: x86.RegNone, index: r, scale: scale})
			return nil
		}
	}

	// Immediate-operand form.
	if b.kind == lConst && fitsImm32(b.imm) {
		imm := b.imm
		fc.pop()
		ra := fc.ensureReg(len(fc.vstack)-1, true)
		fc.pop()
		fc.emit(x86.Inst{Op: aluOpFor[o], W: w, Dst: x86.R(ra), Src: x86.Imm(imm)})
		fc.pushReg(ra, t)
		return nil
	}

	// Register-register form.
	fc.ensureReg(n-1, false)
	ra := fc.ensureReg(n-2, true)
	rb := fc.ensureReg(n-1, false)
	fc.vstack = fc.vstack[:n-2]
	fc.emit(x86.Inst{Op: aluOpFor[o], W: w, Dst: x86.R(ra), Src: x86.R(rb)})
	fc.pushReg(ra, t)
	return nil
}

// tryFormPair attempts to turn the two top i32 entries (operands of an
// i32.add that feeds a memory op) into a pending-address pair. Returns
// false when the shapes don't allow it.
func (fc *fnc) tryFormPair() bool {
	n := len(fc.vstack)
	a, b := &fc.vstack[n-2], &fc.vstack[n-1]
	// scaled + const -> index*scale + disp.
	if a.kind == lPair && a.base == x86.RegNone && a.disp == 0 &&
		b.kind == lConst && b.imm >= 0 && b.imm <= 32767 {
		disp := int32(b.imm)
		idx, scale := a.index, a.scale
		fc.vstack = fc.vstack[:n-2]
		fc.push(loc{kind: lPair, typ: ir.I32, base: x86.RegNone, index: idx, scale: scale, disp: disp})
		return true
	}
	// reg + const -> base+disp.
	if b.kind == lConst && b.imm >= 0 && b.imm <= 32767 && a.kind != lPair && a.kind != lFlags {
		disp := int32(b.imm)
		fc.pop()
		r := fc.ensureReg(n-2, false)
		fc.pop()
		fc.push(loc{kind: lPair, typ: ir.I32, base: r, disp: disp})
		return true
	}
	if a.kind == lConst && a.imm >= 0 && a.imm <= 32767 && b.kind != lPair && b.kind != lFlags {
		disp := int32(a.imm)
		r := fc.ensureReg(n-1, false)
		fc.vstack = fc.vstack[:n-2]
		fc.push(loc{kind: lPair, typ: ir.I32, base: r, disp: disp})
		return true
	}
	// scaled + reg or reg + scaled -> base + index*scale. The base must
	// be materialized while the pair is still on the stack, or the
	// pair's index register loses its protection and can be claimed as
	// the base's scratch register.
	if b.kind == lPair && b.base == x86.RegNone && a.kind != lPair && a.kind != lFlags && a.kind != lConst {
		r := fc.ensureReg(n-2, false)
		if bb := &fc.vstack[n-1]; bb.kind == lPair && bb.base == x86.RegNone {
			idx, scale := bb.index, bb.scale
			fc.vstack = fc.vstack[:n-2]
			fc.push(loc{kind: lPair, typ: ir.I32, base: r, index: idx, scale: scale})
			return true
		}
		// The pair was spilled while materializing the base; fall
		// through to the generic handling below.
		a, b = &fc.vstack[n-2], &fc.vstack[n-1]
	}
	if a.kind == lPair && a.base == x86.RegNone && b.kind != lPair && b.kind != lFlags && b.kind != lConst {
		r := fc.ensureReg(n-1, false)
		idx, scale := a.index, a.scale
		fc.vstack = fc.vstack[:n-2]
		fc.push(loc{kind: lPair, typ: ir.I32, base: r, index: idx, scale: scale})
		return true
	}
	// reg + reg -> base + index*1.
	if a.kind != lPair && a.kind != lFlags && a.kind != lConst &&
		b.kind != lPair && b.kind != lFlags && b.kind != lConst {
		fc.ensureReg(n-1, false)
		ra := fc.ensureReg(n-2, false)
		rb := fc.ensureReg(n-1, false)
		fc.vstack = fc.vstack[:n-2]
		fc.push(loc{kind: lPair, typ: ir.I32, base: ra, index: rb, scale: 1})
		return true
	}
	return false
}

// unaryBit lowers clz/ctz/popcnt.
func (fc *fnc) unaryBit(op x86.Op, is64 bool) error {
	w := x86.W32
	t := ir.I32
	if is64 {
		w, t = x86.W64, ir.I64
	}
	a, _ := fc.popReg(true)
	fc.emit(x86.Inst{Op: op, W: w, Dst: x86.R(a), Src: x86.R(a)})
	fc.pushReg(a, t)
	return nil
}

// allocGPRExcl allocates a scratch register outside the excluded set.
func (fc *fnc) allocGPRExcl(excl ...x86.Reg) x86.Reg {
	bad := func(r x86.Reg) bool {
		for _, e := range excl {
			if e == r {
				return true
			}
		}
		return false
	}
	for _, r := range fc.scratch {
		if !bad(r) && !fc.regInUse(r) {
			return r
		}
	}
	for i := range fc.vstack {
		k := fc.vstack[i].kind
		if k == lReg || k == lPair {
			if k == lReg && bad(fc.vstack[i].reg) {
				continue
			}
			fc.spillEntry(i)
			return fc.allocGPRExcl(excl...)
		}
	}
	panic("sfi: no register available outside exclusion set")
}

// compileDivRem lowers division through the RAX/RDX convention.
func (fc *fnc) compileDivRem(o ir.Op) error {
	is64 := o >= ir.OpI64DivS
	signed := o == ir.OpI32DivS || o == ir.OpI32RemS || o == ir.OpI64DivS || o == ir.OpI64RemS
	isRem := o == ir.OpI32RemS || o == ir.OpI32RemU || o == ir.OpI64RemS || o == ir.OpI64RemU
	w := x86.W32
	t := ir.I32
	if is64 {
		w, t = x86.W64, ir.I64
	}
	n := len(fc.vstack)
	// Evict unrelated values from RAX/RDX.
	for i := 0; i < n-2; i++ {
		l := &fc.vstack[i]
		if l.kind == lReg && (l.reg == x86.RAX || l.reg == x86.RDX) {
			fc.spillEntry(i)
		}
		if l.kind == lPair && (l.base == x86.RAX || l.base == x86.RDX ||
			(l.scale != 0 && (l.index == x86.RAX || l.index == x86.RDX))) {
			fc.spillEntry(i)
		}
	}
	// Divisor must avoid RAX/RDX.
	rb := fc.ensureReg(n-1, false)
	if rb == x86.RAX || rb == x86.RDX {
		nr := fc.allocGPRExcl(x86.RAX, x86.RDX)
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(nr), Src: x86.R(rb)})
		fc.vstack[n-1] = loc{kind: lReg, typ: t, reg: nr}
		rb = nr
	}
	ra := fc.ensureReg(n-2, false)
	rb = fc.ensureReg(n-1, false)
	fc.vstack = fc.vstack[:n-2]
	if ra != x86.RAX {
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(x86.RAX), Src: x86.R(ra)})
	}
	if signed {
		fc.emit(x86.Inst{Op: x86.CQO, W: w})
		fc.emit(x86.Inst{Op: x86.IDIV, W: w, Dst: x86.R(rb)})
	} else {
		fc.emit(x86.Inst{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RDX), Src: x86.R(x86.RDX)})
		fc.emit(x86.Inst{Op: x86.DIV, W: w, Dst: x86.R(rb)})
	}
	// Wasm rem_s of MinInt/-1 is 0 (no trap); the hardware IDIV traps on
	// that case, so engines emit a check. Our machine IDIV models the
	// checked engine sequence for div_s; for rem_s the kernels avoid the
	// corner (documented).
	if isRem {
		fc.pushReg(x86.RDX, t)
	} else {
		fc.pushReg(x86.RAX, t)
	}
	return nil
}

// compileConvert lowers conversion operators.
func (fc *fnc) compileConvert(pc int, in ir.Inst) error {
	switch in.Op {
	case ir.OpI32WrapI64:
		n := len(fc.vstack)
		l := &fc.vstack[n-1]
		if l.kind == lConst {
			l.imm = int64(uint32(l.imm))
			l.typ = ir.I32
			return nil
		}
		// In Segue and Native modes a wrapped value feeding a memory
		// access truncates for free via the address-size override
		// (Figure 1, pattern 1); under the signed-offset scheme the
		// access site sign-extends it instead (§5.1). Otherwise
		// truncate explicitly here.
		freeTrunc := (fc.cfg.Mode.usesSegment() || fc.cfg.Mode == ModeNative || fc.cfg.SignedOffset) &&
			fc.memopAfter(pc)
		if freeTrunc {
			l.typ = ir.I32
			l.dirty = true
			return nil
		}
		r := fc.ensureReg(n-1, true)
		fc.pop()
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
		fc.pushReg(r, ir.I32)
		return nil

	case ir.OpI64ExtendI32U:
		n := len(fc.vstack)
		l := &fc.vstack[n-1]
		if l.kind == lConst {
			l.imm = int64(uint32(l.imm))
			l.typ = ir.I64
			return nil
		}
		r := fc.ensureReg(n-1, true)
		fc.pop()
		if l.dirty {
			fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
		}
		fc.pushReg(r, ir.I64)
		return nil

	case ir.OpI64ExtendI32S:
		src, _ := fc.popReg(false)
		dst := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.MOVSX, W: x86.W64, SrcW: x86.W32, Dst: x86.R(dst), Src: x86.R(src)})
		fc.pushReg(dst, ir.I64)
		return nil

	case ir.OpF64ConvertI32S:
		r, _ := fc.popReg(false)
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: x86.CVTSI2SD, W: x86.W32, Dst: x86.X(x), Src: x86.R(r)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
		return nil
	case ir.OpF64ConvertI32U:
		// A clean u32 converts exactly via the signed 64-bit form.
		r, _ := fc.popReg(false)
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(x), Src: x86.R(r)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
		return nil
	case ir.OpF64ConvertI64S:
		r, _ := fc.popReg(false)
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(x), Src: x86.R(r)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
		return nil

	case ir.OpI32TruncF64S:
		x := fc.popXmm(false)
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.CVTTSD2SI, W: x86.W32, Dst: x86.R(r), Src: x86.X(x)})
		fc.pushReg(r, ir.I32)
		return nil
	case ir.OpI64TruncF64S:
		x := fc.popXmm(false)
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.CVTTSD2SI, W: x86.W64, Dst: x86.R(r), Src: x86.X(x)})
		fc.pushReg(r, ir.I64)
		return nil

	case ir.OpF64ReinterpretI64:
		r, _ := fc.popReg(false)
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: x86.MOVQRX, Dst: x86.X(x), Src: x86.R(r)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
		return nil
	case ir.OpI64ReinterpretF64:
		x := fc.popXmm(false)
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.MOVQXR, Dst: x86.R(r), Src: x86.X(x)})
		fc.pushReg(r, ir.I64)
		return nil

	default:
		return fmt.Errorf("unimplemented opcode %v", in.Op)
	}
}
