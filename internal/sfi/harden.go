package sfi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Harden selects a Spectre-hardening scheme, orthogonal to the
// isolation Mode the same way a transition scheme is orthogonal to the
// backend. Each scheme lowers to extra modeled instructions (ENDBR,
// BTBFLUSH, INTERLOCK pseudo-ops) whose costs live in the cpu cost
// model, so every execution tier charges them identically and
// HardenNone compiles byte-identical code to a pre-hardening build.
//
// The schemes mirror Swivel ("Swivel: Hardening WebAssembly against
// Spectre") and the deterministic variants from "A Turning Point for
// Verified Spectre Sandboxing":
//
//   - HardenNone — no hardening; the baseline.
//   - HardenSwivelSFI — linear-block CFI on stock hardware: BTB flushes
//     before untrusted indirect transfers (indirect calls, br_table
//     dispatch, returns) plus register interlocks on heap loads and at
//     loop back-edges (block boundaries).
//   - HardenSwivelCET — CET hardware CFI: an endbranch landing pad at
//     every function entry plus load interlocks; no flushes.
//   - HardenDeterministic — verified-SFI-style determinism: endbranch
//     pads plus speculative-load-hardening masks on both loads and
//     stores; no flushes.
type Harden uint8

// Hardening schemes.
const (
	HardenNone Harden = iota
	HardenSwivelSFI
	HardenSwivelCET
	HardenDeterministic
	numHardens
)

var hardenNames = [...]string{"none", "swivel-sfi", "swivel-cet", "deterministic"}

// String returns the scheme name.
func (h Harden) String() string {
	if int(h) < len(hardenNames) {
		return hardenNames[h]
	}
	return fmt.Sprintf("harden(%d)", uint8(h))
}

// ParseHarden resolves a scheme name as accepted by the -harden flags.
func ParseHarden(s string) (Harden, error) {
	for i, name := range hardenNames {
		if s == name {
			return Harden(i), nil
		}
	}
	return HardenNone, fmt.Errorf("unknown harden mode %q (want none, swivel-sfi, swivel-cet, or deterministic)", s)
}

// Hardens returns every scheme, in definition order.
func Hardens() []Harden {
	return []Harden{HardenNone, HardenSwivelSFI, HardenSwivelCET, HardenDeterministic}
}

// flushesIndirect reports whether the scheme pays a BTB flush before
// untrusted indirect transfers (Swivel-SFI on stock hardware).
func (h Harden) flushesIndirect() bool { return h == HardenSwivelSFI }

// endbrEntry reports whether function entries carry a CET endbranch
// landing pad.
func (h Harden) endbrEntry() bool {
	return h == HardenSwivelCET || h == HardenDeterministic
}

// masksLoads reports whether sandbox heap loads carry a register
// interlock / SLH mask.
func (h Harden) masksLoads() bool { return h != HardenNone }

// masksStores reports whether sandbox heap stores are masked too
// (the deterministic variant's full SLH).
func (h Harden) masksStores() bool { return h == HardenDeterministic }

// interlocksBackEdges reports whether loop back-edges terminate a
// linear block with an interlock (Swivel-SFI's block discipline).
func (h Harden) interlocksBackEdges() bool { return h == HardenSwivelSFI }

// defaultHarden is the process-wide default consumed by DefaultConfig,
// set once at CLI startup by -harden (mirrors cpu.SetDefaultTier and
// isolation.SetDefaultScheme).
var defaultHarden atomic.Uint32

// SetDefaultHarden sets the process-wide default hardening scheme.
func SetDefaultHarden(h Harden) { defaultHarden.Store(uint32(h)) }

// DefaultHarden returns the process-wide default hardening scheme.
func DefaultHarden() Harden { return Harden(defaultHarden.Load()) }

// ctrHardens counts compiles per hardening scheme, precomputed so the
// hot Compile path only does an array index + atomic add.
var ctrHardens = func() [numHardens]*telemetry.Counter {
	var cs [numHardens]*telemetry.Counter
	for _, h := range Hardens() {
		cs[h] = telemetry.Default.Counter("sfi.hardens." + h.String())
	}
	return cs
}()
