package sfi

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/x86"
)

// Register conventions for compiled code:
//
//	RSP/RBP  — machine stack / frame pointer (locals, spill slots)
//	R14      — vmctx: per-instance context block (globals, limits)
//	R15      — heap base in modes that pin it; an extra local register
//	           in ModeNative/ModeSegue/ModeBoundsSegue
//	R12, R13, RBX — register-resident locals (callee-saved)
//	others   — scratch pool for the virtual stack
var scratchGPRs = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11,
}

const vmctxReg = x86.R14
const heapReg = x86.R15

// locKind discriminates virtual-stack value locations.
type locKind uint8

const (
	lReg    locKind = iota // integer value in a scratch GPR
	lXmm                   // f64 value in an xmm register
	lSlot                  // value in a frame spill slot
	lConst                 // integer constant
	lFConst                // f64 constant (bits in imm)
	lLocal                 // lazy reference to a local variable
	lPair                  // pending address: base + index*scale + disp
	lFlags                 // pending comparison result in EFLAGS
)

// loc describes where a virtual-stack value currently lives.
type loc struct {
	kind  locKind
	typ   ir.ValType
	reg   x86.Reg
	xmm   x86.Xmm
	slot  int
	imm   int64
	local uint32
	dirty bool // i32 value whose upper 32 register bits are unknown

	// lPair fields.
	base, index x86.Reg
	scale       uint8
	disp        int32
}

// ctl is a control-structure frame during compilation.
type ctl struct {
	isLoop     bool
	isIf       bool
	startLbl   int // loop header label
	elseLbl    int
	endLbl     int
	height     int // vstack height at entry
	hasResult  bool
	resultType ir.ValType
	resultSlot int
}

type fnc struct {
	m       *ir.Module
	f       *ir.Func
	cfg     Config
	meta    *Meta
	scratch []x86.Reg

	insts  []x86.Inst
	labels []int

	vstack []loc
	ctls   []ctl

	localPlace []loc // lReg (pinned) or lSlot per local
	localRegs  []x86.Reg

	slots     int   // high-water slot count
	freeSlots []int // recycled slot indices
	numSaved  int   // callee-saved registers pushed in the prologue

	dead      bool
	deadDepth int

	subIdx    int // prologue SUB RSP instruction index, patched at the end
	epilogLbl int
}

// r15Free reports whether R15 is available to the register allocator.
// Segue frees it unless the mode pins it for control flow (LFI) or
// stores still need it (SegueLoadsOnly). The native baseline has no
// reserved heap register at all.
func (fc *fnc) r15Free() bool {
	if fc.cfg.ReserveR15 {
		return false
	}
	if fc.cfg.Mode == ModeNative {
		return true
	}
	if fc.cfg.Mode.pinsHeapBase() || fc.cfg.SegueLoadsOnly || fc.cfg.Hybrid {
		return false
	}
	return fc.cfg.Mode.usesSegment()
}

func newFnCompiler(m *ir.Module, f *ir.Func, cfg Config, meta *Meta) *fnc {
	fc := &fnc{m: m, f: f, cfg: cfg, meta: meta, scratch: scratchGPRs}
	if cfg.ReserveR15 {
		// The LFI rewriting contract also reserves R11, the rewriter's
		// scratch register.
		fc.scratch = make([]x86.Reg, 0, len(scratchGPRs)-1)
		for _, r := range scratchGPRs {
			if r != x86.R11 {
				fc.scratch = append(fc.scratch, r)
			}
		}
	}
	return fc
}

func (fc *fnc) emit(in x86.Inst) { fc.insts = append(fc.insts, in) }

// harden returns the effective hardening scheme: the configured one,
// except under ModeNative (trusted code is never instrumented).
func (fc *fnc) harden() Harden {
	if fc.cfg.Mode == ModeNative {
		return HardenNone
	}
	return fc.cfg.Harden
}

func (fc *fnc) newLabel() int {
	fc.labels = append(fc.labels, -1)
	return len(fc.labels) - 1
}

func (fc *fnc) bind(lbl int) { fc.labels[lbl] = len(fc.insts) }

func (fc *fnc) jmp(lbl int) { fc.emit(x86.Inst{Op: x86.JMP, Dst: x86.Label(lbl)}) }

func (fc *fnc) jcc(c x86.Cond, lbl int) {
	fc.emit(x86.Inst{Op: x86.JCC, Cond: c, Dst: x86.Label(lbl)})
}

// widthOf maps an IR type to the operation width.
func widthOf(t ir.ValType) x86.Width {
	if t == ir.I32 {
		return x86.W32
	}
	return x86.W64
}

// --- slots ---

func (fc *fnc) newSlot() int {
	if n := len(fc.freeSlots); n > 0 {
		s := fc.freeSlots[n-1]
		fc.freeSlots = fc.freeSlots[:n-1]
		return s
	}
	fc.slots++
	return fc.slots - 1
}

func (fc *fnc) freeSlot(s int) { fc.freeSlots = append(fc.freeSlots, s) }

// slotMem returns the frame address of a spill slot.
func (fc *fnc) slotMem(s int) x86.Mem {
	return x86.Mem{Base: x86.RBP, Disp: int32(-8 * (fc.numSaved + s + 1))}
}

// --- register allocation ---

// regInUse reports whether r is referenced by any vstack entry or
// pinned local.
func (fc *fnc) regInUse(r x86.Reg) bool {
	for i := range fc.vstack {
		l := &fc.vstack[i]
		switch l.kind {
		case lReg:
			if l.reg == r {
				return true
			}
		case lPair:
			if l.base == r || (l.scale != 0 && l.index == r) {
				return true
			}
		}
	}
	for _, lr := range fc.localRegs {
		if lr == r {
			return true
		}
	}
	return false
}

// allocGPR returns a free scratch register, spilling the oldest
// register-resident vstack entry if necessary.
func (fc *fnc) allocGPR() x86.Reg {
	for _, r := range fc.scratch {
		if !fc.regInUse(r) {
			return r
		}
	}
	for i := range fc.vstack {
		if fc.vstack[i].kind == lReg || fc.vstack[i].kind == lPair {
			fc.spillEntry(i)
			return fc.allocGPR()
		}
	}
	panic("sfi: no spillable register (vstack corrupted)")
}

func (fc *fnc) xmmInUse(x x86.Xmm) bool {
	for i := range fc.vstack {
		if fc.vstack[i].kind == lXmm && fc.vstack[i].xmm == x {
			return true
		}
	}
	return false
}

func (fc *fnc) allocXmm() x86.Xmm {
	for x := x86.Xmm(0); x < 14; x++ {
		if !fc.xmmInUse(x) {
			return x
		}
	}
	for i := range fc.vstack {
		if fc.vstack[i].kind == lXmm {
			fc.spillEntry(i)
			return fc.allocXmm()
		}
	}
	panic("sfi: no spillable xmm register")
}

// spillEntry stores vstack entry i to a fresh slot.
func (fc *fnc) spillEntry(i int) {
	l := &fc.vstack[i]
	switch l.kind {
	case lReg:
		s := fc.newSlot()
		fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(l.typ), Dst: x86.M(fc.slotMem(s)), Src: x86.R(l.reg)})
		*l = loc{kind: lSlot, typ: l.typ, slot: s}
	case lPair:
		fc.materializePair(l)
		fc.spillEntry(i)
	case lXmm:
		s := fc.newSlot()
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(s)), Src: x86.X(l.xmm)})
		*l = loc{kind: lSlot, typ: l.typ, slot: s}
	case lFlags:
		fc.materializeFlags(l)
		fc.spillEntry(i)
	case lLocal:
		// Copy the current local value out (the local may change).
		s := fc.newSlot()
		src := fc.localPlace[l.local]
		t := fc.f.LocalType(int(l.local))
		if t == ir.F64 {
			x := fc.allocXmm()
			fc.emitLoadLocalF(src, x)
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(s)), Src: x86.X(x)})
		} else {
			r := fc.allocGPR()
			fc.emitLoadLocal(src, r, t)
			fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(t), Dst: x86.M(fc.slotMem(s)), Src: x86.R(r)})
		}
		*l = loc{kind: lSlot, typ: l.typ, slot: s}
	case lConst, lFConst, lSlot:
		// Stable across control flow; nothing to do.
	}
}

// materializePair turns a pending address into a clean i32 register via
// a 32-bit LEA (which truncates, matching i32.add wrap semantics).
func (fc *fnc) materializePair(l *loc) {
	r := fc.allocGPR()
	mem := x86.Mem{Base: l.base, Disp: l.disp}
	if l.scale != 0 {
		mem.Index, mem.Scale = l.index, l.scale
	}
	fc.emit(x86.Inst{Op: x86.LEA, W: x86.W32, Dst: x86.R(r), Src: x86.M(mem)})
	*l = loc{kind: lReg, typ: ir.I32, reg: r}
}

// materializeFlags converts a pending comparison into a 0/1 register.
func (fc *fnc) materializeFlags(l *loc) {
	r := fc.allocGPR()
	fc.emit(x86.Inst{Op: x86.SETCC, Cond: x86.Cond(l.imm), Dst: x86.R(r)})
	*l = loc{kind: lReg, typ: ir.I32, reg: r}
}

func (fc *fnc) emitLoadLocal(place loc, r x86.Reg, t ir.ValType) {
	w := widthOf(t)
	if place.kind == lReg {
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(r), Src: x86.R(place.reg)})
	} else {
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(r), Src: x86.M(fc.slotMem(place.slot))})
	}
}

func (fc *fnc) emitLoadLocalF(place loc, x x86.Xmm) {
	fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(x), Src: x86.M(fc.slotMem(place.slot))})
}

// ensureReg materializes vstack entry i into a GPR (integer types).
// When mutable is set the resulting register is guaranteed not to alias
// a local register, so the caller may overwrite it.
func (fc *fnc) ensureReg(i int, mutable bool) x86.Reg {
	l := &fc.vstack[i]
	switch l.kind {
	case lReg:
		return l.reg
	case lConst:
		r := fc.allocGPR()
		w := widthOf(l.typ)
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(r), Src: x86.Imm(l.imm)})
		*l = loc{kind: lReg, typ: l.typ, reg: r}
		return r
	case lSlot:
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(l.typ), Dst: x86.R(r), Src: x86.M(fc.slotMem(l.slot))})
		fc.freeSlot(l.slot)
		*l = loc{kind: lReg, typ: l.typ, reg: r}
		return r
	case lLocal:
		place := fc.localPlace[l.local]
		t := fc.f.LocalType(int(l.local))
		if place.kind == lReg && !mutable {
			return place.reg
		}
		r := fc.allocGPR()
		fc.emitLoadLocal(place, r, t)
		dirty := l.dirty
		*l = loc{kind: lReg, typ: l.typ, reg: r, dirty: dirty}
		return r
	case lPair:
		fc.materializePair(l)
		return l.reg
	case lFlags:
		fc.materializeFlags(l)
		return l.reg
	default:
		panic(fmt.Sprintf("sfi: ensureReg on kind %d", l.kind))
	}
}

// ensureXmm materializes vstack entry i into an xmm register.
func (fc *fnc) ensureXmm(i int, mutable bool) x86.Xmm {
	l := &fc.vstack[i]
	switch l.kind {
	case lXmm:
		return l.xmm
	case lFConst:
		x := fc.allocXmm()
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(r), Src: x86.Imm(l.imm)})
		fc.emit(x86.Inst{Op: x86.MOVQRX, Dst: x86.X(x), Src: x86.R(r)})
		*l = loc{kind: lXmm, typ: ir.F64, xmm: x}
		return x
	case lSlot:
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(x), Src: x86.M(fc.slotMem(l.slot))})
		fc.freeSlot(l.slot)
		*l = loc{kind: lXmm, typ: ir.F64, xmm: x}
		return x
	case lLocal:
		place := fc.localPlace[l.local]
		x := fc.allocXmm()
		fc.emitLoadLocalF(place, x)
		*l = loc{kind: lXmm, typ: ir.F64, xmm: x}
		return x
	default:
		panic(fmt.Sprintf("sfi: ensureXmm on kind %d", l.kind))
	}
}

func (fc *fnc) push(l loc)                      { fc.vstack = append(fc.vstack, l) }
func (fc *fnc) pushReg(r x86.Reg, t ir.ValType) { fc.push(loc{kind: lReg, typ: t, reg: r}) }
func (fc *fnc) pop() loc {
	l := fc.vstack[len(fc.vstack)-1]
	fc.vstack = fc.vstack[:len(fc.vstack)-1]
	return l
}

// popDiscard pops and releases any slot the entry owned.
func (fc *fnc) popDiscard() {
	l := fc.pop()
	if l.kind == lSlot {
		fc.freeSlot(l.slot)
	}
	if l.kind == lFlags {
		// Nothing to release; flags are simply forgotten.
	}
}

// popReg pops the top of stack into a register.
func (fc *fnc) popReg(mutable bool) (x86.Reg, ir.ValType) {
	r := fc.ensureReg(len(fc.vstack)-1, mutable)
	l := fc.pop()
	return r, l.typ
}

// popXmm pops the top of stack into an xmm register.
func (fc *fnc) popXmm(mutable bool) x86.Xmm {
	x := fc.ensureXmm(len(fc.vstack)-1, mutable)
	fc.pop()
	return x
}

// bin2 materializes the two top entries for a binary op, returning
// (a, b) with a mutable (the result register).
func (fc *fnc) bin2() (a, b x86.Reg) {
	n := len(fc.vstack)
	b = fc.ensureReg(n-1, false)
	a = fc.ensureReg(n-2, true)
	// ensureReg(n-2) may spill the n-1 entry under pressure; reload b.
	b = fc.ensureReg(n-1, false)
	fc.vstack = fc.vstack[:n-2]
	return a, b
}

// spillVolatile spills every volatile vstack entry (registers, pairs,
// flags, lazy locals) to slots. Called at control-flow boundaries and
// calls; constants stay as constants.
func (fc *fnc) spillVolatile() {
	for i := range fc.vstack {
		switch fc.vstack[i].kind {
		case lReg, lXmm, lPair, lFlags, lLocal:
			fc.spillEntry(i)
		}
	}
}

// invalidateLocal materializes any vstack reference to local li before
// the local is overwritten.
func (fc *fnc) invalidateLocal(li uint32) {
	place := fc.localPlace[li]
	for i := range fc.vstack {
		l := &fc.vstack[i]
		switch l.kind {
		case lLocal:
			if l.local == li {
				if fc.f.LocalType(int(li)) == ir.F64 {
					fc.ensureXmm(i, true)
				} else {
					fc.ensureReg(i, true)
				}
			}
		case lPair:
			if place.kind == lReg && (l.base == place.reg || (l.scale != 0 && l.index == place.reg)) {
				fc.materializePair(l)
			}
		}
	}
}

// --- compilation driver ---

func (fc *fnc) compile() (*cpu.Func, error) {
	f := fc.f
	if len(f.Type.Params) > len(cpu.ArgRegs) {
		return nil, fmt.Errorf("more than %d parameters unsupported", len(cpu.ArgRegs))
	}

	// Local placement: the first integer locals go to the local
	// register pool; everything else gets a frame slot.
	fc.localRegs = []x86.Reg{x86.R12, x86.R13, x86.RBX}
	if fc.r15Free() {
		// Segue frees R15 for the allocator — the paper's "frees a
		// GPR" — and the native baseline never reserved it.
		fc.localRegs = append(fc.localRegs, heapReg)
	}
	nextReg := 0
	fc.localPlace = make([]loc, f.NumLocals())
	for i := 0; i < f.NumLocals(); i++ {
		t := f.LocalType(i)
		if t != ir.F64 && t != ir.V128 && nextReg < len(fc.localRegs) {
			fc.localPlace[i] = loc{kind: lReg, typ: t, reg: fc.localRegs[nextReg]}
			nextReg++
		} else {
			fc.localPlace[i] = loc{kind: lSlot, typ: t, slot: fc.newSlot()}
		}
	}
	fc.localRegs = fc.localRegs[:nextReg] // only pin what is used
	fc.numSaved = len(fc.localRegs)

	// Prologue. CET-style schemes land every function entry on an
	// endbranch pad (entries are indirect-call targets via the table).
	if fc.harden().endbrEntry() {
		fc.emit(x86.Inst{Op: x86.ENDBR})
	}
	fc.emit(x86.Inst{Op: x86.PUSH, Dst: x86.R(x86.RBP)})
	fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RBP), Src: x86.R(x86.RSP)})
	for _, r := range fc.localRegs {
		fc.emit(x86.Inst{Op: x86.PUSH, Dst: x86.R(r)})
	}
	fc.subIdx = len(fc.insts)
	fc.emit(x86.Inst{Op: x86.SUB, W: x86.W64, Dst: x86.R(x86.RSP), Src: x86.Imm(0)})

	// Move arguments into their local homes and zero the extra locals.
	fpos := 0
	ipos := 0
	for i, p := range f.Type.Params {
		place := fc.localPlace[i]
		if p == ir.F64 {
			src := x86.Xmm(fpos)
			fpos++
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(place.slot)), Src: x86.X(src)})
			continue
		}
		src := cpu.ArgRegs[ipos]
		ipos++
		w := widthOf(p)
		if place.kind == lReg {
			fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(place.reg), Src: x86.R(src)})
		} else {
			fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.M(fc.slotMem(place.slot)), Src: x86.R(src)})
		}
	}
	for i := len(f.Type.Params); i < f.NumLocals(); i++ {
		place := fc.localPlace[i]
		if place.kind == lReg {
			fc.emit(x86.Inst{Op: x86.XOR, W: x86.W64, Dst: x86.R(place.reg), Src: x86.R(place.reg)})
		} else {
			fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.M(fc.slotMem(place.slot)), Src: x86.Imm(0)})
		}
	}

	epilog := fc.newLabel()
	fc.epilogLbl = epilog

	// Compile the body.
	for pc := 0; pc < len(f.Body); pc++ {
		in := f.Body[pc]
		if fc.dead {
			switch in.Op {
			case ir.OpBlock, ir.OpLoop, ir.OpIf:
				fc.deadDepth++
			case ir.OpElse:
				if fc.deadDepth == 0 {
					fc.compileElse(true)
				}
			case ir.OpEnd:
				if fc.deadDepth > 0 {
					fc.deadDepth--
				} else {
					fc.compileEnd(true)
				}
			}
			continue
		}
		if err := fc.step(pc, in, epilog); err != nil {
			return nil, fmt.Errorf("at %d (%s): %w", pc, in, err)
		}
	}

	// Fallthrough return.
	if !fc.dead {
		fc.moveResultToABI()
	}

	// Epilogue.
	fc.bind(epilog)
	if fc.cfg.Mode.controlFlowSFI() {
		// LFI return instrumentation: mask the return address to 32
		// bits and add the sandbox base (NaCl-style), which is why LFI
		// keeps R15 pinned even under Segue (§4.3).
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.M(x86.Mem{Base: x86.RSP})})
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R11), Src: x86.R(x86.R11)})
		fc.emit(x86.Inst{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.R(heapReg)})
	}
	for i := len(fc.localRegs) - 1; i >= 0; i-- {
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(fc.localRegs[i]),
			Src: x86.M(x86.Mem{Base: x86.RBP, Disp: int32(-8 * (i + 1))})})
	}
	fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RSP), Src: x86.R(x86.RBP)})
	fc.emit(x86.Inst{Op: x86.POP, Dst: x86.R(x86.RBP)})
	if fc.harden().flushesIndirect() {
		// Swivel-SFI treats the return as an untrusted indirect
		// transfer: flush the indirect predictors before it.
		fc.emit(x86.Inst{Op: x86.BTBFLUSH})
	}
	fc.emit(x86.Inst{Op: x86.RET})

	// Patch the frame size and resolve labels.
	fc.insts[fc.subIdx].Src = x86.Imm(int64(8 * fc.slots))
	for i := range fc.insts {
		in := &fc.insts[i]
		switch in.Op {
		case x86.JMP, x86.JCC:
			in.Dst.Label = fc.labels[in.Dst.Label]
		case x86.JTAB:
			in.Src.Label = fc.labels[in.Src.Label]
			for k, t := range in.Targets {
				in.Targets[k] = fc.labels[t]
			}
		}
	}
	return &cpu.Func{Name: f.Name, Insts: fc.insts}, nil
}

// moveResultToABI moves the function result (if any) to RAX/xmm0.
func (fc *fnc) moveResultToABI() {
	if len(fc.f.Type.Results) == 0 {
		return
	}
	if fc.f.Type.Results[0] == ir.F64 {
		x := fc.popXmm(false)
		if x != 0 {
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(0), Src: x86.X(x)})
		}
		return
	}
	r, t := fc.popReg(false)
	if r != x86.RAX {
		fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(t), Dst: x86.R(x86.RAX), Src: x86.R(r)})
	} else if t == ir.I32 {
		// Ensure the ABI result is zero-extended.
		_ = r
	}
}
