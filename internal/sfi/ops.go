package sfi

import (
	"fmt"
	"math"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/x86"
)

// step compiles one IR instruction.
func (fc *fnc) step(pc int, in ir.Inst, epilog int) error {
	switch in.Op {
	case ir.OpNop:
	case ir.OpUnreachable:
		fc.emit(x86.Inst{Op: x86.UD2})
		fc.dead = true

	case ir.OpBlock:
		fc.spillVolatile()
		c := ctl{endLbl: fc.newLabel(), elseLbl: -1, height: len(fc.vstack)}
		if in.BlockType != ir.NoResult {
			c.hasResult = true
			c.resultType = ir.ValType(in.BlockType)
			c.resultSlot = fc.newSlot()
		}
		fc.ctls = append(fc.ctls, c)
	case ir.OpLoop:
		fc.spillVolatile()
		c := ctl{isLoop: true, startLbl: fc.newLabel(), endLbl: fc.newLabel(), elseLbl: -1, height: len(fc.vstack)}
		if in.BlockType != ir.NoResult {
			c.hasResult = true
			c.resultType = ir.ValType(in.BlockType)
			c.resultSlot = fc.newSlot()
		}
		fc.ctls = append(fc.ctls, c)
		fc.bind(c.startLbl)
		if fc.cfg.EpochChecks {
			fc.emit(x86.Inst{Op: x86.EPOCH})
		}
		if fc.harden().interlocksBackEdges() {
			// Swivel-SFI linear-block discipline: the loop header ends
			// a speculation-relevant block, so re-establish the
			// register interlock here.
			fc.emit(x86.Inst{Op: x86.INTERLOCK})
		}
	case ir.OpIf:
		cond := fc.popCond()
		fc.spillVolatile()
		c := ctl{isIf: true, elseLbl: fc.newLabel(), endLbl: fc.newLabel(), height: len(fc.vstack)}
		if in.BlockType != ir.NoResult {
			c.hasResult = true
			c.resultType = ir.ValType(in.BlockType)
			c.resultSlot = fc.newSlot()
		}
		fc.ctls = append(fc.ctls, c)
		fc.jcc(cond.Negate(), c.elseLbl)
	case ir.OpElse:
		fc.compileElse(false)
	case ir.OpEnd:
		fc.compileEnd(false)

	case ir.OpBr:
		fc.branch(int(in.Imm))
		fc.dead = true
	case ir.OpBrIf:
		fc.branchIf(int(in.Imm))
	case ir.OpBrTable:
		idx, _ := fc.popReg(false)
		fc.spillVolatile()
		targets := make([]int, len(in.Targets))
		for i, d := range in.Targets {
			lbl, err := fc.branchTargetLabel(int(d))
			if err != nil {
				return err
			}
			targets[i] = lbl
		}
		defLbl, err := fc.branchTargetLabel(int(in.Imm))
		if err != nil {
			return err
		}
		if fc.harden().flushesIndirect() {
			fc.emit(x86.Inst{Op: x86.BTBFLUSH})
		}
		fc.emit(x86.Inst{Op: x86.JTAB, Dst: x86.R(idx), Src: x86.Label(defLbl), Targets: targets})
		fc.dead = true
	case ir.OpReturn:
		fc.moveResultToABI()
		fc.jmp(epilog)
		fc.dead = true

	case ir.OpCall:
		return fc.compileCall(uint32(in.Imm))
	case ir.OpCallIndirect:
		return fc.compileCallIndirect(int(in.Imm))

	case ir.OpDrop:
		fc.popDiscard()
	case ir.OpSelect:
		fc.compileSelect()

	case ir.OpLocalGet:
		li := uint32(in.Imm)
		fc.push(loc{kind: lLocal, typ: fc.f.LocalType(int(li)), local: li})
	case ir.OpLocalSet, ir.OpLocalTee:
		li := uint32(in.Imm)
		fc.invalidateLocal(li)
		t := fc.f.LocalType(int(li))
		place := fc.localPlace[li]
		if t == ir.F64 {
			x := fc.ensureXmm(len(fc.vstack)-1, false)
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(place.slot)), Src: x86.X(x)})
		} else {
			r := fc.ensureReg(len(fc.vstack)-1, false)
			w := widthOf(t)
			if place.kind == lReg {
				fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(place.reg), Src: x86.R(r)})
			} else {
				fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.M(fc.slotMem(place.slot)), Src: x86.R(r)})
			}
		}
		if in.Op == ir.OpLocalSet {
			fc.pop()
		}
		// For tee, the value stays on the stack in its register.
	case ir.OpGlobalGet:
		g := fc.m.Globals[in.Imm]
		memOp := x86.M(x86.Mem{Base: vmctxReg, Disp: int32(CtxGlobalsOff + 8*in.Imm)})
		if g.Type == ir.F64 {
			x := fc.allocXmm()
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(x), Src: memOp})
			fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
		} else {
			r := fc.allocGPR()
			fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(g.Type), Dst: x86.R(r), Src: memOp})
			fc.pushReg(r, g.Type)
		}
	case ir.OpGlobalSet:
		g := fc.m.Globals[in.Imm]
		memOp := x86.M(x86.Mem{Base: vmctxReg, Disp: int32(CtxGlobalsOff + 8*in.Imm)})
		if g.Type == ir.F64 {
			x := fc.popXmm(false)
			fc.emit(x86.Inst{Op: x86.MOVSD, Dst: memOp, Src: x86.X(x)})
		} else {
			r, _ := fc.popReg(false)
			fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(g.Type), Dst: memOp, Src: x86.R(r)})
		}

	case ir.OpI32Const:
		fc.push(loc{kind: lConst, typ: ir.I32, imm: int64(uint32(in.Imm))})
	case ir.OpI64Const:
		fc.push(loc{kind: lConst, typ: ir.I64, imm: in.Imm})
	case ir.OpF64Const:
		fc.push(loc{kind: lFConst, typ: ir.F64, imm: int64(math.Float64bits(in.Fimm))})

	case ir.OpMemorySize:
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(r), Src: x86.M(x86.Mem{Base: vmctxReg, Disp: CtxMemPagesOff})})
		fc.pushReg(r, ir.I32)
	case ir.OpMemoryGrow:
		return fc.compileBuiltin(BuiltinGrow, 1, true)
	case ir.OpMemoryCopy:
		return fc.compileBuiltin(BuiltinCopy, 3, false)
	case ir.OpMemoryFill:
		return fc.compileBuiltin(BuiltinFill, 3, false)

	default:
		if in.Op.IsLoad() {
			return fc.compileLoad(pc, in)
		}
		if in.Op.IsStore() {
			return fc.compileStore(pc, in)
		}
		return fc.compileALU(pc, in)
	}
	return nil
}

// popCond pops an i32 condition, returning the x86 condition to branch
// on when the condition is TRUE. A pending lFlags entry is used
// directly (compare/branch fusion); otherwise TEST r,r ; NE.
func (fc *fnc) popCond() x86.Cond {
	top := &fc.vstack[len(fc.vstack)-1]
	if top.kind == lFlags {
		c := x86.Cond(top.imm)
		fc.pop()
		return c
	}
	r, _ := fc.popReg(false)
	fc.emit(x86.Inst{Op: x86.TEST, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
	return x86.CondNE
}

func (fc *fnc) compileElse(fromDead bool) {
	c := &fc.ctls[len(fc.ctls)-1]
	if !fromDead {
		if c.hasResult {
			fc.storeResult(c)
		}
		fc.jmp(c.endLbl)
	}
	fc.bind(c.elseLbl)
	c.elseLbl = -2 // mark consumed
	fc.vstack = fc.vstack[:c.height]
	fc.dead = false
}

func (fc *fnc) compileEnd(fromDead bool) {
	c := fc.ctls[len(fc.ctls)-1]
	fc.ctls = fc.ctls[:len(fc.ctls)-1]
	if !fromDead && c.hasResult {
		fc.storeResult(&c)
	}
	if c.isIf && c.elseLbl >= 0 {
		// If without else: the false path lands here.
		fc.bind(c.elseLbl)
	}
	fc.bind(c.endLbl)
	fc.vstack = fc.vstack[:c.height]
	if c.hasResult {
		fc.push(loc{kind: lSlot, typ: c.resultType, slot: c.resultSlot})
	}
	fc.dead = false
}

// storeResult pops the top of stack into the control frame's result
// slot.
func (fc *fnc) storeResult(c *ctl) {
	if c.resultType == ir.F64 {
		x := fc.popXmm(false)
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(c.resultSlot)), Src: x86.X(x)})
		return
	}
	r, t := fc.popReg(false)
	fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(t), Dst: x86.M(fc.slotMem(c.resultSlot)), Src: x86.R(r)})
}

// branchTargetLabel returns the label a br of the given depth jumps to,
// for result-less targets (br_table).
func (fc *fnc) branchTargetLabel(depth int) (int, error) {
	idx := len(fc.ctls) - 1 - depth
	if idx < 0 {
		return 0, fmt.Errorf("branch depth %d escapes function scope in br_table", depth)
	}
	c := &fc.ctls[idx]
	if c.isLoop {
		return c.startLbl, nil
	}
	if c.hasResult {
		return 0, fmt.Errorf("br_table to a result-carrying block is unsupported")
	}
	return c.endLbl, nil
}

// branch compiles an unconditional br to the given depth.
func (fc *fnc) branch(depth int) {
	idx := len(fc.ctls) - 1 - depth
	if idx < 0 {
		// Branch out of the function body: equivalent to return.
		fc.moveResultToABI()
		fc.jmp(fc.epilogLbl)
		return
	}
	c := &fc.ctls[idx]
	if c.isLoop {
		fc.jmp(c.startLbl)
		return
	}
	if c.hasResult {
		fc.storeResult(c)
	}
	fc.jmp(c.endLbl)
}

// branchIf compiles br_if: branch to the target when the popped
// condition is non-zero; fall through otherwise.
func (fc *fnc) branchIf(depth int) {
	idx := len(fc.ctls) - 1 - depth
	if idx < 0 {
		// br_if to function scope: conditional return. Only supported
		// for result-less functions (kernels use explicit blocks
		// otherwise).
		cond := fc.popCond()
		fc.jcc(cond, fc.epilogLbl)
		return
	}
	c := &fc.ctls[idx]
	if c.isLoop {
		cond := fc.popCond()
		fc.jcc(cond, c.startLbl)
		return
	}
	if !c.hasResult {
		cond := fc.popCond()
		fc.jcc(cond, c.endLbl)
		return
	}
	// Result-carrying br_if: materialize the value first (MOV/LEA only,
	// so a pending lFlags condition survives), then branch around a
	// store+jump pair. The value stays on the stack for fallthrough.
	n := len(fc.vstack)
	var vr x86.Reg
	var vx x86.Xmm
	if c.resultType == ir.F64 {
		vx = fc.ensureXmm(n-2, false)
	} else {
		vr = fc.ensureReg(n-2, false)
	}
	cond := fc.popCond()
	skip := fc.newLabel()
	fc.jcc(cond.Negate(), skip)
	if c.resultType == ir.F64 {
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(fc.slotMem(c.resultSlot)), Src: x86.X(vx)})
	} else {
		fc.emit(x86.Inst{Op: x86.MOV, W: widthOf(c.resultType), Dst: x86.M(fc.slotMem(c.resultSlot)), Src: x86.R(vr)})
	}
	fc.jmp(c.endLbl)
	fc.bind(skip)
}

func (fc *fnc) compileSelect() {
	condTop := &fc.vstack[len(fc.vstack)-1]
	var cond x86.Cond
	if condTop.kind == lFlags {
		cond = x86.Cond(condTop.imm)
		fc.pop()
	} else {
		r, _ := fc.popReg(false)
		fc.emit(x86.Inst{Op: x86.TEST, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
		cond = x86.CondNE
	}
	n := len(fc.vstack)
	if fc.vstack[n-1].typ == ir.F64 {
		// Branchy f64 select.
		fc.ensureXmm(n-1, false)
		a := fc.ensureXmm(n-2, true)
		b := fc.ensureXmm(n-1, false)
		fc.vstack = fc.vstack[:n-2]
		skip := fc.newLabel()
		fc.jcc(cond, skip)
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(a), Src: x86.X(b)})
		fc.bind(skip)
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: a})
		return
	}
	fc.ensureReg(n-1, false)
	a := fc.ensureReg(n-2, true)
	b := fc.ensureReg(n-1, false)
	t := fc.vstack[n-2].typ
	fc.vstack = fc.vstack[:n-2]
	// cmov: keep a when cond holds, take b otherwise.
	fc.emit(x86.Inst{Op: x86.CMOV, W: x86.W64, Cond: cond.Negate(), Dst: x86.R(a), Src: x86.R(b)})
	fc.pushReg(a, t)
}

// compileCall lowers a direct call (import or defined function).
func (fc *fnc) compileCall(irIdx uint32) error {
	sig, err := fc.m.TypeOf(irIdx)
	if err != nil {
		return err
	}
	fc.loadArgs(sig)
	if int(irIdx) < fc.meta.NumImports {
		fc.emit(x86.Inst{Op: x86.CALLHOST, Dst: x86.Imm(int64(fc.meta.HostIndex(irIdx)))})
	} else {
		fc.emit(x86.Inst{Op: x86.CALLFN, Dst: x86.Imm(int64(fc.meta.FuncIndex(irIdx)))})
	}
	fc.pushCallResult(sig)
	return nil
}

func (fc *fnc) compileCallIndirect(sigIdx int) error {
	sig := fc.m.SigByIndex(sigIdx)
	// Pop the table slot before spilling the arguments.
	n := len(fc.vstack)
	slotReg := fc.ensureReg(n-1, true)
	fc.pop()
	// Keep the slot register across argument setup by re-pushing it
	// temporarily under a fresh entry... simpler: spill it to a slot.
	s := fc.newSlot()
	fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.M(fc.slotMem(s)), Src: x86.R(slotReg)})
	fc.loadArgs(sig)
	fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R10), Src: x86.M(fc.slotMem(s))})
	fc.freeSlot(s)
	if fc.cfg.Mode.controlFlowSFI() {
		// LFI indirect-branch instrumentation: mask and rebase the
		// target (modeled on a scratch copy).
		fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.R11), Src: x86.R(x86.R10)})
		fc.emit(x86.Inst{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.R11), Src: x86.R(heapReg)})
	}
	if fc.harden().flushesIndirect() {
		// Swivel-SFI: flush the indirect predictors before an
		// untrusted indirect call.
		fc.emit(x86.Inst{Op: x86.BTBFLUSH})
	}
	fc.emit(x86.Inst{Op: x86.CALLREG, Dst: x86.R(x86.R10), Src: x86.Imm(int64(sigIdx))})
	fc.pushCallResult(sig)
	return nil
}

// loadArgs spills the vstack, then moves the top len(sig.Params)
// entries into the ABI argument registers and pops them.
func (fc *fnc) loadArgs(sig ir.FuncType) {
	fc.spillVolatile()
	n := len(sig.Params)
	base := len(fc.vstack) - n
	ipos, fpos := 0, 0
	for i, p := range sig.Params {
		l := fc.vstack[base+i]
		if p == ir.F64 {
			dst := x86.Xmm(fpos)
			fpos++
			switch l.kind {
			case lSlot:
				fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.X(dst), Src: x86.M(fc.slotMem(l.slot))})
				fc.freeSlot(l.slot)
			case lFConst:
				fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(l.imm)})
				fc.emit(x86.Inst{Op: x86.MOVQRX, Dst: x86.X(dst), Src: x86.R(x86.RAX)})
			default:
				panic("sfi: unexpected f64 arg location after spill")
			}
			continue
		}
		dst := cpu.ArgRegs[ipos]
		ipos++
		w := widthOf(p)
		switch l.kind {
		case lSlot:
			fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(dst), Src: x86.M(fc.slotMem(l.slot))})
			fc.freeSlot(l.slot)
		case lConst:
			fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.R(dst), Src: x86.Imm(l.imm)})
		default:
			panic("sfi: unexpected int arg location after spill")
		}
	}
	fc.vstack = fc.vstack[:base]
}

func (fc *fnc) pushCallResult(sig ir.FuncType) {
	if len(sig.Results) == 0 {
		return
	}
	if sig.Results[0] == ir.F64 {
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: 0})
		return
	}
	fc.pushReg(x86.RAX, sig.Results[0])
}

// compileBuiltin lowers memory.grow/copy/fill to a builtin host call.
func (fc *fnc) compileBuiltin(b int, args int, hasResult bool) error {
	params := make([]ir.ValType, args)
	for i := range params {
		params[i] = ir.I32
	}
	var results []ir.ValType
	if hasResult {
		results = []ir.ValType{ir.I32}
	}
	sig := ir.Sig(params, results)
	fc.loadArgs(sig)
	fc.emit(x86.Inst{Op: x86.CALLHOST, Dst: x86.Imm(int64(fc.meta.BuiltinIndex(b)))})
	fc.pushCallResult(sig)
	return nil
}

var _ = math.MaxInt32
