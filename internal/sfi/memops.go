package sfi

import (
	"math"

	"repro/internal/ir"
	"repro/internal/x86"
)

// loadInstFor describes the x86 instruction shape for each load opcode.
func loadInstFor(o ir.Op) (op x86.Op, w, srcW x86.Width) {
	switch o {
	case ir.OpI32Load:
		return x86.MOV, x86.W32, 0
	case ir.OpI64Load:
		return x86.MOV, x86.W64, 0
	case ir.OpF64Load:
		return x86.MOVSD, x86.W64, 0
	case ir.OpI32Load8U:
		return x86.MOVZX, x86.W32, x86.W8
	case ir.OpI32Load8S:
		return x86.MOVSX, x86.W32, x86.W8
	case ir.OpI32Load16U:
		return x86.MOVZX, x86.W32, x86.W16
	case ir.OpV128Load:
		return x86.MOVDQU, x86.W128, 0
	}
	panic("sfi: not a load")
}

func storeWidthFor(o ir.Op) x86.Width {
	switch o {
	case ir.OpI32Store8:
		return x86.W8
	case ir.OpI32Store16:
		return x86.W16
	case ir.OpI32Store:
		return x86.W32
	case ir.OpI64Store, ir.OpF64Store:
		return x86.W64
	case ir.OpV128Store:
		return x86.W128
	}
	panic("sfi: not a store")
}

// compileLoad lowers a memory load. The address is the top vstack entry.
func (fc *fnc) compileLoad(pc int, in ir.Inst) error {
	mem, err := fc.memOperandAt(len(fc.vstack)-1, in.Offset, in.Op.AccessSize(), true)
	if err != nil {
		return err
	}
	fc.pop() // the address entry (registers it used are now free)
	if fc.harden().masksLoads() {
		// Interlock / SLH mask: delay the sandbox load until the
		// bounds condition resolves (Swivel's register interlock).
		fc.emit(x86.Inst{Op: x86.INTERLOCK})
	}
	op, w, srcW := loadInstFor(in.Op)
	switch in.Op {
	case ir.OpF64Load:
		x := fc.allocXmm()
		fc.emit(x86.Inst{Op: op, Dst: x86.X(x), Src: x86.M(mem)})
		fc.push(loc{kind: lXmm, typ: ir.F64, xmm: x})
	case ir.OpV128Load:
		fc.emit(x86.Inst{Op: op, W: w, Dst: x86.X(15), Src: x86.M(mem)})
		fc.push(loc{kind: lXmm, typ: ir.V128, xmm: 15})
	default:
		r := fc.allocGPR()
		fc.emit(x86.Inst{Op: op, W: w, SrcW: srcW, Dst: x86.R(r), Src: x86.M(mem)})
		t := ir.I32
		if in.Op == ir.OpI64Load {
			t = ir.I64
		}
		fc.pushReg(r, t)
	}
	return nil
}

// compileStore lowers a memory store. Stack: [..., addr, value].
func (fc *fnc) compileStore(pc int, in ir.Inst) error {
	n := len(fc.vstack)
	w := storeWidthFor(in.Op)

	// Materialize the value first (keeping it on the vstack so its
	// register is protected while the address is formed).
	val := &fc.vstack[n-1]
	var valImm int64
	var valIsImm bool
	var valReg x86.Reg
	var valXmm x86.Xmm
	switch {
	case in.Op == ir.OpF64Store || in.Op == ir.OpV128Store:
		valXmm = fc.ensureXmm(n-1, false)
	case val.kind == lConst && fitsImm32(val.imm) && w != x86.W128:
		valIsImm, valImm = true, val.imm
	default:
		valReg = fc.ensureReg(n-1, false)
	}

	mem, err := fc.memOperandAt(n-2, in.Offset, in.Op.AccessSize(), false)
	if err != nil {
		return err
	}
	// Re-fetch the value register in case address formation spilled it.
	if !valIsImm && in.Op != ir.OpF64Store && in.Op != ir.OpV128Store {
		valReg = fc.ensureReg(n-1, false)
	}
	fc.vstack = fc.vstack[:n-2]

	if fc.harden().masksStores() {
		// Deterministic SLH masks store addresses too.
		fc.emit(x86.Inst{Op: x86.INTERLOCK})
	}
	switch {
	case in.Op == ir.OpF64Store:
		fc.emit(x86.Inst{Op: x86.MOVSD, Dst: x86.M(mem), Src: x86.X(valXmm)})
	case in.Op == ir.OpV128Store:
		fc.emit(x86.Inst{Op: x86.MOVDQU, W: x86.W128, Dst: x86.M(mem), Src: x86.X(valXmm)})
	case valIsImm:
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.M(mem), Src: x86.Imm(valImm)})
	default:
		fc.emit(x86.Inst{Op: x86.MOV, W: w, Dst: x86.M(mem), Src: x86.R(valReg)})
	}
	return nil
}

// memOperandAt builds the x86 memory operand for an access whose IR
// address is the vstack entry at index idx, under the configured mode.
// This is where Segue's three benefits materialize (or don't):
//
//   - Guard: [R15 + addr + disp] with an explicit 32-bit LEA for any
//     computed address and an explicit truncation for dirty values.
//   - Segue: gs:[addr-parts + disp] folding base+index*scale directly,
//     with the address-size override standing in for truncation.
//   - Native: like Segue but through the implicit 64-bit pointer base.
//   - Bounds modes: an explicit limit comparison precedes the access.
func (fc *fnc) memOperandAt(idx int, offset uint32, size uint32, isLoad bool) (x86.Mem, error) {
	mode := fc.cfg.Mode
	useSeg := mode.usesSegment() && (isLoad || !fc.cfg.SegueLoadsOnly)
	foldPair := fc.cfg.FoldOperandSlot && (useSeg || mode == ModeNative)
	l := &fc.vstack[idx]

	// Constant address: fold everything into the displacement.
	if l.kind == lConst {
		total := int64(uint32(l.imm)) + int64(offset)
		if total <= math.MaxInt32 {
			switch {
			case mode == ModeNative:
				return x86.Mem{Seg: x86.SegImplicit, Base: x86.RegNone, Disp: int32(total)}, nil
			case useSeg:
				return x86.Mem{Seg: x86.SegGS, Base: x86.RegNone, Disp: int32(total), Addr32: true}, nil
			case mode.boundsChecked():
				fc.emitBoundsCheckConst(uint64(total), size)
				return fc.plainAccess(x86.RegNone, int32(total), useSeg, mode), nil
			default:
				return x86.Mem{Base: heapReg, Disp: int32(total)}, nil
			}
		}
		// Oversized constant: materialize and fall through.
		fc.ensureReg(idx, false)
	}

	// Pending pair: fold into the operand slot where the mode allows.
	if l.kind == lPair && foldPair && !mode.boundsChecked() {
		total := int64(l.disp) + int64(offset)
		if total <= int64(fc.cfg.FoldDispLimit) {
			mem := x86.Mem{Base: l.base, Disp: int32(total), Addr32: true}
			if l.scale != 0 {
				mem.Index, mem.Scale = l.index, l.scale
			}
			if l.base == x86.RegNone && l.scale == 0 {
				// Degenerate pair; treat as register below.
			} else {
				if mode == ModeNative {
					mem.Seg = x86.SegImplicit
				} else {
					mem.Seg = x86.SegGS
				}
				return mem, nil
			}
		}
	}

	// Everything else needs the address as a register. Dirty values may
	// be truncated in place below, so they need a mutable (non-aliased)
	// register.
	r := fc.ensureReg(idx, fc.vstack[idx].dirty)
	dirty := fc.vstack[idx].dirty

	// Fold the static offset when it is within the guard-covered limit;
	// otherwise add it explicitly (64-bit, no wrap on clean values).
	disp := int32(0)
	if offset <= fc.cfg.FoldDispLimit {
		disp = int32(offset)
	} else {
		// Oversized static offset: truncate (if needed) and add it
		// explicitly in 64 bits so no wrap can occur. The new register
		// must be recorded on the vstack entry, or a later allocation
		// (bounds-check temporary, spilled-value reload) could claim
		// and clobber it before the access is emitted.
		nr := fc.allocGPR()
		if dirty {
			fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(nr), Src: x86.R(r)})
			fc.emit(x86.Inst{Op: x86.ADD, W: x86.W64, Dst: x86.R(nr), Src: x86.Imm(int64(offset))})
		} else {
			fc.emit(x86.Inst{Op: x86.LEA, W: x86.W64, Dst: x86.R(nr), Src: x86.M(x86.Mem{Base: r, Disp: int32(offset)})})
		}
		fc.vstack[idx] = loc{kind: lReg, typ: ir.I32, reg: nr}
		r, dirty, disp = nr, false, 0
	}

	switch {
	case mode == ModeNative:
		return x86.Mem{Seg: x86.SegImplicit, Base: r, Disp: disp, Addr32: dirty}, nil
	case useSeg && !mode.boundsChecked():
		if fc.cfg.Hybrid && !dirty {
			// Cost-function hybrid (§6.1 future work): a plain clean
			// register gains nothing from the segment form, so use the
			// pinned base and skip the prefix bytes.
			return x86.Mem{Base: heapReg, Index: r, Scale: 1, Disp: disp}, nil
		}
		// Wasm2c's named-address-space codegen always carries the
		// address-size override with the segment prefix (Figure 1c) —
		// that second byte is the cost behind the 473_astar outlier.
		return x86.Mem{Seg: x86.SegGS, Base: r, Disp: disp, Addr32: true}, nil
	case mode.boundsChecked():
		if dirty {
			fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
		}
		fc.emitBoundsCheck(r, uint32(disp), size)
		return fc.plainAccess(r, disp, useSeg, mode), nil
	default: // Guard and LFI data accesses.
		if dirty {
			if fc.cfg.SignedOffset {
				// Wasmtime's signed-offset scheme (§5.1): sign-extend
				// the untrusted index so corrupt values go negative and
				// trap in the pre-guard region.
				fc.emit(x86.Inst{Op: x86.MOVSX, W: x86.W64, SrcW: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
			} else {
				// Pattern 1 of Figure 1: the explicit truncation classic
				// SFI pays that Segue gets for free.
				fc.emit(x86.Inst{Op: x86.MOV, W: x86.W32, Dst: x86.R(r), Src: x86.R(r)})
			}
		}
		return x86.Mem{Base: heapReg, Index: r, Scale: 1, Disp: disp}, nil
	}
}

// plainAccess builds the access operand used after an explicit bounds
// check.
func (fc *fnc) plainAccess(r x86.Reg, disp int32, useSeg bool, mode Mode) x86.Mem {
	if useSeg {
		if r == x86.RegNone {
			return x86.Mem{Seg: x86.SegGS, Base: x86.RegNone, Disp: disp}
		}
		return x86.Mem{Seg: x86.SegGS, Base: r, Disp: disp}
	}
	if r == x86.RegNone {
		return x86.Mem{Base: heapReg, Disp: disp}
	}
	return x86.Mem{Base: heapReg, Index: r, Scale: 1, Disp: disp}
}

// emitBoundsCheck emits the explicit limit comparison: the end of the
// access must not exceed the linear-memory size held in the context.
func (fc *fnc) emitBoundsCheck(addr x86.Reg, disp uint32, size uint32) {
	t := fc.allocGPR()
	fc.emit(x86.Inst{Op: x86.LEA, W: x86.W64, Dst: x86.R(t),
		Src: x86.M(x86.Mem{Base: addr, Disp: int32(disp + size)})})
	fc.emit(x86.Inst{Op: x86.CMP, W: x86.W64, Dst: x86.R(t),
		Src: x86.M(x86.Mem{Base: vmctxReg, Disp: CtxMemLimitOff})})
	fc.emit(x86.Inst{Op: x86.TRAPIF, Cond: x86.CondA})
}

func (fc *fnc) emitBoundsCheckConst(end uint64, size uint32) {
	t := fc.allocGPR()
	fc.emit(x86.Inst{Op: x86.MOV, W: x86.W64, Dst: x86.R(t), Src: x86.Imm(int64(end + uint64(size)))})
	fc.emit(x86.Inst{Op: x86.CMP, W: x86.W64, Dst: x86.R(t),
		Src: x86.M(x86.Mem{Base: vmctxReg, Disp: CtxMemLimitOff})})
	fc.emit(x86.Inst{Op: x86.TRAPIF, Cond: x86.CondA})
}
