// Package sfi implements the SFI compilers at the heart of the
// reproduction: lowering of the Wasm-like IR to the modeled x86-64 ISA
// under several isolation schemes.
//
// The modes mirror the toolchains the paper studies:
//
//   - ModeNative — no isolation; the baseline every figure normalizes to.
//   - ModeGuard — classic guard-page SFI (Wasm2c/Wasmtime default): a
//     pinned heap-base register (R15), explicit truncation of
//     64-bit-derived addresses, and address arithmetic that cannot use
//     the base+index*scale operand slot because the base slot is taken.
//   - ModeSegue — the paper's Segue: heap base in %gs, full
//     addressing-mode folding, free truncation via the address-size
//     override, and R15 returned to the register allocator.
//   - ModeBoundsCheck / ModeBoundsSegue — explicit bounds checks per
//     access (engines without guard regions, e.g. memory64), optionally
//     with Segue addressing.
//   - ModeLFI / ModeLFISegue — LFI-style assembly-level SFI: data
//     accesses as in Guard/Segue, plus control-flow instrumentation on
//     returns and indirect calls that keeps R15 pinned even under Segue
//     (§4.3 of the paper).
//
// Config tuning knobs reproduce WAMR's deployment constraints (§4.2):
// SegueLoadsOnly applies Segue to loads only, FoldOperandSlot=false
// models WAMR's "register-only" Segue, and Vectorize enables the
// store-rooted vectorization pass whose pattern matcher is defeated by
// segment prefixes — the source of the memmove/sieve regressions.
package sfi

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Mode selects the isolation scheme.
type Mode uint8

// Compilation modes.
const (
	ModeNative Mode = iota
	ModeGuard
	ModeSegue
	ModeBoundsCheck
	ModeBoundsSegue
	ModeLFI
	ModeLFISegue
)

var modeNames = [...]string{
	"native", "guard", "segue", "boundscheck", "boundssegue", "lfi", "lfisegue",
}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// usesSegment reports whether memory accesses go through a segment
// register (and thus carry prefix bytes).
func (m Mode) usesSegment() bool {
	return m == ModeSegue || m == ModeBoundsSegue || m == ModeLFISegue
}

// pinsHeapBase reports whether R15 stays reserved for the heap base.
// LFI pins it even under Segue because control-flow instrumentation
// needs it (§4.3).
func (m Mode) pinsHeapBase() bool {
	switch m {
	case ModeGuard, ModeBoundsCheck, ModeLFI, ModeLFISegue:
		return true
	default:
		return false
	}
}

// boundsChecked reports whether explicit bounds checks are emitted.
func (m Mode) boundsChecked() bool {
	return m == ModeBoundsCheck || m == ModeBoundsSegue
}

// controlFlowSFI reports whether LFI-style control-flow instrumentation
// is emitted.
func (m Mode) controlFlowSFI() bool { return m == ModeLFI || m == ModeLFISegue }

// Config parameterizes compilation.
type Config struct {
	Mode Mode

	// Harden selects the Spectre-hardening scheme, orthogonal to Mode.
	// HardenNone (the zero value) emits nothing and compiles
	// byte-identical code to a pre-hardening build. Ignored under
	// ModeNative, which models trusted code.
	Harden Harden

	// SegueLoadsOnly applies segment addressing to loads only; stores
	// use the classic scheme (WAMR's tuning knob from §4.2/§6.2).
	SegueLoadsOnly bool

	// FoldOperandSlot, when false under Segue, disables the extra
	// addressing-operand folding — WAMR's "register-only" Segue, which
	// frees R15 and uses gs-relative access but does not reduce the
	// instruction count for computed addresses.
	FoldOperandSlot bool

	// Vectorize enables the WAMR-style post-pass that fuses adjacent
	// 64-bit copy/store pairs into 128-bit operations. Its matcher
	// roots at store instructions and rejects segment-prefixed stores.
	Vectorize bool

	// EpochChecks inserts an epoch-interruption check at every loop
	// header (Wasmtime's epoch_interruption).
	EpochChecks bool

	// SignedOffset implements Wasmtime's 2+2 GiB guard scheme (§5.1):
	// for memories capped at 2 GiB, untrusted 64-bit-derived addresses
	// are SIGN-extended instead of zero-extended, so a corrupt index
	// traps in the pre-guard region as a negative offset. Halves the
	// guard requirement; needs the runtime to reserve a pre-guard.
	SignedOffset bool

	// ReserveR15 keeps R15 (and the rewriter's R11 scratch) out of the
	// register allocator even in modes that would free them — what
	// LFI's binary rewriter requires of its input (the -ffixed-reg
	// compilation contract, §4.3).
	ReserveR15 bool

	// Hybrid, with ModeSegue, implements the paper's proposed future
	// work (§6.1 outliers): a per-access cost function that uses
	// segment-relative addressing only where it removes an instruction
	// (computed addresses, dirty truncations) and the classic pinned-
	// base form where Segue would only add prefix bytes. The heap-base
	// register stays pinned.
	Hybrid bool

	// FoldDispLimit bounds the static offsets folded into addressing
	// modes; real engines fold any offset their guard regions cover
	// (Wasmtime: up to 2 GiB). The runtime's default guard is 4 GiB,
	// so the 1 GiB default is always sound.
	FoldDispLimit uint32
}

// DefaultConfig returns a Config for the given mode with folding
// enabled, a 1 GiB disp-fold limit (covered by the runtime's default
// guard regions), and the process-wide default hardening scheme.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:            mode,
		Harden:          DefaultHarden(),
		FoldOperandSlot: true,
		FoldDispLimit:   1 << 30,
	}
}

// PinsR15 reports whether compiled code expects the heap base in R15
// at entry. Under full Segue (and the native baseline) R15 is an
// allocatable register instead and must not be written by transitions.
func (c Config) PinsR15() bool {
	if c.Mode == ModeNative {
		return false
	}
	return c.Mode.pinsHeapBase() || c.SegueLoadsOnly || c.Hybrid
}

// Context-region layout: R14 points at a per-instance context block in
// runtime (key 0) memory.
const (
	CtxHeapBaseOff = 0  // heap base (informational; code uses R15/GS)
	CtxMemLimitOff = 8  // linear memory size in bytes (bounds checks)
	CtxMemPagesOff = 16 // linear memory size in pages (memory.size)
	CtxGlobalsOff  = 32 // globals, 8 bytes each
)

// CtxSize returns the context-region size for a module.
func CtxSize(m *ir.Module) uint64 {
	return CtxGlobalsOff + 8*uint64(len(m.Globals))
}

// Builtin host slots appended after the module's imports.
const (
	BuiltinGrow = iota // memory.grow(delta_pages) -> old_pages
	BuiltinCopy        // memory.copy(dst, src, n)
	BuiltinFill        // memory.fill(dst, val, n)
	NumBuiltins
)

// Meta describes the compiled image to the runtime.
type Meta struct {
	Module *ir.Module
	Cfg    Config

	// NumImports is the count of module imports; builtin host slots
	// follow them in the program's host table.
	NumImports int

	// Exports maps export names to cpu function indices.
	Exports map[string]int
}

// HostIndex returns the program host index for IR import index i.
func (mt *Meta) HostIndex(i uint32) int { return int(i) }

// BuiltinIndex returns the program host index for a builtin.
func (mt *Meta) BuiltinIndex(b int) int { return mt.NumImports + b }

// FuncIndex maps an IR function index (combined space) to a cpu
// function index, or -1 for imports.
func (mt *Meta) FuncIndex(irIdx uint32) int {
	d := int(irIdx) - mt.NumImports
	if d < 0 {
		return -1
	}
	return d
}

// Compile lowers every function in the module under cfg. The module
// must validate. Host slots in the returned program are left nil; the
// runtime binds them.
// ctrCompiles counts every Compile invocation; together with
// rt.modcache.hits it shows how much work the compile cache saves.
var ctrCompiles = telemetry.Default.Counter("sfi.compiles")

func Compile(m *ir.Module, cfg Config) (*cpu.Program, *Meta, error) {
	ctrCompiles.Inc()
	if cfg.Harden >= numHardens {
		return nil, nil, fmt.Errorf("sfi: unknown harden mode %d", uint8(cfg.Harden))
	}
	ctrHardens[cfg.Harden].Inc()
	if !m.Validated() {
		if err := m.Validate(); err != nil {
			return nil, nil, err
		}
	}
	if cfg.FoldDispLimit == 0 {
		cfg.FoldDispLimit = 1 << 30
	}
	meta := &Meta{
		Module:     m,
		Cfg:        cfg,
		NumImports: len(m.Imports),
		Exports:    make(map[string]int),
	}
	prog := &cpu.Program{
		Hosts:     make([]cpu.HostFunc, len(m.Imports)+NumBuiltins),
		HostNames: make([]string, len(m.Imports)+NumBuiltins),
	}
	for i, imp := range m.Imports {
		prog.HostNames[i] = imp.Name
	}
	prog.HostNames[meta.BuiltinIndex(BuiltinGrow)] = "builtin.memory.grow"
	prog.HostNames[meta.BuiltinIndex(BuiltinCopy)] = "builtin.memory.copy"
	prog.HostNames[meta.BuiltinIndex(BuiltinFill)] = "builtin.memory.fill"

	for fi, f := range m.Funcs {
		fc := newFnCompiler(m, f, cfg, meta)
		cf, err := fc.compile()
		if err != nil {
			return nil, nil, fmt.Errorf("sfi: function %d (%q): %w", fi, f.Name, err)
		}
		if cfg.Vectorize {
			cf.Insts = vectorize(cf.Insts, cfg)
		}
		cf.Encode()
		prog.Funcs = append(prog.Funcs, cf)
	}

	// Indirect-call table: IR table slots to cpu entries.
	for _, slot := range m.Table {
		if slot == ir.NullFunc {
			prog.Table = append(prog.Table, cpu.TableEntry{FuncIdx: cpu.NullTableEntry})
			continue
		}
		cpuIdx := meta.FuncIndex(slot)
		if cpuIdx < 0 {
			return nil, nil, fmt.Errorf("sfi: table entry references import %d (unsupported)", slot)
		}
		sig, err := m.TypeOf(slot)
		if err != nil {
			return nil, nil, err
		}
		prog.Table = append(prog.Table, cpu.TableEntry{FuncIdx: cpuIdx, SigID: m.InternType(sig)})
	}

	for name, idx := range m.Exports {
		ci := meta.FuncIndex(idx)
		if ci < 0 {
			return nil, nil, fmt.Errorf("sfi: export %q is an import", name)
		}
		meta.Exports[name] = ci
	}
	return prog, meta, nil
}

// MustCompile is Compile that panics on error, for benchmarks and
// examples working with known-good kernels.
func MustCompile(m *ir.Module, cfg Config) (*cpu.Program, *Meta) {
	p, mt, err := Compile(m, cfg)
	if err != nil {
		panic(err)
	}
	return p, mt
}

// Disassemble renders a compiled function as annotated assembly, used
// by cmd/sfic to show the Figure 1 comparison.
func Disassemble(f *cpu.Func) string {
	out := fmt.Sprintf("%s:  ; %d bytes\n", f.Name, f.ByteLen)
	for i, in := range f.Insts {
		out += fmt.Sprintf("  %3d: %s\n", i, in.String())
	}
	return out
}
