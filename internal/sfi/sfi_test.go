package sfi_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/x86"
)

// fig1Module builds the two memory-access patterns of the paper's
// Figure 1: an int-to-pointer dereference (pattern 1) and a struct
// array-element read (pattern 2).
func fig1Module() *ir.Module {
	m := ir.NewModule("fig1", 1, 1)
	p1 := m.NewFunc("pattern1", ir.Sig([]ir.ValType{ir.I64}, []ir.ValType{ir.I64}))
	p1.Get(0).I32WrapI64().I64Load(0)
	p1.MustBuild()
	p2 := m.NewFunc("pattern2", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	p2.Get(1).I32(2).I32Shl().Get(0).I32Add()
	p2.I32Load(8)
	p2.MustBuild()
	m.MustExport("pattern1")
	m.MustExport("pattern2")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// TestFigure1InstructionCounts verifies the headline claim: Segue
// compiles each sandboxed access pattern with one fewer instruction
// than classic guard SFI, matching Figure 1's 2-vs-1 shape.
func TestFigure1InstructionCounts(t *testing.T) {
	m := fig1Module()
	counts := func(mode sfi.Mode) (p1, p2 int) {
		prog, _ := sfi.MustCompile(m, sfi.DefaultConfig(mode))
		return len(prog.Funcs[0].Insts), len(prog.Funcs[1].Insts)
	}
	g1, g2 := counts(sfi.ModeGuard)
	s1, s2 := counts(sfi.ModeSegue)
	n1, n2 := counts(sfi.ModeNative)
	if s1 >= g1 {
		t.Errorf("pattern 1: segue %d insts, guard %d — segue should be smaller", s1, g1)
	}
	if s2 >= g2 {
		t.Errorf("pattern 2: segue %d insts, guard %d — segue should be smaller", s2, g2)
	}
	// Segue reaches parity with native code (the §9 claim).
	if s1 != n1 || s2 != n2 {
		t.Errorf("segue (%d,%d) should match native (%d,%d) instruction counts", s1, s2, n1, n2)
	}
	t.Logf("pattern1 guard=%d segue=%d native=%d; pattern2 guard=%d segue=%d native=%d", g1, s1, n1, g2, s2, n2)
}

// TestWAMRLimitedSegue: with FoldOperandSlot disabled (WAMR's
// register-only Segue, §4.2), computed addresses do not shrink below
// the guard-mode instruction count.
func TestWAMRLimitedSegue(t *testing.T) {
	m := fig1Module()
	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	cfg.FoldOperandSlot = false
	prog, _ := sfi.MustCompile(m, cfg)
	limited := len(prog.Funcs[1].Insts)
	full, _ := sfi.MustCompile(m, sfi.DefaultConfig(sfi.ModeSegue))
	if len(full.Funcs[1].Insts) >= limited {
		t.Errorf("full segue (%d insts) should beat register-only segue (%d)", len(full.Funcs[1].Insts), limited)
	}
}

// TestLFIPinsR15: LFI keeps the heap base pinned even under Segue, so
// its functions save fewer callee registers and instrument returns.
func TestLFIPinsR15(t *testing.T) {
	if !sfi.DefaultConfig(sfi.ModeLFISegue).PinsR15() {
		t.Error("LFI+Segue must pin R15 (§4.3)")
	}
	if sfi.DefaultConfig(sfi.ModeSegue).PinsR15() {
		t.Error("full Segue must free R15")
	}
	cfg := sfi.DefaultConfig(sfi.ModeSegue)
	cfg.SegueLoadsOnly = true
	if !cfg.PinsR15() {
		t.Error("loads-only Segue still needs R15 for stores")
	}
}

// TestLFIReturnInstrumentation: LFI epilogues carry the NaCl-style
// return masking sequence; plain guard epilogues do not.
func TestLFIReturnInstrumentation(t *testing.T) {
	m := fig1Module()
	count := func(mode sfi.Mode) int {
		prog, _ := sfi.MustCompile(m, sfi.DefaultConfig(mode))
		return len(prog.Funcs[0].Insts)
	}
	if lfi, guard := count(sfi.ModeLFI), count(sfi.ModeGuard); lfi <= guard {
		t.Errorf("LFI (%d insts) should exceed guard (%d) from control-flow instrumentation", lfi, guard)
	}
}

// buildRegression is the register-clobbering shape that triggered the
// scaled-pair bug: pair-folded 16-bit loads feeding a branchy
// condition with shifted comparisons and a division.
func buildRegression() *ir.Module {
	m := ir.NewModule("regress", 1, 1)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	m.AddData(0, data)
	const (
		n    = 0
		y    = 1
		e    = 2
		acc  = 3
		base = 4
		y0   = 5
		y1   = 6
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	fb.I32(64).Set(base)
	fb.LoopNDyn(y, n, 0, 1, func() {
		fb.LoopN(e, 0, 8, 1, func() {
			fb.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(2).Set(y0)
			fb.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(6).Set(y1)
			fb.Get(y0).Get(y).I32(8).I32Shl().I32(128).I32Or().I32LeS()
			fb.Get(y).I32(8).I32Shl().I32(128).I32Or().Get(y1).I32LtS()
			fb.I32And()
			fb.If()
			fb.Get(y0).I32(100).I32Mul()
			fb.Get(y1).Get(y0).I32Sub().I32(1).I32Or().I32DivS()
			fb.Get(acc).I32Add().Set(acc)
			fb.End()
		})
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// TestScaledPairRegression guards against the register-protection bug
// where forming base+index*scale pairs could clobber the index while
// materializing the base.
func TestScaledPairRegression(t *testing.T) {
	interp, _ := ir.NewInterp(buildRegression(), nil)
	want, err := interp.Invoke("run", 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []sfi.Mode{sfi.ModeGuard, sfi.ModeSegue, sfi.ModeBoundsCheck, sfi.ModeLFI} {
		mod, err := rt.CompileModule(buildRegression(), sfi.DefaultConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Invoke("run", 3000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got[0] != want[0] {
			t.Errorf("%v: %#x, want %#x", mode, got[0], want[0])
		}
	}
}

// TestOversizedOffsetRegression covers the sibling bug: static offsets
// beyond the fold limit computed into an untracked register that a
// bounds-check temporary could clobber.
func TestOversizedOffsetRegression(t *testing.T) {
	m := ir.NewModule("bigoff", 16, 16)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(1, 0, 0, 1, func() {
		fb.Get(1).I32(2).I32Shl()
		fb.Get(1).I32(3).I32Mul()
		fb.I32Store(524288) // far beyond FoldDispLimit
		fb.Get(1).I32(2).I32Shl().I32Load8U(524289)
		fb.Get(2).I32Add().Set(2)
	})
	fb.Get(2)
	fb.MustBuild()
	m.MustExport("run")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	interp, _ := ir.NewInterp(m, nil)
	want, err := interp.Invoke("run", 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []sfi.Mode{sfi.ModeGuard, sfi.ModeSegue, sfi.ModeBoundsCheck, sfi.ModeBoundsSegue} {
		mod, err := rt.CompileModule(m, sfi.DefaultConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Invoke("run", 50)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got[0] != want[0] {
			t.Errorf("%v: %#x, want %#x", mode, got[0], want[0])
		}
	}
}

// TestDisassemble sanity-checks the listing output used by cmd/sfic.
func TestDisassemble(t *testing.T) {
	prog, _ := sfi.MustCompile(fig1Module(), sfi.DefaultConfig(sfi.ModeSegue))
	out := sfi.Disassemble(prog.Funcs[1])
	if len(out) == 0 {
		t.Fatal("empty disassembly")
	}
	found := false
	for _, in := range prog.Funcs[1].Insts {
		if in.HasMem() {
			if mem, _ := in.MemOperand(); mem.Seg == x86.SegGS {
				found = true
			}
		}
	}
	if !found {
		t.Error("segue compilation of pattern 2 contains no gs-relative access")
	}
}
