package sfi

import "repro/internal/x86"

// vectorize is the WAMR-style post-codegen vectorization pass (§4.2).
// It fuses two shapes into 128-bit SSE operations:
//
//	copy pair:  mov rA,[S] ; mov [D],rA ; mov rB,[S+8] ; mov [D+8],rB
//	            -> movdqu xmm14,[S] ; movdqu [D],xmm14
//	store pair: mov [D],imm ; mov [D+8],imm   (same immediate)
//	            -> movdqu [D],xmm14           (xmm14 preloaded per run)
//
// The matcher roots at STORE instructions and rejects segment-prefixed
// stores — the platform-neutral pattern only understands plain
// base+index+disp operands. This is precisely why enabling full Segue
// regresses memmove- and sieve-style code on WAMR while the loads-only
// tuning does not (§6.2, Figure 4): with Segue on stores the pass stops
// firing, with Segue on loads only the stores still match (and the pass
// simply carries the load's prefix into the fused movdqu).
func vectorize(insts []x86.Inst, cfg Config) []x86.Inst {
	// Collect branch targets; fused regions must not contain one.
	targets := map[int]bool{}
	for _, in := range insts {
		switch in.Op {
		case x86.JMP, x86.JCC:
			targets[in.Dst.Label] = true
		case x86.JTAB:
			targets[in.Src.Label] = true
			for _, t := range in.Targets {
				targets[t] = true
			}
		}
	}

	type repl struct {
		start, n int // replace insts[start:start+n]
		with     []x86.Inst
	}
	var repls []repl

	storeOK := func(m x86.Mem) bool { return m.Seg == x86.SegNone || m.Seg == x86.SegImplicit }
	sameBase := func(a, b x86.Mem, delta int32) bool {
		return a.Seg == b.Seg && a.Base == b.Base && a.Index == b.Index &&
			a.Scale == b.Scale && a.Addr32 == b.Addr32 && b.Disp == a.Disp+delta
	}

	for i := 0; i+3 < len(insts); i++ {
		// No branch may land inside the fused region.
		blocked := false
		for k := i + 1; k <= i+3; k++ {
			if targets[k] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		a, b, c, d := insts[i], insts[i+1], insts[i+2], insts[i+3]
		// Copy-pair shape.
		if a.Op == x86.MOV && a.W == x86.W64 && a.Dst.Kind == x86.KindReg && a.Src.Kind == x86.KindMem &&
			b.Op == x86.MOV && b.W == x86.W64 && b.Dst.Kind == x86.KindMem && b.Src.Kind == x86.KindReg &&
			b.Src.Reg == a.Dst.Reg && storeOK(b.Dst.Mem) &&
			c.Op == x86.MOV && c.W == x86.W64 && c.Dst.Kind == x86.KindReg && c.Src.Kind == x86.KindMem &&
			sameBase(a.Src.Mem, c.Src.Mem, 8) &&
			d.Op == x86.MOV && d.W == x86.W64 && d.Dst.Kind == x86.KindMem && d.Src.Kind == x86.KindReg &&
			d.Src.Reg == c.Dst.Reg && sameBase(b.Dst.Mem, d.Dst.Mem, 8) {
			repls = append(repls, repl{start: i, n: 4, with: []x86.Inst{
				{Op: x86.MOVDQU, W: x86.W128, Dst: x86.X(14), Src: x86.M(a.Src.Mem)},
				{Op: x86.MOVDQU, W: x86.W128, Dst: x86.M(b.Dst.Mem), Src: x86.X(14)},
			}})
			i += 3
			continue
		}
		// Store-pair shape: two adjacent zero stores become a single
		// 128-bit store (the zeroed xmm14 costs one PXOR; the win is
		// halving the store traffic, as WAMR's pass does for
		// memset-like loops).
		if a.Op == x86.MOV && a.W == x86.W64 && a.Dst.Kind == x86.KindMem && a.Src.Kind == x86.KindImm &&
			a.Src.Imm == 0 && storeOK(a.Dst.Mem) &&
			b.Op == x86.MOV && b.W == x86.W64 && b.Dst.Kind == x86.KindMem && b.Src.Kind == x86.KindImm &&
			b.Src.Imm == 0 && sameBase(a.Dst.Mem, b.Dst.Mem, 8) &&
			!targets[i+1] {
			repls = append(repls, repl{start: i, n: 2, with: []x86.Inst{
				{Op: x86.PXOR, W: x86.W128, Dst: x86.X(14), Src: x86.X(14)},
				{Op: x86.MOVDQU, W: x86.W128, Dst: x86.M(a.Dst.Mem), Src: x86.X(14)},
			}})
			i++
			continue
		}
	}
	if len(repls) == 0 {
		return insts
	}

	// Rebuild with an index remap so branch targets stay correct.
	remap := make([]int, len(insts)+1)
	var out []x86.Inst
	ri := 0
	for i := 0; i <= len(insts); i++ {
		remap[i] = len(out)
		if i == len(insts) {
			break
		}
		if ri < len(repls) && repls[ri].start == i {
			out = append(out, repls[ri].with...)
			// Map interior indices to the replacement start.
			for k := 1; k < repls[ri].n; k++ {
				remap[i+k] = remap[i]
			}
			i += repls[ri].n - 1
			ri++
			continue
		}
		out = append(out, insts[i])
	}
	for k := range out {
		in := &out[k]
		switch in.Op {
		case x86.JMP, x86.JCC:
			in.Dst.Label = remap[in.Dst.Label]
		case x86.JTAB:
			in.Src.Label = remap[in.Src.Label]
			for j, t := range in.Targets {
				in.Targets[j] = remap[t]
			}
		}
	}
	return out
}
