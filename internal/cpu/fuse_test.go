package cpu

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/x86"
)

// fuseLoop is the sum-0..n-1 loop from TestLoop: a two-instruction
// prologue, a compare+branch pair at the loop head (a branch target),
// and a three-instruction body ending in the back-edge jump.
func fuseLoop() *Func {
	return &Func{Name: "sum", Insts: []x86.Inst{
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RAX)}, // 0
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RCX)}, // 1
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RDI)}, // 2
		{Op: x86.JCC, Cond: x86.CondGE, Dst: x86.Label(7)},                  // 3
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX)}, // 4
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.Imm(1)},     // 5
		{Op: x86.JMP, Dst: x86.Label(2)},                                    // 6
		{Op: x86.RET},                                                       // 7
	}}
}

// TestFuseFormerShapes pins the former's group layout on the loop:
// greedy non-overlapping groups that never span a leader, keep a
// branch only in final position, and leave interior entries as intact
// singletons.
func TestFuseFormerShapes(t *testing.T) {
	f := fuseLoop()
	f.Encode()
	p := &Program{Funcs: []*Func{f}}
	fp := fuseProgram(p.decoded(), func(fn, pc int) bool { return true })

	insts := fp.funcs[0].insts
	type g struct{ pc, n int }
	var got []g
	for pc := range insts {
		if insts[pc].op == opGroup {
			got = append(got, g{pc, len(insts[pc].steps)})
		}
	}
	// {0,1} stops at the loop head (pc 2 is a branch target); {2,3}
	// ends with the conditional branch; {4,5,6} ends with the jump;
	// RET at 7 is not fusable.
	want := []g{{0, 2}, {2, 2}, {4, 3}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
	if fp.blocks != len(want) {
		t.Fatalf("blocks = %d, want %d", fp.blocks, len(want))
	}

	// Branches are final constituents only.
	steps := insts[2].steps
	if steps[len(steps)-1].kind != fsJcc {
		t.Fatalf("group at 2 does not end in fsJcc: %v", steps)
	}
	steps = insts[4].steps
	if steps[len(steps)-1].kind != fsJmp {
		t.Fatalf("group at 4 does not end in fsJmp: %v", steps)
	}

	// Interior entries stay valid singletons: branching into the middle
	// of a group must execute the original instruction.
	dec := p.decoded()[0].insts
	for _, pc := range []int{1, 3, 5, 6} {
		if insts[pc].op != dec[pc].op {
			t.Fatalf("interior pc %d op rewritten: %v != %v", pc, insts[pc].op, dec[pc].op)
		}
		if insts[pc].steps != nil {
			t.Fatalf("interior pc %d carries steps", pc)
		}
	}

	// gxBytes counts the constituents' encoded bytes beyond the head.
	wantX := uint32(dec[5].ilen) + uint32(dec[6].ilen)
	if insts[4].gxBytes != wantX {
		t.Fatalf("gxBytes = %d, want %d", insts[4].gxBytes, wantX)
	}
}

// TestFuseProfileTriggered checks the profile-guided path end to end:
// a fused-tier machine profiles on the predecoded engine, crosses the
// warmup threshold mid-call, builds the fused stream exactly once, and
// finishes with the bit-identical result.
func TestFuseProfileTriggered(t *testing.T) {
	restore := SetFuseWarmup(500, 4)
	defer restore()

	cold := &Func{Name: "cold", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(9)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, fuseLoop(), cold)
	m.Tier = TierFused

	if err := m.Call(0, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 499500 {
		t.Fatalf("sum(1000) = %d", m.Result())
	}
	if got := m.Prog.FuseBuilds(); got != 1 {
		t.Fatalf("FuseBuilds = %d, want 1 (warmup crossed mid-call)", got)
	}
	fp := m.Prog.fusedP.Load()
	if fp == nil {
		t.Fatal("no fused stream after warmup")
	}
	// The hot loop function fused; the never-executed function did not.
	hotGroups, coldGroups := 0, 0
	for pc := range fp.funcs[0].insts {
		if fp.funcs[0].insts[pc].op == opGroup {
			hotGroups++
		}
	}
	for pc := range fp.funcs[1].insts {
		if fp.funcs[1].insts[pc].op == opGroup {
			coldGroups++
		}
	}
	if hotGroups == 0 {
		t.Fatal("hot function formed no groups")
	}
	if coldGroups != 0 {
		t.Fatalf("cold function formed %d groups", coldGroups)
	}

	// Later calls run on the existing stream; no rebuild.
	if err := m.Call(0, 10); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 45 {
		t.Fatalf("sum(10) = %d", m.Result())
	}
	if got := m.Prog.FuseBuilds(); got != 1 {
		t.Fatalf("FuseBuilds = %d after second call, want 1", got)
	}
}

// TestFuseTelemetry checks the tier-2 counters: cpu.fuse.blocks and
// cpu.fuse.compile_ns record the build, cpu.dispatch.fused records the
// dispatch, and the cpu.tier gauge reflects the machine's tier.
func TestFuseTelemetry(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	SetFuseEager(true)
	defer SetFuseEager(false)

	blocks := telemetry.Default.Counter("cpu.fuse.blocks").Load()
	disp := telemetry.Default.Counter("cpu.dispatch.fused").Load()

	m, _ := testEnv(t, fuseLoop())
	m.Tier = TierFused
	if err := m.Call(0, 50); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.Default.Counter("cpu.fuse.blocks").Load(); got <= blocks {
		t.Fatalf("cpu.fuse.blocks did not advance: %d -> %d", blocks, got)
	}
	if got := telemetry.Default.Counter("cpu.dispatch.fused").Load(); got <= disp {
		t.Fatalf("cpu.dispatch.fused did not advance: %d -> %d", disp, got)
	}
	if got := telemetry.Default.Gauge("cpu.tier").Load(); got != int64(TierFused) {
		t.Fatalf("cpu.tier gauge = %d, want %d", got, TierFused)
	}
}

// TestFusedTrapAttribution faults on the final constituent of a group
// and checks the trap carries the constituent's original function and
// instruction indices, identically to the slow-path oracle.
func TestFusedTrapAttribution(t *testing.T) {
	SetFuseEager(true)
	defer SetFuseEager(false)
	f := &Func{Name: "fault", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RDI)},                // 0
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.Imm(8)},                    // 1
		{Op: x86.MOV, W: x86.W64, Dst: x86.M(x86.Mem{Base: x86.RCX}), Src: x86.R(x86.RSI)}, // 2
		{Op: x86.RET}, // 3
	}}
	run := func(tier Tier) error {
		m, heap := testEnv(t, f)
		m.Tier = tier
		return m.Call(0, heap+1<<20, 7) // heap+1MiB+8 lands in the guard
	}
	errF := run(TierFused)
	var trap *Trap
	if !errors.As(errF, &trap) {
		t.Fatalf("fused: got %v, want a trap", errF)
	}
	if trap.Fn != 0 || trap.PC != 2 {
		t.Fatalf("trap at fn %d pc %d, want fn 0 pc 2", trap.Fn, trap.PC)
	}
	errS := run(TierSlow)
	if errS == nil || errS.Error() != errF.Error() {
		t.Fatalf("oracle disagrees: fused %v, slow %v", errF, errS)
	}
}
