package cpu

import "repro/internal/x86"

// This file implements the predecoded fast path's instruction format.
// The emulator's portable loop (runSlow, the oracle) re-discovers
// operand kinds, register numbers, and segment bases through nested
// switches on every executed instruction. Predecoding resolves all of
// that once per Program into a flat array of dinst values: operand
// kinds collapse to a byte, effective-address recipes are precomputed
// (base/index register numbers, scale, sign-extended displacement,
// segment selector), and per-instruction encoded lengths are inlined so
// the fetch-cost computation needs no second slice lookup. The decoded
// form is immutable and shared by every Machine running the Program.

// Predecoded operand kinds (daccess.kind).
const (
	dNone uint8 = iota
	dReg
	dXmm
	dImm
	dMem
	dLabel
)

// Predecoded segment recipe (daccess.seg). SegImplicit (the native
// baseline's implicit heap base) resolves to the GS base like the
// emulator's slow path does.
const (
	dSegNone uint8 = iota
	dSegGS
	dSegFS
)

// dRegNone marks an absent base/index register.
const dRegNone = 0xFF

// daccess is a predecoded operand: everything the fast path needs to
// read or write it without consulting x86.Operand again.
type daccess struct {
	kind   uint8
	reg    uint8 // GPR or XMM register number
	seg    uint8
	base   uint8 // dRegNone when absent
	index  uint8 // dRegNone when absent (or scale 0)
	scale  uint8
	shape  uint8 // effective-address shape (eaSlow/eaBaseDisp/eaBaseDispGS)
	addr32 bool
	imm    int64  // immediate value, or branch-target label
	disp   uint64 // sign-extended displacement, ready to add
}

// Effective-address shapes (daccess.shape), classified once at decode
// time so eaD's fast cases inline into the dispatch loops.
const (
	eaSlow       uint8 = iota // general recipe: index, addr32, or FS
	eaBaseDisp                // Regs[base] + disp
	eaBaseDispGS              // Regs[base] + disp + GSBase
)

// dinst is one predecoded instruction.
type dinst struct {
	op       x86.Op
	w        x86.Width
	srcW     x86.Width
	cond     x86.Cond
	ilen     int32
	dst, src daccess
	targets  []int // JTAB targets (shared with the x86.Inst; read-only)
}

// decFunc is one predecoded function.
type decFunc struct {
	insts []dinst
}

func decodeAccess(o x86.Operand) daccess {
	switch o.Kind {
	case x86.KindReg:
		return daccess{kind: dReg, reg: uint8(o.Reg)}
	case x86.KindXmm:
		return daccess{kind: dXmm, reg: uint8(o.Xmm)}
	case x86.KindImm:
		return daccess{kind: dImm, imm: o.Imm}
	case x86.KindLabel:
		return daccess{kind: dLabel, imm: int64(o.Label)}
	case x86.KindMem:
		a := daccess{
			kind:   dMem,
			scale:  o.Mem.Scale,
			addr32: o.Mem.Addr32,
			disp:   uint64(int64(o.Mem.Disp)),
			base:   dRegNone,
			index:  dRegNone,
			// Labels ride along for LEA-of-label style operands (none
			// today), and Imm for uniformity with the slow path.
			imm: o.Imm,
		}
		if o.Mem.Base != x86.RegNone {
			a.base = uint8(o.Mem.Base)
		}
		if o.Mem.HasIndex() {
			a.index = uint8(o.Mem.Index)
		}
		switch o.Mem.Seg {
		case x86.SegGS, x86.SegImplicit:
			a.seg = dSegGS
		case x86.SegFS:
			a.seg = dSegFS
		}
		if a.base != dRegNone && a.index == dRegNone && !a.addr32 {
			switch a.seg {
			case dSegNone:
				a.shape = eaBaseDisp
			case dSegGS:
				a.shape = eaBaseDispGS
			}
		}
		return a
	default:
		return daccess{kind: dNone, imm: o.Imm}
	}
}

func decodeInst(in *x86.Inst, ilen int) dinst {
	return dinst{
		op:      in.Op,
		w:       in.W,
		srcW:    in.SrcW,
		cond:    in.Cond,
		ilen:    int32(ilen),
		dst:     decodeAccess(in.Dst),
		src:     decodeAccess(in.Src),
		targets: in.Targets,
	}
}

// decoded returns the predecoded program, building it on first use.
// The result is shared by every Machine bound to this Program; it must
// never be mutated.
func (p *Program) decoded() []decFunc {
	p.decOnce.Do(func() {
		p.dec = make([]decFunc, len(p.Funcs))
		for fi, f := range p.Funcs {
			df := decFunc{insts: make([]dinst, len(f.Insts))}
			for i := range f.Insts {
				// The slow path assumes 4 encoded bytes when the
				// compiler skipped Encode; mirror that.
				ilen := 4
				if i < len(f.InstLens) {
					ilen = f.InstLens[i]
				}
				df.insts[i] = decodeInst(&f.Insts[i], ilen)
			}
			p.dec[fi] = df
		}
	})
	return p.dec
}
