// Package cpu emulates the modeled x86-64 subset with a calibrated cycle
// cost model. It executes programs produced by the SFI compilers in
// internal/sfi against a simulated address space (internal/mem) and
// memory hierarchy (internal/cache), enforcing segment-relative
// addressing, PKRU protection-key checks, guard-page traps, and epoch
// interruption — everything the paper's measurements depend on.
package cpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/x86"
)

// Func is one compiled function.
type Func struct {
	Name  string
	Insts []x86.Inst

	// ByteLen is the encoded size of the function; InstLens holds the
	// per-instruction encoded lengths used for front-end fetch cost.
	ByteLen  int
	InstLens []int
}

// Encode fills ByteLen and InstLens from the x86 encoder. Compilers call
// this once after emission.
func (f *Func) Encode() {
	_, offsets, total := x86.EncodeFunc(f.Insts)
	f.ByteLen = total
	f.InstLens = make([]int, len(f.Insts))
	for i := range f.Insts {
		f.InstLens[i] = offsets[i+1] - offsets[i]
	}
}

// TableEntry is one call_indirect table slot: the callee function index
// and its signature id (interned by the compiler).
type TableEntry struct {
	FuncIdx int
	SigID   int
}

// NullTableEntry marks an uninitialized slot.
const NullTableEntry = -1

// HostFunc implements an imported function at the machine level. It may
// inspect and modify machine state (registers, memory). The integer
// result convention is RAX; the host reads arguments from the argument
// registers per the internal ABI.
type HostFunc func(m *Machine) error

// Program is a compiled module image: functions, the indirect-call
// table, and host-import slots. After compilation a Program is
// immutable — runtimes bind per-instance host implementations into
// Machine.Hosts, never into Program.Hosts — so one compiled Program is
// safely shared by any number of concurrent Machines (the module-
// compile cache in internal/rt relies on this).
type Program struct {
	Funcs []*Func
	Table []TableEntry
	Hosts []HostFunc

	// HostNames parallels Hosts, for diagnostics.
	HostNames []string

	// Predecoded fast-path form, built lazily once and shared by all
	// Machines executing this Program.
	decOnce sync.Once
	dec     []decFunc

	// Fused tier state (fuse.go/profile.go). The fused stream is built
	// at most once per Program — from merged per-machine profiles or
	// eagerly — and published through fusedP, so a module fused once
	// serves every subsequent Machine (the module cache in internal/rt
	// shares Programs across instances for exactly this amortization).
	fuseMu     sync.Mutex
	profAgg    [][]uint32 // merged per-pc execution counts (under fuseMu)
	profTotal  uint64     // total profiled instructions (under fuseMu)
	fusedP     atomic.Pointer[fusedProg]
	fuseBuilds atomic.Uint32
}

// FuseBuilds returns how many times the fused stream was compiled for
// this Program — at most 1 by construction; tests assert on it.
func (p *Program) FuseBuilds() uint32 { return p.fuseBuilds.Load() }

// FusedBlocks returns the number of superinstruction groups in the
// fused stream, or 0 if fusion has not run yet.
func (p *Program) FusedBlocks() int {
	if fp := p.fusedP.Load(); fp != nil {
		return fp.blocks
	}
	return 0
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// CodeBytes returns the total encoded size of all functions — the
// "compiled binary size" metric of Table 2.
func (p *Program) CodeBytes() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.ByteLen
	}
	return n
}

// TrapKind classifies machine traps.
type TrapKind uint8

// Machine trap kinds.
const (
	TrapPageFault TrapKind = iota // unmapped/PROT_NONE access (guard hit)
	TrapPkey                      // MPK violation (SEGV_PKUERR)
	TrapProt                      // permission violation on a mapped page
	TrapDivZero                   // integer division by zero
	TrapOverflow                  // INT_MIN / -1
	TrapUD                        // ud2 executed (unreachable)
	TrapBounds                    // explicit bounds check failed (trapif)
	TrapEpoch                     // epoch deadline reached (resumable)
	TrapCallDepth                 // call stack exhausted
	TrapTableOOB                  // indirect call table index out of range
	TrapTableNull                 // indirect call to a null slot
	TrapTableSig                  // indirect call signature mismatch
)

var trapKindNames = [...]string{
	"page fault", "protection-key fault", "protection fault",
	"divide by zero", "integer overflow", "invalid opcode",
	"bounds check failed", "epoch interrupt", "call depth exceeded",
	"table index out of bounds", "null table entry", "indirect signature mismatch",
}

// Trap is the error produced when the machine traps. TrapEpoch is
// special: the machine remains resumable via Run.
type Trap struct {
	Kind TrapKind
	Addr uint64 // faulting address for memory traps
	Fn   int    // function index
	PC   int    // instruction index within the function
}

// Error implements error.
func (t *Trap) Error() string {
	name := "trap"
	if int(t.Kind) < len(trapKindNames) {
		name = trapKindNames[t.Kind]
	}
	if t.Kind == TrapPageFault || t.Kind == TrapPkey || t.Kind == TrapProt {
		return fmt.Sprintf("cpu: %s at %#x (fn %d pc %d)", name, t.Addr, t.Fn, t.PC)
	}
	return fmt.Sprintf("cpu: %s (fn %d pc %d)", name, t.Fn, t.PC)
}

// Resumable reports whether Run may be called again after this trap.
func (t *Trap) Resumable() bool { return t.Kind == TrapEpoch }
