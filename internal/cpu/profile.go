package cpu

import (
	"errors"
	"sync/atomic"
)

// This file is the fused tier's profile pass. A fused-tier Machine runs
// the predecoded engine with per-pc execution counting switched on (a
// single hoisted nil check per frame gates it, so fast-tier machines
// pay nothing) until its per-Run instruction budget runs out. The
// budget check happens at an instruction boundary with fr.pc pointing
// at the next unexecuted instruction, so the run bails with
// errProfileBudget, merges its counts into the Program, triggers the
// one-time fused build, and resumes mid-call on the fused stream — a
// single long Invoke still reaches the fused tier.

// fuseWarmupInsts is both the per-Run profile budget and the merged
// count at which the fused stream is built. Variables (not constants)
// so tests can shrink the warmup.
var (
	fuseWarmupInsts = int64(100_000)
	fuseHotCount    = uint32(64)
)

// SetFuseWarmup overrides the profile warmup budget and hot threshold
// and returns a function restoring the previous values. It is a testing
// hook: call it before starting any fused-tier machines and restore
// after they stop.
func SetFuseWarmup(insts int64, hot uint32) (restore func()) {
	oldInsts, oldHot := fuseWarmupInsts, fuseHotCount
	fuseWarmupInsts, fuseHotCount = insts, hot
	return func() { fuseWarmupInsts, fuseHotCount = oldInsts, oldHot }
}

// fuseEager, when set, makes fused-tier machines build the fused
// stream before their first instruction, treating every block as hot.
// It exists for differential tests and benchmarks that need full fused
// coverage on short programs; production use is profile-guided.
var fuseEager atomic.Bool

// SetFuseEager toggles eager fusion for fused-tier machines (off by
// default). With it on, the profile pass is skipped and every
// fusable group is formed, which gives deterministic fused-stream
// coverage to short-running differential and fuzz tests.
func SetFuseEager(on bool) { fuseEager.Store(on) }

// errProfileBudget is returned by runFast when the profiling budget is
// exhausted. It never escapes runTiered: the machine state is a valid
// instruction boundary, so execution continues on the fused stream.
var errProfileBudget = errors.New("cpu: profile budget reached")

// runTiered is the fused tier's engine selector: execute the fused
// stream when it exists, otherwise profile on the predecoded engine
// and build the fused stream once enough counts accumulate.
func (m *Machine) runTiered(tele bool) error {
	p := m.Prog
	for {
		if fp := p.fusedP.Load(); fp != nil {
			m.profCounts = nil
			if tele {
				ctrDispatchFused.Inc()
			}
			return m.runFused(fp)
		}
		if fuseEager.Load() {
			p.buildFusedEager()
			continue
		}
		m.ensureProf()
		if tele {
			ctrDispatchFast.Inc()
		}
		err := m.runFast()
		p.mergeProfile(m)
		if err != errProfileBudget {
			return err
		}
		// Budget reached mid-run: the merge above crossed the build
		// threshold, so the next loop iteration resumes on the fused
		// stream from the exact instruction boundary runFast stopped at.
	}
}

// ensureProf arms the profile pass for one Run.
func (m *Machine) ensureProf() {
	if m.profCounts == nil {
		dec := m.Prog.decoded()
		m.profCounts = make([][]uint32, len(dec))
		for fn := range dec {
			m.profCounts[fn] = make([]uint32, len(dec[fn].insts))
		}
	}
	m.profLeft = fuseWarmupInsts
}

// mergeProfile folds the machine's local counts into the Program's
// aggregate and builds the fused stream once the merged total crosses
// the warmup threshold. Per-machine counts are plain increments; only
// the merge takes the Program lock, so concurrent machines profile
// race-free.
func (p *Program) mergeProfile(m *Machine) {
	if m.profCounts == nil {
		return
	}
	p.fuseMu.Lock()
	defer p.fuseMu.Unlock()
	if p.fusedP.Load() != nil {
		return
	}
	if p.profAgg == nil {
		p.profAgg = make([][]uint32, len(m.profCounts))
		for fn := range m.profCounts {
			p.profAgg[fn] = make([]uint32, len(m.profCounts[fn]))
		}
	}
	for fn := range m.profCounts {
		agg := p.profAgg[fn]
		for pc, c := range m.profCounts[fn] {
			if c != 0 {
				agg[pc] += c
				p.profTotal += uint64(c)
				m.profCounts[fn][pc] = 0
			}
		}
	}
	if p.profTotal >= uint64(fuseWarmupInsts) {
		p.buildFusedLocked(false)
	}
}

// buildFusedEager builds the fused stream with every block treated hot.
func (p *Program) buildFusedEager() {
	p.fuseMu.Lock()
	defer p.fuseMu.Unlock()
	if p.fusedP.Load() == nil {
		p.buildFusedLocked(true)
	}
}
