package cpu

import "repro/internal/x86"

// CostModel holds the per-instruction-class cycle costs and structural
// penalties the emulator charges. The defaults are calibrated so that a
// modern wide out-of-order core's *relative* behaviour is reproduced:
// ~4-wide issue for simple ops, loads with L1 latency hidden, realistic
// penalties for cache/TLB misses and branch mispredictions, and the
// measured WRPKRU cost from the paper (§6.4.1: a transition grows by
// roughly 44 cycles).
//
// Absolute cycle counts are not meaningful; ratios between compilation
// modes on the same workload are.
type CostModel struct {
	ALU    float64 // simple integer op, mov, lea, setcc, cmov
	Mul    float64
	Div    float64
	Load   float64 // includes L1-hit latency as seen by a full pipeline
	Store  float64
	Branch float64 // predicted branch
	Call   float64 // call/ret beyond their stack traffic

	FPAdd  float64 // f64 add/sub/mul, converts, compares
	FPDiv  float64 // f64 div
	FPSqrt float64
	Vec    float64 // 128-bit move/ALU

	WRPKRU   float64 // §6.4.1: ≈44 cycles
	WRGSBASE float64 // FSGSBASE user instruction
	Epoch    float64 // epoch check (cmp+jcc pair)

	// Spectre-hardening pseudo-op costs (Swivel-style). Endbr is the
	// CET landing pad (near-free decode slot), BTBFlush the
	// indirect-predictor barrier Swivel-SFI pays on untrusted indirect
	// transfers, Interlock the register-interlock / SLH mask applied to
	// speculatively loaded values.
	Endbr     float64
	BTBFlush  float64
	Interlock float64

	Mispredict  float64 // branch misprediction penalty
	TLBMiss     float64 // 4-level page-table walk
	L2Hit       float64 // L1 miss, L2 hit
	MemAccess   float64 // miss to memory
	IndirectSeq float64 // the table-bounds + sig-check glue of call_indirect

	// FetchBytesPerCycle models the front-end: every instruction adds
	// len(bytes)/FetchBytesPerCycle cycles, which is how the one-byte
	// gs/addr-size prefixes cost real time in tight loops (the
	// 473_astar outlier).
	FetchBytesPerCycle float64

	// FreqGHz converts cycles to wall-clock time; the paper pins the
	// benchmark core at 2.2 GHz.
	FreqGHz float64
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		ALU:    0.25,
		Mul:    1.0,
		Div:    18.0,
		Load:   0.5,
		Store:  0.5,
		Branch: 0.5,
		Call:   1.0,

		FPAdd:  0.5,
		FPDiv:  8.0,
		FPSqrt: 10.0,
		Vec:    0.5,

		WRPKRU:   44.0,
		WRGSBASE: 3.0,
		Epoch:    0.5,

		Endbr:     0.25,
		BTBFlush:  30.0,
		Interlock: 0.75,

		Mispredict:  14.0,
		TLBMiss:     22.0,
		L2Hit:       8.0,
		MemAccess:   60.0,
		IndirectSeq: 2.0,

		FetchBytesPerCycle: 16.0,
		FreqGHz:            2.2,
	}
}

// opCost returns the base execution cost of an instruction, excluding
// fetch, memory-hierarchy, and misprediction penalties.
func (c *CostModel) opCost(op x86.Op) float64 {
	switch op {
	case x86.IMUL, x86.MULX:
		return c.Mul
	case x86.IDIV, x86.DIV:
		return c.Div
	case x86.JMP, x86.JCC, x86.TRAPIF:
		return c.Branch
	case x86.CALLFN, x86.CALLREG, x86.CALLHOST, x86.RET:
		return c.Call
	case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.MINSD, x86.MAXSD, x86.NEGSD, x86.ABSSD,
		x86.UCOMISD, x86.CVTSI2SD, x86.CVTTSD2SI, x86.MOVSD, x86.MOVQXR, x86.MOVQRX:
		return c.FPAdd
	case x86.DIVSD:
		return c.FPDiv
	case x86.SQRTSD:
		return c.FPSqrt
	case x86.MOVDQU, x86.PADDD, x86.PXOR:
		return c.Vec
	case x86.WRPKRU, x86.RDPKRU:
		return c.WRPKRU
	case x86.WRGSBASE, x86.RDGSBASE, x86.WRFSBASE:
		return c.WRGSBASE
	case x86.EPOCH:
		return c.Epoch
	case x86.ENDBR:
		return c.Endbr
	case x86.BTBFLUSH:
		return c.BTBFlush
	case x86.INTERLOCK:
		return c.Interlock
	default:
		return c.ALU
	}
}

// CyclesToNanos converts a cycle count to nanoseconds at the model's
// pinned frequency.
func (c *CostModel) CyclesToNanos(cycles float64) float64 {
	return cycles / c.FreqGHz
}
