package cpu

import (
	"testing"

	"repro/internal/x86"
)

// diffRun executes the same call on a fast-path and a slow-path machine
// built from identical environments and asserts the architectural state
// and Stats are bit-identical.
func diffRun(t *testing.T, funcs []*Func, fnIdx int, args ...uint64) {
	t.Helper()
	run := func(slow bool) (*Machine, error) {
		m, heap := testEnv(t, funcs...)
		m.SlowPath = slow
		m.Regs[x86.RDX] = heap // convention: heap base in rdx for mem tests
		err := m.Call(fnIdx, args...)
		return m, err
	}
	fast, errF := run(false)
	slow, errS := run(true)

	if (errF == nil) != (errS == nil) {
		t.Fatalf("error mismatch: fast=%v slow=%v", errF, errS)
	}
	if errF != nil && errF.Error() != errS.Error() {
		t.Fatalf("error text mismatch: fast=%v slow=%v", errF, errS)
	}
	if fast.Regs != slow.Regs {
		t.Fatalf("register mismatch:\nfast %v\nslow %v", fast.Regs, slow.Regs)
	}
	if fast.XmmLo != slow.XmmLo || fast.XmmHi != slow.XmmHi {
		t.Fatalf("xmm mismatch")
	}
	if fast.GSBase != slow.GSBase || fast.FSBase != slow.FSBase || fast.PKRU != slow.PKRU {
		t.Fatalf("segment/pkru mismatch")
	}
	if fast.zf != slow.zf || fast.sf != slow.sf || fast.cf != slow.cf || fast.of != slow.of {
		t.Fatalf("flags mismatch")
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("stats mismatch:\nfast %+v\nslow %+v", fast.Stats, slow.Stats)
	}
	// Compare the heap region the programs may have written.
	const heapBase = 0x100000000
	for off := uint64(0); off < 4096; off += 8 {
		if f, s := fast.AS.Load(heapBase+off, 8), slow.AS.Load(heapBase+off, 8); f != s {
			t.Fatalf("heap mismatch at +%#x: fast %#x slow %#x", off, f, s)
		}
	}
}

// TestFastSlowAgreement drives both execution paths through a program
// covering the integer ALU, shifts, flags consumers, memory operands
// (including scaled index and 32-bit address override), calls, a jump
// table, and scalar/vector float ops, asserting bit-identical results.
func TestFastSlowAgreement(t *testing.T) {
	heapMem := func(disp int32) x86.Mem {
		return x86.Mem{Base: x86.RDX, Disp: disp}
	}
	callee := &Func{Name: "callee", Insts: []x86.Inst{
		{Op: x86.LEA, W: x86.W64, Dst: x86.R(x86.RAX),
			Src: x86.M(x86.Mem{Base: x86.RDI, Index: x86.RSI, Scale: 4, Disp: 17})},
		{Op: x86.RET},
	}}
	main := &Func{Name: "main", Insts: []x86.Inst{
		// ALU + flags.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(12345)},
		{Op: x86.SHL, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(3)},
		{Op: x86.XOR, W: x86.W32, Dst: x86.R(x86.RAX), Src: x86.Imm(0x5A5A)},
		{Op: x86.NEG, W: x86.W64, Dst: x86.R(x86.RAX)},
		{Op: x86.NOT, W: x86.W64, Dst: x86.R(x86.RAX)},
		{Op: x86.POPCNT, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RAX)},
		// Memory: store/load through [rdx+disp], scaled index, addr32.
		{Op: x86.MOV, W: x86.W64, Dst: x86.M(heapMem(0)), Src: x86.R(x86.RAX)},
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RBX), Src: x86.M(heapMem(0))},
		{Op: x86.MOV, W: x86.W32, Dst: x86.M(x86.Mem{Base: x86.RDX, Index: x86.RCX, Scale: 8, Disp: 64}),
			Src: x86.Imm(0x7EAD)},
		{Op: x86.MOVZX, W: x86.W64, SrcW: x86.W16, Dst: x86.R(x86.R10), Src: x86.M(heapMem(0))},
		{Op: x86.MOVSX, W: x86.W64, SrcW: x86.W8, Dst: x86.R(x86.R11), Src: x86.M(heapMem(1))},
		// Branching loop: r8 counts down from rdi&7.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.R(x86.RDI)}, // 12
		{Op: x86.AND, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(7)},
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(0)}, // 14
		{Op: x86.JCC, Cond: x86.CondE, Dst: x86.Label(18)},
		{Op: x86.SUB, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(1)},
		{Op: x86.JMP, Dst: x86.Label(14)},
		// Call the LEA callee. 18:
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RSI), Src: x86.Imm(6)},
		{Op: x86.CALLFN, Dst: x86.Imm(1)},
		// Jump table on rax&3.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R9), Src: x86.R(x86.RAX)}, // 20
		{Op: x86.AND, W: x86.W64, Dst: x86.R(x86.R9), Src: x86.Imm(3)},
		{Op: x86.JTAB, Dst: x86.R(x86.R9), Src: x86.Label(26), Targets: []int{23, 24, 25, 26}},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(100)}, // 23
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(200)}, // 24
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(300)}, // 25
		// Floats. 26:
		{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(0), Src: x86.R(x86.RDI)},
		{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(1), Src: x86.R(x86.RCX)},
		{Op: x86.ADDSD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.MULSD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.SQRTSD, Dst: x86.X(2), Src: x86.X(0)},
		{Op: x86.UCOMISD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.SETCC, Cond: x86.CondA, Dst: x86.R(x86.R12)},
		{Op: x86.MOVSD, Dst: x86.M(heapMem(128)), Src: x86.X(2)},
		{Op: x86.MOVSD, Dst: x86.X(3), Src: x86.M(heapMem(128))},
		// Vector.
		{Op: x86.MOVQRX, Dst: x86.X(4), Src: x86.R(x86.RAX)},
		{Op: x86.PADDD, Dst: x86.X(4), Src: x86.X(4)},
		{Op: x86.PXOR, Dst: x86.X(5), Src: x86.X(4)},
		{Op: x86.MOVDQU, Dst: x86.M(heapMem(256)), Src: x86.X(4)},
		{Op: x86.MOVDQU, Dst: x86.X(6), Src: x86.M(heapMem(256))},
		{Op: x86.MOVQXR, Dst: x86.R(x86.R13), Src: x86.X(6)},
		// Division.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.Imm(7)},
		{Op: x86.CQO, W: x86.W64},
		{Op: x86.IDIV, W: x86.W64, Dst: x86.R(x86.RCX)},
		{Op: x86.RET},
	}}
	for _, arg := range []uint64{0, 1, 5, 13, 255, 1 << 20, 0xFFFFFFFFFFFFFFFF} {
		diffRun(t, []*Func{main, callee}, 0, arg)
	}
}

// TestFastSlowTraps checks the two paths agree on trap kinds and
// positions for div-by-zero, bounds, and page-fault traps.
func TestFastSlowTraps(t *testing.T) {
	div := &Func{Name: "div0", Insts: []x86.Inst{
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RCX)},
		{Op: x86.CQO, W: x86.W64},
		{Op: x86.IDIV, W: x86.W64, Dst: x86.R(x86.RCX)},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{div}, 0, 10)

	bounds := &Func{Name: "oob", Insts: []x86.Inst{
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RDI), Src: x86.Imm(8)},
		{Op: x86.TRAPIF, Cond: x86.CondA},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{bounds}, 0, 9)

	fault := &Func{Name: "fault", Insts: []x86.Inst{
		// The test heap is 1 MiB; +1 MiB lands in the PROT_NONE guard.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX),
			Src: x86.M(x86.Mem{Base: x86.RDX, Disp: 1 << 20})},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{fault}, 0)
}
