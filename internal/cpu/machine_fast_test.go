package cpu

import (
	"testing"

	"repro/internal/x86"
)

// diffRun executes the same call on one machine per tier, built from
// identical environments, and asserts the architectural state and Stats
// are bit-identical across all of them. The fused tier runs eagerly so
// these short programs execute on the fused stream, not the warmup path.
func diffRun(t *testing.T, funcs []*Func, fnIdx int, args ...uint64) {
	t.Helper()
	SetFuseEager(true)
	defer SetFuseEager(false)
	run := func(tier Tier) (*Machine, error) {
		m, heap := testEnv(t, funcs...)
		m.Tier = tier
		m.Regs[x86.RDX] = heap // convention: heap base in rdx for mem tests
		err := m.Call(fnIdx, args...)
		return m, err
	}
	slow, errS := run(TierSlow)
	for _, tier := range []Tier{TierFast, TierFused} {
		got, errG := run(tier)
		if (errG == nil) != (errS == nil) {
			t.Fatalf("%v error mismatch: %v=%v slow=%v", tier, tier, errG, errS)
		}
		if errG != nil && errG.Error() != errS.Error() {
			t.Fatalf("%v error text mismatch: %v=%v slow=%v", tier, tier, errG, errS)
		}
		if got.Regs != slow.Regs {
			t.Fatalf("%v register mismatch:\n%v %v\nslow %v", tier, tier, got.Regs, slow.Regs)
		}
		if got.XmmLo != slow.XmmLo || got.XmmHi != slow.XmmHi {
			t.Fatalf("%v xmm mismatch", tier)
		}
		if got.GSBase != slow.GSBase || got.FSBase != slow.FSBase || got.PKRU != slow.PKRU {
			t.Fatalf("%v segment/pkru mismatch", tier)
		}
		if got.zf != slow.zf || got.sf != slow.sf || got.cf != slow.cf || got.of != slow.of {
			t.Fatalf("%v flags mismatch", tier)
		}
		if got.Stats != slow.Stats {
			t.Fatalf("%v stats mismatch:\n%v %+v\nslow %+v", tier, tier, got.Stats, slow.Stats)
		}
		// Compare the heap region the programs may have written.
		const heapBase = 0x100000000
		for off := uint64(0); off < 4096; off += 8 {
			if g, s := got.AS.Load(heapBase+off, 8), slow.AS.Load(heapBase+off, 8); g != s {
				t.Fatalf("%v heap mismatch at +%#x: %#x slow %#x", tier, off, g, s)
			}
		}
	}
}

// TestFastSlowAgreement drives both execution paths through a program
// covering the integer ALU, shifts, flags consumers, memory operands
// (including scaled index and 32-bit address override), calls, a jump
// table, and scalar/vector float ops, asserting bit-identical results.
func TestFastSlowAgreement(t *testing.T) {
	heapMem := func(disp int32) x86.Mem {
		return x86.Mem{Base: x86.RDX, Disp: disp}
	}
	callee := &Func{Name: "callee", Insts: []x86.Inst{
		{Op: x86.LEA, W: x86.W64, Dst: x86.R(x86.RAX),
			Src: x86.M(x86.Mem{Base: x86.RDI, Index: x86.RSI, Scale: 4, Disp: 17})},
		{Op: x86.RET},
	}}
	main := &Func{Name: "main", Insts: []x86.Inst{
		// ALU + flags.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(12345)},
		{Op: x86.SHL, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(3)},
		{Op: x86.XOR, W: x86.W32, Dst: x86.R(x86.RAX), Src: x86.Imm(0x5A5A)},
		{Op: x86.NEG, W: x86.W64, Dst: x86.R(x86.RAX)},
		{Op: x86.NOT, W: x86.W64, Dst: x86.R(x86.RAX)},
		{Op: x86.POPCNT, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RAX)},
		// Memory: store/load through [rdx+disp], scaled index, addr32.
		{Op: x86.MOV, W: x86.W64, Dst: x86.M(heapMem(0)), Src: x86.R(x86.RAX)},
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RBX), Src: x86.M(heapMem(0))},
		{Op: x86.MOV, W: x86.W32, Dst: x86.M(x86.Mem{Base: x86.RDX, Index: x86.RCX, Scale: 8, Disp: 64}),
			Src: x86.Imm(0x7EAD)},
		{Op: x86.MOVZX, W: x86.W64, SrcW: x86.W16, Dst: x86.R(x86.R10), Src: x86.M(heapMem(0))},
		{Op: x86.MOVSX, W: x86.W64, SrcW: x86.W8, Dst: x86.R(x86.R11), Src: x86.M(heapMem(1))},
		// Branching loop: r8 counts down from rdi&7.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.R(x86.RDI)}, // 12
		{Op: x86.AND, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(7)},
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(0)}, // 14
		{Op: x86.JCC, Cond: x86.CondE, Dst: x86.Label(18)},
		{Op: x86.SUB, W: x86.W64, Dst: x86.R(x86.R8), Src: x86.Imm(1)},
		{Op: x86.JMP, Dst: x86.Label(14)},
		// Call the LEA callee. 18:
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RSI), Src: x86.Imm(6)},
		{Op: x86.CALLFN, Dst: x86.Imm(1)},
		// Jump table on rax&3.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.R9), Src: x86.R(x86.RAX)}, // 20
		{Op: x86.AND, W: x86.W64, Dst: x86.R(x86.R9), Src: x86.Imm(3)},
		{Op: x86.JTAB, Dst: x86.R(x86.R9), Src: x86.Label(26), Targets: []int{23, 24, 25, 26}},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(100)}, // 23
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(200)}, // 24
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(300)}, // 25
		// Floats. 26:
		{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(0), Src: x86.R(x86.RDI)},
		{Op: x86.CVTSI2SD, W: x86.W64, Dst: x86.X(1), Src: x86.R(x86.RCX)},
		{Op: x86.ADDSD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.MULSD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.SQRTSD, Dst: x86.X(2), Src: x86.X(0)},
		{Op: x86.UCOMISD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.SETCC, Cond: x86.CondA, Dst: x86.R(x86.R12)},
		{Op: x86.MOVSD, Dst: x86.M(heapMem(128)), Src: x86.X(2)},
		{Op: x86.MOVSD, Dst: x86.X(3), Src: x86.M(heapMem(128))},
		// Vector.
		{Op: x86.MOVQRX, Dst: x86.X(4), Src: x86.R(x86.RAX)},
		{Op: x86.PADDD, Dst: x86.X(4), Src: x86.X(4)},
		{Op: x86.PXOR, Dst: x86.X(5), Src: x86.X(4)},
		{Op: x86.MOVDQU, Dst: x86.M(heapMem(256)), Src: x86.X(4)},
		{Op: x86.MOVDQU, Dst: x86.X(6), Src: x86.M(heapMem(256))},
		{Op: x86.MOVQXR, Dst: x86.R(x86.R13), Src: x86.X(6)},
		// Division.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.Imm(7)},
		{Op: x86.CQO, W: x86.W64},
		{Op: x86.IDIV, W: x86.W64, Dst: x86.R(x86.RCX)},
		{Op: x86.RET},
	}}
	for _, arg := range []uint64{0, 1, 5, 13, 255, 1 << 20, 0xFFFFFFFFFFFFFFFF} {
		diffRun(t, []*Func{main, callee}, 0, arg)
	}
}

// TestFastSlowTraps checks the two paths agree on trap kinds and
// positions for div-by-zero, bounds, and page-fault traps.
func TestFastSlowTraps(t *testing.T) {
	div := &Func{Name: "div0", Insts: []x86.Inst{
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RCX)},
		{Op: x86.CQO, W: x86.W64},
		{Op: x86.IDIV, W: x86.W64, Dst: x86.R(x86.RCX)},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{div}, 0, 10)

	bounds := &Func{Name: "oob", Insts: []x86.Inst{
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RDI), Src: x86.Imm(8)},
		{Op: x86.TRAPIF, Cond: x86.CondA},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{bounds}, 0, 9)

	fault := &Func{Name: "fault", Insts: []x86.Inst{
		// The test heap is 1 MiB; +1 MiB lands in the PROT_NONE guard.
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX),
			Src: x86.M(x86.Mem{Base: x86.RDX, Disp: 1 << 20})},
		{Op: x86.RET},
	}}
	diffRun(t, []*Func{fault}, 0)
}
