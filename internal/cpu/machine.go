package cpu

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/telemetry"
	"repro/internal/x86"
)

// Tier selects which execution engine a Machine dispatches through.
// Every tier produces bit-identical architectural state, Stats, and
// traps; they differ only in how much work is resolved ahead of the
// dispatch loop.
type Tier uint8

// Execution tiers, from oracle to most optimized.
const (
	// TierSlow is the original portable interpreter: operand kinds,
	// segment bases, and encoded lengths are re-resolved on every step.
	// It is the differential-testing oracle the other tiers are pinned
	// against.
	TierSlow Tier = iota
	// TierFast executes the predecoded dinst stream (decode.go).
	TierFast
	// TierFused executes the predecoded stream until a lightweight
	// profile pass identifies hot code, then switches to a fused
	// superinstruction stream (fuse.go) built once per Program and
	// shared by every Machine running it.
	TierFused
)

// String returns the tier's flag spelling.
func (t Tier) String() string {
	switch t {
	case TierSlow:
		return "slow"
	case TierFast:
		return "fast"
	case TierFused:
		return "fused"
	default:
		return fmt.Sprintf("tier%d", uint8(t))
	}
}

// ParseTier parses a -tier flag value.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "slow":
		return TierSlow, nil
	case "fast":
		return TierFast, nil
	case "fused":
		return TierFused, nil
	default:
		return TierFast, fmt.Errorf("cpu: unknown tier %q (want slow, fast, or fused)", s)
	}
}

// defaultTier is the tier NewMachine assigns. It lets benchmark drivers
// and servers select an engine process-wide without threading a flag
// through every instantiation site.
var defaultTier atomic.Uint32

func init() { defaultTier.Store(uint32(TierFused)) }

// SetDefaultTier selects the tier newly constructed Machines use.
// Machines that already exist are unaffected; per-machine Tier
// assignments still override the default.
func SetDefaultTier(t Tier) { defaultTier.Store(uint32(t)) }

// DefaultTier returns the tier NewMachine currently assigns.
func DefaultTier() Tier { return Tier(defaultTier.Load()) }

// ArgRegs is the internal calling convention's integer argument
// registers (SysV order). Float arguments use xmm0..xmm5 by position.
// Integer results return in RAX, float results in xmm0.
var ArgRegs = [6]x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}

// Stats accumulates execution counters.
type Stats struct {
	Insts        uint64
	Cycles       float64
	MemReads     uint64
	MemWrites    uint64
	BytesFetched uint64
	Mispredicts  uint64
	Branches     uint64
}

// Nanos returns wall-clock nanoseconds for the accumulated cycles under
// the given cost model.
func (s *Stats) Nanos(c *CostModel) float64 { return c.CyclesToNanos(s.Cycles) }

type frame struct {
	fn, pc int
}

// Machine is a resumable emulator for one hardware thread. The zero
// value is not usable; construct with NewMachine.
type Machine struct {
	AS   *mem.AS
	Hier *cache.Hierarchy
	Cost CostModel
	Prog *Program

	Regs   [16]uint64
	XmmLo  [16]uint64
	XmmHi  [16]uint64
	FSBase uint64
	GSBase uint64
	PKRU   uint32

	zf, sf, cf, of bool

	Stats Stats

	// EpochDeadline, when EpochEnabled, makes EPOCH instructions trap
	// (resumably) once Stats.Cycles passes it — Wasmtime's
	// epoch_interruption.
	EpochEnabled  bool
	EpochDeadline float64

	// MaxCallDepth bounds the emulated call stack.
	MaxCallDepth int

	// Hosts is the machine's host-import table. NewMachine initializes
	// it to the Program's (unbound) slots; runtimes that bind
	// per-instance host implementations replace it with their own
	// slice so the compiled Program stays immutable and shareable.
	Hosts []HostFunc

	// Tier selects the execution engine (see the Tier constants). The
	// slow tier is kept as the differential-testing oracle; all tiers
	// produce bit-identical state and Stats.
	Tier Tier

	frames []frame
	bpred  []uint8 // 2-bit bimodal predictor

	// profCounts holds per-function per-pc execution counts while a
	// fused-tier machine is in its profiling warmup; nil otherwise, so
	// the fast path's gate is one hoisted nil check per frame. profLeft
	// is the remaining per-Run profile budget (see profile.go).
	profCounts [][]uint32
	profLeft   int64

	// Per-machine opcode cost table, derived from Cost on first use
	// and rebuilt whenever Cost changes (CostModel is comparable).
	costTab    [opCostTabSize]float64
	costTabFor CostModel
	costTabOK  bool

	// Per-instruction base costs (fetch + opcode class) for the
	// predecoded program, precomputed so the fast path's hot loop
	// replaces a float division and two table lookups per step with one
	// slice read. Rebuilt when Cost changes.
	dcost    [][]float64
	dcostFor CostModel
	dcostOK  bool

	// mtc is the fast path's access-grant cache: per-page protection,
	// pkey, and backing-page pointer, validated against the address
	// space's mapping generation. It lets the fused load/store fast
	// path skip the VMA walk and page-map hash on the hot path.
	mtc    [mtcSize]mtcEntry
	mtcGen uint64
}

// mtcSize is the number of direct-mapped access-grant entries (a
// power of two).
const mtcSize = 256

type mtcEntry struct {
	pnPlus1 uint64 // page number + 1; 0 = invalid
	pg      *[mem.PageSize]byte
	pkru    uint32 // PKRU value readOK/writeOK were evaluated under
	readOK  bool
	writeOK bool
	prot    mem.Prot
	pkey    uint8
}

// refreshPerms re-evaluates the entry's cached access verdicts under
// the given PKRU value.
func (e *mtcEntry) refreshPerms(pkru uint32) {
	e.pkru = pkru
	e.readOK = e.prot&mem.ProtRead != 0 && mem.PkeyAllowed(pkru, e.pkey, false)
	e.writeOK = e.prot&mem.ProtWrite != 0 && mem.PkeyAllowed(pkru, e.pkey, true)
}

// NewMachine returns a machine bound to the given address space and
// program, with the default cost model and memory hierarchy.
func NewMachine(as *mem.AS, prog *Program) *Machine {
	return &Machine{
		AS:           as,
		Hier:         cache.NewHierarchy(),
		Cost:         DefaultCostModel(),
		Prog:         prog,
		Hosts:        prog.Hosts,
		Tier:         DefaultTier(),
		MaxCallDepth: 10000,
		bpred:        make([]uint8, 1<<14),
	}
}

// opCostTabSize covers every defined opcode.
const opCostTabSize = x86.OpCount

// opCosts returns the per-opcode base-cost table for the machine's
// current cost model, rebuilding it if Cost changed since the last run.
func (m *Machine) opCosts() *[opCostTabSize]float64 {
	if !m.costTabOK || m.costTabFor != m.Cost {
		for op := 0; op < opCostTabSize; op++ {
			m.costTab[op] = m.Cost.opCost(x86.Op(op))
		}
		m.costTabFor = m.Cost
		m.costTabOK = true
	}
	return &m.costTab
}

// instCosts returns per-instruction base costs for the decoded program:
// dcost[fn][pc] = fetch cost + opcode cost, computed with the exact
// expression runSlow evaluates per step, so accumulating the
// precomputed sum is bit-identical to computing it inline.
func (m *Machine) instCosts(dec []decFunc) [][]float64 {
	if m.dcostOK && m.dcostFor == m.Cost && len(m.dcost) == len(dec) {
		return m.dcost
	}
	costs := m.opCosts()
	out := make([][]float64, len(dec))
	for fi := range dec {
		insts := dec[fi].insts
		cs := make([]float64, len(insts))
		for i := range insts {
			cs[i] = float64(insts[i].ilen)/m.Cost.FetchBytesPerCycle + costs[insts[i].op]
		}
		out[fi] = cs
	}
	m.dcost, m.dcostFor, m.dcostOK = out, m.Cost, true
	return out
}

// Running reports whether a call is in progress (after an epoch trap).
func (m *Machine) Running() bool { return len(m.frames) > 0 }

// Call begins execution of the given function with integer arguments in
// the internal ABI and runs it to completion (or trap). The machine's
// RSP must point at a mapped stack. Use Start+Run for resumable
// execution.
func (m *Machine) Call(fnIdx int, args ...uint64) error {
	m.Start(fnIdx, args...)
	return m.Run()
}

// Start sets up a call without running it. Like a hardware call it
// pushes a (sentinel) return address, so the outermost RET has stack to
// pop; the machine's RSP must already point at a mapped stack.
func (m *Machine) Start(fnIdx int, args ...uint64) {
	if len(args) > len(ArgRegs) {
		panic("cpu: too many call arguments")
	}
	for i, a := range args {
		m.Regs[ArgRegs[i]] = a
	}
	m.Regs[x86.RSP] -= 8
	m.AS.Store(m.Regs[x86.RSP], 8, 0)
	m.frames = m.frames[:0]
	m.frames = append(m.frames, frame{fn: fnIdx, pc: 0})
}

// Result returns the integer return value (RAX).
func (m *Machine) Result() uint64 { return m.Regs[x86.RAX] }

// ResultF returns the float return value (xmm0).
func (m *Machine) ResultF() float64 { return math.Float64frombits(m.XmmLo[0]) }

// trap builds a Trap at the current position.
func (m *Machine) trap(kind TrapKind, addr uint64) *Trap {
	fr := frame{fn: -1, pc: -1}
	if len(m.frames) > 0 {
		fr = m.frames[len(m.frames)-1]
	}
	return &Trap{Kind: kind, Addr: addr, Fn: fr.fn, PC: fr.pc}
}

func (m *Machine) faultTrap(err error) error {
	var f *mem.Fault
	if errors.As(err, &f) {
		switch f.Kind {
		case mem.FaultPkey:
			return m.trap(TrapPkey, f.Addr)
		case mem.FaultProt:
			return m.trap(TrapProt, f.Addr)
		default:
			return m.trap(TrapPageFault, f.Addr)
		}
	}
	return err
}

// ea computes the effective address of a memory operand: base + scaled
// index + displacement, truncated to 32 bits under the address-size
// override, then (for real accesses, not LEA) offset by the segment
// base.
func (m *Machine) ea(mm x86.Mem, withSeg bool) uint64 {
	var sum uint64
	if mm.Base != x86.RegNone {
		sum = m.Regs[mm.Base]
	}
	if mm.HasIndex() {
		sum += m.Regs[mm.Index] * uint64(mm.Scale)
	}
	sum += uint64(int64(mm.Disp))
	if mm.Addr32 {
		sum = uint64(uint32(sum))
	}
	if withSeg {
		switch mm.Seg {
		case x86.SegGS, x86.SegImplicit:
			sum += m.GSBase
		case x86.SegFS:
			sum += m.FSBase
		}
	}
	return sum
}

// memCost charges TLB and cache penalties for an access at addr.
func (m *Machine) memCost(addr uint64, write bool) {
	if write {
		m.Stats.MemWrites++
	} else {
		m.Stats.MemReads++
	}
	tlbHit, missLevels := m.Hier.Access(addr)
	if !tlbHit {
		m.Stats.Cycles += m.Cost.TLBMiss
	}
	switch missLevels {
	case 0:
	case 1:
		m.Stats.Cycles += m.Cost.L2Hit
	default:
		m.Stats.Cycles += m.Cost.MemAccess
	}
}

// load performs a checked, costed memory read of size bytes.
func (m *Machine) load(addr uint64, size int) (uint64, error) {
	if err := m.AS.CheckAccess(addr, size, false, m.PKRU); err != nil {
		return 0, m.faultTrap(err)
	}
	m.memCost(addr, false)
	return m.AS.Load(addr, size), nil
}

// store performs a checked, costed memory write of size bytes.
func (m *Machine) store(addr uint64, size int, v uint64) error {
	if err := m.AS.CheckAccess(addr, size, true, m.PKRU); err != nil {
		return m.faultTrap(err)
	}
	m.memCost(addr, true)
	m.AS.Store(addr, size, v)
	return nil
}

func widthBits(w x86.Width) uint { return uint(w) * 8 }

// wmask maps an operand width (in bytes, so indexes 1/2/4/8/16 are
// live) to its value mask; unused indexes keep all bits so maskW stays
// the identity there, like the old switch's default arm. Sized and
// indexed so `wmask[w&31]` needs no bounds check.
var wmask = func() (t [32]uint64) {
	for i := range t {
		t[i] = ^uint64(0)
	}
	t[x86.W8], t[x86.W16], t[x86.W32] = 0xFF, 0xFFFF, 0xFFFFFFFF
	return
}()

func maskW(v uint64, w x86.Width) uint64 { return v & wmask[w&31] }

// sbmask maps a width to its sign-bit mask (zero for the indexes no
// integer op uses, where the old shift form also yielded false).
var sbmask = func() (t [32]uint64) {
	t[x86.W8], t[x86.W16], t[x86.W32], t[x86.W64] = 1<<7, 1<<15, 1<<31, 1<<63
	return
}()

func signBit(v uint64, w x86.Width) bool { return v&sbmask[w&31] != 0 }

func signExtend(v uint64, w x86.Width) uint64 {
	switch w {
	case x86.W8:
		return uint64(int64(int8(v)))
	case x86.W16:
		return uint64(int64(int16(v)))
	case x86.W32:
		return uint64(int64(int32(v)))
	default:
		return v
	}
}

// readOp reads an operand at width w.
func (m *Machine) readOp(o x86.Operand, w x86.Width) (uint64, error) {
	switch o.Kind {
	case x86.KindReg:
		return maskW(m.Regs[o.Reg], w), nil
	case x86.KindImm:
		return maskW(uint64(o.Imm), w), nil
	case x86.KindMem:
		return m.load(m.ea(o.Mem, true), int(w))
	case x86.KindXmm:
		return m.XmmLo[o.Xmm], nil
	default:
		return 0, fmt.Errorf("cpu: unreadable operand kind %d", o.Kind)
	}
}

// writeOp writes an operand at width w, honoring the x86 rule that
// 32-bit register writes zero the upper half while 8/16-bit writes
// merge.
func (m *Machine) writeOp(o x86.Operand, w x86.Width, v uint64) error {
	switch o.Kind {
	case x86.KindReg:
		switch w {
		case x86.W64:
			m.Regs[o.Reg] = v
		case x86.W32:
			m.Regs[o.Reg] = v & 0xFFFFFFFF
		case x86.W16:
			m.Regs[o.Reg] = m.Regs[o.Reg]&^uint64(0xFFFF) | v&0xFFFF
		case x86.W8:
			m.Regs[o.Reg] = m.Regs[o.Reg]&^uint64(0xFF) | v&0xFF
		}
		return nil
	case x86.KindMem:
		return m.store(m.ea(o.Mem, true), int(w), v)
	case x86.KindXmm:
		m.XmmLo[o.Xmm] = v
		return nil
	default:
		return fmt.Errorf("cpu: unwritable operand kind %d", o.Kind)
	}
}

func (m *Machine) setFlagsLogic(res uint64, w x86.Width) {
	res = maskW(res, w)
	m.zf = res == 0
	m.sf = signBit(res, w)
	m.cf = false
	m.of = false
}

// The flag helpers are written against the width tables directly (not
// maskW/signBit) to fit the inliner budget: they run once per ALU
// instruction. The overflow test only reads the sign-bit position,
// which masking the operands cannot change, so b stays unmasked in
// setFlagsAdd.
func (m *Machine) setFlagsAdd(a, b, res uint64, w x86.Width) {
	k := wmask[w&31]
	a, res = a&k, res&k
	m.zf = res == 0
	m.sf = res&sbmask[w&31] != 0
	m.cf = res < a
	m.of = ^(a^b)&(a^res)&sbmask[w&31] != 0
}

func (m *Machine) setFlagsSub(a, b, res uint64, w x86.Width) {
	k := wmask[w&31]
	a, b, res = a&k, b&k, res&k
	m.zf = res == 0
	m.sf = res&sbmask[w&31] != 0
	m.cf = a < b
	m.of = (a^b)&(a^res)&sbmask[w&31] != 0
}

// cond evaluates a condition code against the flags.
func (m *Machine) cond(c x86.Cond) bool {
	switch c {
	case x86.CondE:
		return m.zf
	case x86.CondNE:
		return !m.zf
	case x86.CondL:
		return m.sf != m.of
	case x86.CondLE:
		return m.zf || m.sf != m.of
	case x86.CondG:
		return !m.zf && m.sf == m.of
	case x86.CondGE:
		return m.sf == m.of
	case x86.CondB:
		return m.cf
	case x86.CondBE:
		return m.cf || m.zf
	case x86.CondA:
		return !m.cf && !m.zf
	case x86.CondAE:
		return !m.cf
	case x86.CondS:
		return m.sf
	case x86.CondNS:
		return !m.sf
	default:
		return false
	}
}

// predictBranch consults and updates the bimodal predictor, charging
// the misprediction penalty when wrong.
func (m *Machine) predictBranch(fn, pc int, taken bool) {
	m.Stats.Branches++
	idx := (uint(fn)<<10 ^ uint(pc)) & uint(len(m.bpred)-1)
	ctr := m.bpred[idx]
	predicted := ctr >= 2
	if predicted != taken {
		m.Stats.Mispredicts++
		m.Stats.Cycles += m.Cost.Mispredict
	}
	if taken {
		if ctr < 3 {
			m.bpred[idx] = ctr + 1
		}
	} else if ctr > 0 {
		m.bpred[idx] = ctr - 1
	}
}

// Telemetry counters, published once per Run call — never from inside
// the dispatch loops, whose per-instruction cost must stay free of
// atomics. With telemetry disabled the only added work is one atomic
// load per Run.
var (
	ctrDispatchFast  = telemetry.Default.Counter("cpu.dispatch.fast")
	ctrDispatchSlow  = telemetry.Default.Counter("cpu.dispatch.slow")
	ctrDispatchFused = telemetry.Default.Counter("cpu.dispatch.fused")
	ctrInstsRetired  = telemetry.Default.Counter("cpu.insts_retired")
	gaugeTier        = telemetry.Default.Gauge("cpu.tier")
)

// Run executes until the outermost function returns, a trap occurs, or
// the epoch deadline fires. After a resumable TrapEpoch, calling Run
// again continues execution.
//
// The engine is selected by Tier (predecoded fast path by default via
// SetDefaultTier; TierSlow forces the original portable loop, the
// differential-testing oracle; TierFused adds profile-guided
// superinstruction fusion). All tiers produce bit-identical
// architectural state and Stats.
func (m *Machine) Run() error {
	if !telemetry.Enabled() {
		switch m.Tier {
		case TierSlow:
			return m.runSlow()
		case TierFused:
			return m.runTiered(false)
		default:
			return m.runFast()
		}
	}
	before := m.Stats.Insts
	gaugeTier.Set(int64(m.Tier))
	var err error
	switch m.Tier {
	case TierSlow:
		ctrDispatchSlow.Inc()
		err = m.runSlow()
	case TierFused:
		err = m.runTiered(true)
	default:
		ctrDispatchFast.Inc()
		err = m.runFast()
	}
	ctrInstsRetired.Add(m.Stats.Insts - before)
	return err
}

// runSlow is the original interpreter loop: operand kinds, segment
// bases, and encoded lengths are re-resolved on every step. It is kept
// as the oracle the predecoded fast path is differentially tested
// against.
func (m *Machine) runSlow() error {
	for len(m.frames) > 0 {
		fr := &m.frames[len(m.frames)-1]
		f := m.Prog.Funcs[fr.fn]
		if fr.pc < 0 || fr.pc >= len(f.Insts) {
			return fmt.Errorf("cpu: pc %d out of range in %q", fr.pc, f.Name)
		}
		in := f.Insts[fr.pc]

		m.Stats.Insts++
		ilen := 4
		if fr.pc < len(f.InstLens) {
			ilen = f.InstLens[fr.pc]
		}
		m.Stats.BytesFetched += uint64(ilen)
		m.Stats.Cycles += float64(ilen)/m.Cost.FetchBytesPerCycle + m.Cost.opCost(in.Op)

		next := fr.pc + 1
		switch in.Op {
		case x86.NOP:

		case x86.MOV:
			v, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			if err := m.writeOp(in.Dst, in.W, v); err != nil {
				return err
			}
		case x86.MOVZX:
			v, err := m.readOp(in.Src, in.SrcW)
			if err != nil {
				return err
			}
			if err := m.writeOp(in.Dst, in.W, v); err != nil {
				return err
			}
		case x86.MOVSX:
			v, err := m.readOp(in.Src, in.SrcW)
			if err != nil {
				return err
			}
			if err := m.writeOp(in.Dst, in.W, maskW(signExtend(v, in.SrcW), in.W)); err != nil {
				return err
			}
		case x86.LEA:
			// LEA ignores the segment base; the addr-size override
			// still truncates.
			v := m.ea(in.Src.Mem, false)
			if err := m.writeOp(in.Dst, in.W, maskW(v, in.W)); err != nil {
				return err
			}
		case x86.XCHG:
			a, _ := m.readOp(in.Dst, in.W)
			b, _ := m.readOp(in.Src, in.W)
			if err := m.writeOp(in.Dst, in.W, b); err != nil {
				return err
			}
			if err := m.writeOp(in.Src, in.W, a); err != nil {
				return err
			}
		case x86.CMOV:
			v, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			if m.cond(in.Cond) {
				if err := m.writeOp(in.Dst, in.W, v); err != nil {
					return err
				}
			}
		case x86.PUSH:
			v, err := m.readOp(in.Dst, x86.W64)
			if err != nil {
				return err
			}
			m.Regs[x86.RSP] -= 8
			if err := m.store(m.Regs[x86.RSP], 8, v); err != nil {
				return err
			}
		case x86.POP:
			v, err := m.load(m.Regs[x86.RSP], 8)
			if err != nil {
				return err
			}
			m.Regs[x86.RSP] += 8
			if err := m.writeOp(in.Dst, x86.W64, v); err != nil {
				return err
			}

		case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.IMUL, x86.MULX:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			b, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			var res uint64
			switch in.Op {
			case x86.ADD:
				res = a + b
				m.setFlagsAdd(a, b, res, in.W)
			case x86.SUB:
				res = a - b
				m.setFlagsSub(a, b, res, in.W)
			case x86.AND:
				res = a & b
				m.setFlagsLogic(res, in.W)
			case x86.OR:
				res = a | b
				m.setFlagsLogic(res, in.W)
			case x86.XOR:
				res = a ^ b
				m.setFlagsLogic(res, in.W)
			case x86.IMUL, x86.MULX:
				res = a * b
			}
			if err := m.writeOp(in.Dst, in.W, res); err != nil {
				return err
			}
		case x86.NOT:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			if err := m.writeOp(in.Dst, in.W, ^a); err != nil {
				return err
			}
		case x86.NEG:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			res := -a
			m.setFlagsSub(0, a, res, in.W)
			if err := m.writeOp(in.Dst, in.W, res); err != nil {
				return err
			}
		case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			cnt, err := m.readOp(in.Src, x86.W8)
			if err != nil {
				return err
			}
			bitsN := widthBits(in.W)
			c := uint(cnt) & (bitsN - 1)
			var res uint64
			switch in.Op {
			case x86.SHL:
				res = a << c
			case x86.SHR:
				res = a >> c
			case x86.SAR:
				res = uint64(int64(signExtend(a, in.W)) >> c)
			case x86.ROL:
				res = a<<c | a>>(bitsN-c)
			case x86.ROR:
				res = a>>c | a<<(bitsN-c)
			}
			res = maskW(res, in.W)
			m.zf = res == 0
			m.sf = signBit(res, in.W)
			if err := m.writeOp(in.Dst, in.W, res); err != nil {
				return err
			}
		case x86.CMP:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			b, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			m.setFlagsSub(a, b, a-b, in.W)
		case x86.TEST:
			a, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			b, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			m.setFlagsLogic(a&b, in.W)
		case x86.SETCC:
			v := uint64(0)
			if m.cond(in.Cond) {
				v = 1
			}
			// SETcc writes a byte; our compiler clears the register
			// first, so write the full register for simplicity.
			if err := m.writeOp(in.Dst, x86.W64, v); err != nil {
				return err
			}
		case x86.CQO:
			if in.W == x86.W32 {
				if int32(m.Regs[x86.RAX]) < 0 {
					m.Regs[x86.RDX] = 0xFFFFFFFF
				} else {
					m.Regs[x86.RDX] = 0
				}
			} else {
				if int64(m.Regs[x86.RAX]) < 0 {
					m.Regs[x86.RDX] = ^uint64(0)
				} else {
					m.Regs[x86.RDX] = 0
				}
			}
		case x86.IDIV, x86.DIV:
			d, err := m.readOp(in.Dst, in.W)
			if err != nil {
				return err
			}
			if maskW(d, in.W) == 0 {
				return m.trap(TrapDivZero, 0)
			}
			if in.Op == x86.IDIV {
				if in.W == x86.W32 {
					a := int32(m.Regs[x86.RAX])
					b := int32(d)
					if a == math.MinInt32 && b == -1 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[x86.RAX] = uint64(uint32(a / b))
					m.Regs[x86.RDX] = uint64(uint32(a % b))
				} else {
					a := int64(m.Regs[x86.RAX])
					b := int64(d)
					if a == math.MinInt64 && b == -1 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[x86.RAX] = uint64(a / b)
					m.Regs[x86.RDX] = uint64(a % b)
				}
			} else {
				// Compiler zeroes RDX before DIV, so the dividend is RAX.
				if in.W == x86.W32 {
					a := uint32(m.Regs[x86.RAX])
					b := uint32(d)
					m.Regs[x86.RAX] = uint64(a / b)
					m.Regs[x86.RDX] = uint64(a % b)
				} else {
					a := m.Regs[x86.RAX]
					m.Regs[x86.RAX] = a / d
					m.Regs[x86.RDX] = a % d
				}
			}
		case x86.POPCNT, x86.LZCNT, x86.TZCNT:
			v, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			res := bitCount(in.Op, v, in.W)
			if err := m.writeOp(in.Dst, in.W, res); err != nil {
				return err
			}

		case x86.JMP:
			next = in.Dst.Label
		case x86.JCC:
			taken := m.cond(in.Cond)
			m.predictBranch(fr.fn, fr.pc, taken)
			if taken {
				next = in.Dst.Label
			}
		case x86.CALLFN:
			if len(m.frames) >= m.MaxCallDepth {
				return m.trap(TrapCallDepth, 0)
			}
			m.Regs[x86.RSP] -= 8
			if err := m.store(m.Regs[x86.RSP], 8, uint64(fr.pc+1)); err != nil {
				return err
			}
			fr.pc = next
			m.frames = append(m.frames, frame{fn: int(in.Dst.Imm), pc: 0})
			continue
		case x86.CALLREG:
			m.Stats.Cycles += m.Cost.IndirectSeq
			slot, err := m.readOp(in.Dst, x86.W64)
			if err != nil {
				return err
			}
			if slot >= uint64(len(m.Prog.Table)) {
				return m.trap(TrapTableOOB, 0)
			}
			ent := m.Prog.Table[slot]
			if ent.FuncIdx == NullTableEntry {
				return m.trap(TrapTableNull, 0)
			}
			if ent.SigID != int(in.Src.Imm) {
				return m.trap(TrapTableSig, 0)
			}
			if len(m.frames) >= m.MaxCallDepth {
				return m.trap(TrapCallDepth, 0)
			}
			m.Regs[x86.RSP] -= 8
			if err := m.store(m.Regs[x86.RSP], 8, uint64(fr.pc+1)); err != nil {
				return err
			}
			fr.pc = next
			m.frames = append(m.frames, frame{fn: ent.FuncIdx, pc: 0})
			continue
		case x86.CALLHOST:
			idx := int(in.Dst.Imm)
			if idx < 0 || idx >= len(m.Hosts) {
				return fmt.Errorf("cpu: host index %d out of range", idx)
			}
			fr.pc = next
			if err := m.Hosts[idx](m); err != nil {
				return err
			}
			continue
		case x86.RET:
			if _, err := m.load(m.Regs[x86.RSP], 8); err != nil {
				return err
			}
			m.Regs[x86.RSP] += 8
			m.frames = m.frames[:len(m.frames)-1]
			continue

		case x86.UD2:
			return m.trap(TrapUD, 0)
		case x86.TRAPIF:
			if m.cond(in.Cond) {
				return m.trap(TrapBounds, 0)
			}
		case x86.EPOCH:
			if m.EpochEnabled && m.Stats.Cycles >= m.EpochDeadline {
				fr.pc = next
				return m.trap(TrapEpoch, 0)
			}

		case x86.ENDBR, x86.BTBFLUSH, x86.INTERLOCK:
			// Hardening pseudo-ops: architecturally inert, cost only.

		case x86.WRGSBASE:
			m.GSBase = m.Regs[in.Dst.Reg]
		case x86.RDGSBASE:
			m.Regs[in.Dst.Reg] = m.GSBase
		case x86.WRFSBASE:
			m.FSBase = m.Regs[in.Dst.Reg]
		case x86.WRPKRU:
			m.PKRU = uint32(m.Regs[x86.RAX])
		case x86.RDPKRU:
			m.Regs[x86.RAX] = uint64(m.PKRU)

		case x86.MOVSD:
			if err := m.execMOVSD(in); err != nil {
				return err
			}
		case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.MINSD, x86.MAXSD:
			if err := m.execFBin(in); err != nil {
				return err
			}
		case x86.NEGSD:
			m.XmmLo[in.Dst.Xmm] ^= 1 << 63
		case x86.ABSSD:
			m.XmmLo[in.Dst.Xmm] &^= 1 << 63
		case x86.JTAB:
			idx, err := m.readOp(in.Dst, x86.W64)
			if err != nil {
				return err
			}
			// Jump-table dispatch: one load from the table plus an
			// indirect branch.
			m.Stats.Cycles += m.Cost.Load + m.Cost.Branch
			m.Stats.Branches++
			if idx < uint64(len(in.Targets)) {
				next = in.Targets[idx]
			} else {
				next = in.Src.Label
			}
		case x86.SQRTSD:
			v, err := m.readF(in.Src)
			if err != nil {
				return err
			}
			m.XmmLo[in.Dst.Xmm] = math.Float64bits(math.Sqrt(v))
		case x86.UCOMISD:
			a, err := m.readF(in.Dst)
			if err != nil {
				return err
			}
			b, err := m.readF(in.Src)
			if err != nil {
				return err
			}
			switch {
			case math.IsNaN(a) || math.IsNaN(b):
				m.zf, m.cf = true, true
			case a == b:
				m.zf, m.cf = true, false
			case a < b:
				m.zf, m.cf = false, true
			default:
				m.zf, m.cf = false, false
			}
			m.sf, m.of = false, false
		case x86.CVTSI2SD:
			v, err := m.readOp(in.Src, in.W)
			if err != nil {
				return err
			}
			var fv float64
			if in.W == x86.W32 {
				fv = float64(int32(v))
			} else {
				fv = float64(int64(v))
			}
			m.XmmLo[in.Dst.Xmm] = math.Float64bits(fv)
		case x86.CVTTSD2SI:
			v, err := m.readF(in.Src)
			if err != nil {
				return err
			}
			// Stands for the engine's convert-with-checks sequence:
			// NaN and out-of-range convert to a deterministic trap.
			if math.IsNaN(v) {
				return m.trap(TrapOverflow, 0)
			}
			t := math.Trunc(v)
			if in.W == x86.W32 {
				if t < math.MinInt32 || t > math.MaxInt32 {
					return m.trap(TrapOverflow, 0)
				}
				m.Regs[in.Dst.Reg] = uint64(uint32(int32(t)))
			} else {
				if t < -9.223372036854776e18 || t >= 9.223372036854776e18 {
					return m.trap(TrapOverflow, 0)
				}
				m.Regs[in.Dst.Reg] = uint64(int64(t))
			}
		case x86.MOVQXR:
			m.Regs[in.Dst.Reg] = m.XmmLo[in.Src.Xmm]
		case x86.MOVQRX:
			m.XmmLo[in.Dst.Xmm] = m.Regs[in.Src.Reg]

		case x86.MOVDQU:
			if err := m.execMOVDQU(in); err != nil {
				return err
			}
		case x86.PADDD:
			dl, dh := m.XmmLo[in.Dst.Xmm], m.XmmHi[in.Dst.Xmm]
			sl, sh := m.XmmLo[in.Src.Xmm], m.XmmHi[in.Src.Xmm]
			m.XmmLo[in.Dst.Xmm] = paddd64(dl, sl)
			m.XmmHi[in.Dst.Xmm] = paddd64(dh, sh)
		case x86.PXOR:
			m.XmmLo[in.Dst.Xmm] ^= m.XmmLo[in.Src.Xmm]
			m.XmmHi[in.Dst.Xmm] ^= m.XmmHi[in.Src.Xmm]

		default:
			return fmt.Errorf("cpu: unimplemented op %v", in.Op)
		}
		fr.pc = next
	}
	return nil
}

// readF reads an f64 operand (xmm register or memory).
func (m *Machine) readF(o x86.Operand) (float64, error) {
	switch o.Kind {
	case x86.KindXmm:
		return math.Float64frombits(m.XmmLo[o.Xmm]), nil
	case x86.KindMem:
		v, err := m.load(m.ea(o.Mem, true), 8)
		return math.Float64frombits(v), err
	default:
		return 0, fmt.Errorf("cpu: bad f64 operand kind %d", o.Kind)
	}
}

func (m *Machine) execMOVSD(in x86.Inst) error {
	// xmm <- mem/xmm, or mem <- xmm.
	if in.Dst.Kind == x86.KindMem {
		return m.store(m.ea(in.Dst.Mem, true), 8, m.XmmLo[in.Src.Xmm])
	}
	switch in.Src.Kind {
	case x86.KindXmm:
		m.XmmLo[in.Dst.Xmm] = m.XmmLo[in.Src.Xmm]
		return nil
	case x86.KindMem:
		v, err := m.load(m.ea(in.Src.Mem, true), 8)
		if err != nil {
			return err
		}
		m.XmmLo[in.Dst.Xmm] = v
		return nil
	default:
		return fmt.Errorf("cpu: bad movsd operands")
	}
}

func (m *Machine) execFBin(in x86.Inst) error {
	a := math.Float64frombits(m.XmmLo[in.Dst.Xmm])
	b, err := m.readF(in.Src)
	if err != nil {
		return err
	}
	var r float64
	switch in.Op {
	case x86.ADDSD:
		r = a + b
	case x86.SUBSD:
		r = a - b
	case x86.MULSD:
		r = a * b
	case x86.DIVSD:
		r = a / b
	case x86.MINSD:
		r = math.Min(a, b)
	case x86.MAXSD:
		r = math.Max(a, b)
	}
	m.XmmLo[in.Dst.Xmm] = math.Float64bits(r)
	return nil
}

func (m *Machine) execMOVDQU(in x86.Inst) error {
	if in.Dst.Kind == x86.KindMem {
		addr := m.ea(in.Dst.Mem, true)
		if err := m.store(addr, 8, m.XmmLo[in.Src.Xmm]); err != nil {
			return err
		}
		return m.store(addr+8, 8, m.XmmHi[in.Src.Xmm])
	}
	if in.Src.Kind == x86.KindMem {
		addr := m.ea(in.Src.Mem, true)
		lo, err := m.load(addr, 8)
		if err != nil {
			return err
		}
		hi, err := m.load(addr+8, 8)
		if err != nil {
			return err
		}
		m.XmmLo[in.Dst.Xmm] = lo
		m.XmmHi[in.Dst.Xmm] = hi
		return nil
	}
	m.XmmLo[in.Dst.Xmm] = m.XmmLo[in.Src.Xmm]
	m.XmmHi[in.Dst.Xmm] = m.XmmHi[in.Src.Xmm]
	return nil
}

func paddd64(a, b uint64) uint64 {
	lo := uint32(a) + uint32(b)
	hi := uint32(a>>32) + uint32(b>>32)
	return uint64(hi)<<32 | uint64(lo)
}

func bitCount(op x86.Op, v uint64, w x86.Width) uint64 {
	n := widthBits(w)
	v = maskW(v, w)
	switch op {
	case x86.POPCNT:
		cnt := 0
		for i := uint(0); i < n; i++ {
			if v>>i&1 != 0 {
				cnt++
			}
		}
		return uint64(cnt)
	case x86.LZCNT:
		for i := int(n) - 1; i >= 0; i-- {
			if v>>uint(i)&1 != 0 {
				return uint64(int(n) - 1 - i)
			}
		}
		return uint64(n)
	default: // TZCNT
		for i := uint(0); i < n; i++ {
			if v>>i&1 != 0 {
				return uint64(i)
			}
		}
		return uint64(n)
	}
}
