package cpu

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/x86"
)

// This file is the tier-2 superinstruction compiler. Profiling (see
// profile.go) marks hot instructions; the former scans each function
// and fuses adjacent runs of classifiable instructions — the sequences
// the SFI compilers emit around every sandboxed access (truncate+access,
// lea+cmp+trapif bounds checks, compare+branch, load+mask+ALU) — into a
// single group entry whose operand recipes are fully resolved
// micro-steps. Micro-step kinds are split down to the operation (fsAddRR,
// not "ALU"), so the group executor runs each constituent with one dense
// dispatch and no second-level operand or opcode switches.
//
// The fused stream is an overlay: finsts are same-indexed with the
// predecoded dinst array, a group rewrites only its head entry, and
// interior entries remain valid singletons. Branches into the middle of
// a group, return addresses (always original indices), epoch resume,
// and trap attribution therefore need no pc mapping at all. Groups
// additionally never span a branch target (a "leader"), so the back
// edge of a loop always lands on a group head, not an interior
// singleton — that is what makes fusion effective on loop bodies.
//
// Cycle accounting is the reason groups carry no "combined cost":
// Stats.Cycles is a float64 and float addition is not associative, so
// each constituent's precomputed cost is charged sequentially in
// original program order (cs[pc], cs[pc+1], ...) interleaved with
// memory penalties exactly as the unfused engines charge them. That is
// what keeps fused runs bit-identical to the slow-path oracle.

// opGroup is the fused-group opcode. It sits just past the defined
// x86 opcodes, so the fused dispatch switch stays a dense jump table.
// Per-instruction base costs are always computed from the original
// decoded stream, so opGroup never needs a cost-table entry.
const opGroup = x86.Op(x86.OpCount)

// maxGroup is the maximum number of constituents in one group.
const maxGroup = 16

// Micro-step kinds (fstep.kind). Each mirrors exactly one operand shape
// of one operation of one runFast case; classifyStep only produces a
// step when the instruction matches that shape, so the step executors
// are straight-line code behind a single dense switch.
const (
	fsMovRR uint8 = iota // MOV reg<-reg, w>=32
	fsMovRI              // MOV reg<-imm, w>=32
	fsExt                // MOVZX/MOVSX reg<-reg, w>=32
	fsLea                // LEA reg, [recipe], w>=32

	fsAddRR // ADD reg, reg, w>=32
	fsAddRI // ADD reg, imm, w>=32
	fsSubRR // SUB reg, reg, w>=32
	fsSubRI // SUB reg, imm, w>=32
	fsAndRR // AND reg, reg, w>=32
	fsAndRI // AND reg, imm, w>=32
	fsOrRR  // OR reg, reg, w>=32
	fsOrRI  // OR reg, imm, w>=32
	fsXorRR // XOR reg, reg, w>=32
	fsXorRI // XOR reg, imm, w>=32
	fsMulRR // IMUL/MULX reg, reg, w>=32
	fsMulRI // IMUL/MULX reg, imm, w>=32

	fsShlRI // SHL reg, imm, w>=32
	fsShrRI // SHR reg, imm, w>=32
	fsSarRI // SAR reg, imm, w>=32
	fsShift // ROL/ROR, or any shift with a register count, w>=32

	fsCmp   // CMP reg, reg
	fsCmpI  // CMP reg, imm
	fsCmpM  // CMP reg, [recipe]
	fsTest  // TEST reg, reg
	fsTestI // TEST reg, imm

	fsSetcc // SETcc reg
	fsCmov  // CMOVcc reg<-reg, w>=32

	fsLoad   // MOV reg<-[recipe], w>=32
	fsLoadZX // MOVZX reg<-[recipe], w>=32
	fsLoadSX // MOVSX reg<-[recipe], w>=32
	fsStoreR // MOV [recipe]<-reg
	fsStoreI // MOV [recipe]<-imm

	fsFMovXX // MOVSD xmm<-xmm
	fsFLoad  // MOVSD xmm<-[recipe]
	fsFStore // MOVSD [recipe]<-xmm
	fsFAdd   // ADDSD xmm, xmm
	fsFSub   // SUBSD xmm, xmm
	fsFMul   // MULSD xmm, xmm
	fsFDiv   // DIVSD xmm, xmm
	fsFMin   // MINSD xmm, xmm
	fsFMax   // MAXSD xmm, xmm

	fsVMovXX // MOVDQU xmm<-xmm
	fsVLoad  // MOVDQU xmm<-[recipe]
	fsVStore // MOVDQU [recipe]<-xmm

	fsTrapif // TRAPIF (any position; falls through when not taken)
	fsJcc    // JCC (final position only)
	fsJmp    // JMP (final position only)
)

// fstep is one fully resolved constituent of a fused group.
type fstep struct {
	kind   uint8
	dst    uint8 // destination GPR/XMM number
	src    uint8 // source GPR/XMM number
	op     x86.Op
	w      x86.Width
	srcW   x86.Width
	cond   x86.Cond
	target int32    // fsJcc/fsJmp taken target (original instruction index)
	imm    int64    // immediate source / shift count
	mem    *daccess // memory recipe, pointing into the shared decoded form
}

// finst is one entry of the fused stream. It embeds the predecoded
// instruction, so singleton entries execute through the exact dinst
// field accesses the predecoded engine uses; group heads rewrite op to
// opGroup and carry their constituents as micro-steps.
type finst struct {
	dinst
	steps   []fstep // len>=2 for group heads, nil otherwise
	gxBytes uint32  // constituents' encoded bytes, excluding the head
}

// ffunc is one function's fused stream, same-indexed with its decFunc.
type ffunc struct {
	insts []finst
}

// fusedProg is a Program's fused form.
type fusedProg struct {
	funcs  []ffunc
	blocks int // number of fused groups, for telemetry and tests
}

var (
	ctrFuseBlocks    = telemetry.Default.Counter("cpu.fuse.blocks")
	ctrFuseCompileNs = telemetry.Default.Counter("cpu.fuse.compile_ns")
)

// buildFusedLocked compiles and publishes the fused stream. Callers
// hold p.fuseMu and have checked fusedP is still nil.
func (p *Program) buildFusedLocked(eager bool) {
	start := time.Now()
	dec := p.decoded()
	// Hotness is per function, like a tiered JIT promoting whole hot
	// functions: a function whose profiled execution count crosses the
	// threshold is fused in full, so phases of it the warmup window
	// never reached still execute fused. Functions the profile never
	// (meaningfully) saw stay as singleton streams.
	hotFn := make([]bool, len(dec))
	for fn := range dec {
		if eager {
			hotFn[fn] = true
			continue
		}
		var sum uint64
		for _, c := range p.profAgg[fn] {
			sum += uint64(c)
		}
		hotFn[fn] = sum >= uint64(fuseHotCount)
	}
	hot := func(fn, pc int) bool { return hotFn[fn] }
	fp := fuseProgram(dec, hot)
	p.fuseBuilds.Add(1)
	p.profAgg = nil // profiling is over; free the counts
	if telemetry.Enabled() {
		ctrFuseBlocks.Add(uint64(fp.blocks))
		ctrFuseCompileNs.Add(uint64(time.Since(start).Nanoseconds()))
	}
	p.fusedP.Store(fp)
}

// leaders returns the set of branch-entry points of one decoded
// function: targets of jumps, conditional branches, and jump tables,
// plus the resume points after calls and epoch checks. Groups never
// span a leader, so control flow always re-enters the fused stream at
// a group head rather than a group's unfused interior.
func leaders(insts []dinst) []bool {
	ld := make([]bool, len(insts))
	mark := func(t int) {
		if t >= 0 && t < len(ld) {
			ld[t] = true
		}
	}
	for pc := range insts {
		in := &insts[pc]
		switch in.op {
		case x86.JMP, x86.JCC:
			mark(int(in.dst.imm))
		case x86.JTAB:
			for _, t := range in.targets {
				mark(t)
			}
			mark(int(in.src.imm))
		case x86.CALLFN, x86.CALLREG, x86.CALLHOST, x86.EPOCH:
			mark(pc + 1)
		}
	}
	return ld
}

// fuseProgram copies the decoded program into a fused stream, forming
// superinstruction groups at hot heads. Formation is greedy and
// non-overlapping: at each hot pc it takes the longest classifiable run
// (up to maxGroup) that does not cross a leader, requires at least two
// constituents, and allows a branch only as the final constituent.
func fuseProgram(dec []decFunc, hot func(fn, pc int) bool) *fusedProg {
	fp := &fusedProg{funcs: make([]ffunc, len(dec))}
	for fn := range dec {
		insts := dec[fn].insts
		ld := leaders(insts)
		out := make([]finst, len(insts))
		for pc := range insts {
			out[pc].dinst = insts[pc]
		}
		// All of a function's steps go into one contiguous arena, laid
		// out in execution order, so the group executor walks a dense
		// array instead of chasing a fresh allocation per group. Group
		// subslices are assigned only after the arena is complete —
		// append may reallocate while groups are still being formed.
		var arena []fstep
		type groupRef struct{ pc, off, n int }
		var groups []groupRef
		for pc := 0; pc < len(insts); {
			if !hot(fn, pc) {
				pc++
				continue
			}
			start := len(arena)
			var xBytes uint32
			for i := pc; i < len(insts) && len(arena)-start < maxGroup; i++ {
				if i > pc && ld[i] {
					break // never span a branch target
				}
				st, ok := classifyStep(&insts[i])
				if !ok {
					break
				}
				arena = append(arena, st)
				if i > pc {
					xBytes += uint32(insts[i].ilen)
				}
				if st.kind == fsJcc || st.kind == fsJmp {
					break // a branch ends the group
				}
			}
			n := len(arena) - start
			if n < 2 {
				arena = arena[:start]
				pc++
				continue
			}
			groups = append(groups, groupRef{pc, start, n})
			out[pc].op = opGroup
			out[pc].gxBytes = xBytes
			fp.blocks++
			pc += n
		}
		for _, g := range groups {
			out[g.pc].steps = arena[g.off : g.off+g.n : g.off+g.n]
		}
		fp.funcs[fn] = ffunc{insts: out}
	}
	return fp
}

// aluKinds maps ALU opcodes to their (reg-source, imm-source) step
// kinds; shiftImmKinds likewise for the immediate-count shifts, and
// fKinds for the scalar-double arithmetic ops.
var aluKinds = map[x86.Op][2]uint8{
	x86.ADD:  {fsAddRR, fsAddRI},
	x86.SUB:  {fsSubRR, fsSubRI},
	x86.AND:  {fsAndRR, fsAndRI},
	x86.OR:   {fsOrRR, fsOrRI},
	x86.XOR:  {fsXorRR, fsXorRI},
	x86.IMUL: {fsMulRR, fsMulRI},
	x86.MULX: {fsMulRR, fsMulRI},
}

var shiftImmKinds = map[x86.Op]uint8{
	x86.SHL: fsShlRI,
	x86.SHR: fsShrRI,
	x86.SAR: fsSarRI,
}

var fKinds = map[x86.Op]uint8{
	x86.ADDSD: fsFAdd,
	x86.SUBSD: fsFSub,
	x86.MULSD: fsFMul,
	x86.DIVSD: fsFDiv,
	x86.MINSD: fsFMin,
	x86.MAXSD: fsFMax,
}

// classifyStep maps a predecoded instruction onto a micro-step, or
// reports that it cannot be a group constituent. Register-writing
// steps are restricted to w>=32 so executors use the zero-extending
// write without the 8/16-bit merge path; anything else stays a
// singleton and runs through the mirrored full dispatch.
func classifyStep(in *dinst) (fstep, bool) {
	st := fstep{op: in.op, w: in.w, srcW: in.srcW, cond: in.cond}
	wide := in.w >= x86.W32
	regDst := in.dst.kind == dReg
	regSrc := in.src.kind == dReg
	immSrc := in.src.kind == dImm
	memSrc := in.src.kind == dMem
	switch in.op {
	case x86.MOV:
		switch {
		case regDst && wide && regSrc:
			st.kind, st.dst, st.src = fsMovRR, in.dst.reg, in.src.reg
		case regDst && wide && immSrc:
			st.kind, st.dst, st.imm = fsMovRI, in.dst.reg, in.src.imm
		case regDst && wide && memSrc:
			st.kind, st.dst, st.mem = fsLoad, in.dst.reg, &in.src
		case in.dst.kind == dMem && regSrc:
			st.kind, st.src, st.mem = fsStoreR, in.src.reg, &in.dst
		case in.dst.kind == dMem && immSrc:
			st.kind, st.imm, st.mem = fsStoreI, in.src.imm, &in.dst
		default:
			return st, false
		}
	case x86.MOVZX, x86.MOVSX:
		switch {
		case regDst && wide && regSrc:
			st.kind, st.dst, st.src = fsExt, in.dst.reg, in.src.reg
		case regDst && wide && memSrc && in.op == x86.MOVZX:
			st.kind, st.dst, st.mem = fsLoadZX, in.dst.reg, &in.src
		case regDst && wide && memSrc:
			st.kind, st.dst, st.mem = fsLoadSX, in.dst.reg, &in.src
		default:
			return st, false
		}
	case x86.LEA:
		if !(regDst && wide && memSrc) {
			return st, false
		}
		st.kind, st.dst, st.mem = fsLea, in.dst.reg, &in.src
	case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.IMUL, x86.MULX:
		k := aluKinds[in.op]
		switch {
		case regDst && wide && regSrc:
			st.kind, st.dst, st.src = k[0], in.dst.reg, in.src.reg
		case regDst && wide && immSrc:
			st.kind, st.dst, st.imm = k[1], in.dst.reg, in.src.imm
		default:
			return st, false
		}
	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		switch {
		case regDst && wide && immSrc:
			if k, ok := shiftImmKinds[in.op]; ok {
				st.kind, st.dst, st.imm = k, in.dst.reg, in.src.imm
			} else {
				// ROL/ROR with an immediate count: generic shift step
				// with the count carried in imm and no count register.
				st.kind, st.dst, st.src, st.imm = fsShift, in.dst.reg, dRegNone, in.src.imm
			}
		case regDst && wide && regSrc:
			st.kind, st.dst, st.src = fsShift, in.dst.reg, in.src.reg
		default:
			return st, false
		}
	case x86.CMP:
		switch {
		case regDst && regSrc:
			st.kind, st.dst, st.src = fsCmp, in.dst.reg, in.src.reg
		case regDst && immSrc:
			st.kind, st.dst, st.imm = fsCmpI, in.dst.reg, in.src.imm
		case regDst && memSrc:
			st.kind, st.dst, st.mem = fsCmpM, in.dst.reg, &in.src
		default:
			return st, false
		}
	case x86.TEST:
		switch {
		case regDst && regSrc:
			st.kind, st.dst, st.src = fsTest, in.dst.reg, in.src.reg
		case regDst && immSrc:
			st.kind, st.dst, st.imm = fsTestI, in.dst.reg, in.src.imm
		default:
			return st, false
		}
	case x86.SETCC:
		if !regDst {
			return st, false
		}
		st.kind, st.dst = fsSetcc, in.dst.reg
	case x86.CMOV:
		if !(regDst && wide && regSrc) {
			return st, false
		}
		st.kind, st.dst, st.src = fsCmov, in.dst.reg, in.src.reg
	case x86.MOVSD:
		switch {
		case in.dst.kind == dXmm && in.src.kind == dXmm:
			st.kind, st.dst, st.src = fsFMovXX, in.dst.reg, in.src.reg
		case in.dst.kind == dXmm && memSrc:
			st.kind, st.dst, st.mem = fsFLoad, in.dst.reg, &in.src
		case in.dst.kind == dMem && in.src.kind == dXmm:
			st.kind, st.src, st.mem = fsFStore, in.src.reg, &in.dst
		default:
			return st, false
		}
	case x86.MOVDQU:
		switch {
		case in.dst.kind == dXmm && in.src.kind == dXmm:
			st.kind, st.dst, st.src = fsVMovXX, in.dst.reg, in.src.reg
		case in.dst.kind == dXmm && memSrc:
			st.kind, st.dst, st.mem = fsVLoad, in.dst.reg, &in.src
		case in.dst.kind == dMem && in.src.kind == dXmm:
			st.kind, st.src, st.mem = fsVStore, in.src.reg, &in.dst
		default:
			return st, false
		}
	case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.MINSD, x86.MAXSD:
		if in.src.kind != dXmm {
			return st, false
		}
		st.kind, st.dst, st.src = fKinds[in.op], in.dst.reg, in.src.reg
	case x86.TRAPIF:
		st.kind = fsTrapif
	case x86.JCC:
		st.kind, st.target = fsJcc, int32(in.dst.imm)
	case x86.JMP:
		st.kind, st.target = fsJmp, int32(in.dst.imm)
	default:
		return st, false
	}
	return st, true
}

// FuseDebugDump summarizes static fusion coverage, for tests and
// debugging.
func FuseDebugDump(p *Program) string {
	fp := p.fusedP.Load()
	if fp == nil {
		return "no fused stream"
	}
	var b strings.Builder
	totIn, totGrp, totCons := 0, 0, 0
	for fn := range fp.funcs {
		insts := fp.funcs[fn].insts
		for pc := range insts {
			if insts[pc].op == opGroup {
				totGrp++
				totCons += len(insts[pc].steps)
			}
		}
		totIn += len(insts)
	}
	fmt.Fprintf(&b, "insts=%d groups=%d constituents=%d (%.0f%%)\n",
		totIn, totGrp, totCons, 100*float64(totCons)/float64(totIn))
	return b.String()
}
