package cpu

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/x86"
)

// testEnv builds an address space with a 64 KiB stack at stackTop and a
// 1 MiB rw heap at heapBase, and a machine over the given functions.
func testEnv(t *testing.T, funcs ...*Func) (*Machine, uint64) {
	t.Helper()
	as := mem.NewAS(47)
	const stackBase = 0x7f0000000000
	const stackSize = 64 << 10
	if err := as.Mmap(stackBase, stackSize, mem.ProtRead|mem.ProtWrite); err != nil {
		t.Fatal(err)
	}
	const heapBase = 0x100000000 // 4 GiB mark
	if err := as.Mmap(heapBase, 1<<20, mem.ProtRead|mem.ProtWrite); err != nil {
		t.Fatal(err)
	}
	// Guard after the heap: 64 KiB of PROT_NONE.
	if err := as.Mmap(heapBase+1<<20, 64<<10, mem.ProtNone); err != nil {
		t.Fatal(err)
	}
	for _, f := range funcs {
		f.Encode()
	}
	m := NewMachine(as, &Program{Funcs: funcs})
	m.Regs[x86.RSP] = stackBase + stackSize
	return m, heapBase
}

func TestALUAndResult(t *testing.T) {
	// f(a, b) = (a + b) * 3 - 1
	f := &Func{Name: "f", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RSI)},
		{Op: x86.IMUL, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(3)},
		{Op: x86.SUB, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(1)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f)
	if err := m.Call(0, 5, 7); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 35 {
		t.Fatalf("result = %d, want 35", m.Result())
	}
	if m.Stats.Insts != 5 {
		t.Fatalf("insts = %d", m.Stats.Insts)
	}
	if m.Stats.Cycles <= 0 {
		t.Fatal("no cycles accumulated")
	}
}

func TestLoop(t *testing.T) {
	// sum 0..n-1: rax=0; rcx=0; loop: cmp rcx,rdi; jge done; add rax,rcx; inc; jmp
	f := &Func{Name: "sum", Insts: []x86.Inst{
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RAX)}, // 0
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RCX)}, // 1
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.R(x86.RDI)}, // 2
		{Op: x86.JCC, Cond: x86.CondGE, Dst: x86.Label(7)},                  // 3
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RCX)}, // 4
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RCX), Src: x86.Imm(1)},     // 5
		{Op: x86.JMP, Dst: x86.Label(2)},                                    // 6
		{Op: x86.RET},                                                       // 7
	}}
	m, _ := testEnv(t, f)
	if err := m.Call(0, 100); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 4950 {
		t.Fatalf("sum(100) = %d", m.Result())
	}
	if m.Stats.Branches == 0 {
		t.Fatal("no branches counted")
	}
}

func TestMemoryAndSegment(t *testing.T) {
	// Segue pattern: store via gs:[edi], load back via gs:[edi].
	f := &Func{Name: "seg", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.M(x86.Mem{Seg: x86.SegGS, Base: x86.RDI, Addr32: true}), Src: x86.R(x86.RSI)},
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.M(x86.Mem{Seg: x86.SegGS, Base: x86.RDI, Addr32: true})},
		{Op: x86.RET},
	}}
	m, heap := testEnv(t, f)
	m.GSBase = heap
	if err := m.Call(0, 0x100, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 0xdeadbeefcafe {
		t.Fatalf("result = %#x", m.Result())
	}
	// The store landed at heap+0x100.
	if got := m.AS.Load(heap+0x100, 8); got != 0xdeadbeefcafe {
		t.Fatalf("memory = %#x", got)
	}
	// The addr-size override truncates: offset 2^32+0x100 wraps to 0x100.
	m2, heap2 := testEnv(t, f)
	m2.GSBase = heap2
	if err := m2.Call(0, 1<<32|0x200, 42); err != nil {
		t.Fatal(err)
	}
	if got := m2.AS.Load(heap2+0x200, 8); got != 42 {
		t.Fatalf("wrapped store = %d", got)
	}
}

func TestGuardPageTrap(t *testing.T) {
	f := &Func{Name: "oob", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.M(x86.Mem{Seg: x86.SegGS, Base: x86.RDI, Addr32: true})},
		{Op: x86.RET},
	}}
	m, heap := testEnv(t, f)
	m.GSBase = heap
	err := m.Call(0, 1<<20) // first byte past the heap: guard region
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapPageFault {
		t.Fatalf("err = %v, want page fault", err)
	}
	if trap.Addr != heap+1<<20 {
		t.Fatalf("fault addr = %#x", trap.Addr)
	}
}

func TestPkeyTrap(t *testing.T) {
	f := &Func{Name: "pk", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.M(x86.Mem{Base: x86.RDI})},
		{Op: x86.RET},
	}}
	m, heap := testEnv(t, f)
	// Color the second half of the heap with key 5 and deny it.
	if err := m.AS.PkeyMprotect(heap+512<<10, 512<<10, mem.ProtRead|mem.ProtWrite, 5); err != nil {
		t.Fatal(err)
	}
	m.PKRU = mem.PkruAllowOnly(1)
	err := m.Call(0, heap+600<<10)
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapPkey {
		t.Fatalf("err = %v, want pkey fault", err)
	}
	// WRPKRU to allow key 5 lets it through.
	g := &Func{Name: "wr", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(int64(mem.PkruAllowOnly(5)))},
		{Op: x86.WRPKRU},
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.M(x86.Mem{Base: x86.RDI})},
		{Op: x86.RET},
	}}
	m2, heap2 := testEnv(t, g)
	if err := m2.AS.PkeyMprotect(heap2+512<<10, 512<<10, mem.ProtRead|mem.ProtWrite, 5); err != nil {
		t.Fatal(err)
	}
	m2.PKRU = mem.PkruAllowOnly(1)
	m2.AS.Store(heap2+600<<10, 8, 77)
	if err := m2.Call(0, heap2+600<<10); err != nil {
		t.Fatal(err)
	}
	if m2.Result() != 77 {
		t.Fatalf("result = %d", m2.Result())
	}
}

func TestWRPKRUCost(t *testing.T) {
	f := &Func{Name: "wr", Insts: []x86.Inst{
		{Op: x86.WRPKRU},
		{Op: x86.RET},
	}}
	g := &Func{Name: "nop", Insts: []x86.Inst{
		{Op: x86.NOP},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f, g)
	if err := m.Call(0); err != nil {
		t.Fatal(err)
	}
	withWr := m.Stats.Cycles
	m2, _ := testEnv(t, f, g)
	if err := m2.Call(1); err != nil {
		t.Fatal(err)
	}
	delta := withWr - m2.Stats.Cycles
	if delta < 40 || delta > 50 {
		t.Fatalf("wrpkru cost delta = %.1f cycles, want ≈44", delta)
	}
}

func TestCallsAndStack(t *testing.T) {
	// callee(a) = a*2 ; caller(a) = callee(a) + 1
	callee := &Func{Name: "callee", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.RET},
	}}
	caller := &Func{Name: "caller", Insts: []x86.Inst{
		{Op: x86.CALLFN, Dst: x86.Imm(0)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(1)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, callee, caller)
	spBefore := m.Regs[x86.RSP]
	if err := m.Call(1, 21); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 43 {
		t.Fatalf("result = %d", m.Result())
	}
	if m.Regs[x86.RSP] != spBefore {
		t.Fatalf("stack imbalance: %#x vs %#x", m.Regs[x86.RSP], spBefore)
	}
}

func TestIndirectCall(t *testing.T) {
	callee := &Func{Name: "sq", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.IMUL, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.RET},
	}}
	caller := &Func{Name: "via", Insts: []x86.Inst{
		// table slot in RSI; expected sig id 7.
		{Op: x86.CALLREG, Dst: x86.R(x86.RSI), Src: x86.Imm(7)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, callee, caller)
	m.Prog.Table = []TableEntry{{FuncIdx: 0, SigID: 7}, {FuncIdx: NullTableEntry}, {FuncIdx: 0, SigID: 9}}
	if err := m.Call(1, 6, 0); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 36 {
		t.Fatalf("result = %d", m.Result())
	}
	var trap *Trap
	if err := m.Call(1, 6, 1); !errors.As(err, &trap) || trap.Kind != TrapTableNull {
		t.Fatalf("null slot err = %v", err)
	}
	if err := m.Call(1, 6, 2); !errors.As(err, &trap) || trap.Kind != TrapTableSig {
		t.Fatalf("sig mismatch err = %v", err)
	}
	if err := m.Call(1, 6, 99); !errors.As(err, &trap) || trap.Kind != TrapTableOOB {
		t.Fatalf("oob slot err = %v", err)
	}
}

func TestEpochResume(t *testing.T) {
	// Infinite-ish loop with an epoch check at the back edge.
	f := &Func{Name: "spin", Insts: []x86.Inst{
		{Op: x86.XOR, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RAX)}, // 0
		{Op: x86.EPOCH}, // 1
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(1)},      // 2
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(100000)}, // 3
		{Op: x86.JCC, Cond: x86.CondL, Dst: x86.Label(1)},                    // 4
		{Op: x86.RET}, // 5
	}}
	m, _ := testEnv(t, f)
	m.EpochEnabled = true
	m.EpochDeadline = 50 // cycles: fires almost immediately
	m.Start(0, 0)
	yields := 0
	for {
		err := m.Run()
		if err == nil {
			break
		}
		var trap *Trap
		if !errors.As(err, &trap) || trap.Kind != TrapEpoch {
			t.Fatalf("err = %v", err)
		}
		yields++
		m.EpochDeadline = m.Stats.Cycles + 2000
		if yields > 1000 {
			t.Fatal("too many yields")
		}
	}
	if m.Result() != 100000 {
		t.Fatalf("result = %d", m.Result())
	}
	if yields == 0 {
		t.Fatal("never yielded")
	}
}

func TestFloatOps(t *testing.T) {
	// hyp(a, b) = sqrt(a*a + b*b), args in xmm0/xmm1.
	f := &Func{Name: "hyp", Insts: []x86.Inst{
		{Op: x86.MULSD, Dst: x86.X(0), Src: x86.X(0)},
		{Op: x86.MULSD, Dst: x86.X(1), Src: x86.X(1)},
		{Op: x86.ADDSD, Dst: x86.X(0), Src: x86.X(1)},
		{Op: x86.SQRTSD, Dst: x86.X(0), Src: x86.X(0)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f)
	m.XmmLo[0] = math.Float64bits(3)
	m.XmmLo[1] = math.Float64bits(4)
	if err := m.Call(0); err != nil {
		t.Fatal(err)
	}
	if m.ResultF() != 5 {
		t.Fatalf("hyp = %g", m.ResultF())
	}
}

func TestDivTraps(t *testing.T) {
	f := &Func{Name: "div", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)},
		{Op: x86.CQO, W: x86.W64},
		{Op: x86.IDIV, W: x86.W64, Dst: x86.R(x86.RSI)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f)
	if err := m.Call(0, 42, 7); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 6 {
		t.Fatalf("42/7 = %d", m.Result())
	}
	var trap *Trap
	if err := m.Call(0, 42, 0); !errors.As(err, &trap) || trap.Kind != TrapDivZero {
		t.Fatalf("div0 err = %v", err)
	}
	if err := m.Call(0, 1<<63, ^uint64(0)); !errors.As(err, &trap) || trap.Kind != TrapOverflow {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestTrapIfAndUD2(t *testing.T) {
	f := &Func{Name: "bc", Insts: []x86.Inst{
		{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RDI), Src: x86.Imm(100)},
		{Op: x86.TRAPIF, Cond: x86.CondA},
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(1)},
		{Op: x86.RET},
	}}
	u := &Func{Name: "ud", Insts: []x86.Inst{{Op: x86.UD2}}}
	m, _ := testEnv(t, f, u)
	if err := m.Call(0, 50); err != nil {
		t.Fatal(err)
	}
	var trap *Trap
	if err := m.Call(0, 150); !errors.As(err, &trap) || trap.Kind != TrapBounds {
		t.Fatalf("bounds err = %v", err)
	}
	if err := m.Call(1); !errors.As(err, &trap) || trap.Kind != TrapUD {
		t.Fatalf("ud2 err = %v", err)
	}
}

func TestHostCall(t *testing.T) {
	f := &Func{Name: "f", Insts: []x86.Inst{
		{Op: x86.CALLHOST, Dst: x86.Imm(0)},
		{Op: x86.ADD, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(1)},
		{Op: x86.RET},
	}}
	f.Encode()
	m, _ := testEnv(t, f)
	m.Hosts = []HostFunc{func(m *Machine) error {
		m.Regs[x86.RAX] = m.Regs[x86.RDI] * 10
		return nil
	}}
	if err := m.Call(0, 4); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 41 {
		t.Fatalf("result = %d", m.Result())
	}
}

func TestWriteOpWidthRules(t *testing.T) {
	// 32-bit writes zero the upper half; 8/16-bit writes merge.
	f := &Func{Name: "w", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(-1)},
		{Op: x86.MOV, W: x86.W32, Dst: x86.R(x86.RAX), Src: x86.Imm(0x1234)},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f)
	if err := m.Call(0); err != nil {
		t.Fatal(err)
	}
	if m.Result() != 0x1234 {
		t.Fatalf("32-bit write result = %#x, want 0x1234 (upper bits zeroed)", m.Result())
	}
	g := &Func{Name: "w8", Insts: []x86.Inst{
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(0x1111111111111111)},
		{Op: x86.MOV, W: x86.W8, Dst: x86.R(x86.RAX), Src: x86.Imm(0xAB)},
		{Op: x86.RET},
	}}
	m2, _ := testEnv(t, g)
	if err := m2.Call(0); err != nil {
		t.Fatal(err)
	}
	if m2.Result() != 0x11111111111111AB {
		t.Fatalf("8-bit write result = %#x", m2.Result())
	}
}

func TestFetchCostPrefix(t *testing.T) {
	// The same loop body with gs-prefixed loads costs more fetch bytes.
	mk := func(seg x86.Seg, addr32 bool) *Func {
		return &Func{Name: "l", Insts: []x86.Inst{
			{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.M(x86.Mem{Seg: seg, Base: x86.RDI, Addr32: addr32})},
			{Op: x86.RET},
		}}
	}
	plain := mk(x86.SegNone, false)
	segue := mk(x86.SegGS, true)
	m1, heap := testEnv(t, plain)
	if err := m1.Call(0, heap); err != nil {
		t.Fatal(err)
	}
	m2, heap2 := testEnv(t, segue)
	m2.GSBase = heap2
	if err := m2.Call(0, 0); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.BytesFetched <= m1.Stats.BytesFetched {
		t.Fatalf("segue fetch bytes %d should exceed plain %d", m2.Stats.BytesFetched, m1.Stats.BytesFetched)
	}
}

func TestJumpTable(t *testing.T) {
	// dispatch(i): jump table with 3 targets and a default.
	f := &Func{Name: "jt", Insts: []x86.Inst{
		{Op: x86.JTAB, Dst: x86.R(x86.RDI), Src: x86.Label(7), Targets: []int{1, 3, 5}}, // 0
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(10)},                // 1
		{Op: x86.RET}, // 2
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(20)}, // 3
		{Op: x86.RET}, // 4
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(30)}, // 5
		{Op: x86.RET}, // 6
		{Op: x86.MOV, W: x86.W64, Dst: x86.R(x86.RAX), Src: x86.Imm(99)}, // 7
		{Op: x86.RET}, // 8
	}}
	m, _ := testEnv(t, f)
	for _, c := range []struct{ in, want uint64 }{{0, 10}, {1, 20}, {2, 30}, {3, 99}, {1000, 99}} {
		if err := m.Call(0, c.in); err != nil {
			t.Fatal(err)
		}
		if m.Result() != c.want {
			t.Errorf("jt(%d) = %d, want %d", c.in, m.Result(), c.want)
		}
	}
}

func TestConditionMatrix(t *testing.T) {
	// cmp a, b then setcc for every condition, verified against Go.
	conds := []struct {
		c    x86.Cond
		eval func(a, b uint64) bool
	}{
		{x86.CondE, func(a, b uint64) bool { return a == b }},
		{x86.CondNE, func(a, b uint64) bool { return a != b }},
		{x86.CondL, func(a, b uint64) bool { return int64(a) < int64(b) }},
		{x86.CondLE, func(a, b uint64) bool { return int64(a) <= int64(b) }},
		{x86.CondG, func(a, b uint64) bool { return int64(a) > int64(b) }},
		{x86.CondGE, func(a, b uint64) bool { return int64(a) >= int64(b) }},
		{x86.CondB, func(a, b uint64) bool { return a < b }},
		{x86.CondBE, func(a, b uint64) bool { return a <= b }},
		{x86.CondA, func(a, b uint64) bool { return a > b }},
		{x86.CondAE, func(a, b uint64) bool { return a >= b }},
	}
	vals := []uint64{0, 1, 2, ^uint64(0), 1 << 63, 1<<63 - 1, 42}
	for _, cc := range conds {
		f := &Func{Name: "cmp", Insts: []x86.Inst{
			{Op: x86.CMP, W: x86.W64, Dst: x86.R(x86.RDI), Src: x86.R(x86.RSI)},
			{Op: x86.SETCC, Cond: cc.c, Dst: x86.R(x86.RAX)},
			{Op: x86.RET},
		}}
		m, _ := testEnv(t, f)
		for _, a := range vals {
			for _, b := range vals {
				if err := m.Call(0, a, b); err != nil {
					t.Fatal(err)
				}
				want := uint64(0)
				if cc.eval(a, b) {
					want = 1
				}
				if m.Result() != want {
					t.Errorf("set%v after cmp(%#x, %#x) = %d, want %d", cc.c, a, b, m.Result(), want)
				}
			}
		}
	}
}

func TestLEAAddr32Truncation(t *testing.T) {
	// lea edi, [rdi + rsi*4 + 8] truncates to 32 bits with Addr32.
	f := &Func{Name: "lea", Insts: []x86.Inst{
		{Op: x86.LEA, W: x86.W32, Dst: x86.R(x86.RAX),
			Src: x86.M(x86.Mem{Base: x86.RDI, Index: x86.RSI, Scale: 4, Disp: 8, Addr32: true})},
		{Op: x86.RET},
	}}
	m, _ := testEnv(t, f)
	if err := m.Call(0, 0xFFFFFFF0, 4); err != nil {
		t.Fatal(err)
	}
	var sum uint32 = 0xFFFFFFF0
	sum += 16 + 8 // wraps, as the address-size override does
	want := uint64(sum)
	if m.Result() != want {
		t.Errorf("lea = %#x, want %#x", m.Result(), want)
	}
}
