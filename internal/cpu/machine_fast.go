package cpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/x86"
)

// This file is the predecoded execution engine. It is a line-for-line
// mirror of runSlow in machine.go operating on the flat dinst array
// from decode.go: operand dispatch happens on a predecoded byte,
// effective addresses come from a precomputed recipe (no x86.Mem
// interpretation, no segment switch), encoded lengths are inline, and
// opcode base costs come from a dense per-machine table. Instructions
// are accessed by pointer, so the ~130-byte x86.Inst copy the slow
// path pays per step disappears.
//
// Any change here must be reflected in runSlow (and vice versa); the
// differential tests in machine_fast_test.go and internal/rt assert
// bit-identical registers, memory, and Stats between the two paths.

// grantForRest fills the access-grant cache entry for addr's page
// from the VMA list, after the open-coded valid-entry check in
// loadFast/storeFast missed. A nil return means the page is unmapped
// (or the entry can't be established); callers fall back to the
// layered path for exact fault semantics. Entries are validated
// against the address space's mapping generation, so mprotect/munmap/
// madvise from host calls invalidate the cache.
func (m *Machine) grantForRest(addr, pn uint64) *mtcEntry {
	if g := m.AS.Gen(); g != m.mtcGen {
		m.mtc = [mtcSize]mtcEntry{}
		m.mtcGen = g
	}
	e := &m.mtc[pn&(mtcSize-1)]
	if e.pnPlus1 != pn+1 {
		v, ok := m.AS.VMAAt(addr)
		if !ok {
			return nil
		}
		*e = mtcEntry{pnPlus1: pn + 1, pg: m.AS.PageFor(addr, false), prot: v.Prot, pkey: v.Pkey}
		e.refreshPerms(m.PKRU)
	} else if e.pkru != m.PKRU {
		e.refreshPerms(m.PKRU)
	}
	return e
}

// loadFast is m.load fused with the grant cache: a hit skips the VMA
// walk and the page-map hash and reads page bytes directly. The cost
// accounting (MemReads, TLB, L1/L2) is the exact memCost sequence.
// Page-straddling accesses, unmapped pages, and permission denials
// fall back to m.load, which reproduces the exact fault.
func (m *Machine) loadFast(addr uint64, size int) (uint64, error) {
	off := addr & (mem.PageSize - 1)
	if off+uint64(size) > mem.PageSize {
		return m.load(addr, size)
	}
	// Open-coded grant-cache hit check (see grantForRest).
	pn := addr / mem.PageSize
	e := &m.mtc[pn&(mtcSize-1)]
	if e.pnPlus1 != pn+1 || m.mtcGen != m.AS.Gen() || e.pkru != m.PKRU {
		e = m.grantForRest(addr, pn)
	}
	if e == nil || !e.readOK {
		return m.load(addr, size)
	}
	// The exact memCost sequence, open-coded to drop a call level from
	// the hottest path in the emulator. A same-line repeat (MemoHit,
	// inlined) is a guaranteed dTLB+L1 hit: no penalty cycles.
	m.Stats.MemReads++
	if !m.Hier.MemoHit(addr) {
		tlbHit, missLevels := m.Hier.AccessFull(addr)
		if !tlbHit {
			m.Stats.Cycles += m.Cost.TLBMiss
		}
		switch missLevels {
		case 0:
		case 1:
			m.Stats.Cycles += m.Cost.L2Hit
		default:
			m.Stats.Cycles += m.Cost.MemAccess
		}
	}
	pg := e.pg
	if pg == nil {
		// The page may have been allocated since the entry was filled.
		if pg = m.AS.PageFor(addr, false); pg == nil {
			return 0, nil
		}
		e.pg = pg
	}
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(pg[off : off+8]), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(pg[off : off+4])), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(pg[off : off+2])), nil
	case 1:
		return uint64(pg[off]), nil
	}
	return m.AS.Load(addr, size), nil
}

// storeFast is m.store fused with the grant cache; see loadFast.
func (m *Machine) storeFast(addr uint64, size int, v uint64) error {
	off := addr & (mem.PageSize - 1)
	if off+uint64(size) > mem.PageSize {
		return m.store(addr, size, v)
	}
	// Open-coded grant-cache hit check (see grantForRest).
	pn := addr / mem.PageSize
	e := &m.mtc[pn&(mtcSize-1)]
	if e.pnPlus1 != pn+1 || m.mtcGen != m.AS.Gen() || e.pkru != m.PKRU {
		e = m.grantForRest(addr, pn)
	}
	if e == nil || !e.writeOK {
		return m.store(addr, size, v)
	}
	m.Stats.MemWrites++
	if !m.Hier.MemoHit(addr) {
		tlbHit, missLevels := m.Hier.AccessFull(addr)
		if !tlbHit {
			m.Stats.Cycles += m.Cost.TLBMiss
		}
		switch missLevels {
		case 0:
		case 1:
			m.Stats.Cycles += m.Cost.L2Hit
		default:
			m.Stats.Cycles += m.Cost.MemAccess
		}
	}
	pg := e.pg
	if pg == nil {
		pg = m.AS.PageFor(addr, true)
		e.pg = pg
	}
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(pg[off:off+8], v)
	case 4:
		binary.LittleEndian.PutUint32(pg[off:off+4], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(pg[off:off+2], uint16(v))
	case 1:
		pg[off] = byte(v)
	default:
		m.AS.Store(addr, size, v)
	}
	return nil
}

// eaD computes the effective address from a predecoded recipe,
// matching Machine.ea: base + scaled index + displacement, truncated
// under the address-size override, then segment-based (unless LEA).
// The two shapes that dominate SFI code — base+disp and
// base+disp+GS — are classified at decode time (daccess.shape) and
// handled here so the whole computation inlines into the dispatch
// loops; everything else goes through eaDRest. eaD always applies the
// segment base; the only no-segment caller is LEA, which uses eaDRest
// directly.
func (m *Machine) eaD(a *daccess) uint64 {
	if a.shape == eaBaseDisp {
		return m.Regs[a.base&15] + a.disp
	}
	return m.eaDSeg(a)
}

func (m *Machine) eaDSeg(a *daccess) uint64 {
	if a.shape == eaBaseDispGS {
		return m.Regs[a.base&15] + a.disp + m.GSBase
	}
	return m.eaDRest(a, true)
}

func (m *Machine) eaDRest(a *daccess, withSeg bool) uint64 {
	sum := a.disp
	if a.base != dRegNone {
		sum += m.Regs[a.base]
	}
	if a.index != dRegNone {
		sum += m.Regs[a.index] * uint64(a.scale)
	}
	if a.addr32 {
		sum = uint64(uint32(sum))
	}
	if withSeg {
		switch a.seg {
		case dSegGS:
			sum += m.GSBase
		case dSegFS:
			sum += m.FSBase
		}
	}
	return sum
}

// readOpD reads a predecoded operand at width w. The register case is
// kept small enough to inline into runFast's dispatch cases; everything
// else goes through readOpDRest.
func (m *Machine) readOpD(a *daccess, w x86.Width) (uint64, error) {
	if a.kind == dReg {
		return m.Regs[a.reg&15] & wmask[w&31], nil
	}
	return m.readOpDRest(a, w)
}

func (m *Machine) readOpDRest(a *daccess, w x86.Width) (uint64, error) {
	switch a.kind {
	case dReg:
		return maskW(m.Regs[a.reg], w), nil
	case dImm:
		return maskW(uint64(a.imm), w), nil
	case dMem:
		return m.loadFast(m.eaD(a), int(w))
	case dXmm:
		return m.XmmLo[a.reg], nil
	default:
		return 0, fmt.Errorf("cpu: unreadable operand kind %d", a.kind)
	}
}

// writeOpD writes a predecoded operand at width w with the same
// merge/zero-extend rules as writeOp. The full-width and 32-bit
// register cases inline; merges and memory go through writeOpDRest.
func (m *Machine) writeOpD(a *daccess, w x86.Width, v uint64) error {
	if a.kind == dReg && w >= x86.W32 {
		m.Regs[a.reg&15] = v & wmask[w&31]
		return nil
	}
	return m.writeOpDRest(a, w, v)
}

func (m *Machine) writeOpDRest(a *daccess, w x86.Width, v uint64) error {
	switch a.kind {
	case dReg:
		switch w {
		case x86.W64:
			m.Regs[a.reg] = v
		case x86.W32:
			m.Regs[a.reg] = v & 0xFFFFFFFF
		case x86.W16:
			m.Regs[a.reg] = m.Regs[a.reg]&^uint64(0xFFFF) | v&0xFFFF
		case x86.W8:
			m.Regs[a.reg] = m.Regs[a.reg]&^uint64(0xFF) | v&0xFF
		}
		return nil
	case dMem:
		return m.storeFast(m.eaD(a), int(w), v)
	case dXmm:
		m.XmmLo[a.reg] = v
		return nil
	default:
		return fmt.Errorf("cpu: unwritable operand kind %d", a.kind)
	}
}

// readFD reads a predecoded f64 operand.
func (m *Machine) readFD(a *daccess) (float64, error) {
	switch a.kind {
	case dXmm:
		return math.Float64frombits(m.XmmLo[a.reg]), nil
	case dMem:
		v, err := m.loadFast(m.eaD(a), 8)
		return math.Float64frombits(v), err
	default:
		return 0, fmt.Errorf("cpu: bad f64 operand kind %d", a.kind)
	}
}

// runFast executes using the predecoded program. Semantics, trap
// behaviour, and Stats accounting are bit-identical to runSlow.
func (m *Machine) runFast() error {
	dec := m.Prog.decoded()
	dcost := m.instCosts(dec)
	// Insts and BytesFetched are pure accumulators — nothing reads them
	// until the run completes — so they live in locals and flush once on
	// exit instead of paying two read-modify-writes per instruction.
	// Cycles stays canonical in m.Stats: memCost, traps, and host calls
	// read and update it mid-run.
	var nInsts, nBytes uint64
	defer func() {
		m.Stats.Insts += nInsts
		m.Stats.BytesFetched += nBytes
	}()
frames:
	for len(m.frames) > 0 {
		// Hoist the per-frame state: the instruction and cost slices only
		// change when the frame stack does (call/ret/host), so the inner
		// loop dispatches straight off two locals instead of re-indexing
		// dec and dcost through fr.fn on every instruction.
		fr := &m.frames[len(m.frames)-1]
		insts := dec[fr.fn].insts
		cs := dcost[fr.fn][:len(insts)] // same length, so cs[pc] shares insts' bounds check
		// The fused tier's profile pass: nil for fast-tier machines, so
		// the per-instruction cost is one predictable branch.
		var pcnt []uint32
		if m.profCounts != nil {
			pcnt = m.profCounts[fr.fn]
		}
		for {
			pc := fr.pc
			if uint(pc) >= uint(len(insts)) {
				return fmt.Errorf("cpu: pc %d out of range in %q", pc, m.Prog.Funcs[fr.fn].Name)
			}
			in := &insts[pc]

			if pcnt != nil {
				// Bail at the instruction boundary: nothing executed or
				// charged yet and fr.pc == pc, so runTiered can resume
				// this exact instruction on the fused stream.
				if m.profLeft <= 0 {
					return errProfileBudget
				}
				m.profLeft--
				pcnt[pc]++
			}

			nInsts++
			nBytes += uint64(in.ilen)
			m.Stats.Cycles += cs[pc]

			next := pc + 1
			switch in.op {
			case x86.NOP:

			case x86.MOV:
				// Register operands are open-coded in the hot integer cases:
				// readOpD/writeOpD are one call too large for the inliner, and
				// this dispatch path is where the emulator spends its time.
				// The &15/&31 index masks are no-ops for valid operands and
				// let the compiler drop the bounds checks.
				var v uint64
				if in.src.kind == dReg {
					v = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if v, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.MOVZX:
				v, err := m.readOpD(&in.src, in.srcW)
				if err != nil {
					return err
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.MOVSX:
				v, err := m.readOpD(&in.src, in.srcW)
				if err != nil {
					return err
				}
				v = signExtend(v, in.srcW) & wmask[in.w&31]
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.LEA:
				v := m.eaDRest(&in.src, false)
				if err := m.writeOpD(&in.dst, in.w, maskW(v, in.w)); err != nil {
					return err
				}
			case x86.XCHG:
				a, _ := m.readOpD(&in.dst, in.w)
				b, _ := m.readOpD(&in.src, in.w)
				if err := m.writeOpD(&in.dst, in.w, b); err != nil {
					return err
				}
				if err := m.writeOpD(&in.src, in.w, a); err != nil {
					return err
				}
			case x86.CMOV:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				if m.cond(in.cond) {
					if err := m.writeOpD(&in.dst, in.w, v); err != nil {
						return err
					}
				}
			case x86.PUSH:
				var v uint64
				if in.dst.kind == dReg {
					v = m.Regs[in.dst.reg&15]
				} else {
					var err error
					if v, err = m.readOpDRest(&in.dst, x86.W64); err != nil {
						return err
					}
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, v); err != nil {
					return err
				}
			case x86.POP:
				v, err := m.loadFast(m.Regs[x86.RSP], 8)
				if err != nil {
					return err
				}
				m.Regs[x86.RSP] += 8
				if in.dst.kind == dReg {
					m.Regs[in.dst.reg&15] = v
				} else if err := m.writeOpDRest(&in.dst, x86.W64, v); err != nil {
					return err
				}

			case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.IMUL, x86.MULX:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				var res uint64
				switch in.op {
				case x86.ADD:
					res = a + b
					m.setFlagsAdd(a, b, res, in.w)
				case x86.SUB:
					res = a - b
					m.setFlagsSub(a, b, res, in.w)
				case x86.AND:
					res = a & b
					m.setFlagsLogic(res, in.w)
				case x86.OR:
					res = a | b
					m.setFlagsLogic(res, in.w)
				case x86.XOR:
					res = a ^ b
					m.setFlagsLogic(res, in.w)
				case x86.IMUL, x86.MULX:
					res = a * b
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = res & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.NOT:
				a, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				if err := m.writeOpD(&in.dst, in.w, ^a); err != nil {
					return err
				}
			case x86.NEG:
				a, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				res := -a
				m.setFlagsSub(0, a, res, in.w)
				if err := m.writeOpD(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
				var a, cnt uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				switch in.src.kind {
				case dReg:
					cnt = m.Regs[in.src.reg&15] & 0xFF
				case dImm:
					cnt = uint64(in.src.imm) & 0xFF
				default:
					var err error
					if cnt, err = m.readOpDRest(&in.src, x86.W8); err != nil {
						return err
					}
				}
				bitsN := widthBits(in.w)
				c := uint(cnt) & (bitsN - 1)
				var res uint64
				switch in.op {
				case x86.SHL:
					res = a << c
				case x86.SHR:
					res = a >> c
				case x86.SAR:
					res = uint64(int64(signExtend(a, in.w)) >> c)
				case x86.ROL:
					res = a<<c | a>>(bitsN-c)
				case x86.ROR:
					res = a>>c | a<<(bitsN-c)
				}
				res = maskW(res, in.w)
				m.zf = res == 0
				m.sf = signBit(res, in.w)
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = res & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.CMP:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				m.setFlagsSub(a, b, a-b, in.w)
			case x86.TEST:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				m.setFlagsLogic(a&b, in.w)
			case x86.SETCC:
				v := uint64(0)
				if m.cond(in.cond) {
					v = 1
				}
				if err := m.writeOpD(&in.dst, x86.W64, v); err != nil {
					return err
				}
			case x86.CQO:
				if in.w == x86.W32 {
					if int32(m.Regs[x86.RAX]) < 0 {
						m.Regs[x86.RDX] = 0xFFFFFFFF
					} else {
						m.Regs[x86.RDX] = 0
					}
				} else {
					if int64(m.Regs[x86.RAX]) < 0 {
						m.Regs[x86.RDX] = ^uint64(0)
					} else {
						m.Regs[x86.RDX] = 0
					}
				}
			case x86.IDIV, x86.DIV:
				d, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				if maskW(d, in.w) == 0 {
					return m.trap(TrapDivZero, 0)
				}
				if in.op == x86.IDIV {
					if in.w == x86.W32 {
						a := int32(m.Regs[x86.RAX])
						b := int32(d)
						if a == math.MinInt32 && b == -1 {
							return m.trap(TrapOverflow, 0)
						}
						m.Regs[x86.RAX] = uint64(uint32(a / b))
						m.Regs[x86.RDX] = uint64(uint32(a % b))
					} else {
						a := int64(m.Regs[x86.RAX])
						b := int64(d)
						if a == math.MinInt64 && b == -1 {
							return m.trap(TrapOverflow, 0)
						}
						m.Regs[x86.RAX] = uint64(a / b)
						m.Regs[x86.RDX] = uint64(a % b)
					}
				} else {
					if in.w == x86.W32 {
						a := uint32(m.Regs[x86.RAX])
						b := uint32(d)
						m.Regs[x86.RAX] = uint64(a / b)
						m.Regs[x86.RDX] = uint64(a % b)
					} else {
						a := m.Regs[x86.RAX]
						m.Regs[x86.RAX] = a / d
						m.Regs[x86.RDX] = a % d
					}
				}
			case x86.POPCNT, x86.LZCNT, x86.TZCNT:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				res := bitCount(in.op, v, in.w)
				if err := m.writeOpD(&in.dst, in.w, res); err != nil {
					return err
				}

			case x86.JMP:
				next = int(in.dst.imm)
			case x86.JCC:
				taken := m.cond(in.cond)
				m.predictBranch(fr.fn, pc, taken)
				if taken {
					next = int(in.dst.imm)
				}
			case x86.CALLFN:
				if len(m.frames) >= m.MaxCallDepth {
					return m.trap(TrapCallDepth, 0)
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, uint64(pc+1)); err != nil {
					return err
				}
				fr.pc = next
				m.frames = append(m.frames, frame{fn: int(in.dst.imm), pc: 0})
				continue frames
			case x86.CALLREG:
				m.Stats.Cycles += m.Cost.IndirectSeq
				slot, err := m.readOpD(&in.dst, x86.W64)
				if err != nil {
					return err
				}
				if slot >= uint64(len(m.Prog.Table)) {
					return m.trap(TrapTableOOB, 0)
				}
				ent := m.Prog.Table[slot]
				if ent.FuncIdx == NullTableEntry {
					return m.trap(TrapTableNull, 0)
				}
				if ent.SigID != int(in.src.imm) {
					return m.trap(TrapTableSig, 0)
				}
				if len(m.frames) >= m.MaxCallDepth {
					return m.trap(TrapCallDepth, 0)
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, uint64(pc+1)); err != nil {
					return err
				}
				fr.pc = next
				m.frames = append(m.frames, frame{fn: ent.FuncIdx, pc: 0})
				continue frames
			case x86.CALLHOST:
				idx := int(in.dst.imm)
				if idx < 0 || idx >= len(m.Hosts) {
					return fmt.Errorf("cpu: host index %d out of range", idx)
				}
				fr.pc = next
				if err := m.Hosts[idx](m); err != nil {
					return err
				}
				continue frames
			case x86.RET:
				if _, err := m.loadFast(m.Regs[x86.RSP], 8); err != nil {
					return err
				}
				m.Regs[x86.RSP] += 8
				m.frames = m.frames[:len(m.frames)-1]
				continue frames

			case x86.UD2:
				return m.trap(TrapUD, 0)
			case x86.TRAPIF:
				if m.cond(in.cond) {
					return m.trap(TrapBounds, 0)
				}
			case x86.EPOCH:
				if m.EpochEnabled && m.Stats.Cycles >= m.EpochDeadline {
					fr.pc = next
					return m.trap(TrapEpoch, 0)
				}

			case x86.ENDBR, x86.BTBFLUSH, x86.INTERLOCK:
				// Hardening pseudo-ops: architecturally inert, cost only.

			case x86.WRGSBASE:
				m.GSBase = m.Regs[in.dst.reg]
			case x86.RDGSBASE:
				m.Regs[in.dst.reg] = m.GSBase
			case x86.WRFSBASE:
				m.FSBase = m.Regs[in.dst.reg]
			case x86.WRPKRU:
				m.PKRU = uint32(m.Regs[x86.RAX])
			case x86.RDPKRU:
				m.Regs[x86.RAX] = uint64(m.PKRU)

			case x86.MOVSD:
				if err := m.execMOVSDD(in); err != nil {
					return err
				}
			case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.MINSD, x86.MAXSD:
				if err := m.execFBinD(in); err != nil {
					return err
				}
			case x86.NEGSD:
				m.XmmLo[in.dst.reg] ^= 1 << 63
			case x86.ABSSD:
				m.XmmLo[in.dst.reg] &^= 1 << 63
			case x86.JTAB:
				idx, err := m.readOpD(&in.dst, x86.W64)
				if err != nil {
					return err
				}
				m.Stats.Cycles += m.Cost.Load + m.Cost.Branch
				m.Stats.Branches++
				if idx < uint64(len(in.targets)) {
					next = in.targets[idx]
				} else {
					next = int(in.src.imm)
				}
			case x86.SQRTSD:
				v, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				m.XmmLo[in.dst.reg] = math.Float64bits(math.Sqrt(v))
			case x86.UCOMISD:
				a, err := m.readFD(&in.dst)
				if err != nil {
					return err
				}
				b, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				switch {
				case math.IsNaN(a) || math.IsNaN(b):
					m.zf, m.cf = true, true
				case a == b:
					m.zf, m.cf = true, false
				case a < b:
					m.zf, m.cf = false, true
				default:
					m.zf, m.cf = false, false
				}
				m.sf, m.of = false, false
			case x86.CVTSI2SD:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				var fv float64
				if in.w == x86.W32 {
					fv = float64(int32(v))
				} else {
					fv = float64(int64(v))
				}
				m.XmmLo[in.dst.reg] = math.Float64bits(fv)
			case x86.CVTTSD2SI:
				v, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				if math.IsNaN(v) {
					return m.trap(TrapOverflow, 0)
				}
				t := math.Trunc(v)
				if in.w == x86.W32 {
					if t < math.MinInt32 || t > math.MaxInt32 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[in.dst.reg] = uint64(uint32(int32(t)))
				} else {
					if t < -9.223372036854776e18 || t >= 9.223372036854776e18 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[in.dst.reg] = uint64(int64(t))
				}
			case x86.MOVQXR:
				m.Regs[in.dst.reg] = m.XmmLo[in.src.reg]
			case x86.MOVQRX:
				m.XmmLo[in.dst.reg] = m.Regs[in.src.reg]

			case x86.MOVDQU:
				if err := m.execMOVDQUD(in); err != nil {
					return err
				}
			case x86.PADDD:
				dl, dh := m.XmmLo[in.dst.reg], m.XmmHi[in.dst.reg]
				sl, sh := m.XmmLo[in.src.reg], m.XmmHi[in.src.reg]
				m.XmmLo[in.dst.reg] = paddd64(dl, sl)
				m.XmmHi[in.dst.reg] = paddd64(dh, sh)
			case x86.PXOR:
				m.XmmLo[in.dst.reg] ^= m.XmmLo[in.src.reg]
				m.XmmHi[in.dst.reg] ^= m.XmmHi[in.src.reg]

			default:
				return fmt.Errorf("cpu: unimplemented op %v", in.op)
			}
			fr.pc = next
		}
	}
	return nil
}

func (m *Machine) execMOVSDD(in *dinst) error {
	if in.dst.kind == dMem {
		return m.storeFast(m.eaD(&in.dst), 8, m.XmmLo[in.src.reg])
	}
	switch in.src.kind {
	case dXmm:
		m.XmmLo[in.dst.reg] = m.XmmLo[in.src.reg]
		return nil
	case dMem:
		v, err := m.loadFast(m.eaD(&in.src), 8)
		if err != nil {
			return err
		}
		m.XmmLo[in.dst.reg] = v
		return nil
	default:
		return fmt.Errorf("cpu: bad movsd operands")
	}
}

func (m *Machine) execFBinD(in *dinst) error {
	a := math.Float64frombits(m.XmmLo[in.dst.reg])
	b, err := m.readFD(&in.src)
	if err != nil {
		return err
	}
	var r float64
	switch in.op {
	case x86.ADDSD:
		r = a + b
	case x86.SUBSD:
		r = a - b
	case x86.MULSD:
		r = a * b
	case x86.DIVSD:
		r = a / b
	case x86.MINSD:
		r = math.Min(a, b)
	case x86.MAXSD:
		r = math.Max(a, b)
	}
	m.XmmLo[in.dst.reg] = math.Float64bits(r)
	return nil
}

func (m *Machine) execMOVDQUD(in *dinst) error {
	if in.dst.kind == dMem {
		addr := m.eaD(&in.dst)
		if err := m.storeFast(addr, 8, m.XmmLo[in.src.reg]); err != nil {
			return err
		}
		return m.storeFast(addr+8, 8, m.XmmHi[in.src.reg])
	}
	if in.src.kind == dMem {
		addr := m.eaD(&in.src)
		lo, err := m.loadFast(addr, 8)
		if err != nil {
			return err
		}
		hi, err := m.loadFast(addr+8, 8)
		if err != nil {
			return err
		}
		m.XmmLo[in.dst.reg] = lo
		m.XmmHi[in.dst.reg] = hi
		return nil
	}
	m.XmmLo[in.dst.reg] = m.XmmLo[in.src.reg]
	m.XmmHi[in.dst.reg] = m.XmmHi[in.src.reg]
	return nil
}
